package portcc_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"portcc"
)

// tinySession returns a session scaled for sub-second tests.
func tinySession(opts ...portcc.Option) *portcc.Session {
	scale := portcc.Scale{Name: "t", Programs: []string{"crc", "bitcnts"},
		NumArchs: 3, NumOpts: 4, TargetInsns: 4000, Seed: 5}
	return portcc.NewSession(append([]portcc.Option{portcc.WithScale(scale)}, opts...)...)
}

// threeArchs returns XScale plus two legal cache variants.
func threeArchs() []portcc.Arch {
	a := portcc.XScale()
	b := a
	b.IL1Size = 4 << 10
	b.IL1Assoc = 4
	c := a
	c.DL1Size = 8 << 10
	c.DL1Assoc = 8
	return []portcc.Arch{a, b, c}
}

func TestRunBatchMatchesSequentialRun(t *testing.T) {
	ctx := context.Background()
	s := tinySession()
	archs := threeArchs()
	batch, err := s.RunBatch(ctx, "crc", portcc.O3(), archs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(archs) {
		t.Fatalf("%d batch results, want %d", len(batch), len(archs))
	}
	for i, a := range archs {
		single, err := s.Run(ctx, "crc", portcc.O3(), a)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != single {
			t.Errorf("arch %d: batch result differs from sequential Run", i)
		}
	}
}

func TestExploreYieldsFullGridExactlyOnce(t *testing.T) {
	ctx := context.Background()
	s := tinySession(portcc.WithWorkers(4))
	req, err := s.NewExploreRequest(false)
	if err != nil {
		t.Fatal(err)
	}
	req.ArchBatch = 2 // 3 archs -> batches of 2 and 1 per (program, setting)
	type cellKey struct{ p, o, a int }
	seen := map[cellKey]int{}
	archsSeen := 0
	for res, err := range s.Explore(ctx, req) {
		if err != nil {
			t.Fatal(err)
		}
		seen[cellKey{res.ProgIndex, res.OptIndex, res.ArchStart}]++
		archsSeen += len(res.Results)
		if res.Program != req.Programs[res.ProgIndex] {
			t.Errorf("result names %q for program index %d", res.Program, res.ProgIndex)
		}
		if res.Runs < 1 {
			t.Error("non-positive run count")
		}
	}
	wantCells := len(req.Programs) * len(req.Opts) * 2
	if len(seen) != wantCells {
		t.Errorf("%d distinct cells, want %d", len(seen), wantCells)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("cell %+v yielded %d times", k, n)
		}
	}
	if want := len(req.Programs) * len(req.Opts) * len(req.Archs); archsSeen != want {
		t.Errorf("%d (cell, arch) results, want %d", archsSeen, want)
	}
}

func TestExploreMatchesRunBatch(t *testing.T) {
	// The streaming engine must be bit-identical to the facade fast path.
	ctx := context.Background()
	s := tinySession()
	req, err := s.NewExploreRequest(false)
	if err != nil {
		t.Fatal(err)
	}
	for res, err := range s.Explore(ctx, req) {
		if err != nil {
			t.Fatal(err)
		}
		direct, err := s.RunBatch(ctx, res.Program, res.Config, req.Archs[res.ArchStart:res.ArchStart+len(res.Results)])
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct {
			if direct[i] != res.Results[i] {
				t.Fatalf("explore result (%d,%d,%d) differs from RunBatch",
					res.ProgIndex, res.OptIndex, res.ArchStart+i)
			}
		}
	}
}

// waitGoroutines polls until the goroutine count drops back to base
// (within slack), failing the test after the deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still running, started with %d: worker pool leaked", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGenerateCancellationDrainsPromptly(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the first cell completes: generation must stop
	// long before the full grid is evaluated.
	cells := 0
	s := tinySession(portcc.WithWorkers(2), portcc.WithProgress(func(p portcc.Progress) {
		cells++
		if p.Done == 1 {
			cancel()
		}
	}))
	start := time.Now()
	ds, err := s.GenerateDataset(ctx, false)
	elapsed := time.Since(start)
	if ds != nil {
		t.Error("cancelled generation returned a dataset")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	var pe *portcc.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not carry partial progress", err)
	}
	if pe.Total == 0 || pe.Done >= pe.Total {
		t.Errorf("implausible partial progress %d/%d", pe.Done, pe.Total)
	}
	// "Promptly": in-flight cells may finish, but nowhere near the full
	// grid's worth of work (the tiny grid is 2 programs x 5 settings).
	if cells >= pe.Total {
		t.Errorf("all %d cells ran despite cancellation", cells)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %s", elapsed)
	}
	waitGoroutines(t, base)
}

func TestExploreEarlyBreakDrainsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	s := tinySession(portcc.WithWorkers(4))
	req, err := s.NewExploreRequest(false)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, err := range s.Explore(context.Background(), req) {
		if err != nil {
			t.Fatal(err)
		}
		got++
		break
	}
	if got != 1 {
		t.Fatalf("loop body ran %d times after break", got)
	}
	waitGoroutines(t, base)
}

func TestExploreCancellationYieldsPartialError(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := tinySession(portcc.WithWorkers(2))
	req, err := s.NewExploreRequest(false)
	if err != nil {
		t.Fatal(err)
	}
	var terminal error
	results := 0
	for _, err := range s.Explore(ctx, req) {
		if err != nil {
			terminal = err
			continue
		}
		results++
		cancel()
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Fatalf("terminal yield %v, want context.Canceled", terminal)
	}
	if results == 0 {
		t.Error("no partial results before cancellation")
	}
	waitGoroutines(t, base)
}

func TestTypedErrorRoundTrips(t *testing.T) {
	ctx := context.Background()
	s := tinySession()

	if _, err := s.Run(ctx, "no-such-benchmark", portcc.O3(), portcc.XScale()); !errors.Is(err, portcc.ErrUnknownProgram) {
		t.Errorf("unknown program: got %v, want ErrUnknownProgram", err)
	}

	bad := portcc.XScale()
	bad.IL1Size = 12345
	if _, err := s.Run(ctx, "crc", portcc.O3(), bad); !errors.Is(err, portcc.ErrInvalidConfig) {
		t.Errorf("invalid arch: got %v, want ErrInvalidConfig", err)
	}
	if _, err := s.Speedup(ctx, "crc", portcc.O3(), bad); !errors.Is(err, portcc.ErrInvalidConfig) {
		t.Errorf("Speedup with invalid arch: got %v, want ErrInvalidConfig", err)
	}
	if _, err := s.RunBatch(ctx, "crc", portcc.O3(), []portcc.Arch{portcc.XScale(), bad}); !errors.Is(err, portcc.ErrInvalidConfig) {
		t.Errorf("RunBatch with invalid arch: got %v, want ErrInvalidConfig", err)
	}

	// An unknown program inside an exploration grid surfaces as both the
	// sentinel and a located SimError.
	req, err := s.NewExploreRequest(false)
	if err != nil {
		t.Fatal(err)
	}
	req.Programs = append(req.Programs, "no-such-benchmark")
	var terminal error
	for _, err := range s.Explore(ctx, req) {
		if err != nil {
			terminal = err
		}
	}
	if !errors.Is(terminal, portcc.ErrUnknownProgram) {
		t.Errorf("explore with unknown program: got %v, want ErrUnknownProgram", terminal)
	}

	if _, err := portcc.LoadDataset("/no/such/dir/ds.gob"); err == nil {
		t.Error("missing dataset file accepted")
	}

	// Cancelled context before any work: plain context error.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Run(cctx, "crc", portcc.O3(), portcc.XScale()); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Run: got %v", err)
	}
}

func TestExploreValidatesRequestUpfront(t *testing.T) {
	// Bad requests fail on the first yield, typed, before any work runs.
	s := tinySession()
	check := func(mutate func(*portcc.ExploreRequest), want error) {
		t.Helper()
		req, err := s.NewExploreRequest(false)
		if err != nil {
			t.Fatal(err)
		}
		mutate(&req)
		yields := 0
		var terminal error
		for _, err := range s.Explore(context.Background(), req) {
			yields++
			terminal = err
		}
		if yields != 1 || !errors.Is(terminal, want) {
			t.Errorf("got %d yields, terminal %v; want 1 yield of %v", yields, terminal, want)
		}
	}
	check(func(r *portcc.ExploreRequest) { r.Archs[1].BTBSize = 7 }, portcc.ErrInvalidConfig)
	check(func(r *portcc.ExploreRequest) { r.Opts = nil }, portcc.ErrInvalidConfig)
	check(func(r *portcc.ExploreRequest) { r.ArchBatch = -1 }, portcc.ErrInvalidConfig)
}

func TestSpeedupBaselineMemoised(t *testing.T) {
	ctx := context.Background()
	s := tinySession()
	arch := portcc.XScale()
	tuned := portcc.O3()
	tuned.Flags[portcc.FScheduleInsns] = false

	if _, err := s.Speedup(ctx, "crc", tuned, arch); err != nil {
		t.Fatal(err)
	}
	_, sims1 := s.Stats()
	if sims1 != 2 {
		t.Fatalf("first Speedup ran %d simulations, want 2 (baseline + candidate)", sims1)
	}
	// Further candidates on the same (program, arch) must not re-derive
	// the -O3 baseline: exactly one simulation each.
	tuned2 := portcc.O3()
	tuned2.Flags[portcc.FUnrollLoops] = true
	for i, cfg := range []portcc.OptConfig{tuned, tuned2} {
		before := sims1 + i
		if _, err := s.Speedup(ctx, "crc", cfg, arch); err != nil {
			t.Fatal(err)
		}
		if _, sims := s.Stats(); sims != before+1 {
			t.Errorf("candidate %d: %d simulations, want %d (baseline re-simulated?)", i, sims, before+1)
		}
	}
	// A different architecture is a different baseline.
	other := arch
	other.DL1Size = 8 << 10
	other.DL1Assoc = 4
	_, before := s.Stats()
	if _, err := s.Speedup(ctx, "crc", tuned, other); err != nil {
		t.Fatal(err)
	}
	if _, sims := s.Stats(); sims != before+2 {
		t.Errorf("new arch: %d simulations, want %d (fresh baseline + candidate)", sims, before+2)
	}
	// O3 against itself stays exactly 1 through the memoised path.
	v, err := s.Speedup(ctx, "crc", portcc.O3(), arch)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("O3 vs O3 speedup %v, want exactly 1", v)
	}
}

func TestExploreWorkUnitsGobRoundTrip(t *testing.T) {
	// ExploreRequest/ExploreResult are the future shard wire format.
	s := tinySession()
	req, err := s.NewExploreRequest(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatalf("encoding request: %v", err)
	}
	var back portcc.ExploreRequest
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decoding request: %v", err)
	}
	if len(back.Programs) != len(req.Programs) || len(back.Opts) != len(req.Opts) || len(back.Archs) != len(req.Archs) {
		t.Fatal("request round-trip changed dimensions")
	}
	if back.Opts[0].Key() != req.Opts[0].Key() || back.Archs[0] != req.Archs[0] {
		t.Error("request round-trip changed contents")
	}

	// Run one cell of the decoded request and round-trip the result.
	back.Programs = back.Programs[:1]
	back.Opts = back.Opts[:1]
	var res portcc.ExploreResult
	for r, err := range s.Explore(context.Background(), back) {
		if err != nil {
			t.Fatal(err)
		}
		res = r
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatalf("encoding result: %v", err)
	}
	var rback portcc.ExploreResult
	if err := gob.NewDecoder(&buf).Decode(&rback); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if rback.Program != res.Program || len(rback.Results) != len(res.Results) {
		t.Fatal("result round-trip changed shape")
	}
	if rback.Results[0] != res.Results[0] {
		t.Error("result round-trip changed counters")
	}
}

func TestGenerateDatasetMatchesScaleGenerate(t *testing.T) {
	// The Session path and the experiments.Scale path must produce the
	// identical dataset: same sampling, same cycle counts.
	ctx := context.Background()
	scale := portcc.Scale{Name: "t", Programs: []string{"crc", "qsort"},
		NumArchs: 2, NumOpts: 3, TargetInsns: 4000, Seed: 5}
	a, err := portcc.NewSession(portcc.WithScale(scale), portcc.WithWorkers(3)).GenerateDataset(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scale.Generate(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	for p := range a.Speedups {
		for ar := range a.Speedups[p] {
			for o := range a.Speedups[p][ar] {
				if a.Speedups[p][ar][o] != b.Speedups[p][ar][o] {
					t.Fatalf("speedup (%d,%d,%d) differs between Session and Scale paths", p, ar, o)
				}
			}
		}
	}
}

func TestConcurrentSpeedupSingleFlightsBaseline(t *testing.T) {
	// N concurrent Speedup calls for one (program, arch) must share one
	// -O3 baseline simulation: N candidate sims + 1 baseline, no more.
	ctx := context.Background()
	s := tinySession()
	arch := portcc.XScale()
	tuned := portcc.O3()
	tuned.Flags[portcc.FScheduleInsns] = false
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Speedup(ctx, "crc", tuned, arch)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, sims := s.Stats(); sims != n+1 {
		t.Errorf("%d simulations for %d concurrent Speedups, want %d (single baseline)", sims, n, n+1)
	}
}

func TestExploreRequestCellsDegenerate(t *testing.T) {
	var empty portcc.ExploreRequest
	if n := empty.Cells(); n != 0 {
		t.Errorf("empty request has %d cells, want 0", n)
	}
}

func TestBaselineNotPoisonedByOthersCancellation(t *testing.T) {
	// A caller whose context is live must not inherit a concurrent
	// caller's cancellation from the shared baseline entry, and a
	// cancelled baseline attempt must not be memoised.
	s := tinySession()
	arch := portcc.XScale()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Speedup(cancelled, "crc", portcc.O3(), arch); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Speedup: got %v", err)
	}
	v, err := s.Speedup(context.Background(), "crc", portcc.O3(), arch)
	if err != nil {
		t.Fatalf("live-context Speedup after a cancelled one: %v", err)
	}
	if v != 1 {
		t.Errorf("speedup %v, want 1", v)
	}
}
