// Quickstart: compile one benchmark under two optimisation settings, run
// both on the XScale, and compare. This is the smallest end-to-end use of
// the public API: a Session plus a context.
package main

import (
	"context"
	"fmt"
	"log"

	"portcc"
)

func main() {
	ctx := context.Background()
	s := portcc.NewSession()
	arch := portcc.XScale()

	// The paper's baseline: the highest default optimisation level.
	o3 := portcc.O3()
	bin, err := s.Compile(ctx, "rijndael_e", o3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(ctx, "rijndael_e", o3, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rijndael_e at -O3 on %s\n", arch)
	fmt.Printf("  code size %d bytes, %d cycles, IPC %.2f\n",
		bin.TotalBytes, res.Cycles, res.IPC())

	// Hand-tune one flag: disable instruction scheduling, which on
	// rijndael's huge hand-unrolled rounds only causes spill code
	// (Section 5.4 of the paper). The -O3 denominator of Speedup is
	// memoised on the session, so repeated comparisons stay cheap.
	tuned := portcc.O3()
	tuned.Flags[portcc.FScheduleInsns] = false
	speedup, err := s.Speedup(ctx, "rijndael_e", tuned, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with -fno-schedule-insns: %.3fx vs -O3\n", speedup)

	// The same flag on a small-instruction-cache variant of the XScale:
	// the effect grows, because the spill code no longer fits.
	small := arch
	small.IL1Size = 4 << 10
	small.IL1Assoc = 4
	speedupSmall, err := s.Speedup(ctx, "rijndael_e", tuned, small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same flags, 4K instruction cache: %.3fx vs -O3\n", speedupSmall)
}
