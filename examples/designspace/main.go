// Designspace: compiler-in-the-loop microarchitecture exploration, the
// use case motivating the paper's Section 1 ("compilers fully integrated
// into the design space exploration of a new processor generation").
//
// For a sweep of instruction-cache sizes we compare two design-evaluation
// methodologies on rijndael_e:
//
//   - the conventional one: every candidate design is evaluated with the
//     stock -O3 compiler;
//   - the paper's: every design is evaluated with the passes the learned
//     model predicts for it.
//
// With -O3 only, small-cache designs look far worse than they are - the
// compiler, not the hardware, is the bottleneck - which would mislead a
// designer choosing a cache size.
package main

import (
	"context"
	"fmt"
	"log"

	"portcc"
)

func main() {
	ctx := context.Background()

	// Train the model once, at a small sampling scale (a real deployment
	// would reuse a dataset from cmd/trainer). The same tiny-scale
	// session also measures the sweep below with shortened traces -
	// illustrative numbers, fast demo.
	s := portcc.NewSession(portcc.WithScale(portcc.TinyScale()))
	ds, err := s.GenerateDataset(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	model, err := portcc.TrainModel(ds)
	if err != nil {
		log.Fatal(err)
	}

	const program = "rijndael_e"
	fmt.Printf("design sweep: %s, instruction cache 4K..128K\n", program)
	fmt.Printf("%-8s %14s %14s %10s\n", "IL1", "-O3 cycles", "model cycles", "gain")
	for _, size := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		arch := portcc.XScale()
		arch.IL1Size = size
		arch.IL1Assoc = 4

		o3 := portcc.O3()
		base, err := s.CyclesPerRun(ctx, program, o3, arch)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := s.OptimizeFor(ctx, program, arch, model)
		if err != nil {
			log.Fatal(err)
		}
		tuned, err := s.CyclesPerRun(ctx, program, cfg, arch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %14.0f %14.0f %9.2fx\n",
			fmt.Sprintf("%dK", size>>10), base, tuned, base/tuned)
	}
	fmt.Println("\nA designer reading only the -O3 column would overprice small caches;")
	fmt.Println("the model column shows what the hardware can do with a compiler tuned per design.")
}
