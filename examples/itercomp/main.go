// Itercomp: iterative compilation versus the learned model (the paper's
// Section 5.3 comparison). For one program/microarchitecture pair we run
// random search, hill climbing and a genetic algorithm over the
// optimisation space, then show how many evaluations each needs to match
// what the model achieves after a single -O3 profiling run.
//
// The search objective is Session.Speedup: its -O3 denominator is
// memoised per (program, architecture), so the hundreds of candidate
// evaluations pay for exactly one baseline simulation.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"portcc"
	"portcc/internal/opt"
	"portcc/internal/search"
)

func main() {
	const program = "search"
	ctx := context.Background()
	arch := portcc.XScale()
	arch.IL1Size = 8 << 10
	arch.IL1Assoc = 4

	// One session at the tiny scale drives both training and the search
	// objective: measurements use TinyScale's shortened traces, so the
	// printed numbers are illustrative, trading fidelity for a fast
	// demo (the paper-style protocol would use full-length traces).
	s := portcc.NewSession(portcc.WithScale(portcc.TinyScale()))
	objective := func(c *opt.Config) float64 {
		speedup, err := s.Speedup(ctx, program, *c, arch)
		if err != nil {
			log.Fatal(err)
		}
		return speedup
	}

	// The model's single-profile-run prediction.
	ds, err := s.GenerateDataset(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	model, err := portcc.TrainModel(ds)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := s.OptimizeFor(ctx, program, arch, model)
	if err != nil {
		log.Fatal(err)
	}
	modelSpeedup := objective(&cfg)
	fmt.Printf("%s on %s\n", program, arch)
	fmt.Printf("model (1 profile run): %.3fx vs -O3\n\n", modelSpeedup)

	const evals = 200
	for _, alg := range []struct {
		name string
		run  func(search.Objective, int, *rand.Rand) search.Result
	}{
		{"random search", search.Random},
		{"hill climbing", search.HillClimb},
		{"genetic algorithm", search.Genetic},
	} {
		rng := rand.New(rand.NewSource(7))
		res := alg.run(objective, evals, rng)
		toMatch := search.EvalsToReach(res.Curve, modelSpeedup)
		match := fmt.Sprintf("%d evaluations", toMatch)
		if toMatch < 0 {
			match = fmt.Sprintf("not matched in %d evaluations", evals)
		}
		fmt.Printf("%-18s best %.3fx after %d evals; model matched after %s\n",
			alg.name, res.BestScore, res.Evals, match)
	}
	fmt.Println("\n(The paper reports iterative compilation needing ~50 evaluations")
	fmt.Println(" on average to match the model's one-run performance.)")
}
