// Itercomp: iterative compilation versus the learned model (the paper's
// Section 5.3 comparison). For one program/microarchitecture pair we run
// random search, hill climbing and a genetic algorithm over the
// optimisation space, then show how many evaluations each needs to match
// what the model achieves after a single -O3 profiling run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"portcc"
	"portcc/internal/opt"
	"portcc/internal/search"
)

func main() {
	const program = "search"
	arch := portcc.XScale()
	arch.IL1Size = 8 << 10
	arch.IL1Assoc = 4

	compiler := portcc.New()
	o3 := portcc.O3()
	base, err := compiler.CyclesPerRun(program, o3, arch)
	if err != nil {
		log.Fatal(err)
	}
	objective := func(c *opt.Config) float64 {
		cyc, err := compiler.CyclesPerRun(program, *c, arch)
		if err != nil {
			log.Fatal(err)
		}
		return base / cyc
	}

	// The model's single-profile-run prediction.
	ds, err := portcc.TinyScale().Dataset(false)
	if err != nil {
		log.Fatal(err)
	}
	model, err := portcc.TrainModel(ds)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := compiler.OptimizeFor(program, arch, model)
	if err != nil {
		log.Fatal(err)
	}
	modelSpeedup := objective(&cfg)
	fmt.Printf("%s on %s\n", program, arch)
	fmt.Printf("model (1 profile run): %.3fx vs -O3\n\n", modelSpeedup)

	const evals = 200
	for _, s := range []struct {
		name string
		run  func(search.Objective, int, *rand.Rand) search.Result
	}{
		{"random search", search.Random},
		{"hill climbing", search.HillClimb},
		{"genetic algorithm", search.Genetic},
	} {
		rng := rand.New(rand.NewSource(7))
		res := s.run(objective, evals, rng)
		toMatch := search.EvalsToReach(res.Curve, modelSpeedup)
		match := fmt.Sprintf("%d evaluations", toMatch)
		if toMatch < 0 {
			match = fmt.Sprintf("not matched in %d evaluations", evals)
		}
		fmt.Printf("%-18s best %.3fx after %d evals; model matched after %s\n",
			s.name, res.BestScore, res.Evals, match)
	}
	fmt.Println("\n(The paper reports iterative compilation needing ~50 evaluations")
	fmt.Println(" on average to match the model's one-run performance.)")
}
