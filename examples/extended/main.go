// Extended: the Section 7 robustness experiment. The microarchitecture
// space is extended with two parameters the model has no features for -
// clock frequency (200-600 MHz) and issue width (1-2) - and the unchanged
// model is evaluated on it. The paper reports that performance holds
// (best 1.24x, model 1.14x vs the original space's 1.23x/1.16x).
package main

import (
	"context"
	"fmt"
	"log"

	"portcc"
	"portcc/internal/experiments"
)

func main() {
	ctx := context.Background()
	s := portcc.NewSession(portcc.WithScale(portcc.TinyScale()))

	run := func(extended bool) (model, best float64) {
		ds, err := s.GenerateDataset(ctx, extended)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := experiments.Predict(ctx, ds)
		if err != nil {
			log.Fatal(err)
		}
		f6 := experiments.Figure6(pr)
		return f6.ModelAvg, f6.BestAvg
	}

	fmt.Println("base space (Table 2: caches and BTB only):")
	m, b := run(false)
	fmt.Printf("  model %.3fx, best %.3fx\n", m, b)

	fmt.Println("extended space (Section 7: + frequency 200-600MHz, width 1-2):")
	me, be := run(true)
	fmt.Printf("  model %.3fx, best %.3fx\n", me, be)

	fmt.Println("\nThe model was not retrained or given new features; comparable")
	fmt.Println("performance on the extended space is the paper's robustness claim.")
}
