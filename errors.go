package portcc

import "portcc/internal/pcerr"

// The typed error vocabulary of the public API. Every long-running
// operation returns errors that discriminate with errors.Is/errors.As
// instead of requiring message matching:
//
//	_, err := s.Run(ctx, "no-such-benchmark", portcc.O3(), arch)
//	if errors.Is(err, portcc.ErrUnknownProgram) { ... }
//
//	var se *portcc.SimError
//	if errors.As(err, &se) { log.Printf("cell (%s, %d, %d) failed", se.Program, se.Setting, se.Arch) }
var (
	// ErrUnknownProgram reports a benchmark name outside the 35-program
	// suite (see Programs).
	ErrUnknownProgram = pcerr.ErrUnknownProgram
	// ErrInvalidConfig reports an optimisation setting,
	// microarchitecture or request outside its legal space.
	ErrInvalidConfig = pcerr.ErrInvalidConfig
	// ErrDatasetVersion reports a dataset file whose schema version does
	// not match this build (LoadDataset), or a portccd worker shard
	// built against a different schema version (WithShards).
	ErrDatasetVersion = pcerr.ErrDatasetVersion
	// ErrModelVersion reports a model artifact file whose schema version
	// does not match this build (LoadModel). Artifacts are regenerated
	// from their dataset with cmd/trainer -model-out.
	ErrModelVersion = pcerr.ErrModelVersion
	// ErrWireVersion reports a portccd worker shard speaking an
	// incompatible coordinator/worker wire protocol version.
	ErrWireVersion = pcerr.ErrWireVersion
	// ErrOverloaded reports a prediction server (internal/serve, served
	// by cmd/portccs) shedding load: the bounded request queue was full,
	// the request was refused before any work started (HTTP 429 with a
	// Retry-After header), and a retry after the advertised delay is
	// safe.
	ErrOverloaded = pcerr.ErrOverloaded
	// ErrShardFailure reports a sharded exploration that ran out of
	// worker shards: dead connections redial with backoff and their
	// cells requeue onto survivors, so this surfaces only when every
	// shard has exhausted its retry budget (WithShardRetry). It wraps
	// the last shard's underlying error.
	ErrShardFailure = pcerr.ErrShardFailure
	// ErrCellPoisoned reports a work cell quarantined after stranding
	// too many dying shard connections in a row (RetryPolicy.MaxStrands)
	// - the distributed analogue of a crash loop pinned to one input.
	// The sharded run fails at that cell's index instead of burning
	// every shard's retry budget on it.
	ErrCellPoisoned = pcerr.ErrCellPoisoned
	// ErrCellPanic reports a work cell whose runner panicked on a worker
	// daemon. The daemon survives (the panic is recovered and shipped
	// back typed), the run stops at the panicking cell's index, and the
	// error is not a shard failure: the shard stays healthy.
	ErrCellPanic = pcerr.ErrCellPanic
	// ErrStoreCorrupt reports a persistent result-store entry
	// (WithResultStore) that failed validation on read: truncated,
	// bit-flipped, version-mismatched or half-written. The store
	// quarantines the entry and the replay is recomputed, so the error
	// never surfaces from session methods - it is observable in the
	// store's Stats and logs only, and never carries wrong data.
	ErrStoreCorrupt = pcerr.ErrStoreCorrupt
)

type (
	// SimError locates a failure inside an exploration grid: program
	// name, optimisation-setting index, and the first architecture index
	// of the failing batch (-1 where unknown).
	SimError = pcerr.SimError
	// PartialError reports work stopped early - typically by context
	// cancellation - carrying how many of the total work cells finished.
	// It wraps the cause, so errors.Is(err, context.Canceled) holds.
	PartialError = pcerr.PartialError
)
