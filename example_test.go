package portcc_test

import (
	"context"
	"fmt"
	"log"

	"portcc"
)

// The smallest end-to-end use: one benchmark, one architecture, one
// speedup measurement against the -O3 baseline.
func ExampleSession_Speedup() {
	ctx := context.Background()
	s := portcc.NewSession(portcc.WithScale(portcc.TinyScale()))

	// -O3 against itself is exactly 1 by construction.
	speedup, err := s.Speedup(ctx, "crc", portcc.O3(), portcc.XScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.3f\n", speedup)
	// Output: 1.000
}

// One compiled binary replayed over several microarchitectures in a
// single batched pass.
func ExampleSession_RunBatch() {
	ctx := context.Background()
	s := portcc.NewSession(portcc.WithScale(portcc.TinyScale()))

	small := portcc.XScale()
	small.IL1Size = 4 << 10
	small.IL1Assoc = 4
	results, err := s.RunBatch(ctx, "crc", portcc.O3(), []portcc.Arch{portcc.XScale(), small})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(results), results[0].Cycles > 0)
	// Output: 2 true
}

// Streaming design-space exploration: grid cells arrive as they
// complete, and the loop can stop (or the context cancel) at any point.
func ExampleSession_Explore() {
	ctx := context.Background()
	s := portcc.NewSession(portcc.WithScale(portcc.TinyScale()), portcc.WithWorkers(2))

	req, err := s.NewExploreRequest(false)
	if err != nil {
		log.Fatal(err)
	}
	req.Programs = req.Programs[:1] // just the first benchmark
	req.Opts = req.Opts[:2]         // -O3 plus one sampled setting
	req.ArchBatch = 0               // all sampled archs in one cell

	cells := 0
	for res, err := range s.Explore(ctx, req) {
		if err != nil {
			log.Fatal(err)
		}
		cells++
		_ = res.Results // per-architecture counters
	}
	fmt.Println(cells)
	// Output: 2
}
