package portcc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"portcc/internal/dataset"
	"portcc/internal/features"
	"portcc/internal/sched"
)

// Progress reports completed exploration work cells. Total is fixed for
// the lifetime of one operation; Done increases monotonically.
type Progress struct {
	Done, Total int
}

// Fraction returns completion in [0, 1].
func (p Progress) Fraction() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Done) / float64(p.Total)
}

// Option configures a Session (functional options).
type Option func(*sessionConfig)

type sessionConfig struct {
	workers      int
	sweepWorkers int
	scale        Scale
	scaleSet     bool
	eval         dataset.EvalConfig
	evalSet      bool
	cacheBudget  int64
	progress     func(Progress)
	shards       []string
	retry        RetryPolicy
	naive        bool
	store        *dataset.ResultStore
}

// WithWorkers bounds the worker pool used by Explore and GenerateDataset
// (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *sessionConfig) { c.workers = n }
}

// WithSweepWorkers bounds the per-geometry sweep parallelism inside each
// batched replay (RunBatch, and each Explore/GenerateDataset worker
// slot). The default (0) auto-tunes: single-trace replays sweep over the
// whole machine, while exploration slots share out the cores their
// fan-out cannot occupy. Results are bit-identical at every setting -
// the sweeps' schedule freedom is proved by the engine's equivalence
// tests - so this knob trades nothing but wall-clock shape.
func WithSweepWorkers(n int) Option {
	return func(c *sessionConfig) { c.sweepWorkers = n }
}

// WithShards distributes Explore and GenerateDataset over portccd worker
// daemons at the given host:port addresses instead of the local worker
// pool. The streamed results merge into datasets bit-identical to a
// local run; cells from a dead shard connection requeue onto the
// survivors while the shard is redialled with backoff (see
// WithShardRetry), and only when every shard has exhausted its retry
// budget does the run surface an error wrapping ErrShardFailure.
// Single-run methods (Run, Speedup, ...) stay local. An empty address
// list keeps execution local.
func WithShards(addrs ...string) Option {
	return func(c *sessionConfig) { c.shards = append([]string(nil), addrs...) }
}

// RetryPolicy governs how a sharded run (WithShards) survives dying
// worker connections. A dead connection's unfinished cells requeue onto
// the surviving shards immediately; the coordinator then redials the
// dead shard with exponential backoff (BaseBackoff doubling up to
// MaxBackoff, jittered deterministically from Seed) for up to
// MaxAttempts consecutive fruitless attempts - any completed cell
// resets the count, so a daemon stuck in a crash/restart loop is
// re-adopted indefinitely as long as it makes progress. Version
// mismatches and protocol violations are never retried. A cell that
// strands MaxStrands dying connections in a row is quarantined: the run
// fails typed with ErrCellPoisoned at that cell's index instead of
// burning every shard's budget on it. Zero fields take scheduler
// defaults (3 attempts, 100ms..5s backoff, 5 strandings).
type RetryPolicy = sched.RetryPolicy

// WithShardRetry sets the reconnect/quarantine policy of sharded runs.
// Without it, sharded sessions use the scheduler defaults; with
// MaxAttempts 1 every connection death permanently removes that shard,
// restoring the pre-retry behaviour.
func WithShardRetry(p RetryPolicy) Option {
	return func(c *sessionConfig) { c.retry = p }
}

// WithScale selects the sampling scale (trace lengths, dataset sizes) the
// session's operations default to. The default is SmallScale for dataset
// work and full-length traces for single runs.
func WithScale(s Scale) Option {
	return func(c *sessionConfig) { c.scale, c.scaleSet = s, true }
}

// WithCacheBudget bounds the per-worker compiled-trace cache by
// approximate resident bytes (default: a small fixed entry count).
func WithCacheBudget(bytes int64) Option {
	return func(c *sessionConfig) { c.cacheBudget = bytes }
}

// WithProgress installs a progress callback invoked after every completed
// exploration cell. Calls are serialised; keep the callback cheap.
func WithProgress(fn func(Progress)) Option {
	return func(c *sessionConfig) { c.progress = fn }
}

// WithNaiveCompile disables the prefix-memoised batched compile engine in
// Explore and GenerateDataset: every grid cell then compiles, traces and
// replays its own setting independently. Datasets are bit-identical
// either way; the naive path exists as the equivalence baseline for
// verification and benchmarking. Sharded runs forward the choice to the
// worker daemons.
func WithNaiveCompile() Option {
	return func(c *sessionConfig) { c.naive = true }
}

// Session is the user-facing entry point: compile benchmarks under chosen
// optimisation settings, run them on simulated microarchitectures, and
// stream design-space explorations. A Session is safe for concurrent use;
// every long-running method takes a context and stops promptly - draining
// its workers - when the context is cancelled.
type Session struct {
	cfg sessionConfig
	ev  *dataset.Evaluator

	mu       sync.Mutex
	baseline map[baselineKey]*baselineEntry // memoised -O3 cycles-per-run
}

type baselineKey struct {
	program string
	arch    Arch
}

// baselineEntry single-flights the -O3 baseline computation: concurrent
// Speedup calls for the same (program, arch) wait for one simulation
// instead of each running their own.
type baselineEntry struct {
	once sync.Once
	v    float64
	err  error
}

// NewSession builds a session from functional options:
//
//	s := portcc.NewSession(portcc.WithWorkers(8), portcc.WithScale(portcc.TinyScale()))
func NewSession(opts ...Option) *Session {
	var cfg sessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &Session{cfg: cfg, baseline: map[baselineKey]*baselineEntry{}}
	s.ev = dataset.NewEvaluator(s.evalConfig())
	// The session's own evaluator serves single-trace calls (RunBatch,
	// Speedup): nothing else competes for the machine there, so its
	// batched replays sweep over the full budget (0 = GOMAXPROCS).
	s.ev.SetSweepWorkers(cfg.sweepWorkers)
	if cfg.store != nil {
		s.ev.SetStore(cfg.store)
	}
	return s
}

// evalConfig derives the evaluator workload parameters from the options:
// an explicit WithEvalConfig wins (deploying a pre-trained artifact must
// profile with the training parameters), then the scale's derivation
// (via genConfig, the single source), then full-length default traces.
func (s *Session) evalConfig() dataset.EvalConfig {
	if s.cfg.evalSet {
		e := s.cfg.eval
		if e.CacheBudget == 0 {
			e.CacheBudget = s.cfg.cacheBudget
		}
		return e
	}
	if s.cfg.scaleSet {
		return s.genConfig(false).Eval
	}
	return dataset.EvalConfig{CacheBudget: s.cfg.cacheBudget}
}

// scale returns the session scale (SmallScale unless WithScale was given).
func (s *Session) scale() Scale {
	if s.cfg.scaleSet {
		return s.cfg.scale
	}
	return SmallScale()
}

// Stats returns how many compiles and simulations the session's own
// evaluator has performed (Explore and GenerateDataset use per-worker
// evaluators and are not counted here).
func (s *Session) Stats() (compiles, simulations int) {
	st := s.ev.Stats()
	return st.Compiles, st.Simulations
}

// Compile builds the named benchmark under the given optimisation setting
// and returns its binary image.
func (s *Session) Compile(ctx context.Context, program string, cfg OptConfig) (*Binary, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, p, err := s.ev.Trace(program, &cfg)
	return p, err
}

// Run compiles and simulates the named benchmark on an architecture,
// returning cycles and the Table 1 performance counters.
func (s *Session) Run(ctx context.Context, program string, cfg OptConfig, arch Arch) (RunResult, error) {
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	if err := arch.Validate(); err != nil {
		return RunResult{}, err
	}
	return s.ev.Run(program, &cfg, arch)
}

// RunBatch compiles the program once and replays its trace on every
// architecture in a single batched pass (bit-identical to calling Run per
// architecture, but the trace is streamed once and cache/BTB state is
// deduplicated by geometry). This is the fast path for design-space
// exploration: one binary, many microarchitectures.
func (s *Session) RunBatch(ctx context.Context, program string, cfg OptConfig, archs []Arch) ([]RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, a := range archs {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("portcc: arch %d: %w", i, err)
		}
	}
	tr, _, err := s.ev.Trace(program, &cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.ev.SimulateBatch(tr, archs), nil
}

// CyclesPerRun returns the work-normalised execution time (cycles per
// complete program run), the metric speedups are computed from.
func (s *Session) CyclesPerRun(ctx context.Context, program string, cfg OptConfig, arch Arch) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := arch.Validate(); err != nil {
		return 0, err
	}
	return s.ev.CyclesPerRun(program, &cfg, arch)
}

// Speedup measures cfg against -O3 on the given architecture. The -O3
// denominator is memoised per (program, architecture) on the session, so
// iterative-compilation loops pay for one baseline simulation, not one
// per candidate.
func (s *Session) Speedup(ctx context.Context, program string, cfg OptConfig, arch Arch) (float64, error) {
	base, err := s.baselineCyclesPerRun(ctx, program, arch)
	if err != nil {
		return 0, err
	}
	got, err := s.CyclesPerRun(ctx, program, cfg, arch)
	if err != nil {
		return 0, err
	}
	if got == 0 {
		return 0, fmt.Errorf("portcc: zero cycle count for %s", program)
	}
	return base / got, nil
}

func (s *Session) baselineCyclesPerRun(ctx context.Context, program string, arch Arch) (float64, error) {
	key := baselineKey{program: program, arch: arch}
	for {
		s.mu.Lock()
		en, ok := s.baseline[key]
		if !ok {
			en = &baselineEntry{}
			s.baseline[key] = en
		}
		s.mu.Unlock()
		en.once.Do(func() { en.v, en.err = s.CyclesPerRun(ctx, program, O3(), arch) })
		if en.err == nil {
			return en.v, nil
		}
		// Failures are not memoised: drop the entry so later calls retry.
		s.mu.Lock()
		if s.baseline[key] == en {
			delete(s.baseline, key)
		}
		s.mu.Unlock()
		// A cancellation may belong to a concurrent caller's context, not
		// ours: if our context is still live, retry with a fresh entry
		// rather than surfacing someone else's cancellation.
		if ctx.Err() == nil && (errors.Is(en.err, context.Canceled) || errors.Is(en.err, context.DeadlineExceeded)) {
			continue
		}
		return 0, en.err
	}
}

// OptimizeFor is the deployment path of Figure 2: one profile run of the
// program at -O3 on the target architecture supplies the performance
// counters; the model predicts the best passes; the returned configuration
// is ready to compile with.
func (s *Session) OptimizeFor(ctx context.Context, program string, arch Arch, m *Model) (OptConfig, error) {
	r, err := s.Run(ctx, program, O3(), arch)
	if err != nil {
		return OptConfig{}, err
	}
	x := features.Vector(arch, &r)
	return m.Predict(x), nil
}
