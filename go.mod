module portcc

go 1.23
