module portcc

go 1.22
