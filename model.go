package portcc

import (
	"portcc/internal/dataset"
	"portcc/internal/ml"
)

// Model artifacts turn a trained predictor into a versioned, reusable
// file: train once (cmd/trainer -model-out), then deploy everywhere -
// cmd/portcc -model compiles with zero retraining, and cmd/portccs
// serves predictions over HTTP. The artifact embeds the sha256
// fingerprint of its training dataset and the generation config, so any
// consumer can trace (and verify) exactly what a model was fitted on.

// Artifact gob wire ids are pinned here, after the dataset package's
// own init pinning (import order guarantees dataset runs first), so
// every binary that writes artifacts assigns identical ids regardless
// of what it gob-encodes first at runtime - artifact files then
// byte-compare across trainer runs and re-saves alike.
func init() { ml.PinGobTypes() }

// ModelInfo is the metadata embedded in a model artifact: the training
// dataset's fingerprint and generation config, the profiling workload
// parameters deployment must reuse, and the training-pair count.
type ModelInfo = ml.ArtifactInfo

// EvalConfig carries the profiling workload parameters (trace length,
// caps, seed) of an evaluator; see WithEvalConfig.
type EvalConfig = dataset.EvalConfig

// WithEvalConfig fixes the session's profiling workload parameters
// directly instead of deriving them from a Scale. Use it when deploying
// a pre-trained model: profiling with the artifact's embedded parameters
// (ModelEval) keeps the measured feature vectors comparable to the
// training distribution. Takes precedence over WithScale.
func WithEvalConfig(e EvalConfig) Option {
	return func(c *sessionConfig) { c.eval, c.evalSet = e, true }
}

// ModelEval reconstructs the profiling workload parameters embedded in
// a model artifact, ready for WithEvalConfig.
func ModelEval(info ModelInfo) EvalConfig {
	return EvalConfig{
		TargetInsns: info.EvalTargetInsns,
		MaxInsns:    info.EvalMaxInsns,
		Seed:        info.EvalSeed,
	}
}

// SaveModel writes a trained model as a versioned artifact, embedding
// the dataset's fingerprint and generation config so the artifact is
// traceable to its training data, and returns the embedded metadata.
// Saving the same model twice produces byte-identical files.
func SaveModel(path string, m *Model, ds *Dataset) (ModelInfo, error) {
	info, err := modelInfo(ds)
	if err != nil {
		return ModelInfo{}, err
	}
	if err := ml.Save(path, m, info); err != nil {
		return ModelInfo{}, err
	}
	info.Pairs = len(m.Pairs)
	return info, nil
}

// modelInfo derives the artifact metadata from the training dataset.
func modelInfo(ds *Dataset) (ModelInfo, error) {
	fp, err := ds.Fingerprint()
	if err != nil {
		return ModelInfo{}, err
	}
	nP, nA, nO := ds.Dims()
	return ModelInfo{
		DatasetSHA256:   fp,
		TrainConfig:     ds.Cfg.Describe(),
		Programs:        nP,
		Archs:           nA,
		Opts:            nO,
		Extended:        ds.Cfg.Extended,
		Seed:            ds.Cfg.Seed,
		EvalTargetInsns: ds.Cfg.Eval.TargetInsns,
		EvalMaxInsns:    ds.Cfg.Eval.MaxInsns,
		EvalSeed:        ds.Cfg.Eval.Seed,
	}, nil
}

// LoadModel reads a model artifact written by SaveModel. Files without
// a matching header - foreign files or artifacts from a different
// schema version - fail with an error wrapping ErrModelVersion.
func LoadModel(path string) (*Model, ModelInfo, error) {
	return ml.Load(path)
}
