// Package portcc is a portable optimising compiler: a reproduction of
// "Portable Compiler Optimisation Across Embedded Programs and
// Microarchitectures using Machine Learning" (Dubach, Jones, Bonilla,
// Fursin, O'Boyle - MICRO 2009) as a self-contained Go library.
//
// The library contains the paper's entire experimental stack: a compiler
// with the gcc 4.2 optimisation space of the paper's Figure 3, the 35
// MiBench-equivalent benchmark programs, an XScale-class trace-driven
// simulator with the Table 1 performance counters over the Table 2
// microarchitecture design space, the machine-learning model of Section 3,
// the iterative-compilation baselines, and drivers that regenerate every
// table and figure of the evaluation.
//
// # Quick start
//
//	compiler := portcc.New()
//	result, err := compiler.Run("rijndael_e", portcc.O3(), portcc.XScale())
//
// To use the learned model end-to-end (Figure 2's deployment path):
//
//	ds, _ := portcc.TinyScale().Dataset(false)
//	model, _ := portcc.TrainModel(ds)
//	cfg, _ := compiler.OptimizeFor("rijndael_e", arch, model) // one -O3 profile run + prediction
package portcc

import (
	"fmt"

	"portcc/internal/codegen"
	"portcc/internal/cpu"
	"portcc/internal/dataset"
	"portcc/internal/experiments"
	"portcc/internal/features"
	"portcc/internal/ml"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/uarch"
)

// Re-exported configuration types.
type (
	// OptConfig is one point of the compiler optimisation space
	// (30 boolean flags plus 9 parameters; Figure 3).
	OptConfig = opt.Config
	// Arch is one microarchitecture configuration (Table 2).
	Arch = uarch.Config
	// RunResult carries cycles and the Table 1 performance counters.
	RunResult = cpu.Result
	// Model is the trained predictive model of Section 3.
	Model = ml.Model
	// Dataset is the training data of Section 3.2.
	Dataset = dataset.Dataset
	// Scale selects experiment sampling sizes.
	Scale = experiments.Scale
	// Binary is a placed program image.
	Binary = codegen.Program
)

// O3 returns the highest default optimisation level, the paper's baseline.
func O3() OptConfig { return opt.O3() }

// XScale returns the Intel XScale reference microarchitecture.
func XScale() Arch { return uarch.XScale() }

// Programs returns the 35 benchmark names in the paper's Figure 4 order.
func Programs() []string { return prog.Names() }

// Scales.
func TinyScale() Scale   { return experiments.Tiny }
func SmallScale() Scale  { return experiments.Small }
func MediumScale() Scale { return experiments.Medium }
func PaperScale() Scale  { return experiments.Paper }

// Compiler is the user-facing facade: compile benchmarks under chosen
// optimisation settings and run them on simulated microarchitectures.
type Compiler struct {
	ev *dataset.Evaluator
}

// New builds a compiler with default workload scaling.
func New() *Compiler {
	return &Compiler{ev: dataset.NewEvaluator(dataset.EvalConfig{})}
}

// Compile builds the named benchmark under the given optimisation setting
// and returns its binary image.
func (c *Compiler) Compile(program string, cfg OptConfig) (*Binary, error) {
	_, p, err := c.ev.Trace(program, &cfg)
	return p, err
}

// Run compiles and simulates the named benchmark on an architecture,
// returning cycles and performance counters.
func (c *Compiler) Run(program string, cfg OptConfig, arch Arch) (RunResult, error) {
	return c.ev.Run(program, &cfg, arch)
}

// RunBatch compiles the program once and replays its trace on every
// architecture in a single batched pass (bit-identical to calling Run per
// architecture, but the trace is streamed once and cache/BTB state is
// deduplicated by geometry). This is the fast path for design-space
// exploration: one binary, many microarchitectures.
func (c *Compiler) RunBatch(program string, cfg OptConfig, archs []Arch) ([]RunResult, error) {
	tr, _, err := c.ev.Trace(program, &cfg)
	if err != nil {
		return nil, err
	}
	return c.ev.SimulateBatch(tr, archs), nil
}

// CyclesPerRun returns the work-normalised execution time (cycles per
// complete program run), the metric speedups are computed from.
func (c *Compiler) CyclesPerRun(program string, cfg OptConfig, arch Arch) (float64, error) {
	return c.ev.CyclesPerRun(program, &cfg, arch)
}

// Speedup measures cfg against -O3 on the given architecture.
func (c *Compiler) Speedup(program string, cfg OptConfig, arch Arch) (float64, error) {
	base, err := c.CyclesPerRun(program, O3(), arch)
	if err != nil {
		return 0, err
	}
	got, err := c.CyclesPerRun(program, cfg, arch)
	if err != nil {
		return 0, err
	}
	if got == 0 {
		return 0, fmt.Errorf("portcc: zero cycle count for %s", program)
	}
	return base / got, nil
}

// TrainModel fits the paper's model on a dataset: per-pair IID
// distributions over the good optimisation settings, combined at
// prediction time by KNN in feature space.
func TrainModel(ds *Dataset) (*Model, error) {
	pairs, err := ds.TrainingPairs()
	if err != nil {
		return nil, err
	}
	return ml.Train(pairs), nil
}

// OptimizeFor is the deployment path of Figure 2: one profile run of the
// program at -O3 on the target architecture supplies the performance
// counters; the model predicts the best passes; the returned configuration
// is ready to compile with.
func (c *Compiler) OptimizeFor(program string, arch Arch, m *Model) (OptConfig, error) {
	r, err := c.ev.Run(program, ptrTo(O3()), arch)
	if err != nil {
		return OptConfig{}, err
	}
	x := features.Vector(arch, &r)
	return m.Predict(x, ml.Exclude{Prog: "", Arch: -1}), nil
}

func ptrTo(c OptConfig) *OptConfig { return &c }
