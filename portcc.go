// Package portcc is a portable optimising compiler: a reproduction of
// "Portable Compiler Optimisation Across Embedded Programs and
// Microarchitectures using Machine Learning" (Dubach, Jones, Bonilla,
// Fursin, O'Boyle - MICRO 2009) as a self-contained Go library.
//
// The library contains the paper's entire experimental stack: a compiler
// with the gcc 4.2 optimisation space of the paper's Figure 3, the 35
// MiBench-equivalent benchmark programs, an XScale-class trace-driven
// simulator with the Table 1 performance counters over the Table 2
// microarchitecture design space, the machine-learning model of Section 3,
// the iterative-compilation baselines, and drivers that regenerate every
// table and figure of the evaluation.
//
// # Quick start
//
// The entry point is a Session, configured with functional options; every
// long-running method takes a context and stops promptly - draining its
// workers - on cancellation:
//
//	ctx := context.Background()
//	s := portcc.NewSession(portcc.WithWorkers(4))
//	result, err := s.Run(ctx, "rijndael_e", portcc.O3(), portcc.XScale())
//
// To use the learned model end-to-end (Figure 2's deployment path):
//
//	s := portcc.NewSession(portcc.WithScale(portcc.TinyScale()))
//	ds, _ := s.GenerateDataset(ctx, false)
//	model, _ := portcc.TrainModel(ds)
//	cfg, _ := s.OptimizeFor(ctx, "rijndael_e", arch, model) // one -O3 profile run + prediction
//
// Design-space exploration streams results as grid cells complete, over a
// bounded worker pool:
//
//	req, _ := s.NewExploreRequest(false)
//	for res, err := range s.Explore(ctx, req) {
//		if err != nil { ... } // typed: SimError, PartialError, ErrUnknownProgram, ...
//		use(res)
//	}
//
// Errors discriminate with errors.Is/As against the typed vocabulary in
// errors.go. The pre-context Compiler facade remains as a deprecated shim.
package portcc

import (
	"context"

	"portcc/internal/codegen"
	"portcc/internal/cpu"
	"portcc/internal/dataset"
	"portcc/internal/experiments"
	"portcc/internal/ml"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/uarch"
)

// Re-exported configuration types.
type (
	// OptConfig is one point of the compiler optimisation space
	// (30 boolean flags plus 9 parameters; Figure 3).
	OptConfig = opt.Config
	// Arch is one microarchitecture configuration (Table 2).
	Arch = uarch.Config
	// RunResult carries cycles and the Table 1 performance counters.
	RunResult = cpu.Result
	// Model is the trained predictive model of Section 3.
	Model = ml.Model
	// Dataset is the training data of Section 3.2.
	Dataset = dataset.Dataset
	// Scale selects experiment sampling sizes.
	Scale = experiments.Scale
	// Binary is a placed program image.
	Binary = codegen.Program
)

// O3 returns the highest default optimisation level, the paper's baseline.
func O3() OptConfig { return opt.O3() }

// XScale returns the Intel XScale reference microarchitecture.
func XScale() Arch { return uarch.XScale() }

// Programs returns the 35 benchmark names in the paper's Figure 4 order.
func Programs() []string { return prog.Names() }

// Scales.
func TinyScale() Scale   { return experiments.Tiny }
func SmallScale() Scale  { return experiments.Small }
func MediumScale() Scale { return experiments.Medium }
func PaperScale() Scale  { return experiments.Paper }

// TrainModel fits the paper's model on a dataset: per-pair IID
// distributions over the good optimisation settings, combined at
// prediction time by KNN in feature space.
func TrainModel(ds *Dataset) (*Model, error) {
	pairs, err := ds.TrainingPairs()
	if err != nil {
		return nil, err
	}
	return ml.Train(pairs), nil
}

// Compiler is the pre-Session facade.
//
// Deprecated: use Session, which adds context cancellation, functional
// options, typed errors and streaming exploration. Compiler delegates to
// a Session with background contexts.
type Compiler struct {
	s *Session
}

// New builds a compiler with default workload scaling.
//
// Deprecated: use NewSession.
func New() *Compiler { return &Compiler{s: NewSession()} }

// Compile builds the named benchmark under the given optimisation setting.
//
// Deprecated: use Session.Compile.
func (c *Compiler) Compile(program string, cfg OptConfig) (*Binary, error) {
	return c.s.Compile(context.Background(), program, cfg)
}

// Run compiles and simulates the named benchmark on an architecture.
//
// Deprecated: use Session.Run.
func (c *Compiler) Run(program string, cfg OptConfig, arch Arch) (RunResult, error) {
	return c.s.Run(context.Background(), program, cfg, arch)
}

// RunBatch replays the program's trace on every architecture in one pass.
//
// Deprecated: use Session.RunBatch.
func (c *Compiler) RunBatch(program string, cfg OptConfig, archs []Arch) ([]RunResult, error) {
	return c.s.RunBatch(context.Background(), program, cfg, archs)
}

// CyclesPerRun returns cycles per complete program run.
//
// Deprecated: use Session.CyclesPerRun.
func (c *Compiler) CyclesPerRun(program string, cfg OptConfig, arch Arch) (float64, error) {
	return c.s.CyclesPerRun(context.Background(), program, cfg, arch)
}

// Speedup measures cfg against -O3 on the given architecture.
//
// Deprecated: use Session.Speedup.
func (c *Compiler) Speedup(program string, cfg OptConfig, arch Arch) (float64, error) {
	return c.s.Speedup(context.Background(), program, cfg, arch)
}

// OptimizeFor predicts the best passes from one -O3 profile run.
//
// Deprecated: use Session.OptimizeFor.
func (c *Compiler) OptimizeFor(program string, arch Arch, m *Model) (OptConfig, error) {
	return c.s.OptimizeFor(context.Background(), program, arch, m)
}
