// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artefact at the
// benchmark scale and reports the headline quantities as custom metrics,
// so `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// Scale: set PORTCC_SCALE=tiny|small|medium|paper (default tiny for quick
// runs; the numbers in EXPERIMENTS.md use medium or larger). The dataset
// and leave-one-out predictions are computed once per scale and shared by
// the benchmarks, mirroring the paper's one-off training cost.
package portcc_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"portcc/internal/dataset"
	"portcc/internal/experiments"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
	"portcc/internal/uarch"

	"portcc/internal/core"
	"portcc/internal/cpu"
)

func benchScale() experiments.Scale {
	switch os.Getenv("PORTCC_SCALE") {
	case "small":
		return experiments.Small
	case "medium":
		return experiments.Medium
	case "paper":
		return experiments.Paper
	default:
		return experiments.Tiny
	}
}

var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
	benchPR   *experiments.Predictions
	benchErr  error
)

func benchData(b *testing.B) (*dataset.Dataset, *experiments.Predictions) {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := benchScale().Dataset(false)
		if err != nil {
			benchErr = err
			return
		}
		pr, err := experiments.Predict(context.Background(), ds)
		if err != nil {
			benchErr = err
			return
		}
		benchDS, benchPR = ds, pr
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS, benchPR
}

// BenchmarkTable1Counters measures the deployment profiling run: one -O3
// simulation on the XScale producing the 11 Table 1 counters.
func BenchmarkTable1Counters(b *testing.B) {
	m := prog.MustBuild("madplay")
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.Generate(p, trace.Config{Runs: 2, MaxInsns: 200000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := cpu.Simulate(tr, uarch.XScale())
		if r.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
	b.ReportMetric(float64(tr.Insns()), "insns/run")
}

// BenchmarkTable2Space samples the 288,000-configuration design space.
func BenchmarkTable2Space(b *testing.B) {
	if (uarch.Space{}).Count() != 288000 {
		b.Fatal("space size drifted from Table 2")
	}
	for i := 0; i < b.N; i++ {
		space := uarch.Space{}
		_ = space.Count()
	}
	b.ReportMetric(288000, "configs")
}

// BenchmarkFigure1Example regenerates the Section 2 segment diagrams.
func BenchmarkFigure1Example(b *testing.B) {
	ds, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Space reports the optimisation-space sizes.
func BenchmarkFigure3Space(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, _ = opt.SpaceSizes()
	}
	raw, eff, log10 := opt.SpaceSizes()
	b.ReportMetric(raw, "raw-combos")
	b.ReportMetric(eff, "effective-combos")
	b.ReportMetric(log10, "log10-full-space")
}

// BenchmarkFigure4MaxSpeedup regenerates the per-program best-speedup
// distribution; the reported average corresponds to the paper's 1.23x.
func BenchmarkFigure4MaxSpeedup(b *testing.B) {
	ds, _ := benchData(b)
	var f4 *experiments.Figure4Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f4 = experiments.Figure4(ds)
	}
	b.ReportMetric(f4.Average, "best-avg-x")
	b.ReportMetric(f4.WrongAvg, "wrong-avg-x")
	b.ReportMetric(f4.WrongWorst, "wrong-worst-x")
}

// BenchmarkFigure5Surface regenerates the best-vs-predicted surface and
// reports the correlation (paper: 0.93).
func BenchmarkFigure5Surface(b *testing.B) {
	_, pr := benchData(b)
	var f5 *experiments.Figure5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f5 = experiments.Figure5(pr)
	}
	b.ReportMetric(f5.Correlation, "correlation")
	b.ReportMetric(f5.MaxBest, "surface-peak-x")
}

// BenchmarkFigure6PerProgram regenerates the per-program model-vs-best
// comparison (paper: model 1.16x = 67% of best 1.23x).
func BenchmarkFigure6PerProgram(b *testing.B) {
	_, pr := benchData(b)
	var f6 *experiments.Figure6Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f6 = experiments.Figure6(pr)
	}
	b.ReportMetric(f6.ModelAvg, "model-avg-x")
	b.ReportMetric(f6.BestAvg, "best-avg-x")
	b.ReportMetric(f6.PercentOfMax, "percent-of-max")
}

// BenchmarkFigure7PerArch regenerates the per-microarchitecture view
// (paper: model 1.08x..1.35x).
func BenchmarkFigure7PerArch(b *testing.B) {
	_, pr := benchData(b)
	var f7 *experiments.Figure7Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f7 = experiments.Figure7(pr)
	}
	b.ReportMetric(f7.ModelMin, "model-min-x")
	b.ReportMetric(f7.ModelMax, "model-max-x")
}

// BenchmarkFigure8Hinton regenerates the optimisation/program mutual
// information diagram.
func BenchmarkFigure8Hinton(b *testing.B) {
	ds, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := experiments.Figure8(ds)
		if len(h.Cells) == 0 {
			b.Fatal("empty diagram")
		}
	}
}

// BenchmarkFigure9Hinton regenerates the optimisation/feature mutual
// information diagram.
func BenchmarkFigure9Hinton(b *testing.B) {
	ds, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := experiments.Figure9(ds)
		if len(h.Cells) == 0 {
			b.Fatal("empty diagram")
		}
	}
}

// BenchmarkFigure10Extended evaluates the unmodified model on the Section 7
// extended space (paper: best 1.24x, model 1.14x).
func BenchmarkFigure10Extended(b *testing.B) {
	scale := benchScale()
	var f10 *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		ds, err := scale.Dataset(true)
		if err != nil {
			b.Fatal(err)
		}
		pr, err := experiments.Predict(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
		f10 = experiments.Figure10(pr)
	}
	b.ReportMetric(f10.ModelAvg, "model-avg-x")
	b.ReportMetric(f10.BestAvg, "best-avg-x")
}

// BenchmarkIterationsToMatch reproduces the Section 5.3 comparison
// (paper: ~50 random-search evaluations to match the model).
func BenchmarkIterationsToMatch(b *testing.B) {
	_, pr := benchData(b)
	var it *experiments.IterationsResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it = experiments.IterationsToMatch(pr)
	}
	b.ReportMetric(it.MeanEvals, "evals-to-match")
}

// BenchmarkAblationK reproduces the Section 3.3.2 claim that the model is
// insensitive to the neighbour count around K=7.
func BenchmarkAblationK(b *testing.B) {
	ds, _ := benchData(b)
	var ab *experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		ab, err = experiments.Ablation(context.Background(), ds, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, k := range ab.Ks {
		b.ReportMetric(ab.KAvg[i], "K"+string(rune('0'+k/10))+string(rune('0'+k%10))+"-avg-x")
	}
}

// BenchmarkCompile measures raw compiler throughput at -O3 over the suite.
func BenchmarkCompile(b *testing.B) {
	o3 := opt.O3()
	mods := make(map[string]int)
	_ = mods
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := prog.Names()[i%len(prog.Names())]
		m := prog.MustBuild(name)
		if _, err := core.Compile(m, &o3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures simulator throughput (events per second).
func BenchmarkSimulate(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Simulate(tr, uarch.XScale())
	}
	b.ReportMetric(float64(tr.Insns()), "events")
}

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	m := prog.MustBuild("gs")
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		b.Fatal(err)
	}
	return trace.Generate(p, trace.Config{Runs: 2, MaxInsns: 200000, Seed: 1})
}

// benchArchCounts are the multi-architecture replay sizes: the protocol
// sweep from the Small scale up to the paper's 200-architecture sample.
var benchArchCounts = []int{16, 64, 200}

// BenchmarkSimulateSequential is the pre-batching baseline: the per-config
// loop that replays the identical trace once per architecture. The custom
// metric is aggregate throughput in millions of (event x config) per
// second, comparable across architecture counts.
func BenchmarkSimulateSequential(b *testing.B) {
	tr := benchTrace(b)
	for _, n := range benchArchCounts {
		rng := rand.New(rand.NewSource(7))
		cfgs := uarch.Space{}.SampleN(rng, n)
		b.Run(fmt.Sprintf("archs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, c := range cfgs {
					cpu.Simulate(tr, c)
				}
			}
			b.ReportMetric(float64(tr.Insns()*len(cfgs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevc/s")
		})
	}
}

// BenchmarkSimulateBatch measures the batched multi-architecture engine:
// one pass over the trace advancing every configuration together, with
// cache and BTB state deduplicated by geometry (bit-identical to the
// sequential loop; see internal/cpu/batch_test.go). Compare Mevc/s against
// BenchmarkSimulateSequential at the same architecture count. The extended
// sub-benchmark covers the §7 space whose dual-issue configurations keep a
// per-event model.
func BenchmarkSimulateBatch(b *testing.B) {
	tr := benchTrace(b)
	for _, n := range benchArchCounts {
		rng := rand.New(rand.NewSource(7))
		cfgs := uarch.Space{}.SampleN(rng, n)
		b.Run(fmt.Sprintf("archs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cpu.SimulateBatch(tr, cfgs)
			}
			b.ReportMetric(float64(tr.Insns()*len(cfgs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevc/s")
		})
	}
	rng := rand.New(rand.NewSource(7))
	cfgs := uarch.Space{Extended: true}.SampleN(rng, 64)
	b.Run("extended-archs=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cpu.SimulateBatch(tr, cfgs)
		}
		b.ReportMetric(float64(tr.Insns()*len(cfgs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevc/s")
	})
}
