package portcc

import "portcc/internal/opt"

// Flag and Param identify optimisation dimensions of OptConfig.
type (
	Flag  = opt.Flag
	Param = opt.Param
)

// The boolean optimisation flags of the paper's Figure 3 space.
const (
	FThreadJumps            = opt.FThreadJumps
	FCrossjumping           = opt.FCrossjumping
	FOptimizeSiblingCalls   = opt.FOptimizeSiblingCalls
	FCseFollowJumps         = opt.FCseFollowJumps
	FCseSkipBlocks          = opt.FCseSkipBlocks
	FExpensiveOptimizations = opt.FExpensiveOptimizations
	FStrengthReduce         = opt.FStrengthReduce
	FRerunCseAfterLoop      = opt.FRerunCseAfterLoop
	FRerunLoopOpt           = opt.FRerunLoopOpt
	FCallerSaves            = opt.FCallerSaves
	FPeephole2              = opt.FPeephole2
	FRegmove                = opt.FRegmove
	FReorderBlocks          = opt.FReorderBlocks
	FAlignFunctions         = opt.FAlignFunctions
	FAlignJumps             = opt.FAlignJumps
	FAlignLoops             = opt.FAlignLoops
	FAlignLabels            = opt.FAlignLabels
	FTreeVrp                = opt.FTreeVrp
	FTreePre                = opt.FTreePre
	FUnswitchLoops          = opt.FUnswitchLoops
	FGcse                   = opt.FGcse
	FNoGcseLm               = opt.FNoGcseLm
	FGcseSm                 = opt.FGcseSm
	FGcseLas                = opt.FGcseLas
	FGcseAfterReload        = opt.FGcseAfterReload
	FScheduleInsns          = opt.FScheduleInsns
	FNoSchedInterblock      = opt.FNoSchedInterblock
	FNoSchedSpec            = opt.FNoSchedSpec
	FInlineFunctions        = opt.FInlineFunctions
	FUnrollLoops            = opt.FUnrollLoops
)

// The bounded optimisation parameters of the Figure 3 space.
const (
	PMaxGcsePasses       = opt.PMaxGcsePasses
	PMaxInlineInsnsAuto  = opt.PMaxInlineInsnsAuto
	PLargeFunctionInsns  = opt.PLargeFunctionInsns
	PLargeFunctionGrowth = opt.PLargeFunctionGrowth
	PLargeUnitInsns      = opt.PLargeUnitInsns
	PInlineUnitGrowth    = opt.PInlineUnitGrowth
	PInlineCallCost      = opt.PInlineCallCost
	PMaxUnrollTimes      = opt.PMaxUnrollTimes
	PMaxUnrolledInsns    = opt.PMaxUnrolledInsns
)
