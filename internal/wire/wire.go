// Package wire is the coordinator/worker frame protocol of distributed
// exploration: gob-encoded frames over one byte stream (TCP in
// production, net.Pipe in tests). The protocol is deliberately small -
// a version handshake, one job description, cell assignments downstream,
// results and heartbeats upstream - and deliberately typed: version
// mismatches between builds fail the handshake with the pcerr sentinels
// instead of surfacing as mid-stream gob decode noise.
//
// Job specs and cell results cross as interface-typed payloads, so the
// protocol is transport machinery only; the application layer registers
// its concrete payload types with encoding/gob (the dataset package
// registers ExploreRequest and ExploreResult).
package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"time"

	"portcc/internal/pcerr"
)

// ProtoVersion is the wire protocol version. Bump it whenever the frame
// layout or the exchange sequence changes incompatibly; the handshake
// refuses mismatched peers with pcerr.ErrWireVersion.
const ProtoVersion = 1

// Hello opens every connection, in both directions: the client sends its
// versions first, the server always replies with its own before judging,
// so a mismatched peer learns both sides' versions. Heartbeat is only
// meaningful server-to-client: the period at which the server promises
// to emit Heartbeat frames while a connection is otherwise quiet.
type Hello struct {
	Proto     int
	Format    int
	Heartbeat time.Duration
}

// Job describes the whole work grid once per connection. Spec is an
// application value (gob-registered by the application layer) that the
// worker turns into an executable cell runner.
type Job struct {
	Spec any
}

// Assign hands the worker a batch of cell indices into the job's grid.
// The worker must resolve every assigned cell with exactly one Result or
// CellError frame; the coordinator treats a connection that dies with
// cells unresolved as a dead shard and requeues them elsewhere.
type Assign struct {
	Cells []int
}

// Result is one completed cell, identified by its grid index.
type Result struct {
	Index   int
	Payload any
}

// Sentinel codes carried by CellError, so the coordinator can
// reconstruct errors.Is-compatible failures across the wire.
const (
	CodeNone = iota
	CodeUnknownProgram
	CodeInvalidConfig
	// CodePanic marks a cell whose runner panicked on the worker; the
	// daemon recovered and kept serving, degrading the panic to a cell
	// failure instead of a dead shard.
	CodePanic
)

// CellError is one failed cell. Msg is the far side's rendering of the
// underlying error (the original chain cannot cross the wire); the Sim
// fields preserve pcerr.SimError's grid location when the failure had
// one, and Code preserves the pcerr sentinel it matched.
type CellError struct {
	Index   int
	Msg     string
	Code    int
	Sim     bool
	Program string
	Setting int
	Arch    int
}

// Fail refuses a whole job (for example, a spec the worker's build
// cannot execute). The connection closes after it.
type Fail struct {
	Msg string
}

// StoreGet asks the store service for the entry under Key. ID correlates
// the eventual StoreReply: the connection is pipelined, so replies may
// arrive out of order relative to requests.
type StoreGet struct {
	ID  uint64
	Key [32]byte
}

// StorePut offers the store service an entry to commit. The service
// acknowledges with a StoreReply carrying the same ID (Err set when the
// commit failed - degraded, not fatal).
type StorePut struct {
	ID      uint64
	Key     [32]byte
	Payload []byte
}

// StoreReply answers exactly one StoreGet or StorePut. For a Get, Found
// reports presence and Payload carries the bytes; for a Put, Found is
// true on commit. Err is the service-side rendering of a degraded
// request (corrupt entry quarantined, full disk) - the client absorbs
// it as a miss or a lost commit, never as wrong data.
type StoreReply struct {
	ID      uint64
	Found   bool
	Payload []byte
	Err     string
}

// Frame is the single on-stream message type: exactly one field is
// populated per frame (Heartbeat frames set only the flag).
type Frame struct {
	Hello      *Hello
	Job        *Job
	Assign     *Assign
	Result     *Result
	CellError  *CellError
	Fail       *Fail
	StoreGet   *StoreGet
	StorePut   *StorePut
	StoreReply *StoreReply
	Heartbeat  bool
}

// Kind names the populated field, for protocol-error messages.
func (f *Frame) Kind() string {
	switch {
	case f.Hello != nil:
		return "hello"
	case f.Job != nil:
		return "job"
	case f.Assign != nil:
		return "assign"
	case f.Result != nil:
		return "result"
	case f.CellError != nil:
		return "cell-error"
	case f.Fail != nil:
		return "fail"
	case f.StoreGet != nil:
		return "store-get"
	case f.StorePut != nil:
		return "store-put"
	case f.StoreReply != nil:
		return "store-reply"
	case f.Heartbeat:
		return "heartbeat"
	}
	return "empty"
}

// Conn frames gob messages over one byte stream. Sends are serialised by
// an internal lock, so result-streaming workers and their heartbeat
// tickers share a connection safely; Recv must stay single-reader.
type Conn struct {
	wmu sync.Mutex
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewConn wraps a byte stream. Deadlines stay the caller's business: the
// wrapper never touches the underlying net.Conn interface.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// Send writes one frame, whole, under the write lock.
func (c *Conn) Send(f *Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(f)
}

// Recv reads the next frame.
func (c *Conn) Recv() (*Frame, error) {
	var f Frame
	if err := c.dec.Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// checkVersions compares a peer's Hello against this build, wrapping the
// typed sentinels: protocol drift and application schema drift are
// different failures with different fixes.
func checkVersions(peer *Hello, format int) error {
	if peer.Proto != ProtoVersion {
		return fmt.Errorf("wire: %w: peer speaks protocol v%d, this build v%d",
			pcerr.ErrWireVersion, peer.Proto, ProtoVersion)
	}
	if peer.Format != format {
		return fmt.Errorf("wire: %w: peer carries format v%d, this build v%d",
			pcerr.ErrDatasetVersion, peer.Format, format)
	}
	return nil
}

// ClientHello performs the coordinator side of the handshake: send our
// versions, read the worker's, and verify both. It returns the worker's
// announced heartbeat period (defaulted when unset) so the caller can
// derive a read deadline.
func (c *Conn) ClientHello(format int) (heartbeat time.Duration, err error) {
	if err := c.Send(&Frame{Hello: &Hello{Proto: ProtoVersion, Format: format}}); err != nil {
		return 0, err
	}
	f, err := c.Recv()
	if err != nil {
		return 0, err
	}
	if f.Hello == nil {
		return 0, fmt.Errorf("wire: expected hello, got %s frame", f.Kind())
	}
	if err := checkVersions(f.Hello, format); err != nil {
		return 0, err
	}
	hb := f.Hello.Heartbeat
	if hb <= 0 {
		hb = time.Second
	}
	return hb, nil
}

// ServerHello performs the worker side: read the coordinator's versions,
// always reply with our own (a mismatched coordinator needs them to
// report a useful error), then verify. A non-nil error means the
// connection must be dropped without serving.
func (c *Conn) ServerHello(format int, heartbeat time.Duration) error {
	f, err := c.Recv()
	if err != nil {
		return err
	}
	if f.Hello == nil {
		return fmt.Errorf("wire: expected hello, got %s frame", f.Kind())
	}
	if err := c.Send(&Frame{Hello: &Hello{Proto: ProtoVersion, Format: format, Heartbeat: heartbeat}}); err != nil {
		return err
	}
	return checkVersions(f.Hello, format)
}
