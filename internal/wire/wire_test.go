package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"portcc/internal/pcerr"
)

// testPayload stands in for the application work units that cross the
// wire as interface values.
type testPayload struct {
	Name  string
	Cells []int
}

func init() {
	gob.Register(testPayload{})
}

// TestFrameRoundTrips pushes one frame of every kind through a Conn pair
// and requires the decoded frame to match field for field, including the
// interface-typed payloads.
func TestFrameRoundTrips(t *testing.T) {
	frames := []*Frame{
		{Hello: &Hello{Proto: 3, Format: 9, Heartbeat: 250 * time.Millisecond}},
		{Job: &Job{Spec: testPayload{Name: "grid", Cells: []int{0, 1, 2}}}},
		{Assign: &Assign{Cells: []int{4, 7, 19}}},
		{Result: &Result{Index: 7, Payload: testPayload{Name: "cell-7"}}},
		{CellError: &CellError{Index: 3, Msg: "boom", Code: CodeUnknownProgram, Sim: true, Program: "crc", Setting: 2, Arch: 5}},
		{Fail: &Fail{Msg: "refused"}},
		{StoreGet: &StoreGet{ID: 11, Key: [32]byte{1, 2, 3}}},
		{StorePut: &StorePut{ID: 12, Key: [32]byte{4, 5}, Payload: []byte("cycles")}},
		{StoreReply: &StoreReply{ID: 11, Found: true, Payload: []byte("cycles")}},
		{StoreReply: &StoreReply{ID: 13, Err: "disk full"}},
		{Heartbeat: true},
	}
	var buf bytes.Buffer
	c := NewConn(&buf)
	for _, f := range frames {
		if err := c.Send(f); err != nil {
			t.Fatalf("sending %s frame: %v", f.Kind(), err)
		}
	}
	for _, want := range frames {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("receiving %s frame: %v", want.Kind(), err)
		}
		if got.Kind() != want.Kind() {
			t.Fatalf("got %s frame, want %s", got.Kind(), want.Kind())
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s frame changed in transit:\n got %+v\nwant %+v", want.Kind(), got, want)
		}
	}
}

// pipePair returns the two ends of an in-memory connection.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a), NewConn(b)
}

func TestHandshakeAgrees(t *testing.T) {
	client, server := pipePair(t)
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.ServerHello(7, 125*time.Millisecond) }()
	hb, err := client.ClientHello(7)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if hb != 125*time.Millisecond {
		t.Errorf("client saw heartbeat %v, want 125ms", hb)
	}
	if err := <-srvErr; err != nil {
		t.Errorf("server handshake: %v", err)
	}
}

// TestHandshakeFormatMismatch: a coordinator and worker built against
// different dataset schema versions must fail typed on both sides, not
// with gob decode noise.
func TestHandshakeFormatMismatch(t *testing.T) {
	client, server := pipePair(t)
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.ServerHello(8, 0) }()
	_, err := client.ClientHello(7)
	if !errors.Is(err, pcerr.ErrDatasetVersion) {
		t.Errorf("client: got %v, want ErrDatasetVersion", err)
	}
	if err := <-srvErr; !errors.Is(err, pcerr.ErrDatasetVersion) {
		t.Errorf("server: got %v, want ErrDatasetVersion", err)
	}
}

// TestHandshakeProtoMismatch fakes a peer speaking a future protocol
// version: the rejection must be the wire sentinel, distinct from the
// dataset schema sentinel.
func TestHandshakeProtoMismatch(t *testing.T) {
	client, fake := pipePair(t)
	srvErr := make(chan error, 1)
	go func() {
		if _, err := fake.Recv(); err != nil {
			srvErr <- err
			return
		}
		srvErr <- fake.Send(&Frame{Hello: &Hello{Proto: ProtoVersion + 1, Format: 7}})
	}()
	_, err := client.ClientHello(7)
	if !errors.Is(err, pcerr.ErrWireVersion) {
		t.Errorf("got %v, want ErrWireVersion", err)
	}
	if errors.Is(err, pcerr.ErrDatasetVersion) {
		t.Error("proto mismatch also matched ErrDatasetVersion")
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("fake server: %v", err)
	}
}

// TestHandshakeHeartbeatDefault: a server that does not announce a
// heartbeat period still yields a usable (positive) client deadline base.
func TestHandshakeHeartbeatDefault(t *testing.T) {
	client, server := pipePair(t)
	go server.ServerHello(1, 0)
	hb, err := client.ClientHello(1)
	if err != nil {
		t.Fatal(err)
	}
	if hb <= 0 {
		t.Errorf("defaulted heartbeat %v, want > 0", hb)
	}
}
