package opt

import (
	"fmt"
	"strings"
)

// Pass identifies one pipeline step kind. The numbering is part of the
// canonical plan encoding (Plan.Key) and must stay stable; new kinds go
// at the end.
type Pass uint8

// The pipeline step kinds, in rough pipeline order.
const (
	PassInline  Pass = iota // module: function inlining (6 param args)
	PassSibling             // module: sibling-call optimisation
	PassVRP
	PassLocalCSE // args: followJumps, skipBlocks
	PassPRE
	PassGCSE // args: max passes of the bounded fixpoint loop
	PassGCSELas
	PassStoreMotion
	PassLICM // args: loadMotion
	PassUnswitch
	PassStrengthReduce
	PassUnroll // args: maxTimes, maxInsns
	PassRegmove
	PassThreadJumps
	PassDeadCode
	PassSchedule // args: interblock, speculative
	PassReorderBlocks
	PassAlign // args: functions, loops, jumps, labels
	PassAlloc // args: caller-saves (masked off for library functions)
	PassGCSEReload
	PassPeephole2
	PassCrossJump

	// NumPasses is the number of step kinds.
	NumPasses = int(PassCrossJump) + 1
)

var passNames = [NumPasses]string{
	"inline", "sibling", "vrp", "cse", "pre", "gcse", "gcse_las",
	"store_motion", "licm", "unswitch", "strength_reduce", "unroll",
	"regmove", "thread_jumps", "dead_code", "schedule", "reorder_blocks",
	"align", "alloc", "gcse_reload", "peephole2", "crossjump",
}

// String returns the step-kind name.
func (p Pass) String() string {
	if int(p) < NumPasses {
		return passNames[p]
	}
	return fmt.Sprintf("pass(%d)", uint8(p))
}

// Step is one pass application of a pipeline plan: the pass kind plus the
// concrete argument values it runs with. Steps are comparable values, so
// the batch compiler's prefix trie groups plans by their next step with
// plain equality - a prefix is identified by its exact step sequence, so
// no hashing scheme can ever merge distinct prefixes.
type Step struct {
	Pass Pass
	// Args carries the concrete pass arguments (booleans as 0/1,
	// parameters as their resolved values, not level indices). Unused
	// slots are zero.
	Args [6]int32
}

func step(p Pass, args ...int32) Step {
	s := Step{Pass: p}
	copy(s.Args[:], args)
	return s
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Plan is the canonical pipeline of a configuration: the ordered pass
// applications Compile performs, with every don't-care dimension of the
// configuration folded away (a flag that gates a pass that does not run,
// or a parameter of such a pass, does not appear). Two configurations
// with equal plans compile to bit-identical binaries, and plans sharing a
// step-list prefix share the intermediate IR state reached after it -
// the foundation of the batched compile engine's prefix trie.
type Plan struct {
	// Mod is the module-level prefix (inlining, sibling calls), applied
	// once per module before any per-function work.
	Mod []Step
	// Fn is the per-function optimisation sequence, applied to every
	// non-library function.
	Fn []Step
	// Alloc is the register-allocation step, applied to every function;
	// its caller-saves argument is forced off for library functions.
	Alloc Step
	// Post is the post-reload sequence, applied to every non-library
	// function after allocation.
	Post []Step
}

// PlanFor derives the canonical plan of a configuration. The step order
// mirrors gcc 4.2 exactly as core.Compile executes it.
func PlanFor(c *Config) Plan {
	var p Plan
	if c.Flag(FInlineFunctions) {
		p.Mod = append(p.Mod, step(PassInline,
			int32(c.Param(PMaxInlineInsnsAuto)),
			int32(c.Param(PLargeFunctionInsns)),
			int32(c.Param(PLargeFunctionGrowth)),
			int32(c.Param(PLargeUnitInsns)),
			int32(c.Param(PInlineUnitGrowth)),
			int32(c.Param(PInlineCallCost))))
	}
	if c.Flag(FOptimizeSiblingCalls) {
		p.Mod = append(p.Mod, step(PassSibling))
	}

	loadMotion := c.Flag(FGcse) && !c.Flag(FNoGcseLm)
	cse := step(PassLocalCSE, b2i(c.Flag(FCseFollowJumps)), b2i(c.Flag(FCseSkipBlocks)))
	if c.Flag(FTreeVrp) {
		p.Fn = append(p.Fn, step(PassVRP))
	}
	p.Fn = append(p.Fn, cse)
	if c.Flag(FTreePre) {
		p.Fn = append(p.Fn, step(PassPRE))
	}
	if c.Flag(FGcse) {
		p.Fn = append(p.Fn, step(PassGCSE, int32(c.Param(PMaxGcsePasses))))
		if c.Flag(FGcseLas) {
			p.Fn = append(p.Fn, step(PassGCSELas))
		}
		if c.Flag(FGcseSm) {
			p.Fn = append(p.Fn, step(PassStoreMotion))
		}
	}
	p.Fn = append(p.Fn, step(PassLICM, b2i(loadMotion)))
	if c.Flag(FUnswitchLoops) {
		p.Fn = append(p.Fn, step(PassUnswitch))
	}
	if c.Flag(FStrengthReduce) {
		p.Fn = append(p.Fn, step(PassStrengthReduce))
	}
	if c.Flag(FUnrollLoops) {
		p.Fn = append(p.Fn, step(PassUnroll,
			int32(c.Param(PMaxUnrollTimes)), int32(c.Param(PMaxUnrolledInsns))))
	}
	if c.Flag(FRerunLoopOpt) {
		p.Fn = append(p.Fn, step(PassLICM, b2i(loadMotion)))
	}
	if c.Flag(FRerunCseAfterLoop) {
		p.Fn = append(p.Fn, cse)
	}
	if c.Flag(FExpensiveOptimizations) {
		p.Fn = append(p.Fn, step(PassLocalCSE, 1, 1))
		if c.Flag(FGcse) {
			// A single unconditional GCSE call is the bounded loop with
			// one iteration.
			p.Fn = append(p.Fn, step(PassGCSE, 1))
		}
	}
	if c.Flag(FRegmove) {
		p.Fn = append(p.Fn, step(PassRegmove))
	}
	if c.Flag(FThreadJumps) {
		p.Fn = append(p.Fn, step(PassThreadJumps))
	}
	p.Fn = append(p.Fn, step(PassDeadCode))
	if c.Flag(FScheduleInsns) {
		p.Fn = append(p.Fn, step(PassSchedule,
			b2i(!c.Flag(FNoSchedInterblock)), b2i(!c.Flag(FNoSchedSpec))))
	}
	if c.Flag(FReorderBlocks) {
		p.Fn = append(p.Fn, step(PassReorderBlocks))
	}
	p.Fn = append(p.Fn, step(PassAlign,
		b2i(c.Flag(FAlignFunctions)), b2i(c.Flag(FAlignLoops)),
		b2i(c.Flag(FAlignJumps)), b2i(c.Flag(FAlignLabels))))

	p.Alloc = step(PassAlloc, b2i(c.Flag(FCallerSaves)))

	if c.Flag(FGcseAfterReload) {
		p.Post = append(p.Post, step(PassGCSEReload))
	}
	if c.Flag(FPeephole2) {
		p.Post = append(p.Post, step(PassPeephole2))
	}
	if c.Flag(FCrossjumping) {
		p.Post = append(p.Post, step(PassCrossJump))
	}
	return p
}

// libAlloc is the allocation step of library functions: caller-saves is
// always off for them, so every plan shares it and a batched compile runs
// register allocation over library code once per module state, not once
// per setting.
var libAlloc = Step{Pass: PassAlloc}

// FuncSteps returns the complete per-function step sequence: the
// optimisation sequence, allocation and post-reload cleanups for ordinary
// functions; allocation alone for library functions (whose bodies the
// optimisation passes must not touch).
func (p *Plan) FuncSteps(library bool) []Step {
	if library {
		return []Step{libAlloc}
	}
	seq := make([]Step, 0, len(p.Fn)+1+len(p.Post))
	seq = append(seq, p.Fn...)
	seq = append(seq, p.Alloc)
	seq = append(seq, p.Post...)
	return seq
}

// Steps counts the pass applications a linear (per-setting) compile of
// this plan performs on a module with the given function counts: the
// naive-cost denominator for batch statistics.
func (p *Plan) Steps(nonLibraryFuncs, libraryFuncs int) int {
	return len(p.Mod) +
		nonLibraryFuncs*(len(p.Fn)+1+len(p.Post)) +
		libraryFuncs
}

// Key returns a compact canonical encoding of the plan, stable across
// runs: equal keys mean equal plans mean bit-identical compiler output.
func (p *Plan) Key() string {
	var b strings.Builder
	writeSeq := func(seq []Step) {
		for _, s := range seq {
			fmt.Fprintf(&b, "%d", uint8(s.Pass))
			// Trailing zero args are dropped; interior ones keep their
			// position, so argument lists encode unambiguously.
			args := s.Args[:]
			for len(args) > 0 && args[len(args)-1] == 0 {
				args = args[:len(args)-1]
			}
			for _, a := range args {
				fmt.Fprintf(&b, ",%d", a)
			}
			b.WriteByte(';')
		}
	}
	writeSeq(p.Mod)
	b.WriteByte('|')
	writeSeq(p.Fn)
	b.WriteByte('|')
	writeSeq([]Step{p.Alloc})
	b.WriteByte('|')
	writeSeq(p.Post)
	return b.String()
}

// String renders the plan with pass names, for diagnostics.
func (p *Plan) String() string {
	var parts []string
	for _, s := range p.Mod {
		parts = append(parts, s.Pass.String())
	}
	for _, s := range p.Fn {
		parts = append(parts, s.Pass.String())
	}
	parts = append(parts, p.Alloc.Pass.String())
	for _, s := range p.Post {
		parts = append(parts, s.Pass.String())
	}
	return strings.Join(parts, " ")
}
