// Package opt defines the compiler optimisation space of the paper
// (Figure 3): 30 boolean pass flags plus 9 bounded parameters, matching
// the gcc 4.2 flags listed on the Figure 8 axis.
//
// The machine-learning model views the space as L independent dimensions
// ("passes" in the paper's terminology), each taking one of |S_l| values;
// the unified Dim accessors expose that view.
package opt

import (
	"fmt"
	"math/rand"
	"strings"

	"portcc/internal/pcerr"
)

// Flag indexes a boolean optimisation flag.
type Flag int

// The boolean flags, in the order of the paper's Figure 8 axis (bottom-up).
const (
	FThreadJumps Flag = iota
	FCrossjumping
	FOptimizeSiblingCalls
	FCseFollowJumps
	FCseSkipBlocks
	FExpensiveOptimizations
	FStrengthReduce
	FRerunCseAfterLoop
	FRerunLoopOpt
	FCallerSaves
	FPeephole2
	FRegmove
	FReorderBlocks
	FAlignFunctions
	FAlignJumps
	FAlignLoops
	FAlignLabels
	FTreeVrp
	FTreePre
	FUnswitchLoops
	FGcse
	FNoGcseLm
	FGcseSm
	FGcseLas
	FGcseAfterReload
	FScheduleInsns
	FNoSchedInterblock
	FNoSchedSpec
	FInlineFunctions
	FUnrollLoops

	// NumFlags is the number of boolean flags.
	NumFlags = int(FUnrollLoops) + 1
)

var flagNames = [NumFlags]string{
	"fthread_jumps",
	"fcrossjumping",
	"foptimize_sibling_calls",
	"fcse_follow_jumps",
	"fcse_skip_blocks",
	"fexpensive_optimizations",
	"fstrength_reduce",
	"frerun_cse_after_loop",
	"frerun_loop_opt",
	"fcaller_saves",
	"fpeephole2",
	"fregmove",
	"freorder_blocks",
	"falign_functions",
	"falign_jumps",
	"falign_loops",
	"falign_labels",
	"ftree_vrp",
	"ftree_pre",
	"funswitch_loops",
	"fgcse",
	"fno_gcse_lm",
	"fgcse_sm",
	"fgcse_las",
	"fgcse_after_reload",
	"fschedule_insns",
	"fno_sched_interblock",
	"fno_sched_spec",
	"finline_functions",
	"funroll_loops",
}

// String returns the gcc-style flag name.
func (f Flag) String() string {
	if int(f) < NumFlags {
		return flagNames[f]
	}
	return fmt.Sprintf("flag(%d)", int(f))
}

// Param indexes a bounded optimisation parameter.
type Param int

// The parameters of Figure 3, each with four levels (see Levels).
const (
	PMaxGcsePasses Param = iota
	PMaxInlineInsnsAuto
	PLargeFunctionInsns
	PLargeFunctionGrowth
	PLargeUnitInsns
	PInlineUnitGrowth
	PInlineCallCost
	PMaxUnrollTimes
	PMaxUnrolledInsns

	// NumParams is the number of parameters.
	NumParams = int(PMaxUnrolledInsns) + 1
)

var paramNames = [NumParams]string{
	"param_max_gcse_passes",
	"param_max_inline_insns_auto",
	"param_large_function_insns",
	"param_large_function_growth",
	"param_large_unit_insns",
	"param_inline_unit_growth",
	"param_inline_call_cost",
	"param_max_unroll_times",
	"param_max_unrolled_insns",
}

// String returns the gcc-style parameter name.
func (p Param) String() string {
	if int(p) < NumParams {
		return paramNames[p]
	}
	return fmt.Sprintf("param(%d)", int(p))
}

// paramLevels gives the value taken at each of the four levels of every
// parameter; level 1 is the gcc 4.2 default (except max_gcse_passes whose
// default is level 0).
var paramLevels = [NumParams][4]int{
	PMaxGcsePasses:       {1, 2, 3, 4},
	PMaxInlineInsnsAuto:  {30, 60, 120, 240},
	PLargeFunctionInsns:  {675, 1350, 2700, 5400},
	PLargeFunctionGrowth: {25, 50, 100, 200},
	PLargeUnitInsns:      {2500, 5000, 10000, 20000},
	PInlineUnitGrowth:    {12, 25, 50, 100},
	PInlineCallCost:      {8, 16, 32, 64},
	PMaxUnrollTimes:      {2, 4, 8, 16},
	PMaxUnrolledInsns:    {50, 100, 200, 400},
}

// ParamLevelCount is the number of levels of every parameter.
const ParamLevelCount = 4

// Levels returns the possible values of parameter p.
func Levels(p Param) [4]int { return paramLevels[p] }

// Config is one point of the optimisation space: a full assignment to every
// flag and parameter. The zero value is "everything off, all parameters at
// their lowest level" (roughly gcc -O0 within this space).
type Config struct {
	Flags  [NumFlags]bool
	Params [NumParams]uint8 // level index, 0..ParamLevelCount-1
}

// Flag reports the setting of boolean flag f.
func (c *Config) Flag(f Flag) bool { return c.Flags[f] }

// Param returns the concrete value of parameter p.
func (c *Config) Param(p Param) int { return paramLevels[p][c.Params[p]] }

// O3 returns the highest default optimisation level: the gcc 4.2 -O3
// setting projected onto this space. This is the paper's baseline: all
// speedups are measured relative to it. Note funroll_loops and the extra
// gcse variants are off at -O3, exactly as in gcc 4.2.
func O3() Config {
	var c Config
	for _, f := range []Flag{
		FThreadJumps, FCrossjumping, FOptimizeSiblingCalls,
		FCseFollowJumps, FCseSkipBlocks, FExpensiveOptimizations,
		FStrengthReduce, FRerunCseAfterLoop, FRerunLoopOpt,
		FCallerSaves, FPeephole2, FRegmove, FReorderBlocks,
		FAlignFunctions, FAlignJumps, FAlignLoops, FAlignLabels,
		FTreeVrp, FTreePre, FUnswitchLoops, FGcse,
		FScheduleInsns, FInlineFunctions,
	} {
		c.Flags[f] = true
	}
	// fno_gcse_lm / fno_sched_interblock / fno_sched_spec are negative
	// flags: false means the underlying optimisation is enabled.
	c.Params[PMaxGcsePasses] = 0
	c.Params[PMaxInlineInsnsAuto] = 2  // 120
	c.Params[PLargeFunctionInsns] = 2  // 2700
	c.Params[PLargeFunctionGrowth] = 2 // 100
	c.Params[PLargeUnitInsns] = 2      // 10000
	c.Params[PInlineUnitGrowth] = 2    // 50
	c.Params[PInlineCallCost] = 1      // 16
	c.Params[PMaxUnrollTimes] = 2      // 8
	c.Params[PMaxUnrolledInsns] = 2    // 200
	return c
}

// Random returns a uniformly random point of the space, as used by the
// paper's iterative-compilation search (uniform random sampling, §4.3).
func Random(rng *rand.Rand) Config {
	var c Config
	for f := range c.Flags {
		c.Flags[f] = rng.Intn(2) == 1
	}
	for p := range c.Params {
		c.Params[p] = uint8(rng.Intn(ParamLevelCount))
	}
	return c
}

// Key returns a compact canonical encoding of the configuration, usable as
// a map key and stable across runs.
func (c *Config) Key() string {
	var b strings.Builder
	b.Grow(NumFlags + NumParams)
	for _, on := range c.Flags {
		if on {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	for _, l := range c.Params {
		b.WriteByte('0' + byte(l))
	}
	return b.String()
}

// ParseKey reconstructs a configuration from Key output.
func ParseKey(s string) (Config, error) {
	var c Config
	if len(s) != NumFlags+NumParams {
		return c, fmt.Errorf("opt: %w: key length %d, want %d", pcerr.ErrInvalidConfig, len(s), NumFlags+NumParams)
	}
	for i := 0; i < NumFlags; i++ {
		switch s[i] {
		case '0':
		case '1':
			c.Flags[i] = true
		default:
			return c, fmt.Errorf("opt: %w: bad flag byte %q at %d", pcerr.ErrInvalidConfig, s[i], i)
		}
	}
	for i := 0; i < NumParams; i++ {
		l := s[NumFlags+i] - '0'
		if l >= ParamLevelCount {
			return c, fmt.Errorf("opt: %w: bad level byte %q at %d", pcerr.ErrInvalidConfig, s[NumFlags+i], i)
		}
		c.Params[i] = l
	}
	return c, nil
}

// String lists the enabled flags and parameter values gcc-style.
func (c *Config) String() string {
	var parts []string
	for f, on := range c.Flags {
		if on {
			parts = append(parts, "-"+flagNames[f])
		}
	}
	for p := range c.Params {
		parts = append(parts, fmt.Sprintf("--%s=%d", paramNames[p], c.Param(Param(p))))
	}
	return strings.Join(parts, " ")
}
