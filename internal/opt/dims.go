package opt

import (
	"fmt"
	"math"
)

// The machine-learning model treats the optimisation space as a sequence of
// independent dimensions y_1..y_L (the paper's "passes"); a boolean flag is
// a dimension with two values, a parameter a dimension with four levels.

// NumDims is L, the total number of optimisation dimensions.
const NumDims = NumFlags + NumParams

// DimSize returns |S_l|, the number of values dimension d can take.
func DimSize(d int) int {
	if d < NumFlags {
		return 2
	}
	return ParamLevelCount
}

// MaxDimSize is the largest |S_l| across dimensions.
const MaxDimSize = ParamLevelCount

// DimName returns the gcc-style name of dimension d.
func DimName(d int) string {
	if d < 0 || d >= NumDims {
		return fmt.Sprintf("dim(%d)", d)
	}
	if d < NumFlags {
		return flagNames[d]
	}
	return paramNames[d-NumFlags]
}

// DimIsFlag reports whether dimension d is a boolean flag.
func DimIsFlag(d int) bool { return d < NumFlags }

// Value returns the value index of dimension d in the configuration:
// 0/1 for flags, the level index for parameters.
func (c *Config) Value(d int) int {
	if d < NumFlags {
		if c.Flags[d] {
			return 1
		}
		return 0
	}
	return int(c.Params[d-NumFlags])
}

// SetValue assigns value index v to dimension d.
func (c *Config) SetValue(d, v int) {
	if d < NumFlags {
		c.Flags[d] = v != 0
		return
	}
	c.Params[d-NumFlags] = uint8(v)
}

// SpaceSizes reports the size of the optimisation space: the raw number of
// flag combinations, the number of *effective* flag combinations once
// flags nested under a disabled parent are collapsed (the paper quotes
// 642 million effective combinations for its space), and the log10 of the
// full space including parameters (the paper quotes 1.69e17).
func SpaceSizes() (raw, effective float64, log10Full float64) {
	raw = math.Pow(2, float64(NumFlags))
	// fno_gcse_lm, fgcse_sm, fgcse_las, fgcse_after_reload and
	// max_gcse_passes only matter when fgcse is on; fno_sched_interblock
	// and fno_sched_spec only when fschedule_insns is on; the unroll and
	// inline parameters only when their flag is on.
	free := float64(NumFlags - 1 - 4 - 1 - 2) // minus gcse+subflags, sched+subflags
	effective = math.Pow(2, free) * (math.Pow(2, 4) + 1) * (math.Pow(2, 2) + 1)
	full := raw * math.Pow(ParamLevelCount, float64(NumParams))
	log10Full = math.Log10(full)
	return raw, effective, log10Full
}
