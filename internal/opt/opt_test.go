package opt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestO3Defaults(t *testing.T) {
	c := O3()
	on := []Flag{FGcse, FScheduleInsns, FInlineFunctions, FReorderBlocks, FTreeVrp, FTreePre}
	for _, f := range on {
		if !c.Flag(f) {
			t.Errorf("-O3 must enable %s", f)
		}
	}
	// gcc 4.2 -O3 does NOT enable these.
	off := []Flag{FUnrollLoops, FGcseSm, FGcseLas, FGcseAfterReload,
		FNoGcseLm, FNoSchedInterblock, FNoSchedSpec}
	for _, f := range off {
		if c.Flag(f) {
			t.Errorf("-O3 must not enable %s", f)
		}
	}
	if c.Param(PMaxInlineInsnsAuto) != 120 {
		t.Errorf("max-inline-insns-auto = %d, want 120", c.Param(PMaxInlineInsnsAuto))
	}
	if c.Param(PMaxGcsePasses) != 1 {
		t.Errorf("max-gcse-passes = %d, want 1", c.Param(PMaxGcsePasses))
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Random(rng)
		key := (&c).Key()
		back, err := ParseKey(key)
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseKeyErrors(t *testing.T) {
	if _, err := ParseKey("short"); err == nil {
		t.Error("short key accepted")
	}
	o3 := O3()
	bad := "x" + o3.Key()[1:]
	if _, err := ParseKey(bad); err == nil {
		t.Error("bad flag byte accepted")
	}
}

func TestDimAccessors(t *testing.T) {
	f := func(seed int64, rawDim uint8, rawVal uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Random(rng)
		d := int(rawDim) % NumDims
		v := int(rawVal) % DimSize(d)
		c.SetValue(d, v)
		return c.Value(d) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimNamesMatchFlagNames(t *testing.T) {
	if DimName(0) != FThreadJumps.String() {
		t.Error("dimension 0 must be the first flag")
	}
	if DimName(NumFlags) != PMaxGcsePasses.String() {
		t.Error("dimension NumFlags must be the first parameter")
	}
	seen := map[string]bool{}
	for d := 0; d < NumDims; d++ {
		n := DimName(d)
		if seen[n] {
			t.Errorf("duplicate dimension name %q", n)
		}
		seen[n] = true
	}
}

func TestDimSizes(t *testing.T) {
	for d := 0; d < NumDims; d++ {
		want := 2
		if !DimIsFlag(d) {
			want = ParamLevelCount
		}
		if DimSize(d) != want {
			t.Errorf("DimSize(%d) = %d, want %d", d, DimSize(d), want)
		}
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(rand.New(rand.NewSource(5)))
	b := Random(rand.New(rand.NewSource(5)))
	if a != b {
		t.Error("Random is not deterministic for a fixed seed")
	}
}

func TestSpaceSizes(t *testing.T) {
	raw, eff, log10 := SpaceSizes()
	if raw != 1<<NumFlags {
		t.Errorf("raw = %g, want 2^%d", raw, NumFlags)
	}
	// The paper quotes 642 million effective combinations; ours must be
	// the same order of magnitude.
	if eff < 1e8 || eff > 3e9 {
		t.Errorf("effective combinations %g out of expected order", eff)
	}
	if log10 < 13 || log10 > 18 {
		t.Errorf("log10 full space = %g, expected ~14-15 (paper 17.2)", log10)
	}
}

func TestStringListsEnabledFlags(t *testing.T) {
	var c Config
	c.Flags[FGcse] = true
	s := c.String()
	if want := "-fgcse"; !contains(s, want) {
		t.Errorf("String() = %q, missing %q", s, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLevelsAreSortedAndPositive(t *testing.T) {
	for p := 0; p < NumParams; p++ {
		lv := Levels(Param(p))
		for i := 0; i < len(lv); i++ {
			if lv[i] <= 0 {
				t.Errorf("%s level %d not positive", Param(p), i)
			}
			if i > 0 && lv[i] <= lv[i-1] {
				t.Errorf("%s levels not increasing", Param(p))
			}
		}
	}
}
