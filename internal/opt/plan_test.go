package opt_test

import (
	"math/rand"
	"testing"

	"portcc/internal/opt"
)

// TestPlanFoldsDontCares pins the canonicalisation: dimensions that gate
// passes which do not run must not influence the plan, so settings
// differing only in don't-care dimensions share one plan (and therefore
// one compile in a batched sweep).
func TestPlanFoldsDontCares(t *testing.T) {
	base := opt.O3()
	base.Flags[opt.FGcse] = false
	base.Flags[opt.FInlineFunctions] = false
	base.Flags[opt.FUnrollLoops] = false
	base.Flags[opt.FScheduleInsns] = false
	bp := opt.PlanFor(&base)

	mutations := []func(c *opt.Config){
		func(c *opt.Config) { c.Flags[opt.FNoGcseLm] = !c.Flags[opt.FNoGcseLm] },
		func(c *opt.Config) { c.Flags[opt.FGcseSm] = !c.Flags[opt.FGcseSm] },
		func(c *opt.Config) { c.Flags[opt.FGcseLas] = !c.Flags[opt.FGcseLas] },
		func(c *opt.Config) { c.Params[opt.PMaxGcsePasses] = 3 },
		func(c *opt.Config) { c.Params[opt.PMaxInlineInsnsAuto] = 0 },
		func(c *opt.Config) { c.Params[opt.PInlineCallCost] = 3 },
		func(c *opt.Config) { c.Params[opt.PMaxUnrollTimes] = 3 },
		func(c *opt.Config) { c.Params[opt.PMaxUnrolledInsns] = 0 },
		func(c *opt.Config) { c.Flags[opt.FNoSchedInterblock] = !c.Flags[opt.FNoSchedInterblock] },
		func(c *opt.Config) { c.Flags[opt.FNoSchedSpec] = !c.Flags[opt.FNoSchedSpec] },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		p := opt.PlanFor(&c)
		if p.Key() != bp.Key() {
			t.Errorf("mutation %d changed the plan key:\n  base %s\n  got  %s", i, bp.Key(), p.Key())
		}
	}
}

// TestPlanKeyDistinguishesArgPositions guards the key encoding against
// positional ambiguity: boolean argument vectors (0,1) and (1,0) of the
// same pass must produce different keys.
func TestPlanKeyDistinguishesArgPositions(t *testing.T) {
	a, b := opt.O3(), opt.O3()
	a.Flags[opt.FCseFollowJumps] = false
	a.Flags[opt.FCseSkipBlocks] = true
	b.Flags[opt.FCseFollowJumps] = true
	b.Flags[opt.FCseSkipBlocks] = false
	pa, pb := opt.PlanFor(&a), opt.PlanFor(&b)
	if pa.Key() == pb.Key() {
		t.Fatalf("plans with swapped boolean args share key %q", pa.Key())
	}
}

// TestPlanStepsMatchesSequenceLengths checks the naive-cost arithmetic
// used for PassRunsSaved accounting.
func TestPlanStepsMatchesSequenceLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		c := opt.Random(rng)
		p := opt.PlanFor(&c)
		nonLib, lib := 3, 2
		want := len(p.Mod) + nonLib*len(p.FuncSteps(false)) + lib*len(p.FuncSteps(true))
		if got := p.Steps(nonLib, lib); got != want {
			t.Fatalf("cfg %d: Steps=%d, want %d", i, got, want)
		}
		if len(p.FuncSteps(true)) != 1 {
			t.Fatalf("library sequence has %d steps, want 1 (allocation only)", len(p.FuncSteps(true)))
		}
	}
}

// TestStepComparable pins the trie's grouping primitive: steps are plain
// comparable values, equal iff pass kind and every argument position
// agree.
func TestStepComparable(t *testing.T) {
	c := opt.O3()
	p := opt.PlanFor(&c)
	if p.Fn[0] != opt.PlanFor(&c).Fn[0] {
		t.Fatal("identical plans produced unequal steps")
	}
	altered := p.Fn[0]
	altered.Args[5]++
	if altered == p.Fn[0] {
		t.Fatal("argument change did not alter step equality")
	}
}
