// Package pool runs indexed jobs over a bounded worker pool with the
// deterministic error semantics shared by the exploration engine and the
// experiment drivers: dispatch in index order, stop dispatching on the
// first failure, let already-dispatched lower-index jobs finish, and
// report the error of the lowest-indexed failing job - independent of
// worker scheduling. Context cancellation stops dispatch and skips
// remaining jobs promptly; the caller distinguishes it by checking
// ctx.Err() after Run returns.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count against n jobs: <=0 selects
// GOMAXPROCS, and the pool never exceeds n. Run applies this clamp
// itself; callers sizing per-slot state use the same function so the
// slot range [0, Workers(workers, n)) is a single shared contract.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Run fans jobs 0..n-1 over a pool of Workers(workers, n) goroutines.
// work(slot, index) is called with slot in [0, Workers(workers, n));
// at most one job runs on a slot at a time, so per-slot state
// (evaluators, caches) needs no locking. Run blocks until every worker
// has exited and returns the number of jobs that completed successfully
// plus the lowest-indexed job error, nil if none.
func Run(ctx context.Context, workers, n int, work func(slot, index int) error) (done int, err error) {
	workers = Workers(workers, n)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstIdx  int
		firstErr  error
		stopped   atomic.Bool
		completed atomic.Int64
	)
	fail := func(idx int, err error) {
		mu.Lock()
		if firstErr == nil || idx < firstIdx {
			firstIdx, firstErr = idx, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	// Dispatch is in index order, so every job below a failing index has
	// already been handed out; running those (and only those) after a
	// failure makes the reported error the lowest failing index among
	// the dispatched jobs, independent of worker scheduling.
	skip := func(idx int) bool {
		if !stopped.Load() {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil && idx > firstIdx
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil || skip(idx) {
					continue
				}
				if err := work(slot, idx); err != nil {
					fail(idx, err)
				} else {
					completed.Add(1)
				}
			}
		}(w)
	}
dispatch:
	for i := 0; i < n; i++ {
		if stopped.Load() {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return int(completed.Load()), firstErr
}
