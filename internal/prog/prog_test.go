package prog

import (
	"testing"

	"portcc/internal/ir"
	"portcc/internal/isa"
)

func TestAllProgramsBuildAndVerify(t *testing.T) {
	if len(Names()) != 35 {
		t.Fatalf("%d programs, the paper evaluates 35", len(Names()))
	}
	for _, name := range Names() {
		m, err := Build(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if m.Name != name {
			t.Errorf("%s: module named %q", name, m.Name)
		}
		if m.Funcs[m.Entry].Name != "main" {
			t.Errorf("%s: entry function is %q, want main", name, m.Funcs[m.Entry].Name)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	for _, name := range []string{"rijndael_e", "gs", "qsort", "fft"} {
		a := MustBuild(name)
		b := MustBuild(name)
		if a.String() != b.String() {
			t.Errorf("%s: two builds differ", name)
		}
	}
}

func TestUnknownProgram(t *testing.T) {
	if _, err := Build("no_such_benchmark"); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestLibraryBoundPrograms(t *testing.T) {
	// qsort and basicmath must be dominated by library functions the
	// optimiser cannot touch (their Figure 4 headroom is ~zero).
	for _, name := range []string{"qsort", "basicmath"} {
		m := MustBuild(name)
		libInsns, userInsns := 0, 0
		for _, f := range m.Funcs {
			if f.Library {
				libInsns += f.Size()
			} else {
				userInsns += f.Size()
			}
		}
		if libInsns < userInsns {
			t.Errorf("%s: %d library vs %d user instructions - not library-bound",
				name, libInsns, userInsns)
		}
	}
}

func TestRijndaelIsHandUnrolled(t *testing.T) {
	m := MustBuild("rijndael_e")
	cipher := m.FuncByName("cipher")
	if cipher == nil {
		t.Fatal("rijndael_e must have a cipher function")
	}
	// The hand-unrolled round code must be a multi-KB straight-line body
	// (the paper's Section 5.2: extensive source-level unrolling).
	if cipher.Size() < 800 {
		t.Errorf("cipher has %d instructions; the hand-unrolled body should exceed 800", cipher.Size())
	}
	// And it must not contain counted inner loops for unrolling to target.
	cipher.Analyze()
	if len(cipher.Loops()) != 0 {
		t.Error("hand-unrolled cipher should have no loops")
	}
}

func TestProgramDiversity(t *testing.T) {
	// Programs must differ in instruction mix: at least one MAC-heavy,
	// one shift-heavy, one pointer-chasing, one guard-carrying.
	counts := func(name string) (mac, shift, ptr, guard int) {
		m := MustBuild(name)
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Insns {
					switch b.Insns[i].Op {
					case isa.OpMac, isa.OpMul:
						mac++
					case isa.OpShift:
						shift++
					case isa.OpLoad:
						if b.Insns[i].Mem.Kind == ir.MemPointer {
							ptr++
						}
					}
				}
				if b.Term.Guard {
					guard++
				}
			}
		}
		return
	}
	if mac, _, _, _ := counts("lame"); mac < 10 {
		t.Error("lame must be MAC-heavy")
	}
	if _, sh, _, _ := counts("sha"); sh < 50 {
		t.Error("sha must be shift-heavy")
	}
	if _, _, ptr, _ := counts("patricia"); ptr == 0 {
		t.Error("patricia must pointer-chase")
	}
	if _, _, _, g := counts("susan_s"); g == 0 {
		t.Error("susan_s must carry border guards")
	}
}

func TestStaticSizesSpanCacheRange(t *testing.T) {
	// The suite must span footprints from well under 4K to several KB so
	// the Table 2 cache range discriminates (see DESIGN.md).
	smallest, largest := 1<<30, 0
	for _, name := range Names() {
		s := MustBuild(name).Size() * isa.InsnBytes
		if s < smallest {
			smallest = s
		}
		if s > largest {
			largest = s
		}
	}
	if smallest > 1024 {
		t.Errorf("smallest program is %dB; need sub-1KB kernels", smallest)
	}
	if largest < 4096 {
		t.Errorf("largest program is %dB; need >4KB footprints", largest)
	}
}

func TestBuilderControlStructures(t *testing.T) {
	b := NewB("t", 1)
	b.Func("main")
	b.Loop(4)
	b.ALU(2)
	b.If(0.3)
	b.ALU(1)
	b.Else()
	b.Shift(1)
	b.EndIf()
	b.End()
	b.Ret()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs[0]
	f.Analyze()
	if len(f.Loops()) != 1 {
		t.Errorf("%d loops, want 1", len(f.Loops()))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewB("t", 1)
	b.Func("main")
	b.Else() // without If
	b.Ret()
	if _, err := b.Build(); err == nil {
		t.Error("Else without If accepted")
	}

	b2 := NewB("t2", 1)
	b2.Func("main")
	b2.Call("missing")
	b2.Ret()
	if _, err := b2.Build(); err == nil {
		t.Error("call to undefined function accepted")
	}
}
