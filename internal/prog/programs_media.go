package prog

import "portcc/internal/ir"

// Audio, image and signal-processing benchmarks. Loop structure and
// instruction mixes follow the published characterisations of the MiBench
// consumer/telecomm suites: ADPCM is a tiny shift/ALU loop over streaming
// samples, JPEG is MAC-heavy 8x8 block work with lookup tables, GSM is
// MAC filter loops with in-memory accumulators, FFT is strided butterflies
// with twiddle tables, SUSAN is windowed image scans with brightness LUTs.
//
// Each program is sized so one complete run executes roughly 15k-40k
// dynamic instructions at -O3 (the statistical steady-state slice of the
// >=100M-instruction MiBench runs), with static hot footprints spanning
// ~0.3KB (rawcaudio) to several KB (madplay), so the paper's 4K-128K
// instruction-cache range genuinely discriminates between them.

// buildRawcaudio models adpcm rawcaudio (encode): one tiny data-dependent
// loop, almost no optimisation headroom (Figure 4's near-1.0 group).
func buildRawcaudio() *B {
	b := NewB("rawcaudio", seedFor("rawcaudio"))
	b.Func("main")
	b.LoopP(1400)
	{
		b.Load("pcm", ir.MemSeq, wHuge, 4)
		b.ALU(4)
		b.Shift(3)
		b.If(0.42) // step-size adaptation
		b.ALU(2)
		b.Else()
		b.ALU(3)
		b.Shift(1)
		b.EndIf()
		b.ALU(3)
		b.Shift(2)
		b.Store("adpcm", ir.MemSeq, wLarge, 4)
	}
	b.End()
	b.Ret()
	return b
}

// buildRawdaudio models adpcm rawdaudio (decode): like the encoder with a
// step table lookup.
func buildRawdaudio() *B {
	b := NewB("rawdaudio", seedFor("rawdaudio"))
	b.Func("main")
	b.LoopP(1500)
	{
		b.Load("adpcm", ir.MemSeq, wLarge, 4)
		b.Shift(2)
		b.LoadTable("steptab", wTiny)
		b.ALU(4)
		b.If(0.38)
		b.ALU(2)
		b.EndIf()
		b.ALU(2)
		b.Store("pcm", ir.MemSeq, wHuge, 4)
	}
	b.End()
	b.Ret()
	return b
}

// buildTiff2rgba models tiff2rgba: a streaming pixel-expansion pass over a
// large image; redundant per-pixel address arithmetic gives CSE headroom
// and the counted inner loop gives unrolling headroom.
func buildTiff2rgba() *B {
	b := NewB("tiff2rgba", seedFor("tiff2rgba"))
	b.Func("main")
	b.Loop(24) // row strips
	{
		b.ALU(4)
		b.Loop(64) // columns
		{
			b.IndexedLoad("src", wHuge, 4)
			b.Redundant(2)
			b.ALU(3)
			b.Shift(1)
			b.Store("dst", ir.MemSeq, wHuge, 4)
			b.Store("dst", ir.MemSeq, wHuge, 4)
		}
		b.End()
		b.ALU(2)
	}
	b.End()
	b.Ret()
	return b
}

// buildDjpeg models djpeg: a branchy entropy-decode section feeding
// 8-iteration IDCT loops (rows and columns) with MAC chains and
// dequantisation tables - classic unrolling and scheduling headroom.
func buildDjpeg() *B {
	b := NewB("djpeg", seedFor("djpeg"))
	b.Func("main")
	b.Loop(42) // blocks
	{
		// Huffman-style decode: branchy straight-line code.
		b.Load("bits", ir.MemSeq, wLarge, 4)
		b.Shift(2)
		b.If(0.4)
		b.LoadTable("hufftab", wSmall)
		b.ALU(4)
		b.Else()
		b.ALU(3)
		b.Shift(1)
		b.EndIf()
		b.ALU(3)
		b.Call("idct")
		b.Loop(16) // colour conversion over the block
		{
			b.Load("coef", ir.MemSeq, wMedium, 4)
			b.LoadTable("cconv", wSmall)
			b.ALU(3)
			b.Shift(1)
			b.Store("pix", ir.MemSeq, wHuge, 4)
		}
		b.End()
	}
	b.End()
	b.Ret()

	b.Func("idct")
	b.Loop(8) // row pass
	{
		b.IndexedLoad("blk", wTiny, 4)
		b.LoadTable("quant", wSmall)
		b.Mac(4)
		b.Shift(2)
		b.ALU(3)
		b.Store("blk", ir.MemSeq, wTiny, 4)
	}
	b.End()
	b.Loop(8) // column pass
	{
		b.Load("blk", ir.MemStrided, wTiny, 32)
		b.Mac(4)
		b.Shift(2)
		b.ALU(3)
		b.Redundant(2)
		b.Store("blk", ir.MemStrided, wTiny, 32)
	}
	b.End()
	b.Ret()
	return b
}

// buildCjpeg models cjpeg: forward DCT plus quantisation (multiply+shift
// chains), slightly heavier on the MAC unit than djpeg.
func buildCjpeg() *B {
	b := NewB("cjpeg", seedFor("cjpeg"))
	b.Func("main")
	b.Loop(45)
	{
		b.Loop(16) // downsample + colour convert
		{
			b.Load("pix", ir.MemSeq, wHuge, 4)
			b.Mul(2)
			b.ALU(3)
			b.Shift(1)
			b.Store("blk", ir.MemSeq, wTiny, 4)
		}
		b.End()
		b.Call("fdct")
	}
	b.End()
	b.Ret()

	b.Func("fdct")
	b.Loop(8)
	{
		b.IndexedLoad("blk", wTiny, 4)
		b.Mac(5)
		b.ALU(4)
		b.Shift(2)
		b.Store("blk", ir.MemSeq, wTiny, 4)
	}
	b.End()
	b.Loop(8)
	{
		b.Load("blk", ir.MemStrided, wTiny, 32)
		b.Mac(5)
		b.Shift(3)
		b.LoadTable("qtab", wSmall)
		b.Mul(1)
		b.Shift(1)
		b.Store("coef", ir.MemSeq, wMedium, 4)
	}
	b.End()
	b.Ret()
	return b
}

// buildLame models lame: long MAC-dominated MDCT/psychoacoustic loops over
// large buffers, with helper functions at the inlining margin and big
// scheduling headroom from MAC latency.
func buildLame() *B {
	b := NewB("lame", seedFor("lame"))
	b.Func("main")
	b.Loop(26) // granules
	{
		b.Call("mdct")
		b.Call("psycho")
		b.ALU(6)
		b.Store("out", ir.MemSeq, wLarge, 4)
	}
	b.End()
	b.Ret()

	b.Func("mdct")
	b.Loop(32)
	{
		b.Load("pcm", ir.MemStrided, 16<<10, 64)
		b.LoadTable("win", wSmall)
		b.Mac(6)
		b.ALU(2)
		b.Store("spec", ir.MemSeq, 16<<10, 4)
	}
	b.End()
	b.Ret()

	b.Func("psycho")
	b.Loop(18)
	{
		b.Load("spec", ir.MemSeq, 16<<10, 4)
		b.Mac(4)
		b.Redundant(2)
		b.ALU(4)
		b.ScalarAcc("energy")
	}
	b.End()
	b.If(0.3)
	b.ALU(8)
	b.EndIf()
	b.Ret()
	return b
}

// buildMadplay models madplay: fixed-point subband synthesis with a large
// hand-unrolled dewindow block; its code size sits right at the
// small-I-cache boundary, which is why the paper's Figure 1 shows its best
// passes changing across microarchitectures A/B/C.
func buildMadplay() *B {
	b := NewB("madplay", seedFor("madplay"))
	b.Func("main")
	b.Loop(20) // frames
	{
		b.Call("synth")
		b.ALU(4)
		b.Store("pcm", ir.MemSeq, wHuge, 4)
	}
	b.End()
	b.Ret()

	b.Func("synth")
	b.Loop(32) // subband filter
	{
		b.Load("sb", ir.MemStrided, 8<<10, 128)
		b.LoadTable("dcoef", wSmall)
		b.Mac(6)
		b.Shift(2)
		b.ALU(2)
		b.Store("v", ir.MemSeq, 8<<10, 4)
	}
	b.End()
	// Hand-unrolled dewindowing: ~3KB of straight-line MAC code, putting
	// the synthesis path right at the small-I-cache boundary.
	for i := 0; i < 100; i++ {
		b.Load("v", ir.MemStrided, 8<<10, 64)
		b.LoadTable("dcoef", wSmall)
		b.Mac(3)
		b.ALU(2)
		b.Shift(1)
	}
	b.Store("pcmw", ir.MemSeq, wMedium, 4)
	b.Ret()
	return b
}

// buildToast models toast (GSM encode): LTP correlation loops with
// in-memory accumulators (store-motion headroom), MAC chains and a branchy
// quantiser.
func buildToast() *B {
	b := NewB("toast", seedFor("toast"))
	b.Func("main")
	b.Loop(34) // frames
	{
		b.Call("ltp")
		b.Call("rpe")
		b.Store("bits", ir.MemSeq, wLarge, 4)
	}
	b.End()
	b.Ret()

	b.Func("ltp")
	b.Loop(40)
	{
		b.Load("d", ir.MemSeq, wMedium, 4)
		b.Load("dp", ir.MemStrided, wMedium, 8)
		b.Mac(4)
		b.ScalarAcc("ltpacc")
	}
	b.End()
	b.If(0.35) // lag clamp
	b.ALU(3)
	b.EndIf()
	b.Ret()

	b.Func("rpe")
	b.Loop(13)
	{
		b.Load("e", ir.MemSeq, wTiny, 4)
		b.Mac(2)
		b.Shift(2)
		b.ALU(3)
		b.ScalarAcc("rpeacc")
		b.Store("xm", ir.MemSeq, wTiny, 4)
	}
	b.End()
	b.Ret()
	return b
}

// buildUntoast models untoast (GSM decode): shorter filter loops than the
// encoder, still accumulator-based.
func buildUntoast() *B {
	b := NewB("untoast", seedFor("untoast"))
	b.Func("main")
	b.Loop(40)
	{
		b.Call("inverse")
		b.Store("pcm", ir.MemSeq, wHuge, 4)
	}
	b.End()
	b.Ret()

	b.Func("inverse")
	b.Loop(13)
	{
		b.Load("bits", ir.MemSeq, wLarge, 4)
		b.Shift(2)
		b.LoadTable("fac", wTiny)
		b.Mac(2)
		b.ScalarAcc("dec")
		b.Store("erp", ir.MemSeq, wTiny, 4)
	}
	b.End()
	b.Loop(40) // short-term synthesis
	{
		b.Load("erp", ir.MemSeq, wTiny, 4)
		b.Mac(3)
		b.ALU(2)
		b.Store("sr", ir.MemSeq, wMedium, 4)
	}
	b.End()
	b.Ret()
	return b
}

// buildFft models fft: radix-2 butterflies with strided accesses, twiddle
// tables and induction-variable multiplies (strength-reduction fodder).
func buildFft() *B {
	b := NewB("fft", seedFor("fft"))
	return fftCommon(b)
}

// buildFftI models fft_i (inverse FFT): the same structure with an extra
// scaling pass.
func buildFftI() *B {
	b := NewB("fft_i", seedFor("fft_i"))
	return fftCommon(b)
}

func fftCommon(b *B) *B {
	b.Func("main")
	b.Loop(10) // log2(N) stages
	{
		b.ALU(4)
		b.Loop(80) // butterflies per stage
		{
			b.IndexedLoad("re", 8<<10, 8)
			b.Load("im", ir.MemStrided, 8<<10, 64)
			b.LoadTable("twiddle", wSmall)
			b.Mac(4)
			b.ALU(4)
			b.Shift(2)
			b.Store("re", ir.MemStrided, 8<<10, 64)
			b.Store("im", ir.MemStrided, 8<<10, 64)
		}
		b.End()
	}
	b.End()
	if b.m.Name == "fft_i" {
		b.Loop(256) // inverse scaling pass
		{
			b.Load("re", ir.MemSeq, 8<<10, 4)
			b.Shift(1)
			b.Store("re", ir.MemSeq, 8<<10, 4)
		}
		b.End()
	}
	b.Ret()
	return b
}

// buildSusanS models susan smoothing: 3x3 windowed scans with a brightness
// LUT, heavy redundant addressing (CSE) and counted mask loops (unroll).
func buildSusanS() *B {
	b := NewB("susan_s", seedFor("susan_s"))
	b.Func("main")
	b.Loop(26) // rows
	{
		b.Loop(80) // columns
		{
			b.Guard() // border check, provably in range
			b.IndexedLoad("img", wHuge, 4)
			b.Redundant(3)
			b.LoadTable("blut", wTiny)
			b.Mac(2)
			b.ALU(4)
			b.Store("out", ir.MemSeq, wHuge, 4)
		}
		b.End()
		b.ALU(3)
	}
	b.End()
	b.Ret()
	return b
}

// buildSusanC models susan corners: the smoothing scan plus a branchy
// classifier and an in-memory corner counter (store-motion headroom).
func buildSusanC() *B {
	b := NewB("susan_c", seedFor("susan_c"))
	b.Func("main")
	b.Loop(24)
	{
		b.Loop(80)
		{
			b.Guard()
			b.IndexedLoad("img", wHuge, 4)
			b.LoadTable("blut", wTiny)
			b.Redundant(2)
			b.ALU(3)
			b.If(0.18) // USAN threshold
			b.ALU(4)
			b.ScalarAcc("corners")
			b.Store("cand", ir.MemRandom, wMedium, 4)
			b.EndIf()
		}
		b.End()
	}
	b.End()
	b.Ret()
	return b
}

// buildSusanE models susan edges: like corners with a direction pass; the
// paper reports the model reaching over 95% of the maximum here.
func buildSusanE() *B {
	b := NewB("susan_e", seedFor("susan_e"))
	b.Func("main")
	b.Loop(24)
	{
		b.Loop(80)
		{
			b.Guard()
			b.IndexedLoad("img", wHuge, 4)
			b.LoadTable("blut", wTiny)
			b.Redundant(3)
			b.Mac(1)
			b.ALU(3)
			b.If(0.22)
			b.Shift(2)
			b.ALU(3)
			b.Store("edge", ir.MemSeq, wHuge, 4)
			b.EndIf()
		}
		b.End()
	}
	b.End()
	b.Ret()
	return b
}

// buildSay models say (rsynth): phoneme dispatch over many small helper
// functions plus fixed-point filter loops; in the paper's Figure 8 its
// behaviour is dominated by the inlining flags.
func buildSay() *B {
	b := NewB("say", seedFor("say"))
	b.Func("main")
	b.LoopP(100) // phonemes
	{
		b.Load("text", ir.MemSeq, wMedium, 4)
		b.If(0.45)
		b.Call("vowel")
		b.Else()
		b.Call("consonant")
		b.EndIf()
		b.Call("filter")
		b.Store("audio", ir.MemSeq, wHuge, 4)
	}
	b.End()
	b.Ret()

	b.Func("vowel")
	b.LoadTable("ftab", wSmall)
	b.ALU(10)
	b.Shift(2)
	b.Ret()

	b.Func("consonant")
	b.LoadTable("ftab", wSmall)
	b.ALU(8)
	b.Shift(3)
	b.Ret()

	b.Func("filter")
	b.Loop(24)
	{
		b.Load("state", ir.MemSeq, wTiny, 4)
		b.Mac(3)
		b.ALU(2)
		b.Store("state", ir.MemSeq, wTiny, 4)
	}
	b.End()
	b.Ret()
	return b
}
