// Package prog provides the 35 MiBench-equivalent benchmark programs the
// paper evaluates (Section 4.1), written against a small program-builder
// DSL that emits the compiler's IR.
//
// Each program is a synthetic workload modelled on the published character
// of its MiBench namesake: loop structure, instruction mix, working-set
// sizes, branch behaviour, call structure, hand-optimisation idioms
// (pre-unrolled crypto rounds, pointer chasing, in-memory accumulators,
// redundant guard checks) and the fraction of time spent in opaque library
// code. The optimisation passes act on this structure mechanically, so
// programs respond to compiler flags and microarchitecture changes the way
// the paper's Figure 4/8 analysis describes.
package prog

import (
	"fmt"
	"math/rand"

	"portcc/internal/ir"
	"portcc/internal/isa"
)

// B is the program builder.
type B struct {
	m       *ir.Module
	f       *ir.Func
	cur     *ir.Block
	rng     *rand.Rand
	streams map[string]int32
	streamN int32
	immN    int32
	loops   []loopCtx
	ifs     []ifCtx
	window  []windowEntry
	exprs   []savedExpr
	fixups  []fixup
	siteN   int32
	err     error
}

// windowEntry tracks a recently defined value and how often it has been
// consumed; the picker prefers unconsumed values so that almost nothing
// the builder emits is dead code (as in real programs).
type windowEntry struct {
	reg  ir.Reg
	uses int
}

type loopCtx struct {
	header int
	iv     ir.Reg
	trip   int32
	prob   float64
	preh   int
	snap   []windowEntry // window at loop entry (preheader values)
	exprs  []savedExpr
}

type ifCtx struct {
	side   int // the branch-taken (out-of-line) block
	join   int
	fromIf *ir.Block // block that ends with the branch
	inMain bool
	snap   []windowEntry // window at the branch (dominating values)
	exprs  []savedExpr
}

type savedExpr struct {
	op  isa.Op
	use [2]ir.Reg
	imm int32
}

type fixup struct {
	funcID int
	block  int
	index  int
	callee string
}

// NewB starts a program named name. The seed fixes all builder-internal
// randomness, making the emitted IR fully deterministic.
func NewB(name string, seed int64) *B {
	return &B{
		m:       &ir.Module{Name: name},
		rng:     rand.New(rand.NewSource(seed)),
		streams: map[string]int32{},
	}
}

func (b *B) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog %s: %s", b.m.Name, fmt.Sprintf(format, args...))
	}
}

// Func begins a new function; the first function built is the entry point.
// Every function starts by materialising two incoming arguments from its
// stack frame, seeding the dependency window with loop-variant values (and
// modelling real argument-passing traffic).
func (b *B) Func(name string) {
	f := &ir.Func{Name: name, ID: len(b.m.Funcs), NextReg: 1}
	b.m.Funcs = append(b.m.Funcs, f)
	b.f = f
	blk := &ir.Block{ID: 0}
	f.Blocks = []*ir.Block{blk}
	b.cur = blk
	b.window = b.window[:0]
	b.loops = b.loops[:0]
	b.ifs = b.ifs[:0]
	b.exprs = b.exprs[:0]
	for i := 0; i < 2; i++ {
		b.Load("args_"+name, ir.MemStack, 64, 4)
	}
}

// Library marks the current function as opaque library code that the
// optimiser must not touch.
func (b *B) Library() { b.f.Library = true }

// newBlock appends a fresh block to the current function.
func (b *B) newBlock() *ir.Block {
	blk := &ir.Block{ID: len(b.f.Blocks)}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

func (b *B) tag() int32 {
	b.immN++
	return b.immN
}

// site returns a fresh stable branch-site identity (see ir.Term.Site).
func (b *B) site() int32 {
	b.siteN++
	return b.siteN
}

// Stream returns a stable stream id for a name, shared across functions.
func (b *B) Stream(name string) int32 {
	if id, ok := b.streams[name]; ok {
		return id
	}
	id := b.streamN
	b.streamN++
	b.streams[name] = id
	return id
}

// snapshot copies the current window; restore reinstates it. Values
// defined inside a conditional arm or a loop body do not dominate the code
// after it, so the picker's window is rolled back at those boundaries.
func (b *B) snapshot() []windowEntry {
	return append([]windowEntry(nil), b.window...)
}

func (b *B) exprSnapshot() []savedExpr {
	return append([]savedExpr(nil), b.exprs...)
}

func (b *B) restore(snap []windowEntry, exprs []savedExpr) {
	b.window = append(b.window[:0], snap...)
	b.exprs = append(b.exprs[:0], exprs...)
}

func (b *B) push(r ir.Reg) {
	b.window = append(b.window, windowEntry{reg: r})
	if len(b.window) > 12 {
		b.window = b.window[1:]
	}
}

// pick selects a recent value as an operand. It strongly prefers values
// not yet consumed - real expression DAGs use nearly every intermediate
// exactly once - falling back to a recency-biased reuse. The resulting
// tight def-use chains are what instruction scheduling later stretches.
func (b *B) pick() ir.Reg {
	n := len(b.window)
	if n == 0 {
		return ir.RegNone
	}
	// Oldest unconsumed value first.
	for i := 0; i < n; i++ {
		if b.window[i].uses == 0 {
			b.window[i].uses++
			return b.window[i].reg
		}
	}
	i := n - 1 - minInt(b.rng.Intn(3), n-1)
	b.window[i].uses++
	return b.window[i].reg
}

// pickAny selects a recency-biased value without unconsumed preference,
// widening the dependency DAG (instruction-level parallelism for the
// scheduler to exploit, and longer live ranges when it does).
func (b *B) pickAny() ir.Reg {
	n := len(b.window)
	if n == 0 {
		return ir.RegNone
	}
	i := n - 1 - minInt(b.rng.Intn(8), n-1)
	b.window[i].uses++
	return b.window[i].reg
}

func minInt(a, c int) int {
	if a < c {
		return a
	}
	return c
}

// emit appends an instruction to the current block.
func (b *B) emit(in ir.Insn) ir.Reg {
	b.cur.Insns = append(b.cur.Insns, in)
	if in.Def != ir.RegNone && !in.HasFlag(ir.FlagMerge) {
		b.push(in.Def)
	}
	return in.Def
}

// op emits one computation of class op with fresh semantics. The first
// operand continues the consumption chain (so values do not go dead); the
// second spreads across recent values, giving the DAG realistic width.
func (b *B) op(opc isa.Op, record bool) ir.Reg {
	d := b.f.NewReg()
	in := ir.Insn{Op: opc, Def: d, Use: [2]ir.Reg{b.pick(), b.pickAny()}, Imm: b.tag()}
	if opc == isa.OpShift || opc == isa.OpMul {
		in.Use[1] = ir.RegNone
	}
	b.emit(in)
	if record {
		b.exprs = append(b.exprs, savedExpr{op: in.Op, use: in.Use, imm: in.Imm})
		if len(b.exprs) > 32 {
			b.exprs = b.exprs[1:]
		}
	}
	return d
}

// ALU emits n arithmetic/logic instructions.
func (b *B) ALU(n int) {
	for i := 0; i < n; i++ {
		b.op(isa.OpALU, true)
	}
}

// Shift emits n shifter instructions.
func (b *B) Shift(n int) {
	for i := 0; i < n; i++ {
		b.op(isa.OpShift, true)
	}
}

// Mul emits n multiplies (MAC unit).
func (b *B) Mul(n int) {
	for i := 0; i < n; i++ {
		b.op(isa.OpMul, false)
	}
}

// Mac emits n multiply-accumulates (MAC unit).
func (b *B) Mac(n int) {
	for i := 0; i < n; i++ {
		b.op(isa.OpMac, false)
	}
}

// Redundant re-emits n previously recorded computations with identical
// semantics; CSE/GCSE/PRE can prove and remove the redundancy. Real code
// gets these from repeated address expressions and macro expansion.
func (b *B) Redundant(n int) {
	for i := 0; i < n && len(b.exprs) > 0; i++ {
		e := b.exprs[b.rng.Intn(len(b.exprs))]
		d := b.f.NewReg()
		b.emit(ir.Insn{Op: e.op, Def: d, Use: e.use, Imm: e.imm})
	}
}

// Move emits a register copy (regmove/coalescing fodder).
func (b *B) Move() {
	src := b.pick()
	if src == ir.RegNone {
		return
	}
	d := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpMove, Def: d, Use: [2]ir.Reg{src}})
}

// Load emits a load from the named stream. Its address operand comes from
// an older value (a base pointer or induction variable), so loads are
// independent of the running computation chain - which is what lets the
// scheduler hoist them, at a register-pressure price.
func (b *B) Load(stream string, kind ir.MemKind, wset, stride int32) ir.Reg {
	d := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpLoad, Def: d, Use: [2]ir.Reg{b.pickAny()},
		Mem: ir.MemRef{Stream: b.Stream(stream), Kind: kind, WSet: wset, Stride: stride}})
	return d
}

// LoadTable emits a data-dependent load from a read-only lookup table.
// The fresh tag keeps distinct lookup sites distinct under value numbering
// (they index with different data); deliberate redundancy comes from
// Redundant, not from accidental key collisions.
func (b *B) LoadTable(stream string, wset int32) ir.Reg {
	d := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpLoad, Def: d, Use: [2]ir.Reg{b.pickAny()}, Imm: b.tag(),
		Mem: ir.MemRef{Stream: b.Stream(stream), Kind: ir.MemTable, WSet: wset, ReadOnly: true}})
	return d
}

// PtrLoad emits a pointer-chasing load (serialised with its predecessor).
func (b *B) PtrLoad(stream string, wset int32) ir.Reg {
	d := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpLoad, Def: d, Use: [2]ir.Reg{b.pick()},
		Mem: ir.MemRef{Stream: b.Stream(stream), Kind: ir.MemPointer, WSet: wset}})
	return d
}

// Store emits a store of a recent value to the named stream.
func (b *B) Store(stream string, kind ir.MemKind, wset, stride int32) {
	b.emit(ir.Insn{Op: isa.OpStore, Use: [2]ir.Reg{b.pick()},
		Mem: ir.MemRef{Stream: b.Stream(stream), Kind: kind, WSet: wset, Stride: stride}})
}

// ScalarAcc emits the load-modify-store idiom on an in-memory scalar
// accumulator (store-motion / load-after-store fodder).
func (b *B) ScalarAcc(stream string) {
	mem := ir.MemRef{Stream: b.Stream(stream), Kind: ir.MemScalar, WSet: 4}
	v := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpLoad, Def: v, Mem: mem})
	s := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpALU, Def: s, Use: [2]ir.Reg{v, b.pick()}, Imm: b.tag()})
	b.emit(ir.Insn{Op: isa.OpStore, Use: [2]ir.Reg{s}, Mem: mem})
}

// IndexedLoad emits the classic array-walk address computation: a multiply
// of the loop induction variable (strength-reduction fodder), an address
// add, then the load.
func (b *B) IndexedLoad(stream string, wset, stride int32) ir.Reg {
	iv := b.IV()
	t := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpMul, Def: t, Use: [2]ir.Reg{iv},
		Imm: b.tag(), Flags: ir.FlagMulByIndex})
	a := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpALU, Def: a, Use: [2]ir.Reg{t}, Imm: b.tag(),
		Flags: ir.FlagAddrCalc})
	d := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpLoad, Def: d, Use: [2]ir.Reg{a},
		Mem: ir.MemRef{Stream: b.Stream(stream), Kind: ir.MemSeq, WSet: wset, Stride: stride}})
	return d
}

// Call emits a call to the named function (resolved at Build).
func (b *B) Call(name string) {
	b.fixups = append(b.fixups, fixup{
		funcID: b.f.ID, block: b.cur.ID, index: len(b.cur.Insns), callee: name,
	})
	b.emit(ir.Insn{Op: isa.OpCall, Use: [2]ir.Reg{b.pick()}, Callee: -1})
}

// IV returns the innermost loop's induction variable (RegNone outside).
func (b *B) IV() ir.Reg {
	if len(b.loops) == 0 {
		return ir.RegNone
	}
	return b.loops[len(b.loops)-1].iv
}

// Loop opens a counted loop executing trip iterations per entry.
func (b *B) Loop(trip int32) {
	b.openLoop(trip, 0)
}

// LoopP opens a data-dependent loop with the given mean trip count; its
// latch branch is probabilistic (and hence less predictable).
func (b *B) LoopP(meanTrip float64) {
	if meanTrip < 1 {
		meanTrip = 1
	}
	b.openLoop(0, (meanTrip-1)/meanTrip)
}

func (b *B) openLoop(trip int32, prob float64) {
	// The current block becomes the preheader: initialise the induction
	// variable there, then fall into the header.
	iv := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpALU, Def: iv, Imm: b.tag(), Flags: ir.FlagMerge})
	pre := b.cur
	header := b.newBlock()
	pre.Term = ir.Term{Kind: ir.TermFall, Fall: header.ID}
	b.cur = header
	b.loops = append(b.loops, loopCtx{header: header.ID, iv: iv, trip: trip,
		prob: prob, preh: pre.ID, snap: b.snapshot(), exprs: b.exprSnapshot()})
}

// End closes the innermost loop: the current block becomes the latch with
// the back edge, and building continues in the exit block.
func (b *B) End() {
	if len(b.loops) == 0 {
		b.fail("End without Loop")
		return
	}
	lc := b.loops[len(b.loops)-1]
	b.loops = b.loops[:len(b.loops)-1]
	// Induction update and latch comparison.
	b.emit(ir.Insn{Op: isa.OpALU, Def: lc.iv, Use: [2]ir.Reg{lc.iv},
		Imm: 1, Flags: ir.FlagMerge | ir.FlagInduction})
	cond := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpALU, Def: cond, Use: [2]ir.Reg{lc.iv}, Imm: b.tag()})
	exit := b.newBlock()
	b.cur.Term = ir.Term{
		Kind: ir.TermBranch, Taken: lc.header, Fall: exit.ID,
		Trip: lc.trip, Prob: lc.prob, CondReg: cond, Site: b.site(),
	}
	b.cur = exit
	b.restore(lc.snap, lc.exprs)
}

// If opens a two-way split: with probability pSide control goes to the
// out-of-line "side" arm (built after Else), otherwise it falls through to
// the main arm built next. Real code shapes: error checks (small pSide),
// data-dependent halves (pSide near 0.5).
func (b *B) If(pSide float64) {
	cond := b.op(isa.OpALU, false)
	side := b.newBlock()
	main := b.newBlock()
	b.cur.Term = ir.Term{Kind: ir.TermBranch, Taken: side.ID, Fall: main.ID,
		Prob: pSide, CondReg: cond, Site: b.site()}
	b.ifs = append(b.ifs, ifCtx{side: side.ID, fromIf: b.cur, inMain: true,
		snap: b.snapshot(), exprs: b.exprSnapshot()})
	b.cur = main
}

// InvIf is If with a loop-invariant condition (unswitching fodder): the
// condition register is computed in the innermost loop's preheader.
func (b *B) InvIf(pSide float64) {
	if len(b.loops) == 0 {
		b.If(pSide)
		return
	}
	lc := b.loops[len(b.loops)-1]
	pre := b.f.Blocks[lc.preh]
	cond := b.f.NewReg()
	pre.Insns = append(pre.Insns, ir.Insn{Op: isa.OpALU, Def: cond,
		Use: [2]ir.Reg{}, Imm: b.tag()})
	side := b.newBlock()
	main := b.newBlock()
	b.cur.Term = ir.Term{Kind: ir.TermBranch, Taken: side.ID, Fall: main.ID,
		Prob: pSide, CondReg: cond, InvariantIn: lc.header, Site: b.site()}
	b.ifs = append(b.ifs, ifCtx{side: side.ID, fromIf: b.cur, inMain: true,
		snap: b.snapshot(), exprs: b.exprSnapshot()})
	b.cur = main
}

// Guard emits a provably-redundant bounds-check branch (VRP fodder): the
// comparison and branch always fall through.
func (b *B) Guard() {
	cond := b.f.NewReg()
	b.emit(ir.Insn{Op: isa.OpALU, Def: cond, Use: [2]ir.Reg{b.pick()},
		Imm: b.tag(), Flags: ir.FlagGuard})
	side := b.newBlock()
	main := b.newBlock()
	// The side arm models the never-taken error path.
	side.Insns = append(side.Insns, ir.Insn{Op: isa.OpALU, Def: b.f.NewReg(), Imm: b.tag()})
	side.Term = ir.Term{Kind: ir.TermJump, Taken: main.ID}
	b.cur.Term = ir.Term{Kind: ir.TermBranch, Taken: side.ID, Fall: main.ID,
		Prob: 0, CondReg: cond, Guard: true, Site: b.site()}
	b.cur = main
}

// Else switches building to the side arm of the innermost If.
func (b *B) Else() {
	if len(b.ifs) == 0 {
		b.fail("Else without If")
		return
	}
	ic := &b.ifs[len(b.ifs)-1]
	if !ic.inMain {
		b.fail("double Else")
		return
	}
	join := b.newBlock()
	ic.join = join.ID
	b.cur.Term = ir.Term{Kind: ir.TermJump, Taken: join.ID}
	b.cur = b.f.Blocks[ic.side]
	ic.inMain = false
	b.restore(ic.snap, ic.exprs)
}

// EndIf closes the innermost If/Else; building continues at the join.
func (b *B) EndIf() {
	if len(b.ifs) == 0 {
		b.fail("EndIf without If")
		return
	}
	ic := b.ifs[len(b.ifs)-1]
	b.ifs = b.ifs[:len(b.ifs)-1]
	if ic.inMain {
		// If without Else: side arm is empty pass-through.
		join := b.newBlock()
		b.cur.Term = ir.Term{Kind: ir.TermFall, Fall: join.ID}
		side := b.f.Blocks[ic.side]
		side.Term = ir.Term{Kind: ir.TermJump, Taken: join.ID}
		b.cur = join
		b.restore(ic.snap, ic.exprs)
		return
	}
	join := b.f.Blocks[ic.join]
	b.cur.Term = ir.Term{Kind: ir.TermJump, Taken: join.ID}
	b.cur = join
	b.restore(ic.snap, ic.exprs)
}

// Ret ends the current function.
func (b *B) Ret() {
	b.cur.Term = ir.Term{Kind: ir.TermRet}
}

// LibFunc builds an opaque library function of roughly size straight-line
// instructions with the given memory character; one call executes about
// size dynamic instructions. Library code is never optimised, so programs
// dominated by it have little optimisation headroom (the paper's qsort and
// basicmath).
func (b *B) LibFunc(name string, size int, kind ir.MemKind, wset int32) {
	b.Func(name)
	b.Library()
	emitted := 0
	for emitted < size {
		b.ALU(4)
		b.Shift(1)
		emitted += 5
		if kind != ir.MemNone && emitted%15 == 5 {
			b.Load(name+"_data", kind, wset, 4)
			b.ALU(2)
			emitted += 3
			if emitted%30 == 8 {
				b.Store(name+"_data", kind, wset, 4)
				emitted++
			}
		}
	}
	b.Ret()
}

// Build finalises the module: call targets are resolved and the IR is
// verified.
func (b *B) Build() (*ir.Module, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, fx := range b.fixups {
		callee := b.m.FuncByName(fx.callee)
		if callee == nil {
			return nil, fmt.Errorf("prog %s: call to undefined function %q", b.m.Name, fx.callee)
		}
		b.m.Funcs[fx.funcID].Blocks[fx.block].Insns[fx.index].Callee = int32(callee.ID)
	}
	if err := b.m.Verify(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustBuild is Build panicking on error; program definitions are static,
// so an error is a bug in the definition.
func (b *B) MustBuild() *ir.Module {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
