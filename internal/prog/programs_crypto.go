package prog

import "portcc/internal/ir"

// Security benchmarks. Rijndael is the paper's star: its source contains
// extensive hand-written loop unrolling ("there is already extensive,
// optimised software loop unrolling programmed into the source code",
// Section 5.2), so its round function is a large straight-line block of
// roughly 3.5KB. That makes it acutely instruction-cache sensitive: on
// small-I-cache configurations -O3's scheduling spills, alignment padding
// and redundant address arithmetic push the hot loop past the cache size,
// and the best pass settings - which compact the code instead - recover
// the paper's multi-x speedups (up to 4.85x in Figure 5a).

// rijndaelRounds emits the hand-unrolled AES round structure shared by the
// encrypt and decrypt directions.
func rijndaelRounds(b *B, rounds int, shiftHeavy bool) {
	for r := 0; r < rounds; r++ {
		// Each round opens with a provably-redundant key-bounds guard
		// (VRP fodder) which also splits the round into its own blocks,
		// so the repeated key-offset arithmetic below is cross-block
		// redundancy: only the CSE-family flags can remove it.
		b.Guard()
		// One round: T-table lookups plus XOR mixing over a wide state,
		// fully unrolled in the source like the reference rijndael code.
		for col := 0; col < 12; col++ {
			b.LoadTable("T0", wTiny)
			b.LoadTable("T1", wTiny)
			b.LoadTable("T2", wTiny)
			b.LoadTable("T3", wTiny)
			b.ALU(4) // xor mixing
			if shiftHeavy {
				b.Shift(2)
			} else {
				b.Shift(1)
			}
			b.Redundant(1) // repeated key-offset arithmetic
		}
		b.Load("rk", ir.MemSeq, wTiny, 4) // round key
		b.ALU(2)
	}
}

func buildRijndael(name string, shiftHeavy bool) *B {
	b := NewB(name, seedFor(name))
	b.Func("main")
	b.Loop(15) // blocks
	{
		b.Load("in", ir.MemSeq, wHuge, 4)
		b.Load("in", ir.MemSeq, wHuge, 4)
		b.ALU(2)
		b.Call("cipher")
		b.Store("out", ir.MemSeq, wHuge, 4)
		b.Store("out", ir.MemSeq, wHuge, 4)
	}
	b.End()
	b.Ret()

	b.Func("cipher")
	rijndaelRounds(b, 10, shiftHeavy)
	b.ALU(4) // final whitening
	b.Ret()
	return b
}

// buildRijndaelE models rijndael_e (AES encryption).
func buildRijndaelE() *B { return buildRijndael("rijndael_e", false) }

// buildRijndaelD models rijndael_d (AES decryption, shift-heavier inverse
// mix columns).
func buildRijndaelD() *B { return buildRijndael("rijndael_d", true) }

// blowfish emits the 16-round Feistel network with 4 S-box lookups per
// round, hand-written straight-line as in the reference implementation.
func blowfish(b *B) {
	for r := 0; r < 16; r++ {
		b.LoadTable("sbox0", wTiny)
		b.LoadTable("sbox1", wTiny)
		b.LoadTable("sbox2", wTiny)
		b.LoadTable("sbox3", wTiny)
		b.ALU(5) // F function xor/add mixing
		b.Shift(1)
	}
}

func buildBlowfish(name string) *B {
	b := NewB(name, seedFor(name))
	b.Func("main")
	b.LoopP(125) // data blocks
	{
		b.Load("in", ir.MemSeq, wHuge, 8)
		blowfish(b)
		b.ALU(3)
		b.Store("out", ir.MemSeq, wHuge, 8)
	}
	b.End()
	b.Ret()
	return b
}

// buildBfE models bf_e (Blowfish encryption).
func buildBfE() *B { return buildBlowfish("bf_e") }

// buildBfD models bf_d (Blowfish decryption - same network, reversed key
// schedule, indistinguishable instruction mix).
func buildBfD() *B { return buildBlowfish("bf_d") }

// buildSha models sha: the 80-step compression is partially hand-unrolled
// into straight-line rotate/add chains with long serial dependences, so
// scheduling gains little and further unrolling only costs code size.
func buildSha() *B {
	b := NewB("sha", seedFor("sha"))
	b.Func("main")
	b.Loop(42) // 512-bit message blocks
	{
		b.Loop(16) // message schedule expansion
		{
			b.Load("msg", ir.MemSeq, wLarge, 4)
			b.Shift(2)
			b.ALU(2)
			b.Store("w", ir.MemSeq, wTiny, 4)
		}
		b.End()
		// Four hand-unrolled 20-step round groups.
		for g := 0; g < 4; g++ {
			for s := 0; s < 10; s++ {
				b.Load("w", ir.MemSeq, wTiny, 4)
				b.Shift(2) // rotates
				b.ALU(4)   // chained adds (serial dependence)
			}
			b.ALU(2)
		}
		b.ScalarAcc("digest")
	}
	b.End()
	b.Ret()
	return b
}

// buildCrc models crc32: a tiny byte loop calling a helper that updates
// the running CRC through an in-memory pointer/accumulator. Inlining the
// helper (with a large growth allowance) exposes the memory accumulator to
// scalar promotion, removing the per-byte loads and stores - the paper's
// Section 5.3 explanation of why crc needs flags the counters cannot
// anticipate (the model reaches only ~30% of crc's maximum).
func buildCrc() *B {
	b := NewB("crc", seedFor("crc"))
	b.Func("main")
	b.Loop(1100) // buffer bytes
	{
		b.Load("buf", ir.MemSeq, wHuge, 4)
		b.Call("update")
	}
	b.End()
	b.Ret()

	b.Func("update")
	// The pointer/crc live in memory (as in the reference source, where
	// the loop updates *p++ every iteration).
	b.ScalarAcc("crcreg")
	b.LoadTable("crctab", wTiny)
	b.Shift(1)
	b.ALU(2)
	b.ScalarAcc("bufptr")
	b.Ret()
	return b
}

// buildPgp models pgp: multiprecision arithmetic - counted MAC loops with
// carry chains, plus small helpers whose inlining the paper's Figure 8
// singles out as pgp's dominant flags.
func buildPgp() *B {
	b := NewB("pgp", seedFor("pgp"))
	b.Func("main")
	b.Loop(26) // modmul operations
	{
		b.Call("mulrow")
		b.Call("reduce")
	}
	b.End()
	b.Ret()

	b.Func("mulrow")
	b.Loop(32)
	{
		b.Load("a", ir.MemSeq, wSmall, 4)
		b.Load("bv", ir.MemSeq, wSmall, 4)
		b.Mac(3)
		b.ALU(3) // carry propagation (serial)
		b.Store("acc", ir.MemSeq, wSmall, 4)
	}
	b.End()
	b.Ret()

	b.Func("reduce")
	b.Loop(32)
	{
		b.Load("acc", ir.MemSeq, wSmall, 4)
		b.Mul(1)
		b.ALU(4)
		b.If(0.12) // borrow fix-up
		b.ALU(2)
		b.EndIf()
		b.Store("res", ir.MemSeq, wSmall, 4)
	}
	b.End()
	b.Ret()
	return b
}

// buildPgpSa models pgp_sa (sign/armour): the pgp core plus hashing and
// radix-64 helpers, more call-dominated.
func buildPgpSa() *B {
	b := NewB("pgp_sa", seedFor("pgp_sa"))
	b.Func("main")
	b.Loop(30)
	{
		b.Call("mulrow")
		b.Call("hashstep")
		b.Call("armor")
	}
	b.End()
	b.Ret()

	b.Func("mulrow")
	b.Loop(32)
	{
		b.Load("a", ir.MemSeq, wSmall, 4)
		b.Mac(3)
		b.ALU(3)
		b.Store("acc", ir.MemSeq, wSmall, 4)
	}
	b.End()
	b.Ret()

	b.Func("hashstep")
	b.Loop(10)
	{
		b.Load("w", ir.MemSeq, wTiny, 4)
		b.Shift(2)
		b.ALU(4)
	}
	b.End()
	b.ScalarAcc("digest")
	b.Ret()

	b.Func("armor")
	b.Loop(12)
	{
		b.Load("bin", ir.MemSeq, wMedium, 4)
		b.Shift(2)
		b.LoadTable("b64", wTiny)
		b.Store("txt", ir.MemSeq, wMedium, 4)
	}
	b.End()
	b.Ret()
	return b
}
