package prog

import "portcc/internal/ir"

// Office, network and automotive benchmarks. qsort and basicmath spend
// nearly all their time in opaque library code (libc qsort, libm), which
// the compiler cannot optimise - the paper's Figure 4 shows them with
// almost no headroom. gs and search carry large amounts of user code whose
// inlining behaviour dominates; patricia and dijkstra are pointer-chasing
// and memory bound.

// buildQsort models qsort: the sort comparator and memory shuffling live
// in library code; the program's own code is a thin driver.
func buildQsort() *B {
	b := NewB("qsort", seedFor("qsort"))
	b.Func("main")
	b.LoopP(190)
	{
		b.Load("keys", ir.MemRandom, wMedium, 4)
		b.ALU(3)
		b.Call("libqsort_cmp")
		b.ALU(2)
		b.If(0.5)
		b.Call("libmemswap")
		b.EndIf()
	}
	b.End()
	b.Ret()
	b.LibFunc("libqsort_cmp", 60, ir.MemRandom, wMedium)
	b.LibFunc("libmemswap", 50, ir.MemRandom, wMedium)
	return b
}

// buildBasicmath models basicmath: cubic/sqrt/angle kernels inside libm,
// called from a trivial driver loop - nearly zero compiler headroom.
func buildBasicmath() *B {
	b := NewB("basicmath", seedFor("basicmath"))
	b.Func("main")
	b.Loop(105)
	{
		b.ALU(3)
		b.Call("libm_cbrt")
		b.Call("libm_sqrt")
		b.ALU(2)
		b.Store("res", ir.MemSeq, wMedium, 4)
	}
	b.End()
	b.Ret()
	b.LibFunc("libm_cbrt", 150, ir.MemNone, 0)
	b.LibFunc("libm_sqrt", 100, ir.MemNone, 0)
	return b
}

// buildGs models gs (ghostscript): a large interpreter - branchy dispatch
// over several mid-sized operator handlers. Its ~6KB hot footprint makes
// every code-size decision strongly microarchitecture-dependent.
func buildGs() *B {
	b := NewB("gs", seedFor("gs"))
	b.Func("main")
	b.LoopP(30) // token loop
	{
		b.Load("prog", ir.MemSeq, wLarge, 4)
		b.Shift(1)
		b.If(0.30)
		b.Call("op_path")
		b.Else()
		b.ALU(2)
		b.EndIf()
		b.If(0.25)
		b.Call("op_fill")
		b.Else()
		b.ALU(2)
		b.EndIf()
		b.If(0.20)
		b.Call("op_image")
		b.EndIf()
		b.Call("op_stack")
	}
	b.End()
	b.Ret()

	handler := func(name string, blocks int, kind ir.MemKind) {
		b.Func(name)
		b.Guard()
		for i := 0; i < blocks; i++ {
			b.Load("gstate", kind, wMedium, 4)
			b.ALU(6)
			b.Shift(1)
			b.If(0.35)
			b.ALU(4)
			b.Redundant(2)
			b.Else()
			b.ALU(3)
			b.EndIf()
			b.Store("gstate", kind, wMedium, 4)
		}
		b.Ret()
	}
	handler("op_path", 24, ir.MemRandom)
	handler("op_fill", 30, ir.MemSeq)
	handler("op_image", 36, ir.MemRandom)
	handler("op_stack", 10, ir.MemStack)
	return b
}

// buildPatricia models patricia: trie traversal - serialised pointer
// chasing with unpredictable branches, memory bound with little headroom
// for anything except layout.
func buildPatricia() *B {
	b := NewB("patricia", seedFor("patricia"))
	b.Func("main")
	b.LoopP(190) // lookups
	{
		b.Load("addr", ir.MemSeq, wLarge, 4)
		b.LoopP(11) // trie depth
		{
			b.PtrLoad("trie", wMedium)
			b.Shift(1)
			b.ALU(2)
			b.If(0.5)
			b.ALU(1)
			b.EndIf()
		}
		b.End()
		b.If(0.3) // insert path
		b.ALU(5)
		b.Store("trie", ir.MemRandom, wMedium, 4)
		b.EndIf()
	}
	b.End()
	b.Ret()
	return b
}

// buildLout models lout: a document formatter - many small string/layout
// helpers called from branchy loops, moderate redundancy from repeated
// metric computations.
func buildLout() *B {
	b := NewB("lout", seedFor("lout"))
	b.Func("main")
	b.LoopP(160) // objects
	{
		b.Load("doc", ir.MemSeq, wLarge, 4)
		b.If(0.4)
		b.Call("width")
		b.Else()
		b.Call("height")
		b.EndIf()
		b.Call("metrics")
		b.If(0.15)
		b.Call("break_line")
		b.EndIf()
		b.Store("laid", ir.MemSeq, wLarge, 4)
	}
	b.End()
	b.Ret()

	small := func(name string, n int) {
		b.Func(name)
		b.LoadTable("fontm", wSmall)
		b.ALU(n)
		b.Redundant(2)
		b.Shift(1)
		b.Ret()
	}
	small("width", 8)
	small("height", 7)
	small("metrics", 12)

	b.Func("break_line")
	b.LoopP(6)
	{
		b.Load("words", ir.MemSeq, wMedium, 4)
		b.ALU(6)
		b.If(0.4)
		b.ALU(3)
		b.EndIf()
	}
	b.End()
	// Justification pass calls metrics again (second inline site).
	b.Call("metrics")
	b.Ret()
	return b
}

// buildTiffmedian models tiffmedian: histogram construction (random
// read-modify-write) followed by counted reduction scans with an in-memory
// accumulator.
func buildTiffmedian() *B {
	b := NewB("tiffmedian", seedFor("tiffmedian"))
	b.Func("main")
	b.Loop(2400) // pixels per tile
	{
		b.Load("img", ir.MemSeq, wHuge, 4)
		b.Shift(2)
		b.ALU(2)
		b.Load("hist", ir.MemRandom, wMedium, 4)
		b.ALU(1)
		b.Store("hist", ir.MemRandom, wMedium, 4)
	}
	b.End()
	b.Loop(512) // median scan
	{
		b.Load("hist", ir.MemSeq, wMedium, 4)
		b.ScalarAcc("running")
		b.If(0.1)
		b.ALU(2)
		b.EndIf()
	}
	b.End()
	b.Ret()
	return b
}

// buildIspell models ispell: hash-and-probe dictionary lookups through
// small helper functions; the paper's Figure 8 shows the inlining flags
// dominating ispell.
func buildIspell() *B {
	b := NewB("ispell", seedFor("ispell"))
	b.Func("main")
	b.LoopP(170) // words
	{
		b.Load("text", ir.MemSeq, wLarge, 4)
		b.Call("hash")
		b.Call("probe")
		b.If(0.25) // not found: try affixes
		b.Call("affix")
		b.Call("probe")
		b.EndIf()
	}
	b.End()
	b.Ret()

	b.Func("hash")
	b.LoopP(5) // characters
	{
		b.Load("word", ir.MemSeq, wTiny, 4)
		b.Mul(1)
		b.ALU(2)
		b.Shift(1)
	}
	b.End()
	b.Ret()

	b.Func("probe")
	b.Load("dict", ir.MemRandom, wMedium, 4)
	b.ALU(4)
	b.If(0.5)
	b.Load("dict", ir.MemRandom, wMedium, 4)
	b.ALU(3)
	b.EndIf()
	b.Ret()

	b.Func("affix")
	b.LoadTable("afxtab", wSmall)
	b.ALU(6)
	b.Shift(2)
	b.Ret()
	return b
}

// buildTiffdither models tiffdither: Floyd-Steinberg error diffusion - a
// counted pixel loop with neighbour stores and an error accumulator.
func buildTiffdither() *B {
	b := NewB("tiffdither", seedFor("tiffdither"))
	b.Func("main")
	b.Loop(20) // rows
	{
		b.Loop(64) // columns
		{
			b.Load("img", ir.MemSeq, wHuge, 4)
			b.ScalarAcc("err")
			b.ALU(3)
			b.Shift(2)
			b.If(0.5) // threshold
			b.ALU(1)
			b.EndIf()
			b.Store("out", ir.MemSeq, wHuge, 4)
			b.Store("errrow", ir.MemSeq, wMedium, 4)
		}
		b.End()
	}
	b.End()
	b.Ret()
	return b
}

// buildTiff2bw models tiff2bw: per-pixel luma reduction - three streaming
// loads, two multiplies, one store; almost pure streaming.
func buildTiff2bw() *B {
	b := NewB("tiff2bw", seedFor("tiff2bw"))
	b.Func("main")
	b.Loop(28)
	{
		b.Loop(64)
		{
			b.Load("r", ir.MemSeq, wHuge, 4)
			b.Load("g", ir.MemSeq, wHuge, 4)
			b.Load("bch", ir.MemSeq, wHuge, 4)
			b.Mul(2)
			b.ALU(2)
			b.Shift(1)
			b.Store("gray", ir.MemSeq, wHuge, 4)
		}
		b.End()
	}
	b.End()
	b.Ret()
	return b
}

// buildDijkstra models dijkstra: relaxation over an adjacency structure -
// dependent loads and unpredictable comparisons, with a small counted
// inner loop over neighbours.
func buildDijkstra() *B {
	b := NewB("dijkstra", seedFor("dijkstra"))
	b.Func("main")
	b.LoopP(320) // queue pops
	{
		b.PtrLoad("queue", wMedium)
		b.ALU(2)
		b.Loop(4) // neighbours
		{
			b.Load("adj", ir.MemRandom, wMedium, 4)
			b.Load("dist", ir.MemRandom, 16<<10, 4)
			b.ALU(3)
			b.If(0.35) // relaxation applies
			b.Store("dist", ir.MemRandom, 16<<10, 4)
			b.ALU(2)
			b.EndIf()
		}
		b.End()
	}
	b.End()
	b.Ret()
	return b
}

// buildBitcnts models bitcnts: a driver loop over tiny bit-counting
// kernels; inlining plus unrolling the counted 8-iteration loops is nearly
// the whole story.
func buildBitcnts() *B {
	b := NewB("bitcnts", seedFor("bitcnts"))
	b.Func("main")
	b.Loop(260)
	{
		b.Load("rand", ir.MemSeq, wMedium, 4)
		b.Call("cnt_shift")
		b.Call("cnt_table")
		b.Call("cnt_nibble")
		b.ALU(2)
	}
	b.End()
	b.Ret()

	b.Func("cnt_shift")
	b.Loop(8)
	{
		b.Shift(1)
		b.ALU(2)
	}
	b.End()
	b.Ret()

	b.Func("cnt_table")
	b.Shift(1)
	b.LoadTable("bittab", wTiny)
	b.Shift(1)
	b.LoadTable("bittab", wTiny)
	b.ALU(2)
	b.Ret()

	b.Func("cnt_nibble")
	b.Loop(8)
	{
		b.Shift(1)
		b.ALU(1)
		b.LoadTable("niptab", wTiny)
		b.ALU(1)
	}
	b.End()
	b.Ret()
	return b
}

// buildSearch models search (stringsearch): Boyer-Moore-Horspool over
// several patterns. The pattern matchers share a sizeable compare kernel
// called from eight sites; -O3 inlines it everywhere, multiplying the hot
// footprint several-fold and thrashing small instruction caches.
// Disabling inlining and unrolling the counted compare loop instead gives
// the paper's largest average headroom (about 2.2x).
func buildSearch() *B {
	b := NewB("search", seedFor("search"))
	b.Func("main")
	b.LoopP(85) // text windows
	{
		b.Load("text", ir.MemSeq, wLarge, 4)
		b.LoadTable("skip", wTiny)
		b.ALU(2)
		b.If(0.5)
		b.Call("match_a")
		b.Else()
		b.Call("match_b")
		b.EndIf()
		b.If(0.5)
		b.Call("match_c")
		b.Else()
		b.Call("match_d")
		b.EndIf()
	}
	b.End()
	b.Ret()

	// Shared compare kernel: straight-line skip computation plus a
	// counted tail-compare loop. Static ~75 instructions: inlineable at
	// -O3's 120-instruction threshold, from 8 call sites.
	b.Func("cmploop")
	b.LoadTable("skip", wTiny)
	b.ALU(12)
	b.Shift(2)
	b.Redundant(3)
	b.ALU(10)
	b.Loop(8) // counted tail compare (unrolling fodder)
	{
		b.Load("text", ir.MemSeq, wLarge, 4)
		b.Load("pat", ir.MemSeq, wTiny, 4)
		b.ALU(3)
	}
	b.End()
	b.ALU(12)
	b.Shift(2)
	b.Redundant(3)
	b.ALU(8)
	b.Ret()

	matcher := func(name string) {
		b.Func(name)
		b.ALU(5)
		b.If(0.5)
		b.Call("cmploop")
		b.Else()
		b.ALU(2)
		b.Call("cmploop")
		b.EndIf()
		b.If(0.08) // full verify on candidate
		b.ALU(6)
		b.EndIf()
		b.Ret()
	}
	matcher("match_a")
	matcher("match_b")
	matcher("match_c")
	matcher("match_d")
	return b
}
