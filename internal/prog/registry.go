package prog

import (
	"fmt"
	"sort"

	"portcc/internal/ir"
	"portcc/internal/pcerr"
)

// builderFunc constructs one benchmark program.
type builderFunc func() *B

// registry maps program names to their builders. Names and ordering follow
// the paper's Figure 4 x-axis (all 35 MiBench programs).
var registry = map[string]builderFunc{
	"qsort":      buildQsort,
	"rawcaudio":  buildRawcaudio,
	"tiff2rgba":  buildTiff2rgba,
	"gs":         buildGs,
	"djpeg":      buildDjpeg,
	"patricia":   buildPatricia,
	"basicmath":  buildBasicmath,
	"lout":       buildLout,
	"fft_i":      buildFftI,
	"fft":        buildFft,
	"susan_s":    buildSusanS,
	"susan_c":    buildSusanC,
	"tiffmedian": buildTiffmedian,
	"ispell":     buildIspell,
	"pgp":        buildPgp,
	"tiffdither": buildTiffdither,
	"bf_e":       buildBfE,
	"bf_d":       buildBfD,
	"rawdaudio":  buildRawdaudio,
	"pgp_sa":     buildPgpSa,
	"tiff2bw":    buildTiff2bw,
	"cjpeg":      buildCjpeg,
	"lame":       buildLame,
	"dijkstra":   buildDijkstra,
	"susan_e":    buildSusanE,
	"toast":      buildToast,
	"madplay":    buildMadplay,
	"untoast":    buildUntoast,
	"sha":        buildSha,
	"bitcnts":    buildBitcnts,
	"say":        buildSay,
	"rijndael_d": buildRijndaelD,
	"crc":        buildCrc,
	"rijndael_e": buildRijndaelE,
	"search":     buildSearch,
}

// paperOrder is the Figure 4 x-axis ordering (ascending median headroom).
var paperOrder = []string{
	"qsort", "rawcaudio", "tiff2rgba", "gs", "djpeg", "patricia",
	"basicmath", "lout", "fft_i", "fft", "susan_s", "susan_c",
	"tiffmedian", "ispell", "pgp", "tiffdither", "bf_e", "bf_d",
	"rawdaudio", "pgp_sa", "tiff2bw", "cjpeg", "lame", "dijkstra",
	"susan_e", "toast", "madplay", "untoast", "sha", "bitcnts",
	"say", "rijndael_d", "crc", "rijndael_e", "search",
}

// Names returns all program names in the paper's Figure 4 order.
func Names() []string {
	return append([]string(nil), paperOrder...)
}

// SortedNames returns all program names alphabetically.
func SortedNames() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named program's IR module.
func Build(name string) (*ir.Module, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("prog: %w: %q", pcerr.ErrUnknownProgram, name)
	}
	return f().Build()
}

// Known reports whether name is in the benchmark suite, without building it.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// MustBuild is Build panicking on unknown names or definition bugs.
func MustBuild(name string) *ir.Module {
	m, err := Build(name)
	if err != nil {
		panic(err)
	}
	return m
}

// seedFor derives the deterministic builder seed from the program name.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// Working-set size shorthands (bytes).
const (
	wTiny   = 1 << 10  // 1 KiB: registers' worth of state, stack-ish
	wSmall  = 4 << 10  // 4 KiB: lookup tables
	wMedium = 32 << 10 // 32 KiB: frames, dictionaries
	wLarge  = 256 << 10
	wHuge   = 1 << 20 // 1 MiB: large image inputs
)
