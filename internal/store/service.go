// The service side of the shared result store: a sched.Serve-style
// accept loop that exposes one Backend (normally a plain *Store
// directory) to a fleet of remote clients over the wire protocol. One
// portccsd (or portccd -store-serve) process owns the directory; every
// shard's Tiered backend queries it before recomputing a cell, so a
// fleet's duplicate replays collapse into one computation.
//
// The protocol per connection: version handshake (wire.ServerHello,
// exactly like the job protocol - mismatched builds are refused typed),
// then pipelined StoreGet/StorePut frames, each answered by exactly one
// StoreReply correlated by request ID. Replies interleave freely with
// heartbeats and with each other; a bounded per-connection worker pool
// keeps one slow disk read from serialising the stream behind it.
//
// Failure semantics mirror the store's own: a corrupt entry is
// quarantined service-side and answered as a miss with Err set, a
// failed Put is acknowledged with Err set - the client degrades, the
// connection survives. Only transport death ends a connection, and the
// client redials.
package store

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"portcc/internal/wire"
)

// ServiceConfig configures a store service loop.
type ServiceConfig struct {
	// Format is the application schema version announced in the
	// handshake (for the result-store fleet, dataset.FormatVersion):
	// clients built against another schema are refused typed rather
	// than silently missing on every key.
	Format int
	// Heartbeat is the period at which quiet connections prove the
	// service alive (default 1s); clients treat a few missed beats as a
	// dead service and degrade to their local tier.
	Heartbeat time.Duration
	// Inflight bounds concurrently served requests per connection
	// (default 16): enough to pipeline a fleet shard's batch, bounded
	// so one client cannot queue unbounded disk work.
	Inflight int
	// Drain, when closed, drains the loop gracefully: stop accepting,
	// answer in-flight requests, then close. Clients degrade to local.
	Drain <-chan struct{}
	// Logf, when set, receives one line per connection event.
	Logf func(format string, args ...any)
}

func (c *ServiceConfig) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return time.Second
}

func (c *ServiceConfig) inflight() int {
	if c.Inflight > 0 {
		return c.Inflight
	}
	return 16
}

func (c *ServiceConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// ServiceStats is the daemon-side ledger of a store service, readable
// concurrently while serving.
type ServiceStats struct {
	// Conns counts accepted connections that passed the handshake.
	Conns int64
	// Gets/Hits/Misses count StoreGet requests and their outcomes;
	// GetErrors counts Gets degraded by a corrupt or unreadable entry
	// (quarantined, answered as a miss with the reason attached).
	Gets, Hits, Misses, GetErrors int64
	// Puts counts StorePut requests committed; PutErrors the commits
	// refused by the disk (the client's entry stays uncached).
	Puts, PutErrors int64
}

// Service serves one Backend to remote store clients.
type Service struct {
	backend Backend
	cfg     ServiceConfig

	conns, gets, hits, misses, getErrors atomic.Int64
	puts, putErrors                      atomic.Int64
}

// NewService wraps a backend for serving. The service borrows the
// backend: Close stays the caller's job, after Serve returns.
func NewService(b Backend, cfg ServiceConfig) *Service {
	return &Service{backend: b, cfg: cfg}
}

// Stats returns the request counters.
func (sv *Service) Stats() ServiceStats {
	return ServiceStats{
		Conns:     sv.conns.Load(),
		Gets:      sv.gets.Load(),
		Hits:      sv.hits.Load(),
		Misses:    sv.misses.Load(),
		GetErrors: sv.getErrors.Load(),
		Puts:      sv.puts.Load(),
		PutErrors: sv.putErrors.Load(),
	}
}

// Serve accepts client connections on ln until ctx is cancelled (hard
// stop) or cfg.Drain is closed (graceful: in-flight requests are
// answered first), then blocks until every connection handler has
// exited. The listener is closed on return.
func (sv *Service) Serve(ctx context.Context, ln net.Listener) error {
	cfg := &sv.cfg
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-ctx.Done():
		case <-svcDrainChan(cfg.Drain):
		case <-stopped:
		}
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	var acceptDelay time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || svcDrained(cfg.Drain) {
				return nil
			}
			if transientServiceAcceptErr(err) {
				if acceptDelay < 5*time.Millisecond {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				cfg.logf("store-serve: accept: %v (retrying in %v)", err, acceptDelay)
				select {
				case <-time.After(acceptDelay):
				case <-ctx.Done():
					return nil
				case <-svcDrainChan(cfg.Drain):
					return nil
				}
				continue
			}
			return err
		}
		acceptDelay = 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer nc.Close()
			cfg.logf("store-serve: serving %s", nc.RemoteAddr())
			sv.serveConn(ctx, nc)
			cfg.logf("store-serve: closed %s", nc.RemoteAddr())
		}()
	}
}

// transientServiceAcceptErr mirrors the job daemon's accept-retry
// predicate: timeouts and the temporary syscall family, never closure.
func transientServiceAcceptErr(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		return false
	}
	//lint:ignore SA1019 Temporary is exactly the accept-retry predicate.
	return ne.Timeout() || ne.Temporary()
}

func svcDrainChan(d <-chan struct{}) <-chan struct{} { return d }

func svcDrained(d <-chan struct{}) bool {
	select {
	case <-d:
		return true
	default:
		return false
	}
}

// serveConn handles one client connection: handshake, then pipelined
// store requests until the client hangs up, the context hard-stops, or
// a drain pokes the idle read while in-flight replies finish.
func (sv *Service) serveConn(ctx context.Context, nc net.Conn) {
	cfg := &sv.cfg
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		drain := svcDrainChan(cfg.Drain)
		for {
			select {
			case <-ctx.Done():
				nc.SetDeadline(time.Unix(1, 0))
				return
			case <-drain:
				nc.SetReadDeadline(time.Unix(1, 0))
				drain = nil
			case <-connDone:
				return
			}
		}
	}()

	conn := wire.NewConn(nc)
	if err := conn.ServerHello(cfg.Format, cfg.heartbeat()); err != nil {
		cfg.logf("store-serve: %s: handshake: %v", nc.RemoteAddr(), err)
		return
	}
	sv.conns.Add(1)

	// Heartbeats share the connection's write lock with reply frames.
	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		t := time.NewTicker(cfg.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if conn.Send(&wire.Frame{Heartbeat: true}) != nil {
					return
				}
			case <-hbDone:
				return
			}
		}
	}()

	// In-flight requests answer from their own goroutines, bounded by
	// the semaphore; the read loop stays single-reader. A failed reply
	// send means the client is gone - the next Recv fails and the
	// handler unwinds after the workers do.
	sem := make(chan struct{}, cfg.inflight())
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		var reply func() *wire.StoreReply
		switch {
		case f.StoreGet != nil:
			g := f.StoreGet
			reply = func() *wire.StoreReply { return sv.answerGet(g) }
		case f.StorePut != nil:
			p := f.StorePut
			reply = func() *wire.StoreReply { return sv.answerPut(p) }
		case f.Heartbeat:
			continue
		default:
			cfg.logf("store-serve: %s: unexpected %s frame", nc.RemoteAddr(), f.Kind())
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			conn.Send(&wire.Frame{StoreReply: reply()})
		}()
	}
}

// answerGet resolves one StoreGet against the backend. Corruption is
// already quarantined by the backend when the error comes back typed;
// the client sees a miss either way and recomputes.
func (sv *Service) answerGet(g *wire.StoreGet) *wire.StoreReply {
	sv.gets.Add(1)
	payload, ok, err := sv.backend.Get(Key(g.Key))
	switch {
	case err != nil:
		sv.getErrors.Add(1)
		return &wire.StoreReply{ID: g.ID, Err: err.Error()}
	case !ok:
		sv.misses.Add(1)
		return &wire.StoreReply{ID: g.ID}
	}
	sv.hits.Add(1)
	return &wire.StoreReply{ID: g.ID, Found: true, Payload: payload}
}

// answerPut commits one StorePut. A refused commit (full disk, dead
// device) is acknowledged with Err: degraded to an uncached entry, the
// connection and the rest of the fleet's traffic unharmed.
func (sv *Service) answerPut(p *wire.StorePut) *wire.StoreReply {
	if err := sv.backend.Put(Key(p.Key), p.Payload); err != nil {
		sv.putErrors.Add(1)
		return &wire.StoreReply{ID: p.ID, Err: err.Error()}
	}
	sv.puts.Add(1)
	return &wire.StoreReply{ID: p.ID, Found: true}
}
