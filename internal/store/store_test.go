package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"portcc/internal/faultfs"
	"portcc/internal/pcerr"
)

func mustOpen(t *testing.T, o Options) *Store {
	t.Helper()
	s, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func keyN(n int) Key { return KeyOf([]byte(fmt.Sprintf("key-%d", n))) }

func payloadN(n int) []byte {
	return bytes.Repeat([]byte{byte(n)}, 100+n)
}

// TestPutGetRoundtrip pins the basic contract: a committed payload
// reads back byte-identical, an unknown key is a clean miss.
func TestPutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	if err := s.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(keyN(1))
	if err != nil || !ok || !bytes.Equal(got, payloadN(1)) {
		t.Fatalf("get: %v %v %q", ok, err, got)
	}
	if _, ok, err := s.Get(keyN(2)); ok || err != nil {
		t.Fatalf("miss returned ok=%v err=%v", ok, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestReopenServesEntries proves persistence: a fresh Store over the
// same directory serves the previous process's commits.
func TestReopenServesEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		if err := s.Put(keyN(i), payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2 := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		got, ok, err := s2.Get(keyN(i))
		if err != nil || !ok || !bytes.Equal(got, payloadN(i)) {
			t.Fatalf("entry %d after reopen: %v %v", i, ok, err)
		}
	}
	if st := s2.Stats(); st.Entries != 5 {
		t.Fatalf("reopened with %d entries, want 5", st.Entries)
	}
}

// TestJournalLossRebuildsFromEntries deletes the index journal between
// runs: membership must come from the entry files themselves.
func TestJournalLossRebuildsFromEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 4; i++ {
		if err := s.Put(keyN(i), payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, journalName)); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 4; i++ {
		if _, ok, err := s2.Get(keyN(i)); !ok || err != nil {
			t.Fatalf("entry %d without journal: %v %v", i, ok, err)
		}
	}
}

// TestStaleJournalIgnored writes a journal naming keys whose files do
// not exist and omitting keys whose files do: the scan wins both ways.
func TestStaleJournalIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if err := s.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	stale := fmt.Sprintf("p %s\nGARBAGE LINE\np not-hex\n", keyN(99))
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Options{Dir: dir})
	if _, ok, err := s2.Get(keyN(1)); !ok || err != nil {
		t.Fatalf("real entry lost to stale journal: %v %v", ok, err)
	}
	if _, ok, _ := s2.Get(keyN(99)); ok {
		t.Fatal("journal-only phantom entry served")
	}
}

// TestBudgetEvictsLRU proves the byte budget evicts coldest-first and a
// Get refreshes recency.
func TestBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	// Each entry is 100+n payload + overhead; budget fits ~3 entries.
	s := mustOpen(t, Options{Dir: dir, Budget: 3 * (110 + int64(entryOverhead))})
	for i := 0; i < 3; i++ {
		if err := s.Put(keyN(i), payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 0 so entry 1 is now coldest.
	if _, ok, _ := s.Get(keyN(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	if err := s.Put(keyN(3), payloadN(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(keyN(1)); ok {
		t.Fatal("coldest entry survived over budget")
	}
	if _, ok, _ := s.Get(keyN(0)); !ok {
		t.Fatal("touched entry was evicted despite LRU refresh")
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	// The evicted file is really gone from disk.
	if _, err := os.Stat(filepath.Join(dir, keyN(1).String()+entrySuffix)); !os.IsNotExist(err) {
		t.Fatalf("evicted entry file still present: %v", err)
	}
}

// TestTempFilesCleanedAtOpen plants a crashed writer's temp file and
// proves Open removes it without inventing an entry.
func TestTempFilesCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"123-deadbeef")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, Options{Dir: dir})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived Open: %v", err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("temp file became an entry: %+v", st)
	}
}

// corruptAt flips one byte (or truncates) the entry file of k.
func corruptAt(t *testing.T, dir string, k Key, pos int, truncate bool) {
	t.Helper()
	path := filepath.Join(dir, k.String()+entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncate {
		data = data[:pos%len(data)]
	} else {
		data[pos%len(data)] ^= 0x40
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptEntryQuarantined pins the corruption contract: a flipped
// bit yields ErrStoreCorrupt (never wrong bytes), the file moves to
// quarantine/, and the key misses cleanly afterwards.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if err := s.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}
	corruptAt(t, dir, keyN(1), 40, false)
	_, ok, err := s.Get(keyN(1))
	if ok {
		t.Fatal("corrupt entry served")
	}
	if !errors.Is(err, pcerr.ErrStoreCorrupt) {
		t.Fatalf("got %v, want ErrStoreCorrupt", err)
	}
	// Quarantined aside, not deleted: the bad bytes are kept for
	// post-mortem under quarantine/.
	qs, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qs) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(qs), err)
	}
	// The key now misses cleanly - no second ErrStoreCorrupt, no serve.
	if _, ok, err := s.Get(keyN(1)); ok || err != nil {
		t.Fatalf("after quarantine: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats %+v", st)
	}
	// A fresh Put of the same key recovers the entry.
	if err := s.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s.Get(keyN(1)); !ok || err != nil || !bytes.Equal(got, payloadN(1)) {
		t.Fatalf("re-put after quarantine: %v %v", ok, err)
	}
}

// TestVersionMismatchQuarantined rewrites an entry's version byte: the
// store must refuse it typed, like any other corruption.
func TestVersionMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	if err := s.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}
	// Flip the version byte and fix the trailer so only the version is
	// wrong - the strictest test of the version check.
	path := filepath.Join(dir, keyN(1).String()+entrySuffix)
	data, _ := os.ReadFile(path)
	data[len(entryMagic)] = entryVersion + 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(keyN(1)); ok || !errors.Is(err, pcerr.ErrStoreCorrupt) {
		t.Fatalf("version-mismatched entry: ok=%v err=%v", ok, err)
	}
}

// TestCorruptionMatrix sweeps truncation points and bit flips across
// the whole entry layout: every mutation must yield ErrStoreCorrupt or
// a clean miss - never a wrong payload.
func TestCorruptionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		dir := t.TempDir()
		s := mustOpen(t, Options{Dir: dir})
		payload := make([]byte, 1+rng.Intn(600))
		rng.Read(payload)
		k := keyN(trial)
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		corruptAt(t, dir, k, rng.Intn(len(payload)+entryOverhead), rng.Intn(2) == 0)
		got, ok, err := s.Get(k)
		if ok && !bytes.Equal(got, payload) {
			t.Fatalf("trial %d: corrupt entry served wrong bytes", trial)
		}
		if !ok && err != nil && !errors.Is(err, pcerr.ErrStoreCorrupt) {
			t.Fatalf("trial %d: unexpected error type %v", trial, err)
		}
		if ok {
			// A truncation at exactly full length is a no-op; fine.
			continue
		}
		s.Close()
	}
}

// TestPutFaultsDegrade drives Puts through ENOSPC/EIO/rename faults:
// each fails typed without aborting the store, commits nothing under
// the final name, and later Puts succeed.
func TestPutFaultsDegrade(t *testing.T) {
	for _, f := range []faultfs.Fault{
		{Op: faultfs.OpWrite, After: 1, Err: syscall.ENOSPC},
		{Op: faultfs.OpWrite, After: 1, Err: syscall.EIO, Torn: true},
		{Op: faultfs.OpSync, After: 1, Err: syscall.EIO},
		{Op: faultfs.OpRename, After: 1, Err: syscall.EIO},
		{Op: faultfs.OpOpen, After: 1, Err: syscall.ENOSPC},
	} {
		t.Run(fmt.Sprintf("%s-after-%d", f.Op, f.After), func(t *testing.T) {
			dir := t.TempDir()
			clean := mustOpen(t, Options{Dir: dir})
			clean.Close()
			fs := faultfs.New(faultfs.OS(), []faultfs.Fault{f})
			s := mustOpen(t, Options{Dir: dir, FS: fs})
			// One Put eats the fault (Open's journal handling may have
			// consumed open/write budget; fire Puts until one fails or
			// the schedule is spent).
			var putErr error
			for i := 0; i < 4 && putErr == nil && fs.Fired() == 0; i++ {
				putErr = s.Put(keyN(i), payloadN(i))
			}
			if fs.Fired() == 0 {
				t.Skip("schedule consumed by journal machinery before any Put")
			}
			if putErr == nil {
				// Fault landed on journal/compaction machinery: fine,
				// that path must degrade silently.
				return
			}
			if !errors.Is(putErr, f.Err) {
				t.Fatalf("put error %v does not wrap %v", putErr, f.Err)
			}
			// The store still works for the next Put and nothing
			// half-written is served.
			if err := s.Put(keyN(9), payloadN(9)); err != nil {
				t.Fatalf("put after fault: %v", err)
			}
			got, ok, err := s.Get(keyN(9))
			if !ok || err != nil || !bytes.Equal(got, payloadN(9)) {
				t.Fatalf("get after fault: %v %v", ok, err)
			}
		})
	}
}

// TestCrashMidPutLeavesNoEntry crashes the FS during a Put's write:
// after "reboot" (fresh Store, clean FS) the key misses cleanly and the
// orphan temp file is gone.
func TestCrashMidPutLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	clean := mustOpen(t, Options{Dir: dir})
	if err := clean.Put(keyN(0), payloadN(0)); err != nil {
		t.Fatal(err)
	}
	clean.Close()

	fs := faultfs.New(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpWrite, After: 2, Err: syscall.EIO, Torn: true, Crash: true},
	})
	s, err := Open(Options{Dir: dir, FS: fs})
	if err != nil {
		t.Skipf("open died under schedule: %v", err)
	}
	for i := 1; i < 6 && !fs.Crashed(); i++ {
		s.Put(keyN(i), payloadN(i))
	}
	if !fs.Crashed() {
		t.Fatal("schedule never crashed")
	}

	s2 := mustOpen(t, Options{Dir: dir})
	if got, ok, err := s2.Get(keyN(0)); !ok || err != nil || !bytes.Equal(got, payloadN(0)) {
		t.Fatalf("pre-crash entry lost: %v %v", ok, err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if len(de.Name()) > len(tmpPrefix) && de.Name()[:len(tmpPrefix)] == tmpPrefix {
			t.Fatalf("orphan temp file %s survived reopen", de.Name())
		}
	}
	// Whatever committed before the crash must read back valid.
	for i := 1; i < 6; i++ {
		got, ok, err := s2.Get(keyN(i))
		if err != nil {
			t.Fatalf("post-crash entry %d corrupt: %v", i, err)
		}
		if ok && !bytes.Equal(got, payloadN(i)) {
			t.Fatalf("post-crash entry %d has wrong bytes", i)
		}
	}
}

// TestConcurrentPutGet hammers the store from parallel goroutines; run
// under -race in CI.
func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Budget: 20 * (200 + int64(entryOverhead))})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := keyN(i % 25)
				if got, ok, err := s.Get(k); err == nil && ok {
					if !bytes.Equal(got, payloadN(i%25)) {
						t.Errorf("wrong bytes for %d", i%25)
					}
				}
				s.Put(k, payloadN(i%25))
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("corruption under concurrency: %+v", st)
	}
}

// FuzzEntryCorruption is the fuzz form of the corruption matrix: any
// byte-level mutation of a committed entry must produce the original
// payload, a clean miss, or ErrStoreCorrupt - never different bytes.
func FuzzEntryCorruption(f *testing.F) {
	f.Add([]byte("payload"), uint16(3), byte(0xff), false)
	f.Add([]byte{}, uint16(0), byte(1), true)
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint16(299), byte(0x80), true)
	f.Fuzz(func(t *testing.T, payload []byte, pos uint16, flip byte, truncate bool) {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		k := KeyOf(payload)
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, k.String()+entrySuffix)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p := int(pos) % len(data)
		mutated := false
		if truncate {
			data = data[:p]
			mutated = true
		} else if flip != 0 {
			data[p] ^= flip
			mutated = true
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.Get(k)
		if ok {
			if !bytes.Equal(got, payload) {
				t.Fatal("mutated entry served wrong bytes")
			}
			return
		}
		if err != nil && !errors.Is(err, pcerr.ErrStoreCorrupt) {
			t.Fatalf("unexpected error type: %v", err)
		}
		if mutated && err == nil {
			// A truncation to full length or flip of 0 is a no-op;
			// everything else must have been flagged, not silently
			// missed. (A miss without error only happens when the file
			// vanished, which this test never does.)
			t.Fatal("mutated entry neither served nor flagged corrupt")
		}
	})
}

// TestJournalDeletedKeyStaysDeleted pins the readJournal comma-ok
// regression: a key whose 'p' record sits at sequence position 0 and is
// later deleted must not re-enter the recency order - the bare map read
// last[k] returns the zero value 0 for a deleted key, which matches
// position 0 exactly.
func TestJournalDeletedKeyStaysDeleted(t *testing.T) {
	dir := t.TempDir()
	k0, k1 := keyN(0), keyN(1)
	journal := fmt.Sprintf("p %s\np %s\nd %s\n", k0, k1, k0)
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	s := &Store{dir: dir, fs: faultfs.OS()}
	got := s.readJournal()
	if len(got) != 1 || got[0] != k1 {
		t.Fatalf("readJournal resurrected a deleted key: got %d keys %v, want [%s]", len(got), got, k1)
	}
}

// TestJournalDeletedThenReputKey is the positive twin: a delete followed
// by a fresh 'p' is a live key again, at its new (warmer) position.
func TestJournalDeletedThenReputKey(t *testing.T) {
	dir := t.TempDir()
	k0, k1 := keyN(0), keyN(1)
	journal := fmt.Sprintf("p %s\nd %s\np %s\np %s\n", k0, k0, k1, k0)
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	s := &Store{dir: dir, fs: faultfs.OS()}
	got := s.readJournal()
	want := []Key{k1, k0}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("readJournal order = %v, want %v", got, want)
	}
}

// TestTouchRegistrationEvicts pins the shared-directory budget bug: a
// handle that only ever reads entries committed by another writer
// registers them on the Get path (touch), and that registration must
// enforce the byte budget exactly like a Put - otherwise a read-mostly
// handle on a shared directory grows past -store-budget indefinitely.
func TestTouchRegistrationEvicts(t *testing.T) {
	dir := t.TempDir()
	entryBytes := 100 + int64(entryOverhead) // payloadN(0) is 100 bytes
	budget := 3 * (entryBytes + 10)

	reader := mustOpen(t, Options{Dir: dir, Budget: budget})
	writer := mustOpen(t, Options{Dir: dir}) // unbounded: never evicts itself

	const n = 12
	for i := 0; i < n; i++ {
		if err := writer.Put(keyN(100+i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
		// The reader discovers the foreign entry and must stay bounded.
		if _, ok, err := reader.Get(keyN(100 + i)); !ok || err != nil {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
	}
	st := reader.Stats()
	if st.Bytes > budget {
		t.Fatalf("reader blew through the budget: %d resident bytes > %d budget (%d entries)", st.Bytes, budget, st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite %d foreign entries against a %d-byte budget", n, budget)
	}
	// The evicted files must actually be gone from the shared directory.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ents := 0
	for _, de := range des {
		if filepath.Ext(de.Name()) == entrySuffix {
			ents++
		}
	}
	if int64(ents)*entryBytes > budget {
		t.Fatalf("%d entry files on disk exceed the %d-byte budget", ents, budget)
	}
}

// TestTwoWriterTempNamesDoNotCollide pins the tmpSeq collision bug: two
// handles on one directory putting the same keys in the same order used
// to derive identical .tmp-N-<key> names, so the loser of each O_EXCL
// race counted a spurious PutError. With pid+handle mixed in, both
// writers commit cleanly.
func TestTwoWriterTempNamesDoNotCollide(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, Options{Dir: dir})
	b := mustOpen(t, Options{Dir: dir})

	const n = 50
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, s := range []*Store{a, b} {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			<-start
			for i := 0; i < n; i++ {
				s.Put(keyN(200+i), payloadN(i%30))
			}
		}(s)
	}
	close(start)
	wg.Wait()

	if sa, sb := a.Stats(), b.Stats(); sa.PutErrors != 0 || sb.PutErrors != 0 {
		t.Fatalf("spurious put errors from colliding temp names: a=%d b=%d", sa.PutErrors, sb.PutErrors)
	}
	for i := 0; i < n; i++ {
		got, ok, err := a.Get(keyN(200 + i))
		if !ok || err != nil {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, payloadN(i%30)) {
			t.Fatalf("key %d: wrong bytes", i)
		}
	}
}
