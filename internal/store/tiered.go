// Tiered composes the local directory store and the remote service
// client into one Backend: Get checks local first, then the service,
// writing remote hits back into the local tier so a flaky service is
// only ever paid for once per key per shard. Put commits to both. The
// remote tier is strictly best-effort - every one of its failure modes
// is already degraded to a miss or a counted lost commit by Remote, so
// the Tiered contract collapses to the local store's.
package store

import "errors"

// Tiered is a local-then-remote Backend. Either tier may be nil (but
// not both): a nil local is a shard with no cache directory leaning on
// the fleet service alone; a nil remote is just the local store.
type Tiered struct {
	local  *Store
	remote *Remote
}

// NewTiered composes the tiers. Close closes both.
func NewTiered(local *Store, remote *Remote) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Get serves k from the warmest tier that has it. A corrupt local
// entry (already quarantined by the local store) still consults the
// service - its copy was committed independently and may be intact -
// so corruption costs a round trip, not a recomputation, when the
// fleet has the bytes.
func (t *Tiered) Get(k Key) ([]byte, bool, error) {
	var localErr error
	if t.local != nil {
		payload, ok, err := t.local.Get(k)
		if ok {
			return payload, true, nil
		}
		localErr = err
	}
	if t.remote != nil {
		payload, ok, _ := t.remote.Get(k)
		if ok {
			// Write-back: the next Get for k is local. A failed local
			// commit is already counted there and costs nothing here.
			if t.local != nil {
				t.local.Put(k, payload)
			}
			return payload, true, nil
		}
	}
	return nil, false, localErr
}

// Put commits to both tiers. The local commit's error is the caller's
// (it means this shard stays uncached); a lost remote commit is
// absorbed - it only costs the fleet a recomputation elsewhere and is
// visible in RemotePutErrors.
func (t *Tiered) Put(k Key, payload []byte) error {
	var localErr error
	if t.local != nil {
		localErr = t.local.Put(k, payload)
	}
	if t.remote != nil {
		t.remote.Put(k, payload)
	}
	return localErr
}

// Quarantine retires k in both tiers: the local file moves aside, the
// remote key is never asked of the service again this session.
func (t *Tiered) Quarantine(k Key, reason error) error {
	var err error
	if t.local != nil {
		err = t.local.Quarantine(k, reason)
	}
	if t.remote != nil {
		rerr := t.remote.Quarantine(k, reason)
		if err == nil {
			err = rerr
		}
	}
	return err
}

// Stats merges the tiers: Hits counts Gets answered by either tier,
// Misses the Gets neither could answer (remote-tier trouble included -
// each degraded request missed). The resident-set and commit fields
// are the local tier's; the Remote* fields are the service client's.
func (t *Tiered) Stats() Stats {
	var st Stats
	if t.local != nil {
		st = t.local.Stats()
	}
	if t.remote != nil {
		rs := t.remote.Stats()
		st.RemoteHits = rs.RemoteHits
		st.RemoteMisses = rs.RemoteMisses
		st.RemoteErrors = rs.RemoteErrors
		st.RemotePuts = rs.RemotePuts
		st.RemotePutErrors = rs.RemotePutErrors
		st.Hits += rs.RemoteHits
		// Every Get the local tier could not answer went remote, so the
		// whole backend's misses are exactly the remote tier's
		// non-answers (clean misses plus degraded requests).
		st.Misses = rs.RemoteMisses + rs.RemoteErrors
		if t.local == nil {
			st.Puts = rs.RemotePuts
			st.PutErrors = rs.RemotePutErrors
		}
	}
	return st
}

// Close closes both tiers.
func (t *Tiered) Close() error {
	var errs []error
	if t.local != nil {
		errs = append(errs, t.local.Close())
	}
	if t.remote != nil {
		errs = append(errs, t.remote.Close())
	}
	return errors.Join(errs...)
}

// Backend conformance across the family.
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Remote)(nil)
	_ Backend = (*Tiered)(nil)
)
