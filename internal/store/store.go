// Package store is an on-disk, content-addressed result cache with
// crash-safety and corruption tolerance as first-class constraints. It
// maps a 32-byte content key (for the dataset layer: a hash of binary
// fingerprint, architecture range, workload parameters and replay
// format version) to an opaque payload, and guarantees that whatever a
// crash, torn write, flipped bit or full disk does to the directory, a
// read either returns exactly the bytes that were Put or a typed
// pcerr.ErrStoreCorrupt - never silently wrong data.
//
// The discipline:
//
//   - Entries commit via temp file + fsync + atomic rename, never in
//     place; a crash mid-Put leaves only an orphan temp file, removed
//     at the next Open. Committed entries carry a magic/version header
//     and a sha256 trailer over everything before it, so any
//     truncation or bit flip is detected on read.
//
//   - A corrupt entry is quarantined - renamed aside into quarantine/ -
//     the moment it is detected, so it cannot be served twice, and the
//     caller recomputes the cell.
//
//   - The index is a recency journal, advisory only: membership and
//     sizes are always rebuilt from the entry files themselves at Open,
//     so a lost, stale or torn journal costs LRU ordering, never
//     correctness.
//
//   - A byte budget bounds the directory; least-recently-used entries
//     are evicted at Put time (the newest entry is always kept).
//
//   - Every filesystem operation goes through faultfs.FS, so the whole
//     discipline is provable under seeded fault schedules: ENOSPC, EIO,
//     torn writes, rename failures and crash points degrade Puts to
//     errors the caller absorbs, never to wrong Get results.
//
// A Store is safe for concurrent use within one process. Across
// processes, entry files are safe to share (commits are atomic renames
// and reads validate), while the journal may interleave - which the
// scan-rebuild at Open absorbs by design.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"portcc/internal/faultfs"
	"portcc/internal/pcerr"
)

// Key is the 32-byte content address of one entry.
type Key [32]byte

// KeyOf hashes arbitrary key material into a Key.
func KeyOf(material []byte) Key { return Key(sha256.Sum256(material)) }

func (k Key) String() string { return hex.EncodeToString(k[:]) }

const (
	// entryMagic opens every committed entry file.
	entryMagic = "portcc-store\n"
	// entryVersion is the on-disk entry layout version; bump on any
	// incompatible change. Mismatching entries are quarantined like
	// corruption - the caller recomputes and overwrites.
	entryVersion = 1
	// entrySuffix names committed entries; tmpPrefix names uncommitted
	// writes (removed at Open).
	entrySuffix = ".ent"
	tmpPrefix   = ".tmp-"
	// journalName is the advisory recency journal.
	journalName = "index.log"
	// quarantineDir collects corrupt entries for post-mortem.
	quarantineDir = "quarantine"
)

// entryOverhead is the fixed byte cost around a payload: magic, version
// byte, 8-byte payload length, sha256 trailer.
const entryOverhead = len(entryMagic) + 1 + 8 + sha256.Size

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if absent.
	Dir string
	// Budget bounds the directory in approximate bytes (committed
	// entries, headers included); 0 is unbounded. The most recently
	// written entry is always retained.
	Budget int64
	// FS is the filesystem the store runs on; nil means the real OS.
	// Tests inject faultfs schedules here.
	FS faultfs.FS
}

// Backend is the contract every result-store implementation satisfies:
// the single-directory Store, the Remote client of a store service, and
// the Tiered composition of both. Callers above the seam (the dataset
// layer's ResultStore) neither know nor care which one answers.
type Backend interface {
	// Get returns the payload stored under k; (nil, false, nil) is a
	// clean miss, a non-nil error wraps pcerr.ErrStoreCorrupt.
	Get(k Key) ([]byte, bool, error)
	// Put commits payload under k; failures degrade to uncached entries.
	Put(k Key, payload []byte) error
	// Quarantine retires k after owner-level validation rejected bytes
	// the store-level checksum accepted.
	Quarantine(k Key, reason error) error
	// Stats returns the operation ledger.
	Stats() Stats
	// Close releases the backend's resources.
	Close() error
}

// Stats is the store's operation ledger, readable concurrently.
type Stats struct {
	// Hits and Misses count Get outcomes; Corrupt counts entries
	// quarantined (by Get validation or by the owner via Quarantine).
	// For a Tiered backend, Hits counts Gets answered by any tier and
	// Misses the Gets no tier could answer.
	Hits, Misses, Corrupt int64
	// Puts counts committed entries; PutErrors counts Puts that failed
	// (ENOSPC, EIO, rename failure, crash) - degraded, not fatal.
	Puts, PutErrors int64
	// Evictions counts budget-driven removals.
	Evictions int64
	// Entries and Bytes describe the resident set.
	Entries int
	Bytes   int64
	// The Remote* counters describe the remote tier of a Tiered backend
	// (always zero for a plain Store): Gets answered by the service,
	// Gets the service answered with a miss, and requests degraded by
	// transport trouble (dead service, torn frames, slow replies -
	// each one cost a timeout or a reconnect and was absorbed as a
	// miss). RemotePuts counts entries acknowledged by the service and
	// RemotePutErrors the commits it lost.
	RemoteHits, RemoteMisses, RemoteErrors int64
	RemotePuts, RemotePutErrors            int64
}

type entryInfo struct {
	size int64
}

// Store is one open result-store directory.
type Store struct {
	dir    string
	budget int64
	fs     faultfs.FS

	hits, misses, corrupt, puts, putErrors, evictions atomic.Int64

	mu      sync.Mutex
	entries map[Key]entryInfo
	// order is the LRU list, coldest first. Linear scans are fine: the
	// store holds thousands of entries, touched once per simulation
	// batch (milliseconds to minutes of work each).
	order []Key
	bytes int64
	// poisoned marks keys whose quarantine rename AND removal both
	// failed (dead FS): never serve them again this session.
	poisoned map[Key]bool
	// journal is the open recency log; nil when appends are
	// unavailable (degraded mode - Open's scan rebuild covers it).
	journal     faultfs.File
	journalLen  int
	tmpSeq      int
	quarantined int
	// handle distinguishes this Store from every other open handle in
	// this process; with the pid it keeps temp names collision-free
	// across writers sharing one directory.
	handle int64
}

// handleSeq hands every opened Store a process-unique handle id.
var handleSeq atomic.Int64

// Open opens (creating if needed) a store directory: orphan temp files
// from crashed writers are removed, membership and sizes are rebuilt
// from the entry files, and the journal - if present and readable -
// contributes recency ordering for the keys it names. A stale or
// corrupt journal is discarded, never trusted over the scan.
func Open(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	fs := o.FS
	if fs == nil {
		fs = faultfs.OS()
	}
	if err := fs.MkdirAll(filepath.Join(o.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %s: %w", o.Dir, err)
	}
	s := &Store{
		dir:      o.Dir,
		budget:   o.Budget,
		fs:       fs,
		entries:  map[Key]entryInfo{},
		poisoned: map[Key]bool{},
		handle:   handleSeq.Add(1),
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	// The journal is advisory: failing to (re)create it leaves the
	// store fully functional, with recency lost across restarts only.
	s.compactJournal()
	return s, nil
}

// rebuild scans the directory: entry files are authoritative for
// membership and size, the journal only orders the keys it names.
func (s *Store) rebuild() error {
	des, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %s: %w", s.dir, err)
	}
	var present []Key
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// A crashed writer's uncommitted temp file: never renamed,
			// so never trusted - just noise to clear.
			s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		hexKey, ok := strings.CutSuffix(name, entrySuffix)
		if !ok || de.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(hexKey)
		if err != nil || len(raw) != len(Key{}) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		k := Key(raw)
		s.entries[k] = entryInfo{size: info.Size()}
		s.bytes += info.Size()
		present = append(present, k)
	}
	// Recency: journal order first (oldest line = coldest), then keys
	// the journal does not know, warm end, in name order for
	// determinism.
	seen := map[Key]bool{}
	for _, k := range s.readJournal() {
		if _, ok := s.entries[k]; ok && !seen[k] {
			seen[k] = true
			s.order = append(s.order, k)
		}
	}
	sort.Slice(present, func(i, j int) bool {
		return string(present[i][:]) < string(present[j][:])
	})
	for _, k := range present {
		if !seen[k] {
			s.order = append(s.order, k)
		}
	}
	return nil
}

// readJournal returns the journal's key sequence with each key at its
// last (warmest) position. Unreadable or malformed journals contribute
// what they can and are otherwise ignored.
func (s *Store) readJournal() []Key {
	f, err := s.fs.OpenFile(filepath.Join(s.dir, journalName), os.O_RDONLY, 0)
	if err != nil {
		return nil
	}
	defer f.Close()
	last := map[Key]int{}
	var seq []Key
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if len(line) < 2 || line[1] != ' ' {
			continue
		}
		raw, err := hex.DecodeString(line[2:])
		if err != nil || len(raw) != len(Key{}) {
			continue
		}
		k := Key(raw)
		switch line[0] {
		case 'p', 't':
			last[k] = len(seq)
			seq = append(seq, k)
		case 'd':
			delete(last, k)
		}
	}
	out := make([]Key, 0, len(last))
	for i, k := range seq {
		// Comma-ok: a deleted key must stay deleted. A bare last[k]
		// yields the zero value for it, which a 'p' at sequence
		// position 0 matches, resurrecting the key.
		if j, ok := last[k]; ok && j == i {
			out = append(out, k)
		}
	}
	return out
}

// compactJournal rewrites the journal as one "p" line per entry in LRU
// order (temp + rename, like entries) and reopens it for appending.
// Any failure leaves the store journalless but fully functional.
// Called with s.mu held or before the store is shared.
func (s *Store) compactJournal() {
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	path := filepath.Join(s.dir, journalName)
	tmp := path + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	for _, k := range s.order {
		fmt.Fprintf(w, "p %s\n", k)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		s.fs.Remove(tmp)
		return
	}
	j, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	s.journal = j
	s.journalLen = len(s.order)
}

// logf appends one journal record, degrading to journalless mode on
// failure and compacting when the log outgrows its entry set. Called
// with s.mu held.
func (s *Store) logf(op byte, k Key) {
	if s.journal == nil {
		return
	}
	if _, err := fmt.Fprintf(s.journal, "%c %s\n", op, k); err != nil {
		s.journal.Close()
		s.journal = nil
		return
	}
	s.journalLen++
	if s.journalLen > 64 && s.journalLen > 8*len(s.entries) {
		s.compactJournal()
	}
}

func (s *Store) entryPath(k Key) string {
	return filepath.Join(s.dir, k.String()+entrySuffix)
}

// Get returns the payload stored under k. A miss returns (nil, false,
// nil). A corrupt, truncated, version-mismatched or unreadable entry is
// quarantined and returns a non-nil error wrapping
// pcerr.ErrStoreCorrupt - the caller recomputes either way; the error
// distinguishes "never had it" from "had it and it rotted".
func (s *Store) Get(k Key) ([]byte, bool, error) {
	s.mu.Lock()
	if s.poisoned[k] {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false, nil
	}
	s.mu.Unlock()

	f, err := s.fs.OpenFile(s.entryPath(k), os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			s.forget(k)
			return nil, false, nil
		}
		// An open that fails for any other reason (EIO, dead FS) cannot
		// prove the entry bad, but cannot serve it either: count a miss
		// and leave the file alone.
		s.misses.Add(1)
		return nil, false, nil
	}
	data, rerr := io.ReadAll(f)
	f.Close()
	if rerr != nil {
		// A read error mid-entry: the bytes cannot be trusted, the
		// device cannot be trusted - quarantine and recompute.
		return nil, false, s.quarantine(k, fmt.Errorf("read: %w", rerr))
	}
	payload, verr := validateEntry(data)
	if verr != nil {
		return nil, false, s.quarantine(k, verr)
	}
	s.hits.Add(1)
	s.touch(k, int64(len(data)))
	return payload, true, nil
}

// validateEntry checks the committed layout - magic, version, length,
// sha256 trailer - and returns the payload.
func validateEntry(data []byte) ([]byte, error) {
	if len(data) < entryOverhead {
		return nil, fmt.Errorf("truncated: %d bytes", len(data))
	}
	if string(data[:len(entryMagic)]) != entryMagic {
		return nil, fmt.Errorf("bad magic")
	}
	if v := data[len(entryMagic)]; v != entryVersion {
		return nil, fmt.Errorf("entry version %d, want %d", v, entryVersion)
	}
	szOff := len(entryMagic) + 1
	plen := binary.LittleEndian.Uint64(data[szOff : szOff+8])
	body := data[: len(data)-sha256.Size : len(data)-sha256.Size]
	if uint64(len(body)-szOff-8) != plen {
		return nil, fmt.Errorf("payload length %d, header says %d", len(body)-szOff-8, plen)
	}
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(data[len(body):]) {
		return nil, fmt.Errorf("sha256 mismatch")
	}
	return body[szOff+8:], nil
}

// Put commits payload under k: temp file, fsync, atomic rename,
// directory sync. Failures (ENOSPC, EIO, crash, rename refusal) remove
// the temp file best-effort and return the error - the entry is simply
// not cached; nothing half-written is ever visible under the final
// name. Re-putting an existing key is a cheap no-op (content-addressed:
// same key, same bytes).
func (s *Store) Put(k Key, payload []byte) error {
	s.mu.Lock()
	if _, ok := s.entries[k]; ok {
		s.mu.Unlock()
		return nil
	}
	s.tmpSeq++
	// The temp name carries pid and handle id besides the sequence
	// number: two writers sharing the directory (other processes, or
	// two handles in this one) must never collide on the same O_EXCL
	// open, or the loser counts a spurious PutError for an entry the
	// winner is committing anyway.
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s%d-%d-%d-%s", tmpPrefix, os.Getpid(), s.handle, s.tmpSeq, k.String()[:16]))
	delete(s.poisoned, k) // a fresh commit supersedes a poisoned past
	s.mu.Unlock()

	if err := s.writeEntry(tmp, payload); err != nil {
		s.fs.Remove(tmp)
		s.putErrors.Add(1)
		return fmt.Errorf("store: put %s: %w", k.String()[:12], err)
	}
	if err := s.fs.Rename(tmp, s.entryPath(k)); err != nil {
		s.fs.Remove(tmp)
		s.putErrors.Add(1)
		return fmt.Errorf("store: put %s: rename: %w", k.String()[:12], err)
	}
	// The rename is the commit point; the directory sync only moves the
	// durability point. If it fails the entry is still valid now and
	// either survives the crash or vanishes - both safe.
	s.fs.SyncDir(s.dir)
	s.puts.Add(1)

	size := int64(len(payload) + entryOverhead)
	s.mu.Lock()
	if _, ok := s.entries[k]; !ok {
		s.entries[k] = entryInfo{size: size}
		s.bytes += size
		s.order = append(s.order, k)
		s.logf('p', k)
	}
	evict := s.collectEvictions()
	s.mu.Unlock()
	for _, old := range evict {
		s.fs.Remove(s.entryPath(old))
	}
	return nil
}

// writeEntry writes the committed layout to path with an fsync before
// close, so the rename that follows never publishes unwritten bytes.
func (s *Store) writeEntry(path string, payload []byte) error {
	f, err := s.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [len(entryMagic) + 1 + 8]byte
	copy(hdr[:], entryMagic)
	hdr[len(entryMagic)] = entryVersion
	binary.LittleEndian.PutUint64(hdr[len(entryMagic)+1:], uint64(len(payload)))
	h := sha256.New()
	h.Write(hdr[:])
	h.Write(payload)
	for _, b := range [][]byte{hdr[:], payload, h.Sum(nil)} {
		if _, err := f.Write(b); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// collectEvictions drops LRU index entries beyond the byte budget
// (always keeping the newest) and returns the keys whose files the
// caller must remove outside the lock. Called with s.mu held.
func (s *Store) collectEvictions() []Key {
	if s.budget <= 0 {
		return nil
	}
	var out []Key
	for s.bytes > s.budget && len(s.order) > 1 {
		old := s.order[0]
		s.order = s.order[1:]
		s.bytes -= s.entries[old].size
		delete(s.entries, old)
		s.logf('d', old)
		s.evictions.Add(1)
		out = append(out, old)
	}
	return out
}

// touch refreshes k's recency (registering it if the index did not know
// it - another process may have committed it). Registration grows the
// resident set, so it enforces the byte budget exactly like Put does:
// without that, a handle that only ever reads a shared directory would
// grow past -store-budget indefinitely between its own Puts. Called
// without s.mu.
func (s *Store) touch(k Key, size int64) {
	s.mu.Lock()
	if _, ok := s.entries[k]; !ok {
		s.entries[k] = entryInfo{size: size}
		s.bytes += size
	}
	moved := false
	for i, ok := range s.order {
		if ok == k {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = k
			moved = true
			break
		}
	}
	if !moved {
		s.order = append(s.order, k)
	}
	s.logf('t', k)
	evict := s.collectEvictions()
	s.mu.Unlock()
	for _, old := range evict {
		s.fs.Remove(s.entryPath(old))
	}
}

// forget drops k from the index (its file is gone). Called without s.mu.
func (s *Store) forget(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.entries[k]
	if !ok {
		return
	}
	delete(s.entries, k)
	s.bytes -= info.size
	for i, ok := range s.order {
		if ok == k {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.logf('d', k)
}

// Quarantine moves k's entry aside as corrupt - used by owners whose
// payload-level validation failed on bytes the store-level checksum
// accepted (a content-key collision or codec bug; recompute wins).
func (s *Store) Quarantine(k Key, reason error) error {
	return s.quarantine(k, reason)
}

// quarantine renames the entry into quarantine/ (falling back to
// removal, falling back to an in-memory poison mark when the FS refuses
// both), drops it from the index, and returns the typed corruption
// error. The quarantined copy keeps the bad bytes for post-mortem.
func (s *Store) quarantine(k Key, reason error) error {
	s.corrupt.Add(1)
	s.mu.Lock()
	s.quarantined++
	dst := filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d.bad", k.String()[:16], s.quarantined))
	s.mu.Unlock()
	if err := s.fs.Rename(s.entryPath(k), dst); err != nil {
		if err := s.fs.Remove(s.entryPath(k)); err != nil {
			// The file can neither move nor die (dead FS, read-only
			// mount): remember never to serve it again.
			s.mu.Lock()
			s.poisoned[k] = true
			s.mu.Unlock()
		}
	}
	s.forget(k)
	return fmt.Errorf("store: entry %s: %w: %v", k.String()[:12], pcerr.ErrStoreCorrupt, reason)
}

// Stats returns the operation counters and resident-set size.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
		Evictions: s.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// Close compacts and closes the journal. Entries need no flushing -
// every Put committed before returning.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactJournal()
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}
