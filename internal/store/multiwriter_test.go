// The multi-writer suite: the package doc promises that entry files are
// safe to share across processes (commits are atomic renames, reads
// validate) while the journal may interleave, absorbed by the
// scan-rebuild at Open. These tests drive two open handles on one
// directory - the in-process stand-in for two portccd daemons sharing a
// cache mount - through interleaved Put/Get/evict/quarantine traffic
// and assert membership correctness after reopen.
package store

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// present returns the key set a fresh handle would rebuild from the
// directory's entry files.
func present(t *testing.T, dir string) map[Key]bool {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[Key]bool{}
	for _, de := range des {
		name, ok := strings.CutSuffix(de.Name(), entrySuffix)
		if !ok || de.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(name)
		if err != nil || len(raw) != len(Key{}) {
			// Not key-shaped; skip like rebuild does.
			continue
		}
		out[Key(raw)] = true
	}
	return out
}

// TestMultiWriterMembershipAfterReopen interleaves two writers over one
// directory, then reopens with a third handle and asserts its index
// matches the entry files exactly: every committed key readable with
// the right bytes, nothing phantom, nothing lost.
func TestMultiWriterMembershipAfterReopen(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, Options{Dir: dir})
	b := mustOpen(t, Options{Dir: dir})

	const n = 30
	var wg sync.WaitGroup
	for w, s := range []*Store{a, b} {
		wg.Add(1)
		go func(w int, s *Store) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < n; i++ {
				k := i
				if w == 1 {
					k = n - 1 - i // opposite order: maximal interleave
				}
				s.Put(keyN(k), payloadN(k%40))
				if g := rng.Intn(n); true {
					if got, ok, err := s.Get(keyN(g)); ok && err == nil && !bytes.Equal(got, payloadN(g%40)) {
						t.Errorf("writer %d: key %d served wrong bytes", w, g)
					}
				}
			}
		}(w, s)
	}
	wg.Wait()
	a.Close()
	b.Close()

	c := mustOpen(t, Options{Dir: dir})
	st := c.Stats()
	if st.Entries != n {
		t.Fatalf("reopen found %d entries, want %d", st.Entries, n)
	}
	for i := 0; i < n; i++ {
		got, ok, err := c.Get(keyN(i))
		if !ok || err != nil {
			t.Fatalf("key %d after reopen: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, payloadN(i%40)) {
			t.Fatalf("key %d after reopen: wrong bytes", i)
		}
	}
}

// TestMultiWriterEvictQuarantineInterleave mixes the destructive paths:
// one budgeted handle evicting while the other quarantines corrupted
// entries and keeps writing. Every surviving entry file must be
// readable with exact bytes from both handles and from a fresh reopen;
// a key one handle evicted or quarantined is a clean miss on the other.
func TestMultiWriterEvictQuarantineInterleave(t *testing.T) {
	dir := t.TempDir()
	entryBytes := 100 + int64(entryOverhead)
	a := mustOpen(t, Options{Dir: dir, Budget: 8 * entryBytes})
	b := mustOpen(t, Options{Dir: dir})

	const n = 40
	for i := 0; i < n; i++ {
		s := a
		if i%2 == 1 {
			s = b
		}
		if err := s.Put(keyN(i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
		// Every fourth entry committed by b is corrupted on disk and
		// then read through a, exercising cross-handle quarantine.
		if i%4 == 3 {
			path := filepath.Join(dir, keyN(i).String()+entrySuffix)
			if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := a.Get(keyN(i)); ok {
				t.Fatalf("corrupted key %d served: err=%v", i, err)
			}
		}
	}

	// Both live handles and a fresh reopen agree with the directory.
	for name, s := range map[string]*Store{"a": a, "b": b, "fresh": mustOpen(t, Options{Dir: dir})} {
		disk := present(t, dir)
		for i := 0; i < n; i++ {
			got, ok, err := s.Get(keyN(i))
			if err != nil {
				t.Fatalf("%s: key %d: unexpected error %v", name, i, err)
			}
			if ok && !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100)) {
				t.Fatalf("%s: key %d: wrong bytes", name, i)
			}
			if ok && !disk[keyN(i)] {
				t.Fatalf("%s: key %d served but absent from the directory", name, i)
			}
		}
	}
	if st := a.Stats(); st.Evictions == 0 {
		t.Fatalf("budgeted handle never evicted: %+v", st)
	}
	if st := a.Stats(); st.Corrupt == 0 {
		t.Fatalf("cross-handle corruption never quarantined: %+v", st)
	}
}

// TestMultiWriterJournalInterleave has both handles append to the one
// shared index.log (puts and touches interleaving at the byte level),
// then reopens and asserts the journal damage costs recency only:
// membership and bytes always rebuild from the entry files.
func TestMultiWriterJournalInterleave(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, Options{Dir: dir})
	b := mustOpen(t, Options{Dir: dir})

	const n = 24
	var wg sync.WaitGroup
	for w, s := range []*Store{a, b} {
		wg.Add(1)
		go func(w int, s *Store) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s.Put(keyN(1000+w*n+i), payloadN(i%20))
				s.Get(keyN(1000 + i)) // touches journal 't' records
			}
		}(w, s)
	}
	wg.Wait()
	// Close without compacting cleanly in sequence: a then b, so b's
	// compaction rewrites the journal from its own (partial) view -
	// exactly the interleave the scan-rebuild must absorb.
	a.Close()
	b.Close()

	c := mustOpen(t, Options{Dir: dir})
	defer c.Close()
	if st := c.Stats(); st.Entries != 2*n {
		t.Fatalf("reopen after journal interleave: %d entries, want %d", st.Entries, 2*n)
	}
	for w := 0; w < 2; w++ {
		for i := 0; i < n; i++ {
			got, ok, err := c.Get(keyN(1000 + w*n + i))
			if !ok || err != nil {
				t.Fatalf("key %d/%d: ok=%v err=%v", w, i, ok, err)
			}
			if !bytes.Equal(got, payloadN(i%20)) {
				t.Fatalf("key %d/%d: wrong bytes", w, i)
			}
		}
	}
}

// TestMultiWriterConcurrentChurn is the load test: two handles, one
// budgeted, hammering overlapping key ranges with Put/Get churn from
// several goroutines each. The invariant is the store's core promise -
// any successful Get returns exactly the bytes of that key's Put, and
// nothing ends corrupt.
func TestMultiWriterConcurrentChurn(t *testing.T) {
	dir := t.TempDir()
	entryBytes := 130 + int64(entryOverhead)
	a := mustOpen(t, Options{Dir: dir, Budget: 15 * entryBytes})
	b := mustOpen(t, Options{Dir: dir, Budget: 15 * entryBytes})

	var wg sync.WaitGroup
	for w, s := range []*Store{a, b} {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(w, g int, s *Store) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w*10 + g)))
				for i := 0; i < 60; i++ {
					k := rng.Intn(30)
					if rng.Intn(2) == 0 {
						s.Put(keyN(k), payloadN(k))
					} else if got, ok, err := s.Get(keyN(k)); ok && err == nil && !bytes.Equal(got, payloadN(k)) {
						t.Errorf("writer %d/%d: key %d served wrong bytes", w, g, k)
					}
				}
			}(w, g, s)
		}
	}
	wg.Wait()
	for name, s := range map[string]*Store{"a": a, "b": b} {
		if st := s.Stats(); st.Corrupt != 0 {
			t.Fatalf("%s: corruption under multi-writer churn: %+v", name, st)
		}
	}
	a.Close()
	b.Close()
	c := mustOpen(t, Options{Dir: dir})
	disk := present(t, dir)
	if st := c.Stats(); st.Entries != len(disk) {
		t.Fatalf("reopen index %d entries, directory holds %d", st.Entries, len(disk))
	}
	for k := range disk {
		if _, ok, err := c.Get(k); !ok || err != nil {
			t.Fatalf("surviving entry %s: ok=%v err=%v", k, ok, err)
		}
	}
}
