// The client side of the shared result store: Remote speaks the
// StoreGet/StorePut protocol to one store service and degrades every
// kind of transport trouble to a cache miss. The contract mirrors the
// on-disk store's: a Get either returns exactly the bytes the service
// holds or reports a miss - a dead service, a torn frame, a slow reply
// or a version-mismatched peer must never stall a fleet shard or
// corrupt a dataset, only cost it a recomputation.
//
// The discipline:
//
//   - One pipelined connection, lazily dialled. Requests carry IDs;
//     replies correlate through a pending table, so a shard's batched
//     lookups overlap on the wire.
//
//   - Every request is deadline-bounded. A reply slower than the
//     request timeout kills the connection (it is wedged or the link
//     is unusable) and the request degrades to a miss.
//
//   - A dead connection opens a backoff window; Gets and Puts inside
//     the window fast-miss without touching the network, so a killed
//     service costs each shard at most one timeout before the fleet
//     degrades to local tiers at full speed.
//
//   - A version-mismatched service (wire proto or dataset format) is
//     permanent: no redials, every request fast-misses, the typed
//     reason is kept for the shard's logs.
//
//   - Quarantine is client-side: a key whose payload failed owner-level
//     validation is never asked of this service again this session.
package store

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"portcc/internal/pcerr"
	"portcc/internal/wire"
)

// RemoteOptions configures a store-service client.
type RemoteOptions struct {
	// Addr is the service's TCP address (host:port).
	Addr string
	// Format is the application schema version for the handshake; it
	// must match the service's or the client stops permanently.
	Format int
	// DialTimeout bounds connect + handshake (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds one Get or Put round trip (default 2s); a
	// slower reply kills the connection and degrades to a miss.
	RequestTimeout time.Duration
	// RedialBackoff is the initial fast-miss window after a dead
	// connection or failed dial (default 250ms), doubling per
	// consecutive failure up to 8x.
	RedialBackoff time.Duration
}

func (o *RemoteOptions) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return 2 * time.Second
}

func (o *RemoteOptions) requestTimeout() time.Duration {
	if o.RequestTimeout > 0 {
		return o.RequestTimeout
	}
	return 2 * time.Second
}

func (o *RemoteOptions) redialBackoff() time.Duration {
	if o.RedialBackoff > 0 {
		return o.RedialBackoff
	}
	return 250 * time.Millisecond
}

var (
	errStoreBackoff = errors.New("store: remote backing off")
	errStoreClosed  = errors.New("store: remote closed")
	errStoreConn    = errors.New("store: remote connection died")
	errStoreTimeout = errors.New("store: remote reply timed out")
)

// Remote is a store-service client satisfying Backend. Safe for
// concurrent use; the zero value is not usable - construct with
// NewRemote.
type Remote struct {
	o  RemoteOptions
	id atomic.Uint64

	hits, misses, errs atomic.Int64
	puts, putErrs      atomic.Int64
	dials, dialFails   atomic.Int64

	mu        sync.Mutex
	cur       *remoteConn
	nextDial  time.Time
	backoff   time.Duration
	permanent error
	closed    bool
	poisoned  map[Key]bool
}

// remoteConn is one live connection's reply-correlation state.
type remoteConn struct {
	nc    net.Conn
	wc    *wire.Conn
	grace time.Duration

	mu      sync.Mutex
	dead    bool
	pending map[uint64]chan *wire.StoreReply
}

// NewRemote returns a client for the service at o.Addr. The connection
// is dialled lazily on first use; construction never touches the
// network, so a shard starts instantly with the service down and picks
// it up when it appears.
func NewRemote(o RemoteOptions) *Remote {
	return &Remote{o: o, poisoned: map[Key]bool{}}
}

// heartbeatGrace is how long a quiet connection may stay silent before
// the reader declares it dead: a few missed beats, clamped sane.
func heartbeatGrace(hb time.Duration) time.Duration {
	g := 4 * hb
	if g < time.Second {
		g = time.Second
	}
	if g > 30*time.Second {
		g = 30 * time.Second
	}
	return g
}

// ensure returns the live connection, dialling if allowed. Inside a
// backoff window, after a version mismatch, or after Close it fails
// fast without touching the network.
func (r *Remote) ensure() (*remoteConn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errStoreClosed
	}
	if r.permanent != nil {
		return nil, r.permanent
	}
	if r.cur != nil {
		return r.cur, nil
	}
	if time.Now().Before(r.nextDial) {
		return nil, errStoreBackoff
	}
	rc, err := r.dial()
	if err != nil {
		r.dialFails.Add(1)
		if errors.Is(err, pcerr.ErrWireVersion) || errors.Is(err, pcerr.ErrDatasetVersion) {
			// The peer is a different build: redialling cannot help.
			r.permanent = err
			return nil, err
		}
		if r.backoff < r.o.redialBackoff() {
			r.backoff = r.o.redialBackoff()
		} else if r.backoff *= 2; r.backoff > 8*r.o.redialBackoff() {
			r.backoff = 8 * r.o.redialBackoff()
		}
		r.nextDial = time.Now().Add(r.backoff)
		return nil, err
	}
	r.backoff = 0
	r.cur = rc
	go r.reader(rc)
	return rc, nil
}

// dial connects and handshakes under one deadline. Called with r.mu
// held (concurrent requests wait rather than racing duplicate dials).
func (r *Remote) dial() (*remoteConn, error) {
	r.dials.Add(1)
	nc, err := net.DialTimeout("tcp", r.o.Addr, r.o.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("store: dial %s: %w", r.o.Addr, err)
	}
	nc.SetDeadline(time.Now().Add(r.o.dialTimeout()))
	wc := wire.NewConn(nc)
	hb, err := wc.ClientHello(r.o.Format)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("store: %s: handshake: %w", r.o.Addr, err)
	}
	nc.SetDeadline(time.Time{})
	return &remoteConn{
		nc:      nc,
		wc:      wc,
		grace:   heartbeatGrace(hb),
		pending: map[uint64]chan *wire.StoreReply{},
	}, nil
}

// reader is the connection's single receive loop: heartbeats reset the
// silence deadline, replies resolve pending requests, anything else -
// including the deadline itself - declares the connection dead.
func (r *Remote) reader(rc *remoteConn) {
	defer r.drop(rc)
	for {
		rc.nc.SetReadDeadline(time.Now().Add(rc.grace))
		f, err := rc.wc.Recv()
		if err != nil {
			return
		}
		switch {
		case f.Heartbeat:
		case f.StoreReply != nil:
			rc.deliver(f.StoreReply)
		default:
			return
		}
	}
}

// deliver hands one reply to its waiting request, dropping replies
// whose request already timed out.
func (rc *remoteConn) deliver(reply *wire.StoreReply) {
	rc.mu.Lock()
	ch := rc.pending[reply.ID]
	delete(rc.pending, reply.ID)
	rc.mu.Unlock()
	if ch != nil {
		ch <- reply
	}
}

// drop tears a connection down: fail every pending request, close the
// socket, clear the client's current-connection slot and open the
// backoff window. Idempotent - the reader, a timed-out request and
// Close may all race here.
func (r *Remote) drop(rc *remoteConn) {
	rc.mu.Lock()
	already := rc.dead
	rc.dead = true
	pending := rc.pending
	rc.pending = nil
	rc.mu.Unlock()
	if already {
		return
	}
	for _, ch := range pending {
		close(ch)
	}
	rc.nc.Close()
	r.mu.Lock()
	if r.cur == rc {
		r.cur = nil
		if r.backoff == 0 {
			r.backoff = r.o.redialBackoff()
		}
		r.nextDial = time.Now().Add(r.backoff)
	}
	r.mu.Unlock()
}

// request sends one frame and awaits its correlated reply, bounded by
// the request timeout. Timeout or connection death degrade to an error
// the callers absorb as a miss.
func (r *Remote) request(rc *remoteConn, id uint64, f *wire.Frame) (*wire.StoreReply, error) {
	ch := make(chan *wire.StoreReply, 1)
	rc.mu.Lock()
	if rc.dead {
		rc.mu.Unlock()
		return nil, errStoreConn
	}
	rc.pending[id] = ch
	rc.mu.Unlock()
	if err := rc.wc.Send(f); err != nil {
		r.drop(rc)
		return nil, fmt.Errorf("store: %s: send: %w", r.o.Addr, err)
	}
	t := time.NewTimer(r.o.requestTimeout())
	defer t.Stop()
	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, errStoreConn
		}
		return reply, nil
	case <-t.C:
		// A reply this slow means a wedged service or an unusable
		// link: kill the connection so every queued request fails fast
		// and the fleet degrades to local tiers instead of crawling.
		r.drop(rc)
		return nil, errStoreTimeout
	}
}

// Get asks the service for k. Every failure mode - backoff window,
// dead connection, torn frame, slow reply, service-side corruption -
// returns a clean miss; only the counters tell them apart.
func (r *Remote) Get(k Key) ([]byte, bool, error) {
	r.mu.Lock()
	poisoned := r.poisoned[k]
	r.mu.Unlock()
	if poisoned {
		r.misses.Add(1)
		return nil, false, nil
	}
	rc, err := r.ensure()
	if err != nil {
		r.errs.Add(1)
		return nil, false, nil
	}
	id := r.id.Add(1)
	reply, err := r.request(rc, id, &wire.Frame{StoreGet: &wire.StoreGet{ID: id, Key: [32]byte(k)}})
	if err != nil {
		r.errs.Add(1)
		return nil, false, nil
	}
	switch {
	case reply.Err != "":
		r.errs.Add(1)
		return nil, false, nil
	case !reply.Found:
		r.misses.Add(1)
		return nil, false, nil
	}
	r.hits.Add(1)
	return reply.Payload, true, nil
}

// Put offers k to the service and waits for the acknowledgement (a
// later fleet shard's Get must be able to trust a returned Put). A
// lost commit returns an error the caller absorbs - the entry is
// simply not shared.
func (r *Remote) Put(k Key, payload []byte) error {
	rc, err := r.ensure()
	if err != nil {
		r.putErrs.Add(1)
		return fmt.Errorf("store: remote put %s: %w", k.String()[:12], err)
	}
	id := r.id.Add(1)
	reply, err := r.request(rc, id, &wire.Frame{StorePut: &wire.StorePut{ID: id, Key: [32]byte(k), Payload: payload}})
	if err != nil {
		r.putErrs.Add(1)
		return fmt.Errorf("store: remote put %s: %w", k.String()[:12], err)
	}
	if reply.Err != "" || !reply.Found {
		r.putErrs.Add(1)
		return fmt.Errorf("store: remote put %s: service: %s", k.String()[:12], reply.Err)
	}
	r.puts.Add(1)
	return nil
}

// Quarantine retires k client-side: the service's copy failed
// owner-level validation, so this session never asks for it again.
// (The service quarantines its own copy when its disk read rots; a
// content-key collision or codec bug is indistinguishable from that
// here, and recompute wins either way.)
func (r *Remote) Quarantine(k Key, reason error) error {
	r.mu.Lock()
	r.poisoned[k] = true
	r.mu.Unlock()
	return fmt.Errorf("store: remote entry %s: %w: %v", k.String()[:12], pcerr.ErrStoreCorrupt, reason)
}

// Stats returns the client-side ledger. The top-level Hits/Misses
// mirror the Remote* detail so a Remote used directly as a Backend
// reports like any other.
func (r *Remote) Stats() Stats {
	hits, misses, errs := r.hits.Load(), r.misses.Load(), r.errs.Load()
	puts, putErrs := r.puts.Load(), r.putErrs.Load()
	return Stats{
		Hits:            hits,
		Misses:          misses + errs,
		Puts:            puts,
		PutErrors:       putErrs,
		RemoteHits:      hits,
		RemoteMisses:    misses,
		RemoteErrors:    errs,
		RemotePuts:      puts,
		RemotePutErrors: putErrs,
	}
}

// Close hangs up and stops all future dials. Requests in flight
// degrade to misses.
func (r *Remote) Close() error {
	r.mu.Lock()
	r.closed = true
	rc := r.cur
	r.cur = nil
	r.mu.Unlock()
	if rc != nil {
		r.drop(rc)
	}
	return nil
}
