// Chaos suite for the shared store service: every transport failure
// mode - dead service, torn frames, slow replies, version skew - must
// degrade remote lookups to clean misses, bounded in time, with the
// tiered client falling back to its local directory. Nothing here may
// stall and nothing may return wrong bytes.
package store

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"portcc/internal/faultnet"
)

// testService runs one Service on a loopback listener for a test.
type testService struct {
	sv       *Service
	addr     string
	cancel   context.CancelFunc
	done     chan error
	stopOnce sync.Once
}

// startServiceLn serves b on ln until the test ends or stop is called.
func startServiceLn(t *testing.T, b Backend, cfg ServiceConfig, ln net.Listener) *testService {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ts := &testService{
		sv:     NewService(b, cfg),
		addr:   ln.Addr().String(),
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() { ts.done <- ts.sv.Serve(ctx, ln) }()
	t.Cleanup(ts.stop)
	return ts
}

func startService(t *testing.T, b Backend, cfg ServiceConfig) *testService {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return startServiceLn(t, b, cfg, ln)
}

// stop hard-stops the service and waits for Serve to return. Safe to
// call twice (tests stop explicitly, Cleanup stops again).
func (ts *testService) stop() {
	ts.stopOnce.Do(func() {
		ts.cancel()
		select {
		case <-ts.done:
		case <-time.After(5 * time.Second):
		}
	})
}

// fastOpts are client timeouts tuned so a whole degradation cycle fits
// inside a test: everything bounded well under a second.
func fastOpts(addr string, format int) RemoteOptions {
	return RemoteOptions{
		Addr:           addr,
		Format:         format,
		DialTimeout:    500 * time.Millisecond,
		RequestTimeout: 500 * time.Millisecond,
		RedialBackoff:  50 * time.Millisecond,
	}
}

// TestServiceGetPutRoundTrip: the basic fleet exchange - one shard
// Puts, another Gets the exact bytes; unknown keys miss cleanly; both
// sides' ledgers agree.
func TestServiceGetPutRoundTrip(t *testing.T) {
	ts := startService(t, mustOpen(t, Options{Dir: t.TempDir()}), ServiceConfig{Format: 7})

	a := NewRemote(fastOpts(ts.addr, 7))
	defer a.Close()
	b := NewRemote(fastOpts(ts.addr, 7))
	defer b.Close()

	if _, ok, err := a.Get(keyN(1)); ok || err != nil {
		t.Fatalf("empty service get: ok=%v err=%v", ok, err)
	}
	if err := a.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	for name, c := range map[string]*Remote{"same": a, "other": b} {
		got, ok, err := c.Get(keyN(1))
		if !ok || err != nil {
			t.Fatalf("%s client get: ok=%v err=%v", name, ok, err)
		}
		if !bytes.Equal(got, payloadN(1)) {
			t.Fatalf("%s client: wrong bytes", name)
		}
	}
	if st := a.Stats(); st.RemoteHits != 1 || st.RemoteMisses != 1 || st.RemotePuts != 1 || st.RemoteErrors != 0 {
		t.Errorf("client ledger: %+v", st)
	}
	if st := ts.sv.Stats(); st.Gets != 3 || st.Hits != 2 || st.Misses != 1 || st.Puts != 1 || st.Conns != 2 {
		t.Errorf("service ledger: %+v", st)
	}
}

// TestServiceVersionMismatch: a shard built against another dataset
// schema is refused in the handshake, degrades every lookup to a miss,
// and never dials again - version skew is permanent, not a retry loop.
func TestServiceVersionMismatch(t *testing.T) {
	ts := startService(t, mustOpen(t, Options{Dir: t.TempDir()}), ServiceConfig{Format: 7})

	r := NewRemote(fastOpts(ts.addr, 8))
	defer r.Close()
	for i := 0; i < 5; i++ {
		if _, ok, err := r.Get(keyN(i)); ok || err != nil {
			t.Fatalf("mismatched get %d: ok=%v err=%v", i, ok, err)
		}
	}
	if got := r.dials.Load(); got != 1 {
		t.Errorf("mismatched client dialled %d times, want exactly 1", got)
	}
	if st := r.Stats(); st.RemoteErrors != 5 {
		t.Errorf("want 5 degraded requests, got %+v", st)
	}
}

// TestRemoteServiceDownFastMiss: with nothing listening, lookups must
// degrade to misses at fast-miss speed - one refused dial opens the
// backoff window and the rest never touch the network.
func TestRemoteServiceDownFastMiss(t *testing.T) {
	// A listener bound and closed: the port is real but refuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	r := NewRemote(fastOpts(addr, 7))
	defer r.Close()
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, ok, _ := r.Get(keyN(i)); ok {
			t.Fatal("hit against a dead service")
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("20 degraded gets took %v - the dead service is stalling the shard", elapsed)
	}
	if dials := r.dials.Load(); dials > 3 {
		t.Errorf("dead service dialled %d times in one burst, want backoff", dials)
	}
	if st := r.Stats(); st.RemoteErrors != 20 {
		t.Errorf("want 20 degraded requests, got %+v", st)
	}
}

// TestRemoteReconnectsAfterRestart: a SIGKILLed service costs misses
// while it is down, and a restarted one is picked up through the
// backoff redial - no client restart, no stall, and the shared entries
// serve again.
func TestRemoteReconnectsAfterRestart(t *testing.T) {
	dir := t.TempDir()
	ts := startService(t, mustOpen(t, Options{Dir: dir}), ServiceConfig{Format: 7})
	addr := ts.addr

	r := NewRemote(fastOpts(addr, 7))
	defer r.Close()
	if err := r.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}

	ts.stop() // the kill: connection dies, nothing listens

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, _ := r.Get(keyN(1)); !ok {
			break // degraded to a miss
		}
		if time.Now().After(deadline) {
			t.Fatal("client kept hitting a killed service")
		}
	}

	// Restart on the same address (a supervisor restart).
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	startServiceLn(t, mustOpen(t, Options{Dir: dir}), ServiceConfig{Format: 7}, ln)

	deadline = time.Now().Add(5 * time.Second)
	for {
		got, ok, err := r.Get(keyN(1))
		if ok {
			if err != nil || !bytes.Equal(got, payloadN(1)) {
				t.Fatalf("reconnected get: err=%v, wrong bytes=%v", err, !bytes.Equal(got, payloadN(1)))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected to the restarted service")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServiceTornFrames: connections that die mid-write (truncated
// frames on the client's stream) degrade the requests they carried to
// misses; once the schedule heals, the same client serves hits again.
func TestServiceTornFrames(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The first three connections die mid-write at staggered points -
	// inside the handshake reply and inside early replies; every
	// connection after them is clean.
	fln := faultnet.Wrap(ln, func(conn int) faultnet.Fault {
		if conn < 3 {
			return faultnet.Fault{CloseAfterWrites: 1 + 2*conn, MidWrite: true}
		}
		return faultnet.Fault{}
	})
	ts := startServiceLn(t, mustOpen(t, Options{Dir: t.TempDir()}), ServiceConfig{Format: 7}, fln)

	r := NewRemote(fastOpts(ts.addr, 7))
	defer r.Close()
	r.Put(keyN(1), payloadN(1)) // may or may not survive the chaos

	deadline := time.Now().Add(10 * time.Second)
	for {
		r.Put(keyN(1), payloadN(1))
		got, ok, err := r.Get(keyN(1))
		if ok {
			if err != nil || !bytes.Equal(got, payloadN(1)) {
				t.Fatalf("healed get: err=%v wrong bytes=%v", err, !bytes.Equal(got, payloadN(1)))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never healed past the torn-frame schedule")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fln.Accepted() < 4 {
		t.Errorf("healed after %d connections - the torn schedule never ran", fln.Accepted())
	}
}

// TestServiceSlowReplies: a service whose replies crawl slower than
// the request timeout must cost a bounded timeout and a reconnect, not
// a stalled shard.
func TestServiceSlowReplies(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Connection 0's writes each stall 150ms - the handshake squeaks
	// through the generous dial deadline, then every reply overshoots
	// the 100ms request timeout. Connection 1 onward is healthy.
	fln := faultnet.Wrap(ln, func(conn int) faultnet.Fault {
		if conn == 0 {
			return faultnet.Fault{WriteDelay: 150 * time.Millisecond}
		}
		return faultnet.Fault{}
	})
	ts := startServiceLn(t, mustOpen(t, Options{Dir: t.TempDir()}), ServiceConfig{Format: 7}, fln)

	o := fastOpts(ts.addr, 7)
	o.DialTimeout = 2 * time.Second
	o.RequestTimeout = 100 * time.Millisecond
	r := NewRemote(o)
	defer r.Close()

	start := time.Now()
	_, ok, _ := r.Get(keyN(1))
	if ok {
		t.Fatal("slow service answered within the timeout window")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("slow reply stalled the shard for %v", elapsed)
	}
	// The wedged connection was killed; the healthy redial serves.
	r.Put(keyN(1), payloadN(1))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok, _ := r.Get(keyN(1)); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered from the slow connection")
		}
		r.Put(keyN(1), payloadN(1))
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTieredWriteBack: a remote hit lands in the local tier, so the
// service is consulted once per key - kill it afterwards and the shard
// still serves the entry locally.
func TestTieredWriteBack(t *testing.T) {
	svcDir := t.TempDir()
	ts := startService(t, mustOpen(t, Options{Dir: svcDir}), ServiceConfig{Format: 7})

	seed := NewRemote(fastOpts(ts.addr, 7))
	if err := seed.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	local := mustOpen(t, Options{Dir: t.TempDir()})
	tiered := NewTiered(local, NewRemote(fastOpts(ts.addr, 7)))
	defer tiered.Close()

	got, ok, err := tiered.Get(keyN(1))
	if !ok || err != nil || !bytes.Equal(got, payloadN(1)) {
		t.Fatalf("tiered remote get: ok=%v err=%v", ok, err)
	}

	ts.stop() // service gone; the write-back must carry the key

	got, ok, err = tiered.Get(keyN(1))
	if !ok || err != nil || !bytes.Equal(got, payloadN(1)) {
		t.Fatalf("tiered local get after service death: ok=%v err=%v", ok, err)
	}
	st := tiered.Stats()
	if st.RemoteHits != 1 {
		t.Errorf("want exactly one remote hit (write-back), got %+v", st)
	}
	if st.Hits != 2 {
		t.Errorf("want 2 tiered hits, got %+v", st)
	}
}

// TestTieredPutReachesBothTiers: a shard's Put serves later Gets both
// from its own directory and from the rest of the fleet.
func TestTieredPutReachesBothTiers(t *testing.T) {
	svcStore := mustOpen(t, Options{Dir: t.TempDir()})
	ts := startService(t, svcStore, ServiceConfig{Format: 7})

	local := mustOpen(t, Options{Dir: t.TempDir()})
	tiered := NewTiered(local, NewRemote(fastOpts(ts.addr, 7)))
	defer tiered.Close()
	if err := tiered.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}

	if _, ok, _ := local.Get(keyN(1)); !ok {
		t.Error("put missed the local tier")
	}
	if _, ok, _ := svcStore.Get(keyN(1)); !ok {
		t.Error("put missed the service")
	}
	other := NewRemote(fastOpts(ts.addr, 7))
	defer other.Close()
	if got, ok, _ := other.Get(keyN(1)); !ok || !bytes.Equal(got, payloadN(1)) {
		t.Error("another shard cannot read the shared entry")
	}
}

// TestTieredRemoteOnly: a shard with no cache directory leans on the
// service alone and still degrades cleanly when it dies.
func TestTieredRemoteOnly(t *testing.T) {
	ts := startService(t, mustOpen(t, Options{Dir: t.TempDir()}), ServiceConfig{Format: 7})

	tiered := NewTiered(nil, NewRemote(fastOpts(ts.addr, 7)))
	defer tiered.Close()
	if err := tiered.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := tiered.Get(keyN(1)); !ok || err != nil || !bytes.Equal(got, payloadN(1)) {
		t.Fatalf("remote-only get: ok=%v err=%v", ok, err)
	}
	if st := tiered.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Errorf("remote-only ledger: %+v", st)
	}
	ts.stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, err := tiered.Get(keyN(1)); !ok {
			if err != nil {
				t.Fatalf("degraded get returned error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("remote-only tier kept hitting a dead service")
		}
	}
}

// TestServiceDrain: closing Drain stops the accept loop and returns
// from Serve while clients degrade to their local tiers.
func TestServiceDrain(t *testing.T) {
	drain := make(chan struct{})
	ts := startService(t, mustOpen(t, Options{Dir: t.TempDir()}), ServiceConfig{Format: 7, Drain: drain})

	r := NewRemote(fastOpts(ts.addr, 7))
	defer r.Close()
	if err := r.Put(keyN(1), payloadN(1)); err != nil {
		t.Fatal(err)
	}
	close(drain)
	select {
	case err := <-ts.done:
		if err != nil {
			t.Fatalf("drained serve returned %v", err)
		}
		ts.done <- nil // refill for the cleanup stop
	case <-time.After(5 * time.Second):
		t.Fatal("drained service never returned")
	}
}

// TestServiceSeededChaos drives a client through a seeded fault
// schedule: whatever the faults do, every Get must return either a
// clean miss or the exact bytes of the key's Put, bounded in time.
func TestServiceSeededChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fln := faultnet.Wrap(ln, faultnet.Seeded(seed, 5))
		ts := startServiceLn(t, mustOpen(t, Options{Dir: t.TempDir()}), ServiceConfig{Format: 7}, fln)

		o := fastOpts(ts.addr, 7)
		o.RequestTimeout = 200 * time.Millisecond
		o.RedialBackoff = 10 * time.Millisecond
		r := NewRemote(o)

		start := time.Now()
		hits := 0
		for i := 0; i < 60; i++ {
			k := i % 8
			r.Put(keyN(k), payloadN(k))
			got, ok, err := r.Get(keyN(k))
			if err != nil {
				t.Fatalf("seed %d: get returned error: %v", seed, err)
			}
			if ok {
				hits++
				if !bytes.Equal(got, payloadN(k)) {
					t.Fatalf("seed %d: wrong bytes under chaos", seed)
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		if hits == 0 {
			t.Errorf("seed %d: schedule heals after 5 conns but no get ever hit", seed)
		}
		if elapsed := time.Since(start); elapsed > 60*time.Second {
			t.Errorf("seed %d: chaos run stalled: %v", seed, elapsed)
		}
		r.Close()
		ts.stop()
	}
}
