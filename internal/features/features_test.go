package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"portcc/internal/cpu"
	"portcc/internal/uarch"
)

type resultAlias = cpu.Result

func TestDimensions(t *testing.T) {
	if Dim != 19 {
		t.Errorf("feature dimensionality %d, paper uses 8+11 = 19", Dim)
	}
	if len(Names()) != Dim {
		t.Error("name list length mismatch")
	}
	if len(CounterNames()) != NumCounters {
		t.Error("counter name list length mismatch")
	}
}

func TestNormalizerProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var vecs [][]float64
		for i := 0; i < 30; i++ {
			v := make([]float64, 4)
			for j := range v {
				v[j] = rng.NormFloat64()*5 + 10
			}
			vecs = append(vecs, v)
		}
		n := NewNormalizer(vecs)
		// z-scored training set: mean ~0, std ~1 per dimension.
		sums := make([]float64, 4)
		sq := make([]float64, 4)
		for _, v := range vecs {
			z := n.Apply(v)
			for j, x := range z {
				sums[j] += x
				sq[j] += x * x
			}
		}
		for j := 0; j < 4; j++ {
			mean := sums[j] / 30
			variance := sq[j]/30 - mean*mean
			if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNormalizerConstantDim(t *testing.T) {
	n := NewNormalizer([][]float64{{1, 5}, {2, 5}, {3, 5}})
	z := n.Apply([]float64{2, 5})
	if math.IsNaN(z[1]) || math.IsInf(z[1], 0) {
		t.Error("constant dimension produced NaN/Inf")
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := []float64{rng.NormFloat64(), rng.NormFloat64()}
		b := []float64{rng.NormFloat64(), rng.NormFloat64()}
		c := []float64{rng.NormFloat64(), rng.NormFloat64()}
		dab, dba := Distance(a, b), Distance(b, a)
		if math.Abs(dab-dba) > 1e-12 {
			return false // symmetry
		}
		if Distance(a, a) != 0 {
			return false // identity
		}
		// Triangle inequality.
		return Distance(a, c) <= dab+Distance(b, c)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorLayout(t *testing.T) {
	xs := uarch.XScale()
	// A zero result still yields a full-length vector with the
	// descriptors in front.
	var r = zeroResult()
	v := Vector(xs, &r)
	if len(v) != Dim {
		t.Fatalf("vector length %d, want %d", len(v), Dim)
	}
	d := xs.Descriptors()
	for i := range d {
		if v[i] != d[i] {
			t.Error("descriptors must come first in the feature vector")
		}
	}
}

// zeroResult builds an empty simulation result for layout tests.
func zeroResult() (r resultAlias) { return }
