// Package features assembles the feature vectors of the paper's model:
// x = (c, d) where c are the 11 performance counters of Table 1 measured
// from a single run of the program compiled at -O3 on the target
// microarchitecture, and d are the 8 microarchitecture descriptors of
// Table 2.
package features

import (
	"math"

	"portcc/internal/cpu"
	"portcc/internal/uarch"
)

// NumCounters is the number of Table 1 performance counters.
const NumCounters = 11

// NumDescriptors is the number of Table 2 microarchitecture descriptors.
const NumDescriptors = 8

// Dim is the full feature dimensionality.
const Dim = NumDescriptors + NumCounters

// CounterNames returns the Figure 9 labels of the counters, in vector order.
func CounterNames() []string {
	return []string{
		"IPC",
		"dec_acc_rate",
		"reg_acc_rate",
		"bpred_acc_rate",
		"icache_acc_rate",
		"icache_miss_rate",
		"dcache_acc_rate",
		"dcache_miss_rate",
		"ALU_usg",
		"MAC_usg",
		"Shft_usg",
	}
}

// Names returns all feature labels: descriptors first (matching
// uarch.DescriptorNames), then counters, as on the Figure 9 axis.
func Names() []string {
	return append(uarch.DescriptorNames(), CounterNames()...)
}

// Counters extracts the 11-element counter vector c from a simulation of
// the O3-compiled program.
func Counters(r *cpu.Result) []float64 {
	cyc := float64(r.Cycles)
	if cyc == 0 {
		cyc = 1
	}
	icAcc := float64(r.ICAccesses)
	dcAcc := float64(r.DCAccesses)
	icMissRate := 0.0
	if icAcc > 0 {
		icMissRate = float64(r.ICMisses) / icAcc
	}
	dcMissRate := 0.0
	if dcAcc > 0 {
		dcMissRate = float64(r.DCMisses) / dcAcc
	}
	return []float64{
		float64(r.Insns) / cyc,
		float64(r.Decodes) / cyc,
		float64(r.RegReads+r.RegWrites) / cyc,
		float64(r.BTBLookups) / cyc,
		icAcc / cyc,
		icMissRate,
		dcAcc / cyc,
		dcMissRate,
		float64(r.ALUOps) / cyc,
		float64(r.MACOps) / cyc,
		float64(r.ShiftOps) / cyc,
	}
}

// Vector concatenates descriptors and counters into x = (c, d). The
// descriptor block comes first to match the Figure 9 axis ordering.
func Vector(cfg uarch.Config, r *cpu.Result) []float64 {
	return append(cfg.Descriptors(), Counters(r)...)
}

// Normalizer z-scores feature vectors with statistics estimated from a
// training set, so Euclidean distances weight every feature comparably.
type Normalizer struct {
	Mean, Std []float64
}

// NewNormalizer estimates per-dimension mean and standard deviation.
// Dimensions with zero variance get Std 1 (they contribute nothing to
// distances either way).
func NewNormalizer(vecs [][]float64) *Normalizer {
	if len(vecs) == 0 {
		return &Normalizer{}
	}
	d := len(vecs[0])
	n := &Normalizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, v := range vecs {
		for i, x := range v {
			n.Mean[i] += x
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(len(vecs))
	}
	for _, v := range vecs {
		for i, x := range v {
			dx := x - n.Mean[i]
			n.Std[i] += dx * dx
		}
	}
	for i := range n.Std {
		n.Std[i] = math.Sqrt(n.Std[i] / float64(len(vecs)))
		if n.Std[i] < 1e-12 {
			n.Std[i] = 1
		}
	}
	return n
}

// Apply returns the z-scored copy of v.
func (n *Normalizer) Apply(v []float64) []float64 {
	if len(n.Mean) == 0 {
		return append([]float64(nil), v...)
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = (x - n.Mean[i]) / n.Std[i]
	}
	return out
}

// Distance is the Euclidean distance between two (normalised) vectors,
// the paper's evaluation function d(.,.) in equation (6).
func Distance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
