// Package bpred models the XScale branch prediction hardware: a tagged,
// set-associative branch target buffer whose entries carry 2-bit saturating
// counters. A branch that misses in the BTB is predicted not-taken
// (fall-through fetch); a hit predicts according to the counter.
package bpred

import (
	"fmt"
	"sync"
)

// BTB is the branch target buffer. Not safe for concurrent use.
type BTB struct {
	tags     []uint32
	ctr      []uint8 // 2-bit saturating counter per entry
	used     []uint64
	assoc    int
	setMask  uint32
	setBits  uint32
	stamp    uint64
	lookups  uint64
	hits     uint64
	predTkn  uint64
	mispreds uint64
}

// New builds a BTB with the given entry count and associativity (both
// powers of two, entries divisible by assoc).
func New(entries, assoc int) (*BTB, error) {
	b := &BTB{}
	if err := b.Reshape(entries, assoc); err != nil {
		return nil, err
	}
	return b, nil
}

// Reshape reconfigures the BTB to the given geometry in place, reusing the
// backing arrays when they are large enough, and clears all contents and
// statistics. It is the allocation-free path for pooled reuse across
// simulations of different microarchitectures.
func (b *BTB) Reshape(entries, assoc int) error {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		return fmt.Errorf("bpred: bad geometry entries=%d assoc=%d", entries, assoc)
	}
	sets := entries / assoc
	for _, v := range []int{entries, assoc, sets} {
		if v&(v-1) != 0 {
			return fmt.Errorf("bpred: geometry %d not a power of two", v)
		}
	}
	if cap(b.tags) >= entries && cap(b.ctr) >= entries && cap(b.used) >= entries {
		b.tags = b.tags[:entries]
		b.ctr = b.ctr[:entries]
		b.used = b.used[:entries]
		for i := range b.tags {
			b.tags[i] = 0
			b.ctr[i] = 0
			b.used[i] = 0
		}
	} else {
		b.tags = make([]uint32, entries)
		b.ctr = make([]uint8, entries)
		b.used = make([]uint64, entries)
	}
	b.assoc = assoc
	b.setMask = uint32(sets - 1)
	b.setBits = log2u(uint32(sets))
	b.stamp, b.lookups, b.hits, b.predTkn, b.mispreds = 0, 0, 0, 0, 0
	return nil
}

// pool recycles BTBs across simulations; see cache.Get for the idea.
var pool = sync.Pool{New: func() any { return new(BTB) }}

// Get returns a pooled BTB reshaped to the given geometry.
func Get(entries, assoc int) (*BTB, error) {
	b := pool.Get().(*BTB)
	if err := b.Reshape(entries, assoc); err != nil {
		pool.Put(b)
		return nil, err
	}
	return b, nil
}

// Put returns a BTB obtained from Get to the pool. The BTB must not be used
// after Put.
func Put(b *BTB) {
	if b != nil {
		pool.Put(b)
	}
}

// MustNew is New panicking on error.
func MustNew(entries, assoc int) *BTB {
	b, err := New(entries, assoc)
	if err != nil {
		panic(err)
	}
	return b
}

func log2u(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Predict performs the fetch-time BTB lookup for the branch at pc and
// returns the predicted direction.
func (b *BTB) Predict(pc uint32) bool {
	b.lookups++
	idx := pc >> 2 // word-aligned instructions
	set := idx & b.setMask
	tag := (idx >> b.setBits) + 1 // +1 so 0 means invalid, collision-free
	base := int(set) * b.assoc
	for i := base; i < base+b.assoc; i++ {
		if b.tags[i] == tag {
			b.hits++
			taken := b.ctr[i] >= 2
			if taken {
				b.predTkn++
			}
			return taken
		}
	}
	return false // BTB miss: fall-through fetch
}

// Resolve records the actual outcome of the branch at pc, updating counters
// and allocating an entry on taken branches (as the XScale BTB does), and
// reports whether the earlier prediction pred was wrong.
func (b *BTB) Resolve(pc uint32, pred, taken bool) bool {
	idx := pc >> 2
	set := idx & b.setMask
	tag := (idx >> b.setBits) + 1
	base := int(set) * b.assoc
	b.stamp++
	slot := -1
	victim := base
	oldest := b.used[base]
	for i := base; i < base+b.assoc; i++ {
		if b.tags[i] == tag {
			slot = i
			break
		}
		if b.used[i] < oldest {
			oldest = b.used[i]
			victim = i
		}
	}
	if slot >= 0 {
		if taken {
			if b.ctr[slot] < 3 {
				b.ctr[slot]++
			}
		} else if b.ctr[slot] > 0 {
			b.ctr[slot]--
		}
		b.used[slot] = b.stamp
	} else if taken {
		// Allocate on taken: initialise weakly taken.
		b.tags[victim] = tag
		b.ctr[victim] = 2
		b.used[victim] = b.stamp
	}
	if pred != taken {
		b.mispreds++
		return true
	}
	return false
}

// Step performs the fetch-time lookup and the resolution of the branch at
// pc in a single set scan. It is exactly equivalent to Predict followed by
// Resolve (the batched simulator's hot path) and reports whether the
// prediction was wrong.
func (b *BTB) Step(pc uint32, taken bool) bool {
	b.lookups++
	idx := pc >> 2
	set := idx & b.setMask
	tag := (idx >> b.setBits) + 1
	base := int(set) * b.assoc
	slot := -1
	victim := base
	oldest := b.used[base]
	for i := base; i < base+b.assoc; i++ {
		if b.tags[i] == tag {
			slot = i
			break
		}
		if b.used[i] < oldest {
			oldest = b.used[i]
			victim = i
		}
	}
	pred := false
	b.stamp++
	if slot >= 0 {
		b.hits++
		pred = b.ctr[slot] >= 2
		if pred {
			b.predTkn++
		}
		if taken {
			if b.ctr[slot] < 3 {
				b.ctr[slot]++
			}
		} else if b.ctr[slot] > 0 {
			b.ctr[slot]--
		}
		b.used[slot] = b.stamp
	} else if taken {
		b.tags[victim] = tag
		b.ctr[victim] = 2
		b.used[victim] = b.stamp
	}
	if pred != taken {
		b.mispreds++
		return true
	}
	return false
}

// Lookups returns the number of Predict calls.
func (b *BTB) Lookups() uint64 { return b.lookups }

// Hits returns the number of BTB tag hits.
func (b *BTB) Hits() uint64 { return b.hits }

// Mispredicts returns the number of wrong predictions recorded by Resolve.
func (b *BTB) Mispredicts() uint64 { return b.mispreds }

// Reset clears contents and statistics.
func (b *BTB) Reset() {
	for i := range b.tags {
		b.tags[i] = 0
		b.ctr[i] = 0
		b.used[i] = 0
	}
	b.stamp, b.lookups, b.hits, b.predTkn, b.mispreds = 0, 0, 0, 0, 0
}
