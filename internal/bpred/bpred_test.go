package bpred

import (
	"math/rand"
	"testing"
)

func TestColdPredictsNotTaken(t *testing.T) {
	b := MustNew(64, 1)
	if b.Predict(0x8000) {
		t.Error("BTB miss must predict not-taken (fall-through fetch)")
	}
}

func TestLearnsTakenLoop(t *testing.T) {
	b := MustNew(64, 1)
	pc := uint32(0x8000)
	mis := 0
	for i := 0; i < 100; i++ {
		pred := b.Predict(pc)
		if b.Resolve(pc, pred, true) {
			mis++
		}
	}
	// First iteration mispredicts (cold), then the 2-bit counter holds.
	if mis > 2 {
		t.Errorf("%d mispredicts on an always-taken branch, want <=2", mis)
	}
}

func TestHysteresis(t *testing.T) {
	b := MustNew(64, 1)
	pc := uint32(0x8000)
	// Saturate taken.
	for i := 0; i < 4; i++ {
		b.Resolve(pc, b.Predict(pc), true)
	}
	// One not-taken blip must not flip the prediction (2-bit counter).
	b.Resolve(pc, b.Predict(pc), false)
	if !b.Predict(pc) {
		t.Error("single not-taken must not flip a saturated counter")
	}
}

func TestAliasingEviction(t *testing.T) {
	// 2 entries x 1 way: plenty of branches must alias.
	b := MustNew(2, 1)
	pcs := []uint32{0x8000, 0x8008, 0x8010, 0x8018}
	for i := 0; i < 50; i++ {
		for _, pc := range pcs {
			b.Resolve(pc, b.Predict(pc), true)
		}
	}
	if b.Mispredicts() == 0 {
		t.Error("4 always-taken branches in a 2-entry BTB must mispredict via aliasing")
	}
}

func TestAssociativityHelps(t *testing.T) {
	run := func(entries, assoc int) uint64 {
		b := MustNew(entries, assoc)
		// Two branches mapping to the same set in the direct-mapped case.
		pcs := []uint32{0x8000, 0x8000 + 2*4}
		_ = pcs
		pcA := uint32(0x8000)
		pcB := pcA + uint32(entries/assoc)*4 // same set index
		for i := 0; i < 60; i++ {
			b.Resolve(pcA, b.Predict(pcA), true)
			b.Resolve(pcB, b.Predict(pcB), true)
		}
		return b.Mispredicts()
	}
	direct := run(4, 1)
	assoc := run(4, 4)
	if assoc >= direct {
		t.Errorf("associativity should reduce conflict mispredicts: %d vs %d", assoc, direct)
	}
}

func TestNotTakenBranchesNotAllocated(t *testing.T) {
	b := MustNew(64, 1)
	pc := uint32(0x8000)
	for i := 0; i < 10; i++ {
		pred := b.Predict(pc)
		if b.Resolve(pc, pred, false) {
			t.Error("never-taken branch mispredicted")
		}
	}
	if b.Hits() != 0 {
		t.Error("never-taken branches must not occupy BTB entries")
	}
}

func TestGeometryErrors(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {3, 1}, {8, 3}, {-2, 1}} {
		if _, err := New(g[0], g[1]); err == nil {
			t.Errorf("geometry %v accepted", g)
		}
	}
}

func TestStepEquivalentToPredictResolve(t *testing.T) {
	for _, g := range [][2]int{{64, 1}, {128, 4}, {2048, 8}} {
		a := MustNew(g[0], g[1])
		b := MustNew(g[0], g[1])
		rng := rand.New(rand.NewSource(int64(g[0])))
		for i := 0; i < 20000; i++ {
			pc := uint32(rng.Intn(1<<14)) * 4
			taken := rng.Intn(3) > 0
			pred := a.Predict(pc)
			mis := a.Resolve(pc, pred, taken)
			if got := b.Step(pc, taken); got != mis {
				t.Fatalf("geometry %v, branch %d: Step=%v, Predict+Resolve=%v", g, i, got, mis)
			}
		}
		if a.Mispredicts() != b.Mispredicts() || a.Hits() != b.Hits() || a.Lookups() != b.Lookups() {
			t.Errorf("geometry %v: diverging statistics", g)
		}
	}
}

func TestReshapeReusesAndResets(t *testing.T) {
	b := MustNew(2048, 8)
	b.Resolve(0x8000, b.Predict(0x8000), true)
	if err := b.Reshape(64, 1); err != nil {
		t.Fatal(err)
	}
	if b.Lookups() != 0 || b.Mispredicts() != 0 {
		t.Error("reshape must clear statistics")
	}
	if b.Predict(0x8000) {
		t.Error("reshape must clear counters")
	}
	if err := b.Reshape(8, 3); err == nil {
		t.Error("bad geometry accepted by Reshape")
	}
}

func TestPoolRoundTrip(t *testing.T) {
	b, err := Get(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Resolve(0x8000, b.Predict(0x8000), true)
	Put(b)
	c, err := Get(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer Put(c)
	if c.Lookups() != 0 || c.Predict(0x8000) {
		t.Error("pooled BTB must come back fully reset")
	}
	if _, err := Get(6, 2); err == nil {
		t.Error("bad geometry accepted by Get")
	}
}

func TestReset(t *testing.T) {
	b := MustNew(16, 2)
	b.Resolve(0x8000, b.Predict(0x8000), true)
	b.Reset()
	if b.Lookups() != 0 || b.Mispredicts() != 0 {
		t.Error("reset must clear statistics")
	}
	if b.Predict(0x8000) {
		t.Error("reset must clear counters")
	}
}
