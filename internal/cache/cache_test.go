package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirectMappedConflict(t *testing.T) {
	// 2 sets x 1 way x 16-byte blocks = 32 bytes: addresses 0 and 32
	// conflict on set 0.
	c := MustNew(32, 1, 16)
	if c.Access(0) {
		t.Error("cold access must miss")
	}
	if !c.Access(0) {
		t.Error("second access must hit")
	}
	if c.Access(32) {
		t.Error("conflicting line must miss")
	}
	if c.Access(0) {
		t.Error("evicted line must miss again")
	}
	if c.Misses() != 3 || c.Accesses() != 4 {
		t.Errorf("misses/accesses = %d/%d, want 3/4", c.Misses(), c.Accesses())
	}
}

func TestLRUOrder(t *testing.T) {
	// 1 set x 2 ways x 16-byte blocks.
	c := MustNew(32, 2, 16)
	c.Access(0)  // miss, resident {0}
	c.Access(32) // miss, resident {0,32}
	c.Access(0)  // hit: 32 is now LRU
	c.Access(64) // miss: evicts 32
	if !c.Contains(0) {
		t.Error("most recently used line evicted")
	}
	if c.Contains(32) {
		t.Error("LRU line not evicted")
	}
	if !c.Contains(64) {
		t.Error("new line not resident")
	}
}

func TestWithinBlockHits(t *testing.T) {
	c := MustNew(1<<10, 2, 32)
	c.Access(100)
	if !c.Access(101) || !c.Access(127&^31) {
		t.Error("accesses within the same block must hit")
	}
}

func TestGeometryErrors(t *testing.T) {
	cases := [][3]int{
		{0, 1, 16},  // zero size
		{48, 1, 16}, // 3 sets: not a power of two
		{32, 3, 16}, // not divisible
		{32, 1, 10}, // block not power of two
		{-4, 1, 16}, // negative
	}
	for _, g := range cases {
		if _, err := New(g[0], g[1], g[2]); err == nil {
			t.Errorf("geometry %v accepted", g)
		}
	}
}

func TestResetClears(t *testing.T) {
	c := MustNew(64, 2, 16)
	c.Access(0)
	c.Access(16)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Error("reset must clear statistics")
	}
	if c.Contains(0) {
		t.Error("reset must clear contents")
	}
}

func TestMissRateBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(256, 2, 16)
		for i := 0; i < 200; i++ {
			c.Access(rng.Uint32() % 4096)
		}
		mr := c.MissRate()
		return mr >= 0 && mr <= 1 && c.Accesses() == 200
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestContainsConsistency: after Access(a), Contains(a) holds until enough
// conflicting lines evict it.
func TestContainsConsistency(t *testing.T) {
	f := func(addrRaw uint32) bool {
		c := MustNew(1<<12, 4, 32)
		addr := addrRaw % (1 << 20)
		c.Access(addr)
		return c.Contains(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A working set equal to the cache size must stop missing after the
	// first pass (fully associative within sets thanks to power-of-two
	// striding).
	c := MustNew(1<<12, 4, 32)
	for pass := 0; pass < 3; pass++ {
		for a := uint32(0); a < 1<<12; a += 32 {
			c.Access(a)
		}
	}
	// 128 cold misses, then hits.
	if c.Misses() != 128 {
		t.Errorf("misses = %d, want 128 cold only", c.Misses())
	}
}

func TestGeometryAccessors(t *testing.T) {
	c := MustNew(1<<12, 4, 32)
	if c.Sets() != 32 || c.Assoc() != 4 || c.BlockBytes() != 32 {
		t.Errorf("geometry accessors wrong: %d sets, %d ways, %dB",
			c.Sets(), c.Assoc(), c.BlockBytes())
	}
}

func TestReshapeReusesAndResets(t *testing.T) {
	c := MustNew(128<<10, 4, 8) // largest backing arrays first
	c.Access(0)
	if err := c.Reshape(32, 2, 16); err != nil {
		t.Fatal(err)
	}
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Error("reshape must clear statistics")
	}
	if c.Contains(0) {
		t.Error("reshape must clear contents")
	}
	if c.Sets() != 1 || c.Assoc() != 2 || c.BlockBytes() != 16 {
		t.Errorf("reshaped geometry wrong: %d sets, %d ways, %d-byte blocks",
			c.Sets(), c.Assoc(), c.BlockBytes())
	}
	// Behaviour after reshape matches a freshly built cache.
	f := MustNew(32, 2, 16)
	for _, addr := range []uint32{0, 32, 0, 64, 32} {
		if c.Access(addr) != f.Access(addr) {
			t.Fatalf("reshaped cache diverges from fresh cache at %#x", addr)
		}
	}
	if err := c.Reshape(48, 3, 8); err == nil {
		t.Error("bad geometry accepted by Reshape")
	}
}

func TestPoolRoundTrip(t *testing.T) {
	c, err := Get(4<<10, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x1234)
	Put(c)
	d, err := Get(4<<10, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer Put(d)
	if d.Accesses() != 0 || d.Contains(0x1234) {
		t.Error("pooled cache must come back fully reset")
	}
	if _, err := Get(48, 3, 8); err == nil {
		t.Error("bad geometry accepted by Get")
	}
}
