// Package cache implements the set-associative, LRU-replacement cache model
// used for both the instruction and data caches of the simulated XScale-class
// core. Only hit/miss behaviour is modelled here; latencies and energies are
// charged by the CPU model from the Cacti-style numbers in internal/uarch.
package cache

import (
	"fmt"
	"sync"
)

// Cache is a set-associative cache with true-LRU replacement.
// It is not safe for concurrent use.
type Cache struct {
	tags     []uint32 // numSets*assoc entries; 0 means invalid
	used     []uint64 // LRU stamps parallel to tags
	assoc    int
	setMask  uint32
	blockLg  uint32
	setBits  uint32
	stamp    uint64
	accesses uint64
	misses   uint64
}

// New builds a cache of the given total size, associativity and block size,
// all in bytes (associativity in ways). Size must be divisible by
// assoc*block; all three must be powers of two.
func New(sizeBytes, assoc, blockBytes int) (*Cache, error) {
	c := &Cache{}
	if err := c.Reshape(sizeBytes, assoc, blockBytes); err != nil {
		return nil, err
	}
	return c, nil
}

// CheckGeometry validates a (size, assoc, block) triple against the model's
// constraints: positive, size divisible by assoc*block, all powers of two.
func CheckGeometry(sizeBytes, assoc, blockBytes int) error {
	if sizeBytes <= 0 || assoc <= 0 || blockBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %d/%d/%d", sizeBytes, assoc, blockBytes)
	}
	if sizeBytes%(assoc*blockBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by assoc %d * block %d", sizeBytes, assoc, blockBytes)
	}
	numSets := sizeBytes / (assoc * blockBytes)
	for _, v := range []int{sizeBytes, assoc, blockBytes, numSets} {
		if v&(v-1) != 0 {
			return fmt.Errorf("cache: geometry %d not a power of two", v)
		}
	}
	return nil
}

// Reshape reconfigures the cache to the given geometry in place, reusing
// the backing arrays when they are large enough, and clears all contents
// and statistics. It is the allocation-free path for pooled reuse across
// simulations of different microarchitectures.
func (c *Cache) Reshape(sizeBytes, assoc, blockBytes int) error {
	if err := CheckGeometry(sizeBytes, assoc, blockBytes); err != nil {
		return err
	}
	numSets := sizeBytes / (assoc * blockBytes)
	n := numSets * assoc
	if cap(c.tags) >= n && cap(c.used) >= n {
		c.tags = c.tags[:n]
		c.used = c.used[:n]
		for i := range c.tags {
			c.tags[i] = 0
			c.used[i] = 0
		}
	} else {
		c.tags = make([]uint32, n)
		c.used = make([]uint64, n)
	}
	c.assoc = assoc
	c.setMask = uint32(numSets - 1)
	c.blockLg = log2u(uint32(blockBytes))
	c.setBits = log2u(uint32(numSets))
	c.stamp = 0
	c.accesses = 0
	c.misses = 0
	return nil
}

// pool recycles caches across simulations. A recycled cache keeps its
// largest-seen backing arrays, so steady-state Get/Reshape/Put cycles
// perform no heap allocations.
var pool = sync.Pool{New: func() any { return new(Cache) }}

// Get returns a pooled cache reshaped to the given geometry.
func Get(sizeBytes, assoc, blockBytes int) (*Cache, error) {
	c := pool.Get().(*Cache)
	if err := c.Reshape(sizeBytes, assoc, blockBytes); err != nil {
		pool.Put(c)
		return nil, err
	}
	return c, nil
}

// Put returns a cache obtained from Get to the pool. The cache must not be
// used after Put.
func Put(c *Cache) {
	if c != nil {
		pool.Put(c)
	}
}

func log2u(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// MustNew is New panicking on error, for geometry known valid at compile
// time (e.g. values drawn from the Table 2 lists).
func MustNew(sizeBytes, assoc, blockBytes int) *Cache {
	c, err := New(sizeBytes, assoc, blockBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Access touches addr and reports whether it hit. Misses allocate
// (write-allocate policy for both loads and stores).
func (c *Cache) Access(addr uint32) bool {
	c.accesses++
	c.stamp++
	line := addr >> c.blockLg
	set := line & c.setMask
	tag := (line >> c.setBits) + 1 // +1 so 0 means invalid, collision-free
	base := int(set) * c.assoc
	victim := base
	oldest := c.used[base]
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == tag {
			c.used[i] = c.stamp
			return true
		}
		if c.used[i] < oldest {
			oldest = c.used[i]
			victim = i
		}
	}
	c.misses++
	c.tags[victim] = tag
	c.used[victim] = c.stamp
	return false
}

// Contains reports whether addr is currently resident, without touching
// LRU state or statistics.
func (c *Cache) Contains(addr uint32) bool {
	line := addr >> c.blockLg
	set := line & c.setMask
	tag := (line >> c.setBits) + 1
	base := int(set) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == tag {
			return true
		}
	}
	return false
}

// BlockBytes returns the block size in bytes.
func (c *Cache) BlockBytes() int { return 1 << c.blockLg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask) + 1 }

// Assoc returns the associativity in ways.
func (c *Cache) Assoc() int { return c.assoc }

// Accesses returns the access count so far.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the miss count so far.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.used[i] = 0
	}
	c.stamp = 0
	c.accesses = 0
	c.misses = 0
}
