// Package pcerr is the typed error vocabulary shared by the portcc facade
// and the internal pipeline packages. The sentinels support errors.Is and
// the structured types support errors.As, so callers (and, later, shard
// coordinators) can discriminate failures programmatically instead of
// matching message strings. The portcc package re-exports everything here.
package pcerr

import (
	"errors"
	"fmt"
)

var (
	// ErrUnknownProgram reports a benchmark name outside the suite.
	ErrUnknownProgram = errors.New("unknown program")
	// ErrInvalidConfig reports an optimisation, microarchitecture or
	// request configuration outside its legal space.
	ErrInvalidConfig = errors.New("invalid configuration")
	// ErrDatasetVersion reports a dataset file whose schema version does
	// not match this build (including pre-versioning and foreign files),
	// or a worker shard built against a different schema version.
	ErrDatasetVersion = errors.New("dataset schema version mismatch")
	// ErrModelVersion reports a model artifact file whose schema version
	// does not match this build (including pre-versioning and foreign
	// files). Artifacts are regenerated from their dataset with
	// cmd/trainer -model-out.
	ErrModelVersion = errors.New("model artifact version mismatch")
	// ErrWireVersion reports a worker shard speaking an incompatible
	// coordinator/worker wire protocol version.
	ErrWireVersion = errors.New("wire protocol version mismatch")
	// ErrOverloaded reports a prediction server shedding load: admission
	// control found the bounded request queue full. The request was
	// refused before any work started; retry after the advertised delay.
	ErrOverloaded = errors.New("server overloaded")
	// ErrShardFailure reports distributed exploration that ran out of
	// worker shards: a dead shard's cells are requeued onto survivors and
	// dead connections are redialled with backoff, so this surfaces only
	// when every shard has burned its full retry budget. It wraps the
	// last shard's underlying error.
	ErrShardFailure = errors.New("shard failure")
	// ErrCellPoisoned reports a work cell quarantined by the coordinator:
	// every connection that was assigned the cell died before resolving
	// it, enough times in a row that the cell itself is the prime suspect
	// (a poison cell that crashes worker daemons). The cell surfaces as
	// the failure at its own grid index instead of riding reconnects
	// forever.
	ErrCellPoisoned = errors.New("cell poisoned")
	// ErrCellPanic reports a work cell whose runner panicked on a worker
	// daemon. The daemon recovers the panic and keeps serving; the cell
	// surfaces as an ordinary typed cell failure at its grid index.
	ErrCellPanic = errors.New("cell runner panicked")
	// ErrStoreCorrupt reports a result-store entry that failed
	// validation on read: truncated, bit-flipped, version-mismatched or
	// half-written. The store quarantines the entry and callers fall
	// back to recomputing the cell, so the error never carries wrong
	// data - only the fact that cached data was unusable.
	ErrStoreCorrupt = errors.New("result store entry corrupt")
)

// SimError locates a failure inside the exploration grid: which program,
// which optimisation-setting index and which architecture index (the first
// of the failing batch) was being evaluated. Index -1 means "not known in
// this context".
type SimError struct {
	Program string
	Setting int
	Arch    int
	Err     error
}

func (e *SimError) Error() string {
	return fmt.Sprintf("simulating %s (setting %d, arch %d): %v", e.Program, e.Setting, e.Arch, e.Err)
}

func (e *SimError) Unwrap() error { return e.Err }

// PartialError reports an operation that stopped early - typically by
// context cancellation - after completing Done of Total work cells. It
// wraps the cause, so errors.Is(err, context.Canceled) still holds.
type PartialError struct {
	Done, Total int
	Err         error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("stopped after %d/%d cells: %v", e.Done, e.Total, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }
