// Package cpu is the Xtrem-substitute performance model: a cycle-approximate
// in-order XScale-class core that replays a dynamic trace against one
// microarchitecture configuration and reports cycles plus the eleven
// performance counters of the paper's Table 1.
//
// The model charges:
//   - one issue slot per instruction (two with the extended-space dual
//     issue, subject to pairing rules);
//   - load-use and multiply/MAC latency stalls from the dependency
//     distances recorded in the trace;
//   - instruction-cache refill stalls per fetched line, data-cache refill
//     stalls per access, branch mispredictions via the BTB model;
//   - fetch-redirect bubbles on taken control flow.
package cpu

import (
	"portcc/internal/bpred"
	"portcc/internal/cache"
	"portcc/internal/isa"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// ReplayVersion is the replay-semantics version of this model: any
// change that alters the counters a given (trace, configuration) pair
// produces - timing rules, energy coefficients, counter definitions -
// must bump it. Persistent caches of simulation results (the
// content-addressed result store) key on it, so stale results from an
// older model are clean misses instead of silently wrong data.
const ReplayVersion = 1

// Result is the outcome of simulating one trace on one configuration.
type Result struct {
	Cycles uint64
	Insns  uint64

	// Instruction-cache behaviour.
	ICAccesses, ICMisses uint64
	// Data-cache behaviour.
	DCAccesses, DCMisses uint64
	// BTB behaviour.
	BTBLookups, Mispredicts uint64
	// Decoder activity: instructions decoded including wrong-path work.
	Decodes uint64
	// Register-file ports exercised.
	RegReads, RegWrites uint64
	// Functional-unit activity.
	ALUOps, MACOps, ShiftOps uint64

	// Stall decomposition (cycles), for analysis and tests.
	FetchStalls, MemStalls, DepStalls, BranchStalls uint64

	// EnergyNJ is the Cacti-style dynamic energy estimate.
	EnergyNJ float64
	// Config echoes the simulated configuration.
	Config uarch.Config
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insns) / float64(r.Cycles)
}

// TimeSeconds returns wall-clock execution time at the configured frequency.
func (r *Result) TimeSeconds() float64 {
	return float64(r.Cycles) / (float64(r.Config.FreqMHz) * 1e6)
}

// PowerMW returns the average power estimate in milliwatts.
func (r *Result) PowerMW() float64 {
	t := r.TimeSeconds()
	if t == 0 {
		return 0
	}
	return r.EnergyNJ * 1e-9 / t * 1e3
}

// Per-instruction and per-cycle core energies (nJ), calibrated to an
// XScale-class embedded core (~450 mW at 400 MHz).
const (
	coreEnergyPerInsn  = 0.35
	coreEnergyPerCycle = 0.30
)

// mispredictPenalty is the XScale branch-mispredict front-end penalty in
// cycles, on top of the refetch bubble.
const mispredictPenalty = 4

// mustCache draws a pooled cache, panicking on bad geometry (values drawn
// from the Table 2 lists are always valid).
func mustCache(sizeBytes, assoc, blockBytes int) *cache.Cache {
	c, err := cache.Get(sizeBytes, assoc, blockBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// mustBTB draws a pooled BTB, panicking on bad geometry.
func mustBTB(entries, assoc int) *bpred.BTB {
	b, err := bpred.Get(entries, assoc)
	if err != nil {
		panic(err)
	}
	return b
}

// Simulate replays the trace on the configuration. Cache and BTB state is
// drawn from package pools, so steady-state simulation is allocation-free.
func Simulate(tr *trace.Trace, cfg uarch.Config) Result {
	ic := mustCache(cfg.IL1Size, cfg.IL1Assoc, cfg.IL1Block)
	dc := mustCache(cfg.DL1Size, cfg.DL1Assoc, cfg.DL1Block)
	btb := mustBTB(cfg.BTBSize, cfg.BTBAssoc)
	defer cache.Put(ic)
	defer cache.Put(dc)
	defer bpred.Put(btb)

	il1Lat := cfg.IL1Latency()
	dl1Lat := cfg.DL1Latency()
	icPenalty := uint64(cfg.MissPenalty(cfg.IL1Block))
	dcPenalty := uint64(cfg.MissPenalty(cfg.DL1Block))
	// Stores retire through a small store buffer that hides part of the
	// refill; loads block the in-order core.
	stPenalty := dcPenalty / 2
	if stPenalty < 1 {
		stPenalty = 1
	}
	redirectBubble := uint64(il1Lat) // refetch after a taken redirect
	width := cfg.Width
	if width < 1 {
		width = 1
	}

	var res Result
	res.Config = cfg

	icBlockLg := uint32(0)
	for b := cfg.IL1Block; b > 1; b >>= 1 {
		icBlockLg++
	}

	var cycles uint64
	lastLine := ^uint32(0)
	redirected := true // first fetch touches the cache
	slotOpen := false  // dual-issue second slot available
	prevMem := false
	prevCtl := false

	for i := range tr.Events {
		ev := &tr.Events[i]
		op := isa.Op(ev.Op)

		// Fetch: one I-cache access per line transition or redirect.
		line := ev.PC >> icBlockLg
		if redirected || line != lastLine {
			res.ICAccesses++
			if !ic.Access(ev.PC) {
				res.ICMisses++
				cycles += icPenalty
				res.FetchStalls += icPenalty
			}
			if redirected {
				cycles += redirectBubble - 1
				res.FetchStalls += redirectBubble - 1
				redirected = false
			}
			lastLine = line
			slotOpen = false
		}

		// Dependency stalls: producer latency minus elapsed issue cycles.
		var stall uint64
		if ev.DistLoad != trace.NoDist {
			elapsed := (int(ev.DistLoad) + width - 1) / width
			if s := dl1Lat - elapsed; s > 0 {
				stall = uint64(s)
			}
		}
		if ev.DistFU != trace.NoDist {
			elapsed := (int(ev.DistFU) + width - 1) / width
			if s := int(ev.FULat) - elapsed; s > 0 && uint64(s) > stall {
				stall = uint64(s)
			}
		}
		if stall > 0 {
			cycles += stall
			res.DepStalls += stall
			slotOpen = false
		}

		// Issue slotting.
		pairable := width == 2 && slotOpen &&
			ev.Flags&trace.FlagDepPrev == 0 &&
			!(prevMem && op.IsMem()) && !prevCtl
		if pairable {
			slotOpen = false
		} else {
			cycles++
			slotOpen = width == 2
		}
		prevMem = op.IsMem()
		prevCtl = op.IsControl()
		res.Decodes++

		// Memory.
		if op.IsMem() {
			res.DCAccesses++
			if !dc.Access(ev.Addr) {
				res.DCMisses++
				p := dcPenalty
				if op == isa.OpStore {
					p = stPenalty
				}
				cycles += p
				res.MemStalls += p
			}
		}

		// Control.
		if ev.Flags&trace.FlagCond != 0 {
			res.BTBLookups++
			actual := ev.Flags&trace.FlagTaken != 0
			pred := btb.Predict(ev.PC)
			if btb.Resolve(ev.PC, pred, actual) {
				res.Mispredicts++
				cycles += mispredictPenalty
				res.BranchStalls += mispredictPenalty
				// Wrong-path decode activity.
				res.Decodes += uint64(mispredictPenalty * width / 2)
				redirected = true
			} else if actual {
				redirected = true
			}
		} else if op.IsControl() {
			redirected = true
		}

		// Functional-unit usage counters.
		switch {
		case op.UsesALU():
			res.ALUOps++
		case op.UsesMAC():
			res.MACOps++
		case op.UsesShifter():
			res.ShiftOps++
		}
	}

	res.Cycles = cycles
	res.Insns = uint64(len(tr.Events))
	res.RegReads = tr.RegReads
	res.RegWrites = tr.RegWrites

	res.EnergyNJ = float64(res.ICAccesses)*cfg.IL1Energy() +
		float64(res.DCAccesses)*cfg.DL1Energy() +
		float64(res.BTBLookups)*cfg.BTBEnergy() +
		float64(res.Insns)*coreEnergyPerInsn +
		float64(res.Cycles)*coreEnergyPerCycle
	return res
}
