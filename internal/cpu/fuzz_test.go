// Differential fuzz targets for the two engines this package keeps
// bit-identical by construction: the shared LRU stack (permutation-word
// and ring encodings) against a naive per-member set-associative
// reference model, and SimulateBatch against per-configuration Simulate.
// CI runs both with a short -fuzztime as a smoke; seed corpora live under
// testdata/fuzz.
package cpu

import (
	"math/rand"
	"runtime"
	"testing"

	"portcc/internal/isa"
	"portcc/internal/trace"
)

// refCache is the naive reference: one independent true-LRU
// set-associative cache per member, tags kept MRU-first in a plain slice
// with O(assoc) probe and rotate. Deliberately the most literal possible
// encoding of the textbook policy.
type refCache struct {
	assoc                           int
	blockLg                         uint32
	setBits                         uint32
	sets                            [][]uint32
	misses, loadMisses, storeMisses uint64
	missBits                        bitset
}

func newRefCache(setBits, blockLg uint32, assoc int) *refCache {
	return &refCache{
		assoc: assoc, blockLg: blockLg, setBits: setBits,
		sets:     make([][]uint32, 1<<setBits),
		missBits: newBitset(),
	}
}

func (c *refCache) access(addr uint32, j int, isStore bool) {
	line := addr >> c.blockLg
	set := line & (uint32(len(c.sets)) - 1)
	tag := line >> c.setBits
	s := c.sets[set]
	for i, t := range s {
		if t == tag {
			copy(s[1:i+1], s[:i])
			s[0] = tag
			return
		}
	}
	c.misses++
	if isStore {
		c.storeMisses++
	} else {
		c.loadMisses++
	}
	c.missBits.set(j)
	if len(s) < c.assoc {
		s = append(s, 0)
	}
	copy(s[1:], s)
	s[0] = tag
	c.sets[set] = s
}

// fuzzAssocs decodes a member-associativity subset from a mask byte;
// the menu spans both stack representations (perm words up to 16, ring
// beyond).
var fuzzAssocMenu = []int{1, 2, 4, 8, 16, 32}

func fuzzAssocs(mask byte) []int {
	var out []int
	for i, a := range fuzzAssocMenu {
		if mask>>i&1 != 0 {
			out = append(out, a)
		}
	}
	if out == nil {
		out = []int{4}
	}
	return out
}

// FuzzLRUStackVsReference drives a random access sequence through the
// shared lruStack - in whichever representation its depth selects, and
// again with the ring forced - and through one naive reference cache per
// member, asserting identical per-member miss, load-miss and store-miss
// counts and identical per-event missBits. Input layout: byte 0 selects
// the set count (1..16 sets), byte 1 the member associativities, then
// 3-byte records of (addr16, flags).
func FuzzLRUStackVsReference(f *testing.F) {
	f.Add([]byte{2, 0b0110, 0, 0, 0, 1, 0, 1, 4, 0, 0, 0, 0, 1})
	f.Add([]byte{0, 0b0001, 9, 9, 0, 9, 9, 1})
	f.Add([]byte{4, 0b111111, 1, 2, 0, 3, 4, 1, 1, 2, 0, 250, 250, 1})
	rng := rand.New(rand.NewSource(7))
	long := make([]byte, 2, 2+3*300)
	long[0], long[1] = 3, 0b101101
	for i := 0; i < 300; i++ {
		long = append(long, byte(rng.Intn(64)), byte(rng.Intn(4)), byte(rng.Intn(256)))
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		setBits := uint32(data[0]) % 5
		const blockLg = 2
		assocs := fuzzAssocs(data[1])
		data = data[2:]

		for _, ring := range []bool{false, true} {
			s, sc := newTestStack(setBits, blockLg, assocs, ring)
			refs := make([]*refCache, len(s.members))
			for i, m := range s.members {
				m.missBits = newBitset()
				refs[i] = newRefCache(setBits, blockLg, m.assoc)
			}
			for j := 0; j+3 <= len(data) && j/3 < blockEvents; j += 3 {
				addr := (uint32(data[j]) | uint32(data[j+1])<<8) << 2
				isStore := data[j+2]&1 != 0
				s.access(addr, j/3, isStore, true)
				for _, rc := range refs {
					rc.access(addr, j/3, isStore)
				}
			}
			for i, m := range s.members {
				rc := refs[i]
				if m.misses != rc.misses || m.loadMisses != rc.loadMisses || m.storeMisses != rc.storeMisses {
					t.Fatalf("ring=%v assoc=%d sets=%d: stack (miss=%d load=%d store=%d) != reference (miss=%d load=%d store=%d)",
						ring, m.assoc, 1<<setBits, m.misses, m.loadMisses, m.storeMisses, rc.misses, rc.loadMisses, rc.storeMisses)
				}
				for w := range m.missBits {
					if m.missBits[w] != rc.missBits[w] {
						t.Fatalf("ring=%v assoc=%d: missBits word %d: stack %x != reference %x",
							ring, m.assoc, w, m.missBits[w], rc.missBits[w])
					}
				}
			}
			putSimScratch(sc)
		}
	})
}

// fuzzTrace decodes an adversarial event stream from fuzz bytes, in the
// spirit of randomTrace but byte-driven: arbitrary operation classes,
// flags, addresses and dependency distances, including values the real
// generator never emits.
func fuzzTrace(data []byte) *trace.Trace {
	tr := &trace.Trace{}
	pc := uint32(0x1000)
	for i := 0; i+6 <= len(data) && i/6 < 20000; i += 6 {
		b := data[i : i+6]
		op := isa.Op(int(b[0]) % isa.NumOps)
		ev := trace.Event{
			PC:       pc,
			Addr:     uint32(b[1]) | uint32(b[2])<<8,
			Op:       uint8(op),
			DistLoad: trace.NoDist,
			DistFU:   trace.NoDist,
		}
		switch b[3] % 4 {
		case 0:
			pc += 4
		case 1:
			pc = 0x1000 + uint32(b[4])*4
		case 2:
			ev.DistLoad = b[4]
		case 3:
			ev.DistFU = b[4]
			ev.FULat = b[5]
		}
		ev.Flags = b[5] & (trace.FlagTaken | trace.FlagDepPrev | trace.FlagCond)
		tr.Events = append(tr.Events, ev)
		tr.OpCount[op]++
		if op.IsMem() {
			tr.MemOps++
		}
		if ev.Flags&trace.FlagCond != 0 {
			tr.Branches++
		}
	}
	tr.RegReads = uint64(len(tr.Events))
	tr.RegWrites = uint64(len(tr.Events) / 2)
	tr.Runs = 1
	return tr
}

// FuzzSimulateBatchVsSimulate fuzzes the end-to-end equivalence: an
// arbitrary event sequence replayed through the batched one-pass engine
// must produce, for every architecture of a base+extended sample,
// exactly the Result of per-configuration Simulate. The first byte seeds
// the architecture sample so geometry sharing patterns vary too.
func FuzzSimulateBatchVsSimulate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	rng := rand.New(rand.NewSource(3))
	seq := make([]byte, 1, 1+6*400)
	for i := 0; i < 6*400; i++ {
		seq = append(seq, byte(rng.Intn(256)))
	}
	f.Add(seq)
	f.Add([]byte{7, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		rng := rand.New(rand.NewSource(int64(data[0])))
		archs := sampleArchs(rng, 4, true)
		tr := fuzzTrace(data[1:])
		batch := SimulateBatch(tr, archs)
		for i, cfg := range archs {
			if want := Simulate(tr, cfg); batch[i] != want {
				t.Fatalf("config %d (%s):\n batch %+v\n  want %+v", i, cfg.String(), batch[i], want)
			}
		}
		// The width-2 closed forms must agree with the per-event oracle,
		// and any worker count must agree with the sequential pass.
		oracle := simulateBatch(tr, archs, 1, true)
		for i := range archs {
			if oracle[i] != batch[i] {
				t.Fatalf("config %d (%s): per-event oracle differs from closed form:\n  got %+v\n want %+v",
					i, archs[i].String(), oracle[i], batch[i])
			}
		}
		for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
			par := SimulateBatchWith(tr, archs, workers)
			for i := range archs {
				if par[i] != batch[i] {
					t.Fatalf("workers=%d config %d (%s): parallel differs from sequential:\n  got %+v\n want %+v",
						workers, i, archs[i].String(), par[i], batch[i])
				}
			}
		}
	})
}
