package cpu

import (
	"fmt"
	"math/rand"
	"testing"
)

// newTestStack builds a finalized lruStack over its own scratch arena with
// one member per associativity in assocs.
func newTestStack(setBits, blockLg uint32, assocs []int, ring bool) (*lruStack, *simScratch) {
	sc := getSimScratch()
	s := &lruStack{setMask: uint32(1)<<setBits - 1, blockLg: blockLg, setBits: setBits, forceRing: ring}
	for _, a := range assocs {
		s.member(a)
	}
	s.finalize(sc)
	return s, sc
}

// mruOrder extracts a set's tags in MRU->LRU order from either
// representation - the state both encodings must agree on step for step.
func (s *lruStack) mruOrder(set uint32) []uint32 {
	buf := s.lines[int(set)*s.depth : int(set)*s.depth+s.depth]
	out := make([]uint32, s.depth)
	if s.perm != nil {
		p := s.perm[set]
		for i := range out {
			out[i] = buf[p>>(4*i)&0xF]
		}
		return out
	}
	h := int(s.head[set])
	for i := range out {
		out[i] = buf[(h+i)&(s.depth-1)]
	}
	return out
}

// memberCounts flattens the per-member counters for comparison.
func (s *lruStack) memberCounts() []uint64 {
	var out []uint64
	for _, m := range s.members {
		out = append(out, m.misses, m.loadMisses, m.storeMisses)
	}
	return out
}

// assocsUpTo returns every power-of-two associativity <= depth, the
// maximally discriminating member set: together the members resolve the
// hit depth to its power-of-two bucket, and the MRU order pins the rest.
func assocsUpTo(depth int) []int {
	var out []int
	for a := 1; a <= depth; a <<= 1 {
		out = append(out, a)
	}
	return out
}

// runPair drives the same access through a perm-word stack and a ring
// stack and asserts identical member counters and identical MRU order in
// the touched set after every single access.
type stackPair struct {
	t          *testing.T
	perm, ring *lruStack
	scP, scR   *simScratch
}

func newStackPair(t *testing.T, setBits, blockLg uint32, depth int) *stackPair {
	assocs := assocsUpTo(depth)
	p, scP := newTestStack(setBits, blockLg, assocs, false)
	r, scR := newTestStack(setBits, blockLg, assocs, true)
	if p.perm == nil {
		t.Fatalf("depth %d stack did not take the permutation-word mode", depth)
	}
	if r.perm != nil {
		t.Fatal("forceRing stack took the permutation-word mode")
	}
	return &stackPair{t: t, perm: p, ring: r, scP: scP, scR: scR}
}

func (sp *stackPair) close() {
	putSimScratch(sp.scP)
	putSimScratch(sp.scR)
}

func (sp *stackPair) access(addr uint32, isStore bool, ctx string) {
	sp.perm.access(addr, 0, isStore, true)
	sp.ring.access(addr, 0, isStore, true)
	set := (addr >> sp.perm.blockLg) & sp.perm.setMask
	po, ro := sp.perm.mruOrder(set), sp.ring.mruOrder(set)
	for i := range po {
		if po[i] != ro[i] {
			sp.t.Fatalf("%s: MRU order diverged in set %d at depth %d: perm %v ring %v",
				ctx, set, i, po, ro)
		}
	}
	pc, rc := sp.perm.memberCounts(), sp.ring.memberCounts()
	for i := range pc {
		if pc[i] != rc[i] {
			sp.t.Fatalf("%s: member counters diverged: perm %v ring %v", ctx, pc, rc)
		}
	}
}

// permutations enumerates all orderings of n elements (Heap's algorithm),
// invoking f with each.
func permutations(n int, f func(p []int)) {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			f(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	if n > 0 {
		rec(n)
	}
}

// TestPermStackMatchesRingExhaustive pins the nibble arithmetic of the
// permutation-word encoding against the ring it replaced, state for
// state: for every (setBits, assoc in {1,2,4,8}) geometry, every
// permutation of depth distinct tags is driven twice through one set -
// the first pass fills the set and the second probes every recency depth
// of a full set - asserting identical MRU order and identical per-member
// miss counters after each access. Small enough to enumerate completely
// (8! permutations at depth 8), so any probe, rotate or eviction
// disagreement between the encodings has a minimal witness here.
func TestPermStackMatchesRingExhaustive(t *testing.T) {
	const blockLg = 2
	for _, setBits := range []uint32{0, 1, 2} {
		for _, depth := range []int{1, 2, 4, 8} {
			permutations(depth, func(order []int) {
				sp := newStackPair(t, setBits, blockLg, depth)
				defer sp.close()
				ctx := fmt.Sprintf("setBits=%d depth=%d order=%v", setBits, depth, order)
				// Interleave a second set's accesses so the lastLine
				// fast path cannot linearise the sequence away.
				other := uint32(1) % (sp.perm.setMask + 1)
				for pass := 0; pass < 2; pass++ {
					for i, tg := range order {
						addr := uint32(tg+1) << (setBits + blockLg)
						sp.access(addr, i%2 == 1, ctx)
						if sp.perm.setMask > 0 {
							sp.access(addr|other<<blockLg, false, ctx)
						}
					}
				}
			})
		}
	}
}

// TestPermStackAllSequences complements the permutation sweep with every
// access sequence of length 6 over an alphabet one tag larger than the
// stack depth, so hits at every depth, repeated probes of one line and
// conflict evictions of a full set all occur, including patterns a
// permutation (distinct tags) cannot express.
func TestPermStackAllSequences(t *testing.T) {
	const blockLg, seqLen = 2, 6
	for _, depth := range []int{1, 2, 4} {
		alphabet := depth + 1
		total := 1
		for i := 0; i < seqLen; i++ {
			total *= alphabet
		}
		for code := 0; code < total; code++ {
			sp := newStackPair(t, 1, blockLg, depth)
			c := code
			for i := 0; i < seqLen; i++ {
				tg := c % alphabet
				c /= alphabet
				addr := uint32(tg+1)<<(1+blockLg) | uint32(i%2)<<blockLg
				sp.access(addr, tg%2 == 0, fmt.Sprintf("depth=%d code=%d step=%d", depth, code, i))
			}
			sp.close()
		}
	}
}

// benchmarkLRUAccess isolates the shared stack's probe/rotate on a
// locality-heavy synthetic address stream (mostly short sequential runs
// with occasional jumps, like real fetch/data streams), so the old ring
// and the new permutation word can be compared on identical work:
//
//	go test -run NONE -bench BenchmarkLRUAccess ./internal/cpu
func benchmarkLRUAccess(b *testing.B, depth int, ring bool) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 15
	addrs := make([]uint32, n)
	var addr uint32
	for i := range addrs {
		if rng.Intn(8) == 0 {
			addr = uint32(rng.Intn(1<<18)) &^ 3
		} else {
			addr += 4 << uint(rng.Intn(3))
		}
		addrs[i] = addr
	}
	s, sc := newTestStack(6, 5, assocsUpTo(depth), ring)
	defer putSimScratch(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.access(addrs[i&(n-1)], 0, false, true)
	}
}

func BenchmarkLRUAccess(b *testing.B) {
	for _, depth := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("perm/depth%d", depth), func(b *testing.B) { benchmarkLRUAccess(b, depth, false) })
		b.Run(fmt.Sprintf("ring/depth%d", depth), func(b *testing.B) { benchmarkLRUAccess(b, depth, true) })
	}
	// Past permMaxDepth only the ring exists; keep its number visible so
	// a future word encoding for deep stacks has a baseline.
	b.Run("ring/depth64", func(b *testing.B) { benchmarkLRUAccess(b, 64, true) })
}

// TestPermStackDeepFallback pins the mode choice: a family whose deepest
// member exceeds permMaxDepth must keep the ring, and mixed-depth
// families up to 16 take the word.
func TestPermStackDeepFallback(t *testing.T) {
	deep, sc := newTestStack(2, 5, []int{4, 32}, false)
	if deep.perm != nil {
		t.Errorf("depth-32 stack took the permutation-word mode")
	}
	putSimScratch(sc)
	wide, sc2 := newTestStack(2, 5, []int{4, 16}, false)
	if wide.perm == nil {
		t.Errorf("depth-16 stack did not take the permutation-word mode")
	}
	putSimScratch(sc2)
}
