// Batched multi-architecture replay: SimulateBatch streams the trace's
// event array once and advances the state of every requested
// microarchitecture together, instead of one full replay per
// configuration. Results are bit-identical to per-configuration Simulate.
//
// Four structural facts of the model make the batch engine fast:
//
//  1. The trace is microarchitecture-independent, so per-event decode work
//     (operation class, flags, dependency distances) is shared by all
//     configurations instead of repeated N times. So is the fetch
//     bookkeeping: the previous fetch line depends only on the block size,
//     and the pending redirect splits into a shared part (taken branches,
//     unconditional control) plus a per-BTB-geometry part (mispredicted
//     not-taken branches), which the engine encodes as per-block bitsets.
//
//  2. Cache behaviour depends only on geometry, and true-LRU caches obey
//     the inclusion property: for a fixed set count and block size, an
//     access that hits at LRU-stack depth k hits exactly the members with
//     associativity > k. One MRU-ordered tag stack per (set count, block
//     size) therefore resolves hit/miss for every sampled associativity at
//     once (Table 2 has far fewer unique cache geometries than the 200
//     sampled architectures). BTB prediction state is likewise shared per
//     BTB geometry.
//
//  3. For single-issue configurations (the whole Table 2 base space) every
//     instruction issues in exactly one cycle plus stalls, and each stall
//     source is a shared per-event count times a per-configuration
//     penalty, so cycles reduce to closed forms over group counters - the
//     only per-event per-configuration term, the dependency stall,
//     collapses onto a small (load-distance, FU-stall) histogram built in
//     the same pass. Dual-issue configurations (§7 extended space) reduce
//     the same way: the pairing slot is the one extra term, and it
//     factors into a configuration-independent pairability bit (dep-prev
//     flag, mem-after-mem, after-control - one shared bitset) and a
//     per-(fetch stream, load-use latency) eligibility bit (no fetch
//     this cycle, no dependency stall), so the paired count is a
//     run-length scan over an eligibility bitset shared by every width-2
//     configuration with that stream and latency: within a maximal run
//     of eligible events the pairing alternates, contributing ceil(L/2)
//     pairs. Widths the closed form does not cover (>2, never sampled)
//     keep a full per-event replay, which also serves as the oracle the
//     equivalence tests drive against the closed forms.
//
//  4. The pass is cache-blocked: the trace is consumed in blocks of
//     blockEvents events, and each shared structure sweeps a whole block
//     before the next one runs, so its hot tag lines stay cache-resident
//     for the duration of the sweep - interleaving all geometries at
//     every event would instead evict everything continuously. The block
//     itself is decoded once into dense, prefetch-friendly lists (packed
//     PCs, memory records, branch records) that the sweeps stream over,
//     and the trace is still read from main memory once.
//
// The per-block sweeps are independent within three dependency waves, so
// SimulateBatchWith can fan them over a worker pool on multi-core
// machines - bit-identical under any schedule; SimulateBatch keeps the
// sequential single-core fast path.
package cpu

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"portcc/internal/bpred"
	"portcc/internal/cache"
	"portcc/internal/isa"
	"portcc/internal/sched"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// blockEvents is the tile size of the pass: big enough to amortise the
// per-block sweeps, small enough that a block of events plus the bitset
// scratch stays cache-resident. Must be a multiple of 64.
const blockEvents = 32768

const blockWords = blockEvents / 64

// bitset is a fixed-capacity per-block bit vector indexed by event
// position within the block.
type bitset []uint64

func newBitset() bitset { return make(bitset, blockWords) }

// simScratch recycles the batch engine's per-call working state. A
// generation sweep calls SimulateBatchWith once per compiled trace with
// the identical architecture sample, so the setup allocates the same
// sequence of arrays every time; replaying that sequence from a pooled
// arena (zeroing in place of allocating) keeps the engine allocation-flat
// like the cache/bpred pools keep Simulate. A call whose sequence differs
// (another arch batch, a fuzzed geometry set) just re-sizes the mismatched
// slots and converges.
type simScratch struct {
	st  []batchState
	u64 slots[uint64]
	u32 slots[uint32]
	u8  slots[uint8]
}

var simScratchPool = sync.Pool{New: func() any { return new(simScratch) }}

func getSimScratch() *simScratch {
	sc := simScratchPool.Get().(*simScratch)
	sc.u64.i, sc.u32.i, sc.u8.i = 0, 0, 0
	return sc
}

func putSimScratch(sc *simScratch) { simScratchPool.Put(sc) }

// stateBuf returns a zeroed per-configuration state array.
func (sc *simScratch) stateBuf(n int) []batchState {
	if cap(sc.st) < n {
		sc.st = make([]batchState, n)
	}
	st := sc.st[:n]
	clear(st)
	return st
}

// slots replays one element type's allocation sequence: the i-th get of
// a call reuses the i-th slot of the previous call, resizing a slot
// whose capacity no longer fits.
type slots[T any] struct {
	bufs [][]T
	i    int
}

// get replays one allocation; zero clears the reused buffer (callers
// that fully overwrite or append from zero length skip the clear; fresh
// allocations are zero already).
func (s *slots[T]) get(n int, zero bool) []T {
	var b []T
	if s.i < len(s.bufs) {
		b = s.bufs[s.i]
		if cap(b) < n {
			b = make([]T, n)
			s.bufs[s.i] = b
			zero = false
		}
		b = b[:n]
		if zero {
			clear(b)
		}
	} else {
		b = make([]T, n)
		s.bufs = append(s.bufs, b)
	}
	s.i++
	return b
}

// bitset returns a zeroed per-block bit vector from the arena.
func (sc *simScratch) bitset() bitset { return bitset(sc.u64.get(blockWords, true)) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) get(i int) bool { return b[i>>6]>>(i&63)&1 != 0 }

func (b bitset) clearWords(n int) {
	for i := 0; i < n; i++ {
		b[i] = 0
	}
}

// cacheMember is one concrete cache geometry served by a shared lruStack:
// its associativity selects how deep in the stack an access may hit.
type cacheMember struct {
	assoc       int
	misses      uint64
	loadMisses  uint64 // data-cache members: misses split by op for the
	storeMisses uint64 // store-buffer penalty
	// missBits records the positions of this member's misses within the
	// current block; allocated only when multi-issue configurations need
	// per-event outcomes.
	missBits bitset
}

// lruStack simulates a family of set-associative true-LRU caches sharing a
// set count and block size. The depth at which an access hits the per-set
// MRU stack decides hit/miss for every member at once, and an access only
// visits the members it misses in (sorted ascending, the scan stops at the
// first member deep enough to hit).
//
// Two recency representations back the stack, chosen by depth:
//
//   - depth <= permMaxDepth: tags live at fixed ways and the MRU->LRU
//     order is a permutation word - one 4-bit way nibble per recency
//     position packed into a uint64 per set. A hit probe is a scan of at
//     most depth contiguous tags plus a constant-time nibble search of
//     the word; the rotate-to-MRU and the miss eviction are a shift/mask
//     each, so no tag ever moves on a hit (the ring rotated up to depth
//     tags per access, the dominant cost of the replay profile).
//
//   - deeper stacks keep the circular MRU tag list: a 32- or 64-deep
//     order does not fit a word, and the ring's probe scans in recency
//     order, which high-locality traces cut short early.
//
// Both orderings evolve identically (proved state-for-state by
// TestPermStackMatchesRingExhaustive and fuzzed differentially against a
// naive per-member model by FuzzLRUStackVsReference).
type lruStack struct {
	lines []uint32 // sets x depth tags: fixed ways (perm) or MRU ring
	head  []uint8  // ring: per-set index of the MRU entry within its ring
	fill  []uint8  // ring: valid entries per set
	// perm, in permutation-word mode, holds each set's MRU->LRU order:
	// nibble i is the way index of the i-th most recent line.
	perm     []uint64
	depth    int  // largest member associativity (a power of two)
	permTop  uint // shift of the LRU nibble: (depth-1)*4
	permMask uint64
	setMask  uint32
	blockLg  uint32
	setBits  uint32
	lastLine uint32 // line of the most recent access (same-line fast path)
	members  []*cacheMember
	// forceRing pins the ring representation regardless of depth; the
	// equivalence tests and benchmarks use it to drive both encodings
	// over one geometry.
	forceRing bool
}

// permMaxDepth is the deepest stack a permutation word can order: 16
// way nibbles of 4 bits fill the uint64.
const permMaxDepth = 16

// nibMask[k] masks the low k nibbles of a permutation word.
var nibMask = func() (m [permMaxDepth + 1]uint64) {
	for i := 1; i <= permMaxDepth; i++ {
		m[i] = m[i-1]<<4 | 0xF
	}
	return
}()

// permIdentity is the initial MRU->LRU order: way depth-1-i at position
// i, so misses - which always evict the LRU nibble - allocate ways in
// ascending index order. Valid ways therefore always form a prefix of the
// way array, which is what lets the probe's fixed-order tag scan stop at
// the first invalid way.
func permIdentity(depth int) uint64 {
	var p uint64
	for i := 0; i < depth; i++ {
		p |= uint64(depth-1-i) << (4 * i)
	}
	return p
}

// member returns the member with the given associativity, creating it on
// first use. Must not be called after finalize.
func (s *lruStack) member(assoc int) *cacheMember {
	for _, m := range s.members {
		if m.assoc == assoc {
			return m
		}
	}
	m := &cacheMember{assoc: assoc}
	s.members = append(s.members, m)
	return m
}

// finalize sorts members and sizes the tag store once all are registered;
// the backing arrays come zeroed from the call's scratch arena. Stacks up
// to permMaxDepth deep take the permutation-word representation, deeper
// ones the ring.
func (s *lruStack) finalize(sc *simScratch) {
	sort.Slice(s.members, func(a, b int) bool { return s.members[a].assoc < s.members[b].assoc })
	s.depth = s.members[len(s.members)-1].assoc
	sets := int(s.setMask) + 1
	s.lines = sc.u32.get(sets*s.depth, true)
	s.lastLine = ^uint32(0)
	if s.depth <= permMaxDepth && !s.forceRing {
		s.perm = sc.u64.get(sets, false)
		ident := permIdentity(s.depth)
		for i := range s.perm {
			s.perm[i] = ident
		}
		s.permTop = uint(s.depth-1) * 4
		s.permMask = nibMask[s.depth]
		s.head, s.fill = nil, nil
		return
	}
	s.perm = nil
	s.head = sc.u8.get(sets, true)
	s.fill = sc.u8.get(sets, true)
}

// access touches addr at block position j, updates recency, and records
// the outcome in the members the hit depth reaches. Both representations
// live in this one function on purpose: it is the hottest call in the
// whole replay profile and too large to inline, so a probe must not pay
// a second call hop - and each stack is mono-mode, so the perm branch
// predicts perfectly.
//
// Permutation-word mode: tags sit at fixed ways and only the recency
// word changes on a hit. The probe scans the tags in way order - the
// loads carry no dependency on each other, unlike a recency-order walk,
// so they pipeline - and resolves the hit depth with a constant-time
// nibble search of the word. Valid ways always form a prefix of the way
// array (misses allocate ways in index order, see permIdentity), so the
// scan stops at the first invalid way (zero tag, which no real tag
// collides with) without a fill count, and the LRU nibble of a
// not-yet-full set is always a free way.
//
// Ring mode: invalid (zero) tags only ever occupy the tail of a set's
// list, beyond its fill count.
func (s *lruStack) access(addr uint32, j int, isStore, isData bool) {
	line := addr >> s.blockLg
	if line == s.lastLine {
		// The previous access put this very line at the front of its
		// set, so this is an MRU hit with no state to update.
		return
	}
	s.lastLine = line
	set := line & s.setMask
	tag := (line >> s.setBits) + 1 // +1 so 0 means invalid, collision-free
	base := int(set) * s.depth
	buf := s.lines[base : base+s.depth]
	hitDepth := s.depth
	if s.perm != nil {
		p := s.perm[set]
		if buf[p&0xF] == tag {
			return // MRU hit: no reordering, no member can miss at depth 0
		}
		w := -1
		for i, t := range buf {
			if t == tag {
				w = i
				break
			}
			if t == 0 {
				break // invalid prefix end reached: not resident
			}
		}
		if w >= 0 {
			// Hit at depth d = the position of way w's nibble: shift the
			// d more-recent nibbles back by one and install w at the
			// front - no tag moves.
			d := nibblePos(p, uint64(w))
			s.perm[set] = p&^nibMask[d+1] | p&nibMask[d]<<4 | uint64(w)
			hitDepth = d
		} else {
			// Miss: evict the LRU way (top nibble) and rotate it to MRU
			// - one shift/mask instead of the ring's head walk.
			v := p >> s.permTop
			s.perm[set] = (p<<4 | v) & s.permMask
			buf[v] = tag
		}
	} else {
		h := int(s.head[set]) & (len(buf) - 1)
		if buf[h] == tag {
			return // MRU hit: no reordering, no member can miss at depth 0
		}
		n := int(s.fill[set])
		d := 1
		for d < n && buf[(h+d)&(len(buf)-1)] != tag {
			d++
		}
		if d < n {
			// Hit at depth d: rotate the d entries in front of it back
			// by one and install the line at the MRU slot.
			for i := d; i > 0; i-- {
				buf[(h+i)&(len(buf)-1)] = buf[(h+i-1)&(len(buf)-1)]
			}
			buf[h] = tag
			hitDepth = d
		} else {
			// Miss: the ring makes insertion O(1) - step the head back
			// onto the LRU slot (evicting it when the set is full).
			if n < s.depth {
				s.fill[set] = uint8(n + 1)
			}
			h = (h - 1) & (len(buf) - 1)
			buf[h] = tag
			s.head[set] = uint8(h)
		}
	}
	for _, m := range s.members {
		if m.assoc > hitDepth {
			break
		}
		m.misses++
		if isData {
			if isStore {
				m.storeMisses++
			} else {
				m.loadMisses++
			}
		}
		if m.missBits != nil {
			m.missBits.set(j)
		}
	}
}

// btbGroup is the shared branch predictor state for one BTB geometry: the
// predict/resolve stream is the trace's conditional branches, identical
// for every configuration, so the misprediction sequence depends on the
// geometry alone. The table packs each entry's tag, 2-bit counter and LRU
// stamp into one word - tag<<32 | ctr<<30 | stamp - so a whole set of up
// to eight ways occupies a single cache line, where bpred.BTB's parallel
// arrays would touch three. Behaviour is exactly bpred.BTB's.
type btbGroup struct {
	entries     []uint64
	assoc       int
	setMask     uint32
	setBits     uint32
	stamp       uint64 // 30-bit LRU clock (a trace holds far fewer branches)
	mispredicts uint64
	// dev marks the positions that raise a geometry-specific fetch
	// redirect: mispredicted not-taken branches refetch the fall-through
	// path here while geometries that predicted correctly stream on.
	dev bitset
	// mispredBits records this block's mispredictions (multi-issue only).
	mispredBits bitset
}

const (
	btbTagShift    = 32
	btbCtrShift    = 30
	btbCtrMask     = 3 << btbCtrShift
	btbStampMask   = 1<<btbCtrShift - 1
	btbCtrInit     = 2 << btbCtrShift
	btbCtrTakenBit = 2 << btbCtrShift // counter >= 2 predicts taken
)

// step performs the fetch-time lookup and resolution of the branch at pc
// in one set scan, mirroring bpred.BTB.Step bit for bit: miss predicts
// not-taken, hits predict by the counter, taken branches allocate
// weakly-taken entries, and the LRU victim is the lowest stamp.
func (g *btbGroup) step(pc uint32, taken bool) bool {
	idx := pc >> 2
	set := idx & g.setMask
	tag := uint64(idx>>g.setBits) + 1
	base := int(set) * g.assoc
	buf := g.entries[base : base+g.assoc]
	slot := -1
	victim := 0
	oldest := buf[0] & btbStampMask
	for i := 0; i < len(buf); i++ {
		e := buf[i]
		if e>>btbTagShift == tag {
			slot = i
			break
		}
		if s := e & btbStampMask; s < oldest {
			oldest = s
			victim = i
		}
	}
	pred := false
	g.stamp++
	if slot >= 0 {
		e := buf[slot]
		pred = e&btbCtrTakenBit != 0
		ctr := e & btbCtrMask
		if taken {
			if ctr < btbCtrMask {
				ctr += 1 << btbCtrShift
			}
		} else if ctr > 0 {
			ctr -= 1 << btbCtrShift
		}
		buf[slot] = e&^(btbCtrMask|btbStampMask) | ctr | g.stamp
	} else if taken {
		buf[victim] = tag<<btbTagShift | btbCtrInit | g.stamp
	}
	return pred != taken
}

// icStream is one fetch-decision stream: which events access the
// instruction cache depends on the redirect history (through the BTB
// geometry) and the line size, so streams are keyed by (BTB geometry, IL1
// block size). A stream never touches cache state itself - a redirect to
// an unchanged fetch line refetches the line the cache just served, which
// is a guaranteed MRU hit that neither reorders the LRU stack nor misses,
// so every state-changing access happens at a line-change position. Those
// positions are BTB-independent, which is what lets the tag stacks merge
// across BTB geometries (icStack below) while streams reduce to popcount
// bookkeeping.
type icStream struct {
	btbIdx     int // index into the BTB group list (redirect deviations)
	lineIdx    int // index into the shared line trackers (per block size)
	accesses   uint64
	redirects  uint64
	redirCarry bool // pending redirect entering the current block
	// Per-block scratch: redirBits is the pending redirect at each
	// position (the previous position's outcome shifted in), accBits the
	// fetch decision redirBits | lineChanged.
	redirBits bitset
	accBits   bitset
}

// icStack is one merged instruction-cache tag stack, keyed by (IL1 sets,
// IL1 block) alone: its access sequence is exactly the line-change
// positions of its block size, shared by every BTB geometry.
type icStack struct {
	stack   lruStack
	lineIdx int
}

// lineTrack follows the fetch line for one IL1 block size. The previous
// line is configuration-independent: whether or not a stream accessed the
// cache at an event, its last fetched line ends up being that event's.
type lineTrack struct {
	blockLg  uint32
	prevLine uint32
	changed  bitset
}

// batchState is the per-configuration view: indices into the shared
// groups plus the derived latencies and penalties of Simulate. The cycle
// accumulators are used only on the multi-issue path; single-issue
// configurations are assembled in closed form from the group counters.
type batchState struct {
	cfg            uarch.Config
	width          int
	dl1Lat         int
	icPenalty      uint64
	dcPenalty      uint64
	stPenalty      uint64
	redirectBubble uint64
	icIdx          int
	btbIdx         int
	pgIdx          int // pairing group (width-2 closed form), -1 otherwise
	icm            *cacheMember
	dcm            *cacheMember

	cycles       uint64
	fetchStalls  uint64
	memStalls    uint64
	depStalls    uint64
	branchStalls uint64
	decodes      uint64
	slotOpen     bool
}

// pairGroup accumulates the paired-issue count shared by every width-2
// configuration with the same fetch stream and load-use latency: those
// two inputs are all that distinguishes their pairing-eligibility
// bitsets. The scan decomposes each block's eligibility word into
// maximal runs; a run of L consecutive eligible events pairs ceil(L/2)
// of them (the slot alternates open/closed through the run), and open
// carries a run across word and block boundaries, where the slot state
// persists.
type pairGroup struct {
	icIdx  int
	latIdx int // index into the per-latency load-stall bitsets
	pairs  uint64
	open   uint64 // length of the eligible run entering the next word
}

type icKey struct {
	btbSize, btbAssoc int
	blockLg           uint32
}

type icStackKey struct{ setBits, blockLg uint32 }

type dcKey struct{ setBits, blockLg uint32 }

type btbKey struct{ entries, assoc int }

// btbStep advances one BTB geometry over one packed conditional-branch
// record (pc | position<<32 | taken<<63).
func btbStep(g *btbGroup, cp uint64) {
	pc := uint32(cp)
	j := int(cp >> 32 & 0x7fffffff)
	taken := cp>>63 != 0
	if g.step(pc, taken) {
		g.mispredicts++
		if g.mispredBits != nil {
			g.mispredBits.set(j)
		}
		if !taken {
			g.dev.set(j)
		}
	}
}

// log2u32 is the integer base-2 logarithm of a power of two.
func log2u32(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// nibblePos returns the position of the nibble holding value w within the
// permutation word p. It is the find-first-zero-nibble trick applied to
// p XOR (w repeated into every nibble): subtraction borrows can only
// forge zero-markers above the first true zero nibble, and w occurs in p
// exactly once - below any spurious zero nibbles past the stack depth -
// so the lowest marker is exact.
func nibblePos(p, w uint64) int {
	x := p ^ w*0x1111111111111111
	return bits.TrailingZeros64((x-0x1111111111111111)&^x&0x8888888888888888) >> 2
}

// geomBits decomposes a validated cache geometry into set and block bits,
// panicking on invalid geometry exactly as Simulate's MustNew would.
func geomBits(sizeBytes, assoc, blockBytes int) (setBits, blockLg uint32) {
	if err := cache.CheckGeometry(sizeBytes, assoc, blockBytes); err != nil {
		panic(err)
	}
	numSets := sizeBytes / (assoc * blockBytes)
	for v := numSets; v > 1; v >>= 1 {
		setBits++
	}
	for v := blockBytes; v > 1; v >>= 1 {
		blockLg++
	}
	return setBits, blockLg
}

// fsDim spans every possible functional-unit stall value: FULat and DistFU
// are bytes, so FULat-DistFU < 256.
const fsDim = 256

// parallelSweep runs f(i) for i in [0, n) over up to workers goroutines
// (resolved through the shared sched.Workers contract; <=1 runs inline
// with zero overhead). Tasks must touch pairwise-disjoint state, so the
// schedule can affect only wall-clock time, never results.
func parallelSweep(workers, n int, f func(i int)) {
	workers = sched.Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// SimulateBatch replays the trace on every configuration in one
// cache-blocked pass over the event array and returns one Result per
// configuration, in input order. Each Result is bit-identical to
// Simulate(tr, cfgs[i]).
func SimulateBatch(tr *trace.Trace, cfgs []uarch.Config) []Result {
	return SimulateBatchWith(tr, cfgs, 1)
}

// SimulateBatchWith is SimulateBatch with the independent per-geometry
// sweeps of each block - line trackers, BTB groups and data-cache stacks
// first, then fetch streams and instruction-cache stacks, then the
// multi-issue states - fanned over a bounded worker pool (0 =
// GOMAXPROCS). Sweeps within a wave touch disjoint state and waves
// barrier on their data dependencies, so any worker count and any
// schedule is bit-identical to the sequential pass; parallelism here
// multiplies with the program-level pools on multi-core machines.
// Workers <= 1 (SimulateBatch's default) keeps the sequential fast path.
func SimulateBatchWith(tr *trace.Trace, cfgs []uarch.Config, workers int) []Result {
	return simulateBatch(tr, cfgs, workers, false)
}

// simulateBatch is the engine behind SimulateBatchWith. wideOracle
// forces every multi-issue configuration onto the per-event replay path
// instead of the width-2 closed forms - the equivalence tests use it to
// drive both models over one trace and demand bit-identical results.
func simulateBatch(tr *trace.Trace, cfgs []uarch.Config, workers int, wideOracle bool) []Result {
	if len(cfgs) == 0 {
		return nil
	}
	sc := getSimScratch()
	defer putSimScratch(sc)
	states := sc.stateBuf(len(cfgs))

	// Shared state, deduplicated by geometry.
	icIndex := map[icKey]int{}
	icStackIndex := map[icStackKey]int{}
	dcIndex := map[dcKey]int{}
	btbIndex := map[btbKey]int{}
	lineIndex := map[uint32]int{}
	var ics []icStream
	var icStacks []*icStack
	var dcs []*lruStack
	var btbs []btbGroup
	var lineTracks []lineTrack
	var wide []*batchState // multi-issue configurations, per-event path
	maxDl1 := 0            // deepest load-use latency among single-issue configs
	maxDl1W := 0           // deepest load-use latency among closed-form width-2 configs

	for i, cfg := range cfgs {
		st := &states[i]
		st.cfg = cfg
		st.width = cfg.Width
		if st.width < 1 {
			st.width = 1
		}
		il1Lat := cfg.IL1Latency()
		st.dl1Lat = cfg.DL1Latency()
		st.icPenalty = uint64(cfg.MissPenalty(cfg.IL1Block))
		st.dcPenalty = uint64(cfg.MissPenalty(cfg.DL1Block))
		st.stPenalty = st.dcPenalty / 2
		if st.stPenalty < 1 {
			st.stPenalty = 1
		}
		st.redirectBubble = uint64(il1Lat)

		bk := btbKey{cfg.BTBSize, cfg.BTBAssoc}
		bi, ok := btbIndex[bk]
		if !ok {
			// Geometry rules are bpred's; reject bad input the same way
			// Simulate's MustNew would.
			if _, err := bpred.New(cfg.BTBSize, cfg.BTBAssoc); err != nil {
				panic(err)
			}
			sets := cfg.BTBSize / cfg.BTBAssoc
			bi = len(btbs)
			btbs = append(btbs, btbGroup{
				entries: sc.u64.get(cfg.BTBSize, true),
				assoc:   cfg.BTBAssoc,
				setMask: uint32(sets - 1),
				setBits: log2u32(uint32(sets)),
				dev:     sc.bitset(),
			})
			btbIndex[bk] = bi
		}
		st.btbIdx = bi

		iSet, iBlk := geomBits(cfg.IL1Size, cfg.IL1Assoc, cfg.IL1Block)
		li, ok := lineIndex[iBlk]
		if !ok {
			li = len(lineTracks)
			lineTracks = append(lineTracks, lineTrack{
				blockLg: iBlk, prevLine: ^uint32(0), changed: sc.bitset(),
			})
			lineIndex[iBlk] = li
		}
		ik := icKey{cfg.BTBSize, cfg.BTBAssoc, iBlk}
		ii, ok := icIndex[ik]
		if !ok {
			ii = len(ics)
			ics = append(ics, icStream{
				btbIdx: bi, lineIdx: li, redirCarry: true,
				redirBits: sc.bitset(), accBits: sc.bitset(),
			})
			icIndex[ik] = ii
		}
		st.icIdx = ii
		sk := icStackKey{iSet, iBlk}
		si, ok := icStackIndex[sk]
		if !ok {
			si = len(icStacks)
			s := &icStack{lineIdx: li}
			s.stack.setMask = uint32(1)<<iSet - 1
			s.stack.blockLg = iBlk
			s.stack.setBits = iSet
			icStacks = append(icStacks, s)
			icStackIndex[sk] = si
		}
		st.icm = icStacks[si].stack.member(cfg.IL1Assoc)

		dSet, dBlk := geomBits(cfg.DL1Size, cfg.DL1Assoc, cfg.DL1Block)
		dk := dcKey{dSet, dBlk}
		di, ok := dcIndex[dk]
		if !ok {
			di = len(dcs)
			dcs = append(dcs, &lruStack{setMask: uint32(1)<<dSet - 1, blockLg: dBlk, setBits: dSet})
			dcIndex[dk] = di
		}
		st.dcm = dcs[di].member(cfg.DL1Assoc)

		if st.width == 1 && st.dl1Lat > maxDl1 {
			maxDl1 = st.dl1Lat
		}
	}
	// Classify the multi-issue configurations: width 2 takes the closed
	// forms through a pairing group (unless the oracle is forced), any
	// other width keeps the per-event replay. The distinct load-use
	// latencies are collected first, descending, so the shared sweep's
	// per-event latency scan can stop at the first threshold the load
	// distance reaches.
	latSet := map[int]bool{}
	for i := range states {
		st := &states[i]
		st.pgIdx = -1
		if st.width == 1 {
			continue
		}
		if st.width == 2 && !wideOracle {
			latSet[st.dl1Lat] = true
			if st.dl1Lat > maxDl1W {
				maxDl1W = st.dl1Lat
			}
		} else {
			wide = append(wide, st)
		}
	}
	var lats []int
	for lat := range latSet {
		lats = append(lats, lat)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lats)))
	latIndex := map[int]int{}
	for li, lat := range lats {
		latIndex[lat] = li
	}
	var pairGroups []pairGroup
	pgIndex := map[[2]int]int{}
	for i := range states {
		st := &states[i]
		if st.width != 2 || wideOracle {
			continue
		}
		k := [2]int{st.icIdx, latIndex[st.dl1Lat]}
		pi, ok := pgIndex[k]
		if !ok {
			pi = len(pairGroups)
			pairGroups = append(pairGroups, pairGroup{icIdx: k[0], latIdx: k[1]})
			pgIndex[k] = pi
		}
		st.pgIdx = pi
	}
	for _, s := range icStacks {
		s.stack.finalize(sc)
	}
	for _, s := range dcs {
		s.finalize(sc)
	}
	// Per-event outcome bitsets exist only where a multi-issue
	// configuration will read them back; everyone else keeps counters
	// alone.
	var wideMembers []*cacheMember // members whose missBits need per-block clearing
	for _, st := range wide {
		for _, m := range []*cacheMember{st.icm, st.dcm} {
			if m.missBits == nil {
				m.missBits = sc.bitset()
				wideMembers = append(wideMembers, m)
			}
		}
		if btbs[st.btbIdx].mispredBits == nil {
			btbs[st.btbIdx].mispredBits = sc.bitset()
		}
	}
	// Dependency-stall histogram for the single-issue closed form:
	// hist[dl*fsDim+fs] counts events whose nearest load producer is dl
	// dynamic instructions away (dl = maxDl1 when none is close enough to
	// stall any sampled configuration) and whose functional-unit stall is
	// fs cycles. Width 1 makes both quantities configuration-independent.
	var hist []uint64
	if maxDl1 > 0 {
		hist = sc.u64.get((maxDl1+1)*fsDim, true)
	}

	// Width-2 shared structures. pairOK marks the events whose
	// configuration-independent pairing inputs allow dual issue (no
	// dep-prev flag, not a memory op after a memory op, not after
	// control); storeB marks stores so the per-event fallback never
	// re-decodes opcodes (the bitsets carry everything it reads). The
	// closed forms additionally build hist2 - the dependency histogram
	// under width-2 distance quantisation (elapsed = ceil(dist/2)) -
	// plus fu2 (any functional-unit stall, configuration-independent at
	// a fixed width) and one load-stall bitset per distinct load-use
	// latency, so a group's pairing eligibility is pure word arithmetic:
	// pairOK &^ (accesses | fu2 | loadLt).
	anyWide := len(wide) > 0 || len(pairGroups) > 0
	var pairOK, storeB, fu2 bitset
	var hist2 []uint64
	var loadLts []bitset
	if anyWide {
		pairOK = sc.bitset()
		storeB = sc.bitset()
	}
	if len(pairGroups) > 0 {
		fu2 = sc.bitset()
		hist2 = sc.u64.get((maxDl1W+1)*fsDim, true)
		for range lats {
			loadLts = append(loadLts, sc.bitset())
		}
	}

	// baseRedir marks positions raising the geometry-independent pending
	// redirect (taken control flow). condList and memList pack the block's
	// branch and memory events as address | position<<32 | flag<<63 so the
	// geometry sweeps read one dense, prefetchable word per event instead
	// of gathering from the event array.
	baseRedir := sc.bitset()
	condList := sc.u64.get(blockEvents, false)[:0]
	memList := sc.u64.get(blockEvents, false)[:0]
	pcList := sc.u32.get(blockEvents, false)[:0]
	var memOps, branches uint64
	var opCount [256]uint64

	// Per-block state shared with the sweep closures below; the closures
	// are defined once per call (not per block) so the engine's
	// allocations stay flat however long the trace is
	// (TestSimulateBatchAllocsFlat pins it).
	var (
		evs        []trace.Event
		nb, words  int
		lastMask   uint64
		blockStart int
		// pm/pc carry the previous event's memory/control decode across
		// block boundaries for the shared pairability bits.
		pm, pc bool
	)

	// Wave 1 - line-change detection (one tight pass over the packed
	// PCs per IL1 block size), branch predictors (one fused
	// predict+resolve sweep per BTB geometry over the block's
	// conditional branches), and data caches (one sweep per geometry
	// family over the packed memory events).
	sweepLine := func(t int) {
		lt := &lineTracks[t]
		b := lt.blockLg
		prev := lt.prevLine
		changed := lt.changed
		for j, pc := range pcList {
			line := pc >> b
			if line != prev {
				changed.set(j)
				prev = line
			}
		}
		lt.prevLine = prev
	}
	sweepBTB := func(k int) {
		g := &btbs[k]
		g.dev.clearWords(words)
		if g.mispredBits != nil {
			g.mispredBits.clearWords(words)
		}
		for _, cp := range condList {
			btbStep(g, cp)
		}
	}
	sweepDC := func(k int) {
		s := dcs[k]
		for _, mp := range memList {
			s.access(uint32(mp), int(mp>>32&0x7fffffff), mp>>63 != 0, true)
		}
	}
	wave1 := func(i int) {
		switch {
		case i < len(lineTracks):
			sweepLine(i)
		case i < len(lineTracks)+len(btbs):
			sweepBTB(i - len(lineTracks))
		default:
			sweepDC(i - len(lineTracks) - len(btbs))
		}
	}

	// Wave 2 - fetch streams (each stream's decisions are pure bit
	// arithmetic - the pending redirect is the previous position's
	// (base | deviation) outcome - folded into counters by popcount)
	// and instruction caches (every state-changing access happens at
	// a line-change position, redirect-only refetches being
	// guaranteed MRU hits, so each merged stack replays just its
	// block size's line changes).
	sweepIC := func(k int) {
		g := &ics[k]
		dev := btbs[g.btbIdx].dev
		carry := uint64(0)
		if g.redirCarry {
			carry = 1
		}
		for w := 0; w < words; w++ {
			v := baseRedir[w] | dev[w]
			g.redirBits[w] = v<<1 | carry
			carry = v >> 63
		}
		g.redirCarry = baseRedir.get(nb-1) || dev.get(nb-1)
		g.redirBits[words-1] &= lastMask
		changed := lineTracks[g.lineIdx].changed
		redirs := 0
		accs := 0
		for w := 0; w < words; w++ {
			a := g.redirBits[w] | changed[w]
			g.accBits[w] = a
			accs += bits.OnesCount64(a)
			redirs += bits.OnesCount64(g.redirBits[w])
		}
		g.accesses += uint64(accs)
		g.redirects += uint64(redirs)
	}
	sweepICStack := func(k int) {
		s := icStacks[k]
		changed := lineTracks[s.lineIdx].changed
		for w := 0; w < words; w++ {
			word := changed[w]
			for word != 0 {
				j := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				s.stack.access(pcList[j], j, false, false)
			}
		}
	}
	wave2 := func(i int) {
		if i < len(ics) {
			sweepIC(i)
		} else {
			sweepICStack(i - len(ics))
		}
	}

	// Wave 3 - the multi-issue work. Pairing groups fold the block's
	// eligibility words into their run accounting: eligible events are
	// pairable ones the configuration neither fetches at nor stalls on,
	// and within a maximal run of them the pairing slot alternates, so a
	// run of length L pairs ceil(L/2) events. A run is closed by the
	// first ineligible event after it; open carries runs across word and
	// block boundaries. Per-event states replay the block mirroring
	// Simulate statement for statement, every decoded input read back
	// from the shared bitsets (pairOK folds the dep-prev flag and the
	// previous event's memory/control class; dcm.missBits and
	// bg.mispredBits are only ever set at memory/branch positions, so no
	// opcode test needs repeating here).
	sweepPairs := func(k int) {
		g := &pairGroups[k]
		acc := ics[g.icIdx].accBits
		lt := loadLts[g.latIdx]
		open, pairs := g.open, g.pairs
		for w := 0; w < words; w++ {
			v := pairOK[w] &^ (acc[w] | fu2[w] | lt[w])
			switch v {
			case 0:
				if open != 0 {
					pairs += (open + 1) / 2
					open = 0
				}
				continue
			case ^uint64(0):
				open += 64
				continue
			}
			for pos := 0; pos < 64; {
				rest := v >> uint(pos)
				if rest == 0 {
					break
				}
				if gap := bits.TrailingZeros64(rest); gap > 0 {
					if open != 0 {
						pairs += (open + 1) / 2
						open = 0
					}
					pos += gap
				}
				run := bits.TrailingZeros64(^(v >> uint(pos)))
				open += uint64(run)
				pos += run
				if pos < 64 {
					// The run ends inside the word: the next bit is a gap.
					pairs += (open + 1) / 2
					open = 0
				}
			}
		}
		g.open, g.pairs = open, pairs
	}
	wideReplay := func(st *batchState) {
		g := &ics[st.icIdx]
		bg := &btbs[st.btbIdx]
		w := st.width
		for j := range evs {
			ev := &evs[j]
			if g.accBits.get(j) {
				if st.icm.missBits.get(j) {
					st.cycles += st.icPenalty
					st.fetchStalls += st.icPenalty
				}
				if g.redirBits.get(j) {
					st.cycles += st.redirectBubble - 1
					st.fetchStalls += st.redirectBubble - 1
				}
				st.slotOpen = false
			}
			var stall uint64
			if ev.DistLoad != trace.NoDist {
				elapsed := (int(ev.DistLoad) + w - 1) / w
				if s := st.dl1Lat - elapsed; s > 0 {
					stall = uint64(s)
				}
			}
			if ev.DistFU != trace.NoDist {
				elapsed := (int(ev.DistFU) + w - 1) / w
				if s := int(ev.FULat) - elapsed; s > 0 && uint64(s) > stall {
					stall = uint64(s)
				}
			}
			if stall > 0 {
				st.cycles += stall
				st.depStalls += stall
				st.slotOpen = false
			}
			if w == 2 && st.slotOpen && pairOK.get(j) {
				st.slotOpen = false
			} else {
				st.cycles++
				st.slotOpen = w == 2
			}
			st.decodes++
			if st.dcm.missBits.get(j) {
				p := st.dcPenalty
				if storeB.get(j) {
					p = st.stPenalty
				}
				st.cycles += p
				st.memStalls += p
			}
			if bg.mispredBits.get(j) {
				st.cycles += mispredictPenalty
				st.branchStalls += mispredictPenalty
				st.decodes += uint64(mispredictPenalty * w / 2)
			}
		}
	}
	wave3 := func(i int) {
		if i < len(pairGroups) {
			sweepPairs(i)
			return
		}
		wideReplay(wide[i-len(pairGroups)])
	}

	for blockStart = 0; blockStart < len(tr.Events); blockStart += blockEvents {
		blockEnd := blockStart + blockEvents
		if blockEnd > len(tr.Events) {
			blockEnd = len(tr.Events)
		}
		evs = tr.Events[blockStart:blockEnd]
		nb = len(evs)
		words = (nb + 63) / 64
		// Mask for the last partial word: the carry shift below may push
		// one spurious bit past the final event.
		lastMask = ^uint64(0)
		if nb&63 != 0 {
			lastMask = 1<<(nb&63) - 1
		}

		// Shared sweep: decode every event once, filling the block's
		// index lists, redirect bits, line-change bits and histogram.
		baseRedir.clearWords(words)
		for t := range lineTracks {
			lineTracks[t].changed.clearWords(words)
		}
		for _, m := range wideMembers {
			m.missBits.clearWords(words)
		}
		if anyWide {
			pairOK.clearWords(words)
			storeB.clearWords(words)
		}
		if fu2 != nil {
			fu2.clearWords(words)
			for _, b := range loadLts {
				b.clearWords(words)
			}
		}
		condList = condList[:0]
		memList = memList[:0]
		pcList = pcList[:0]
		for j := range evs {
			ev := &evs[j]
			op := isa.Op(ev.Op)
			isCond := ev.Flags&trace.FlagCond != 0
			actual := ev.Flags&trace.FlagTaken != 0
			pcList = append(pcList, ev.PC)
			switch {
			case op == isa.OpLoad:
				memList = append(memList, uint64(ev.Addr)|uint64(j)<<32)
			case op == isa.OpStore:
				memList = append(memList, uint64(ev.Addr)|uint64(j)<<32|1<<63)
			}
			if isCond {
				k := uint64(ev.PC) | uint64(j)<<32
				if actual {
					k |= 1 << 63
				}
				condList = append(condList, k)
				if actual {
					baseRedir.set(j)
				}
			} else if op.IsControl() {
				baseRedir.set(j)
			}
			if anyWide {
				isMem := op.IsMem()
				if op == isa.OpStore {
					storeB.set(j)
				}
				if ev.Flags&trace.FlagDepPrev == 0 && !(pm && isMem) && !pc {
					pairOK.set(j)
				}
				pm, pc = isMem, op.IsControl()
				if fu2 != nil {
					fs2 := 0
					if ev.DistFU != trace.NoDist {
						if s := int(ev.FULat) - (int(ev.DistFU)+1)/2; s > 0 {
							fs2 = s
							fu2.set(j)
						}
					}
					dl2 := maxDl1W
					if ev.DistLoad != trace.NoDist {
						d := (int(ev.DistLoad) + 1) / 2
						if d < maxDl1W {
							dl2 = d
						}
						for li, lat := range lats {
							if d >= lat {
								break
							}
							loadLts[li].set(j)
						}
					}
					if dl2 < maxDl1W || fs2 > 0 {
						hist2[dl2*fsDim+fs2]++
					}
				}
			}
			if hist != nil {
				dl := maxDl1
				if ev.DistLoad != trace.NoDist && int(ev.DistLoad) < maxDl1 {
					dl = int(ev.DistLoad)
				}
				fs := 0
				if ev.DistFU != trace.NoDist {
					if s := int(ev.FULat) - int(ev.DistFU); s > 0 {
						fs = s
					}
				}
				if dl < maxDl1 || fs > 0 {
					hist[dl*fsDim+fs]++
				}
			}
			opCount[ev.Op]++
		}
		memOps += uint64(len(memList))
		branches += uint64(len(condList))

		// The per-geometry sweeps touch pairwise-disjoint state, so each
		// wave fans over the worker pool (sequential at workers=1); the
		// wave boundaries are the data dependencies: fetch streams read
		// the BTB deviations and line changes, instruction stacks read
		// the line changes, and the multi-issue replay reads every
		// shared outcome bitset.
		parallelSweep(workers, len(lineTracks)+len(btbs)+len(dcs), wave1)
		parallelSweep(workers, len(ics)+len(icStacks), wave2)
		parallelSweep(workers, len(pairGroups)+len(wide), wave3)
	}

	// A run still open at the end of the trace pairs like any other:
	// its events all issued, alternating.
	for k := range pairGroups {
		if g := &pairGroups[k]; g.open > 0 {
			g.pairs += (g.open + 1) / 2
			g.open = 0
		}
	}

	var aluOps, macOps, shiftOps uint64
	for op, n := range opCount {
		if n == 0 {
			continue
		}
		switch o := isa.Op(op); {
		case o.UsesALU():
			aluOps += n
		case o.UsesMAC():
			macOps += n
		case o.UsesShifter():
			shiftOps += n
		}
	}

	insns := uint64(len(tr.Events))
	results := make([]Result, len(cfgs))
	for i := range states {
		st := &states[i]
		res := &results[i]
		g := &ics[st.icIdx]
		bg := &btbs[st.btbIdx]
		res.Config = st.cfg
		res.Insns = insns
		res.ICAccesses = g.accesses
		res.ICMisses = st.icm.misses
		res.DCAccesses = memOps
		res.DCMisses = st.dcm.loadMisses + st.dcm.storeMisses
		res.BTBLookups = branches
		res.Mispredicts = bg.mispredicts
		res.Decodes = st.decodes
		res.RegReads = tr.RegReads
		res.RegWrites = tr.RegWrites
		res.ALUOps = aluOps
		res.MACOps = macOps
		res.ShiftOps = shiftOps

		switch {
		case st.width == 1:
			// Closed forms: every stall source is (shared count) x
			// (per-configuration penalty); issue contributes one cycle
			// per instruction.
			res.FetchStalls = st.icm.misses*st.icPenalty +
				g.redirects*(st.redirectBubble-1)
			res.MemStalls = st.dcm.loadMisses*st.dcPenalty +
				st.dcm.storeMisses*st.stPenalty
			res.BranchStalls = bg.mispredicts * mispredictPenalty
			res.DepStalls = depStallDot(hist, maxDl1, st.dl1Lat)
			res.Cycles = insns + res.FetchStalls + res.MemStalls +
				res.DepStalls + res.BranchStalls
			res.Decodes = insns + bg.mispredicts*uint64(mispredictPenalty/2)
		case st.pgIdx >= 0:
			// Width-2 closed forms: the stall terms are the width-1 ones
			// (the histogram swapped for its width-2 quantisation), and
			// issue contributes one cycle per instruction minus one per
			// paired event, from this configuration's pairing group.
			res.FetchStalls = st.icm.misses*st.icPenalty +
				g.redirects*(st.redirectBubble-1)
			res.MemStalls = st.dcm.loadMisses*st.dcPenalty +
				st.dcm.storeMisses*st.stPenalty
			res.BranchStalls = bg.mispredicts * mispredictPenalty
			res.DepStalls = depStallDot(hist2, maxDl1W, st.dl1Lat)
			res.Cycles = insns - pairGroups[st.pgIdx].pairs +
				res.FetchStalls + res.MemStalls +
				res.DepStalls + res.BranchStalls
			res.Decodes = insns + bg.mispredicts*uint64(mispredictPenalty)
		default:
			res.Cycles = st.cycles
			res.FetchStalls = st.fetchStalls
			res.MemStalls = st.memStalls
			res.DepStalls = st.depStalls
			res.BranchStalls = st.branchStalls
		}

		res.EnergyNJ = float64(res.ICAccesses)*st.cfg.IL1Energy() +
			float64(res.DCAccesses)*st.cfg.DL1Energy() +
			float64(res.BTBLookups)*st.cfg.BTBEnergy() +
			float64(res.Insns)*coreEnergyPerInsn +
			float64(res.Cycles)*coreEnergyPerCycle
	}
	return results
}

// depStallDot folds the dependency histogram with one configuration's
// load-use latency: stall = max(dl1Lat - dl, fs) clamped at zero, exactly
// the combination Simulate computes per event at width 1.
func depStallDot(hist []uint64, maxDl1, dl1Lat int) uint64 {
	var total uint64
	for dl := 0; dl <= maxDl1; dl++ {
		loadStall := 0
		if dl < maxDl1 && dl1Lat-dl > 0 {
			loadStall = dl1Lat - dl
		}
		row := hist[dl*fsDim : (dl+1)*fsDim]
		for fs, n := range row {
			if n == 0 {
				continue
			}
			stall := loadStall
			if fs > stall {
				stall = fs
			}
			total += n * uint64(stall)
		}
	}
	return total
}
