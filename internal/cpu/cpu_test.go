package cpu

import (
	"testing"

	"portcc/internal/core"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

func traceFor(t *testing.T, name string) *trace.Trace {
	t.Helper()
	m := prog.MustBuild(name)
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Generate(p, trace.Config{Runs: 2, MaxInsns: 100000, Seed: 1})
}

func TestCounterConsistency(t *testing.T) {
	tr := traceFor(t, "djpeg")
	r := Simulate(tr, uarch.XScale())
	if r.Insns != uint64(tr.Insns()) {
		t.Errorf("Insns %d, trace has %d", r.Insns, tr.Insns())
	}
	if r.ICMisses > r.ICAccesses {
		t.Error("more I-cache misses than accesses")
	}
	if r.DCMisses > r.DCAccesses {
		t.Error("more D-cache misses than accesses")
	}
	if r.DCAccesses != tr.MemOps {
		t.Errorf("D-cache accesses %d, trace has %d memory ops", r.DCAccesses, tr.MemOps)
	}
	if r.BTBLookups != tr.Branches {
		t.Errorf("BTB lookups %d, trace has %d branches", r.BTBLookups, tr.Branches)
	}
	if r.Mispredicts > r.BTBLookups {
		t.Error("more mispredicts than branches")
	}
	if r.Cycles < r.Insns {
		t.Error("single-issue core cannot exceed IPC 1")
	}
	if r.EnergyNJ <= 0 || r.PowerMW() <= 0 {
		t.Error("energy model must be positive")
	}
}

func TestSmallerICacheNeverFewerMisses(t *testing.T) {
	tr := traceFor(t, "gs")
	big := uarch.XScale()
	small := uarch.XScale()
	small.IL1Size = 4 << 10
	rb := Simulate(tr, big)
	rs := Simulate(tr, small)
	if rs.ICMisses < rb.ICMisses {
		t.Errorf("4K cache has fewer misses (%d) than 32K (%d)", rs.ICMisses, rb.ICMisses)
	}
	if rs.ICAccesses != rb.ICAccesses {
		t.Error("I-cache access count must not depend on cache size")
	}
}

func TestDualIssueFaster(t *testing.T) {
	tr := traceFor(t, "susan_s")
	w1 := uarch.XScale()
	w2 := uarch.XScale()
	w2.Width = 2
	r1 := Simulate(tr, w1)
	r2 := Simulate(tr, w2)
	if r2.Cycles >= r1.Cycles {
		t.Errorf("dual issue not faster: %d vs %d cycles", r2.Cycles, r1.Cycles)
	}
	if r2.IPC() > 2.0 {
		t.Errorf("IPC %f exceeds the issue width", r2.IPC())
	}
}

func TestFrequencyScalingCosts(t *testing.T) {
	tr := traceFor(t, "tiff2bw") // memory-streaming program
	slow := uarch.XScale()
	slow.FreqMHz = 200
	fast := uarch.XScale()
	fast.FreqMHz = 600
	rs := Simulate(tr, slow)
	rf := Simulate(tr, fast)
	// More cycles at higher frequency (same DRAM nanoseconds)...
	if rf.Cycles <= rs.Cycles {
		t.Errorf("600MHz should cost more cycles than 200MHz: %d vs %d", rf.Cycles, rs.Cycles)
	}
	// ...but less wall-clock time.
	if rf.TimeSeconds() >= rs.TimeSeconds() {
		t.Error("600MHz should still be faster in seconds")
	}
}

func TestStallDecomposition(t *testing.T) {
	tr := traceFor(t, "patricia")
	r := Simulate(tr, uarch.XScale())
	issue := r.Cycles - r.FetchStalls - r.MemStalls - r.DepStalls - r.BranchStalls
	if issue < r.Insns/2 {
		t.Errorf("issue cycles %d implausibly low for %d instructions", issue, r.Insns)
	}
	if r.MemStalls == 0 {
		t.Error("pointer-chasing program with no memory stalls")
	}
}

func TestBTBConfigMatters(t *testing.T) {
	// The BTB geometry must influence prediction behaviour. (Direction is
	// not monotone: a BTB miss predicts not-taken, which can be right for
	// rarely-taken branches, so a small BTB occasionally wins - the same
	// non-monotonicity the paper's design space exhibits.)
	tr := traceFor(t, "gs") // branchy program
	big := uarch.XScale()
	big.BTBSize = 2048
	big.BTBAssoc = 8
	small := uarch.XScale()
	small.BTBSize = 128
	small.BTBAssoc = 1
	rb := Simulate(tr, big)
	rs := Simulate(tr, small)
	if rs.Mispredicts == rb.Mispredicts {
		t.Error("BTB geometry has no effect on mispredictions")
	}
	if rb.Mispredicts == 0 || rs.Mispredicts == 0 {
		t.Error("a branchy program must mispredict sometimes")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	tr := traceFor(t, "crc")
	a := Simulate(tr, uarch.XScale())
	b := Simulate(tr, uarch.XScale())
	if a != b {
		t.Error("simulation is not deterministic")
	}
}
