// The race detector makes sync.Pool drop items on purpose, so the
// zero-alloc pin only holds in normal builds.
//go:build !race

package cpu

import (
	"math/rand"
	"testing"

	"portcc/internal/uarch"
)

// TestSimulateSteadyStateAllocs pins the pooled hot path: after warm-up,
// Simulate must not allocate (the seed performed 10 allocations and 31552
// bytes per call building fresh cache and BTB state).
func TestSimulateSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 5000)
	cfg := uarch.XScale()
	Simulate(tr, cfg) // warm the pools
	allocs := testing.AllocsPerRun(50, func() {
		Simulate(tr, cfg)
	})
	if allocs != 0 {
		t.Errorf("steady-state Simulate allocates %.1f times per run, want 0", allocs)
	}
}

// TestSimulateBatchAllocsFlat pins the batch engine's allocation shape:
// its per-call setup (geometry dedup maps, group headers, the Result
// slice) may allocate a constant amount per configuration set, but with
// the replay arena pooled - including the permutation words - nothing may
// scale with the trace: replaying a 16x longer trace must cost exactly
// the same allocations per call.
func TestSimulateBatchAllocsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	short := randomTrace(rng, 5000)
	long := randomTrace(rng, 80000) // spans multiple 32768-event blocks
	archs := sampleArchs(rng, 16, true)
	SimulateBatch(long, archs) // size the pooled arena for the large call
	SimulateBatch(short, archs)
	shortAllocs := testing.AllocsPerRun(20, func() { SimulateBatch(short, archs) })
	longAllocs := testing.AllocsPerRun(20, func() { SimulateBatch(long, archs) })
	if longAllocs != shortAllocs {
		t.Errorf("SimulateBatch allocations scale with trace length: %.1f per call at 5k events, %.1f at 80k",
			shortAllocs, longAllocs)
	}
}

// TestSimulateBatchClosedFormAllocs pins the width-2 closed-form path the
// same way: everything it adds over the base engine (pairing groups, the
// shared pairability and eligibility bitsets, the width-2 histogram)
// lives in the pooled arena, so replaying a 16x longer trace through an
// all-dual-issue configuration set must cost identical allocations.
func TestSimulateBatchClosedFormAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	short := randomTrace(rng, 5000)
	long := randomTrace(rng, 80000)
	space := uarch.Space{Extended: true}
	archs := space.SampleN(rng, 24)
	for i := range archs {
		archs[i].Width = 2
	}
	SimulateBatch(long, archs) // size the pooled arena for the large call
	SimulateBatch(short, archs)
	shortAllocs := testing.AllocsPerRun(20, func() { SimulateBatch(short, archs) })
	longAllocs := testing.AllocsPerRun(20, func() { SimulateBatch(long, archs) })
	if longAllocs != shortAllocs {
		t.Errorf("closed-form SimulateBatch allocations scale with trace length: %.1f per call at 5k events, %.1f at 80k",
			shortAllocs, longAllocs)
	}
}
