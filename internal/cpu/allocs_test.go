// The race detector makes sync.Pool drop items on purpose, so the
// zero-alloc pin only holds in normal builds.
//go:build !race

package cpu

import (
	"math/rand"
	"testing"

	"portcc/internal/uarch"
)

// TestSimulateSteadyStateAllocs pins the pooled hot path: after warm-up,
// Simulate must not allocate (the seed performed 10 allocations and 31552
// bytes per call building fresh cache and BTB state).
func TestSimulateSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 5000)
	cfg := uarch.XScale()
	Simulate(tr, cfg) // warm the pools
	allocs := testing.AllocsPerRun(50, func() {
		Simulate(tr, cfg)
	})
	if allocs != 0 {
		t.Errorf("steady-state Simulate allocates %.1f times per run, want 0", allocs)
	}
}
