package cpu

import (
	"math/rand"
	"runtime"
	"testing"

	"portcc/internal/core"
	"portcc/internal/isa"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// sampleArchs draws n distinct configurations, always including the XScale
// reference point and, when extended, its dual-issue variant.
func sampleArchs(rng *rand.Rand, n int, extended bool) []uarch.Config {
	space := uarch.Space{Extended: extended}
	archs := space.SampleN(rng, n)
	archs = append(archs, uarch.XScale())
	if extended {
		w2 := uarch.XScale()
		w2.Width = 2
		w2.FreqMHz = 600
		archs = append(archs, w2)
	}
	return archs
}

func assertBatchMatches(t *testing.T, tr *trace.Trace, archs []uarch.Config) {
	t.Helper()
	batch := SimulateBatch(tr, archs)
	if len(batch) != len(archs) {
		t.Fatalf("SimulateBatch returned %d results for %d configs", len(batch), len(archs))
	}
	for i, cfg := range archs {
		want := Simulate(tr, cfg)
		if batch[i] != want {
			t.Errorf("config %d (%v):\n batch %+v\n  want %+v", i, cfg, batch[i], want)
		}
	}
}

// TestSimulateBatchMatchesSimulate is the bit-identity property on real
// program traces: every counter, every stall bucket, every energy value of
// SimulateBatch must equal sequential Simulate per architecture, over both
// the base (Table 2) and extended (§7, dual-issue and frequency) spaces.
func TestSimulateBatchMatchesSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	optRng := rand.New(rand.NewSource(7))
	for _, name := range []string{"gs", "crc", "patricia"} {
		m := prog.MustBuild(name)
		cfgs := []opt.Config{opt.O3(), opt.Random(optRng)}
		for ci := range cfgs {
			p, err := core.Compile(m, &cfgs[ci])
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: 30000, Seed: 3})
			assertBatchMatches(t, tr, sampleArchs(rng, 16, false))
			assertBatchMatches(t, tr, sampleArchs(rng, 16, true))
		}
	}
}

// randomTrace synthesises an adversarial event stream: arbitrary operation
// classes, flags, addresses and dependency distances, including values the
// trace generator never emits (zero distances, huge FU latencies), so the
// equivalence holds on the full event domain, not just realistic traces.
func randomTrace(rng *rand.Rand, n int) *trace.Trace {
	tr := &trace.Trace{Events: make([]trace.Event, n)}
	pc := uint32(0x1000)
	for i := range tr.Events {
		ev := &tr.Events[i]
		op := isa.Op(rng.Intn(isa.NumOps))
		ev.Op = uint8(op)
		ev.PC = pc
		if rng.Intn(8) == 0 {
			pc = 0x1000 + uint32(rng.Intn(1<<14))*4
		} else {
			pc += 4
		}
		ev.Addr = uint32(rng.Intn(1 << 20))
		ev.DistLoad = trace.NoDist
		ev.DistFU = trace.NoDist
		if rng.Intn(3) == 0 {
			ev.DistLoad = uint8(rng.Intn(255))
		}
		if rng.Intn(3) == 0 {
			ev.DistFU = uint8(rng.Intn(255))
			ev.FULat = uint8(rng.Intn(256))
		}
		var flags uint8
		if rng.Intn(4) == 0 {
			flags |= trace.FlagCond
			if rng.Intn(2) == 0 {
				flags |= trace.FlagTaken
			}
		}
		if rng.Intn(5) == 0 {
			flags |= trace.FlagDepPrev
		}
		ev.Flags = flags
		tr.OpCount[op]++
		if op.IsMem() {
			tr.MemOps++
		}
		if flags&trace.FlagCond != 0 {
			tr.Branches++
		}
	}
	tr.RegReads = uint64(rng.Intn(1000))
	tr.RegWrites = uint64(rng.Intn(1000))
	tr.Runs = 1
	return tr
}

// TestSimulateBatchRandomTraces fuzzes the equivalence over synthetic
// traces and architecture samples of varying size.
func TestSimulateBatchRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 2000+rng.Intn(3000))
		n := 1 + rng.Intn(24)
		assertBatchMatches(t, tr, sampleArchs(rng, n, seed%2 == 1))
	}
}

// pairingEdgeTrace builds a deterministic trace that forces every
// dual-issue pairing edge case through the closed forms: maximal
// pairable runs of both parities, dep-chain breaks (FlagDepPrev),
// memory-after-memory sequences, pairing directly after taken and
// mispredicted control flow, load-use and functional-unit stalls with
// distances straddling the latency thresholds, a pairable run that
// deterministically crosses the 32768-event block boundary, and a
// trace length that ends mid-word with the final run still open.
func pairingEdgeTrace(n int) *trace.Trace {
	tr := &trace.Trace{Runs: 1}
	tr.Events = make([]trace.Event, 0, n)
	pc := uint32(0x1000)
	emit := func(ev trace.Event) {
		if len(tr.Events) >= n {
			return
		}
		ev.PC = pc
		pc += 4
		op := isa.Op(ev.Op)
		tr.Events = append(tr.Events, ev)
		tr.OpCount[op]++
		if op.IsMem() {
			tr.MemOps++
		}
		if ev.Flags&trace.FlagCond != 0 {
			tr.Branches++
		}
	}
	alu := trace.Event{Op: uint8(isa.OpALU), DistLoad: trace.NoDist, DistFU: trace.NoDist}
	phase := 0
	// emitPhase appends at most 66 events of one edge-case pattern.
	emitPhase := func() {
		switch phase % 8 {
		case 0: // maximal pairable runs, length parity varying
			for i := 0; i < 63+phase%3; i++ {
				emit(alu)
			}
		case 1: // dep-chain breaks
			for i := 0; i < 24; i++ {
				ev := alu
				if i%3 == 1 {
					ev.Flags = trace.FlagDepPrev
				}
				emit(ev)
			}
		case 2: // memory-after-memory in every load/store order
			for i := 0; i < 16; i++ {
				ev := trace.Event{DistLoad: trace.NoDist, DistFU: trace.NoDist, Addr: uint32(0x8000 + i*64)}
				if i%4 < 2 {
					ev.Op = uint8(isa.OpLoad)
				} else {
					ev.Op = uint8(isa.OpStore)
				}
				emit(ev)
				if i%4 == 3 {
					emit(alu)
				}
			}
		case 3: // pairable ops directly after a taken redirect
			emit(trace.Event{Op: uint8(isa.OpJump), DistLoad: trace.NoDist, DistFU: trace.NoDist})
			for i := 0; i < 5; i++ {
				emit(alu)
			}
		case 4: // conditional branches: mispredict redirects differ per BTB
			for i := 0; i < 12; i++ {
				ev := trace.Event{Op: uint8(isa.OpBranch), DistLoad: trace.NoDist, DistFU: trace.NoDist, Flags: trace.FlagCond}
				if i%3 != 0 {
					ev.Flags |= trace.FlagTaken
				}
				emit(ev)
				emit(alu)
				emit(alu)
			}
		case 5: // load-use stalls around each latency threshold
			for d := 0; d < 12; d++ {
				emit(trace.Event{Op: uint8(isa.OpLoad), DistLoad: trace.NoDist, DistFU: trace.NoDist, Addr: uint32(0x400 * d)})
				use := alu
				use.DistLoad = uint8(d)
				emit(use)
				emit(alu)
			}
		case 6: // functional-unit stalls (break eligibility width-independently)
			for i := 0; i < 10; i++ {
				emit(trace.Event{Op: uint8(isa.OpMul), DistLoad: trace.NoDist, DistFU: trace.NoDist})
				use := alu
				use.DistFU = uint8(i % 4)
				use.FULat = uint8(2 + i%5)
				emit(use)
			}
		case 7: // a lone unpairable op re-seeds the run parity
			ev := alu
			ev.Flags = trace.FlagDepPrev
			emit(ev)
		}
		phase++
	}
	for len(tr.Events) < blockEvents-100 && len(tr.Events) < n {
		emitPhase()
	}
	// Straddle the block boundary with one maximal pairable run.
	for len(tr.Events) < blockEvents+64 && len(tr.Events) < n {
		emit(alu)
	}
	for len(tr.Events) < n-100 {
		emitPhase()
	}
	for len(tr.Events) < n {
		emit(alu) // trailing run left open at end of trace
	}
	tr.RegReads = uint64(n)
	tr.RegWrites = uint64(n / 2)
	return tr
}

// TestSimulateBatchWideOracle drives the width-2 closed forms against the
// per-event replay oracle (simulateBatch with wideOracle set: the full
// event-by-event dual-issue model) and against Simulate, over the crafted
// pairing-edge trace and adversarial random traces, at every worker
// count the satellite pins. A width-3 configuration - outside the
// sampled space but accepted by the engine - rides along to keep the
// per-event fallback covered in normal mode too.
func TestSimulateBatchWideOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	check := func(tr *trace.Trace, archs []uarch.Config) {
		t.Helper()
		closed := SimulateBatch(tr, archs)
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			oracle := simulateBatch(tr, archs, workers, true)
			for i := range archs {
				if closed[i] != oracle[i] {
					t.Fatalf("workers=%d config %d (%s): closed form differs from per-event oracle:\n  got %+v\n want %+v",
						workers, i, archs[i].String(), closed[i], oracle[i])
				}
			}
		}
		for i, cfg := range archs {
			if want := Simulate(tr, cfg); closed[i] != want {
				t.Fatalf("config %d (%s):\n batch %+v\n  want %+v", i, cfg.String(), closed[i], want)
			}
		}
	}
	archs := sampleArchs(rng, 12, true)
	w3 := uarch.XScale()
	w3.Width = 3
	archs = append(archs, w3)
	check(pairingEdgeTrace(2*blockEvents+37), archs)
	for seed := int64(0); seed < 4; seed++ {
		frng := rand.New(rand.NewSource(seed))
		check(randomTrace(frng, 3000+frng.Intn(4000)), sampleArchs(frng, 8, true))
	}
}

// TestSimulateBatchParallelSweepsBitIdentical is the schedule-freedom
// property of the parallel per-geometry sweeps: any worker count (and
// therefore any interleaving of the line-tracker, BTB, cache-stack and
// wide-state sweeps within their dependency waves) must produce results
// bit-identical to the sequential pass, over real program traces, fuzzed
// adversarial traces, and both architecture spaces.
func TestSimulateBatchParallelSweepsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(tr *trace.Trace, archs []uarch.Config) {
		t.Helper()
		want := SimulateBatch(tr, archs)
		for _, workers := range []int{0, 1, 2, 3, 4, 8, runtime.GOMAXPROCS(0)} {
			got := SimulateBatchWith(tr, archs, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d config %d (%v): parallel sweep differs from sequential:\n  got %+v\n want %+v",
						workers, i, archs[i].String(), got[i], want[i])
				}
			}
		}
	}
	m := prog.MustBuild("gs")
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: 30000, Seed: 3})
	check(tr, sampleArchs(rng, 24, false))
	check(tr, sampleArchs(rng, 24, true))
	check(pairingEdgeTrace(2*blockEvents+37), sampleArchs(rng, 16, true))
	for seed := int64(0); seed < 6; seed++ {
		frng := rand.New(rand.NewSource(seed))
		ftr := randomTrace(frng, 2000+frng.Intn(3000))
		check(ftr, sampleArchs(frng, 1+frng.Intn(24), seed%2 == 0))
	}
}

// TestSimulateBatchDegenerate covers the edges: no configurations, an
// empty trace, and duplicate configurations sharing all state.
func TestSimulateBatchDegenerate(t *testing.T) {
	if got := SimulateBatch(&trace.Trace{}, nil); got != nil {
		t.Errorf("empty config list: got %v, want nil", got)
	}
	empty := &trace.Trace{}
	rs := SimulateBatch(empty, []uarch.Config{uarch.XScale()})
	if rs[0].Cycles != 0 || rs[0].Insns != 0 {
		t.Errorf("empty trace: got %+v", rs[0])
	}
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng, 1000)
	dup := []uarch.Config{uarch.XScale(), uarch.XScale(), uarch.XScale()}
	assertBatchMatches(t, tr, dup)
}
