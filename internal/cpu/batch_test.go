package cpu

import (
	"math/rand"
	"testing"

	"portcc/internal/core"
	"portcc/internal/isa"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// sampleArchs draws n distinct configurations, always including the XScale
// reference point and, when extended, its dual-issue variant.
func sampleArchs(rng *rand.Rand, n int, extended bool) []uarch.Config {
	space := uarch.Space{Extended: extended}
	archs := space.SampleN(rng, n)
	archs = append(archs, uarch.XScale())
	if extended {
		w2 := uarch.XScale()
		w2.Width = 2
		w2.FreqMHz = 600
		archs = append(archs, w2)
	}
	return archs
}

func assertBatchMatches(t *testing.T, tr *trace.Trace, archs []uarch.Config) {
	t.Helper()
	batch := SimulateBatch(tr, archs)
	if len(batch) != len(archs) {
		t.Fatalf("SimulateBatch returned %d results for %d configs", len(batch), len(archs))
	}
	for i, cfg := range archs {
		want := Simulate(tr, cfg)
		if batch[i] != want {
			t.Errorf("config %d (%v):\n batch %+v\n  want %+v", i, cfg, batch[i], want)
		}
	}
}

// TestSimulateBatchMatchesSimulate is the bit-identity property on real
// program traces: every counter, every stall bucket, every energy value of
// SimulateBatch must equal sequential Simulate per architecture, over both
// the base (Table 2) and extended (§7, dual-issue and frequency) spaces.
func TestSimulateBatchMatchesSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	optRng := rand.New(rand.NewSource(7))
	for _, name := range []string{"gs", "crc", "patricia"} {
		m := prog.MustBuild(name)
		cfgs := []opt.Config{opt.O3(), opt.Random(optRng)}
		for ci := range cfgs {
			p, err := core.Compile(m, &cfgs[ci])
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: 30000, Seed: 3})
			assertBatchMatches(t, tr, sampleArchs(rng, 16, false))
			assertBatchMatches(t, tr, sampleArchs(rng, 16, true))
		}
	}
}

// randomTrace synthesises an adversarial event stream: arbitrary operation
// classes, flags, addresses and dependency distances, including values the
// trace generator never emits (zero distances, huge FU latencies), so the
// equivalence holds on the full event domain, not just realistic traces.
func randomTrace(rng *rand.Rand, n int) *trace.Trace {
	tr := &trace.Trace{Events: make([]trace.Event, n)}
	pc := uint32(0x1000)
	for i := range tr.Events {
		ev := &tr.Events[i]
		op := isa.Op(rng.Intn(isa.NumOps))
		ev.Op = uint8(op)
		ev.PC = pc
		if rng.Intn(8) == 0 {
			pc = 0x1000 + uint32(rng.Intn(1<<14))*4
		} else {
			pc += 4
		}
		ev.Addr = uint32(rng.Intn(1 << 20))
		ev.DistLoad = trace.NoDist
		ev.DistFU = trace.NoDist
		if rng.Intn(3) == 0 {
			ev.DistLoad = uint8(rng.Intn(255))
		}
		if rng.Intn(3) == 0 {
			ev.DistFU = uint8(rng.Intn(255))
			ev.FULat = uint8(rng.Intn(256))
		}
		var flags uint8
		if rng.Intn(4) == 0 {
			flags |= trace.FlagCond
			if rng.Intn(2) == 0 {
				flags |= trace.FlagTaken
			}
		}
		if rng.Intn(5) == 0 {
			flags |= trace.FlagDepPrev
		}
		ev.Flags = flags
		tr.OpCount[op]++
		if op.IsMem() {
			tr.MemOps++
		}
		if flags&trace.FlagCond != 0 {
			tr.Branches++
		}
	}
	tr.RegReads = uint64(rng.Intn(1000))
	tr.RegWrites = uint64(rng.Intn(1000))
	tr.Runs = 1
	return tr
}

// TestSimulateBatchRandomTraces fuzzes the equivalence over synthetic
// traces and architecture samples of varying size.
func TestSimulateBatchRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 2000+rng.Intn(3000))
		n := 1 + rng.Intn(24)
		assertBatchMatches(t, tr, sampleArchs(rng, n, seed%2 == 1))
	}
}

// TestSimulateBatchParallelSweepsBitIdentical is the schedule-freedom
// property of the parallel per-geometry sweeps: any worker count (and
// therefore any interleaving of the line-tracker, BTB, cache-stack and
// wide-state sweeps within their dependency waves) must produce results
// bit-identical to the sequential pass, over real program traces, fuzzed
// adversarial traces, and both architecture spaces.
func TestSimulateBatchParallelSweepsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(tr *trace.Trace, archs []uarch.Config) {
		t.Helper()
		want := SimulateBatch(tr, archs)
		for _, workers := range []int{0, 2, 3, 8} {
			got := SimulateBatchWith(tr, archs, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d config %d (%v): parallel sweep differs from sequential:\n  got %+v\n want %+v",
						workers, i, archs[i].String(), got[i], want[i])
				}
			}
		}
	}
	m := prog.MustBuild("gs")
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: 30000, Seed: 3})
	check(tr, sampleArchs(rng, 24, false))
	check(tr, sampleArchs(rng, 24, true))
	for seed := int64(0); seed < 6; seed++ {
		frng := rand.New(rand.NewSource(seed))
		ftr := randomTrace(frng, 2000+frng.Intn(3000))
		check(ftr, sampleArchs(frng, 1+frng.Intn(24), seed%2 == 0))
	}
}

// TestSimulateBatchDegenerate covers the edges: no configurations, an
// empty trace, and duplicate configurations sharing all state.
func TestSimulateBatchDegenerate(t *testing.T) {
	if got := SimulateBatch(&trace.Trace{}, nil); got != nil {
		t.Errorf("empty config list: got %v, want nil", got)
	}
	empty := &trace.Trace{}
	rs := SimulateBatch(empty, []uarch.Config{uarch.XScale()})
	if rs[0].Cycles != 0 || rs[0].Insns != 0 {
		t.Errorf("empty trace: got %+v", rs[0])
	}
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng, 1000)
	dup := []uarch.Config{uarch.XScale(), uarch.XScale(), uarch.XScale()}
	assertBatchMatches(t, tr, dup)
}
