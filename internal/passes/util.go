// Package passes implements the optimisation passes of the portable
// compiler, one per gcc flag of the paper's Figure 3 space, plus the
// always-on baseline passes (local value numbering, dead-code elimination,
// loop-invariant code motion) that every optimisation level runs.
//
// Passes mutate ir.Module in place. The pipeline (pipeline.go) sequences
// them according to an opt.Config, then hands the module to the register
// allocator and the post-register-allocation cleanups.
package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// DeadCode removes pure instructions whose results are never used (the
// always-on DCE every pipeline stage relies on). Returns removals.
func DeadCode(f *ir.Func) int { return deadCode(f) }

// StoredStreams exposes the module's stored-stream alias summary for the
// pipeline (see storedStreams).
func StoredStreams(m *ir.Module) map[int32]bool { return storedStreams(m) }

// useCounts counts register uses in a function, including branch condition
// registers. Index by register.
func useCounts(f *ir.Func) []int32 {
	uses := make([]int32, f.NextReg)
	for _, b := range f.Blocks {
		for i := range b.Insns {
			for _, u := range b.Insns[i].Use {
				if u != ir.RegNone {
					uses[u]++
				}
			}
		}
		if b.Term.CondReg != ir.RegNone {
			uses[b.Term.CondReg]++
		}
	}
	return uses
}

// defSite locates the single definition of a register.
type defSite struct {
	block int
	index int
}

// singleDefs maps each register to its unique definition site; registers
// with zero or multiple definitions (merge registers) map to nil.
func singleDefs(f *ir.Func) []*defSite {
	defs := make([]*defSite, f.NextReg)
	multi := make([]bool, f.NextReg)
	for _, b := range f.Blocks {
		for i := range b.Insns {
			d := b.Insns[i].Def
			if d == ir.RegNone {
				continue
			}
			if defs[d] != nil || multi[d] {
				defs[d] = nil
				multi[d] = true
				continue
			}
			defs[d] = &defSite{block: b.ID, index: i}
		}
	}
	return defs
}

// deadCode removes pure instructions whose results are never used,
// iterating to a fixpoint. Returns the number of instructions removed.
// Always-on at every optimisation level (like gcc's DCE).
func deadCode(f *ir.Func) int {
	removed := 0
	for {
		uses := useCounts(f)
		changed := false
		for _, b := range f.Blocks {
			kept := b.Insns[:0]
			for i := range b.Insns {
				in := b.Insns[i]
				dead := in.Def != ir.RegNone && uses[in.Def] == 0 && in.IsPure() &&
					!in.HasFlag(ir.FlagMerge)
				if dead {
					removed++
					changed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Insns = kept
		}
		if !changed {
			return removed
		}
	}
}

// rewriteUses replaces every use of register from with register to across
// the function (instruction operands and branch conditions).
func rewriteUses(f *ir.Func, from, to ir.Reg) {
	for _, b := range f.Blocks {
		for i := range b.Insns {
			for k, u := range b.Insns[i].Use {
				if u == from {
					b.Insns[i].Use[k] = to
				}
			}
		}
		if b.Term.CondReg == from {
			b.Term.CondReg = to
		}
	}
}

// applyReplacements rewrites register uses through a replacement map in one
// pass, resolving chains (a->b, b->c becomes a->c).
func applyReplacements(f *ir.Func, repl map[ir.Reg]ir.Reg) {
	if len(repl) == 0 {
		return
	}
	resolve := func(r ir.Reg) ir.Reg {
		seen := 0
		for {
			n, ok := repl[r]
			if !ok || seen > len(repl) {
				return r
			}
			r = n
			seen++
		}
	}
	for from := range repl {
		repl[from] = resolve(repl[from])
	}
	for _, b := range f.Blocks {
		for i := range b.Insns {
			for k, u := range b.Insns[i].Use {
				if n, ok := repl[u]; ok {
					b.Insns[i].Use[k] = n
				}
			}
		}
		if n, ok := repl[b.Term.CondReg]; ok {
			b.Term.CondReg = n
		}
	}
}

// removeSelfMoves deletes "move r <- r" instructions, which appear as
// harmless residue of PRE and coalescing.
func removeSelfMoves(f *ir.Func) int {
	removed := 0
	for _, b := range f.Blocks {
		kept := b.Insns[:0]
		for i := range b.Insns {
			in := b.Insns[i]
			if in.Op == isa.OpMove && in.Def == in.Use[0] {
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Insns = kept
	}
	return removed
}

// blockFreqs estimates relative execution frequencies from branch
// probabilities and trip counts by damped iterative flow propagation.
// The entry block has frequency 1.
func blockFreqs(f *ir.Func) []float64 {
	n := len(f.Blocks)
	freq := make([]float64, n)
	freq[0] = 1
	const (
		iters   = 60
		maxFreq = 1e9
	)
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		next[0] = 1
		for _, b := range f.Blocks {
			fb := freq[b.ID]
			if fb == 0 {
				continue
			}
			switch b.Term.Kind {
			case ir.TermFall:
				next[b.Term.Fall] += fb
			case ir.TermJump:
				next[b.Term.Taken] += fb
			case ir.TermBranch:
				p := b.Term.Prob
				if b.Term.Trip > 0 {
					p = float64(b.Term.Trip-1) / float64(b.Term.Trip)
				}
				next[b.Term.Taken] += fb * p
				next[b.Term.Fall] += fb * (1 - p)
			}
		}
		for i := range next {
			if next[i] > maxFreq {
				next[i] = maxFreq
			}
		}
		freq = next
	}
	return freq
}

// edgeProb returns the probability of the Taken edge of a branch.
func edgeProb(t ir.Term) float64 {
	if t.Trip > 0 {
		return float64(t.Trip-1) / float64(t.Trip)
	}
	return t.Prob
}

// compact removes unreachable blocks and renumbers the remainder,
// preserving layout order for surviving blocks. Always-on cleanup run
// after any pass that can disconnect blocks.
func compact(f *ir.Func) {
	f.Invalidate()
	f.Analyze()
	n := len(f.Blocks)
	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if f.Reachable(b.ID) {
			remap[b.ID] = len(kept)
			kept = append(kept, b)
		}
	}
	if len(kept) == n {
		return
	}
	for _, b := range kept {
		b.ID = remap[b.ID]
		if b.Term.Kind == ir.TermJump || b.Term.Kind == ir.TermBranch {
			b.Term.Taken = remap[b.Term.Taken]
		}
		if b.Term.Kind == ir.TermFall || b.Term.Kind == ir.TermBranch {
			b.Term.Fall = remap[b.Term.Fall]
		}
	}
	if f.Layout != nil {
		var nl []int
		for _, id := range f.Layout {
			if remap[id] >= 0 {
				nl = append(nl, remap[id])
			}
		}
		f.Layout = nl
	}
	f.Blocks = kept
	f.Invalidate()
}

// insnKey builds the value-numbering identity of a pure instruction given
// the value numbers of its operands. Imm acts as the semantic tag
// distinguishing logically different computations (see internal/prog).
type insnKey struct {
	op       isa.Op
	vn0, vn1 int32
	imm      int32
	stream   int32 // read-only load stream, 0 otherwise
}

func keyOf(in *ir.Insn, vnOf func(ir.Reg) int32) (insnKey, bool) {
	if !in.IsPure() || in.Def == ir.RegNone || in.HasFlag(ir.FlagMerge) {
		return insnKey{}, false
	}
	k := insnKey{op: in.Op, imm: in.Imm}
	k.vn0 = vnOf(in.Use[0])
	k.vn1 = vnOf(in.Use[1])
	if in.Op == isa.OpLoad {
		k.stream = in.Mem.Stream
	}
	if in.Op == isa.OpMove {
		// Copies are transparent for value numbering.
		return k, false
	}
	return k, true
}
