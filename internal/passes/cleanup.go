package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// VRP removes provably-redundant guard branches (gcc's -ftree-vrp): the
// front end marks range-checkable guards whose outcome is constant; value
// range propagation folds them to straight-line control flow, and the
// feeding comparison dies with them. Returns the number of folded guards.
func VRP(f *ir.Func) int {
	if f.Library {
		return 0
	}
	folded := 0
	for _, b := range f.Blocks {
		t := b.Term
		if t.Kind != ir.TermBranch || !t.Guard {
			continue
		}
		if t.Prob >= 0.5 {
			b.Term = ir.Term{Kind: ir.TermJump, Taken: t.Taken}
		} else {
			b.Term = ir.Term{Kind: ir.TermFall, Fall: t.Fall}
		}
		folded++
	}
	if folded > 0 {
		f.Invalidate()
		deadCode(f)
		compact(f)
	}
	return folded
}

// ThreadJumps retargets control transfers that land on empty forwarding
// blocks (gcc's -fthread-jumps), shortening dynamic paths; unreachable
// forwarders are then removed. Returns the number of retargeted edges.
func ThreadJumps(f *ir.Func) int {
	if f.Library {
		return 0
	}
	// finalTarget follows empty jump/fall blocks, bounded against cycles.
	finalTarget := func(id int) int {
		for hops := 0; hops < 8; hops++ {
			b := f.Blocks[id]
			if len(b.Insns) != 0 {
				return id
			}
			switch b.Term.Kind {
			case ir.TermJump:
				id = b.Term.Taken
			case ir.TermFall:
				id = b.Term.Fall
			default:
				return id
			}
		}
		return id
	}
	threaded := 0
	for _, b := range f.Blocks {
		switch b.Term.Kind {
		case ir.TermJump:
			if t := finalTarget(b.Term.Taken); t != b.Term.Taken {
				b.Term.Taken = t
				threaded++
			}
		case ir.TermFall:
			if t := finalTarget(b.Term.Fall); t != b.Term.Fall {
				// Keep kind Fall; codegen inserts a jump if needed.
				b.Term.Fall = t
				threaded++
			}
		case ir.TermBranch:
			if t := finalTarget(b.Term.Taken); t != b.Term.Taken {
				b.Term.Taken = t
				threaded++
			}
			if t := finalTarget(b.Term.Fall); t != b.Term.Fall {
				b.Term.Fall = t
				threaded++
			}
		}
	}
	if threaded > 0 {
		f.Invalidate()
		compact(f)
	}
	return threaded
}

// CrossJump merges identical instruction tails of two predecessors into
// their common successor (gcc's -fcrossjumping), shrinking code size. Run
// after register allocation, when tails genuinely coincide. Returns the
// number of instructions removed.
func CrossJump(f *ir.Func) int {
	if f.Library {
		return 0
	}
	f.Invalidate()
	f.Analyze() // predecessor lists must be fresh
	moved := 0
	for _, j := range f.Blocks {
		if len(j.Preds) != 2 {
			continue
		}
		a, b := f.Blocks[j.Preds[0]], f.Blocks[j.Preds[1]]
		if a == b || a.NumSuccs() != 1 || b.NumSuccs() != 1 {
			continue
		}
		k := 0
		for k < len(a.Insns) && k < len(b.Insns) {
			ia := a.Insns[len(a.Insns)-1-k]
			ib := b.Insns[len(b.Insns)-1-k]
			if !sameInsn(&ia, &ib) || ia.Op == isa.OpCall {
				break
			}
			k++
		}
		if k == 0 {
			continue
		}
		tail := make([]ir.Insn, k)
		copy(tail, a.Insns[len(a.Insns)-k:])
		a.Insns = a.Insns[:len(a.Insns)-k]
		b.Insns = b.Insns[:len(b.Insns)-k]
		j.Insns = append(tail, j.Insns...)
		moved += k
	}
	if moved > 0 {
		f.Invalidate()
	}
	return moved
}

func sameInsn(a, b *ir.Insn) bool {
	return a.Op == b.Op && a.Def == b.Def && a.Use == b.Use &&
		a.Imm == b.Imm && a.Mem == b.Mem && a.Callee == b.Callee
}

// ReorderBlocks lays out each function along its hottest control paths
// (gcc's -freorder-blocks): starting from the entry, chains follow the
// most probable successor so hot edges become fall-throughs and cold code
// sinks to the end. The result is written to Func.Layout.
func ReorderBlocks(f *ir.Func) {
	if f.Library {
		return
	}
	f.Invalidate()
	freq := blockFreqs(f)
	n := len(f.Blocks)
	placed := make([]bool, n)
	layout := make([]int, 0, n)

	// Seed blocks in frequency order, chaining greedily from each.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Entry must be first.
	var place func(id int)
	place = func(id int) {
		for id >= 0 && !placed[id] {
			placed[id] = true
			layout = append(layout, id)
			b := f.Blocks[id]
			next := -1
			switch b.Term.Kind {
			case ir.TermFall:
				next = b.Term.Fall
			case ir.TermJump:
				next = b.Term.Taken
			case ir.TermBranch:
				p := edgeProb(b.Term)
				// Prefer the likely edge as the fall-through.
				if p >= 0.5 {
					if !placed[b.Term.Taken] {
						next = b.Term.Taken
					} else {
						next = b.Term.Fall
					}
				} else {
					if !placed[b.Term.Fall] {
						next = b.Term.Fall
					} else {
						next = b.Term.Taken
					}
				}
			}
			if next >= 0 && placed[next] {
				next = -1
			}
			id = next
		}
	}
	place(0)
	// Remaining blocks: hottest first.
	for {
		best, bestF := -1, -1.0
		for i := 0; i < n; i++ {
			if !placed[i] && freq[i] > bestF {
				best, bestF = i, freq[i]
			}
		}
		if best < 0 {
			break
		}
		place(best)
	}
	f.Layout = layout
}

// AlignFlags selects which alignment passes run.
type AlignFlags struct {
	Functions bool // falign_functions: function entries to 16 bytes
	Loops     bool // falign_loops: loop headers to 8 bytes
	Jumps     bool // falign_jumps: jump-only targets to 8 bytes
	Labels    bool // falign_labels: all join points to 8 bytes
}

// Align applies the requested alignment passes by annotating blocks and
// functions; the code generator inserts the padding. Padding executed on
// fall-through paths costs real no-ops, and padding enlarges the I-cache
// footprint - alignment is not free.
func Align(f *ir.Func, flags AlignFlags) {
	if f.Library {
		return
	}
	f.Invalidate()
	if flags.Functions {
		f.Align = 16
	}
	f.Analyze()
	if flags.Loops {
		for _, l := range f.Loops() {
			f.Blocks[l.Header].Align = 8
		}
	}
	if flags.Jumps || flags.Labels {
		// Jump targets: blocks reached only by explicit jumps/branches.
		for _, b := range f.Blocks {
			if len(b.Preds) == 0 {
				continue
			}
			if flags.Labels && len(b.Preds) > 1 && b.Align < 8 {
				b.Align = 8
			}
			if flags.Jumps {
				onlyJumps := true
				for _, p := range b.Preds {
					t := f.Blocks[p].Term
					if t.Kind == ir.TermFall && t.Fall == b.ID {
						onlyJumps = false
					}
					if t.Kind == ir.TermBranch && t.Fall == b.ID {
						onlyJumps = false
					}
				}
				if onlyJumps && b.Align < 8 {
					b.Align = 8
				}
			}
		}
	}
}
