package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// Assumed latencies used by the scheduler's priority function (the
// compiler's machine model; the real latency is the microarchitecture's).
const (
	schedLoadLatency = 3
	schedMulLatency  = 3
	schedMacLatency  = 4
)

// SchedEagerBonus is the extra priority the list scheduler gives to loads
// (and, halved+2, to multiplies): higher values hide more latency but
// lengthen live ranges, causing spills on register-poor targets exactly as
// gcc 4.2's sched1 did. Exposed for calibration experiments.
var SchedEagerBonus = 2

func schedLatency(op isa.Op) int {
	switch op {
	case isa.OpLoad:
		return schedLoadLatency
	case isa.OpMul:
		return schedMulLatency
	case isa.OpMac:
		return schedMacLatency
	default:
		return 1
	}
}

// Schedule performs list scheduling within each basic block (gcc's
// -fschedule-insns): instructions are reordered by critical-path priority
// so that load and multiply results are consumed at a distance, hiding
// their latency. With interblock, single-entry successors are scheduled
// together so instructions migrate across block boundaries (gcc's
// interblock scheduling, disabled by -fno-sched-interblock); spec
// additionally allows hoisting loads above likely branches (speculative
// scheduling, disabled by -fno-sched-spec).
//
// Scheduling lengthens live ranges; the register allocator may need to
// spill as a consequence, which is the paper's observed
// scheduling/code-size interaction.
func Schedule(f *ir.Func, interblock, spec bool) {
	if f.Library {
		return
	}
	for _, b := range f.Blocks {
		scheduleBlock(b)
	}
	if interblock {
		hoistAcrossBlocks(f, spec)
	}
	f.Invalidate()
}

// scheduleBlock reorders one block's instructions topologically by
// critical-path priority, preserving all data, memory and call ordering
// dependences.
func scheduleBlock(b *ir.Block) {
	n := len(b.Insns)
	if n < 3 {
		return
	}
	succ := make([][]int, n) // dependence edges i -> j (j after i)
	npred := make([]int, n)
	addEdge := func(i, j int) {
		succ[i] = append(succ[i], j)
		npred[j]++
	}

	lastDef := map[ir.Reg]int{}
	usesSince := map[ir.Reg][]int{}
	lastStore := -1
	lastCall := -1
	var loadsSinceStore []int

	for i := range b.Insns {
		in := &b.Insns[i]
		// Data deps.
		for _, u := range in.Use {
			if u == ir.RegNone {
				continue
			}
			if d, ok := lastDef[u]; ok {
				addEdge(d, i)
			}
			usesSince[u] = append(usesSince[u], i)
		}
		if in.Def != ir.RegNone {
			// Output and anti deps (merge registers redefine).
			if d, ok := lastDef[in.Def]; ok {
				addEdge(d, i)
			}
			for _, u := range usesSince[in.Def] {
				if u != i {
					addEdge(u, i)
				}
			}
			usesSince[in.Def] = nil
			lastDef[in.Def] = i
		}
		// Memory and call ordering.
		switch in.Op {
		case isa.OpCall:
			for j := 0; j < i; j++ {
				addEdge(j, i) // calls are full barriers
			}
			lastCall = i
		case isa.OpStore:
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i)
			}
			lastStore = i
			loadsSinceStore = nil
		case isa.OpLoad:
			if lastStore >= 0 && !in.Mem.ReadOnly {
				addEdge(lastStore, i)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		}
	}

	// Critical-path priorities (longest latency path to any sink), plus an
	// eagerness bonus for long-latency operations: like gcc 4.2's sched1,
	// the scheduler hoists loads and multiplies as soon as they are ready
	// to hide their latency. It is not register-pressure aware - the
	// resulting live-range growth is exactly what makes the allocator
	// spill on some schedules (the paper's Section 5.4 observation).
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		p := 0
		for _, j := range succ[i] {
			if prio[j] > p {
				p = prio[j]
			}
		}
		bonus := 0
		switch b.Insns[i].Op {
		case isa.OpLoad:
			bonus = SchedEagerBonus
		case isa.OpMul, isa.OpMac:
			bonus = SchedEagerBonus/2 + 2
		}
		prio[i] = p + schedLatency(b.Insns[i].Op) + bonus
	}

	// Cycle-driven list scheduling: an instruction is a candidate once its
	// dependences are satisfied, and preferred once its operands are
	// *ready* (producer latency elapsed). Among ready candidates the
	// highest priority wins; if none is ready, the candidate closest to
	// ready issues (the hardware would stall there anyway). Original
	// order breaks ties for determinism.
	readyAt := make([]int, n)
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if npred[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	cycle := 0
	for len(ready) > 0 {
		best := -1
		bestReady := false
		for _, i := range ready {
			isReady := readyAt[i] <= cycle
			switch {
			case best == -1:
				best, bestReady = i, isReady
			case isReady && !bestReady:
				best, bestReady = i, true
			case isReady == bestReady:
				if prio[i] > prio[best] || (prio[i] == prio[best] && i < best) {
					best = i
				}
			}
		}
		// Remove best from the ready list.
		for k, i := range ready {
			if i == best {
				ready = append(ready[:k], ready[k+1:]...)
				break
			}
		}
		if readyAt[best] > cycle {
			cycle = readyAt[best]
		}
		order = append(order, best)
		issued := cycle
		cycle++
		for _, j := range succ[best] {
			if t := issued + schedLatency(b.Insns[best].Op); t > readyAt[j] {
				readyAt[j] = t
			}
			npred[j]--
			if npred[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if len(order) != n {
		return // cycle would be a bug; leave the block unscheduled
	}
	out := make([]ir.Insn, n)
	for pos, idx := range order {
		out[pos] = b.Insns[idx]
	}
	b.Insns = out
}

// hoistAcrossBlocks migrates ready head instructions of single-predecessor
// successors into their predecessor. Non-speculative when the predecessor
// falls or jumps unconditionally; speculative (requires spec) above
// conditional branches, following the likely edge.
func hoistAcrossBlocks(f *ir.Func, spec bool) {
	f.Invalidate()
	f.Analyze() // predecessor lists must be fresh
	const maxHoist = 4
	for _, a := range f.Blocks {
		var bID int
		speculative := false
		switch a.Term.Kind {
		case ir.TermFall:
			bID = a.Term.Fall
		case ir.TermJump:
			bID = a.Term.Taken
		case ir.TermBranch:
			if !spec {
				continue
			}
			speculative = true
			if edgeProb(a.Term) >= 0.5 {
				bID = a.Term.Taken
			} else {
				bID = a.Term.Fall
			}
		default:
			continue
		}
		b := f.Blocks[bID]
		if len(b.Preds) != 1 || b.ID == a.ID {
			continue
		}
		// Registers defined by instructions remaining in b.
		defined := map[ir.Reg]bool{}
		for i := range b.Insns {
			if d := b.Insns[i].Def; d != ir.RegNone {
				defined[d] = true
			}
		}
		hoisted := 0
		for hoisted < maxHoist && len(b.Insns) > 0 {
			in := b.Insns[0]
			if !in.IsPure() || in.HasFlag(ir.FlagMerge) {
				break
			}
			if in.Op == isa.OpLoad && speculative && !spec {
				break
			}
			depends := false
			for _, u := range in.Use {
				if u != ir.RegNone && defined[u] && u != in.Def {
					depends = true
					break
				}
			}
			if depends {
				break
			}
			a.Insns = append(a.Insns, in)
			delete(defined, in.Def)
			b.Insns = b.Insns[1:]
			hoisted++
		}
	}
}

// Regmove forwards register copies (gcc's -fregmove): uses of a
// single-definition register defined by a copy are rewritten to the copy's
// source, making the move dead. Returns the number of moves removed.
func Regmove(f *ir.Func) int {
	if f.Library {
		return 0
	}
	defs := singleDefs(f)
	repl := map[ir.Reg]ir.Reg{}
	for _, b := range f.Blocks {
		for i := range b.Insns {
			in := &b.Insns[i]
			if in.Op != isa.OpMove || in.HasFlag(ir.FlagMerge) {
				continue
			}
			src := in.Use[0]
			if src == ir.RegNone || defs[in.Def] == nil {
				continue
			}
			// Forward only single-def sources so the value cannot change
			// between the move and the rewritten uses.
			if defs[src] == nil {
				continue
			}
			repl[in.Def] = src
		}
	}
	if len(repl) == 0 {
		return 0
	}
	applyReplacements(f, repl)
	removed := deadCode(f)
	f.Invalidate()
	return removed
}
