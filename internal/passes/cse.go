package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// vnAssign assigns value numbers to registers: registers defined by
// equivalent pure computations receive the same number; everything else is
// opaque. Copies are transparent. Because single-definition registers are
// immutable and read-only loads have no kills, value numbers are valid
// function-wide.
type vnAssign struct {
	f        *ir.Func
	defOK    []bool
	defInsn  []ir.Insn // snapshot of each register's unique definition
	vn       []int32
	visiting []bool
	keys     map[insnKey]int32
	next     int32
}

func newVNAssign(f *ir.Func) *vnAssign {
	v := &vnAssign{
		f:        f,
		defOK:    make([]bool, f.NextReg),
		defInsn:  make([]ir.Insn, f.NextReg),
		vn:       make([]int32, f.NextReg),
		visiting: make([]bool, f.NextReg),
		keys:     make(map[insnKey]int32),
		next:     1,
	}
	// Snapshot unique definitions so later block mutation by the calling
	// pass cannot invalidate operand resolution.
	defs := singleDefs(f)
	for r := ir.Reg(1); r < f.NextReg; r++ {
		if ds := defs[r]; ds != nil {
			v.defOK[r] = true
			v.defInsn[r] = f.Blocks[ds.block].Insns[ds.index]
		}
	}
	return v
}

func (v *vnAssign) fresh() int32 {
	id := v.next
	v.next++
	return id
}

// of returns the value number of register r. Registers created after the
// assignment was built (by the running pass itself) are opaque.
func (v *vnAssign) of(r ir.Reg) int32 {
	if r == ir.RegNone {
		return 0
	}
	if int(r) >= len(v.vn) {
		return -int32(r) // stable opaque id outside the numbered range
	}
	if v.vn[r] != 0 {
		return v.vn[r]
	}
	if v.visiting[r] {
		// Cycle through merge registers: opaque.
		v.vn[r] = v.fresh()
		return v.vn[r]
	}
	v.visiting[r] = true
	var cand int32
	if !v.defOK[r] {
		cand = v.fresh()
	} else {
		in := &v.defInsn[r]
		if in.Op == isa.OpMove && !in.HasFlag(ir.FlagMerge) {
			cand = v.of(in.Use[0])
		} else if key, ok := keyOf(in, v.of); ok {
			if id, found := v.keys[key]; found {
				cand = id
			} else {
				cand = v.fresh()
				v.keys[key] = cand
			}
		} else {
			cand = v.fresh()
		}
	}
	v.visiting[r] = false
	if v.vn[r] == 0 {
		v.vn[r] = cand
	}
	return v.vn[r]
}

// exprOf returns the value number an instruction computes, and whether the
// instruction is a value-numberable pure computation.
func (v *vnAssign) exprOf(in *ir.Insn) (int32, bool) {
	if in.Def == ir.RegNone || int(in.Def) >= len(v.defOK) {
		return 0, false
	}
	if !v.defOK[in.Def] {
		return 0, false // merge register
	}
	if in.Op == isa.OpMove {
		return 0, false
	}
	if _, ok := keyOf(in, v.of); !ok {
		return 0, false
	}
	return v.of(in.Def), true
}

// LocalCSE performs local value numbering within basic blocks, the
// always-on base CSE of every optimisation level. With followJumps the
// value table flows into single-predecessor successors (extended basic
// blocks, gcc's -fcse-follow-jumps); with skipBlocks it additionally flows
// through empty blocks (gcc's -fcse-skip-blocks).
//
// Returns the number of eliminated instructions.
func LocalCSE(f *ir.Func, followJumps, skipBlocks bool) int {
	if f.Library {
		return 0
	}
	v := newVNAssign(f)
	tables := make(map[int]map[int32]ir.Reg) // per-block end-of-block table
	repl := make(map[ir.Reg]ir.Reg)
	eliminated := 0

	f.Invalidate()
	for _, id := range f.RPO() {
		b := f.Blocks[id]
		var tbl map[int32]ir.Reg
		// Inherit the table from a unique predecessor.
		if followJumps {
			pred := uniquePred(f, id, skipBlocks)
			if pred >= 0 {
				if pt, ok := tables[pred]; ok {
					tbl = make(map[int32]ir.Reg, len(pt))
					for k, h := range pt {
						tbl[k] = h
					}
				}
			}
		}
		if tbl == nil {
			tbl = make(map[int32]ir.Reg)
		}
		kept := b.Insns[:0]
		for i := range b.Insns {
			in := b.Insns[i]
			e, ok := v.exprOf(&in)
			if !ok {
				kept = append(kept, in)
				continue
			}
			if h, found := tbl[e]; found && h != in.Def {
				// Redundant: fold the definition onto the holder.
				repl[in.Def] = h
				eliminated++
				continue
			}
			tbl[e] = in.Def
			kept = append(kept, in)
		}
		b.Insns = kept
		tables[id] = tbl
	}
	if eliminated > 0 {
		applyReplacements(f, repl)
		deadCode(f)
		f.Invalidate()
	}
	return eliminated
}

// uniquePred returns the single predecessor of block id, optionally
// skipping through empty single-pred blocks, or -1.
func uniquePred(f *ir.Func, id int, skipEmpty bool) int {
	b := f.Blocks[id]
	if len(b.Preds) != 1 {
		return -1
	}
	p := b.Preds[0]
	if skipEmpty {
		for hops := 0; hops < 4; hops++ {
			pb := f.Blocks[p]
			if len(pb.Insns) != 0 || len(pb.Preds) != 1 {
				break
			}
			p = pb.Preds[0]
		}
	}
	return p
}
