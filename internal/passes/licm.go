package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// storedStreams collects every stream the module ever stores to; loads
// from other streams are effectively read-only, which is the alias
// knowledge gcse's load motion exploits.
func storedStreams(m *ir.Module) map[int32]bool {
	stored := map[int32]bool{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insns {
				if b.Insns[i].Op == isa.OpStore {
					stored[b.Insns[i].Mem.Stream] = true
				}
			}
		}
	}
	return stored
}

// LICM hoists loop-invariant computations into loop preheaders. Pure
// non-memory instructions are hoisted at every optimisation level (gcc's
// always-on loop-invariant motion); invariant loads are hoisted only when
// loadMotion is enabled (gcc's -fgcse-lm, on by default, disabled by
// -fno-gcse-lm) and only from streams never stored to. Returns hoists.
func LICM(f *ir.Func, loadMotion bool, stored map[int32]bool) int {
	if f.Library {
		return 0
	}
	f.Invalidate()
	hoisted := 0
	loops := f.Loops()
	// Innermost loops first so chained hoisting bubbles outward on rerun.
	for li := len(loops) - 1; li >= 0; li-- {
		l := loops[li]
		if l.Preheader < 0 {
			continue
		}
		inLoop := make(map[int]bool, len(l.Blocks))
		for _, id := range l.Blocks {
			inLoop[id] = true
		}
		// Registers defined inside the loop.
		defIn := map[ir.Reg]bool{}
		for _, id := range l.Blocks {
			for i := range f.Blocks[id].Insns {
				if d := f.Blocks[id].Insns[i].Def; d != ir.RegNone {
					defIn[d] = true
				}
			}
		}
		pre := f.Blocks[l.Preheader]
		for changed := true; changed; {
			changed = false
			for _, id := range l.Blocks {
				b := f.Blocks[id]
				kept := b.Insns[:0]
				for i := range b.Insns {
					in := b.Insns[i]
					if !invariant(&in, defIn, loadMotion, stored) {
						kept = append(kept, in)
						continue
					}
					pre.Insns = append(pre.Insns, in)
					delete(defIn, in.Def)
					hoisted++
					changed = true
				}
				b.Insns = kept
			}
		}
	}
	if hoisted > 0 {
		f.Invalidate()
	}
	return hoisted
}

// invariant reports whether the instruction may be hoisted out of a loop
// whose internally-defined registers are defIn.
func invariant(in *ir.Insn, defIn map[ir.Reg]bool, loadMotion bool, stored map[int32]bool) bool {
	if in.Def == ir.RegNone || in.HasFlag(ir.FlagMerge) {
		return false
	}
	switch in.Op {
	case isa.OpALU, isa.OpMul, isa.OpMac, isa.OpShift, isa.OpMove:
		// pure: hoistable (speculation of pure code is safe)
	case isa.OpLoad:
		if !loadMotion {
			return false
		}
		// Only loads whose address is fully captured by their operands
		// can move: indexed read-only tables, and scalars that nothing
		// stores to. Streaming loads (seq/strided/random/pointer)
		// advance through memory and are never invariant.
		switch in.Mem.Kind {
		case ir.MemTable:
			if !in.Mem.ReadOnly {
				return false
			}
		case ir.MemScalar:
			if stored[in.Mem.Stream] {
				return false
			}
		default:
			return false
		}
	default:
		return false
	}
	for _, u := range in.Use {
		if u != ir.RegNone && defIn[u] {
			return false
		}
	}
	return true
}

// StoreMotion performs gcc's -fgcse-sm: a scalar location loaded and stored
// on every iteration of a loop is promoted to a register; one load is
// placed in the preheader and one store on the unique exit. Returns the
// number of promoted locations.
func StoreMotion(f *ir.Func) int {
	if f.Library {
		return 0
	}
	f.Invalidate()
	promoted := 0
	for _, l := range f.Loops() {
		if l.Preheader < 0 {
			continue
		}
		exit, ok := uniqueExit(f, l)
		if !ok {
			continue
		}
		inLoop := map[int]bool{}
		for _, id := range l.Blocks {
			inLoop[id] = true
		}
		// Find scalar streams with exactly one store in the loop and no
		// calls anywhere in the loop (a callee could alias the scalar).
		type access struct {
			stores, loads int
			storeBlk      int
			storeIdx      int
		}
		acc := map[int32]*access{}
		callsInLoop := false
		for _, id := range l.Blocks {
			for i := range f.Blocks[id].Insns {
				in := &f.Blocks[id].Insns[i]
				if in.Op == isa.OpCall {
					callsInLoop = true
				}
				if in.Mem.Kind != ir.MemScalar {
					continue
				}
				a := acc[in.Mem.Stream]
				if a == nil {
					a = &access{}
					acc[in.Mem.Stream] = a
				}
				if in.Op == isa.OpStore {
					a.stores++
					a.storeBlk = id
					a.storeIdx = i
				} else if in.Op == isa.OpLoad {
					a.loads++
				}
			}
		}
		if callsInLoop {
			continue
		}
		streams := make([]int32, 0, len(acc))
		for s := range acc {
			streams = append(streams, s)
		}
		sortInt32s(streams)
		for _, stream := range streams {
			a := acc[stream]
			if a.stores != 1 {
				continue
			}
			st := f.Blocks[a.storeBlk].Insns[a.storeIdx]
			if st.Op != isa.OpStore {
				continue // shifted by a previous promotion in this loop
			}
			reg := f.NewReg()
			mem := st.Mem
			// Preheader: reg <- load [scalar].
			pre := f.Blocks[l.Preheader]
			pre.Insns = append(pre.Insns, ir.Insn{
				Op: isa.OpLoad, Def: reg, Mem: mem, Flags: ir.FlagMerge,
			})
			// In-loop store becomes a register move; loads become moves.
			for _, id := range l.Blocks {
				b := f.Blocks[id]
				for i := range b.Insns {
					in := &b.Insns[i]
					if in.Mem.Kind != ir.MemScalar || in.Mem.Stream != stream {
						continue
					}
					switch in.Op {
					case isa.OpStore:
						*in = ir.Insn{Op: isa.OpMove, Def: reg,
							Use: [2]ir.Reg{in.Use[0]}, Flags: ir.FlagMerge}
					case isa.OpLoad:
						*in = ir.Insn{Op: isa.OpMove, Def: in.Def,
							Use: [2]ir.Reg{reg}, Flags: in.Flags}
					}
				}
			}
			// Exit: store reg back. Prepend so it precedes exit code.
			eb := f.Blocks[exit]
			eb.Insns = append([]ir.Insn{{
				Op: isa.OpStore, Use: [2]ir.Reg{reg}, Mem: mem,
			}}, eb.Insns...)
			promoted++
		}
	}
	if promoted > 0 {
		f.Invalidate()
	}
	return promoted
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// uniqueExit returns the single out-of-loop successor block reached from
// the loop, provided all its predecessors are loop blocks.
func uniqueExit(f *ir.Func, l *ir.Loop) (int, bool) {
	inLoop := map[int]bool{}
	for _, id := range l.Blocks {
		inLoop[id] = true
	}
	exit := -1
	for _, id := range l.Blocks {
		for _, s := range f.Blocks[id].Succs(nil) {
			if inLoop[s] {
				continue
			}
			if exit != -1 && exit != s {
				return -1, false
			}
			exit = s
		}
	}
	if exit == -1 {
		return -1, false
	}
	for _, p := range f.Blocks[exit].Preds {
		if !inLoop[p] {
			return -1, false
		}
	}
	return exit, true
}
