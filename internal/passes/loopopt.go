package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// StrengthReduce rewrites multiplications by loop induction variables
// (marked FlagMulByIndex by the front end) into incremental additions
// carried by an accumulator register (gcc's -fstrength-reduce). The MAC
// unit multiply (3-cycle latency) becomes a 1-cycle ALU add.
func StrengthReduce(f *ir.Func) int {
	if f.Library {
		return 0
	}
	f.Invalidate()
	defs := singleDefs(f)
	reduced := 0
	for _, l := range f.Loops() {
		if l.Preheader < 0 {
			continue
		}
		pre := f.Blocks[l.Preheader]
		for _, id := range l.Blocks {
			b := f.Blocks[id]
			for i := range b.Insns {
				in := &b.Insns[i]
				if in.Op != isa.OpMul || !in.HasFlag(ir.FlagMulByIndex) {
					continue
				}
				if in.Def == ir.RegNone || defs[in.Def] == nil {
					continue // already a merge register
				}
				// Initialise the accumulator in the preheader, then
				// replace the multiply with an incremental add.
				pre.Insns = append(pre.Insns, ir.Insn{
					Op: isa.OpALU, Def: in.Def, Imm: in.Imm,
					Flags: ir.FlagMerge,
				})
				*in = ir.Insn{
					Op: isa.OpALU, Def: in.Def, Use: [2]ir.Reg{in.Def},
					Imm:   in.Imm,
					Flags: ir.FlagMerge | ir.FlagInduction,
				}
				defs[in.Def] = nil
				reduced++
			}
		}
	}
	if reduced > 0 {
		f.Invalidate()
	}
	return reduced
}

// chainOf identifies an unrollable loop body: header..latch forming a
// single fall-through/jump chain with the counted back edge on the latch.
// Returns the chain block IDs in order, or nil.
func chainOf(f *ir.Func, l *ir.Loop) []int {
	latch := f.Blocks[l.Latch]
	if latch.Term.Kind != ir.TermBranch || latch.Term.Trip <= 0 ||
		latch.Term.Taken != l.Header {
		return nil
	}
	chain := []int{l.Header}
	cur := l.Header
	for cur != l.Latch {
		b := f.Blocks[cur]
		var next int
		switch b.Term.Kind {
		case ir.TermFall:
			next = b.Term.Fall
		case ir.TermJump:
			next = b.Term.Taken
		default:
			return nil // internal control flow: not a simple chain
		}
		if !l.Contains(next) || len(f.Blocks[next].Preds) != 1 {
			return nil
		}
		chain = append(chain, next)
		cur = next
		if len(chain) > len(l.Blocks) {
			return nil
		}
	}
	if len(chain) != len(l.Blocks) {
		return nil
	}
	return chain
}

// chainSize counts body instructions plus materialised control.
func chainSize(f *ir.Func, chain []int) int {
	n := 0
	for _, id := range chain {
		n += len(f.Blocks[id].Insns) + 1
	}
	return n
}

// escapes reports whether any non-merge register defined in the block set
// is used outside it; such loops cannot be safely duplicated without SSA
// repair, so unrolling and unswitching skip them.
func escapes(f *ir.Func, blocks []int) bool {
	in := map[int]bool{}
	for _, id := range blocks {
		in[id] = true
	}
	defsIn := map[ir.Reg]bool{}
	defs := singleDefs(f)
	for _, id := range blocks {
		for i := range f.Blocks[id].Insns {
			d := f.Blocks[id].Insns[i].Def
			if d != ir.RegNone && defs[d] != nil {
				defsIn[d] = true
			}
		}
	}
	for _, b := range f.Blocks {
		if in[b.ID] {
			continue
		}
		for i := range b.Insns {
			for _, u := range b.Insns[i].Use {
				if u != ir.RegNone && defsIn[u] {
					return true
				}
			}
		}
		if defsIn[b.Term.CondReg] {
			return true
		}
	}
	return false
}

// cloneChain duplicates a block chain, renaming non-merge definitions and
// rewiring intra-chain uses and targets. Returns the new block IDs.
func cloneChain(f *ir.Func, chain []int) []int {
	defs := singleDefs(f)
	rename := map[ir.Reg]ir.Reg{}
	for _, id := range chain {
		for i := range f.Blocks[id].Insns {
			d := f.Blocks[id].Insns[i].Def
			if d != ir.RegNone && defs[d] != nil && rename[d] == ir.RegNone {
				rename[d] = f.NewReg()
			}
		}
	}
	remap := map[int]int{}
	newIDs := make([]int, 0, len(chain))
	for _, id := range chain {
		nb := &ir.Block{ID: len(f.Blocks), Align: f.Blocks[id].Align}
		remap[id] = nb.ID
		f.Blocks = append(f.Blocks, nb)
		newIDs = append(newIDs, nb.ID)
	}
	for k, id := range chain {
		src := f.Blocks[id]
		dst := f.Blocks[newIDs[k]]
		dst.Insns = make([]ir.Insn, len(src.Insns))
		copy(dst.Insns, src.Insns)
		for i := range dst.Insns {
			in := &dst.Insns[i]
			if r, ok := rename[in.Def]; ok && r != ir.RegNone {
				in.Def = r
			}
			for j, u := range in.Use {
				if r, ok := rename[u]; ok && r != ir.RegNone {
					in.Use[j] = r
				}
			}
		}
		dst.Term = src.Term
		if r, ok := rename[dst.Term.CondReg]; ok && r != ir.RegNone {
			dst.Term.CondReg = r
		}
		if dst.Term.Kind == ir.TermJump || dst.Term.Kind == ir.TermBranch {
			if n, ok := remap[dst.Term.Taken]; ok {
				dst.Term.Taken = n
			}
		}
		if dst.Term.Kind == ir.TermFall || dst.Term.Kind == ir.TermBranch {
			if n, ok := remap[dst.Term.Fall]; ok {
				dst.Term.Fall = n
			}
		}
	}
	return newIDs
}

// Unroll replicates counted-loop bodies (gcc's -funroll-loops), bounded by
// max_unroll_times and max_unrolled_insns. Only simple chain-shaped counted
// loops whose values do not escape are unrolled; the latch branch of the
// last copy carries the reduced trip count. Returns loops unrolled.
func Unroll(f *ir.Func, maxTimes, maxInsns int) int {
	if f.Library {
		return 0
	}
	f.Invalidate()
	unrolled := 0
	loops := f.Loops()
	for _, l := range loops {
		chain := chainOf(f, l)
		if chain == nil || escapes(f, chain) {
			continue
		}
		latch := f.Blocks[l.Latch]
		trip := int(latch.Term.Trip)
		size := chainSize(f, chain)
		u := maxTimes
		if size > 0 && maxInsns/size < u {
			u = maxInsns / size
		}
		if u > trip {
			u = trip
		}
		if u < 2 {
			continue
		}
		origTerm := latch.Term
		prevTail := l.Latch
		for copyN := 1; copyN < u; copyN++ {
			ids := cloneChain(f, chain)
			// Previous tail falls into this copy's head.
			f.Blocks[prevTail].Term = ir.Term{Kind: ir.TermFall, Fall: ids[0]}
			prevTail = ids[len(ids)-1]
		}
		// Final copy carries the back edge with the reduced trip count.
		t := origTerm
		nt := (trip + u/2) / u
		if nt < 1 {
			nt = 1
		}
		t.Trip = int32(nt)
		f.Blocks[prevTail].Term = t
		unrolled++
		f.Invalidate()
	}
	if unrolled > 0 {
		f.Invalidate()
	}
	return unrolled
}

// Unswitch hoists loop-invariant conditional branches out of loops by
// duplicating the loop body per branch direction (gcc's -funswitch-loops):
// the branch executes once per loop entry instead of once per iteration,
// at the cost of nearly doubling the loop's code size. Returns the number
// of unswitched loops.
func Unswitch(f *ir.Func) int {
	if f.Library {
		return 0
	}
	f.Invalidate()
	count := 0
	for _, l := range f.Loops() {
		if l.Preheader < 0 {
			continue
		}
		// Find an invariant branch inside the loop.
		condBlk := -1
		for _, id := range l.Blocks {
			t := f.Blocks[id].Term
			if t.Kind == ir.TermBranch && t.InvariantIn == l.Header &&
				l.Contains(t.Taken) && l.Contains(t.Fall) {
				condBlk = id
				break
			}
		}
		if condBlk < 0 || escapes(f, l.Blocks) {
			continue
		}
		orig := f.Blocks[condBlk].Term
		clones := cloneChainAll(f, l.Blocks)
		// Original copy assumes the taken direction; clone the fall one.
		f.Blocks[condBlk].Term = ir.Term{Kind: ir.TermJump, Taken: orig.Taken}
		cloneCond := clones[indexOf(l.Blocks, condBlk)]
		ct := f.Blocks[cloneCond].Term
		f.Blocks[cloneCond].Term = ir.Term{Kind: ir.TermJump, Taken: ct.Fall}
		// The preheader now selects the version once per entry.
		pre := f.Blocks[l.Preheader]
		cloneHeader := clones[indexOf(l.Blocks, l.Header)]
		pre.Term = ir.Term{
			Kind: ir.TermBranch, Taken: l.Header, Fall: cloneHeader,
			Prob: orig.Prob, CondReg: orig.CondReg,
		}
		count++
		f.Invalidate()
	}
	return count
}

// cloneChainAll clones an arbitrary block set (not just chains), remapping
// intra-set control targets; used by unswitching.
func cloneChainAll(f *ir.Func, blocks []int) []int {
	return cloneChain(f, blocks)
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
