package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// bitset is a simple dense bitset over value numbers.
type bitset []uint64

func newBitset(n int32) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int32)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s bitset) has(i int32) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

func (s bitset) copyFrom(o bitset) {
	copy(s, o)
}

func (s bitset) intersect(o bitset) {
	for i := range s {
		s[i] &= o[i]
	}
}

func (s bitset) union(o bitset) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// availability computes the available-expressions dataflow over value
// numbers: an expression is available at block entry if it is computed on
// every path from the entry. There are no kills because single-definition
// registers are immutable and numbered loads are read-only.
type availability struct {
	vn    *vnAssign
	in    []bitset
	out   []bitset
	canon map[int32]canonSite // first computation in RPO per value number
}

type canonSite struct {
	block int
	reg   ir.Reg
}

func computeAvailability(f *ir.Func) *availability {
	v := newVNAssign(f)
	// Pre-number every expression so bitset capacity is known.
	for _, id := range f.RPO() {
		b := f.Blocks[id]
		for i := range b.Insns {
			v.exprOf(&b.Insns[i])
		}
	}
	n := len(f.Blocks)
	av := &availability{vn: v, in: make([]bitset, n), out: make([]bitset, n), canon: map[int32]canonSite{}}
	cap := v.next
	gen := make([]bitset, n)
	for _, id := range f.RPO() {
		gen[id] = newBitset(cap)
		b := f.Blocks[id]
		for i := range b.Insns {
			if e, ok := v.exprOf(&b.Insns[i]); ok {
				gen[id].set(e)
				if _, seen := av.canon[e]; !seen {
					av.canon[e] = canonSite{block: id, reg: b.Insns[i].Def}
				}
			}
		}
	}
	rpo := f.RPO()
	for _, id := range rpo {
		av.in[id] = newBitset(cap)
		av.out[id] = newBitset(cap)
		if id != rpo[0] {
			av.in[id].fill()
		}
		av.out[id].copyFrom(av.in[id])
		av.out[id].union(gen[id])
	}
	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			if id == rpo[0] {
				continue
			}
			b := f.Blocks[id]
			first := true
			for _, p := range b.Preds {
				if av.out[p] == nil {
					continue
				}
				if first {
					av.in[id].copyFrom(av.out[p])
					first = false
				} else {
					av.in[id].intersect(av.out[p])
				}
			}
			old := make(bitset, len(av.out[id]))
			old.copyFrom(av.out[id])
			av.out[id].copyFrom(av.in[id])
			av.out[id].union(gen[id])
			for i := range old {
				if old[i] != av.out[id][i] {
					changed = true
					break
				}
			}
		}
	}
	return av
}

// GCSE is dominator-based global common subexpression elimination
// (gcc's -fgcse): an instruction whose expression is available at its block
// entry, with the canonical computation in a dominating block, is folded
// onto the canonical register. Returns the number eliminated.
func GCSE(f *ir.Func) int {
	if f.Library {
		return 0
	}
	f.Invalidate()
	av := computeAvailability(f)
	repl := make(map[ir.Reg]ir.Reg)
	eliminated := 0
	for _, id := range f.RPO() {
		b := f.Blocks[id]
		kept := b.Insns[:0]
		for i := range b.Insns {
			in := b.Insns[i]
			e, ok := av.vn.exprOf(&in)
			if ok && av.in[id].has(e) {
				c := av.canon[e]
				if c.block != id && c.reg != in.Def && f.Dominates(c.block, id) {
					repl[in.Def] = c.reg
					eliminated++
					continue
				}
			}
			kept = append(kept, in)
		}
		b.Insns = kept
	}
	if eliminated > 0 {
		applyReplacements(f, repl)
		deadCode(f)
		f.Invalidate()
	}
	return eliminated
}

// PRE is partial redundancy elimination (gcc's -ftree-pre): at a two-way
// join where an expression is available from one predecessor only, the
// computation is inserted into the other predecessor and removed from the
// join. The loop-shaped case (header joining preheader and latch) turns
// conditionally-recomputed loop expressions into loop-carried registers.
// Returns the number of join computations removed.
func PRE(f *ir.Func) int {
	if f.Library {
		return 0
	}
	f.Invalidate()
	av := computeAvailability(f)
	defs := singleDefs(f)
	repl := make(map[ir.Reg]ir.Reg)
	dirty := make(map[int32]bool) // expressions whose sites were mutated
	removed := 0
	for _, id := range f.RPO() {
		b := f.Blocks[id]
		if len(b.Preds) != 2 {
			continue
		}
		p0, p1 := b.Preds[0], b.Preds[1]
		kept := b.Insns[:0]
		for i := range b.Insns {
			in := b.Insns[i]
			e, ok := av.vn.exprOf(&in)
			if !ok || dirty[e] {
				kept = append(kept, in)
				continue
			}
			have0, have1 := av.out[p0].has(e), av.out[p1].has(e)
			if have0 == have1 {
				kept = append(kept, in)
				continue
			}
			missing, having := p0, p1
			if have0 {
				missing, having = p1, p0
			}
			// Insertion happens at the end of the missing predecessor
			// only, so that block must have a single successor (no edge
			// splitting); in the loop-invariant case this is the
			// preheader. The having side only receives a register copy,
			// which is safe on any outgoing edge.
			if f.Blocks[missing].NumSuccs() != 1 {
				kept = append(kept, in)
				continue
			}
			// The operands must be computable at the end of the missing
			// predecessor, and untouched by earlier transformations.
			if !operandsAvailableAt(f, defs, &in, missing) || touched(repl, &in) {
				kept = append(kept, in)
				continue
			}
			c := av.canon[e]
			if !f.Dominates(c.block, having) {
				kept = append(kept, in)
				continue
			}
			t := f.NewReg()
			// Insert the computation into the missing predecessor.
			clone := in
			clone.Def = t
			clone.Flags |= ir.FlagMerge
			mb := f.Blocks[missing]
			mb.Insns = append(mb.Insns, clone)
			// Make the holder value reach the join under the same name.
			// (When the canonical site is the join itself - the
			// loop-invariant case - this becomes a self-move removed
			// below; the preheader insertion carries the value.)
			hb := f.Blocks[having]
			mv := ir.Insn{Op: isa.OpMove, Def: t, Use: [2]ir.Reg{c.reg}, Flags: ir.FlagMerge}
			hb.Insns = append(hb.Insns, mv)
			// Remove the join computation.
			repl[in.Def] = t
			dirty[e] = true
			removed++
		}
		b.Insns = kept
	}
	if removed > 0 {
		applyReplacements(f, repl)
		removeSelfMoves(f)
		deadCode(f)
		f.Invalidate()
	}
	return removed
}

// touched reports whether any operand of in has been rewritten by an
// earlier transformation in this pass (its value number would be stale).
func touched(repl map[ir.Reg]ir.Reg, in *ir.Insn) bool {
	for _, u := range in.Use {
		if u == ir.RegNone {
			continue
		}
		if _, ok := repl[u]; ok {
			return true
		}
	}
	return false
}

// operandsAvailableAt reports whether every register operand of in has its
// single definition in a block dominating blk (or is undefined/none).
func operandsAvailableAt(f *ir.Func, defs []*defSite, in *ir.Insn, blk int) bool {
	for _, u := range in.Use {
		if u == ir.RegNone {
			continue
		}
		ds := defs[u]
		if ds == nil {
			return false
		}
		if ds.block != blk && !f.Dominates(ds.block, blk) {
			return false
		}
	}
	return true
}

// GCSELoadAfterStore forwards stored values to loads of the same scalar
// location within a block (gcc's -fgcse-las). Calls kill the forwarding
// because the callee may store to the location.
func GCSELoadAfterStore(f *ir.Func) int {
	if f.Library {
		return 0
	}
	forwarded := 0
	for _, b := range f.Blocks {
		lastStore := map[int32]ir.Reg{} // scalar stream -> stored value
		for i := range b.Insns {
			in := &b.Insns[i]
			switch in.Op {
			case isa.OpCall:
				lastStore = map[int32]ir.Reg{}
			case isa.OpStore:
				if in.Mem.Kind == ir.MemScalar && in.Use[0] != ir.RegNone {
					lastStore[in.Mem.Stream] = in.Use[0]
				}
			case isa.OpLoad:
				if in.Mem.Kind != ir.MemScalar {
					continue
				}
				v, ok := lastStore[in.Mem.Stream]
				if !ok || in.Def == ir.RegNone {
					continue
				}
				// Replace the load with a register copy.
				*in = ir.Insn{Op: isa.OpMove, Def: in.Def, Use: [2]ir.Reg{v},
					Flags: in.Flags &^ ir.FlagAddrCalc}
				forwarded++
			}
		}
	}
	if forwarded > 0 {
		f.Invalidate()
	}
	return forwarded
}
