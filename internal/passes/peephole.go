package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// Peephole2 runs the post-register-allocation peephole pass (gcc's
// -fpeephole2). Two patterns with real machine equivalents on ARM/XScale:
//
//   - "move r, r" deletion (coalescing residue);
//   - folding a shift into the shifted-operand field of a dependent ALU
//     instruction, deleting the standalone shift, when the shift result is
//     not needed afterwards in the block.
//
// Returns the number of instructions removed.
func Peephole2(f *ir.Func) int {
	removed := 0
	for _, b := range f.Blocks {
		removed += removeSelfMovesBlock(b)
		removed += foldShifts(f, b)
	}
	if removed > 0 {
		f.Invalidate()
	}
	return removed
}

func removeSelfMovesBlock(b *ir.Block) int {
	removed := 0
	kept := b.Insns[:0]
	for i := range b.Insns {
		in := b.Insns[i]
		if in.Op == isa.OpMove && in.Def == in.Use[0] {
			removed++
			continue
		}
		kept = append(kept, in)
	}
	b.Insns = kept
	return removed
}

// foldShifts merges "shift t, x" with a following "alu d, t, y" (within a
// small window, no intervening reader/writer of t or writer of the shift
// input) when t's value dies at the ALU - i.e. t is redefined later in the
// block before any other use. This is the ARM shifted-operand encoding:
// the ALU instruction absorbs the shift for free.
func foldShifts(f *ir.Func, b *ir.Block) int {
	const window = 6
	removed := 0
	kept := b.Insns[:0]
	for i := 0; i < len(b.Insns); i++ {
		in := b.Insns[i]
		if in.Op != isa.OpShift || in.Def == ir.RegNone {
			kept = append(kept, in)
			continue
		}
		t, x := in.Def, in.Use[0]
		fold := -1
		for j := i + 1; j < len(b.Insns) && j <= i+window; j++ {
			nx := &b.Insns[j]
			usesT := nx.Use[0] == t || nx.Use[1] == t
			if usesT {
				if nx.Op == isa.OpALU && killedAfter(b, j+1, t) {
					fold = j
				}
				break
			}
			if nx.Def == t || nx.Def == x {
				break
			}
		}
		if fold < 0 {
			kept = append(kept, in)
			continue
		}
		nx := &b.Insns[fold]
		for k, u := range nx.Use {
			if u == t {
				nx.Use[k] = x
			}
		}
		removed++ // the shift disappears into the ALU operand
	}
	b.Insns = kept
	return removed
}

// killedAfter reports whether register r is redefined in block b at or
// after index from before any further use (its current value is dead).
func killedAfter(b *ir.Block, from int, r ir.Reg) bool {
	for i := from; i < len(b.Insns); i++ {
		in := &b.Insns[i]
		if in.Use[0] == r || in.Use[1] == r {
			return false
		}
		if in.Def == r {
			return true
		}
	}
	return false
}

// GCSEAfterReload removes redundant reloads of the same spill slot within
// a block (gcc's -fgcse-after-reload): a second load from a spill slot
// with no intervening store to that slot, call, or clobber of the held
// register is replaced by a register copy (or deleted when the target
// coincides). Returns the number of reloads removed.
func GCSEAfterReload(f *ir.Func) int {
	removed := 0
	for _, b := range f.Blocks {
		slotReg := map[int32]ir.Reg{} // spill slot -> register holding it
		kept := b.Insns[:0]
		for i := range b.Insns {
			in := b.Insns[i]
			isSpillStore := in.HasFlag(ir.FlagSpill) && in.Op == isa.OpStore
			isSpillLoad := in.HasFlag(ir.FlagSpill) && in.Op == isa.OpLoad
			if in.Op == isa.OpCall {
				slotReg = map[int32]ir.Reg{}
			}
			if isSpillLoad {
				if r, ok := slotReg[in.Imm]; ok {
					if r == in.Def {
						removed++ // value already in the right register
						continue
					}
					in = ir.Insn{Op: isa.OpMove, Def: in.Def,
						Use: [2]ir.Reg{r}, Imm: in.Imm, Flags: ir.FlagSpill}
					removed++
				}
			}
			// A redefinition of a holding register invalidates it.
			if in.Def != ir.RegNone {
				for slot, r := range slotReg {
					if r == in.Def {
						delete(slotReg, slot)
					}
				}
			}
			switch {
			case isSpillStore:
				slotReg[in.Imm] = in.Use[0]
			case isSpillLoad:
				slotReg[in.Imm] = in.Def
			}
			kept = append(kept, in)
		}
		b.Insns = kept
	}
	if removed > 0 {
		f.Invalidate()
	}
	return removed
}
