package passes

import (
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// InlineParams carries the five gcc inlining budgets of the Figure 3 space.
type InlineParams struct {
	// MaxInsnsAuto is the callee size limit (after subtracting the saved
	// call cost) for automatic inlining (max-inline-insns-auto).
	MaxInsnsAuto int
	// LargeFunctionInsns and LargeFunctionGrowth bound the caller: a
	// function beyond LargeFunctionInsns may grow at most
	// LargeFunctionGrowth percent (large-function-insns/-growth).
	LargeFunctionInsns  int
	LargeFunctionGrowth int
	// LargeUnitInsns and UnitGrowth bound the whole module analogously
	// (large-unit-insns, inline-unit-growth).
	LargeUnitInsns int
	UnitGrowth     int
	// CallCost is the estimated overhead of a call, credited against the
	// callee size (inline-call-cost).
	CallCost int
}

// Inline performs bottom-up call-site inlining (gcc's -finline-functions)
// under the given budgets. Library functions are opaque and never inlined.
// Returns the number of call sites inlined.
func Inline(m *ir.Module, p InlineParams) int {
	origUnit := m.Size()
	unitBudget := origUnit + origUnit*p.UnitGrowth/100
	if unitBudget < p.LargeUnitInsns {
		unitBudget = p.LargeUnitInsns
	}
	origSize := make([]int, len(m.Funcs))
	for i, f := range m.Funcs {
		origSize[i] = f.Size()
	}

	inlined := 0
	unit := origUnit
	// Bottom-up over the call graph so call chains collapse: callees are
	// processed before callers (the verifier guarantees acyclicity).
	for _, fi := range calleeFirstOrder(m) {
		f := m.Funcs[fi]
		if f.Library {
			continue
		}
		funcBudget := origSize[fi] + origSize[fi]*p.LargeFunctionGrowth/100
		if funcBudget < p.LargeFunctionInsns {
			funcBudget = p.LargeFunctionInsns
		}
		for {
			site := findInlinableCall(m, f, p)
			if site == nil {
				break
			}
			callee := m.Funcs[site.callee]
			growth := callee.Size() - 1 // the call instruction disappears
			if f.Size()+growth > funcBudget || unit+growth > unitBudget {
				// Budget exhausted: mark so we stop rescanning.
				site.insn.Flags |= ir.FlagGuard
				continue
			}
			inlineAt(f, site, callee)
			unit += growth
			inlined++
		}
		// Clear the budget markers.
		for _, b := range f.Blocks {
			for i := range b.Insns {
				if b.Insns[i].Op == isa.OpCall {
					b.Insns[i].Flags &^= ir.FlagGuard
				}
			}
		}
	}
	return inlined
}

type callSite struct {
	block  int
	index  int
	callee int
	insn   *ir.Insn
}

// findInlinableCall locates the next call site whose callee passes the
// per-callee size test.
func findInlinableCall(m *ir.Module, f *ir.Func, p InlineParams) *callSite {
	for _, b := range f.Blocks {
		for i := range b.Insns {
			in := &b.Insns[i]
			if in.Op != isa.OpCall || in.HasFlag(ir.FlagGuard) || in.HasFlag(ir.FlagTailCall) {
				continue
			}
			callee := m.Funcs[in.Callee]
			if callee.Library || callee.ID == f.ID {
				continue
			}
			if callee.Size()-p.CallCost > p.MaxInsnsAuto {
				in.Flags |= ir.FlagGuard // too big: skip permanently
				continue
			}
			return &callSite{block: b.ID, index: i, callee: int(in.Callee), insn: in}
		}
	}
	return nil
}

// calleeFirstOrder returns function indices so that callees precede
// callers (reverse topological order of the acyclic call graph).
func calleeFirstOrder(m *ir.Module) []int {
	n := len(m.Funcs)
	visited := make([]bool, n)
	var order []int
	var visit func(i int)
	visit = func(i int) {
		if visited[i] {
			return
		}
		visited[i] = true
		for _, b := range m.Funcs[i].Blocks {
			for j := range b.Insns {
				if b.Insns[j].Op == isa.OpCall {
					visit(int(b.Insns[j].Callee))
				}
			}
		}
		order = append(order, i)
	}
	for i := 0; i < n; i++ {
		visit(i)
	}
	return order
}

// inlineAt splices the callee body into f at the call site: the call block
// is split, the callee's blocks are copied with fresh registers and block
// IDs, rets become jumps to the continuation.
func inlineAt(f *ir.Func, site *callSite, callee *ir.Func) {
	f.Invalidate()
	cb := f.Blocks[site.block]

	// Split: continuation block receives the instructions after the call
	// and the original terminator.
	cont := &ir.Block{ID: len(f.Blocks), Term: cb.Term}
	cont.Insns = append(cont.Insns, cb.Insns[site.index+1:]...)
	f.Blocks = append(f.Blocks, cont)
	cb.Insns = cb.Insns[:site.index]

	// Copy callee blocks with register and block renaming.
	regMap := make(map[ir.Reg]ir.Reg, callee.NextReg)
	mapReg := func(r ir.Reg) ir.Reg {
		if r == ir.RegNone {
			return ir.RegNone
		}
		n, ok := regMap[r]
		if !ok {
			n = f.NewReg()
			regMap[r] = n
		}
		return n
	}
	idBase := len(f.Blocks)
	for range callee.Blocks {
		f.Blocks = append(f.Blocks, &ir.Block{ID: len(f.Blocks)})
	}
	for bi, src := range callee.Blocks {
		dst := f.Blocks[idBase+bi]
		dst.Align = src.Align
		dst.Insns = make([]ir.Insn, len(src.Insns))
		copy(dst.Insns, src.Insns)
		for i := range dst.Insns {
			in := &dst.Insns[i]
			in.Def = mapReg(in.Def)
			in.Use[0] = mapReg(in.Use[0])
			in.Use[1] = mapReg(in.Use[1])
		}
		t := src.Term
		t.CondReg = mapReg(t.CondReg)
		switch t.Kind {
		case ir.TermRet:
			t = ir.Term{Kind: ir.TermJump, Taken: cont.ID}
		case ir.TermJump:
			t.Taken += idBase
		case ir.TermBranch:
			t.Taken += idBase
			t.Fall += idBase
			if t.InvariantIn > 0 {
				t.InvariantIn += idBase
			}
		case ir.TermFall:
			t.Fall += idBase
		}
		dst.Term = t
	}

	// The call block now falls into the inlined entry.
	cb.Term = ir.Term{Kind: ir.TermFall, Fall: idBase}
	f.Invalidate()
}

// SiblingCalls converts calls in tail position (a call immediately
// followed by a return) into tail calls (gcc's -foptimize-sibling-calls):
// the return through the caller's frame is skipped. Returns conversions.
func SiblingCalls(m *ir.Module) int {
	converted := 0
	for _, f := range m.Funcs {
		if f.Library {
			continue
		}
		for _, b := range f.Blocks {
			if b.Term.Kind != ir.TermRet || len(b.Insns) == 0 {
				continue
			}
			last := &b.Insns[len(b.Insns)-1]
			if last.Op == isa.OpCall && !last.HasFlag(ir.FlagTailCall) {
				last.Flags |= ir.FlagTailCall
				converted++
			}
		}
	}
	return converted
}
