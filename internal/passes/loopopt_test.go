package passes

import (
	"testing"

	"portcc/internal/ir"
	"portcc/internal/isa"
)

// countedLoop builds pre -> header(body) -> latch-branch with trip count.
func countedLoop(trip int32, bodySize int) (*ir.Func, *ir.Block) {
	b := newTB()
	iv := b.reg()
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpALU, Def: iv, Imm: 100, Flags: ir.FlagMerge})
	header, exit := b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermFall, Fall: header.ID}
	b.cur = header
	for i := 0; i < bodySize; i++ {
		b.store(b.aluTag(int32(i + 1)))
	}
	header.Insns = append(header.Insns, ir.Insn{Op: isa.OpALU, Def: iv,
		Use: [2]ir.Reg{iv}, Imm: 1, Flags: ir.FlagMerge | ir.FlagInduction})
	cond := b.reg()
	header.Insns = append(header.Insns, ir.Insn{Op: isa.OpALU, Def: cond, Use: [2]ir.Reg{iv}, Imm: 101})
	header.Term = ir.Term{Kind: ir.TermBranch, Taken: header.ID, Fall: exit.ID,
		Trip: trip, CondReg: cond, Site: 1}
	exit.Term = ir.Term{Kind: ir.TermRet}
	return b.f, header
}

func TestUnrollReplicatesBody(t *testing.T) {
	f, header := countedLoop(16, 3)
	sizeBefore := f.Size()
	if n := Unroll(f, 4, 400); n != 1 {
		t.Fatalf("unrolled %d loops, want 1", n)
	}
	if f.Size() < 3*sizeBefore {
		t.Errorf("size %d -> %d: body not replicated ~4x", sizeBefore, f.Size())
	}
	// The original latch must now fall through; a new latch carries the
	// back edge with the reduced trip count.
	if header.Term.Kind == ir.TermBranch {
		t.Error("original latch should no longer hold the back edge")
	}
	var latches int
	for _, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermBranch && blk.Term.Taken == header.ID {
			latches++
			if blk.Term.Trip != 4 {
				t.Errorf("new trip = %d, want 16/4 = 4", blk.Term.Trip)
			}
		}
	}
	if latches != 1 {
		t.Errorf("%d back edges, want 1", latches)
	}
}

func TestUnrollRespectsSizeBudget(t *testing.T) {
	f, _ := countedLoop(16, 40) // body ~81 instructions
	if n := Unroll(f, 8, 100); n != 0 {
		t.Errorf("unrolled despite max_unrolled_insns budget (%d)", n)
	}
}

func TestUnrollSkipsUncountedLoops(t *testing.T) {
	f, header := countedLoop(0, 3)
	header.Term.Prob = 0.9 // probabilistic latch
	if n := Unroll(f, 4, 400); n != 0 {
		t.Errorf("unrolled a non-counted loop (%d)", n)
	}
}

func TestStrengthReduce(t *testing.T) {
	f, header := countedLoop(8, 1)
	// Insert a multiply by the induction variable.
	iv := header.Insns[len(header.Insns)-2].Def // the induction update's reg
	mul := ir.Insn{Op: isa.OpMul, Def: f.NewReg(), Use: [2]ir.Reg{iv},
		Imm: 55, Flags: ir.FlagMulByIndex}
	header.Insns = append([]ir.Insn{mul}, header.Insns...)
	header.Insns = append(header.Insns, ir.Insn{Op: isa.OpStore,
		Use: [2]ir.Reg{mul.Def}, Mem: ir.MemRef{Stream: 3, Kind: ir.MemSeq, WSet: 64, Stride: 4}})
	f.Invalidate()
	if n := StrengthReduce(f); n != 1 {
		t.Fatalf("reduced %d multiplies, want 1", n)
	}
	for _, in := range header.Insns {
		if in.Op == isa.OpMul {
			t.Error("multiply survived strength reduction")
		}
	}
}

func TestUnswitchDuplicatesLoop(t *testing.T) {
	// Loop whose body branches on an invariant condition.
	b := newTB()
	cond := b.aluTag(1)
	header, thenB, elseB, latch, exit := b.block(), b.block(), b.block(), b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermFall, Fall: header.ID}
	header.Insns = []ir.Insn{{Op: isa.OpALU, Def: b.reg(), Imm: 2}}
	header.Term = ir.Term{Kind: ir.TermBranch, Taken: thenB.ID, Fall: elseB.ID,
		Prob: 0.5, CondReg: cond, InvariantIn: header.ID, Site: 2}
	thenB.Insns = []ir.Insn{{Op: isa.OpALU, Def: b.reg(), Imm: 3}}
	thenB.Term = ir.Term{Kind: ir.TermJump, Taken: latch.ID}
	elseB.Insns = []ir.Insn{{Op: isa.OpALU, Def: b.reg(), Imm: 4}}
	elseB.Term = ir.Term{Kind: ir.TermFall, Fall: latch.ID}
	latch.Term = ir.Term{Kind: ir.TermBranch, Taken: header.ID, Fall: exit.ID, Trip: 8, Site: 3}
	exit.Term = ir.Term{Kind: ir.TermRet}

	nBlocks := len(b.f.Blocks)
	if n := Unswitch(b.f); n != 1 {
		t.Fatalf("unswitched %d loops, want 1", n)
	}
	if len(b.f.Blocks) <= nBlocks {
		t.Error("loop body not duplicated")
	}
	// The preheader must now select between two loop versions.
	if b.f.Blocks[0].Term.Kind != ir.TermBranch {
		t.Error("preheader must branch between the two versions")
	}
	// The in-loop invariant branch must be folded in both copies.
	if header.Term.Kind == ir.TermBranch && header.Term.CondReg == cond {
		t.Error("invariant branch survived inside the original copy")
	}
}

func TestInlineSplicesCallee(t *testing.T) {
	// caller: entry calls callee then returns; callee: small body.
	caller := &ir.Func{Name: "caller", ID: 0, NextReg: 5}
	caller.Blocks = []*ir.Block{{ID: 0,
		Insns: []ir.Insn{
			{Op: isa.OpALU, Def: 1, Imm: 1},
			{Op: isa.OpCall, Callee: 1},
			{Op: isa.OpALU, Def: 2, Imm: 2},
			{Op: isa.OpStore, Use: [2]ir.Reg{2}, Mem: ir.MemRef{Stream: 1, Kind: ir.MemSeq, WSet: 64, Stride: 4}},
		},
		Term: ir.Term{Kind: ir.TermRet}}}
	callee := &ir.Func{Name: "callee", ID: 1, NextReg: 3}
	callee.Blocks = []*ir.Block{{ID: 0,
		Insns: []ir.Insn{
			{Op: isa.OpALU, Def: 1, Imm: 10},
			{Op: isa.OpStore, Use: [2]ir.Reg{1}, Mem: ir.MemRef{Stream: 2, Kind: ir.MemSeq, WSet: 64, Stride: 4}},
		},
		Term: ir.Term{Kind: ir.TermRet}}}
	m := &ir.Module{Name: "inl", Funcs: []*ir.Func{caller, callee}}
	n := Inline(m, InlineParams{MaxInsnsAuto: 120, LargeFunctionInsns: 2700,
		LargeFunctionGrowth: 100, LargeUnitInsns: 10000, UnitGrowth: 100, CallCost: 16})
	if n != 1 {
		t.Fatalf("inlined %d call sites, want 1", n)
	}
	for _, b := range caller.Blocks {
		for _, in := range b.Insns {
			if in.Op == isa.OpCall {
				t.Fatal("call instruction survived inlining")
			}
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("inlined module fails verification: %v", err)
	}
}

func TestInlineRespectsCalleeSizeLimit(t *testing.T) {
	caller := &ir.Func{Name: "caller", ID: 0, NextReg: 2}
	caller.Blocks = []*ir.Block{{ID: 0,
		Insns: []ir.Insn{{Op: isa.OpCall, Callee: 1}},
		Term:  ir.Term{Kind: ir.TermRet}}}
	big := &ir.Func{Name: "big", ID: 1, NextReg: 200}
	blk := &ir.Block{ID: 0, Term: ir.Term{Kind: ir.TermRet}}
	for i := 0; i < 150; i++ {
		blk.Insns = append(blk.Insns, ir.Insn{Op: isa.OpALU, Def: ir.Reg(i + 1), Imm: int32(i)})
	}
	big.Blocks = []*ir.Block{blk}
	m := &ir.Module{Name: "big", Funcs: []*ir.Func{caller, big}}
	n := Inline(m, InlineParams{MaxInsnsAuto: 120, LargeFunctionInsns: 2700,
		LargeFunctionGrowth: 100, LargeUnitInsns: 10000, UnitGrowth: 100, CallCost: 16})
	if n != 0 {
		t.Errorf("inlined an oversized callee (%d)", n)
	}
}

func TestSiblingCalls(t *testing.T) {
	caller := &ir.Func{Name: "caller", ID: 0, NextReg: 2}
	caller.Blocks = []*ir.Block{{ID: 0,
		Insns: []ir.Insn{{Op: isa.OpCall, Callee: 1}},
		Term:  ir.Term{Kind: ir.TermRet}}}
	leaf := &ir.Func{Name: "leaf", ID: 1, NextReg: 2}
	leaf.Blocks = []*ir.Block{{ID: 0,
		Insns: []ir.Insn{{Op: isa.OpALU, Def: 1, Imm: 1}},
		Term:  ir.Term{Kind: ir.TermRet}}}
	m := &ir.Module{Name: "sib", Funcs: []*ir.Func{caller, leaf}}
	if n := SiblingCalls(m); n != 1 {
		t.Fatalf("converted %d sibling calls, want 1", n)
	}
	if !caller.Blocks[0].Insns[0].HasFlag(ir.FlagTailCall) {
		t.Error("tail-position call not marked")
	}
}

func TestStoreMotionPromotesScalar(t *testing.T) {
	b := newTB()
	header, exit := b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermFall, Fall: header.ID}
	scalar := ir.MemRef{Stream: 9, Kind: ir.MemScalar, WSet: 4}
	v := b.f.NewReg()
	s := b.f.NewReg()
	header.Insns = []ir.Insn{
		{Op: isa.OpLoad, Def: v, Mem: scalar},
		{Op: isa.OpALU, Def: s, Use: [2]ir.Reg{v}, Imm: 1},
		{Op: isa.OpStore, Use: [2]ir.Reg{s}, Mem: scalar},
	}
	header.Term = ir.Term{Kind: ir.TermBranch, Taken: header.ID, Fall: exit.ID, Trip: 8}
	exit.Term = ir.Term{Kind: ir.TermRet}

	if n := StoreMotion(b.f); n != 1 {
		t.Fatalf("promoted %d scalars, want 1", n)
	}
	for _, in := range header.Insns {
		if in.Op.IsMem() {
			t.Error("memory access survived inside the loop")
		}
	}
	// One store must now sit on the exit.
	hasStore := false
	for _, in := range exit.Insns {
		if in.Op == isa.OpStore {
			hasStore = true
		}
	}
	if !hasStore {
		t.Error("promoted value not stored back at the loop exit")
	}
}

func TestLoadAfterStoreForwarding(t *testing.T) {
	b := newTB()
	scalar := ir.MemRef{Stream: 9, Kind: ir.MemScalar, WSet: 4}
	val := b.aluTag(1)
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpStore, Use: [2]ir.Reg{val}, Mem: scalar})
	ld := b.f.NewReg()
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpLoad, Def: ld, Mem: scalar})
	b.store(ld)
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	if n := GCSELoadAfterStore(b.f); n != 1 {
		t.Fatalf("forwarded %d loads, want 1", n)
	}
	for _, in := range b.f.Blocks[0].Insns {
		if in.Op == isa.OpLoad {
			t.Error("load survived store-to-load forwarding")
		}
	}
}
