package passes

import (
	"testing"

	"portcc/internal/ir"
	"portcc/internal/isa"
)

// tb is a tiny IR test builder.
type tb struct {
	f    *ir.Func
	cur  *ir.Block
	next ir.Reg
}

func newTB() *tb {
	f := &ir.Func{Name: "t", NextReg: 1}
	b := &ir.Block{ID: 0}
	f.Blocks = []*ir.Block{b}
	return &tb{f: f, cur: b, next: 1}
}

func (t *tb) reg() ir.Reg {
	r := t.f.NewReg()
	return r
}

func (t *tb) alu(uses ...ir.Reg) ir.Reg {
	d := t.reg()
	in := ir.Insn{Op: isa.OpALU, Def: d, Imm: 7}
	copy(in.Use[:], uses)
	t.cur.Insns = append(t.cur.Insns, in)
	return d
}

func (t *tb) aluTag(tag int32, uses ...ir.Reg) ir.Reg {
	d := t.reg()
	in := ir.Insn{Op: isa.OpALU, Def: d, Imm: tag}
	copy(in.Use[:], uses)
	t.cur.Insns = append(t.cur.Insns, in)
	return d
}

func (t *tb) store(v ir.Reg) {
	t.cur.Insns = append(t.cur.Insns, ir.Insn{Op: isa.OpStore, Use: [2]ir.Reg{v},
		Mem: ir.MemRef{Stream: 1, Kind: ir.MemSeq, WSet: 64, Stride: 4}})
}

func (t *tb) block() *ir.Block {
	b := &ir.Block{ID: len(t.f.Blocks)}
	t.f.Blocks = append(t.f.Blocks, b)
	return b
}

func insnCount(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insns)
	}
	return n
}

// ------------------------------------------------------------------ DCE

func TestDeadCodeRemovesChains(t *testing.T) {
	b := newTB()
	a := b.aluTag(1)
	c := b.aluTag(2, a) // feeds nothing
	_ = c
	live := b.aluTag(3)
	b.store(live)
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	n := deadCode(b.f)
	if n != 2 {
		t.Errorf("removed %d, want 2 (the dead chain)", n)
	}
	if insnCount(b.f) != 2 {
		t.Errorf("%d instructions left, want store+producer", insnCount(b.f))
	}
}

func TestDeadCodeKeepsStoresAndMerges(t *testing.T) {
	b := newTB()
	acc := b.reg()
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpALU, Def: acc, Flags: ir.FlagMerge})
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	if n := deadCode(b.f); n != 0 {
		t.Errorf("merge-flagged accumulator removed (%d)", n)
	}
}

// ------------------------------------------------------------------ CSE

func TestLocalCSEEliminatesDuplicate(t *testing.T) {
	b := newTB()
	x := b.aluTag(1)
	y := b.aluTag(2, x)
	y2 := b.aluTag(2, x) // identical computation
	b.store(y)
	b.store(y2)
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	if n := LocalCSE(b.f, false, false); n != 1 {
		t.Fatalf("eliminated %d, want 1", n)
	}
	// The second store must now use the first value.
	var storeUses []ir.Reg
	for _, in := range b.f.Blocks[0].Insns {
		if in.Op == isa.OpStore {
			storeUses = append(storeUses, in.Use[0])
		}
	}
	if len(storeUses) != 2 || storeUses[0] != storeUses[1] {
		t.Errorf("stores use %v, want the same register", storeUses)
	}
}

func TestLocalCSEDistinguishesTags(t *testing.T) {
	b := newTB()
	x := b.aluTag(1)
	b.store(b.aluTag(2, x))
	b.store(b.aluTag(3, x)) // different semantic tag: not redundant
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	if n := LocalCSE(b.f, false, false); n != 0 {
		t.Errorf("eliminated %d semantically distinct computations", n)
	}
}

func TestCSEFollowJumpsCrossesBlocks(t *testing.T) {
	b := newTB()
	x := b.aluTag(1)
	y1 := b.aluTag(2, x)
	b.store(y1)
	second := b.block()
	b.cur.Term = ir.Term{Kind: ir.TermFall, Fall: second.ID}
	b.cur = second
	y2 := b.aluTag(2, x)
	b.store(y2)
	b.cur.Term = ir.Term{Kind: ir.TermRet}

	clone := b.f.Clone()
	if n := LocalCSE(clone, false, false); n != 0 {
		t.Errorf("plain local CSE crossed a block boundary (%d)", n)
	}
	if n := LocalCSE(b.f, true, false); n != 1 {
		t.Errorf("follow-jumps CSE eliminated %d, want 1", n)
	}
}

// ------------------------------------------------------------------ GCSE

// gcseDiamond: the expression is computed in the entry (dominating) and
// recomputed in the join.
func gcseDiamond() (*ir.Func, ir.Reg) {
	b := newTB()
	x := b.aluTag(1)
	v1 := b.aluTag(5, x)
	b.store(v1)
	left, right, join := b.block(), b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermBranch, Taken: left.ID, Fall: right.ID, Prob: 0.5}
	left.Term = ir.Term{Kind: ir.TermJump, Taken: join.ID}
	right.Term = ir.Term{Kind: ir.TermFall, Fall: join.ID}
	b.cur = join
	v2 := b.aluTag(5, x) // fully redundant: dominated by entry's copy
	b.store(v2)
	join.Term = ir.Term{Kind: ir.TermRet}
	return b.f, x
}

func TestGCSEEliminatesDominatedRedundancy(t *testing.T) {
	f, _ := gcseDiamond()
	if n := GCSE(f); n != 1 {
		t.Fatalf("GCSE eliminated %d, want 1", n)
	}
}

func TestPRELoopInvariant(t *testing.T) {
	// preheader -> header(join) <- latch; expression computed only inside
	// the loop: PRE must insert it into the preheader and delete the
	// in-loop copy.
	b := newTB()
	x := b.aluTag(1)
	_ = x
	header, latch, exit := b.block(), b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermFall, Fall: header.ID}
	b.cur = header
	v := b.aluTag(9, x)
	b.store(v)
	header.Term = ir.Term{Kind: ir.TermFall, Fall: latch.ID}
	latch.Term = ir.Term{Kind: ir.TermBranch, Taken: header.ID, Fall: exit.ID, Trip: 10}
	exit.Term = ir.Term{Kind: ir.TermRet}

	if n := PRE(b.f); n != 1 {
		t.Fatalf("PRE removed %d join computations, want 1", n)
	}
	// The preheader (block 0) must now hold the computation.
	found := false
	for _, in := range b.f.Blocks[0].Insns {
		if in.Op == isa.OpALU && in.Imm == 9 {
			found = true
		}
	}
	if !found {
		t.Error("PRE did not insert the computation into the preheader")
	}
	// And the header must not recompute it.
	for _, in := range header.Insns {
		if in.Op == isa.OpALU && in.Imm == 9 {
			t.Error("header still recomputes the expression")
		}
	}
}

// ------------------------------------------------------------------ LICM

func licmLoop(loadKind ir.MemKind, readOnly bool) (*ir.Func, *ir.Block, *ir.Block) {
	b := newTB()
	base := b.aluTag(1)
	header, exit := b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermFall, Fall: header.ID}
	b.cur = header
	inv := b.aluTag(3, base) // invariant computation
	ld := b.reg()
	header.Insns = append(header.Insns, ir.Insn{Op: isa.OpLoad, Def: ld, Use: [2]ir.Reg{base},
		Imm: 4, Mem: ir.MemRef{Stream: 5, Kind: loadKind, WSet: 256, Stride: 4, ReadOnly: readOnly}})
	s := b.aluTag(6, inv, ld)
	b.store(s)
	header.Term = ir.Term{Kind: ir.TermBranch, Taken: header.ID, Fall: exit.ID, Trip: 8}
	exit.Term = ir.Term{Kind: ir.TermRet}
	return b.f, b.f.Blocks[0], header
}

func TestLICMHoistsInvariantALU(t *testing.T) {
	f, pre, header := licmLoop(ir.MemSeq, false)
	n := LICM(f, false, map[int32]bool{})
	if n != 1 {
		t.Fatalf("hoisted %d, want 1 (the ALU only)", n)
	}
	if len(pre.Insns) != 2 { // base + hoisted
		t.Errorf("preheader has %d instructions, want 2", len(pre.Insns))
	}
	// The streaming load must stay.
	hasLoad := false
	for _, in := range header.Insns {
		if in.Op == isa.OpLoad {
			hasLoad = true
		}
	}
	if !hasLoad {
		t.Error("streaming load must never be hoisted")
	}
}

func TestLICMLoadMotionOnlyForTables(t *testing.T) {
	f, pre, _ := licmLoop(ir.MemTable, true)
	n := LICM(f, true, map[int32]bool{})
	// The invariant ALU, the table load, and the consumer that becomes
	// invariant once the load moves (chained hoisting).
	if n != 3 {
		t.Fatalf("hoisted %d, want 3", n)
	}
	loads := 0
	for _, in := range pre.Insns {
		if in.Op == isa.OpLoad {
			loads++
		}
	}
	if loads != 1 {
		t.Error("table load not hoisted to the preheader")
	}
	// Without load motion the table load must stay put.
	f2, _, header2 := licmLoop(ir.MemTable, true)
	LICM(f2, false, map[int32]bool{})
	stays := false
	for _, in := range header2.Insns {
		if in.Op == isa.OpLoad {
			stays = true
		}
	}
	if !stays {
		t.Error("-fno-gcse-lm must keep loads in the loop")
	}
}

// ------------------------------------------------------------------ VRP

func TestVRPFoldsGuards(t *testing.T) {
	b := newTB()
	cond := b.aluTag(1)
	side, main := b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermBranch, Taken: side.ID, Fall: main.ID,
		Prob: 0, CondReg: cond, Guard: true}
	side.Insns = append(side.Insns, ir.Insn{Op: isa.OpALU, Def: b.reg(), Imm: 99})
	side.Term = ir.Term{Kind: ir.TermJump, Taken: main.ID}
	b.cur = main
	b.store(b.aluTag(2))
	main.Term = ir.Term{Kind: ir.TermRet}

	before := len(b.f.Blocks)
	if n := VRP(b.f); n != 1 {
		t.Fatalf("folded %d guards, want 1", n)
	}
	if len(b.f.Blocks) >= before {
		t.Error("unreachable guard arm not removed")
	}
	if b.f.Blocks[0].Term.Kind == ir.TermBranch {
		t.Error("guard branch survived VRP")
	}
}

// ------------------------------------------------------------ jump opts

func TestThreadJumpsSkipsEmptyBlocks(t *testing.T) {
	b := newTB()
	empty, target := b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermJump, Taken: empty.ID}
	empty.Term = ir.Term{Kind: ir.TermJump, Taken: target.ID}
	b.cur = target
	b.store(b.aluTag(1))
	target.Term = ir.Term{Kind: ir.TermRet}
	if n := ThreadJumps(b.f); n == 0 {
		t.Fatal("jump through empty block not threaded")
	}
	if b.f.Blocks[0].Term.Taken != 1 { // target renumbered after compact
		t.Errorf("entry jumps to b%d", b.f.Blocks[0].Term.Taken)
	}
	if len(b.f.Blocks) != 2 {
		t.Errorf("%d blocks left, want 2 (forwarder removed)", len(b.f.Blocks))
	}
}

func TestCrossJumpMergesTails(t *testing.T) {
	b := newTB()
	left, right, join := b.block(), b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermBranch, Taken: left.ID, Fall: right.ID, Prob: 0.5}
	tail := ir.Insn{Op: isa.OpALU, Def: 0, Imm: 42} // post-RA style: same regs
	tail.Def = 5
	left.Insns = []ir.Insn{{Op: isa.OpALU, Def: 3, Imm: 1}, tail}
	right.Insns = []ir.Insn{{Op: isa.OpALU, Def: 4, Imm: 2}, tail}
	left.Term = ir.Term{Kind: ir.TermJump, Taken: join.ID}
	right.Term = ir.Term{Kind: ir.TermFall, Fall: join.ID}
	join.Term = ir.Term{Kind: ir.TermRet}

	if n := CrossJump(b.f); n != 1 {
		t.Fatalf("cross-jumped %d instructions, want 1", n)
	}
	if len(join.Insns) != 1 || join.Insns[0].Imm != 42 {
		t.Error("common tail not moved into the join")
	}
	if len(left.Insns) != 1 || len(right.Insns) != 1 {
		t.Error("tails not removed from predecessors")
	}
}

// ------------------------------------------------------------ scheduling

func TestSchedulePreservesInstructions(t *testing.T) {
	b := newTB()
	// load feeding an immediate consumer: the scheduler must hoist the
	// independent work between them.
	addr := b.aluTag(1)
	ld := b.reg()
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpLoad, Def: ld, Use: [2]ir.Reg{addr},
		Mem: ir.MemRef{Stream: 2, Kind: ir.MemSeq, WSet: 64, Stride: 4}})
	use := b.aluTag(2, ld)
	i1 := b.aluTag(3) // independent work
	i2 := b.aluTag(4)
	b.store(use)
	b.store(i1)
	b.store(i2)
	b.cur.Term = ir.Term{Kind: ir.TermRet}

	before := map[int32]int{}
	for _, in := range b.cur.Insns {
		before[in.Imm]++
	}
	Schedule(b.f, false, false)
	after := map[int32]int{}
	for _, in := range b.f.Blocks[0].Insns {
		after[in.Imm]++
	}
	if len(before) != len(after) {
		t.Fatal("scheduling changed the instruction multiset")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("scheduling changed the instruction multiset at tag %d", k)
		}
	}
	// The load's consumer must no longer be adjacent.
	insns := b.f.Blocks[0].Insns
	for i, in := range insns {
		if in.Op == isa.OpLoad {
			if i+1 < len(insns) && (insns[i+1].Use[0] == in.Def || insns[i+1].Use[1] == in.Def) {
				t.Error("scheduler left the load-use pair adjacent despite independent work")
			}
		}
	}
}

func TestScheduleRespectsDeps(t *testing.T) {
	b := newTB()
	v1 := b.aluTag(1)
	v2 := b.aluTag(2, v1)
	v3 := b.aluTag(3, v2)
	b.store(v3)
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	Schedule(b.f, false, false)
	pos := map[ir.Reg]int{}
	for i, in := range b.f.Blocks[0].Insns {
		if in.Def != ir.RegNone {
			pos[in.Def] = i
		}
		for _, u := range in.Use {
			if u != ir.RegNone {
				if p, ok := pos[u]; !ok || p >= i {
					t.Fatalf("instruction %d uses a value defined later", i)
				}
			}
		}
	}
}

func TestScheduleStoreOrderPreserved(t *testing.T) {
	b := newTB()
	a := b.aluTag(1)
	c := b.aluTag(2)
	b.store(a)
	b.store(c)
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	Schedule(b.f, false, false)
	var imms []ir.Reg
	for _, in := range b.f.Blocks[0].Insns {
		if in.Op == isa.OpStore {
			imms = append(imms, in.Use[0])
		}
	}
	if len(imms) != 2 || imms[0] != a || imms[1] != c {
		t.Error("stores were reordered")
	}
}

// -------------------------------------------------------------- regmove

func TestRegmoveForwardsCopies(t *testing.T) {
	b := newTB()
	x := b.aluTag(1)
	cp := b.reg()
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpMove, Def: cp, Use: [2]ir.Reg{x}})
	b.store(cp)
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	if n := Regmove(b.f); n == 0 {
		t.Fatal("copy not forwarded")
	}
	for _, in := range b.f.Blocks[0].Insns {
		if in.Op == isa.OpMove {
			t.Error("move instruction survived regmove")
		}
		if in.Op == isa.OpStore && in.Use[0] != x {
			t.Error("store not rewritten to the copy source")
		}
	}
}

// -------------------------------------------------------------- peephole

func TestPeephole2FoldsShift(t *testing.T) {
	b := newTB()
	x := b.aluTag(1)
	sh := b.reg()
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpShift, Def: sh, Use: [2]ir.Reg{x}, Imm: 2})
	sum := b.reg()
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpALU, Def: sum, Use: [2]ir.Reg{sh, x}, Imm: 3})
	// Redefine sh so its value is provably dead (post-RA register reuse).
	b.cur.Insns = append(b.cur.Insns, ir.Insn{Op: isa.OpALU, Def: sh, Imm: 4, Flags: ir.FlagMerge})
	b.store(sum)
	b.store(sh)
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	if n := Peephole2(b.f); n != 1 {
		t.Fatalf("folded %d shifts, want 1", n)
	}
	for _, in := range b.f.Blocks[0].Insns {
		if in.Op == isa.OpShift {
			t.Error("shift survived the fold")
		}
		if in.Op == isa.OpALU && in.Imm == 3 && in.Use[0] != x {
			t.Error("ALU operand not rewritten to the shift input")
		}
	}
}

func TestGCSEAfterReloadRemovesRedundantReload(t *testing.T) {
	frame := ir.MemRef{Stream: 1 << 20, Kind: ir.MemStack, WSet: 4096}
	b := newTB()
	b.cur.Insns = []ir.Insn{
		{Op: isa.OpStore, Use: [2]ir.Reg{3}, Imm: 0, Mem: frame, Flags: ir.FlagSpill},
		{Op: isa.OpLoad, Def: 4, Imm: 0, Mem: frame, Flags: ir.FlagSpill},
		{Op: isa.OpALU, Def: 5, Use: [2]ir.Reg{4}, Imm: 1},
	}
	b.store(5)
	b.cur.Term = ir.Term{Kind: ir.TermRet}
	if n := GCSEAfterReload(b.f); n != 1 {
		t.Fatalf("removed %d reloads, want 1", n)
	}
	// The reload became a move from the stored register.
	found := false
	for _, in := range b.f.Blocks[0].Insns {
		if in.Op == isa.OpMove && in.Def == 4 && in.Use[0] == 3 {
			found = true
		}
	}
	if !found {
		t.Error("reload not converted to a register move")
	}
}

// -------------------------------------------------------- block layout

func TestReorderBlocksHotPathFallsThrough(t *testing.T) {
	b := newTB()
	cold, hot, join := b.block(), b.block(), b.block()
	// Taken edge (to cold) has probability 0.1: hot path is the fall.
	// Layout source order puts cold first; reorder must push it out.
	cond := b.aluTag(1)
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermBranch, Taken: cold.ID, Fall: hot.ID,
		Prob: 0.1, CondReg: cond}
	cold.Insns = []ir.Insn{{Op: isa.OpALU, Def: 9, Imm: 5}}
	cold.Term = ir.Term{Kind: ir.TermJump, Taken: join.ID}
	hot.Insns = []ir.Insn{{Op: isa.OpALU, Def: 10, Imm: 6}}
	hot.Term = ir.Term{Kind: ir.TermFall, Fall: join.ID}
	join.Term = ir.Term{Kind: ir.TermRet}

	ReorderBlocks(b.f)
	if b.f.Layout == nil || b.f.Layout[0] != 0 {
		t.Fatal("layout must start at the entry")
	}
	// The hot block must directly follow the entry.
	if b.f.Layout[1] != hot.ID {
		t.Errorf("layout %v: hot block not adjacent to entry", b.f.Layout)
	}
	// Layout is a permutation.
	seen := map[int]bool{}
	for _, id := range b.f.Layout {
		if seen[id] {
			t.Fatal("layout repeats a block")
		}
		seen[id] = true
	}
	if len(seen) != len(b.f.Blocks) {
		t.Fatal("layout misses blocks")
	}
}

func TestAlignAnnotations(t *testing.T) {
	b := newTB()
	header, exit := b.block(), b.block()
	b.f.Blocks[0].Term = ir.Term{Kind: ir.TermFall, Fall: header.ID}
	header.Term = ir.Term{Kind: ir.TermBranch, Taken: header.ID, Fall: exit.ID, Trip: 4}
	exit.Term = ir.Term{Kind: ir.TermRet}
	Align(b.f, AlignFlags{Functions: true, Loops: true})
	if b.f.Align != 16 {
		t.Error("falign-functions must request 16-byte function alignment")
	}
	if header.Align != 8 {
		t.Error("falign-loops must align the loop header")
	}
	if exit.Align != 0 {
		t.Error("non-header blocks must stay unaligned")
	}
}
