package experiments

import (
	"portcc/internal/dataset"
	"portcc/internal/features"
	"portcc/internal/opt"
	"portcc/internal/stats"
)

// speedupBins discretises continuous speedups for mutual information.
const speedupBins = 8

// Figure8 computes the Hinton diagram of Figure 8: for every program, the
// normalised mutual information between each optimisation dimension's
// setting and the achieved speedup, over all (architecture, setting)
// samples. Large cells mark the passes most likely to affect that
// program's performance.
func Figure8(ds *dataset.Dataset) *stats.Hinton {
	nP, nA, nO := ds.Dims()
	h := &stats.Hinton{ColLabels: ds.Programs}
	for l := 0; l < opt.NumDims; l++ {
		h.RowLabels = append(h.RowLabels, opt.DimName(l))
	}
	// Precompute per-dimension values of each sampled setting.
	vals := make([][]int, opt.NumDims)
	for l := range vals {
		vals[l] = make([]int, nO)
		for o := range ds.Opts {
			vals[l][o] = ds.Opts[o].Value(l)
		}
	}
	h.Cells = make([][]float64, opt.NumDims)
	for l := range h.Cells {
		h.Cells[l] = make([]float64, nP)
	}
	for p := 0; p < nP; p++ {
		// Samples: all (arch, setting) combinations for this program.
		sp := make([]float64, 0, nA*nO)
		dims := make([][]int, opt.NumDims)
		for l := range dims {
			dims[l] = make([]int, 0, nA*nO)
		}
		for a := 0; a < nA; a++ {
			for o := 0; o < nO; o++ {
				sp = append(sp, float64(ds.Speedups[p][a][o]))
				for l := 0; l < opt.NumDims; l++ {
					dims[l] = append(dims[l], vals[l][o])
				}
			}
		}
		spBinned := stats.Quantize(sp, speedupBins)
		for l := 0; l < opt.NumDims; l++ {
			h.Cells[l][p] = stats.NormalizedMI(dims[l], spBinned)
		}
	}
	return h
}

// Figure9 computes the Hinton diagram of Figure 9: the normalised mutual
// information between each feature (8 architecture descriptors then 11
// performance counters) and the best setting of each optimisation
// dimension, over all (program, architecture) pairs. Large cells mark the
// features that are informative for predicting a pass.
func Figure9(ds *dataset.Dataset) *stats.Hinton {
	nP, nA, _ := ds.Dims()
	h := &stats.Hinton{ColLabels: features.Names()}
	for l := 0; l < opt.NumDims; l++ {
		h.RowLabels = append(h.RowLabels, opt.DimName(l))
	}
	nF := features.Dim
	// Collect per-pair feature values and best-setting dimension values.
	featVals := make([][]float64, nF)
	for f := range featVals {
		featVals[f] = make([]float64, 0, nP*nA)
	}
	bestVals := make([][]int, opt.NumDims)
	for l := range bestVals {
		bestVals[l] = make([]int, 0, nP*nA)
	}
	for p := 0; p < nP; p++ {
		for a := 0; a < nA; a++ {
			x := ds.Features[p][a]
			for f := 0; f < nF; f++ {
				featVals[f] = append(featVals[f], x[f])
			}
			_, bestO := ds.BestSpeedup(p, a)
			for l := 0; l < opt.NumDims; l++ {
				bestVals[l] = append(bestVals[l], ds.Opts[bestO].Value(l))
			}
		}
	}
	featBinned := make([][]int, nF)
	for f := 0; f < nF; f++ {
		featBinned[f] = stats.Quantize(featVals[f], speedupBins)
	}
	h.Cells = make([][]float64, opt.NumDims)
	for l := 0; l < opt.NumDims; l++ {
		h.Cells[l] = make([]float64, nF)
		for f := 0; f < nF; f++ {
			h.Cells[l][f] = stats.NormalizedMI(featBinned[f], bestVals[l])
		}
	}
	return h
}
