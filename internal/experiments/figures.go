package experiments

import (
	"fmt"
	"sort"
	"strings"

	"portcc/internal/dataset"
	"portcc/internal/features"
	"portcc/internal/opt"
	"portcc/internal/stats"
	"portcc/internal/uarch"
)

// ---------------------------------------------------------------- Table 1

// Table1 renders the Table 1 counter list, with live values measured from
// one -O3 run of a reference program on the XScale (the deployment
// protocol of Section 3.4).
func Table1() (string, error) {
	ev := dataset.NewEvaluator(dataset.EvalConfig{})
	o3 := opt.O3()
	r, err := ev.Run("madplay", &o3, uarch.XScale())
	if err != nil {
		return "", err
	}
	c := features.Counters(&r)
	var b strings.Builder
	b.WriteString("Table 1: performance counters used as the program/microarchitecture representation\n")
	for i, n := range features.CounterNames() {
		fmt.Fprintf(&b, "  %-18s %8.4f   (madplay at -O3 on XScale)\n", n, c[i])
	}
	return b.String(), nil
}

// ---------------------------------------------------------------- Table 2

// Table2 renders the microarchitectural parameter space of Table 2.
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: microarchitectural parameters (each a power of two)\n")
	row := func(name string, vals []int, xscale int, kib bool) {
		strs := make([]string, len(vals))
		for i, v := range vals {
			if kib {
				strs[i] = fmt.Sprintf("%dK", v>>10)
			} else {
				strs[i] = fmt.Sprint(v)
			}
		}
		x := fmt.Sprint(xscale)
		if kib {
			x = fmt.Sprintf("%dK", xscale>>10)
		}
		fmt.Fprintf(&b, "  %-12s %-28s XScale: %s\n", name, strings.Join(strs, " "), x)
	}
	xs := uarch.XScale()
	row("IL1 size", uarch.CacheSizes, xs.IL1Size, true)
	row("IL1 assoc", uarch.CacheAssocs, xs.IL1Assoc, false)
	row("IL1 block", uarch.CacheBlocks, xs.IL1Block, false)
	row("DL1 size", uarch.CacheSizes, xs.DL1Size, true)
	row("DL1 assoc", uarch.CacheAssocs, xs.DL1Assoc, false)
	row("DL1 block", uarch.CacheBlocks, xs.DL1Block, false)
	row("BTB entries", uarch.BTBEntries, xs.BTBSize, false)
	row("BTB assoc", uarch.BTBAssocs, xs.BTBAssoc, false)
	fmt.Fprintf(&b, "  total configurations: %d (paper: 288,000)\n", uarch.Space{}.Count())
	return b.String()
}

// ---------------------------------------------------------------- Figure 1

// Figure1Result is the Section 2 example: for three programs on three
// microarchitectures, whether each of the five headline passes is enabled
// in the best setting found.
type Figure1Result struct {
	Programs []string
	Archs    []string
	Passes   []string
	// Enabled[prog][arch][pass]
	Enabled [][][]bool
}

// figure1Passes are the five passes of the paper's segment diagrams.
var figure1Passes = []opt.Flag{
	opt.FReorderBlocks,
	opt.FUnrollLoops,
	opt.FInlineFunctions,
	opt.FScheduleInsns,
	opt.FGcse,
}

// Figure1 reproduces the Section 2 example on three named programs and
// the three XScale-derived microarchitectures of the paper (XScale,
// XScale with small instruction cache, XScale with small instruction and
// data caches), using the dataset's best-found setting per pair.
func Figure1(ds *dataset.Dataset) (*Figure1Result, error) {
	wanted := []string{"rijndael_e", "untoast", "madplay"}
	xs := uarch.XScale()
	smallI := xs
	smallI.IL1Size = 4 << 10
	smallI.IL1Assoc = 4
	smallID := smallI
	smallID.DL1Size = 4 << 10
	smallID.DL1Assoc = 4
	archCfgs := []uarch.Config{xs, smallI, smallID}
	res := &Figure1Result{
		Programs: wanted,
		Archs:    []string{"A: XScale", "B: small insn cache", "C: small insn+data cache"},
		Passes:   make([]string, len(figure1Passes)),
	}
	for i, f := range figure1Passes {
		res.Passes[i] = f.String()
	}
	ev := dataset.NewEvaluator(ds.Cfg.Eval)
	for _, name := range wanted {
		var row [][]bool
		for _, ac := range archCfgs {
			// Best setting for this exact pair, by direct search over the
			// dataset's sampled settings.
			bestO, bestCyc := 0, 0.0
			for o := range ds.Opts {
				c := ds.Opts[o]
				cyc, err := ev.CyclesPerRun(name, &c, ac)
				if err != nil {
					return nil, err
				}
				if bestCyc == 0 || cyc < bestCyc {
					bestCyc, bestO = cyc, o
				}
			}
			var flags []bool
			for _, f := range figure1Passes {
				flags = append(flags, ds.Opts[bestO].Flag(f))
			}
			row = append(row, flags)
		}
		res.Enabled = append(res.Enabled, row)
	}
	return res, nil
}

// Render draws the segment diagram as a text table.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1: best-setting segment diagrams (filled = pass enabled)\n")
	fmt.Fprintf(&b, "  %-28s", "")
	for _, p := range r.Programs {
		fmt.Fprintf(&b, "%-12s", p)
	}
	b.WriteString("\n")
	for ai, arch := range r.Archs {
		fmt.Fprintf(&b, "  %-28s", arch)
		for pi := range r.Programs {
			seg := ""
			for _, on := range r.Enabled[pi][ai] {
				if on {
					seg += "#"
				} else {
					seg += "."
				}
			}
			fmt.Fprintf(&b, "%-12s", seg)
		}
		b.WriteString("\n")
	}
	b.WriteString("  passes: ")
	b.WriteString(strings.Join(r.Passes, ", "))
	b.WriteString("\n")
	return b.String()
}

// ---------------------------------------------------------------- Figure 3

// Figure3 renders the optimisation space summary of Figure 3.
func Figure3() string {
	var b strings.Builder
	b.WriteString("Figure 3: compiler optimisation space (gcc 4.2 passes and parameters)\n")
	b.WriteString("  boolean flags:\n")
	for f := 0; f < opt.NumFlags; f++ {
		fmt.Fprintf(&b, "    -%s\n", opt.Flag(f))
	}
	b.WriteString("  parameters (4 levels each):\n")
	for p := 0; p < opt.NumParams; p++ {
		lv := opt.Levels(opt.Param(p))
		fmt.Fprintf(&b, "    --%s = %v\n", opt.Param(p), lv)
	}
	raw, eff, log10 := opt.SpaceSizes()
	fmt.Fprintf(&b, "  flag combinations: %.3g raw, %.3g effective (paper: 642 million)\n", raw, eff)
	fmt.Fprintf(&b, "  full space: 10^%.2f settings (paper: 1.69e17)\n", log10)
	return b.String()
}

// ---------------------------------------------------------------- Figure 4

// Figure4Result is the per-program distribution of the maximum speedup
// available across microarchitectures (iterative compilation upper bound).
type Figure4Result struct {
	Programs []string
	Boxes    []stats.BoxStats
	// Average is the mean over programs and architectures of the best
	// speedup (paper: 1.23x).
	Average float64
	// WrongAvg / WrongWorst summarise picking the worst sampled setting
	// (paper: 0.7x average, 0.2x worst case).
	WrongAvg, WrongWorst float64
}

// Figure4 computes the Figure 4 box distribution from a dataset.
func Figure4(ds *dataset.Dataset) *Figure4Result {
	nP, nA, _ := ds.Dims()
	res := &Figure4Result{Programs: ds.Programs}
	sum := 0.0
	wrongSum := 0.0
	res.WrongWorst = 1e9
	for p := 0; p < nP; p++ {
		var bests []float64
		for a := 0; a < nA; a++ {
			best, _ := ds.BestSpeedup(p, a)
			bests = append(bests, best)
			sum += best
			worst := 1e9
			for _, s := range ds.Speedups[p][a] {
				if float64(s) < worst {
					worst = float64(s)
				}
			}
			wrongSum += worst
			if worst < res.WrongWorst {
				res.WrongWorst = worst
			}
		}
		res.Boxes = append(res.Boxes, stats.Box(bests))
	}
	res.Average = sum / float64(nP*nA)
	res.WrongAvg = wrongSum / float64(nP*nA)
	return res
}

// Render prints the per-program five-number summaries.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: distribution of maximum speedup across microarchitectures (vs -O3)\n")
	for i, p := range r.Programs {
		bx := r.Boxes[i]
		fmt.Fprintf(&b, "  %-12s min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f\n",
			p, bx.Min, bx.Q1, bx.Median, bx.Q3, bx.Max)
	}
	fmt.Fprintf(&b, "  AVERAGE best speedup: %.3fx (paper: 1.23x)\n", r.Average)
	fmt.Fprintf(&b, "  wrong passes: average %.2fx, worst %.2fx (paper: 0.7x, 0.2x)\n",
		r.WrongAvg, r.WrongWorst)
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Figure5Result is the joint program/microarchitecture speedup surface:
// best vs model-predicted, plus their correlation (paper: 0.93).
type Figure5Result struct {
	Best        []float64 // flattened [p][a]
	Predicted   []float64
	Correlation float64
	// MaxBest and MaxPredicted identify the surface peaks (the paper's
	// rijndael_e at 4.85x).
	MaxBest, MaxPredicted float64
	MaxBestProg           string
}

// Figure5 computes the surface comparison from predictions.
func Figure5(pr *Predictions) *Figure5Result {
	res := &Figure5Result{}
	nP, nA, _ := pr.DS.Dims()
	for p := 0; p < nP; p++ {
		for a := 0; a < nA; a++ {
			res.Best = append(res.Best, pr.Best[p][a])
			res.Predicted = append(res.Predicted, pr.Speedup[p][a])
			if pr.Best[p][a] > res.MaxBest {
				res.MaxBest = pr.Best[p][a]
				res.MaxBestProg = pr.DS.Programs[p]
			}
			if pr.Speedup[p][a] > res.MaxPredicted {
				res.MaxPredicted = pr.Speedup[p][a]
			}
		}
	}
	res.Correlation = stats.Correlation(res.Best, res.Predicted)
	return res
}

// Render summarises the surface.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: speedup surface over programs x microarchitectures\n")
	fmt.Fprintf(&b, "  correlation(best, predicted) = %.3f (paper: 0.93)\n", r.Correlation)
	fmt.Fprintf(&b, "  surface peak: best %.2fx (%s), predicted %.2fx (paper: 4.85x / 4.3x)\n",
		r.MaxBest, r.MaxBestProg, r.MaxPredicted)
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Figure6Result is the per-program comparison of the model against the
// iterative-compilation best, averaged over microarchitectures.
type Figure6Result struct {
	Programs []string
	Model    []float64
	Best     []float64
	// Averages over all programs and architectures.
	ModelAvg, BestAvg float64
	// PercentOfMax is the paper's 67% headline: the fraction of the
	// available improvement the model captures.
	PercentOfMax float64
}

// Figure6 computes the per-program averages.
func Figure6(pr *Predictions) *Figure6Result {
	nP, nA, _ := pr.DS.Dims()
	res := &Figure6Result{Programs: pr.DS.Programs}
	var mSum, bSum float64
	for p := 0; p < nP; p++ {
		res.Model = append(res.Model, stats.Mean(pr.Speedup[p]))
		res.Best = append(res.Best, stats.Mean(pr.Best[p]))
		mSum += res.Model[p]
		bSum += res.Best[p]
	}
	res.ModelAvg = mSum / float64(nP)
	res.BestAvg = bSum / float64(nP)
	if res.BestAvg > 1 {
		res.PercentOfMax = (res.ModelAvg - 1) / (res.BestAvg - 1) * 100
	}
	_ = nA
	return res
}

// Render prints the per-program bars.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: per-program speedup vs -O3, averaged over microarchitectures\n")
	for i, p := range r.Programs {
		fmt.Fprintf(&b, "  %-12s model=%.2fx best=%.2fx\n", p, r.Model[i], r.Best[i])
	}
	fmt.Fprintf(&b, "  AVERAGE: model %.3fx, best %.3fx -> %.0f%% of maximum (paper: 1.16x, 1.23x, 67%%)\n",
		r.ModelAvg, r.BestAvg, r.PercentOfMax)
	return b.String()
}

// ---------------------------------------------------------------- Figure 7

// Figure7Result is the per-microarchitecture view: model and best speedups
// averaged over programs, sorted by increasing best.
type Figure7Result struct {
	// Order[i] is the architecture index at sorted position i.
	Order []int
	Model []float64
	Best  []float64
	// Min/Max of the model across architectures (paper: 1.08x..1.35x).
	ModelMin, ModelMax float64
}

// Figure7 computes the per-architecture averages.
func Figure7(pr *Predictions) *Figure7Result {
	nP, nA, _ := pr.DS.Dims()
	res := &Figure7Result{ModelMin: 1e9}
	model := make([]float64, nA)
	best := make([]float64, nA)
	for a := 0; a < nA; a++ {
		var ms, bs float64
		for p := 0; p < nP; p++ {
			ms += pr.Speedup[p][a]
			bs += pr.Best[p][a]
		}
		model[a] = ms / float64(nP)
		best[a] = bs / float64(nP)
	}
	res.Order = make([]int, nA)
	for i := range res.Order {
		res.Order[i] = i
	}
	sort.Slice(res.Order, func(i, j int) bool {
		return best[res.Order[i]] < best[res.Order[j]]
	})
	for _, a := range res.Order {
		res.Model = append(res.Model, model[a])
		res.Best = append(res.Best, best[a])
		if model[a] < res.ModelMin {
			res.ModelMin = model[a]
		}
		if model[a] > res.ModelMax {
			res.ModelMax = model[a]
		}
	}
	return res
}

// Render prints the sorted per-architecture series.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: per-microarchitecture speedup vs -O3 (sorted by best)\n")
	for i := range r.Order {
		fmt.Fprintf(&b, "  arch#%03d best=%.3fx model=%.3fx\n", r.Order[i], r.Best[i], r.Model[i])
	}
	fmt.Fprintf(&b, "  model range: %.2fx .. %.2fx (paper: 1.08x .. 1.35x)\n", r.ModelMin, r.ModelMax)
	return b.String()
}

// ---------------------------------------------------------------- Figure 10

// Figure10 is Figure 6 evaluated on the extended space of Section 7
// (frequency 200-600 MHz, issue width 1-2): the same model and features,
// no modification. The paper reports best 1.24x and model 1.14x.
func Figure10(pr *Predictions) *Figure6Result {
	return Figure6(pr)
}

// ------------------------------------------------- iterations to match

// IterationsResult is the Section 5.3 comparison against iterative
// compilation: how many random-search evaluations are needed to match the
// model's one-profile-run performance.
type IterationsResult struct {
	// MeanEvals averages, over pairs, the first evaluation reaching the
	// model's speedup (pairs never reached count as the sample size).
	MeanEvals float64
	// Over100 counts pairs needing more than 100 evaluations.
	Over100 int
	Pairs   int
}

// IterationsToMatch replays the dataset's random sample order as a search
// trajectory per pair and finds where it first matches the model.
func IterationsToMatch(pr *Predictions) *IterationsResult {
	ds := pr.DS
	nP, nA, nO := ds.Dims()
	res := &IterationsResult{}
	total := 0.0
	for p := 0; p < nP; p++ {
		for a := 0; a < nA; a++ {
			target := pr.Speedup[p][a]
			reached := nO - 1 // random part excludes O3 at index 0
			bestSoFar := 0.0
			for o := 1; o < nO; o++ {
				if s := float64(ds.Speedups[p][a][o]); s > bestSoFar {
					bestSoFar = s
				}
				if bestSoFar >= target {
					reached = o
					break
				}
			}
			if reached > 100 {
				res.Over100++
			}
			total += float64(reached)
			res.Pairs++
		}
	}
	if res.Pairs > 0 {
		res.MeanEvals = total / float64(res.Pairs)
	}
	return res
}

// Render summarises the comparison.
func (r *IterationsResult) Render() string {
	return fmt.Sprintf("Section 5.3: iterative compilation needs %.0f evaluations on average to match the model; %d/%d pairs need >100 (paper: ~50 average, some >100)\n",
		r.MeanEvals, r.Over100, r.Pairs)
}
