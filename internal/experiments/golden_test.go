package experiments

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"portcc/internal/dataset"
)

// golden is the committed fixture: content digests of the tiny-scale
// dataset and of the full expgen -fig all rendering surface derived from
// it. Any engine change that silently alters results - compiler passes,
// trace generation, the replay engines, sampling, the ML pipeline -
// changes a digest and fails plain `go test ./...` locally, instead of
// surfacing only in the CI byte-compare jobs.
type golden struct {
	Scale          string `json:"scale"`
	DatasetSHA256  string `json:"dataset_sha256"`
	ExtendedSHA256 string `json:"extended_dataset_sha256"`
	FiguresSHA256  string `json:"figures_sha256"`
	Comment        string `json:"comment"`
}

const goldenPath = "testdata/golden.json"

// datasetDigest hashes the gob encoding of the dataset - the same
// encoding the Save files and the shard wire carry, with type ids pinned
// at package init, so it is byte-deterministic across processes.
func datasetDigest(t *testing.T, ds any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ds); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// renderAll concatenates every rendering cmd/expgen's -fig all emits -
// static tables, the dataset figures, the leave-one-out prediction
// figures, iterations-to-match, the ablation and the extended-space
// Figure 10 - into one deterministic document.
func renderAll(t *testing.T, ctx context.Context, ds, eds *dataset.Dataset) string {
	t.Helper()
	var b strings.Builder
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(t1)
	b.WriteString(Table2())
	b.WriteString(Figure3())

	f1, err := Figure1(ds)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(f1.Render())
	b.WriteString(Figure4(ds).Render())

	pr, err := Predict(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(Figure5(pr).Render())
	b.WriteString(Figure6(pr).Render())
	b.WriteString(Figure7(pr).Render())

	h8 := Figure8(ds)
	b.WriteString(h8.Render())
	b.WriteString(strings.Join(h8.ColLabels, " ") + "\n")
	h9 := Figure9(ds)
	b.WriteString(h9.Render())
	b.WriteString(strings.Join(h9.ColLabels, " ") + "\n")

	b.WriteString(IterationsToMatch(pr).Render())

	ab, err := Ablation(ctx, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(ab.Render())

	epr, err := Predict(ctx, eds)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(Figure10(epr).Render())
	return b.String()
}

// TestGoldenTinyFixture regenerates the tiny-scale training dataset (base
// and extended spaces) and the complete figure surface, and compares
// their sha256 digests against testdata/golden.json. Regenerate the
// fixture after an intentional result change with:
//
//	PORTCC_UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGoldenTinyFixture
func TestGoldenTinyFixture(t *testing.T) {
	ctx := context.Background()
	ds, err := Tiny.Generate(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	eds, err := Tiny.Generate(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	got := golden{
		Scale:          Tiny.Name,
		DatasetSHA256:  datasetDigest(t, ds),
		ExtendedSHA256: datasetDigest(t, eds),
	}
	figs := renderAll(t, ctx, ds, eds)
	sum := sha256.Sum256([]byte(figs))
	got.FiguresSHA256 = hex.EncodeToString(sum[:])

	if os.Getenv("PORTCC_UPDATE_GOLDEN") != "" {
		got.Comment = "tiny-scale dataset + expgen -fig all digests; regenerate with PORTCC_UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGoldenTinyFixture"
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with PORTCC_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want golden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	fail := func(name, got, want string) {
		t.Errorf("%s digest changed:\n  got  %s\n  want %s\n"+
			"The tiny-scale results no longer match the committed fixture - an engine\n"+
			"change altered generated data. If intentional, update %s\n"+
			"(PORTCC_UPDATE_GOLDEN=1) and call out the result change in the PR.",
			name, got, want, goldenPath)
	}
	if got.DatasetSHA256 != want.DatasetSHA256 {
		fail("dataset", got.DatasetSHA256, want.DatasetSHA256)
	}
	if got.ExtendedSHA256 != want.ExtendedSHA256 {
		fail("extended dataset", got.ExtendedSHA256, want.ExtendedSHA256)
	}
	if got.FiguresSHA256 != want.FiguresSHA256 {
		fail("figures", got.FiguresSHA256, want.FiguresSHA256)
	}
}
