// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 2, 4, 5, 6 and 7): the drivers produce structured
// results plus a textual rendering that mirrors what the paper reports.
//
// Every driver accepts a Scale. The Paper scale replicates the published
// protocol exactly (35 programs x 200 microarchitectures x 1000
// optimisation settings = 7 million simulations); the smaller scales keep
// the identical protocol with reduced sampling so the full pipeline runs
// in seconds (Tiny) or minutes (Small, Medium) on one core. Results are
// expected to match the paper in shape, not in digits - see EXPERIMENTS.md.
package experiments

import (
	"context"

	"portcc/internal/dataset"
	"portcc/internal/prog"
)

// Scale selects the sampling sizes of an experiment run.
type Scale struct {
	Name string
	// Programs included (nil = all 35).
	Programs []string
	// NumArchs and NumOpts follow Section 4 (paper: 200 and 1000).
	NumArchs int
	NumOpts  int
	// TargetInsns is the dynamic trace length per simulation.
	TargetInsns int
	// Seed drives all sampling.
	Seed int64
}

// The standard scales.
var (
	// Tiny runs in a few seconds: for tests.
	Tiny = Scale{Name: "tiny", Programs: []string{
		"rijndael_e", "search", "qsort", "susan_s", "madplay", "crc", "fft", "bitcnts",
	}, NumArchs: 5, NumOpts: 24, TargetInsns: 8_000, Seed: 11}
	// Small runs in about a minute: the benchmark default.
	Small = Scale{Name: "small", NumArchs: 12, NumOpts: 60, TargetInsns: 20_000, Seed: 11}
	// Medium runs in some minutes: for calibration.
	Medium = Scale{Name: "medium", NumArchs: 24, NumOpts: 150, TargetInsns: 25_000, Seed: 11}
	// Paper is the published protocol (hours on one core).
	Paper = Scale{Name: "paper", NumArchs: 200, NumOpts: 1000, TargetInsns: 30_000, Seed: 11}
)

// ScaleByName resolves the standard scales by their command-line names.
func ScaleByName(name string) (Scale, bool) {
	s, ok := map[string]Scale{
		Tiny.Name: Tiny, Small.Name: Small, Medium.Name: Medium, Paper.Name: Paper,
	}[name]
	return s, ok
}

// GenConfig converts the scale into a dataset generation config.
func (s Scale) GenConfig(extended bool) dataset.GenConfig {
	progs := s.Programs
	if progs == nil {
		progs = prog.Names()
	}
	return dataset.GenConfig{
		Programs: progs,
		NumArchs: s.NumArchs,
		NumOpts:  s.NumOpts,
		Extended: extended,
		Seed:     s.Seed,
		Eval:     dataset.EvalConfig{TargetInsns: s.TargetInsns, Seed: 1},
	}
}

// Generate produces the dataset for the scale, honouring ctx through the
// streaming exploration engine.
func (s Scale) Generate(ctx context.Context, extended bool) (*dataset.Dataset, error) {
	return dataset.Generate(ctx, s.GenConfig(extended))
}

// Dataset generates the dataset for the scale.
//
// Deprecated: use Generate, which accepts a context for cancellation.
func (s Scale) Dataset(extended bool) (*dataset.Dataset, error) {
	return s.Generate(context.Background(), extended)
}
