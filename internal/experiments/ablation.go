package experiments

import (
	"context"
	"fmt"
	"strings"

	"portcc/internal/dataset"
)

// AblationResult reproduces the paper's Section 3.3.2 hyper-parameter
// claim: "we have set beta = 1 and K = 7 different neighbour programs,
// although we have found experimentally that the technique is not
// sensitive to similar values of K". For each K (and beta) the full
// leave-one-out evaluation is repeated and the average model speedup
// recorded.
type AblationResult struct {
	Ks     []int
	KAvg   []float64
	Betas  []float64
	BetaAv []float64
}

// Ablation sweeps K (at beta=1) and beta (at K=7) over a dataset,
// bounding each leave-one-out evaluation to workers (0 = GOMAXPROCS).
func Ablation(ctx context.Context, ds *dataset.Dataset, workers int) (*AblationResult, error) {
	res := &AblationResult{
		Ks:    []int{3, 5, 7, 9, 15},
		Betas: []float64{0.5, 1, 2},
	}
	avg := func(pr *Predictions) float64 {
		nP, nA, _ := ds.Dims()
		s := 0.0
		for p := 0; p < nP; p++ {
			for a := 0; a < nA; a++ {
				s += pr.Speedup[p][a]
			}
		}
		return s / float64(nP*nA)
	}
	for _, k := range res.Ks {
		pr, err := PredictWith(ctx, ds, k, 1, workers)
		if err != nil {
			return nil, err
		}
		res.KAvg = append(res.KAvg, avg(pr))
	}
	for _, b := range res.Betas {
		pr, err := PredictWith(ctx, ds, 7, b, workers)
		if err != nil {
			return nil, err
		}
		res.BetaAv = append(res.BetaAv, avg(pr))
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Hyper-parameter ablation (Section 3.3.2: K=7, beta=1; claimed insensitive)\n")
	for i, k := range r.Ks {
		fmt.Fprintf(&b, "  K=%-3d (beta=1): model avg %.3fx\n", k, r.KAvg[i])
	}
	for i, beta := range r.Betas {
		fmt.Fprintf(&b, "  beta=%-4.1f (K=7): model avg %.3fx\n", beta, r.BetaAv[i])
	}
	return b.String()
}
