package experiments

import (
	"context"
	"fmt"

	"portcc/internal/dataset"
	"portcc/internal/ml"
	"portcc/internal/opt"
	"portcc/internal/pcerr"
	"portcc/internal/sched"
	"portcc/internal/tune"
	"portcc/internal/uarch"
)

// Predictions holds the leave-one-out model evaluation over a dataset:
// for every (program, microarchitecture) pair, the configuration the model
// predicts when trained without that program and without that
// microarchitecture (Section 5.1.1), and its measured speedup over -O3.
type Predictions struct {
	DS *dataset.Dataset
	// Config[p][a] is the predicted-best setting.
	Config [][]opt.Config
	// Speedup[p][a] is its measured speedup over -O3.
	Speedup [][]float64
	// Best[p][a] caches the dataset's iterative-compilation upper bound.
	Best [][]float64
}

// Predict runs the full leave-one-out protocol: fit training pairs, and
// for each held-out pair predict, compile, and measure. Predicted
// configurations are deduplicated per program so each distinct binary is
// compiled and traced once. Cancelling ctx drains the worker pool and
// returns an error wrapping ctx.Err().
func Predict(ctx context.Context, ds *dataset.Dataset) (*Predictions, error) {
	return PredictWith(ctx, ds, 0, 0, 0)
}

// PredictWith is Predict with explicit KNN hyper-parameters (zero values
// select the paper's K=7 and beta=1), for the ablation experiments, and
// an explicit worker-pool bound (0 = GOMAXPROCS).
func PredictWith(ctx context.Context, ds *dataset.Dataset, k int, beta float64, workers int) (*Predictions, error) {
	pairs, err := ds.TrainingPairs()
	if err != nil {
		return nil, err
	}
	model := ml.Train(pairs)
	model.KNeighbours = k
	model.BetaValue = beta
	return PredictWithModel(ctx, ds, model, workers)
}

// PredictWithModel is PredictWith with an already-trained model (for
// example one loaded from a trainer -model-out artifact): no ml.Train
// call runs. Leave-one-out exclusion still holds - the model carries
// every training pair and the held-out (program, arch) is excluded per
// prediction - so the model must have been trained on this dataset
// (compare the artifact's dataset fingerprint before calling).
func PredictWithModel(ctx context.Context, ds *dataset.Dataset, model *ml.Model, workers int) (*Predictions, error) {
	nP, nA, _ := ds.Dims()
	pr := &Predictions{
		DS:      ds,
		Config:  make([][]opt.Config, nP),
		Speedup: make([][]float64, nP),
		Best:    make([][]float64, nP),
	}
	// The per-program evaluations are independent: the shared worker
	// pool spreads the compile + batched-replay work over the machine,
	// one evaluator per slot (private trace caches) with modules and
	// -O3 probes deduplicated through a pool base. Cores the program
	// fan-out cannot occupy (fewer held-out programs than the budget) go
	// to each slot's batched-replay sweeps instead - tune.Split sizes
	// the two levels so they multiply to the machine, never beyond.
	// sched.Run reports the lowest-indexed failure deterministically; a
	// real failure outranks cancellation, which names the broken program
	// instead of hiding it behind a PartialError.
	workers, sweepWorkers := tune.Split(workers, nP, nA)
	base := dataset.NewSharedBase()
	evs := make([]*dataset.Evaluator, workers)
	done, firstE := sched.Run(ctx, workers, nP, func(slot, p int) error {
		if evs[slot] == nil {
			evs[slot] = dataset.NewEvaluatorWith(ds.Cfg.Eval, base)
			evs[slot].SetSweepWorkers(sweepWorkers)
		}
		return predictProgram(ds, model, evs[slot], pr, p)
	})
	if firstE != nil {
		return nil, firstE
	}
	// A cancellation racing the final program must not discard a fully
	// completed evaluation.
	if err := ctx.Err(); err != nil && done < nP {
		return nil, &pcerr.PartialError{Done: done, Total: nP, Err: err}
	}
	return pr, nil
}

// predictProgram fills one program's row of the leave-one-out evaluation:
// predict per architecture, deduplicate the predicted configurations, and
// compile + batch-replay each distinct binary over the architectures that
// chose it.
func predictProgram(ds *dataset.Dataset, model *ml.Model, ev *dataset.Evaluator, pr *Predictions, p int) error {
	_, nA, _ := ds.Dims()
	pr.Config[p] = make([]opt.Config, nA)
	pr.Speedup[p] = make([]float64, nA)
	pr.Best[p] = make([]float64, nA)
	groups := map[string][]int{}
	var orderKeys []string
	for a := 0; a < nA; a++ {
		cfg := model.Predict(ds.Features[p][a], ml.WithExclude(ds.Programs[p], a))
		pr.Config[p][a] = cfg
		k := cfg.Key()
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], a)
		pr.Best[p][a], _ = ds.BestSpeedup(p, a)
	}
	for _, k := range orderKeys {
		archIdx := groups[k]
		cfg, err := opt.ParseKey(k)
		if err != nil {
			return fmt.Errorf("experiments: bad config key: %w", err)
		}
		tr, _, err := ev.Trace(ds.Programs[p], &cfg)
		if err != nil {
			return fmt.Errorf("experiments: evaluating prediction for %s: %w", ds.Programs[p], err)
		}
		runs := tr.Runs
		if runs < 1 {
			runs = 1
		}
		archs := make([]uarch.Config, len(archIdx))
		for i, a := range archIdx {
			archs[i] = ds.Archs[a]
		}
		results := ev.SimulateBatch(tr, archs)
		for i, a := range archIdx {
			cyc := float64(results[i].Cycles) / float64(runs)
			pr.Speedup[p][a] = ds.BaselineCycles[p][a] / cyc
		}
	}
	return nil
}
