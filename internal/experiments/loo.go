package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"portcc/internal/dataset"
	"portcc/internal/ml"
	"portcc/internal/opt"
	"portcc/internal/uarch"
)

// Predictions holds the leave-one-out model evaluation over a dataset:
// for every (program, microarchitecture) pair, the configuration the model
// predicts when trained without that program and without that
// microarchitecture (Section 5.1.1), and its measured speedup over -O3.
type Predictions struct {
	DS *dataset.Dataset
	// Config[p][a] is the predicted-best setting.
	Config [][]opt.Config
	// Speedup[p][a] is its measured speedup over -O3.
	Speedup [][]float64
	// Best[p][a] caches the dataset's iterative-compilation upper bound.
	Best [][]float64
}

// Predict runs the full leave-one-out protocol: fit training pairs, and
// for each held-out pair predict, compile, and measure. Predicted
// configurations are deduplicated per program so each distinct binary is
// compiled and traced once.
func Predict(ds *dataset.Dataset) (*Predictions, error) {
	return PredictWith(ds, 0, 0)
}

// PredictWith is Predict with explicit KNN hyper-parameters (zero values
// select the paper's K=7 and beta=1), for the ablation experiments.
func PredictWith(ds *dataset.Dataset, k int, beta float64) (*Predictions, error) {
	pairs, err := ds.TrainingPairs()
	if err != nil {
		return nil, err
	}
	model := ml.Train(pairs)
	model.KNeighbours = k
	model.BetaValue = beta
	nP, _, _ := ds.Dims()
	pr := &Predictions{
		DS:      ds,
		Config:  make([][]opt.Config, nP),
		Speedup: make([][]float64, nP),
		Best:    make([][]float64, nP),
	}
	// The per-program evaluations are independent: a worker pool spreads
	// the compile + batched-replay work over the machine, with one
	// evaluator per worker so trace caches stay private and hot. The
	// first failure stops dispatch, and the error reported is the one
	// with the lowest program index.
	jobs := make(chan int)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstP  int
		firstE  error
		stopped atomic.Bool
	)
	fail := func(p int, err error) {
		mu.Lock()
		if firstE == nil || p < firstP {
			firstP, firstE = p, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	// Dispatch is in index order, so every job below a failing index has
	// already been handed out; running those (and only those) after a
	// failure makes the reported error the lowest failing index among
	// the dispatched jobs, independent of worker scheduling.
	skip := func(p int) bool {
		if !stopped.Load() {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return firstE != nil && p > firstP
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nP {
		workers = nP
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := dataset.NewEvaluator(ds.Cfg.Eval)
			for p := range jobs {
				if skip(p) {
					continue
				}
				if err := predictProgram(ds, model, ev, pr, p); err != nil {
					fail(p, err)
				}
			}
		}()
	}
	for p := 0; p < nP && !stopped.Load(); p++ {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	return pr, nil
}

// predictProgram fills one program's row of the leave-one-out evaluation:
// predict per architecture, deduplicate the predicted configurations, and
// compile + batch-replay each distinct binary over the architectures that
// chose it.
func predictProgram(ds *dataset.Dataset, model *ml.Model, ev *dataset.Evaluator, pr *Predictions, p int) error {
	_, nA, _ := ds.Dims()
	pr.Config[p] = make([]opt.Config, nA)
	pr.Speedup[p] = make([]float64, nA)
	pr.Best[p] = make([]float64, nA)
	groups := map[string][]int{}
	var orderKeys []string
	for a := 0; a < nA; a++ {
		cfg := model.Predict(ds.Features[p][a], ml.Exclude{Prog: ds.Programs[p], Arch: a})
		pr.Config[p][a] = cfg
		k := cfg.Key()
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], a)
		pr.Best[p][a], _ = ds.BestSpeedup(p, a)
	}
	for _, k := range orderKeys {
		archIdx := groups[k]
		cfg, err := opt.ParseKey(k)
		if err != nil {
			return fmt.Errorf("experiments: bad config key: %w", err)
		}
		tr, _, err := ev.Trace(ds.Programs[p], &cfg)
		if err != nil {
			return fmt.Errorf("experiments: evaluating prediction for %s: %w", ds.Programs[p], err)
		}
		runs := tr.Runs
		if runs < 1 {
			runs = 1
		}
		archs := make([]uarch.Config, len(archIdx))
		for i, a := range archIdx {
			archs[i] = ds.Archs[a]
		}
		results := ev.SimulateBatch(tr, archs)
		for i, a := range archIdx {
			cyc := float64(results[i].Cycles) / float64(runs)
			pr.Speedup[p][a] = ds.BaselineCycles[p][a] / cyc
		}
	}
	return nil
}
