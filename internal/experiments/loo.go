package experiments

import (
	"fmt"

	"portcc/internal/dataset"
	"portcc/internal/ml"
	"portcc/internal/opt"
)

// Predictions holds the leave-one-out model evaluation over a dataset:
// for every (program, microarchitecture) pair, the configuration the model
// predicts when trained without that program and without that
// microarchitecture (Section 5.1.1), and its measured speedup over -O3.
type Predictions struct {
	DS *dataset.Dataset
	// Config[p][a] is the predicted-best setting.
	Config [][]opt.Config
	// Speedup[p][a] is its measured speedup over -O3.
	Speedup [][]float64
	// Best[p][a] caches the dataset's iterative-compilation upper bound.
	Best [][]float64
}

// Predict runs the full leave-one-out protocol: fit training pairs, and
// for each held-out pair predict, compile, and measure. Predicted
// configurations are deduplicated per program so each distinct binary is
// compiled and traced once.
func Predict(ds *dataset.Dataset) (*Predictions, error) {
	return PredictWith(ds, 0, 0)
}

// PredictWith is Predict with explicit KNN hyper-parameters (zero values
// select the paper's K=7 and beta=1), for the ablation experiments.
func PredictWith(ds *dataset.Dataset, k int, beta float64) (*Predictions, error) {
	pairs, err := ds.TrainingPairs()
	if err != nil {
		return nil, err
	}
	model := ml.Train(pairs)
	model.KNeighbours = k
	model.BetaValue = beta
	nP, nA, _ := ds.Dims()
	pr := &Predictions{
		DS:      ds,
		Config:  make([][]opt.Config, nP),
		Speedup: make([][]float64, nP),
		Best:    make([][]float64, nP),
	}
	ev := dataset.NewEvaluator(ds.Cfg.Eval)
	for p := 0; p < nP; p++ {
		pr.Config[p] = make([]opt.Config, nA)
		pr.Speedup[p] = make([]float64, nA)
		pr.Best[p] = make([]float64, nA)
		// Predict for every architecture, grouping identical
		// configurations.
		groups := map[string][]int{}
		var orderKeys []string
		for a := 0; a < nA; a++ {
			cfg := model.Predict(ds.Features[p][a], ml.Exclude{Prog: ds.Programs[p], Arch: a})
			pr.Config[p][a] = cfg
			k := cfg.Key()
			if _, ok := groups[k]; !ok {
				orderKeys = append(orderKeys, k)
			}
			groups[k] = append(groups[k], a)
			pr.Best[p][a], _ = ds.BestSpeedup(p, a)
		}
		for _, k := range orderKeys {
			archs := groups[k]
			cfg, err := opt.ParseKey(k)
			if err != nil {
				return nil, fmt.Errorf("experiments: bad config key: %w", err)
			}
			tr, _, err := ev.Trace(ds.Programs[p], &cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: evaluating prediction for %s: %w", ds.Programs[p], err)
			}
			runs := tr.Runs
			if runs < 1 {
				runs = 1
			}
			for _, a := range archs {
				r := ev.SimulateTrace(tr, ds.Archs[a])
				cyc := float64(r.Cycles) / float64(runs)
				pr.Speedup[p][a] = ds.BaselineCycles[p][a] / cyc
			}
		}
	}
	return pr, nil
}
