package experiments

import (
	"context"
	"strings"
	"testing"

	"portcc/internal/dataset"
	"portcc/internal/opt"
)

// testDS caches one tiny dataset for the whole test file.
var testDS *dataset.Dataset

func getDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	if testDS == nil {
		s := Scale{Name: "test", Programs: []string{
			"rijndael_e", "search", "qsort", "crc", "bitcnts", "madplay",
		}, NumArchs: 4, NumOpts: 16, TargetInsns: 6000, Seed: 3}
		ds, err := s.Dataset(false)
		if err != nil {
			t.Fatal(err)
		}
		testDS = ds
	}
	return testDS
}

func TestStaticTables(t *testing.T) {
	t2 := Table2()
	if !strings.Contains(t2, "288000") && !strings.Contains(t2, "288,000") {
		t.Error("Table 2 must state the 288,000-configuration space")
	}
	f3 := Figure3()
	if !strings.Contains(f3, "funroll_loops") || !strings.Contains(f3, "param_max_gcse_passes") {
		t.Error("Figure 3 must list the flags and parameters")
	}
}

func TestTable1LiveCounters(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, counter := range []string{"IPC", "icache_miss_rate", "MAC_usg"} {
		if !strings.Contains(out, counter) {
			t.Errorf("Table 1 missing counter %s", counter)
		}
	}
}

func TestFigure4(t *testing.T) {
	ds := getDS(t)
	f4 := Figure4(ds)
	if len(f4.Boxes) != len(ds.Programs) {
		t.Fatal("one box per program expected")
	}
	for i, b := range f4.Boxes {
		if b.Min > b.Median || b.Median > b.Max {
			t.Errorf("box %d not ordered: %+v", i, b)
		}
		if b.Max < 1 {
			t.Errorf("%s: best speedup below 1 is impossible (O3 is sampled)", ds.Programs[i])
		}
	}
	if f4.Average < 1 {
		t.Error("average best speedup must be at least 1")
	}
	if f4.WrongAvg > 1 {
		t.Error("picking the worst settings must not look like a speedup")
	}
	if f4.WrongWorst > f4.WrongAvg {
		t.Error("worst case cannot beat the average")
	}
	if r := f4.Render(); !strings.Contains(r, "AVERAGE") {
		t.Error("render missing the average line")
	}
}

func TestPredictionsAndFigures(t *testing.T) {
	ds := getDS(t)
	pr, err := Predict(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	nP, nA, _ := ds.Dims()
	for p := 0; p < nP; p++ {
		for a := 0; a < nA; a++ {
			if pr.Speedup[p][a] <= 0 {
				t.Fatalf("non-positive predicted speedup at (%d,%d)", p, a)
			}
			if pr.Best[p][a] < 1 {
				t.Fatalf("best below baseline at (%d,%d)", p, a)
			}
		}
	}

	f5 := Figure5(pr)
	if f5.Correlation < -1 || f5.Correlation > 1 {
		t.Error("correlation out of bounds")
	}
	if f5.MaxBest < f5.MaxPredicted-1e-9 && f5.MaxPredicted > f5.MaxBest*1.5 {
		t.Error("predicted surface peak wildly exceeds the best surface")
	}

	f6 := Figure6(pr)
	if len(f6.Model) != nP {
		t.Fatal("Figure 6 must have one bar per program")
	}
	for i := range f6.Model {
		if f6.Model[i] > f6.Best[i]+0.25 {
			t.Errorf("%s: model %f far exceeds best %f", f6.Programs[i], f6.Model[i], f6.Best[i])
		}
	}
	if f6.BestAvg < f6.ModelAvg-1e-9 && f6.ModelAvg > f6.BestAvg {
		t.Error("model average cannot exceed the iterative-compilation bound meaningfully")
	}

	f7 := Figure7(pr)
	if len(f7.Best) != nA {
		t.Fatal("Figure 7 must have one point per architecture")
	}
	for i := 1; i < len(f7.Best); i++ {
		if f7.Best[i] < f7.Best[i-1]-1e-9 {
			t.Error("Figure 7 best series must be sorted ascending")
		}
	}

	it := IterationsToMatch(pr)
	if it.Pairs != nP*nA {
		t.Error("iterations-to-match must cover every pair")
	}
	if it.MeanEvals < 1 {
		t.Error("mean evaluations below 1 impossible")
	}
}

func TestHintonDiagrams(t *testing.T) {
	ds := getDS(t)
	h8 := Figure8(ds)
	if len(h8.Cells) != opt.NumDims || len(h8.Cells[0]) != len(ds.Programs) {
		t.Fatal("Figure 8 dimensions wrong")
	}
	h9 := Figure9(ds)
	if len(h9.Cells) != opt.NumDims || len(h9.Cells[0]) != 19 {
		t.Fatal("Figure 9 dimensions wrong")
	}
	for _, h := range []([][]float64){h8.Cells, h9.Cells} {
		for _, row := range h {
			for _, v := range row {
				if v < 0 || v > 1 {
					t.Fatal("normalised MI out of [0,1]")
				}
			}
		}
	}
	if h8.Render() == "" || h9.Render() == "" {
		t.Error("empty Hinton rendering")
	}
}

func TestFigure1(t *testing.T) {
	ds := getDS(t)
	f1, err := Figure1(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Programs) != 3 || len(f1.Archs) != 3 || len(f1.Passes) != 5 {
		t.Fatal("Figure 1 must be 3 programs x 3 archs x 5 passes")
	}
	r := f1.Render()
	if !strings.Contains(r, "rijndael_e") {
		t.Error("Figure 1 render missing programs")
	}
}

func TestAblationKInsensitivity(t *testing.T) {
	// The Section 3.3.2 claim: performance is not sensitive to K near 7.
	ds := getDS(t)
	ab, err := Ablation(context.Background(), ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.KAvg) != len(ab.Ks) || len(ab.BetaAv) != len(ab.Betas) {
		t.Fatal("sweep incomplete")
	}
	// K=5..9 must stay within a narrow band of K=7.
	var k5, k7, k9 float64
	for i, k := range ab.Ks {
		switch k {
		case 5:
			k5 = ab.KAvg[i]
		case 7:
			k7 = ab.KAvg[i]
		case 9:
			k9 = ab.KAvg[i]
		}
	}
	const band = 0.08
	if k5 < k7-band || k5 > k7+band || k9 < k7-band || k9 > k7+band {
		t.Errorf("K sensitivity too strong: K5=%.3f K7=%.3f K9=%.3f", k5, k7, k9)
	}
	if ab.Render() == "" {
		t.Error("empty render")
	}
}
