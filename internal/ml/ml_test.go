package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"portcc/internal/opt"
)

func TestFitGoodFrequencies(t *testing.T) {
	// Three configs: flag 0 on in two of them -> theta = 2/3.
	var a, b, c opt.Config
	a.Flags[0] = true
	b.Flags[0] = true
	d, err := FitGood([]opt.Config{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Theta[0][1]-2.0/3) > 1e-12 {
		t.Errorf("theta[0][on] = %g, want 2/3", d.Theta[0][1])
	}
	if math.Abs(d.Theta[0][0]-1.0/3) > 1e-12 {
		t.Errorf("theta[0][off] = %g, want 1/3", d.Theta[0][0])
	}
}

func TestFitGoodEmpty(t *testing.T) {
	if _, err := FitGood(nil); err == nil {
		t.Error("empty good set accepted")
	}
}

func TestThetaSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cs []opt.Config
		for i := 0; i < 12; i++ {
			cs = append(cs, opt.Random(rng))
		}
		d, err := FitGood(cs)
		if err != nil {
			return false
		}
		for l := 0; l < opt.NumDims; l++ {
			s := 0.0
			for j := 0; j < opt.DimSize(l); j++ {
				s += d.Theta[l][j]
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModePicksArgmax(t *testing.T) {
	var on opt.Config
	on.Flags[opt.FGcse] = true
	d, _ := FitGood([]opt.Config{on, on, {}})
	mode := d.Mode()
	if !mode.Flag(opt.FGcse) {
		t.Error("mode must select the majority value")
	}
}

func TestTopGoodSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var configs []opt.Config
	var speedups []float64
	for i := 0; i < 100; i++ {
		configs = append(configs, opt.Random(rng))
		speedups = append(speedups, float64(i)) // strictly increasing
	}
	good := TopGood(configs, speedups)
	if len(good) != MinGoodCount {
		t.Fatalf("good set size %d, want MinGoodCount %d (5%% of 100 = 5 < floor)", len(good), MinGoodCount)
	}
	// They must be the 10 highest-speedup configs (indices 90..99).
	if good[0] != configs[99] {
		t.Error("best config not first in the good set")
	}
}

func TestGibbsInequality(t *testing.T) {
	// Cross-entropy H(p, q) is minimised at q = p (equation 2's basis).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cs1, cs2 []opt.Config
		for i := 0; i < 15; i++ {
			cs1 = append(cs1, opt.Random(rng))
			cs2 = append(cs2, opt.Random(rng))
		}
		p, _ := FitGood(cs1)
		q, _ := FitGood(cs2)
		return CrossEntropy(&p, &p) <= CrossEntropy(&p, &q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func makePair(name string, arch int, x []float64, flagOn opt.Flag) TrainingPair {
	var c opt.Config
	c.Flags[flagOn] = true
	g, _ := FitGood([]opt.Config{c, c, c})
	return TrainingPair{Prog: name, Arch: arch, X: x, G: g}
}

func TestKNNPrefersNearest(t *testing.T) {
	// Two clusters with opposite preferred flags; a query near cluster A
	// must inherit A's flag.
	var pairs []TrainingPair
	for i := 0; i < 8; i++ {
		pairs = append(pairs, makePair("a", i, []float64{0, float64(i) * 0.01}, opt.FUnrollLoops))
		pairs = append(pairs, makePair("b", i+8, []float64{10, float64(i) * 0.01}, opt.FScheduleInsns))
	}
	m := Train(pairs)
	got := m.Predict([]float64{0.1, 0})
	if !got.Flag(opt.FUnrollLoops) || got.Flag(opt.FScheduleInsns) {
		t.Error("prediction ignored the nearest cluster")
	}
	got = m.Predict([]float64{9.9, 0})
	if got.Flag(opt.FUnrollLoops) || !got.Flag(opt.FScheduleInsns) {
		t.Error("prediction ignored the nearest cluster (far side)")
	}
}

func TestExcludeMask(t *testing.T) {
	var pairs []TrainingPair
	for i := 0; i < 4; i++ {
		pairs = append(pairs, makePair("victim", i, []float64{0, 0}, opt.FUnrollLoops))
	}
	pairs = append(pairs, makePair("other", 99, []float64{5, 5}, opt.FScheduleInsns))
	m := Train(pairs)
	// Excluding "victim" leaves only the far pair.
	got := m.Predict([]float64{0, 0}, WithExclude("victim", -1))
	if got.Flag(opt.FUnrollLoops) {
		t.Error("excluded program leaked into the prediction")
	}
	if !got.Flag(opt.FScheduleInsns) {
		t.Error("remaining pair not used")
	}
}

func TestMixtureWeightsSumToOne(t *testing.T) {
	var pairs []TrainingPair
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		var cs []opt.Config
		for j := 0; j < 5; j++ {
			cs = append(cs, opt.Random(rng))
		}
		g, _ := FitGood(cs)
		pairs = append(pairs, TrainingPair{Prog: "p", Arch: i,
			X: []float64{rng.Float64(), rng.Float64()}, G: g})
	}
	m := Train(pairs)
	mix := m.Mixture([]float64{0.5, 0.5})
	for l := 0; l < opt.NumDims; l++ {
		s := 0.0
		for j := 0; j < opt.DimSize(l); j++ {
			s += mix.Theta[l][j]
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("mixture dimension %d sums to %g", l, s)
		}
	}
}

func TestEmptyNeighboursFallBackToUniform(t *testing.T) {
	m := Train([]TrainingPair{makePair("only", 0, []float64{1}, opt.FGcse)})
	mix := m.Mixture([]float64{1}, WithExclude("only", -1))
	for j := 0; j < 2; j++ {
		if math.Abs(mix.Theta[0][j]-0.5) > 1e-9 {
			t.Error("empty neighbour set must yield a uniform mixture")
		}
	}
}
