package ml

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"portcc/internal/features"
	"portcc/internal/opt"
	"portcc/internal/pcerr"
)

// synthModel builds a deterministic model without the dataset package
// (which ml cannot import): random-but-seeded feature vectors and good
// distributions across a handful of (program, arch) pairs.
func synthModel(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var pairs []TrainingPair
	for _, prog := range []string{"crc", "qsort", "dijkstra"} {
		for a := 0; a < 3; a++ {
			x := make([]float64, features.Dim)
			for i := range x {
				x[i] = rng.Float64()
			}
			var g Dist
			for l := 0; l < opt.NumDims; l++ {
				sum := 0.0
				for j := 0; j < opt.DimSize(l); j++ {
					g.Theta[l][j] = rng.Float64()
					sum += g.Theta[l][j]
				}
				for j := 0; j < opt.DimSize(l); j++ {
					g.Theta[l][j] /= sum
				}
			}
			pairs = append(pairs, TrainingPair{Prog: prog, Arch: a, X: x, G: g})
		}
	}
	return Train(pairs)
}

func testInfo() ArtifactInfo {
	return ArtifactInfo{
		DatasetSHA256: "deadbeef",
		TrainConfig:   "3 programs x 3 archs",
		Programs:      3, Archs: 3, Opts: 10,
		Seed:            21,
		EvalTargetInsns: 6000, EvalSeed: 1,
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	m := synthModel(t)
	var buf bytes.Buffer
	if err := Encode(&buf, m, testInfo()); err != nil {
		t.Fatal(err)
	}
	got, info, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Error("decoded model differs from the encoded one")
	}
	if info.DatasetSHA256 != "deadbeef" || info.EvalTargetInsns != 6000 {
		t.Errorf("info did not round-trip: %+v", info)
	}
	if info.Pairs != len(m.Pairs) {
		t.Errorf("info.Pairs = %d, want %d (Encode must denormalise it)", info.Pairs, len(m.Pairs))
	}
}

// TestArtifactReEncodeByteIdentical pins the determinism contract: the
// same model re-encodes (and a decoded model re-saves) to identical
// bytes, so artifact files diff cleanly and deploys can be verified by
// checksum.
func TestArtifactReEncodeByteIdentical(t *testing.T) {
	m := synthModel(t)
	var a, b bytes.Buffer
	if err := Encode(&a, m, testInfo()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, m, testInfo()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-encoding the same model produced different bytes")
	}
	decoded, info, err := Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := Encode(&c, decoded, info); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("decode + re-encode produced different bytes")
	}
}

func TestArtifactSaveLoad(t *testing.T) {
	m := synthModel(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := Save(path, m, testInfo()); err != nil {
		t.Fatal(err)
	}
	got, info, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) || info.Pairs != len(m.Pairs) {
		t.Error("loaded artifact differs from the saved model")
	}
}

func TestArtifactVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(artifactHeader{Magic: artifactMagic, Version: FormatVersion + 1}); err != nil {
		t.Fatal(err)
	}
	_, _, err := Decode(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, pcerr.ErrModelVersion) {
		t.Fatalf("future-version artifact: err = %v, want ErrModelVersion", err)
	}
}

func TestArtifactForeignFile(t *testing.T) {
	for name, data := range map[string][]byte{
		"garbage": []byte("not a gob stream at all"),
		"empty":   nil,
	} {
		_, _, err := Decode(bytes.NewReader(data))
		if !errors.Is(err, pcerr.ErrModelVersion) {
			t.Errorf("%s: err = %v, want ErrModelVersion", name, err)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(artifactHeader{Magic: "something-else", Version: FormatVersion}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(bytes.NewReader(buf.Bytes())); !errors.Is(err, pcerr.ErrModelVersion) {
		t.Errorf("wrong magic: err = %v, want ErrModelVersion", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, _, err := Load(filepath.Join(t.TempDir(), "nope.gob"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want fs not-exist", err)
	}
}
