package ml

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"

	"portcc/internal/pcerr"
)

// FormatVersion is the model artifact schema version. Bump it whenever
// the gob layout of Model (or anything it embeds) changes incompatibly;
// Load refuses mismatching files with pcerr.ErrModelVersion instead of
// surfacing a confusing mid-stream gob decode error.
const FormatVersion = 1

// artifactMagic identifies a versioned portcc model artifact file.
const artifactMagic = "portcc-model"

// ArtifactInfo is the metadata embedded in a saved model artifact,
// tracing it back to the dataset it was trained from. The dataset
// package cannot be imported here (it imports ml), so the generation
// config crosses as plain fields rather than a dataset.GenConfig.
type ArtifactInfo struct {
	// DatasetSHA256 is the hex sha256 of the training dataset's canonical
	// Save byte stream (dataset.Fingerprint), tying the artifact to the
	// exact data it was fitted on.
	DatasetSHA256 string
	// TrainConfig is a one-line human-readable description of the
	// dataset generation config (programs, sample counts, seeds).
	TrainConfig string
	// Grid dimensions of the training dataset.
	Programs, Archs, Opts int
	// Extended marks the Section 7 space (frequency and issue width).
	Extended bool
	// Seed is the dataset sampling seed.
	Seed int64
	// Profiling workload parameters of the training runs. Deployment
	// must profile with the same parameters or the measured counters -
	// and therefore the feature vectors - would not be comparable to the
	// training distribution (zero values select evaluator defaults).
	EvalTargetInsns, EvalMaxInsns int
	EvalSeed                      int64
	// Pairs is the training-pair count (len(Model.Pairs), denormalised
	// for inspection without decoding the model).
	Pairs int
}

// artifactHeader precedes the artifact body in the gob stream,
// mirroring the dataset file header.
type artifactHeader struct {
	Magic   string
	Version int
}

// artifactBody is the versioned payload: metadata first (cheap to
// inspect), then the model itself.
type artifactBody struct {
	Info  ArtifactInfo
	Model Model
}

// pinGob assigns the artifact types their gob wire type ids in one fixed
// order. Gob draws type ids from a process-global counter at first use,
// so encodes are byte-deterministic only from the first pin onwards;
// Encode and Decode both pin, and the portcc facade pins at init - after
// the dataset package's own init pinning, which must keep its ids (the
// golden dataset digests depend on them). Within a process, re-encoding
// the same model is always byte-identical.
var pinGob = sync.Once{}

// PinGobTypes fixes the artifact types' gob wire ids now. The portcc
// facade calls it at init so every binary that can write artifacts
// assigns the same ids regardless of what it gob-encodes first at
// runtime, keeping artifact bytes reproducible across processes.
func PinGobTypes() {
	pinGob.Do(func() {
		enc := gob.NewEncoder(io.Discard)
		enc.Encode(artifactHeader{})
		enc.Encode(artifactBody{})
	})
}

// Encode writes the model as a versioned artifact to w. Encoding is
// deterministic: the same model and info produce the same bytes, so a
// re-saved artifact byte-compares equal to the original.
func Encode(w io.Writer, m *Model, info ArtifactInfo) error {
	if m == nil {
		return fmt.Errorf("ml: nil model")
	}
	PinGobTypes()
	info.Pairs = len(m.Pairs)
	enc := gob.NewEncoder(w)
	if err := enc.Encode(artifactHeader{Magic: artifactMagic, Version: FormatVersion}); err != nil {
		return err
	}
	return enc.Encode(artifactBody{Info: info, Model: *m})
}

// Decode reads an artifact written by Encode. Streams without a matching
// header - pre-versioning files, foreign files, or artifacts from a
// different schema version - fail with an error wrapping
// pcerr.ErrModelVersion.
func Decode(r io.Reader) (*Model, ArtifactInfo, error) {
	PinGobTypes()
	dec := gob.NewDecoder(r)
	var h artifactHeader
	// A foreign gob stream either fails to decode into the header or
	// decodes with the wrong magic; both surface as version mismatches,
	// with the decode cause preserved for diagnosis.
	if err := dec.Decode(&h); err != nil {
		return nil, ArtifactInfo{}, fmt.Errorf("ml: no artifact header (foreign or corrupt file): %w (%w)", pcerr.ErrModelVersion, err)
	}
	if h.Magic != artifactMagic {
		return nil, ArtifactInfo{}, fmt.Errorf("ml: no artifact header (foreign file): %w", pcerr.ErrModelVersion)
	}
	if h.Version != FormatVersion {
		return nil, ArtifactInfo{}, fmt.Errorf("ml: artifact version %d, this build reads version %d: %w",
			h.Version, FormatVersion, pcerr.ErrModelVersion)
	}
	var b artifactBody
	if err := dec.Decode(&b); err != nil {
		return nil, ArtifactInfo{}, err
	}
	return &b.Model, b.Info, nil
}

// Save writes the model artifact to path (see Encode).
func Save(path string, m *Model, info ArtifactInfo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, m, info); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a model artifact written by Save.
func Load(path string) (*Model, ArtifactInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ArtifactInfo{}, err
	}
	defer f.Close()
	m, info, err := Decode(f)
	if err != nil {
		return nil, ArtifactInfo{}, fmt.Errorf("%s: %w", path, err)
	}
	return m, info, nil
}
