// Package ml implements the paper's machine-learning model (Section 3):
//
//   - per program/microarchitecture pair, an IID multinomial distribution
//     g(y|X) over optimisation settings is fitted by maximum likelihood to
//     the empirical distribution of the *good* settings - those within the
//     top 5% of the sampled optimisation space (equations 2-5);
//
//   - across pairs, a predictive distribution q(y|x) is formed by K-nearest
//     -neighbour combination in feature space: the distributions of the K=7
//     closest training pairs are mixed with weights w_k proportional to
//     exp(-beta*d(x_k,x*)), beta=1 (equation 6);
//
//   - prediction takes the mode of the mixture (equation 1), which
//     factorises per optimisation dimension under the IID assumption.
package ml

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"portcc/internal/features"
	"portcc/internal/opt"
)

// Dist is the IID multinomial distribution g(y|X): one categorical
// distribution per optimisation dimension.
type Dist struct {
	// Theta[l][j] is the probability that dimension l takes value j
	// (theta_l^j in equation 4/5).
	Theta [opt.NumDims][opt.MaxDimSize]float64
}

// GoodFraction is the paper's definition of the good set: settings within
// the top 5% of all training settings for the pair (footnote 1).
const GoodFraction = 0.05

// MinGoodCount stabilises the fit at reduced sampling scales: the paper's
// 5% of 1000 evaluations gives 50 settings per fit; with fewer sampled
// settings the top 5% alone is too sparse to estimate the per-dimension
// probabilities, so at least this many settings enter the fit (at the
// paper's scale the 5% rule dominates and this floor is inactive).
const MinGoodCount = 10

// FitGood computes the maximum-likelihood IID fit to a uniform empirical
// distribution over the given good settings (equation 5): theta_l^j is the
// frequency of value j in dimension l.
func FitGood(good []opt.Config) (Dist, error) {
	var d Dist
	if len(good) == 0 {
		return d, fmt.Errorf("ml: empty good set")
	}
	inv := 1.0 / float64(len(good))
	for i := range good {
		for l := 0; l < opt.NumDims; l++ {
			d.Theta[l][good[i].Value(l)] += inv
		}
	}
	return d, nil
}

// TopGood selects the good set from a sampled dataset: the configurations
// whose speedups are within the top GoodFraction, at least one.
func TopGood(configs []opt.Config, speedups []float64) []opt.Config {
	n := len(configs)
	if n == 0 || n != len(speedups) {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if speedups[idx[a]] != speedups[idx[b]] {
			return speedups[idx[a]] > speedups[idx[b]]
		}
		return idx[a] < idx[b]
	})
	k := int(math.Ceil(float64(n) * GoodFraction))
	if k < MinGoodCount {
		k = MinGoodCount
	}
	if k > n {
		k = n
	}
	good := make([]opt.Config, 0, k)
	for _, i := range idx[:k] {
		good = append(good, configs[i])
	}
	return good
}

// Mode returns the most probable configuration under the distribution
// (equation 1 restricted to one mixture component).
func (d *Dist) Mode() opt.Config {
	var c opt.Config
	for l := 0; l < opt.NumDims; l++ {
		best, bestP := 0, -1.0
		for j := 0; j < opt.DimSize(l); j++ {
			if d.Theta[l][j] > bestP {
				best, bestP = j, d.Theta[l][j]
			}
		}
		c.SetValue(l, best)
	}
	return c
}

// LogLikelihood returns log g(y) for a configuration, with Laplace
// smoothing so unseen values stay finite.
func (d *Dist) LogLikelihood(c *opt.Config) float64 {
	const eps = 1e-6
	ll := 0.0
	for l := 0; l < opt.NumDims; l++ {
		ll += math.Log(d.Theta[l][c.Value(l)] + eps)
	}
	return ll
}

// CrossEntropy returns H(p, g) between two per-dimension distributions -
// the quantity minimised by the fit (equation 2/3), useful for tests.
func CrossEntropy(p, g *Dist) float64 {
	const eps = 1e-12
	h := 0.0
	for l := 0; l < opt.NumDims; l++ {
		for j := 0; j < opt.DimSize(l); j++ {
			if p.Theta[l][j] > 0 {
				h -= p.Theta[l][j] * math.Log(g.Theta[l][j]+eps)
			}
		}
	}
	return h
}

// TrainingPair is one program/microarchitecture pair of the training set.
type TrainingPair struct {
	// Prog names the program; Arch identifies the microarchitecture
	// (its index in the sampled configuration list).
	Prog string
	Arch int
	// X is the feature vector x=(c,d) from the -O3 profiling run.
	X []float64
	// G is the fitted distribution over good optimisation settings.
	G Dist
}

// Hyper-parameters of equation (6), as chosen in the paper.
const (
	// K is the neighbour count (the paper: "K = 7 different neighbour
	// programs", with insensitivity to similar values).
	K = 7
	// Beta is the weight decay constant (beta = 1).
	Beta = 1.0
)

// Model is the trained predictor.
type Model struct {
	Pairs []TrainingPair
	Norm  *features.Normalizer
	// KNeighbours and BetaValue allow experiments to vary the paper's
	// hyper-parameters; zero values select K and Beta.
	KNeighbours int
	BetaValue   float64
}

// trainCalls counts Train invocations process-wide. Pre-trained
// artifacts exist so deployment paths never retrain; TrainCalls lets
// tests pin that contract instead of trusting code inspection.
var trainCalls atomic.Int64

// TrainCalls returns how many times Train has run in this process.
func TrainCalls() int64 { return trainCalls.Load() }

// Train builds a model from training pairs: the feature normaliser is
// estimated and frozen from the training set.
func Train(pairs []TrainingPair) *Model {
	trainCalls.Add(1)
	vecs := make([][]float64, len(pairs))
	for i := range pairs {
		vecs[i] = pairs[i].X
	}
	return &Model{Pairs: pairs, Norm: features.NewNormalizer(vecs)}
}

// PredictOption configures a single prediction or mixture query.
type PredictOption func(*predictSettings)

type predictSettings struct {
	// exclude drops matching training pairs from the neighbour search;
	// nil excludes nothing.
	exclude func(*TrainingPair) bool
}

// WithExclude implements the leave-one-out mask of Section 5.1.1: any
// training pair matching the program name or the architecture index is
// dropped from the neighbour search (neither the test program nor the
// test microarchitecture is ever trained on).
func WithExclude(prog string, arch int) PredictOption {
	return func(s *predictSettings) {
		s.exclude = func(p *TrainingPair) bool {
			return p.Prog == prog || p.Arch == arch
		}
	}
}

func applyPredictOptions(opts []PredictOption) predictSettings {
	var s predictSettings
	for _, o := range opts {
		o(&s)
	}
	return s
}

type neighbour struct {
	dist float64
	pair *TrainingPair
}

// Predict returns the predicted-best configuration for feature vector x
// (equation 1): the mode of the KNN mixture q(y|x). By default every
// training pair participates; pass WithExclude for leave-one-out
// cross-validation.
func (m *Model) Predict(x []float64, opts ...PredictOption) opt.Config {
	mix := m.Mixture(x, opts...)
	return mix.Mode()
}

// Mixture computes q(y|x): the convex combination of the K nearest
// training distributions with weights w_k = exp(-beta d_k)/sum (eq. 6).
func (m *Model) Mixture(x []float64, opts ...PredictOption) Dist {
	set := applyPredictOptions(opts)
	k := m.KNeighbours
	if k <= 0 {
		k = K
	}
	beta := m.BetaValue
	if beta <= 0 {
		beta = Beta
	}
	nx := m.Norm.Apply(x)
	var nbrs []neighbour
	for i := range m.Pairs {
		p := &m.Pairs[i]
		if set.exclude != nil && set.exclude(p) {
			continue
		}
		nbrs = append(nbrs, neighbour{dist: features.Distance(nx, m.Norm.Apply(p.X)), pair: p})
	}
	sort.Slice(nbrs, func(a, b int) bool {
		if nbrs[a].dist != nbrs[b].dist {
			return nbrs[a].dist < nbrs[b].dist
		}
		// Deterministic tie-break on identity.
		if nbrs[a].pair.Prog != nbrs[b].pair.Prog {
			return nbrs[a].pair.Prog < nbrs[b].pair.Prog
		}
		return nbrs[a].pair.Arch < nbrs[b].pair.Arch
	})
	if len(nbrs) > k {
		nbrs = nbrs[:k]
	}
	var mix Dist
	if len(nbrs) == 0 {
		// Degenerate: uniform distribution.
		for l := 0; l < opt.NumDims; l++ {
			for j := 0; j < opt.DimSize(l); j++ {
				mix.Theta[l][j] = 1.0 / float64(opt.DimSize(l))
			}
		}
		return mix
	}
	// Weights relative to the nearest distance for numerical stability.
	d0 := nbrs[0].dist
	wsum := 0.0
	ws := make([]float64, len(nbrs))
	for i, nb := range nbrs {
		ws[i] = math.Exp(-beta * (nb.dist - d0))
		wsum += ws[i]
	}
	for i, nb := range nbrs {
		w := ws[i] / wsum
		for l := 0; l < opt.NumDims; l++ {
			for j := 0; j < opt.DimSize(l); j++ {
				mix.Theta[l][j] += w * nb.pair.G.Theta[l][j]
			}
		}
	}
	return mix
}
