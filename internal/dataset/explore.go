package dataset

import (
	"context"
	"fmt"
	"iter"

	"portcc/internal/cpu"
	"portcc/internal/opt"
	"portcc/internal/pcerr"
	"portcc/internal/pool"
	"portcc/internal/prog"
	"portcc/internal/uarch"
)

// ExploreRequest is a serialisable (gob) description of a design-space
// exploration grid: every sampled optimisation setting of every program is
// compiled once and replayed over the architecture sample. It carries no
// functions or session state, so a coordinator can ship sub-grids to
// worker shards as-is.
type ExploreRequest struct {
	// Programs are benchmark names from the suite.
	Programs []string
	// Opts are the optimisation settings evaluated for every program.
	Opts []opt.Config
	// Archs is the microarchitecture sample every compiled trace is
	// replayed over.
	Archs []uarch.Config
	// ArchBatch caps how many architectures one work cell simulates
	// (0 = all of Archs in a single batched replay). Smaller batches
	// trade batching efficiency for finer streaming granularity.
	ArchBatch int
	// Eval carries the workload-scaling parameters for the evaluators.
	Eval EvalConfig
}

// Validate checks the request against the benchmark suite and the legal
// microarchitecture space, wrapping the typed sentinels.
func (r *ExploreRequest) Validate() error {
	if len(r.Programs) == 0 || len(r.Opts) == 0 || len(r.Archs) == 0 {
		return fmt.Errorf("dataset: %w: explore request needs programs, opts and archs", pcerr.ErrInvalidConfig)
	}
	if r.ArchBatch < 0 {
		return fmt.Errorf("dataset: %w: negative ArchBatch", pcerr.ErrInvalidConfig)
	}
	for _, name := range r.Programs {
		if !prog.Known(name) {
			return fmt.Errorf("dataset: %w: %q", pcerr.ErrUnknownProgram, name)
		}
	}
	for i, a := range r.Archs {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("dataset: arch %d: %w", i, err)
		}
	}
	return nil
}

// Cells returns the number of work cells the request fans out to (0 for
// a request with an empty dimension, which Validate rejects).
func (r *ExploreRequest) Cells() int {
	if len(r.Programs) == 0 || len(r.Opts) == 0 || len(r.Archs) == 0 {
		return 0
	}
	ab := r.ArchBatch
	if ab <= 0 || ab > len(r.Archs) {
		ab = len(r.Archs)
	}
	batches := (len(r.Archs) + ab - 1) / ab
	return len(r.Programs) * len(r.Opts) * batches
}

// ExploreResult is one completed work cell: the program compiled under one
// optimisation setting, replayed over one architecture batch. Like the
// request it is a plain serialisable value, so shards can stream results
// back over the wire.
type ExploreResult struct {
	// ProgIndex, OptIndex and ArchStart locate the cell in the request
	// grid; Results[i] belongs to Archs[ArchStart+i].
	ProgIndex, OptIndex, ArchStart int
	// Program and Config echo the cell inputs for self-contained use.
	Program string
	Config  opt.Config
	// Runs is the complete-program-run count of the trace; divide Cycles
	// by it for the work-normalised metric.
	Runs int
	// Results holds the per-architecture counters, in batch order.
	Results []cpu.Result
}

// ExploreOptions carries the execution (not work-unit) parameters of an
// exploration: they stay on the driving side and are never serialised.
type ExploreOptions struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// Progress, when set, is called after each completed cell with the
	// number of completed cells and the total. Calls are serialised.
	Progress func(done, total int)
}

// exploreCell is one unit of fan-out work.
type exploreCell struct {
	index              int // position in dispatch order, for error determinism
	prog, opt          int
	archStart, archEnd int
}

// cells enumerates the grid program-major, settings inner, arch batches
// innermost: arch batches of one (program, setting) stay adjacent so a
// worker's private trace cache serves them, and the shared pool base
// deduplicates module builds and -O3 probes across workers.
func (r *ExploreRequest) cells() []exploreCell {
	ab := r.ArchBatch
	if ab <= 0 || ab > len(r.Archs) {
		ab = len(r.Archs)
	}
	out := make([]exploreCell, 0, r.Cells())
	for p := range r.Programs {
		for o := range r.Opts {
			for s := 0; s < len(r.Archs); s += ab {
				end := s + ab
				if end > len(r.Archs) {
					end = len(r.Archs)
				}
				out = append(out, exploreCell{index: len(out), prog: p, opt: o, archStart: s, archEnd: end})
			}
		}
	}
	return out
}

// runCell compiles (or reuses) the cell's trace and replays it over the
// cell's architecture batch.
func runCell(ev *Evaluator, req *ExploreRequest, c exploreCell) (ExploreResult, error) {
	name := req.Programs[c.prog]
	cfg := req.Opts[c.opt]
	tr, _, err := ev.Trace(name, &cfg)
	if err != nil {
		return ExploreResult{}, &pcerr.SimError{Program: name, Setting: c.opt, Arch: c.archStart, Err: err}
	}
	runs := tr.Runs
	if runs < 1 {
		runs = 1
	}
	return ExploreResult{
		ProgIndex: c.prog,
		OptIndex:  c.opt,
		ArchStart: c.archStart,
		Program:   name,
		Config:    cfg,
		Runs:      runs,
		Results:   ev.SimulateBatch(tr, req.Archs[c.archStart:c.archEnd]),
	}, nil
}

// Explore streams the request's grid through a worker pool, yielding cells
// as they complete (completion order is scheduling-dependent; use the
// indices in each result). It is the single exploration engine: Generate,
// the portcc Session facade and the experiment drivers all sit on top of
// it, and a future coordinator/worker split shards exactly these cells.
//
// Semantics:
//
//   - Each grid cell is yielded exactly once, or not at all after a
//     failure or cancellation.
//   - On a cell failure, dispatch stops, already-dispatched cells finish
//     (their results are still yielded), and the terminal yield carries
//     the error of the lowest-indexed failing cell - deterministic under
//     any worker schedule.
//   - On context cancellation the workers drain promptly without leaking
//     goroutines and the terminal yield carries a *pcerr.PartialError
//     wrapping ctx.Err() with done/total cell counts.
//   - Breaking out of the loop early cancels and drains the pool before
//     the iterator returns.
func Explore(ctx context.Context, req ExploreRequest, o ExploreOptions) iter.Seq2[ExploreResult, error] {
	return func(yield func(ExploreResult, error) bool) {
		if err := req.Validate(); err != nil {
			yield(ExploreResult{}, err)
			return
		}
		cells := req.cells()
		total := len(cells)

		ictx, cancel := context.WithCancel(ctx)
		defer cancel()
		results := make(chan ExploreResult)

		workers := pool.Workers(o.Workers, total)
		// One evaluator per worker slot (private trace caches), sharing
		// program modules and -O3 probes through a pool base so a
		// program's cells spread over many workers compile each probe
		// once, not once per worker.
		base := NewSharedBase()
		evs := make([]*Evaluator, workers)
		var firstErr error
		go func() {
			defer close(results)
			_, firstErr = pool.Run(ictx, workers, total, func(slot, idx int) error {
				if evs[slot] == nil {
					evs[slot] = NewEvaluatorWith(req.Eval, base)
				}
				res, err := runCell(evs[slot], &req, cells[idx])
				if err != nil {
					return err
				}
				select {
				case results <- res:
				case <-ictx.Done():
				}
				return nil
			})
		}()
		// drain cancels the pool and blocks until every worker has
		// exited (results closes only after pool.Run returns), so no
		// goroutine outlives the iterator.
		drain := func() {
			cancel()
			for range results {
			}
		}

		done := 0
		for res := range results {
			done++
			if o.Progress != nil {
				o.Progress(done, total)
			}
			if !yield(res, nil) {
				drain()
				return
			}
		}
		// The pool has fully drained here: results is closed, so
		// firstErr is visible. A real cell failure outranks
		// cancellation: it stopped dispatch first and locates the
		// broken cell, which a bare PartialError hides.
		if firstErr != nil {
			yield(ExploreResult{}, firstErr)
			return
		}
		// A cancellation that races the final cell must not discard a
		// fully completed grid: only report partial progress when cells
		// were actually lost.
		if err := ctx.Err(); err != nil && done < total {
			yield(ExploreResult{}, &pcerr.PartialError{Done: done, Total: total, Err: err})
		}
	}
}
