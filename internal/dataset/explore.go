package dataset

import (
	"context"
	"encoding/gob"
	"fmt"
	"iter"
	"sync"
	"time"

	"portcc/internal/cpu"
	"portcc/internal/opt"
	"portcc/internal/pcerr"
	"portcc/internal/prog"
	"portcc/internal/sched"
	"portcc/internal/tune"
	"portcc/internal/uarch"
)

// Exploration work units cross shard boundaries as interface-typed wire
// frame payloads; gob needs the concrete types registered.
func init() {
	gob.Register(ExploreRequest{})
	gob.Register(ExploreResult{})
}

// ExploreRequest is a serialisable (gob) description of a design-space
// exploration grid: every sampled optimisation setting of every program is
// compiled once and replayed over the architecture sample. It carries no
// functions or session state, so the coordinator ships sub-grids to
// worker shards as-is.
type ExploreRequest struct {
	// Programs are benchmark names from the suite.
	Programs []string
	// Opts are the optimisation settings evaluated for every program.
	Opts []opt.Config
	// Archs is the microarchitecture sample every compiled trace is
	// replayed over.
	Archs []uarch.Config
	// ArchBatch caps how many architectures one work cell simulates
	// (0 = all of Archs in a single batched replay). Smaller batches
	// trade batching efficiency for finer streaming granularity.
	ArchBatch int
	// Eval carries the workload-scaling parameters for the evaluators.
	Eval EvalConfig
	// Naive disables the prefix-memoised batched compile path: every
	// cell compiles, traces and replays its own setting independently,
	// as before the batch engine existed. The produced results (and any
	// saved dataset) are bit-identical either way; the naive path exists
	// for equivalence checks and as the benchmark baseline. The field
	// rides to worker shards with the request, so a sharded run honours
	// it on every daemon.
	Naive bool
}

// Validate checks the request against the benchmark suite and the legal
// microarchitecture space, wrapping the typed sentinels.
func (r *ExploreRequest) Validate() error {
	if len(r.Programs) == 0 || len(r.Opts) == 0 || len(r.Archs) == 0 {
		return fmt.Errorf("dataset: %w: explore request needs programs, opts and archs", pcerr.ErrInvalidConfig)
	}
	if r.ArchBatch < 0 {
		return fmt.Errorf("dataset: %w: negative ArchBatch", pcerr.ErrInvalidConfig)
	}
	seen := make(map[string]bool, len(r.Programs))
	for _, name := range r.Programs {
		if !prog.Known(name) {
			return fmt.Errorf("dataset: %w: %q", pcerr.ErrUnknownProgram, name)
		}
		// A duplicate would double-count cells and corrupt per-program
		// indexing in every consumer that folds by ProgIndex.
		if seen[name] {
			return fmt.Errorf("dataset: %w: duplicate program %q", pcerr.ErrInvalidConfig, name)
		}
		seen[name] = true
	}
	for i, a := range r.Archs {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("dataset: arch %d: %w", i, err)
		}
	}
	return nil
}

// Cells returns the number of work cells the request fans out to (0 for
// a request with an empty dimension, which Validate rejects).
func (r *ExploreRequest) Cells() int {
	if len(r.Programs) == 0 || len(r.Opts) == 0 || len(r.Archs) == 0 {
		return 0
	}
	ab := r.ArchBatch
	if ab <= 0 || ab > len(r.Archs) {
		ab = len(r.Archs)
	}
	batches := (len(r.Archs) + ab - 1) / ab
	return len(r.Programs) * len(r.Opts) * batches
}

// ExploreResult is one completed work cell: the program compiled under one
// optimisation setting, replayed over one architecture batch. Like the
// request it is a plain serialisable value, so shards stream results
// back over the wire.
type ExploreResult struct {
	// ProgIndex, OptIndex and ArchStart locate the cell in the request
	// grid; Results[i] belongs to Archs[ArchStart+i].
	ProgIndex, OptIndex, ArchStart int
	// Program and Config echo the cell inputs for self-contained use.
	Program string
	Config  opt.Config
	// Runs is the complete-program-run count of the trace; divide Cycles
	// by it for the work-normalised metric.
	Runs int
	// Results holds the per-architecture counters, in batch order.
	Results []cpu.Result
}

// ExploreOptions carries the execution (not work-unit) parameters of an
// exploration: they stay on the driving side and are never serialised.
type ExploreOptions struct {
	// Workers bounds the in-process worker pool (0 = GOMAXPROCS).
	// Ignored when Shards is set: parallelism then lives on the shards.
	Workers int
	// Progress, when set, is called after each completed cell with the
	// number of completed cells and the total. Calls are serialised.
	Progress func(done, total int)
	// Shards, when non-empty, ships the grid's cells to portccd worker
	// daemons at these host:port addresses instead of executing locally.
	// Cells from a dead shard requeue onto the survivors; the merged
	// stream is bit-identical to a local run of the same request.
	Shards []string
	// Retry governs how hard the coordinator fights to keep shard
	// connections alive: dead connections are redialled with exponential
	// backoff up to Retry.MaxAttempts per shard, and cells repeatedly
	// stranded by dying connections are quarantined after
	// Retry.MaxStrands strandings. The zero value applies the scheduler
	// defaults. Ignored for local runs.
	Retry sched.RetryPolicy
	// Naive forces the per-cell compile path (see ExploreRequest.Naive).
	Naive bool
	// SweepWorkers bounds the per-geometry sweep parallelism inside each
	// worker slot's batched replays: 0 auto-tunes (the slots divide
	// GOMAXPROCS between cell fan-out and sweeps, see internal/tune),
	// n >= 1 pins an explicit per-slot share. Results are bit-identical
	// at every setting. Like Workers it is an execution parameter: a
	// sharded run's sweeps are sized daemon-side (portccd -sweep-workers).
	SweepWorkers int
	// Store, when set, is the persistent content-addressed result store
	// the batched path answers replays from and commits them to, making
	// generation resumable: a run killed mid-flight restarts with most
	// cells served from disk and a byte-identical dataset. A tiered
	// store (OpenResultStoreRemote) additionally consults the fleet's
	// shared store service and commits fresh replays there, so one
	// machine's work answers every machine's lookups; every service
	// failure degrades to a local miss. Like Workers it is an execution
	// parameter and never serialised; a sharded run's stores live
	// daemon-side (portccd -store / -store-remote).
	Store *ResultStore
}

// executor picks the scheduling backend the options describe.
func (o *ExploreOptions) executor() sched.Executor {
	if len(o.Shards) > 0 {
		return &sched.Remote{Addrs: o.Shards, Retry: o.Retry}
	}
	return sched.Local{Workers: o.Workers}
}

// exploreCell is one unit of fan-out work.
type exploreCell struct {
	index              int // position in dispatch order, for error determinism
	prog, opt          int
	archStart, archEnd int
}

// cells enumerates the grid program-major, settings inner, arch batches
// innermost: arch batches of one (program, setting) stay adjacent so a
// worker's private trace cache serves them, and the shared pool base
// deduplicates module builds and -O3 probes across workers.
func (r *ExploreRequest) cells() []exploreCell {
	ab := r.ArchBatch
	if ab <= 0 || ab > len(r.Archs) {
		ab = len(r.Archs)
	}
	out := make([]exploreCell, 0, r.Cells())
	for p := range r.Programs {
		for o := range r.Opts {
			for s := 0; s < len(r.Archs); s += ab {
				end := s + ab
				if end > len(r.Archs) {
					end = len(r.Archs)
				}
				out = append(out, exploreCell{index: len(out), prog: p, opt: o, archStart: s, archEnd: end})
			}
		}
	}
	return out
}

// runCell compiles (or reuses) the cell's trace and replays it over the
// cell's architecture batch.
func runCell(ev *Evaluator, req *ExploreRequest, c exploreCell) (ExploreResult, error) {
	name := req.Programs[c.prog]
	cfg := req.Opts[c.opt]
	tr, _, err := ev.Trace(name, &cfg)
	if err != nil {
		return ExploreResult{}, &pcerr.SimError{Program: name, Setting: c.opt, Arch: c.archStart, Err: err}
	}
	runs := tr.Runs
	if runs < 1 {
		runs = 1
	}
	return ExploreResult{
		ProgIndex: c.prog,
		OptIndex:  c.opt,
		ArchStart: c.archStart,
		Program:   name,
		Config:    cfg,
		Runs:      runs,
		Results:   ev.SimulateBatch(tr, req.Archs[c.archStart:c.archEnd]),
	}, nil
}

// Runner returns the in-process cell-execution function of the request's
// grid - the Job.Run both the local executor and the worker daemon
// (cmd/portccd) plug into the scheduler. Each worker slot gets a private
// evaluator (its own trace cache), all sharing one pool base so a
// program's cells spread over many slots build each module and compile
// each -O3 probe once, not once per slot. Unless the request asks for
// the naive path, the slots additionally share a sweep state that
// batch-compiles each program's settings in windows (prefix-memoised)
// and deduplicates trace generation and replay across settings whose
// binaries came out byte-identical. slots bounds the slot space: callers
// must derive it with sched.Workers so it matches the pool's slot
// contract. The request must already be validated.
func (r *ExploreRequest) Runner(slots int) func(slot, index int) (any, error) {
	return r.RunnerWith(slots, 0)
}

// RunnerWith is Runner with an explicit per-slot sweep-worker budget for
// the batched replays inside each cell (0 auto-tunes: leftover cores the
// slot fan-out cannot occupy go to each slot's sweeps, see
// internal/tune; results are bit-identical at every setting).
func (r *ExploreRequest) RunnerWith(slots, sweepWorkers int) func(slot, index int) (any, error) {
	return r.RunnerStore(slots, sweepWorkers, nil)
}

// RunnerStore is RunnerWith with a persistent result store every slot's
// evaluator answers replays from and commits them to (nil = no store).
// Results are bit-identical with or without one.
func (r *ExploreRequest) RunnerStore(slots, sweepWorkers int, st *ResultStore) func(slot, index int) (any, error) {
	run, _ := r.runner(slots, sweepWorkers, st)
	return run
}

// InstrumentedRunner is Runner with one worker slot and sequential
// sweeps, returning the slot's evaluator alongside so a caller driving
// the grid itself can read the work counters (Stats) afterwards - the
// benchmark harness uses it to report pass runs saved without a
// profiler.
func (r *ExploreRequest) InstrumentedRunner() (func(slot, index int) (any, error), *Evaluator) {
	return r.InstrumentedRunnerStore(nil)
}

// InstrumentedRunnerStore is InstrumentedRunner with a persistent
// result store attached to the slot's evaluator (nil = none); the
// benchmark harness uses it to measure warm-store replay speed.
func (r *ExploreRequest) InstrumentedRunnerStore(st *ResultStore) (func(slot, index int) (any, error), *Evaluator) {
	run, evs := r.runner(1, 1, st)
	evs[0] = NewEvaluatorWith(r.Eval, nil)
	evs[0].SetSweepWorkers(1)
	if st != nil {
		evs[0].SetStore(st)
	}
	return run, evs[0]
}

func (r *ExploreRequest) runner(slots, sweepWorkers int, st *ResultStore) (func(slot, index int) (any, error), []*Evaluator) {
	cells := r.cells()
	base := NewSharedBase()
	evs := make([]*Evaluator, slots)
	var sw *sweepState
	if !r.Naive {
		sw = newSweepState(r, slots)
	}
	if sweepWorkers <= 0 {
		// Auto-tune: the slot fan-out claims the machine first, and each
		// slot's replays sweep over the cores the fan-out cannot occupy.
		_, sweepWorkers = tune.Split(0, slots, len(r.Archs))
	}
	return func(slot, index int) (any, error) {
		if evs[slot] == nil {
			evs[slot] = NewEvaluatorWith(r.Eval, base)
			evs[slot].SetSweepWorkers(sweepWorkers)
			if st != nil {
				evs[slot].SetStore(st)
			}
		}
		var res ExploreResult
		var err error
		if sw != nil {
			res, err = runCellBatched(evs[slot], sw, cells[index])
		} else {
			res, err = runCell(evs[slot], r, cells[index])
		}
		if err != nil {
			return nil, err
		}
		return res, nil
	}, evs
}

// ServeConfig returns the scheduler serve configuration of an
// exploration worker: decode job specs as ExploreRequests, validate them
// against this build's suite and spaces, and run cells on pooled
// evaluators. cmd/portccd wraps exactly this; tests drive it in-process.
func ServeConfig(workers int, heartbeat time.Duration) sched.ServeConfig {
	return ServeConfigWith(workers, 0, heartbeat)
}

// ServeConfigWith is ServeConfig with an explicit per-slot sweep-worker
// budget for the batched replays (0 auto-tunes against the daemon's
// GOMAXPROCS; portccd exposes it as -sweep-workers). Streams are
// bit-identical at every setting.
func ServeConfigWith(workers, sweepWorkers int, heartbeat time.Duration) sched.ServeConfig {
	return ServeConfigStore(workers, sweepWorkers, heartbeat, nil)
}

// ServeConfigStore is ServeConfigWith with a persistent result store
// shared by every run the daemon serves (nil = none; portccd exposes it
// as -store/-store-budget): a daemon restarted after a crash answers
// the resubmitted grid's replays from disk. Streams are bit-identical
// with or without a store.
func ServeConfigStore(workers, sweepWorkers int, heartbeat time.Duration, st *ResultStore) sched.ServeConfig {
	return sched.ServeConfig{
		Format:    FormatVersion,
		Workers:   workers,
		Heartbeat: heartbeat,
		NewRun: func(spec any) (func(slot, index int) (any, error), error) {
			req, ok := spec.(ExploreRequest)
			if !ok {
				return nil, fmt.Errorf("dataset: %w: job spec is %T, want ExploreRequest", pcerr.ErrInvalidConfig, spec)
			}
			if err := req.Validate(); err != nil {
				return nil, err
			}
			return req.RunnerStore(sched.Workers(workers, req.Cells()), sweepWorkers, st), nil
		},
	}
}

// Explore streams the request's grid through a scheduler executor,
// yielding cells as they complete (completion order is scheduling-
// dependent; use the indices in each result). It is the single
// exploration engine: Generate, the portcc Session facade and the
// experiment drivers all sit on top of it. Without Shards the cells fan
// over the in-process worker pool; with Shards they ship to portccd
// worker daemons over gob/TCP, with identical semantics and a merged
// stream bit-identical to the local run.
//
// Semantics:
//
//   - Each grid cell is yielded exactly once, or not at all after a
//     failure or cancellation.
//   - On a cell failure, dispatch stops, already-dispatched cells finish
//     (their results are still yielded), and the terminal yield carries
//     the error of the lowest-indexed failing cell - deterministic under
//     any worker schedule or shard layout.
//   - A dead shard connection is not a failure: its unfinished cells
//     requeue onto the survivors while the coordinator redials the shard
//     with exponential backoff (ExploreOptions.Retry). Only when every
//     shard has exhausted its retry budget does the terminal yield carry
//     an error wrapping pcerr.ErrShardFailure. A cell that repeatedly
//     strands dying connections is quarantined as pcerr.ErrCellPoisoned
//     at its own index; a cell whose runner panics on the daemon fails
//     typed as pcerr.ErrCellPanic without killing the daemon.
//   - On context cancellation the workers drain promptly without leaking
//     goroutines and the terminal yield carries a *pcerr.PartialError
//     wrapping ctx.Err() with done/total cell counts.
//   - Breaking out of the loop early cancels and drains the executor
//     before the iterator returns.
func Explore(ctx context.Context, req ExploreRequest, o ExploreOptions) iter.Seq2[ExploreResult, error] {
	return func(yield func(ExploreResult, error) bool) {
		if o.Naive {
			req.Naive = true
		}
		if err := req.Validate(); err != nil {
			yield(ExploreResult{}, err)
			return
		}
		total := req.Cells()

		ictx, cancel := context.WithCancel(ctx)
		defer cancel()
		results := make(chan ExploreResult)

		job := sched.Job{Spec: req, Cells: total, Format: FormatVersion}
		if len(o.Shards) == 0 {
			// Remote execution never runs cells coordinator-side; the
			// evaluator pool exists only on the local path, so sharded
			// runs do not allocate a dead runner.
			job.Run = req.RunnerStore(sched.Workers(o.Workers, total), o.SweepWorkers, o.Store)
		}
		var firstErr error
		var protoOnce sync.Once
		var protoErr error
		go func() {
			defer close(results)
			_, firstErr = o.executor().Execute(ictx, job, func(index int, payload any) {
				res, ok := payload.(ExploreResult)
				if !ok {
					// A shard that passed the version handshake but
					// streams a foreign payload type is a protocol
					// violation, not a coordinator panic: stop the run
					// and surface it typed.
					protoOnce.Do(func() {
						protoErr = fmt.Errorf("dataset: %w: shard returned a %T payload, want ExploreResult",
							pcerr.ErrShardFailure, payload)
						cancel()
					})
					return
				}
				select {
				case results <- res:
				case <-ictx.Done():
				}
			})
		}()
		// drain cancels the executor and blocks until every worker has
		// exited (results closes only after Execute returns), so no
		// goroutine outlives the iterator.
		drain := func() {
			cancel()
			for range results {
			}
		}

		done := 0
		for res := range results {
			done++
			if o.Progress != nil {
				o.Progress(done, total)
			}
			if !yield(res, nil) {
				drain()
				return
			}
		}
		// The executor has fully drained here: results is closed, so
		// firstErr is visible. A real cell failure outranks
		// cancellation: it stopped dispatch first and locates the
		// broken cell, which a bare PartialError hides.
		if firstErr != nil {
			yield(ExploreResult{}, firstErr)
			return
		}
		// protoErr is visible for the same reason firstErr is, and only
		// ever set alongside its own ictx cancellation - the parent ctx
		// check below cannot mask it.
		if protoErr != nil {
			yield(ExploreResult{}, protoErr)
			return
		}
		// A cancellation that races the final cell must not discard a
		// fully completed grid: only report partial progress when cells
		// were actually lost.
		if err := ctx.Err(); err != nil && done < total {
			yield(ExploreResult{}, &pcerr.PartialError{Done: done, Total: total, Err: err})
		}
	}
}
