// Package dataset generates and stores the paper's training data: for a
// sample of programs, microarchitectures and optimisation settings, the
// speedup of every setting over -O3 plus the -O3 performance-counter
// feature vectors (Section 3.2).
//
// The expensive pipeline stage is compile+trace, which is independent of
// the microarchitecture: the Evaluator compiles once per (program,
// setting) and replays the trace across architectures, making the paper's
// 7-million-simulation protocol tractable.
package dataset

import (
	"sync"
	"sync/atomic"

	"portcc/internal/codegen"
	"portcc/internal/core"
	"portcc/internal/cpu"
	"portcc/internal/ir"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// EvalConfig fixes the workload-scaling parameters of an Evaluator.
type EvalConfig struct {
	// TargetInsns is the approximate dynamic trace length per simulation;
	// the run count per program is derived from it (>=1 complete runs).
	TargetInsns int
	// MaxInsns is the hard safety cap per trace.
	MaxInsns int
	// Seed drives trace generation (branch outcomes, addresses).
	Seed int64
	// CacheBudget, when positive, bounds the trace cache by approximate
	// resident bytes instead of the default fixed entry count. The most
	// recently inserted trace is always retained, so a tiny budget
	// degrades to compile-per-request rather than thrashing mid-request.
	CacheBudget int64
}

// DefaultEvalConfig is used when fields are zero.
var DefaultEvalConfig = EvalConfig{TargetInsns: 30_000, MaxInsns: 400_000, Seed: 1}

func (c EvalConfig) withDefaults() EvalConfig {
	d := DefaultEvalConfig
	if c.TargetInsns > 0 {
		d.TargetInsns = c.TargetInsns
	}
	if c.MaxInsns > 0 {
		d.MaxInsns = c.MaxInsns
	}
	if c.Seed != 0 {
		d.Seed = c.Seed
	}
	d.CacheBudget = c.CacheBudget
	return d
}

// SharedBase caches the microarchitecture- and setting-independent
// per-program artefacts - IR modules and the -O3 probe that fixes the
// complete-run count - across a pool of evaluators, so a fan-out that
// spreads one program's cells over many workers still builds each module
// and compiles each probe exactly once (single-flight). Every evaluator
// sharing a base must use the same EvalConfig, or run counts would
// disagree between workers.
type SharedBase struct {
	mu      sync.Mutex
	modules map[string]*moduleEntry
	probes  map[string]*probeEntry
	// compiles counts probe compiles actually performed (reporting).
	compiles atomic.Int64
}

// ProbeCompiles returns how many -O3 probe compiles the base performed -
// with single-flight dedup this is at most one per program, however many
// evaluators share the base.
func (b *SharedBase) ProbeCompiles() int64 { return b.compiles.Load() }

type moduleEntry struct {
	once sync.Once
	m    *ir.Module
	err  error
}

type probeEntry struct {
	once sync.Once
	runs int
	prog *codegen.Program
	err  error
}

// NewSharedBase builds an empty base for a pool of evaluators.
func NewSharedBase() *SharedBase {
	return &SharedBase{modules: map[string]*moduleEntry{}, probes: map[string]*probeEntry{}}
}

func (b *SharedBase) module(name string) (*ir.Module, error) {
	b.mu.Lock()
	en, ok := b.modules[name]
	if !ok {
		en = &moduleEntry{}
		b.modules[name] = en
	}
	b.mu.Unlock()
	en.once.Do(func() { en.m, en.err = prog.Build(name) })
	return en.m, en.err
}

// runsFor compiles the program's -O3 probe once and derives the per-
// program complete-run count from it. The compiled -O3 binary is kept so
// every worker can regenerate the -O3 trace without recompiling.
func (b *SharedBase) runsFor(name string, m *ir.Module, cfg EvalConfig) (int, *codegen.Program, error) {
	b.mu.Lock()
	en, ok := b.probes[name]
	if !ok {
		en = &probeEntry{}
		b.probes[name] = en
	}
	b.mu.Unlock()
	en.once.Do(func() {
		b.compiles.Add(1)
		o3 := opt.O3()
		p, err := core.Compile(m, &o3)
		if err != nil {
			en.err = err
			return
		}
		probe := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: cfg.MaxInsns, Seed: cfg.Seed})
		en.runs, en.prog = deriveRuns(probe, cfg), p
	})
	return en.runs, en.prog, en.err
}

// deriveRuns turns a 1-run -O3 probe into the per-program complete-run
// count: enough runs to approach TargetInsns, clamped to [1, 8]. Pooled
// and standalone evaluators must share this derivation, or run counts
// would disagree between workers.
func deriveRuns(probe *trace.Trace, cfg EvalConfig) int {
	perRun := probe.Insns()
	if perRun < 1 {
		perRun = 1
	}
	r := cfg.TargetInsns / perRun
	if r < 1 {
		r = 1
	}
	if r > 8 {
		r = 8
	}
	return r
}

// Evaluator compiles programs under optimisation settings and simulates
// them on microarchitectures, caching compiled traces (which are
// microarchitecture-independent). Safe for concurrent use.
type Evaluator struct {
	cfg  EvalConfig
	base *SharedBase // optional pool-shared module/probe cache

	mu      sync.Mutex
	modules map[string]*ir.Module
	runs    map[string]int // complete runs per trace, fixed per program
	traces  map[string]*cachedTrace
	order   []string // LRU order of trace cache keys
	bytes   int64    // approximate resident bytes of cached traces
	// Compiles and Simulations count work done (for reporting).
	Compiles    int
	Simulations int
}

type cachedTrace struct {
	tr   *trace.Trace
	prog *codegen.Program
}

// traceCacheSize bounds the trace cache; generation loops are ordered so a
// tiny cache suffices, keeping memory flat at paper scale.
const traceCacheSize = 4

// NewEvaluator builds a standalone evaluator.
func NewEvaluator(cfg EvalConfig) *Evaluator {
	return NewEvaluatorWith(cfg, nil)
}

// NewEvaluatorWith builds an evaluator that resolves modules and -O3
// probes through base (when non-nil), for worker pools. Trace caches
// stay private per evaluator.
func NewEvaluatorWith(cfg EvalConfig, base *SharedBase) *Evaluator {
	return &Evaluator{
		cfg:     cfg.withDefaults(),
		base:    base,
		modules: map[string]*ir.Module{},
		runs:    map[string]int{},
		traces:  map[string]*cachedTrace{},
	}
}

// Stats returns the work counters (compiles and simulations so far) under
// the evaluator's lock, safe against concurrent use.
func (e *Evaluator) Stats() (compiles, simulations int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Compiles, e.Simulations
}

// module returns the pristine IR of a program, building it on first use
// (through the shared base when pooled).
func (e *Evaluator) module(name string) (*ir.Module, error) {
	if m, ok := e.modules[name]; ok {
		return m, nil
	}
	var m *ir.Module
	var err error
	if e.base != nil {
		m, err = e.base.module(name)
	} else {
		m, err = prog.Build(name)
	}
	if err != nil {
		return nil, err
	}
	e.modules[name] = m
	return m, nil
}

// runsFor determines the per-program complete-run count from a probe of
// the -O3 binary, so every setting of the program does identical work.
// The probe compiles -O3 anyway, so on first computation the compiled
// binary and probe trace are returned for the caller to seed the trace
// cache with - the almost-certain next request, Trace(name, O3), then
// costs nothing instead of recompiling the probe's binary. Called with
// e.mu held.
func (e *Evaluator) runsFor(name string, m *ir.Module) (int, *codegen.Program, *trace.Trace, error) {
	if e.base != nil {
		// The base compiled the probe once for the whole pool and keeps
		// the binary, so every call returns it: any later -O3 trace
		// request regenerates from the binary instead of recompiling
		// (no probe trace - it is regenerated when needed).
		return e.baseRunsFor(name, m)
	}
	if r, ok := e.runs[name]; ok {
		return r, nil, nil, nil
	}
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		return 0, nil, nil, err
	}
	e.Compiles++
	probe := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})
	r := deriveRuns(probe, e.cfg)
	e.runs[name] = r
	return r, p, probe, nil
}

// traceBytes approximates the resident size of a cached trace: the event
// stream dominates (16 bytes per padded Event) plus a small fixed cost for
// counters and the binary image.
func traceBytes(tr *trace.Trace) int64 {
	return int64(len(tr.Events))*16 + 4096
}

// baseRunsFor resolves the run count and -O3 binary through the shared
// base on every call (a brief mutex acquisition, noise next to the
// compile/replay work per cell): the binary must stay available so an
// -O3 trace request at any point regenerates instead of recompiling.
func (e *Evaluator) baseRunsFor(name string, m *ir.Module) (int, *codegen.Program, *trace.Trace, error) {
	r, p, err := e.base.runsFor(name, m, e.cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	return r, p, nil, nil
}

// insertTrace caches a compiled trace under key, evicting in FIFO order.
// With a CacheBudget the bound is approximate bytes (the newest entry is
// always kept); otherwise it is the fixed traceCacheSize entry count.
// Called with e.mu held.
func (e *Evaluator) insertTrace(key string, tr *trace.Trace, p *codegen.Program) {
	if _, ok := e.traces[key]; ok {
		return
	}
	e.traces[key] = &cachedTrace{tr: tr, prog: p}
	e.order = append(e.order, key)
	e.bytes += traceBytes(tr)
	evict := func() bool {
		if e.cfg.CacheBudget > 0 {
			return e.bytes > e.cfg.CacheBudget && len(e.order) > 1
		}
		return len(e.order) > traceCacheSize
	}
	for evict() {
		old := e.order[0]
		e.order = e.order[1:]
		e.bytes -= traceBytes(e.traces[old].tr)
		delete(e.traces, old)
	}
}

// Trace returns the dynamic trace of the program compiled under c, cached.
func (e *Evaluator) Trace(name string, c *opt.Config) (*trace.Trace, *codegen.Program, error) {
	key := name + "/" + c.Key()
	e.mu.Lock()
	if ct, ok := e.traces[key]; ok {
		e.mu.Unlock()
		return ct.tr, ct.prog, nil
	}
	m, err := e.module(name)
	if err != nil {
		e.mu.Unlock()
		return nil, nil, err
	}
	runs, o3Prog, o3Probe, err := e.runsFor(name, m)
	if err != nil {
		e.mu.Unlock()
		return nil, nil, err
	}
	e.mu.Unlock()

	// Seed the cache from runsFor's -O3 probe compile, generating the
	// full-length trace outside the lock (the probe already is that
	// trace when the run count is 1). An -O3 request is then satisfied
	// without compiling again. Pooled evaluators get the compiled binary
	// from the shared base without a probe trace; for them only an
	// actual -O3 request seeds - most workers never serve the program's
	// -O3 cell, and an eager full-length trace would be wasted work.
	if o3Prog != nil {
		o3 := opt.O3()
		o3Key := name + "/" + o3.Key()
		if o3Probe != nil || key == o3Key {
			o3Trace := o3Probe
			if o3Trace == nil || runs != 1 {
				o3Trace = trace.Generate(o3Prog, trace.Config{Runs: runs, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})
			}
			e.mu.Lock()
			e.insertTrace(o3Key, o3Trace, o3Prog)
			ct, ok := e.traces[key]
			e.mu.Unlock()
			if ok {
				return ct.tr, ct.prog, nil
			}
		}
	}

	// Compile and trace outside the lock (the expensive part).
	p, err := core.Compile(m, c)
	if err != nil {
		return nil, nil, err
	}
	tr := trace.Generate(p, trace.Config{Runs: runs, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})

	e.mu.Lock()
	e.Compiles++
	e.insertTrace(key, tr, p)
	e.mu.Unlock()
	return tr, p, nil
}

// SimulateBatch replays an already-generated trace on every architecture
// through the batched single-pass engine, returning one result per
// architecture in input order (bit-identical to SimulateTrace per
// architecture).
func (e *Evaluator) SimulateBatch(tr *trace.Trace, archs []uarch.Config) []cpu.Result {
	rs := cpu.SimulateBatch(tr, archs)
	e.mu.Lock()
	e.Simulations += len(archs)
	e.mu.Unlock()
	return rs
}

// SimulateTrace replays an already-generated trace on an architecture.
func (e *Evaluator) SimulateTrace(tr *trace.Trace, a uarch.Config) cpu.Result {
	return e.simulate(tr, a)
}

// simulate replays a trace on an architecture, counting the simulation.
func (e *Evaluator) simulate(tr *trace.Trace, a uarch.Config) cpu.Result {
	r := cpu.Simulate(tr, a)
	e.mu.Lock()
	e.Simulations++
	e.mu.Unlock()
	return r
}

// Run simulates program name compiled under c on architecture a.
func (e *Evaluator) Run(name string, c *opt.Config, a uarch.Config) (cpu.Result, error) {
	tr, _, err := e.Trace(name, c)
	if err != nil {
		return cpu.Result{}, err
	}
	return e.simulate(tr, a), nil
}

// CyclesPerRun returns cycles normalised by complete program runs, the
// comparable work-time metric.
func (e *Evaluator) CyclesPerRun(name string, c *opt.Config, a uarch.Config) (float64, error) {
	tr, _, err := e.Trace(name, c)
	if err != nil {
		return 0, err
	}
	r := e.simulate(tr, a)
	runs := tr.Runs
	if runs < 1 {
		runs = 1
	}
	return float64(r.Cycles) / float64(runs), nil
}
