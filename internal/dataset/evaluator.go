// Package dataset generates and stores the paper's training data: for a
// sample of programs, microarchitectures and optimisation settings, the
// speedup of every setting over -O3 plus the -O3 performance-counter
// feature vectors (Section 3.2).
//
// The expensive pipeline stage is compile+trace, which is independent of
// the microarchitecture: the Evaluator compiles once per (program,
// setting) and replays the trace across architectures, making the paper's
// 7-million-simulation protocol tractable.
package dataset

import (
	"sync"
	"sync/atomic"

	"portcc/internal/codegen"
	"portcc/internal/core"
	"portcc/internal/cpu"
	"portcc/internal/ir"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// EvalConfig fixes the workload-scaling parameters of an Evaluator.
type EvalConfig struct {
	// TargetInsns is the approximate dynamic trace length per simulation;
	// the run count per program is derived from it (>=1 complete runs).
	TargetInsns int
	// MaxInsns is the hard safety cap per trace.
	MaxInsns int
	// Seed drives trace generation (branch outcomes, addresses).
	Seed int64
	// CacheBudget, when positive, bounds the trace cache by approximate
	// resident bytes instead of the default fixed entry count. The most
	// recently inserted trace is always retained, so a tiny budget
	// degrades to compile-per-request rather than thrashing mid-request.
	CacheBudget int64
}

// DefaultEvalConfig is used when fields are zero.
var DefaultEvalConfig = EvalConfig{TargetInsns: 30_000, MaxInsns: 400_000, Seed: 1}

func (c EvalConfig) withDefaults() EvalConfig {
	d := DefaultEvalConfig
	if c.TargetInsns > 0 {
		d.TargetInsns = c.TargetInsns
	}
	if c.MaxInsns > 0 {
		d.MaxInsns = c.MaxInsns
	}
	if c.Seed != 0 {
		d.Seed = c.Seed
	}
	d.CacheBudget = c.CacheBudget
	return d
}

// SharedBase caches the microarchitecture- and setting-independent
// per-program artefacts - IR modules and the -O3 probe that fixes the
// complete-run count - across a pool of evaluators, so a fan-out that
// spreads one program's cells over many workers still builds each module
// and compiles each probe exactly once (single-flight). Every evaluator
// sharing a base must use the same EvalConfig, or run counts would
// disagree between workers.
type SharedBase struct {
	mu      sync.Mutex
	modules map[string]*moduleEntry
	probes  map[string]*probeEntry
	// compiles counts probe compiles actually performed (reporting).
	compiles atomic.Int64
}

// ProbeCompiles returns how many -O3 probe compiles the base performed -
// with single-flight dedup this is at most one per program, however many
// evaluators share the base.
func (b *SharedBase) ProbeCompiles() int64 { return b.compiles.Load() }

type moduleEntry struct {
	once sync.Once
	m    *ir.Module
	err  error
}

type probeEntry struct {
	once   sync.Once
	runs   int
	perRun int // dynamic instructions of one complete -O3 run
	prog   *codegen.Program
	err    error
}

// NewSharedBase builds an empty base for a pool of evaluators.
func NewSharedBase() *SharedBase {
	return &SharedBase{modules: map[string]*moduleEntry{}, probes: map[string]*probeEntry{}}
}

func (b *SharedBase) module(name string) (*ir.Module, error) {
	b.mu.Lock()
	en, ok := b.modules[name]
	if !ok {
		en = &moduleEntry{}
		b.modules[name] = en
	}
	b.mu.Unlock()
	en.once.Do(func() { en.m, en.err = prog.Build(name) })
	return en.m, en.err
}

// runsFor compiles the program's -O3 probe once and derives the per-
// program complete-run count from it. The compiled -O3 binary is kept so
// every worker can regenerate the -O3 trace without recompiling.
func (b *SharedBase) runsFor(name string, m *ir.Module, cfg EvalConfig) (int, *codegen.Program, error) {
	b.mu.Lock()
	en, ok := b.probes[name]
	if !ok {
		en = &probeEntry{}
		b.probes[name] = en
	}
	b.mu.Unlock()
	en.once.Do(func() {
		b.compiles.Add(1)
		o3 := opt.O3()
		p, err := core.Compile(m, &o3)
		if err != nil {
			en.err = err
			return
		}
		probe := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: cfg.MaxInsns, Seed: cfg.Seed})
		en.runs, en.perRun, en.prog = deriveRuns(probe, cfg), probe.Insns(), p
	})
	return en.runs, en.prog, en.err
}

// deriveRuns turns a 1-run -O3 probe into the per-program complete-run
// count: enough runs to approach TargetInsns, clamped to [1, 8]. Pooled
// and standalone evaluators must share this derivation, or run counts
// would disagree between workers.
func deriveRuns(probe *trace.Trace, cfg EvalConfig) int {
	perRun := probe.Insns()
	if perRun < 1 {
		perRun = 1
	}
	r := cfg.TargetInsns / perRun
	if r < 1 {
		r = 1
	}
	if r > 8 {
		r = 8
	}
	return r
}

// Evaluator compiles programs under optimisation settings and simulates
// them on microarchitectures, caching compiled traces (which are
// microarchitecture-independent). Safe for concurrent use.
type Evaluator struct {
	cfg  EvalConfig
	base *SharedBase // optional pool-shared module/probe cache
	// sweepWorkers bounds the per-geometry sweep parallelism inside each
	// batched replay (0 = GOMAXPROCS, cpu.SimulateBatchWith's contract).
	// Worker pools that already fan out over programs set an explicit
	// share via SetSweepWorkers so the two levels together match the
	// machine (see internal/tune).
	sweepWorkers int
	// rstore, when set, is the persistent content-addressed result store
	// replays are answered from and committed to (SetStore). Typically
	// shared by every evaluator of a pool.
	rstore *ResultStore

	mu      sync.Mutex
	modules map[string]*ir.Module
	runs    map[string]int // complete runs per trace, fixed per program
	perRuns map[string]int // -O3 probe length per program (sizing hint)
	traces  map[string]*cachedTrace
	order   []string // LRU order of trace cache keys (front = coldest)
	bytes   int64    // approximate resident bytes of cached traces
	// Compiles and Simulations count work done (for reporting).
	Compiles    int
	Simulations int
	// Batched-path counters (see Stats).
	passRuns, passRunsSaved, traceReuses int64
	// Trace-generation counters (see Stats).
	traceGens, traceEvents int64
}

type cachedTrace struct {
	tr   *trace.Trace
	prog *codegen.Program
}

// traceCacheSize bounds the trace cache; generation loops are ordered so a
// tiny cache suffices, keeping memory flat at paper scale.
const traceCacheSize = 4

// NewEvaluator builds a standalone evaluator.
func NewEvaluator(cfg EvalConfig) *Evaluator {
	return NewEvaluatorWith(cfg, nil)
}

// NewEvaluatorWith builds an evaluator that resolves modules and -O3
// probes through base (when non-nil), for worker pools. Trace caches
// stay private per evaluator.
func NewEvaluatorWith(cfg EvalConfig, base *SharedBase) *Evaluator {
	return &Evaluator{
		cfg:     cfg.withDefaults(),
		base:    base,
		modules: map[string]*ir.Module{},
		runs:    map[string]int{},
		perRuns: map[string]int{},
		traces:  map[string]*cachedTrace{},
	}
}

// Stats is the evaluator's work ledger, counting work actually
// performed. Compiles counts per-setting compilations (a batched window
// that is evicted and later rebuilt recompiles, and recounts); PassRuns
// counts pipeline pass applications executed and PassRunsSaved the
// applications the batched engine's prefix trie avoided, so for every
// performed batch PassRuns+PassRunsSaved is what a naive pipeline would
// have run for it. TraceReuses counts settings whose trace generation
// (and replay) was skipped because an earlier setting of the same sweep
// produced a byte-identical binary - each such setting once, however
// many cells it spans. TraceGens counts trace generations this evaluator
// performed (probes included, pool-shared probes excluded) and
// TraceEvents the dynamic instructions they emitted - the denominator
// that makes generator-throughput changes observable from a benchmark
// run without a profiler.
type Stats struct {
	Compiles    int
	Simulations int

	PassRuns      int64
	PassRunsSaved int64
	TraceReuses   int64

	TraceGens   int64
	TraceEvents int64

	// StoreHits, StoreMisses and StoreCorrupt mirror the attached
	// persistent result store's ledger (zero without one): replays
	// answered from disk, replays that had to run, and entries
	// quarantined as corrupt. The counters are store-global, so
	// evaluators sharing a store report the shared totals. For a tiered
	// store, StoreHits counts replays answered by any tier.
	StoreHits, StoreMisses, StoreCorrupt int64

	// The StoreRemote* counters describe the shared-service tier of a
	// tiered result store (zero for a purely local one): replays
	// answered by the fleet's store service, lookups it answered with a
	// miss, and lookups degraded by transport trouble (dead service,
	// torn frames, slow replies - absorbed as misses). StorePutErrors
	// counts local commits the disk refused.
	StoreRemoteHits, StoreRemoteMisses, StoreRemoteErrors int64
	StorePutErrors                                        int64
}

// Stats returns the work counters under the evaluator's lock, safe
// against concurrent use.
func (e *Evaluator) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Compiles:      e.Compiles,
		Simulations:   e.Simulations,
		PassRuns:      e.passRuns,
		PassRunsSaved: e.passRunsSaved,
		TraceReuses:   e.traceReuses,
		TraceGens:     e.traceGens,
		TraceEvents:   e.traceEvents,
	}
	if e.rstore != nil {
		ss := e.rstore.Stats()
		st.StoreHits, st.StoreMisses, st.StoreCorrupt = ss.Hits, ss.Misses, ss.Corrupt
		st.StoreRemoteHits, st.StoreRemoteMisses, st.StoreRemoteErrors = ss.RemoteHits, ss.RemoteMisses, ss.RemoteErrors
		st.StorePutErrors = ss.PutErrors
	}
	return st
}

// SetStore attaches a persistent result store: replays whose inputs
// match a stored entry are answered from disk, fresh replays are
// committed back. Results are bit-identical with or without a store
// (the key pins every replay input); a broken store degrades to
// cold-cache speed, never to wrong data.
func (e *Evaluator) SetStore(rs *ResultStore) {
	e.mu.Lock()
	e.rstore = rs
	e.mu.Unlock()
}

// resultStore returns the attached store, nil when none.
func (e *Evaluator) resultStore() *ResultStore {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rstore
}

// Runs returns the program's complete-run count, compiling the -O3
// probe on first use (deduplicated across a pool by the shared base).
// The batched sweep runner uses it to derive store keys without
// touching traces.
func (e *Evaluator) Runs(name string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, err := e.module(name)
	if err != nil {
		return 0, err
	}
	runs, _, _, err := e.runsFor(name, m)
	return runs, err
}

// countTraceGen records one performed trace generation. Called with e.mu
// held.
func (e *Evaluator) countTraceGen(tr *trace.Trace) {
	e.traceGens++
	e.traceEvents += int64(len(tr.Events))
}

// module returns the pristine IR of a program, building it on first use
// (through the shared base when pooled).
func (e *Evaluator) module(name string) (*ir.Module, error) {
	if m, ok := e.modules[name]; ok {
		return m, nil
	}
	var m *ir.Module
	var err error
	if e.base != nil {
		m, err = e.base.module(name)
	} else {
		m, err = prog.Build(name)
	}
	if err != nil {
		return nil, err
	}
	e.modules[name] = m
	return m, nil
}

// runsFor determines the per-program complete-run count from a probe of
// the -O3 binary, so every setting of the program does identical work.
// The probe compiles -O3 anyway, so on first computation the compiled
// binary and probe trace are returned for the caller to seed the trace
// cache with - the almost-certain next request, Trace(name, O3), then
// costs nothing instead of recompiling the probe's binary. Called with
// e.mu held.
func (e *Evaluator) runsFor(name string, m *ir.Module) (int, *codegen.Program, *trace.Trace, error) {
	if e.base != nil {
		// The base compiled the probe once for the whole pool and keeps
		// the binary, so every call returns it: any later -O3 trace
		// request regenerates from the binary instead of recompiling
		// (no probe trace - it is regenerated when needed).
		return e.baseRunsFor(name, m)
	}
	if r, ok := e.runs[name]; ok {
		return r, nil, nil, nil
	}
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		return 0, nil, nil, err
	}
	e.Compiles++
	e.passRuns += planSteps(&o3, m)
	probe := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})
	e.countTraceGen(probe)
	r := deriveRuns(probe, e.cfg)
	e.runs[name] = r
	e.perRuns[name] = probe.Insns()
	return r, p, probe, nil
}

// traceBytes approximates the resident size of a cached trace: the event
// stream dominates (16 bytes per padded Event) plus a small fixed cost for
// counters and the binary image.
func traceBytes(tr *trace.Trace) int64 {
	return int64(len(tr.Events))*16 + 4096
}

// baseRunsFor resolves the run count and -O3 binary through the shared
// base on every call (a brief mutex acquisition, noise next to the
// compile/replay work per cell): the binary must stay available so an
// -O3 trace request at any point regenerates instead of recompiling.
func (e *Evaluator) baseRunsFor(name string, m *ir.Module) (int, *codegen.Program, *trace.Trace, error) {
	r, p, err := e.base.runsFor(name, m, e.cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	e.runs[name] = r
	e.base.mu.Lock()
	e.perRuns[name] = e.base.probes[name].perRun
	e.base.mu.Unlock()
	return r, p, nil, nil
}

// insertTrace caches a compiled trace under key, evicting in LRU order
// (touchTrace refreshes entries on hit). With a CacheBudget the bound is
// approximate bytes (the newest entry is always kept); otherwise it is
// the fixed traceCacheSize entry count. Called with e.mu held.
func (e *Evaluator) insertTrace(key string, tr *trace.Trace, p *codegen.Program) {
	if _, ok := e.traces[key]; ok {
		return
	}
	e.traces[key] = &cachedTrace{tr: tr, prog: p}
	e.order = append(e.order, key)
	e.bytes += traceBytes(tr)
	evict := func() bool {
		if e.cfg.CacheBudget > 0 {
			return e.bytes > e.cfg.CacheBudget && len(e.order) > 1
		}
		return len(e.order) > traceCacheSize
	}
	for evict() {
		old := e.order[0]
		e.order = e.order[1:]
		e.bytes -= traceBytes(e.traces[old].tr)
		delete(e.traces, old)
	}
}

// touchTrace moves a hit key to the warm end of the LRU order, so a hot
// entry (typically the -O3 baseline every speedup divides by) survives an
// insert-heavy sweep that would evict it under insertion order. Called
// with e.mu held.
func (e *Evaluator) touchTrace(key string) {
	for i, k := range e.order {
		if k == key {
			copy(e.order[i:], e.order[i+1:])
			e.order[len(e.order)-1] = key
			return
		}
	}
}

// Trace returns the dynamic trace of the program compiled under c, cached.
func (e *Evaluator) Trace(name string, c *opt.Config) (*trace.Trace, *codegen.Program, error) {
	key := name + "/" + c.Key()
	e.mu.Lock()
	if ct, ok := e.traces[key]; ok {
		e.touchTrace(key)
		e.mu.Unlock()
		return ct.tr, ct.prog, nil
	}
	m, err := e.module(name)
	if err != nil {
		e.mu.Unlock()
		return nil, nil, err
	}
	runs, o3Prog, o3Probe, err := e.runsFor(name, m)
	if err != nil {
		e.mu.Unlock()
		return nil, nil, err
	}
	e.mu.Unlock()

	// Seed the cache from runsFor's -O3 probe compile, generating the
	// full-length trace outside the lock (the probe already is that
	// trace when the run count is 1). An -O3 request is then satisfied
	// without compiling again. Pooled evaluators get the compiled binary
	// from the shared base without a probe trace; for them only an
	// actual -O3 request seeds - most workers never serve the program's
	// -O3 cell, and an eager full-length trace would be wasted work.
	if o3Prog != nil {
		o3 := opt.O3()
		o3Key := name + "/" + o3.Key()
		if o3Probe != nil || key == o3Key {
			o3Trace := o3Probe
			if o3Trace == nil || runs != 1 {
				o3Trace = trace.Generate(o3Prog, trace.Config{Runs: runs, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})
			}
			e.mu.Lock()
			if o3Trace != o3Probe {
				e.countTraceGen(o3Trace)
			}
			e.insertTrace(o3Key, o3Trace, o3Prog)
			ct, ok := e.traces[key]
			e.mu.Unlock()
			if ok {
				return ct.tr, ct.prog, nil
			}
		}
	}

	// Compile and trace outside the lock (the expensive part).
	p, err := core.Compile(m, c)
	if err != nil {
		return nil, nil, err
	}
	tr := trace.Generate(p, trace.Config{Runs: runs, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})

	e.mu.Lock()
	e.Compiles++
	e.passRuns += planSteps(c, m)
	e.countTraceGen(tr)
	e.insertTrace(key, tr, p)
	e.mu.Unlock()
	return tr, p, nil
}

// planSteps is the pass-application count of a linear compile of c over
// m, the unit both Stats paths count in.
func planSteps(c *opt.Config, m *ir.Module) int64 {
	nonLib, lib := 0, 0
	for _, f := range m.Funcs {
		if f.Library {
			lib++
		} else {
			nonLib++
		}
	}
	plan := opt.PlanFor(c)
	return int64(plan.Steps(nonLib, lib))
}

// BatchBinary is one setting's slot in a CompileBatch result. Settings
// whose pipelines produced byte-identical binaries share a fingerprint:
// the first such slot has First pointing at itself; twins carry the
// owning slot's index, so consumers generate one trace (and one replay)
// per distinct binary. Err is the per-setting compile failure, nil
// otherwise.
type BatchBinary struct {
	Prog  *codegen.Program
	FP    codegen.Fingerprint
	First int
	Err   error
}

// TraceBatch compiles every setting of a sweep over one program through
// the prefix-memoised batch engine (core.CompileBatch) and fingerprints
// the binaries so byte-identical twins are visible to the caller. A
// non-nil top-level error (module build or -O3 probe failure) fails
// every setting alike. Traces are generated separately (GenerateTrace,
// typically lazily per distinct binary) so a caller serving only part
// of the sweep never holds more than its in-flight traces.
func (e *Evaluator) TraceBatch(name string, cfgs []*opt.Config) ([]BatchBinary, error) {
	e.mu.Lock()
	m, err := e.module(name)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	if _, _, _, err := e.runsFor(name, m); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.mu.Unlock()

	progs, errs, stats := core.CompileBatch(m, cfgs)
	out := make([]BatchBinary, len(cfgs))
	index := make(map[codegen.Fingerprint]int, len(cfgs))
	scratch := make([]byte, 0, 1<<16)
	compiled := 0
	for i := range cfgs {
		if errs[i] != nil {
			out[i] = BatchBinary{First: i, Err: errs[i]}
			continue
		}
		compiled++
		var fp codegen.Fingerprint
		fp, scratch = codegen.FingerprintInto(progs[i], scratch)
		if j, ok := index[fp]; ok {
			out[i] = BatchBinary{Prog: progs[i], FP: fp, First: j}
			continue
		}
		index[fp] = i
		out[i] = BatchBinary{Prog: progs[i], FP: fp, First: i}
	}

	e.mu.Lock()
	// Like the naive Trace path, Compiles counts successful per-setting
	// compilations only, so the two paths stay comparable.
	e.Compiles += compiled
	e.passRuns += stats.PassRuns
	e.passRunsSaved += stats.PassRunsSaved
	e.mu.Unlock()
	return out, nil
}

// GenerateTrace generates the trace of an already-compiled binary of the
// named program into a pooled buffer sized from the -O3 probe, so
// steady-state generation runs without append doublings in one
// allocation. The run count is established through the evaluator's
// probe path (deduplicated across a pool by the shared base), so every
// worker slot derives the identical trace. The caller owns the trace
// and must return it with trace.Put when done (it is never inserted
// into the evaluator's cache).
func (e *Evaluator) GenerateTrace(name string, p *codegen.Program) (*trace.Trace, error) {
	e.mu.Lock()
	m, err := e.module(name)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	runs, _, _, err := e.runsFor(name, m)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	perRun := e.perRuns[name]
	cfg := e.cfg
	e.mu.Unlock()
	if runs < 1 {
		runs = 1
	}
	capHint := runs*perRun + perRun/2 + 256
	if max := cfg.MaxInsns + 64; capHint > max {
		capHint = max
	}
	tr := trace.Get(capHint)
	trace.GenerateInto(tr, p, trace.Config{Runs: runs, MaxInsns: cfg.MaxInsns, Seed: cfg.Seed})
	e.mu.Lock()
	e.countTraceGen(tr)
	e.mu.Unlock()
	return tr, nil
}

// addTraceReuses records settings whose trace generation (and replay)
// was skipped because an earlier setting produced a byte-identical
// binary.
func (e *Evaluator) addTraceReuses(n int64) {
	e.mu.Lock()
	e.traceReuses += n
	e.mu.Unlock()
}

// SetSweepWorkers sets the worker budget each batched replay fans its
// per-geometry sweeps over: 0 (the default) uses GOMAXPROCS, so a
// standalone evaluator exploits the whole machine per SimulateBatch
// call; n >= 1 pins an explicit share, which worker pools use to divide
// the machine between program fan-out and sweep parallelism. Results
// are bit-identical at every setting.
func (e *Evaluator) SetSweepWorkers(n int) {
	e.mu.Lock()
	e.sweepWorkers = n
	e.mu.Unlock()
}

// SimulateBatch replays an already-generated trace on every architecture
// through the batched single-pass engine, returning one result per
// architecture in input order (bit-identical to SimulateTrace per
// architecture). The per-geometry sweeps inside the pass fan over the
// evaluator's sweep-worker budget (SetSweepWorkers).
func (e *Evaluator) SimulateBatch(tr *trace.Trace, archs []uarch.Config) []cpu.Result {
	e.mu.Lock()
	workers := e.sweepWorkers
	e.mu.Unlock()
	rs := cpu.SimulateBatchWith(tr, archs, workers)
	e.mu.Lock()
	e.Simulations += len(archs)
	e.mu.Unlock()
	return rs
}

// SimulateTrace replays an already-generated trace on an architecture.
func (e *Evaluator) SimulateTrace(tr *trace.Trace, a uarch.Config) cpu.Result {
	return e.simulate(tr, a)
}

// simulate replays a trace on an architecture, counting the simulation.
func (e *Evaluator) simulate(tr *trace.Trace, a uarch.Config) cpu.Result {
	r := cpu.Simulate(tr, a)
	e.mu.Lock()
	e.Simulations++
	e.mu.Unlock()
	return r
}

// Run simulates program name compiled under c on architecture a. With
// a result store attached and the trace not already resident, the
// replay is answered from disk when a matching entry exists - compile
// only, no trace generation, no simulation - which is what makes a
// store-backed prediction server's profile cache persistent across
// restarts.
func (e *Evaluator) Run(name string, c *opt.Config, a uarch.Config) (cpu.Result, error) {
	key := name + "/" + c.Key()
	e.mu.Lock()
	st := e.rstore
	_, resident := e.traces[key]
	e.mu.Unlock()
	if st == nil || resident {
		// No store, or the trace is already in memory: replaying the
		// resident trace is cheaper than a disk round-trip would save.
		tr, _, err := e.Trace(name, c)
		if err != nil {
			return cpu.Result{}, err
		}
		return e.simulate(tr, a), nil
	}

	// Store path: the compile (cheap, architecture-independent) yields
	// the binary fingerprint that addresses the stored replay.
	e.mu.Lock()
	m, err := e.module(name)
	if err != nil {
		e.mu.Unlock()
		return cpu.Result{}, err
	}
	runs, _, _, err := e.runsFor(name, m)
	cfg := e.cfg
	e.mu.Unlock()
	if err != nil {
		return cpu.Result{}, err
	}
	p, err := core.Compile(m, c)
	if err != nil {
		return cpu.Result{}, err
	}
	e.mu.Lock()
	e.Compiles++
	e.passRuns += planSteps(c, m)
	e.mu.Unlock()
	fp, _ := codegen.FingerprintInto(p, nil)
	archs := []uarch.Config{a}
	if rs, ok := st.Get(fp, runs, cfg, archs); ok {
		return rs[0], nil
	}
	tr := trace.Generate(p, trace.Config{Runs: runs, MaxInsns: cfg.MaxInsns, Seed: cfg.Seed})
	e.mu.Lock()
	e.countTraceGen(tr)
	e.insertTrace(key, tr, p)
	e.mu.Unlock()
	r := e.simulate(tr, a)
	st.Put(fp, runs, cfg, archs, []cpu.Result{r})
	return r, nil
}

// CyclesPerRun returns cycles normalised by complete program runs, the
// comparable work-time metric.
func (e *Evaluator) CyclesPerRun(name string, c *opt.Config, a uarch.Config) (float64, error) {
	tr, _, err := e.Trace(name, c)
	if err != nil {
		return 0, err
	}
	r := e.simulate(tr, a)
	runs := tr.Runs
	if runs < 1 {
		runs = 1
	}
	return float64(r.Cycles) / float64(runs), nil
}
