// Package dataset generates and stores the paper's training data: for a
// sample of programs, microarchitectures and optimisation settings, the
// speedup of every setting over -O3 plus the -O3 performance-counter
// feature vectors (Section 3.2).
//
// The expensive pipeline stage is compile+trace, which is independent of
// the microarchitecture: the Evaluator compiles once per (program,
// setting) and replays the trace across architectures, making the paper's
// 7-million-simulation protocol tractable.
package dataset

import (
	"sync"

	"portcc/internal/codegen"
	"portcc/internal/core"
	"portcc/internal/cpu"
	"portcc/internal/ir"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// EvalConfig fixes the workload-scaling parameters of an Evaluator.
type EvalConfig struct {
	// TargetInsns is the approximate dynamic trace length per simulation;
	// the run count per program is derived from it (>=1 complete runs).
	TargetInsns int
	// MaxInsns is the hard safety cap per trace.
	MaxInsns int
	// Seed drives trace generation (branch outcomes, addresses).
	Seed int64
}

// DefaultEvalConfig is used when fields are zero.
var DefaultEvalConfig = EvalConfig{TargetInsns: 30_000, MaxInsns: 400_000, Seed: 1}

func (c EvalConfig) withDefaults() EvalConfig {
	d := DefaultEvalConfig
	if c.TargetInsns > 0 {
		d.TargetInsns = c.TargetInsns
	}
	if c.MaxInsns > 0 {
		d.MaxInsns = c.MaxInsns
	}
	if c.Seed != 0 {
		d.Seed = c.Seed
	}
	return d
}

// Evaluator compiles programs under optimisation settings and simulates
// them on microarchitectures, caching compiled traces (which are
// microarchitecture-independent). Safe for concurrent use.
type Evaluator struct {
	cfg EvalConfig

	mu      sync.Mutex
	modules map[string]*ir.Module
	runs    map[string]int // complete runs per trace, fixed per program
	traces  map[string]*cachedTrace
	order   []string // LRU order of trace cache keys
	// Compiles and Simulations count work done (for reporting).
	Compiles    int
	Simulations int
}

type cachedTrace struct {
	tr   *trace.Trace
	prog *codegen.Program
}

// traceCacheSize bounds the trace cache; generation loops are ordered so a
// tiny cache suffices, keeping memory flat at paper scale.
const traceCacheSize = 4

// NewEvaluator builds an evaluator.
func NewEvaluator(cfg EvalConfig) *Evaluator {
	return &Evaluator{
		cfg:     cfg.withDefaults(),
		modules: map[string]*ir.Module{},
		runs:    map[string]int{},
		traces:  map[string]*cachedTrace{},
	}
}

// module returns the pristine IR of a program, building it on first use.
func (e *Evaluator) module(name string) (*ir.Module, error) {
	if m, ok := e.modules[name]; ok {
		return m, nil
	}
	m, err := prog.Build(name)
	if err != nil {
		return nil, err
	}
	e.modules[name] = m
	return m, nil
}

// runsFor determines the per-program complete-run count from a probe of
// the -O3 binary, so every setting of the program does identical work.
// The probe compiles -O3 anyway, so on first computation the compiled
// binary and probe trace are returned for the caller to seed the trace
// cache with - the almost-certain next request, Trace(name, O3), then
// costs nothing instead of recompiling the probe's binary. Called with
// e.mu held.
func (e *Evaluator) runsFor(name string, m *ir.Module) (int, *codegen.Program, *trace.Trace, error) {
	if r, ok := e.runs[name]; ok {
		return r, nil, nil, nil
	}
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		return 0, nil, nil, err
	}
	e.Compiles++
	probe := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})
	perRun := probe.Insns()
	if perRun < 1 {
		perRun = 1
	}
	r := e.cfg.TargetInsns / perRun
	if r < 1 {
		r = 1
	}
	if r > 8 {
		r = 8
	}
	e.runs[name] = r
	return r, p, probe, nil
}

// insertTrace caches a compiled trace under key, evicting in FIFO order.
// Called with e.mu held.
func (e *Evaluator) insertTrace(key string, tr *trace.Trace, p *codegen.Program) {
	if _, ok := e.traces[key]; ok {
		return
	}
	e.traces[key] = &cachedTrace{tr: tr, prog: p}
	e.order = append(e.order, key)
	for len(e.order) > traceCacheSize {
		old := e.order[0]
		e.order = e.order[1:]
		delete(e.traces, old)
	}
}

// Trace returns the dynamic trace of the program compiled under c, cached.
func (e *Evaluator) Trace(name string, c *opt.Config) (*trace.Trace, *codegen.Program, error) {
	key := name + "/" + c.Key()
	e.mu.Lock()
	if ct, ok := e.traces[key]; ok {
		e.mu.Unlock()
		return ct.tr, ct.prog, nil
	}
	m, err := e.module(name)
	if err != nil {
		e.mu.Unlock()
		return nil, nil, err
	}
	runs, o3Prog, o3Probe, err := e.runsFor(name, m)
	if err != nil {
		e.mu.Unlock()
		return nil, nil, err
	}
	e.mu.Unlock()

	// Seed the cache from runsFor's -O3 probe compile, generating the
	// full-length trace outside the lock (the probe already is that
	// trace when the run count is 1). An -O3 request is then satisfied
	// without compiling again.
	if o3Prog != nil {
		o3Trace := o3Probe
		if runs != 1 {
			o3Trace = trace.Generate(o3Prog, trace.Config{Runs: runs, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})
		}
		o3 := opt.O3()
		e.mu.Lock()
		e.insertTrace(name+"/"+o3.Key(), o3Trace, o3Prog)
		ct, ok := e.traces[key]
		e.mu.Unlock()
		if ok {
			return ct.tr, ct.prog, nil
		}
	}

	// Compile and trace outside the lock (the expensive part).
	p, err := core.Compile(m, c)
	if err != nil {
		return nil, nil, err
	}
	tr := trace.Generate(p, trace.Config{Runs: runs, MaxInsns: e.cfg.MaxInsns, Seed: e.cfg.Seed})

	e.mu.Lock()
	e.Compiles++
	e.insertTrace(key, tr, p)
	e.mu.Unlock()
	return tr, p, nil
}

// SimulateBatch replays an already-generated trace on every architecture
// through the batched single-pass engine, returning one result per
// architecture in input order (bit-identical to SimulateTrace per
// architecture).
func (e *Evaluator) SimulateBatch(tr *trace.Trace, archs []uarch.Config) []cpu.Result {
	rs := cpu.SimulateBatch(tr, archs)
	e.mu.Lock()
	e.Simulations += len(archs)
	e.mu.Unlock()
	return rs
}

// SimulateTrace replays an already-generated trace on an architecture.
func (e *Evaluator) SimulateTrace(tr *trace.Trace, a uarch.Config) cpu.Result {
	return e.simulate(tr, a)
}

// simulate replays a trace on an architecture, counting the simulation.
func (e *Evaluator) simulate(tr *trace.Trace, a uarch.Config) cpu.Result {
	r := cpu.Simulate(tr, a)
	e.mu.Lock()
	e.Simulations++
	e.mu.Unlock()
	return r
}

// Run simulates program name compiled under c on architecture a.
func (e *Evaluator) Run(name string, c *opt.Config, a uarch.Config) (cpu.Result, error) {
	tr, _, err := e.Trace(name, c)
	if err != nil {
		return cpu.Result{}, err
	}
	return e.simulate(tr, a), nil
}

// CyclesPerRun returns cycles normalised by complete program runs, the
// comparable work-time metric.
func (e *Evaluator) CyclesPerRun(name string, c *opt.Config, a uarch.Config) (float64, error) {
	tr, _, err := e.Trace(name, c)
	if err != nil {
		return 0, err
	}
	r := e.simulate(tr, a)
	runs := tr.Runs
	if runs < 1 {
		runs = 1
	}
	return float64(r.Cycles) / float64(runs), nil
}
