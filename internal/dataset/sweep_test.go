package dataset

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"portcc/internal/opt"
	"portcc/internal/uarch"
)

// tinyRequest samples a small but real grid: multiple windows' worth of
// settings, -O3 included, two programs.
func tinyRequest(t *testing.T, opts int) ExploreRequest {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	req := ExploreRequest{
		Programs: []string{"crc", "qsort"},
		Archs:    (uarch.Space{}).SampleN(rng, 3),
		Opts:     []opt.Config{opt.O3()},
		Eval:     EvalConfig{TargetInsns: 4_000, Seed: 1},
	}
	optRng := rand.New(rand.NewSource(22))
	for len(req.Opts) < opts {
		req.Opts = append(req.Opts, opt.Random(optRng))
	}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	return req
}

// collect folds an exploration stream into a deterministic map keyed by
// cell coordinates.
func collect(t *testing.T, req ExploreRequest, o ExploreOptions) map[[3]int]ExploreResult {
	t.Helper()
	out := map[[3]int]ExploreResult{}
	for res, err := range Explore(context.Background(), req, o) {
		if err != nil {
			t.Fatal(err)
		}
		out[[3]int{res.ProgIndex, res.OptIndex, res.ArchStart}] = res
	}
	return out
}

// TestBatchedExploreMatchesNaive is the end-to-end equivalence property:
// the batched sweep path must yield exactly the cells the naive per-cell
// path yields, with identical payloads, for both worker counts and for a
// sub-window arch batching.
func TestBatchedExploreMatchesNaive(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		archB   int
	}{
		{"serial", 1, 0},
		{"pooled", 4, 0},
		{"archbatched", 3, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := tinyRequest(t, 21)
			req.ArchBatch = tc.archB
			naive := collect(t, req, ExploreOptions{Workers: tc.workers, Naive: true})
			batched := collect(t, req, ExploreOptions{Workers: tc.workers})
			if len(naive) != len(batched) {
				t.Fatalf("cell counts differ: naive %d, batched %d", len(naive), len(batched))
			}
			for k, nr := range naive {
				br, ok := batched[k]
				if !ok {
					t.Fatalf("cell %v missing from batched stream", k)
				}
				if !reflect.DeepEqual(nr, br) {
					t.Fatalf("cell %v differs:\nnaive   %+v\nbatched %+v", k, nr, br)
				}
			}
		})
	}
}

// TestBatchedDatasetBitIdentical generates a dataset through both paths
// and byte-compares the saved files - the same check CI performs with
// real binaries through the sharded path.
func TestBatchedDatasetBitIdentical(t *testing.T) {
	cfg := GenConfig{
		Programs: []string{"crc", "dijkstra", "qsort"},
		NumArchs: 3,
		NumOpts:  17,
		Seed:     5,
		Eval:     EvalConfig{TargetInsns: 4_000, Seed: 1},
	}
	dir := t.TempDir()
	paths := map[bool]string{}
	for _, naive := range []bool{false, true} {
		ds, err := GenerateWith(context.Background(), cfg, ExploreOptions{Workers: 2, Naive: naive})
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, map[bool]string{false: "batched.gob", true: "naive.gob"}[naive])
		if err := ds.Save(p); err != nil {
			t.Fatal(err)
		}
		paths[naive] = p
	}
	a, err := os.ReadFile(paths[false])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[true])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("batched-path dataset differs from naive-path dataset")
	}
}

// TestSweepSavesPassRunsAndTraces asserts the batched path's work
// counters: the prefix trie must save pass executions, and twin binaries
// must save trace generations; the counters make both observable without
// a profiler.
func TestSweepSavesPassRunsAndTraces(t *testing.T) {
	req := tinyRequest(t, 33)
	req.Programs = []string{"crc"}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(req.Eval)
	sw := newSweepState(&req, 1)
	for _, c := range req.cells() {
		if _, err := runCellBatched(ev, sw, c); err != nil {
			t.Fatal(err)
		}
	}
	st := ev.Stats()
	if st.PassRunsSaved <= 0 {
		t.Errorf("PassRunsSaved = %d, want > 0 over %d settings", st.PassRunsSaved, len(req.Opts))
	}
	if st.PassRuns <= 0 {
		t.Errorf("PassRuns = %d, want > 0", st.PassRuns)
	}
	if st.Compiles != len(req.Opts)+1 { // settings + the -O3 probe
		t.Errorf("Compiles = %d, want %d", st.Compiles, len(req.Opts)+1)
	}
	if st.TraceReuses <= 0 {
		t.Errorf("TraceReuses = %d, want > 0 (crc sweeps share many binaries)", st.TraceReuses)
	}
	// Every window and program state must have been released.
	if len(sw.progs) != 0 {
		t.Errorf("%d program sweep states leaked", len(sw.progs))
	}
}

// TestPartialGridRunnerBoundedAndCorrect models a worker daemon that is
// handed only part of the grid (interleaved chunks, as sched.Remote
// deals them): results must still match the naive path cell for cell,
// and the sweep state must not retain unbounded windows or traces for
// the cells that never arrive - the memory-pinning regression a shard
// serving half a paper-scale grid would otherwise hit.
func TestPartialGridRunnerBoundedAndCorrect(t *testing.T) {
	req := tinyRequest(t, 40)
	cells := req.cells()

	naiveReq := req
	naiveReq.Naive = true
	naiveRun := naiveReq.Runner(1)
	run, ev := req.InstrumentedRunner()

	sum := 0
	for i, c := range cells {
		// This "shard" serves chunks 0-7, 16-23, 32-39, ... of the grid.
		if (i/8)%2 == 1 {
			continue
		}
		got, err := run(0, i)
		if err != nil {
			t.Fatal(err)
		}
		want, err := naiveRun(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cell %d (%+v): batched partial-grid result differs from naive", i, c)
		}
		sum++
	}
	if sum == 0 {
		t.Fatal("no cells served")
	}
	// The runner never saw the other half of the grid; retention must
	// still be bounded: no trace slots left pinned (every generated
	// trace was released after its replay) and at most the FIFO cap of
	// compiled windows alive.
	st := ev.Stats()
	if st.TraceReuses <= 0 {
		t.Errorf("TraceReuses = %d, want > 0", st.TraceReuses)
	}
	// Reach into the sweep state through a fresh runner to assert the
	// invariants structurally instead: build one directly.
	sw := newSweepState(&req, 1)
	for i := range cells {
		if (i/8)%2 == 1 {
			continue
		}
		if _, err := runCellBatched(ev, sw, cells[i]); err != nil {
			t.Fatal(err)
		}
	}
	windows, traces := 0, 0
	sw.mu.Lock()
	for _, ps := range sw.progs {
		windows += len(ps.windows)
		traces += len(ps.traces)
	}
	if built := len(sw.built); built > maxBuiltWindows {
		t.Errorf("%d built windows retained, cap is %d", built, maxBuiltWindows)
	}
	sw.mu.Unlock()
	if windows > maxBuiltWindows {
		t.Errorf("%d windows retained after a partial run, cap is %d", windows, maxBuiltWindows)
	}
	if traces != 0 {
		t.Errorf("%d trace slots still pinned after a partial run, want 0", traces)
	}

	// With sub-grid arch batches a partial runner can be left holding
	// ranges that never arrive; generated traces must still be bounded
	// (idle ones evict and regenerate on demand).
	abReq := req
	abReq.ArchBatch = 1
	abCells := abReq.cells()
	abSw := newSweepState(&abReq, 1)
	abEv := NewEvaluator(abReq.Eval)
	for i := range abCells {
		if i%3 == 0 { // serve every third cell: most binaries keep unserved ranges
			continue
		}
		if _, err := runCellBatched(abEv, abSw, abCells[i]); err != nil {
			t.Fatal(err)
		}
	}
	liveTraces := 0
	abSw.mu.Lock()
	for _, ps := range abSw.progs {
		for _, sl := range ps.traces {
			if sl.tr != nil {
				liveTraces++
			}
		}
	}
	abSw.mu.Unlock()
	if liveTraces > maxLiveTraces+1 {
		t.Errorf("%d live traces retained by a partial arch-batched run, cap is %d", liveTraces, maxLiveTraces)
	}
}

// TestSweepWindowSize pins the window heuristic's bounds.
func TestSweepWindowSize(t *testing.T) {
	for _, tc := range []struct{ opts, slots, want int }{
		{61, 1, 61},
		{61, 8, 8},
		{1000, 1, 64},
		{1000, 4, 64},
		{5, 1, 5},
		{5, 8, 5},
	} {
		if got := sweepWindowSize(tc.opts, tc.slots); got != tc.want {
			t.Errorf("sweepWindowSize(%d, %d) = %d, want %d", tc.opts, tc.slots, got, tc.want)
		}
	}
}

// TestExploreResultsGobSafe ensures shared result slices survive gob
// transport (the shard path encodes each cell independently, so sharing
// between twin cells on the worker must be invisible on the wire).
func TestExploreResultsGobSafe(t *testing.T) {
	req := tinyRequest(t, 9)
	for res, err := range Explore(context.Background(), req, ExploreOptions{Workers: 1}) {
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(res); err != nil {
			t.Fatal(err)
		}
		var back ExploreResult
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, back) {
			t.Fatal("gob round-trip changed a batched result")
		}
	}
}
