package dataset

import (
	"context"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"portcc/internal/cpu"
	"portcc/internal/pcerr"

	"portcc/internal/opt"
	"portcc/internal/uarch"
)

func tinyConfig() GenConfig {
	return GenConfig{
		Programs: []string{"crc", "bitcnts", "qsort"},
		NumArchs: 3,
		NumOpts:  10,
		Seed:     21,
		Eval:     EvalConfig{TargetInsns: 6000, Seed: 1},
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	nP, nA, nO := ds.Dims()
	if nP != 3 || nA != 3 || nO != 11 {
		t.Fatalf("dims %d/%d/%d, want 3/3/11 (O3 + 10 random)", nP, nA, nO)
	}
	o3 := opt.O3()
	if ds.Opts[0] != o3 {
		t.Error("Opts[0] must be the -O3 baseline")
	}
	for p := 0; p < nP; p++ {
		for a := 0; a < nA; a++ {
			if ds.Speedups[p][a][0] != 1 {
				t.Fatal("baseline speedup must be exactly 1")
			}
			if len(ds.Features[p][a]) != 19 {
				t.Fatal("feature vectors must be 19-dimensional")
			}
			if ds.BaselineCycles[p][a] <= 0 {
				t.Fatal("baseline cycles must be positive")
			}
			for _, s := range ds.Speedups[p][a] {
				if s <= 0 || s > 20 {
					t.Fatalf("implausible speedup %f", s)
				}
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for p := range a.Speedups {
		for ar := range a.Speedups[p] {
			for o := range a.Speedups[p][ar] {
				if a.Speedups[p][ar][o] != b.Speedups[p][ar][o] {
					t.Fatalf("speedup (%d,%d,%d) differs across runs", p, ar, o)
				}
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, err := Generate(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	nP, nA, nO := back.Dims()
	if nP != 3 || nA != 3 || nO != 11 {
		t.Fatal("round-trip changed dimensions")
	}
	if back.Speedups[1][2][3] != ds.Speedups[1][2][3] {
		t.Fatal("round-trip changed data")
	}
	if back.Programs[0] != ds.Programs[0] {
		t.Fatal("round-trip changed program list")
	}
}

func TestTrainingPairs(t *testing.T) {
	ds, err := Generate(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ds.TrainingPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 9 {
		t.Fatalf("%d training pairs, want 3x3", len(pairs))
	}
	for _, p := range pairs {
		sum := 0.0
		for j := 0; j < 2; j++ {
			sum += p.G.Theta[0][j]
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatal("fitted distribution not normalised")
		}
	}
}

func TestBestSpeedup(t *testing.T) {
	ds, err := Generate(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	best, o := ds.BestSpeedup(0, 0)
	if best < 1 {
		t.Error("best must be at least the baseline (O3 is in the sample)")
	}
	if o < 0 || o >= len(ds.Opts) {
		t.Error("best index out of range")
	}
}

func TestEvaluatorCaching(t *testing.T) {
	ev := NewEvaluator(EvalConfig{TargetInsns: 5000})
	o3 := opt.O3()
	if _, err := ev.Run("crc", &o3, uarch.XScale()); err != nil {
		t.Fatal(err)
	}
	c1 := ev.Compiles
	if _, err := ev.Run("crc", &o3, uarch.XScale()); err != nil {
		t.Fatal(err)
	}
	if ev.Compiles != c1 {
		t.Error("second run recompiled despite the trace cache")
	}
	if ev.Simulations != 2 {
		t.Errorf("%d simulations recorded, want 2", ev.Simulations)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(context.Background(), GenConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Generate(context.Background(), GenConfig{Programs: []string{"nope"}, NumArchs: 1, NumOpts: 1}); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestGenerateTypedErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Generate(ctx, GenConfig{}); !errors.Is(err, pcerr.ErrInvalidConfig) {
		t.Errorf("empty config: got %v, want ErrInvalidConfig", err)
	}
	if _, err := Generate(ctx, GenConfig{Programs: []string{"nope"}, NumArchs: 1, NumOpts: 1}); !errors.Is(err, pcerr.ErrUnknownProgram) {
		t.Errorf("unknown program: got %v, want ErrUnknownProgram", err)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	dir := t.TempDir()

	// A pre-versioning file: a bare gob-encoded Dataset with no header.
	legacy := filepath.Join(dir, "legacy.gob")
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(&Dataset{Programs: []string{"crc"}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(legacy); !errors.Is(err, pcerr.ErrDatasetVersion) {
		t.Errorf("legacy file: got %v, want ErrDatasetVersion", err)
	}

	// A future-versioned file: right magic, wrong version.
	future := filepath.Join(dir, "future.gob")
	f, err = os.Create(future)
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: FormatVersion + 1}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(future); !errors.Is(err, pcerr.ErrDatasetVersion) {
		t.Errorf("future file: got %v, want ErrDatasetVersion", err)
	}

	// Garbage is a version problem too, not a gob panic.
	garbage := filepath.Join(dir, "garbage.gob")
	if err := os.WriteFile(garbage, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(garbage); !errors.Is(err, pcerr.ErrDatasetVersion) {
		t.Errorf("garbage file: got %v, want ErrDatasetVersion", err)
	}
}

func TestCacheBudgetEviction(t *testing.T) {
	// A budget of one byte keeps only the newest trace: every distinct
	// request recompiles, but requests never fail.
	ev := NewEvaluator(EvalConfig{TargetInsns: 4000, CacheBudget: 1})
	o3 := opt.O3()
	tuned := opt.O3()
	tuned.Flags[0] = !tuned.Flags[0]
	for _, c := range []*opt.Config{&o3, &tuned, &o3} {
		if _, err := ev.Run("crc", c, uarch.XScale()); err != nil {
			t.Fatal(err)
		}
	}
	if len(ev.traces) != 1 {
		t.Errorf("%d traces cached under a 1-byte budget, want 1", len(ev.traces))
	}
	// An ample budget retains everything.
	ev = NewEvaluator(EvalConfig{TargetInsns: 4000, CacheBudget: 64 << 20})
	for _, c := range []*opt.Config{&o3, &tuned} {
		if _, err := ev.Run("crc", c, uarch.XScale()); err != nil {
			t.Fatal(err)
		}
	}
	if len(ev.traces) != 2 {
		t.Errorf("%d traces cached under a 64MB budget, want 2", len(ev.traces))
	}
}

func TestSharedBaseDedupesProbes(t *testing.T) {
	// However many pool workers touch a program, its module is built and
	// its -O3 probe compiled exactly once - and results stay identical
	// to a standalone evaluator's.
	base := NewSharedBase()
	o3 := opt.O3()
	tuned := opt.O3()
	tuned.Flags[0] = !tuned.Flags[0]
	var pooled [3]cpu.Result
	for i := range pooled {
		ev := NewEvaluatorWith(EvalConfig{TargetInsns: 4000}, base)
		r, err := ev.Run("crc", &o3, uarch.XScale())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Run("crc", &tuned, uarch.XScale()); err != nil {
			t.Fatal(err)
		}
		pooled[i] = r
	}
	if n := base.ProbeCompiles(); n != 1 {
		t.Errorf("%d probe compiles across 3 pooled evaluators, want 1", n)
	}
	standalone := NewEvaluator(EvalConfig{TargetInsns: 4000})
	want, err := standalone.Run("crc", &o3, uarch.XScale())
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range pooled {
		if got != want {
			t.Errorf("pooled evaluator %d result differs from standalone", i)
		}
	}
}
