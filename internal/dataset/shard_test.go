package dataset

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"portcc/internal/faultnet"
	"portcc/internal/pcerr"
	"portcc/internal/sched"
)

// shardConfig is the grid the distributed tests run: small enough for
// sub-second shard runs, big enough (14 cells against the remote
// executor's chunk of 8) that two shards both hold work mid-run.
func shardConfig() GenConfig {
	return GenConfig{
		Programs: []string{"crc", "bitcnts"},
		NumArchs: 2,
		NumOpts:  6,
		Seed:     21,
		Eval:     EvalConfig{TargetInsns: 4000, Seed: 1},
	}
}

// startShard runs an in-process exploration worker on a loopback
// listener, exactly as cmd/portccd would. kill hard-stops it (listener
// closed, connections killed) and waits for the serve loop to exit;
// it is idempotent and registered as cleanup.
func startShard(t *testing.T, cfg sched.ServeConfig) (addr string, kill func()) {
	return startShardWith(t, cfg, nil)
}

// startShardWith is startShard with a fault plan applied to the shard's
// accepted connections (nil = fault-free).
func startShardWith(t *testing.T, cfg sched.ServeConfig, plan faultnet.Plan) (addr string, kill func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		var serveLn net.Listener = ln
		if plan != nil {
			serveLn = faultnet.Wrap(ln, plan)
		}
		sched.Serve(ctx, serveLn, cfg)
	}()
	var once sync.Once
	kill = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(kill)
	return ln.Addr().String(), kill
}

// gobBytes serialises a dataset the way Save does, for bit-for-bit
// comparison.
func gobBytes(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedGenerateMatchesLocal is the acceptance property: a
// coordinator merging result streams from two TCP worker shards must
// fold into a dataset bit-identical to the single-process run.
func TestShardedGenerateMatchesLocal(t *testing.T) {
	cfg := shardConfig()
	local, err := GenerateWith(context.Background(), cfg, ExploreOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := startShard(t, ServeConfig(2, 100*time.Millisecond))
	a2, _ := startShard(t, ServeConfig(2, 100*time.Millisecond))
	sharded, err := GenerateWith(context.Background(), cfg, ExploreOptions{Shards: []string{a1, a2}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, sharded) {
		t.Fatal("sharded dataset differs from local run")
	}
	if !bytes.Equal(gobBytes(t, local), gobBytes(t, sharded)) {
		t.Fatal("sharded dataset not bit-identical to local run")
	}
}

// TestShardDeathRequeuesOntoSurvivor kills one of two shards as soon as
// the first cell completes: its unfinished cells must requeue onto the
// survivor, the run must finish without error, and the merged dataset
// must still be bit-identical to a local run.
func TestShardDeathRequeuesOntoSurvivor(t *testing.T) {
	cfg := shardConfig()
	local, err := GenerateWith(context.Background(), cfg, ExploreOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := startShard(t, ServeConfig(2, 100*time.Millisecond))
	a2, kill2 := startShard(t, ServeConfig(2, 100*time.Millisecond))
	var once sync.Once
	sharded, err := GenerateWith(context.Background(), cfg, ExploreOptions{
		Shards: []string{a1, a2},
		Progress: func(done, total int) {
			// Both shards hold an assignment here (14 cells, chunk 8):
			// the kill loses in-flight work, not idle capacity.
			once.Do(kill2)
		},
	})
	if err != nil {
		t.Fatalf("generation with a mid-run shard death: %v", err)
	}
	if !bytes.Equal(gobBytes(t, local), gobBytes(t, sharded)) {
		t.Fatal("dataset after shard death not bit-identical to local run")
	}
}

// TestShardedGenerateBitIdenticalUnderFaults is the self-healing
// acceptance property: both shards' first connections are cut mid-run by
// an injected fault, the coordinator redials them with backoff, the
// stranded cells requeue, and the merged dataset is still bit-identical
// to the single-process run - the fault schedule leaves no trace in the
// output.
func TestShardedGenerateBitIdenticalUnderFaults(t *testing.T) {
	cfg := shardConfig()
	local, err := GenerateWith(context.Background(), cfg, ExploreOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Connection 0 on each shard survives the handshake and job exchange,
	// then dies partway through streaming results; every redial is clean.
	cut := func(conn int) faultnet.Fault {
		if conn == 0 {
			return faultnet.Fault{CloseAfterReads: 8}
		}
		return faultnet.Fault{}
	}
	a1, _ := startShardWith(t, ServeConfig(2, 50*time.Millisecond), cut)
	a2, _ := startShardWith(t, ServeConfig(2, 50*time.Millisecond), cut)
	sharded, err := GenerateWith(context.Background(), cfg, ExploreOptions{
		Shards: []string{a1, a2},
		Retry:  sched.RetryPolicy{MaxAttempts: 10, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, Seed: 7},
	})
	if err != nil {
		t.Fatalf("generation with faulted shard connections: %v", err)
	}
	if !bytes.Equal(gobBytes(t, local), gobBytes(t, sharded)) {
		t.Fatal("dataset after connection faults not bit-identical to local run")
	}
}

// TestShardFormatMismatchIsTyped: a worker built against another dataset
// schema version is refused during the handshake; with no other shards
// to requeue onto, the run surfaces both sentinels.
func TestShardFormatMismatchIsTyped(t *testing.T) {
	scfg := ServeConfig(1, 100*time.Millisecond)
	scfg.Format = FormatVersion + 1
	addr, _ := startShard(t, scfg)
	var terminal error
	for _, err := range Explore(context.Background(), mustRequest(t), ExploreOptions{Shards: []string{addr}}) {
		terminal = err
	}
	if !errors.Is(terminal, pcerr.ErrDatasetVersion) {
		t.Errorf("got %v, want ErrDatasetVersion", terminal)
	}
	if !errors.Is(terminal, pcerr.ErrShardFailure) {
		t.Errorf("got %v, want ErrShardFailure wrap", terminal)
	}
}

// TestAllShardsUnreachableSurfacesShardFailure: with every address dead
// there is nowhere to requeue, so the typed shard-failure error surfaces
// (a live run would have retried elsewhere first).
func TestAllShardsUnreachableSurfacesShardFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here any more
	var terminal error
	yields := 0
	for _, err := range Explore(context.Background(), mustRequest(t), ExploreOptions{Shards: []string{addr, addr}}) {
		yields++
		terminal = err
	}
	if yields != 1 || !errors.Is(terminal, pcerr.ErrShardFailure) {
		t.Errorf("got %d yields, terminal %v; want 1 yield wrapping ErrShardFailure", yields, terminal)
	}
}

// TestShardedCancelDrainsWithoutLeak cancels a sharded exploration after
// the first result: the terminal yield must carry partial progress
// wrapping context.Canceled, and no coordinator goroutine may outlive
// the iterator.
func TestShardedCancelDrainsWithoutLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	a1, kill1 := startShard(t, ServeConfig(2, 100*time.Millisecond))
	a2, kill2 := startShard(t, ServeConfig(2, 100*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := 0
	var terminal error
	for _, err := range Explore(ctx, mustRequest(t), ExploreOptions{Shards: []string{a1, a2}}) {
		if err != nil {
			terminal = err
			continue
		}
		results++
		cancel()
	}
	if results == 0 {
		t.Error("no partial results before cancellation")
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Fatalf("terminal yield %v, want context.Canceled", terminal)
	}
	var pe *pcerr.PartialError
	if !errors.As(terminal, &pe) || pe.Total == 0 || pe.Done >= pe.Total {
		t.Errorf("terminal yield %v lacks plausible partial progress", terminal)
	}
	// With the shard serve loops stopped, anything still running is a
	// leaked coordinator goroutine (shard connections, executor, drain).
	kill1()
	kill2()
	waitGoroutines(t, base)
}

// waitGoroutines polls until the goroutine count drops back to base,
// failing the test after the deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines still running, started with %d: coordinator leaked\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustRequest(t *testing.T) ExploreRequest {
	t.Helper()
	req, err := shardConfig().Request()
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestValidateRejectsDuplicatePrograms: duplicates would double-count
// cells and corrupt the per-program indexing of every stream consumer.
func TestValidateRejectsDuplicatePrograms(t *testing.T) {
	req := mustRequest(t)
	req.Programs = append(req.Programs, req.Programs[0])
	if err := req.Validate(); !errors.Is(err, pcerr.ErrInvalidConfig) {
		t.Errorf("duplicate program: got %v, want ErrInvalidConfig", err)
	}
	yields := 0
	var terminal error
	for _, err := range Explore(context.Background(), req, ExploreOptions{}) {
		yields++
		terminal = err
	}
	if yields != 1 || !errors.Is(terminal, pcerr.ErrInvalidConfig) {
		t.Errorf("explore with duplicate program: %d yields, terminal %v; want 1 typed yield", yields, terminal)
	}
}
