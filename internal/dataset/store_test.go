package dataset

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"portcc/internal/faultfs"
	"portcc/internal/pcerr"
	"portcc/internal/store"
)

// storeConfig is the small grid every store test generates: big enough
// to exercise windows, twins and multiple programs, small enough to run
// in seconds.
func storeConfig() GenConfig {
	return GenConfig{
		Programs: []string{"crc", "qsort"},
		NumArchs: 2,
		NumOpts:  8,
		Seed:     11,
		Eval:     EvalConfig{TargetInsns: 4_000, Seed: 1},
	}
}

// generateBytes runs one generation and returns the saved dataset's
// bytes - the byte-identity oracle every store test compares against.
func generateBytes(t *testing.T, o ExploreOptions) []byte {
	t.Helper()
	ds, err := GenerateWith(context.Background(), storeConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "ds.gob")
	if err := ds.Save(p); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// openStore opens a ResultStore with test cleanup attached.
func openStore(t *testing.T, dir string) *ResultStore {
	t.Helper()
	rs, err := OpenResultStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs
}

// TestStoreBackedGenerationByteIdentical is the headline contract: a
// cold store-backed run and a warm rerun both produce byte-identical
// datasets to a storeless run, and the warm run answers every replay
// from disk.
func TestStoreBackedGenerationByteIdentical(t *testing.T) {
	ref := generateBytes(t, ExploreOptions{Workers: 2})
	dir := t.TempDir()

	cold := openStore(t, dir)
	if got := generateBytes(t, ExploreOptions{Workers: 2, Store: cold}); !bytes.Equal(got, ref) {
		t.Fatal("cold store-backed dataset differs from storeless dataset")
	}
	cs := cold.Stats()
	if cs.Puts == 0 || cs.Misses == 0 {
		t.Fatalf("cold run committed nothing: %+v", cs)
	}
	if cs.Hits != 0 {
		t.Fatalf("cold run hit a fresh store: %+v", cs)
	}
	cold.Close()

	warm := openStore(t, dir)
	if got := generateBytes(t, ExploreOptions{Workers: 2, Store: warm}); !bytes.Equal(got, ref) {
		t.Fatal("warm store-backed dataset differs from storeless dataset")
	}
	ws := warm.Stats()
	if ws.Hits == 0 || ws.Misses != 0 {
		t.Fatalf("warm run was not fully served from disk: %+v", ws)
	}
}

// TestResumeAfterCancelByteIdentical kills a store-backed generation
// mid-flight (context cancellation - the in-process stand-in for
// kill -9, which CI exercises with a real SIGKILL) and restarts with
// the same store: the resumed run completes byte-identical and reuses
// the first run's committed cells.
func TestResumeAfterCancelByteIdentical(t *testing.T) {
	ref := generateBytes(t, ExploreOptions{Workers: 1})
	dir := t.TempDir()

	first := openStore(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := GenerateWith(ctx, storeConfig(), ExploreOptions{
		Workers: 1,
		Store:   first,
		Progress: func(done, total int) {
			if done == total/3 {
				cancel()
			}
		},
	})
	var pe *pcerr.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("cancelled run returned %v, want PartialError", err)
	}
	if s := first.Stats(); s.Puts == 0 {
		t.Fatalf("interrupted run committed nothing: %+v", s)
	}
	first.Close()

	resumed := openStore(t, dir)
	if got := generateBytes(t, ExploreOptions{Workers: 1, Store: resumed}); !bytes.Equal(got, ref) {
		t.Fatal("resumed dataset differs from cold dataset")
	}
	if s := resumed.Stats(); s.Hits == 0 {
		t.Fatalf("resumed run reused nothing: %+v", s)
	}
}

// TestCorruptStoreRecomputesByteIdentical bit-flips every committed
// entry between runs: the rerun must quarantine them all, recompute,
// and still produce the byte-identical dataset - corruption can cost
// speed, never correctness.
func TestCorruptStoreRecomputesByteIdentical(t *testing.T) {
	ref := generateBytes(t, ExploreOptions{Workers: 2})
	dir := t.TempDir()

	cold := openStore(t, dir)
	generateBytes(t, ExploreOptions{Workers: 2, Store: cold})
	cold.Close()

	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".ent") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		flipped++
	}
	if flipped == 0 {
		t.Fatal("cold run left no entry files to corrupt")
	}

	warm := openStore(t, dir)
	if got := generateBytes(t, ExploreOptions{Workers: 2, Store: warm}); !bytes.Equal(got, ref) {
		t.Fatal("dataset over a corrupted store differs from reference")
	}
	s := warm.Stats()
	if s.Corrupt != int64(flipped) {
		t.Fatalf("quarantined %d entries, flipped %d (%+v)", s.Corrupt, flipped, s)
	}
	if s.Hits != 0 {
		t.Fatalf("a flipped entry was served: %+v", s)
	}
	if qs, err := os.ReadDir(filepath.Join(dir, "quarantine")); err != nil || len(qs) != flipped {
		t.Fatalf("quarantine holds %d files, want %d (err %v)", len(qs), flipped, err)
	}
}

// TestChaosMatrix drives store-backed generation under seeded faultfs
// schedules - torn writes, ENOSPC, EIO, failed renames, crash points -
// and proves the run's only possible degradation is speed: every
// schedule yields the byte-identical dataset, and a clean reopen of
// whatever the faults left on disk serves only valid entries.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix in -short mode")
	}
	ref := generateBytes(t, ExploreOptions{Workers: 2})
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.New(faultfs.OS(), faultfs.Seeded(seed, 6))
			rs, err := OpenResultStoreFS(dir, 0, inj)
			opts := ExploreOptions{Workers: 2}
			if err == nil {
				// A store that opened must absorb every later fault.
				opts.Store = rs
				defer rs.Close()
			}
			// An Open refused by the faulty disk degrades to storeless
			// generation - the caller's contract, exercised here too.
			if got := generateBytes(t, opts); !bytes.Equal(got, ref) {
				t.Fatalf("dataset under fault schedule %d differs", seed)
			}

			// Reboot: whatever the schedule left behind, a clean reopen
			// serves only valid entries and the rerun is byte-identical.
			clean, err := OpenResultStore(dir, 0)
			if err != nil {
				t.Fatalf("reopen after faults: %v", err)
			}
			defer clean.Close()
			if got := generateBytes(t, ExploreOptions{Workers: 2, Store: clean}); !bytes.Equal(got, ref) {
				t.Fatalf("post-fault rerun under schedule %d differs", seed)
			}
			if s := clean.Stats(); s.Corrupt != 0 {
				t.Fatalf("schedule %d committed a corrupt entry: %+v", seed, s)
			}
		})
	}
}

// TestStoreKeySensitivity proves the content key separates every input
// that changes replay results: different fingerprints, run counts,
// seeds, trace caps and architecture ranges address different entries.
func TestStoreKeySensitivity(t *testing.T) {
	cfg := storeConfig()
	req, err := cfg.Request()
	if err != nil {
		t.Fatal(err)
	}
	archs := req.Archs
	base := resultKey([32]byte{1}, 2, cfg.Eval, archs)
	for name, k := range map[string]store.Key{
		"fingerprint": resultKey([32]byte{2}, 2, cfg.Eval, archs),
		"runs":        resultKey([32]byte{1}, 3, cfg.Eval, archs),
		"seed":        resultKey([32]byte{1}, 2, EvalConfig{TargetInsns: cfg.Eval.TargetInsns, Seed: 99}, archs),
		"maxinsns":    resultKey([32]byte{1}, 2, EvalConfig{TargetInsns: cfg.Eval.TargetInsns, Seed: cfg.Eval.Seed, MaxInsns: 12}, archs),
		"arch-range":  resultKey([32]byte{1}, 2, cfg.Eval, archs[:1]),
	} {
		if k == base {
			t.Fatalf("key ignores %s", name)
		}
	}
}

// TestEvaluatorRunStorePath proves the single-replay path (the
// prediction server's profile cache): a fresh evaluator over a warm
// store answers Run from disk without generating a trace, and the
// result matches the storeless computation exactly.
func TestEvaluatorRunStorePath(t *testing.T) {
	cfg := storeConfig()
	req, err := cfg.Request()
	if err != nil {
		t.Fatal(err)
	}
	name, oc, arch := req.Programs[0], req.Opts[1], req.Archs[0]

	plain := NewEvaluator(cfg.Eval)
	want, err := plain.Run(name, &oc, arch)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first := openStore(t, dir)
	ev1 := NewEvaluator(cfg.Eval)
	ev1.SetStore(first)
	got, err := ev1.Run(name, &oc, arch)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("store-backed Run differs from plain Run")
	}
	if s := ev1.Stats(); s.StoreMisses == 0 {
		t.Fatalf("cold Run did not consult the store: %+v", s)
	}
	first.Close()

	second := openStore(t, dir)
	ev2 := NewEvaluator(cfg.Eval)
	ev2.SetStore(second)
	got2, err := ev2.Run(name, &oc, arch)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Fatal("warm Run differs from plain Run")
	}
	s := ev2.Stats()
	if s.StoreHits == 0 {
		t.Fatalf("warm Run missed the store: %+v", s)
	}
	// The -O3 probe (which fixes the run count, part of the key) still
	// runs once; the replay itself must come from disk.
	if s.Simulations != 0 {
		t.Fatalf("warm Run simulated anyway: %+v", s)
	}
	if s.TraceGens > 1 {
		t.Fatalf("warm Run generated beyond the -O3 probe: %+v", s)
	}
}
