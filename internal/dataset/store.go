// The persistent result store: a content-addressed on-disk cache of
// per-architecture replay results, keyed so a hit is provably the same
// computation - binary fingerprint (identical placed image => identical
// trace under a fixed seed), workload parameters, architecture range
// and the replay-model version. Generation threaded through a store
// survives kill -9: a restart with the same directory answers most
// cells from disk and produces byte-identical datasets.
//
// Store failures are never failures of the run. Every Get/Put error is
// absorbed into counters: corrupt entries are quarantined (typed
// pcerr.ErrStoreCorrupt inside the store) and recomputed, ENOSPC/EIO
// degrade Puts to cache misses, a dead store directory degrades the
// whole run to cold-cache speed. Wrong results are impossible by
// construction - the key pins every input of the computation and the
// payload carries the store's end-to-end checksum.
package dataset

import (
	"encoding/binary"
	"fmt"
	"math"

	"portcc/internal/codegen"
	"portcc/internal/cpu"
	"portcc/internal/faultfs"
	"portcc/internal/store"
	"portcc/internal/uarch"
)

// resultKeySchema versions the key-material layout below; bump on any
// change so old entries become unreachable rather than misinterpreted.
const resultKeySchema = 1

// resultFields is the number of uint64 counters in cpu.Result, the
// fixed part of the payload codec (EnergyNJ rides as float64 bits).
const resultFields = 18

// ResultStore adapts the generic content-addressed store to the
// dataset pipeline: it derives keys from replay inputs and encodes
// result batches with a deterministic fixed-width codec (no gob - the
// payload bytes must be identical across processes and runs so the
// store stays content-addressed in spirit as well as in key).
//
// All methods are safe for concurrent use and absorb store failures:
// Get returns ok=false on miss, corruption (quarantined inside the
// store) and I/O trouble alike; Put's failures only show in Stats.
//
// The backend may be a local directory (OpenResultStore), a
// local-then-remote tier over a shared store service
// (OpenResultStoreRemote), or anything else satisfying store.Backend;
// the pipeline above this seam cannot tell them apart, which is the
// point - datasets are byte-identical under every backend and every
// backend failure.
type ResultStore struct {
	s store.Backend
}

// OpenResultStore opens (creating if needed) a result store rooted at
// dir, bounded to budget bytes (0 = unbounded).
func OpenResultStore(dir string, budget int64) (*ResultStore, error) {
	return OpenResultStoreFS(dir, budget, nil)
}

// OpenResultStoreFS is OpenResultStore on an explicit filesystem;
// chaos tests inject faultfs schedules here.
func OpenResultStoreFS(dir string, budget int64, fs faultfs.FS) (*ResultStore, error) {
	s, err := store.Open(store.Options{Dir: dir, Budget: budget, FS: fs})
	if err != nil {
		return nil, err
	}
	return &ResultStore{s: s}, nil
}

// OpenResultStoreRemote opens a tiered result store: the local
// directory at dir (skipped when dir is empty - a shard with no cache
// disk leans on the fleet alone) backed by the store service at addr.
// Gets check local first, then the service, writing remote hits back;
// Puts commit to both, so every shard's work is shared fleet-wide. The
// service connection is dialled lazily and every transport failure -
// dead service, torn frame, slow reply, version skew - degrades to a
// local miss, bounded in time: a run with the service down is just a
// run with a cold shared tier.
func OpenResultStoreRemote(dir string, budget int64, addr string) (*ResultStore, error) {
	return OpenResultStoreRemoteFS(dir, budget, addr, nil)
}

// OpenResultStoreRemoteFS is OpenResultStoreRemote on an explicit
// filesystem for the local tier.
func OpenResultStoreRemoteFS(dir string, budget int64, addr string, fs faultfs.FS) (*ResultStore, error) {
	var local *store.Store
	if dir != "" {
		s, err := store.Open(store.Options{Dir: dir, Budget: budget, FS: fs})
		if err != nil {
			return nil, err
		}
		local = s
	}
	remote := store.NewRemote(store.RemoteOptions{Addr: addr, Format: FormatVersion})
	return &ResultStore{s: store.NewTiered(local, remote)}, nil
}

// Close compacts and closes the store's journal.
func (rs *ResultStore) Close() error { return rs.s.Close() }

// Stats returns the underlying store's operation ledger. The counters
// are store-global: evaluators sharing one store share one ledger.
func (rs *ResultStore) Stats() store.Stats { return rs.s.Stats() }

// resultKey derives the content address of one replay: everything the
// produced counters depend on is hashed in. The binary fingerprint
// stands in for (program, optimisation setting) - byte-identical
// binaries yield identical traces under a fixed seed, so twin settings
// share entries by design, exactly like the in-memory replay memo.
func resultKey(fp codegen.Fingerprint, runs int, cfg EvalConfig, archs []uarch.Config) store.Key {
	material := make([]byte, 0, 64+len(archs)*80)
	le := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		material = append(material, b[:]...)
	}
	material = append(material, "portcc-result\n"...)
	le(resultKeySchema)
	le(FormatVersion)
	le(cpu.ReplayVersion)
	material = append(material, fp[:]...)
	le(uint64(runs))
	le(uint64(cfg.Seed))
	le(uint64(cfg.MaxInsns))
	le(uint64(len(archs)))
	for _, a := range archs {
		for _, v := range []int{
			a.IL1Size, a.IL1Assoc, a.IL1Block,
			a.DL1Size, a.DL1Assoc, a.DL1Block,
			a.BTBSize, a.BTBAssoc, a.FreqMHz, a.Width,
		} {
			le(uint64(v))
		}
	}
	return store.KeyOf(material)
}

// encodeResults packs a result batch into the deterministic payload:
// u64 count, then per result the 18 counters and EnergyNJ as float64
// bits, all little-endian. Result.Config is not stored - it is an echo
// of the key's architecture slice, reconstructed on decode.
func encodeResults(results []cpu.Result) []byte {
	out := make([]byte, 0, 8+len(results)*(resultFields+1)*8)
	le := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	le(uint64(len(results)))
	for i := range results {
		r := &results[i]
		for _, v := range []uint64{
			r.Cycles, r.Insns,
			r.ICAccesses, r.ICMisses,
			r.DCAccesses, r.DCMisses,
			r.BTBLookups, r.Mispredicts,
			r.Decodes, r.RegReads, r.RegWrites,
			r.ALUOps, r.MACOps, r.ShiftOps,
			r.FetchStalls, r.MemStalls, r.DepStalls, r.BranchStalls,
		} {
			le(v)
		}
		le(math.Float64bits(r.EnergyNJ))
	}
	return out
}

// decodeResults unpacks a payload against the expected architecture
// slice. Any shape mismatch is reported as an error - the caller
// quarantines, because a payload that passed the store's checksum but
// not the codec means a key collision or codec bug, and recomputation
// wins either way.
func decodeResults(payload []byte, archs []uarch.Config) ([]cpu.Result, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("payload %d bytes, want >= 8", len(payload))
	}
	n := binary.LittleEndian.Uint64(payload)
	want := 8 + int(n)*(resultFields+1)*8
	if n != uint64(len(archs)) || len(payload) != want {
		return nil, fmt.Errorf("payload shape %d results/%d bytes, want %d/%d", n, len(payload), len(archs), want)
	}
	results := make([]cpu.Result, len(archs))
	off := 8
	u := func() uint64 {
		v := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		return v
	}
	for i := range results {
		r := &results[i]
		r.Cycles, r.Insns = u(), u()
		r.ICAccesses, r.ICMisses = u(), u()
		r.DCAccesses, r.DCMisses = u(), u()
		r.BTBLookups, r.Mispredicts = u(), u()
		r.Decodes, r.RegReads, r.RegWrites = u(), u(), u()
		r.ALUOps, r.MACOps, r.ShiftOps = u(), u(), u()
		r.FetchStalls, r.MemStalls, r.DepStalls, r.BranchStalls = u(), u(), u(), u()
		r.EnergyNJ = math.Float64frombits(u())
		r.Config = archs[i]
	}
	return results, nil
}

// Get looks up the replay identified by (fp, runs, cfg, archs) and
// returns its results when a valid entry exists. Misses, corruption
// (quarantined by the store, typed internally) and I/O failures all
// return ok=false: the caller recomputes, and the distinction lives in
// Stats.
func (rs *ResultStore) Get(fp codegen.Fingerprint, runs int, cfg EvalConfig, archs []uarch.Config) ([]cpu.Result, bool) {
	k := resultKey(fp, runs, cfg, archs)
	payload, ok, _ := rs.s.Get(k)
	if !ok {
		return nil, false
	}
	results, err := decodeResults(payload, archs)
	if err != nil {
		rs.s.Quarantine(k, err)
		return nil, false
	}
	return results, true
}

// Put commits the replay's results. Failures degrade silently (the
// entry is simply not cached; Stats counts it) - a full disk must not
// abort a generation run.
func (rs *ResultStore) Put(fp codegen.Fingerprint, runs int, cfg EvalConfig, archs []uarch.Config, results []cpu.Result) {
	if len(results) != len(archs) {
		return
	}
	rs.s.Put(resultKey(fp, runs, cfg, archs), encodeResults(results))
}
