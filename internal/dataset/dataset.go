package dataset

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"portcc/internal/features"
	"portcc/internal/ml"
	"portcc/internal/opt"
	"portcc/internal/uarch"
)

// GenConfig describes a dataset to generate.
type GenConfig struct {
	// Programs to include (prog.Names() when empty).
	Programs []string
	// NumArchs microarchitectures sampled uniformly (paper: 200).
	NumArchs int
	// NumOpts optimisation settings sampled uniformly (paper: 1000);
	// the -O3 baseline is always included as index 0.
	NumOpts int
	// Extended selects the Section 7 space (frequency and issue width).
	Extended bool
	// Seed drives all sampling.
	Seed int64
	// Eval carries the workload-scaling parameters.
	Eval EvalConfig
}

// Dataset is the generated training data.
type Dataset struct {
	Cfg      GenConfig
	Programs []string
	Archs    []uarch.Config
	// Opts[0] is -O3; the rest are uniform random samples.
	Opts []opt.Config
	// Speedups[p][a][o] = cycles(O3)/cycles(Opts[o]) for program p on
	// architecture a. Speedups[p][a][0] == 1 by construction.
	Speedups [][][]float32
	// Features[p][a] is x=(c,d) measured from the -O3 run (Section 3.4).
	Features [][][]float64
	// BaselineCycles[p][a] is cycles-per-run of the -O3 binary, the
	// denominator for evaluating configurations outside the sample.
	BaselineCycles [][]float64
	// Runs[p] is the complete-run count used for program p's traces.
	Runs []int
}

// Generate produces the dataset, parallelising across (program, setting)
// pairs; each compiled trace is replayed over every architecture.
func Generate(cfg GenConfig) (*Dataset, error) {
	if len(cfg.Programs) == 0 {
		return nil, fmt.Errorf("dataset: no programs")
	}
	if cfg.NumArchs <= 0 || cfg.NumOpts <= 0 {
		return nil, fmt.Errorf("dataset: NumArchs and NumOpts must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	space := uarch.Space{Extended: cfg.Extended}
	ds := &Dataset{
		Cfg:      cfg,
		Programs: append([]string(nil), cfg.Programs...),
		Archs:    space.SampleN(rng, cfg.NumArchs),
		Opts:     make([]opt.Config, 0, cfg.NumOpts+1),
	}
	ds.Opts = append(ds.Opts, opt.O3())
	optRng := rand.New(rand.NewSource(cfg.Seed + 1))
	seen := map[string]bool{ds.Opts[0].Key(): true}
	for len(ds.Opts) < cfg.NumOpts+1 {
		c := opt.Random(optRng)
		if k := c.Key(); !seen[k] {
			seen[k] = true
			ds.Opts = append(ds.Opts, c)
		}
	}

	nP, nA, nO := len(ds.Programs), len(ds.Archs), len(ds.Opts)
	ds.Speedups = make([][][]float32, nP)
	ds.Features = make([][][]float64, nP)
	ds.BaselineCycles = make([][]float64, nP)
	ds.Runs = make([]int, nP)
	for p := range ds.Speedups {
		ds.Speedups[p] = make([][]float32, nA)
		ds.Features[p] = make([][]float64, nA)
		ds.BaselineCycles[p] = make([]float64, nA)
		for a := range ds.Speedups[p] {
			ds.Speedups[p][a] = make([]float32, nO)
		}
	}

	// One evaluator per worker: the trace cache is tiny and the loop is
	// ordered per program, so per-worker caches stay hot. The first
	// failure stops dispatch - workers drain the channel without burning
	// compile time on jobs whose results would be discarded - and the
	// error reported is the failing job with the lowest program index,
	// not whichever worker slot happened to fail first.
	type job struct{ p int }
	jobs := make(chan job)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstP  int
		firstE  error
		stopped atomic.Bool
	)
	fail := func(p int, err error) {
		mu.Lock()
		if firstE == nil || p < firstP {
			firstP, firstE = p, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	// Dispatch is in index order, so every job below a failing index has
	// already been handed out; running those (and only those) after a
	// failure makes the reported error the lowest failing index among
	// the dispatched jobs, independent of worker scheduling.
	skip := func(p int) bool {
		if !stopped.Load() {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return firstE != nil && p > firstP
	}
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := NewEvaluator(cfg.Eval)
			for j := range jobs {
				if skip(j.p) {
					continue
				}
				if err := generateProgram(ds, ev, j.p); err != nil {
					fail(j.p, err)
				}
			}
		}()
	}
	for p := 0; p < nP && !stopped.Load(); p++ {
		jobs <- job{p: p}
	}
	close(jobs)
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	return ds, nil
}

// generateProgram fills one program's slice of the dataset: cycles of every
// setting on every architecture, plus -O3 features. Each compiled trace is
// replayed over all architectures in one batched pass.
func generateProgram(ds *Dataset, ev *Evaluator, p int) error {
	name := ds.Programs[p]
	nA, nO := len(ds.Archs), len(ds.Opts)
	baseline := make([]float64, nA)
	for o := 0; o < nO; o++ {
		c := ds.Opts[o]
		tr, _, err := ev.Trace(name, &c)
		if err != nil {
			return fmt.Errorf("dataset: %s opt %d: %w", name, o, err)
		}
		runs := tr.Runs
		if runs < 1 {
			runs = 1
		}
		results := ev.SimulateBatch(tr, ds.Archs)
		for a := 0; a < nA; a++ {
			r := &results[a]
			cyc := float64(r.Cycles) / float64(runs)
			if o == 0 {
				baseline[a] = cyc
				ds.Speedups[p][a][0] = 1
				ds.Features[p][a] = features.Vector(ds.Archs[a], r)
				ds.BaselineCycles[p][a] = cyc
				ds.Runs[p] = runs
			} else {
				ds.Speedups[p][a][o] = float32(baseline[a] / cyc)
			}
		}
	}
	return nil
}

// Pair returns program and architecture counts.
func (d *Dataset) Dims() (programs, archs, opts int) {
	return len(d.Programs), len(d.Archs), len(d.Opts)
}

// BestSpeedup returns the maximum speedup over -O3 found by the sampled
// settings for pair (p, a) - the paper's iterative-compilation "Best".
func (d *Dataset) BestSpeedup(p, a int) (float64, int) {
	best, bestO := float64(d.Speedups[p][a][0]), 0
	for o, s := range d.Speedups[p][a] {
		if float64(s) > best {
			best, bestO = float64(s), o
		}
	}
	return best, bestO
}

// TrainingPairs converts the dataset into fitted ML training pairs:
// for each (program, architecture), the good set (top 5%) is selected and
// the IID distribution fitted (Section 3.3.1).
func (d *Dataset) TrainingPairs() ([]ml.TrainingPair, error) {
	var pairs []ml.TrainingPair
	for p := range d.Programs {
		for a := range d.Archs {
			sp := make([]float64, len(d.Opts))
			for o, s := range d.Speedups[p][a] {
				sp[o] = float64(s)
			}
			good := ml.TopGood(d.Opts, sp)
			g, err := ml.FitGood(good)
			if err != nil {
				return nil, fmt.Errorf("dataset: pair (%s, arch %d): %w", d.Programs[p], a, err)
			}
			pairs = append(pairs, ml.TrainingPair{
				Prog: d.Programs[p],
				Arch: a,
				X:    d.Features[p][a],
				G:    g,
			})
		}
	}
	return pairs, nil
}

// Save writes the dataset with gob encoding.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(d)
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d Dataset
	if err := gob.NewDecoder(f).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
