package dataset

import (
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"os"

	"portcc/internal/features"
	"portcc/internal/ml"
	"portcc/internal/opt"
	"portcc/internal/pcerr"
	"portcc/internal/uarch"
)

// Gob allocates wire type ids from a process-global counter in order of
// first use, so a process that pushed frames over the shard wire before
// saving would write different (yet equivalent) type descriptors than a
// purely local one. Pinning the file schema's ids at init - before main
// can touch any other gob stream - keeps Save byte-for-byte
// deterministic across coordinator, worker and local processes, so
// "bit-identical dataset" stays checkable with a plain file compare.
func init() {
	enc := gob.NewEncoder(io.Discard)
	enc.Encode(fileHeader{})
	enc.Encode(&Dataset{})
}

// GenConfig describes a dataset to generate.
type GenConfig struct {
	// Programs to include (prog.Names() when empty).
	Programs []string
	// NumArchs microarchitectures sampled uniformly (paper: 200).
	NumArchs int
	// NumOpts optimisation settings sampled uniformly (paper: 1000);
	// the -O3 baseline is always included as index 0.
	NumOpts int
	// Extended selects the Section 7 space (frequency and issue width).
	Extended bool
	// Seed drives all sampling.
	Seed int64
	// Eval carries the workload-scaling parameters.
	Eval EvalConfig
}

// Dataset is the generated training data.
type Dataset struct {
	Cfg      GenConfig
	Programs []string
	Archs    []uarch.Config
	// Opts[0] is -O3; the rest are uniform random samples.
	Opts []opt.Config
	// Speedups[p][a][o] = cycles(O3)/cycles(Opts[o]) for program p on
	// architecture a. Speedups[p][a][0] == 1 by construction.
	Speedups [][][]float32
	// Features[p][a] is x=(c,d) measured from the -O3 run (Section 3.4).
	Features [][][]float64
	// BaselineCycles[p][a] is cycles-per-run of the -O3 binary, the
	// denominator for evaluating configurations outside the sample.
	BaselineCycles [][]float64
	// Runs[p] is the complete-run count used for program p's traces.
	Runs []int
}

// Request converts the generation config into the exploration work grid
// it expands to: -O3 plus the sampled optimisation settings of every
// program, replayed over the sampled architectures.
func (cfg GenConfig) Request() (ExploreRequest, error) {
	if len(cfg.Programs) == 0 {
		return ExploreRequest{}, fmt.Errorf("dataset: %w: no programs", pcerr.ErrInvalidConfig)
	}
	if cfg.NumArchs <= 0 || cfg.NumOpts <= 0 {
		return ExploreRequest{}, fmt.Errorf("dataset: %w: NumArchs and NumOpts must be positive", pcerr.ErrInvalidConfig)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	space := uarch.Space{Extended: cfg.Extended}
	req := ExploreRequest{
		Programs: append([]string(nil), cfg.Programs...),
		Archs:    space.SampleN(rng, cfg.NumArchs),
		Opts:     make([]opt.Config, 0, cfg.NumOpts+1),
		Eval:     cfg.Eval,
	}
	req.Opts = append(req.Opts, opt.O3())
	optRng := rand.New(rand.NewSource(cfg.Seed + 1))
	seen := map[string]bool{req.Opts[0].Key(): true}
	for len(req.Opts) < cfg.NumOpts+1 {
		c := opt.Random(optRng)
		if k := c.Key(); !seen[k] {
			seen[k] = true
			req.Opts = append(req.Opts, c)
		}
	}
	if err := req.Validate(); err != nil {
		return ExploreRequest{}, err
	}
	return req, nil
}

// Generate produces the dataset, parallelising across (program, setting)
// cells; each compiled trace is replayed over every architecture. It
// honours ctx: on cancellation the worker pool drains and the error wraps
// ctx.Err() with partial-progress counts.
func Generate(ctx context.Context, cfg GenConfig) (*Dataset, error) {
	return GenerateWith(ctx, cfg, ExploreOptions{})
}

// GenerateWith is Generate with explicit execution options (worker count,
// progress callback). It is a thin consumer of the streaming Explore
// engine: the grid cells arrive in completion order and are folded into
// the dataset arrays, with speedups derived once the stream completes.
func GenerateWith(ctx context.Context, cfg GenConfig, o ExploreOptions) (*Dataset, error) {
	req, err := cfg.Request()
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Cfg:      cfg,
		Programs: req.Programs,
		Archs:    req.Archs,
		Opts:     req.Opts,
	}
	nP, nA, nO := len(ds.Programs), len(ds.Archs), len(ds.Opts)
	ds.Speedups = make([][][]float32, nP)
	ds.Features = make([][][]float64, nP)
	ds.BaselineCycles = make([][]float64, nP)
	ds.Runs = make([]int, nP)
	for p := range ds.Speedups {
		ds.Speedups[p] = make([][]float32, nA)
		ds.Features[p] = make([][]float64, nA)
		ds.BaselineCycles[p] = make([]float64, nA)
		for a := range ds.Speedups[p] {
			ds.Speedups[p][a] = make([]float32, nO)
		}
	}
	// Cells arrive in completion order, so raw cycles are buffered until
	// a program's grid is complete, then folded into speedups and freed:
	// peak extra memory is bounded by the programs in flight, not the
	// whole nP x nA x nO cube.
	cyc := make([][][]float64, nP)
	remaining := make([]int, nP)
	cellsPerProgram := req.Cells() / nP
	for p := range remaining {
		remaining[p] = cellsPerProgram
	}
	for res, err := range Explore(ctx, req, o) {
		if err != nil {
			return nil, err
		}
		p := res.ProgIndex
		if cyc[p] == nil {
			cyc[p] = make([][]float64, nA)
			for a := range cyc[p] {
				cyc[p][a] = make([]float64, nO)
			}
		}
		for i := range res.Results {
			r := &res.Results[i]
			a := res.ArchStart + i
			c := float64(r.Cycles) / float64(res.Runs)
			cyc[p][a][res.OptIndex] = c
			if res.OptIndex == 0 {
				ds.Features[p][a] = features.Vector(ds.Archs[a], r)
				ds.BaselineCycles[p][a] = c
				ds.Runs[p] = res.Runs
			}
		}
		if remaining[p]--; remaining[p] == 0 {
			for a := range cyc[p] {
				ds.Speedups[p][a][0] = 1
				for o := 1; o < nO; o++ {
					ds.Speedups[p][a][o] = float32(cyc[p][a][0] / cyc[p][a][o])
				}
			}
			cyc[p] = nil
		}
	}
	return ds, nil
}

// Pair returns program and architecture counts.
func (d *Dataset) Dims() (programs, archs, opts int) {
	return len(d.Programs), len(d.Archs), len(d.Opts)
}

// BestSpeedup returns the maximum speedup over -O3 found by the sampled
// settings for pair (p, a) - the paper's iterative-compilation "Best".
func (d *Dataset) BestSpeedup(p, a int) (float64, int) {
	best, bestO := float64(d.Speedups[p][a][0]), 0
	for o, s := range d.Speedups[p][a] {
		if float64(s) > best {
			best, bestO = float64(s), o
		}
	}
	return best, bestO
}

// TrainingPairs converts the dataset into fitted ML training pairs:
// for each (program, architecture), the good set (top 5%) is selected and
// the IID distribution fitted (Section 3.3.1).
func (d *Dataset) TrainingPairs() ([]ml.TrainingPair, error) {
	var pairs []ml.TrainingPair
	for p := range d.Programs {
		for a := range d.Archs {
			sp := make([]float64, len(d.Opts))
			for o, s := range d.Speedups[p][a] {
				sp[o] = float64(s)
			}
			good := ml.TopGood(d.Opts, sp)
			g, err := ml.FitGood(good)
			if err != nil {
				return nil, fmt.Errorf("dataset: pair (%s, arch %d): %w", d.Programs[p], a, err)
			}
			pairs = append(pairs, ml.TrainingPair{
				Prog: d.Programs[p],
				Arch: a,
				X:    d.Features[p][a],
				G:    g,
			})
		}
	}
	return pairs, nil
}

// FormatVersion is the dataset file schema version. Bump it whenever the
// gob layout of Dataset (or anything it embeds) changes incompatibly;
// Load refuses mismatching files with ErrDatasetVersion instead of
// surfacing a confusing mid-stream gob decode error. Work units shipped
// between shards carry the same header.
const FormatVersion = 1

// fileMagic identifies a versioned portcc dataset file.
const fileMagic = "portcc-dataset"

// fileHeader precedes the dataset in the gob stream.
type fileHeader struct {
	Magic   string
	Version int
}

// Save writes the dataset with gob encoding, prefixed by a schema-version
// header.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.encode(f)
}

// encode writes the canonical file byte stream: header, then dataset.
func (d *Dataset) encode(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: FormatVersion}); err != nil {
		return err
	}
	return enc.Encode(d)
}

// Fingerprint returns the hex sha256 of the dataset's canonical Save
// byte stream - identical to hashing a file written by Save, without
// touching disk. Model artifacts embed it so a trained model is
// traceable to the exact dataset it was fitted on, and consumers can
// verify a dataset/artifact pairing before mixing them.
func (d *Dataset) Fingerprint() (string, error) {
	h := sha256.New()
	if err := d.encode(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Describe returns a one-line canonical description of the generation
// config, embedded in model artifacts for human inspection.
func (cfg GenConfig) Describe() string {
	return fmt.Sprintf("%d programs x %d archs x %d opts, extended=%v, seed=%d, eval={target=%d max=%d seed=%d}",
		len(cfg.Programs), cfg.NumArchs, cfg.NumOpts, cfg.Extended, cfg.Seed,
		cfg.Eval.TargetInsns, cfg.Eval.MaxInsns, cfg.Eval.Seed)
}

// Load reads a dataset written by Save. Files without a matching header -
// pre-versioning datasets, foreign files, or datasets from a different
// schema version - fail with an error wrapping ErrDatasetVersion.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var h fileHeader
	// A pre-versioning or foreign gob stream either fails to decode into
	// the header or decodes with the wrong magic; both surface as
	// version mismatches, with the decode cause preserved for diagnosis
	// (a truncated file or I/O error is visible there, not hidden).
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("dataset: %s: no version header (pre-versioning or foreign file): %w (%w)", path, pcerr.ErrDatasetVersion, err)
	}
	if h.Magic != fileMagic {
		return nil, fmt.Errorf("dataset: %s: no version header (pre-versioning or foreign file): %w", path, pcerr.ErrDatasetVersion)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("dataset: %s: file version %d, this build reads version %d: %w",
			path, h.Version, FormatVersion, pcerr.ErrDatasetVersion)
	}
	var d Dataset
	if err := dec.Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
