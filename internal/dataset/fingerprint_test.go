package dataset

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// TestFingerprintMatchesSaveFile pins that Fingerprint hashes exactly
// the canonical Save byte stream: the digest of a saved file equals the
// in-memory fingerprint, so a model artifact's embedded DatasetSHA256
// can be checked against either form of the dataset.
func TestFingerprintMatchesSaveFile(t *testing.T) {
	ds, err := Generate(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ds.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != fp {
		t.Fatalf("Fingerprint() = %s, but sha256(Save file) = %s", fp, got)
	}
	// Stability within a process.
	fp2, err := ds.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Fatalf("Fingerprint unstable: %s then %s", fp, fp2)
	}
}

func TestDescribe(t *testing.T) {
	cfg := tinyConfig()
	got := cfg.Describe()
	want := "3 programs x 3 archs x 10 opts, extended=false, seed=21, eval={target=6000 max=0 seed=1}"
	if got != want {
		t.Fatalf("Describe() = %q, want %q", got, want)
	}
}
