// End-to-end tests of the shared store service under the dataset
// pipeline: a fleet of generations pointed at one portccsd-style
// service must produce byte-identical datasets to storeless runs -
// with the service healthy, killed mid-run, or serving through a
// seeded fault schedule - and a second fleet run must recompute
// nothing, answering every shared cell from the service.
package dataset

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"portcc/internal/faultnet"
	"portcc/internal/store"
)

// storeService runs one wire-protocol store service over a fresh
// directory for a test.
type storeService struct {
	addr     string
	sv       *store.Service
	cancel   context.CancelFunc
	done     chan error
	stopOnce sync.Once
}

func startStoreService(t *testing.T, plan faultnet.Plan) *storeService {
	t.Helper()
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var serveLn net.Listener = ln
	if plan != nil {
		serveLn = faultnet.Wrap(ln, plan)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ss := &storeService{
		addr:   ln.Addr().String(),
		sv:     store.NewService(st, store.ServiceConfig{Format: FormatVersion}),
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() { ss.done <- ss.sv.Serve(ctx, serveLn) }()
	t.Cleanup(ss.stop)
	return ss
}

func (ss *storeService) stop() {
	ss.stopOnce.Do(func() {
		ss.cancel()
		select {
		case <-ss.done:
		case <-time.After(10 * time.Second):
		}
	})
}

// saveBytes serialises one generated dataset, for byte comparison.
func saveBytes(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	p := filepath.Join(t.TempDir(), "ds.gob")
	if err := ds.Save(p); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// openRemoteStore opens a tiered result store against the service.
func openRemoteStore(t *testing.T, dir, addr string) *ResultStore {
	t.Helper()
	rs, err := OpenResultStoreRemote(dir, 0, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs
}

// TestRemoteStoreFleetSharing is the acceptance contract: shard A
// generates through the service (byte-identical to storeless), then
// shard B - fresh local directory, same service - generates the same
// grid byte-identically with zero recomputations: every replay is
// answered by the service that A fed.
func TestRemoteStoreFleetSharing(t *testing.T) {
	ref := generateBytes(t, ExploreOptions{Workers: 2})
	ss := startStoreService(t, nil)

	a := openRemoteStore(t, t.TempDir(), ss.addr)
	if got := generateBytes(t, ExploreOptions{Workers: 2, Store: a}); !bytes.Equal(got, ref) {
		t.Fatal("shard A's service-backed dataset differs from storeless dataset")
	}
	as := a.Stats()
	if as.RemotePuts == 0 {
		t.Fatalf("shard A shared nothing with the service: %+v", as)
	}
	if as.RemoteErrors != 0 {
		t.Fatalf("healthy service degraded requests: %+v", as)
	}

	b := openRemoteStore(t, t.TempDir(), ss.addr)
	if got := generateBytes(t, ExploreOptions{Workers: 2, Store: b}); !bytes.Equal(got, ref) {
		t.Fatal("shard B's service-backed dataset differs from storeless dataset")
	}
	bs := b.Stats()
	if bs.Misses != 0 {
		t.Fatalf("shard B recomputed %d shared cells, want zero: %+v", bs.Misses, bs)
	}
	if bs.RemoteHits == 0 || bs.RemoteHits != bs.Hits {
		t.Fatalf("shard B's replays were not all answered by the service: %+v", bs)
	}
	if svc := ss.sv.Stats(); svc.Hits == 0 || svc.Puts == 0 {
		t.Fatalf("service ledger shows no sharing: %+v", svc)
	}
}

// TestRemoteStoreServiceKilledMidRun kills the service partway through
// a generation: the shard degrades every later lookup to its local
// tier and the dataset stays byte-identical - a dead fleet cache is a
// performance event, not a correctness event.
func TestRemoteStoreServiceKilledMidRun(t *testing.T) {
	ref := generateBytes(t, ExploreOptions{Workers: 2})
	ss := startStoreService(t, nil)

	rs := openRemoteStore(t, t.TempDir(), ss.addr)
	var once sync.Once
	ds, err := GenerateWith(context.Background(), storeConfig(), ExploreOptions{
		Workers: 2,
		Store:   rs,
		Progress: func(done, total int) {
			if done >= total/3 {
				once.Do(ss.stop) // SIGKILL, in-process
			}
		},
	})
	if err != nil {
		t.Fatalf("generation with a dying service: %v", err)
	}
	got := saveBytes(t, ds)
	if !bytes.Equal(got, ref) {
		t.Fatal("dataset with service killed mid-run differs from storeless dataset")
	}

	// The rerun against the dead service leans on the local tier alone:
	// still byte-identical, with the degradation visible in counters.
	if got := generateBytes(t, ExploreOptions{Workers: 2, Store: rs}); !bytes.Equal(got, ref) {
		t.Fatal("rerun against the dead service differs")
	}
	if s := rs.Stats(); s.Hits == 0 {
		t.Fatalf("local tier answered nothing on the rerun: %+v", s)
	}
}

// TestRemoteStoreChaosByteIdentical serves the store through seeded
// fault schedules - connections dying on accept, mid-read, mid-write
// (torn frames) and crawling - and requires byte-identical datasets
// under every schedule: transport chaos degrades to misses, never to
// wrong cycles or stalls.
func TestRemoteStoreChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("service chaos in -short mode")
	}
	ref := generateBytes(t, ExploreOptions{Workers: 2})
	for _, seed := range []int64{3, 17, 29} {
		ss := startStoreService(t, faultnet.Seeded(seed, 4))
		rs := openRemoteStore(t, t.TempDir(), ss.addr)
		if got := generateBytes(t, ExploreOptions{Workers: 2, Store: rs}); !bytes.Equal(got, ref) {
			t.Fatalf("dataset under service fault schedule %d differs", seed)
		}
		ss.stop()
	}
}

// TestRemoteOnlyStoreByteIdentical runs a shard with no local
// directory at all: the service is the only cache tier, and a second
// run answers everything from it.
func TestRemoteOnlyStoreByteIdentical(t *testing.T) {
	ref := generateBytes(t, ExploreOptions{Workers: 2})
	ss := startStoreService(t, nil)

	first := openRemoteStore(t, "", ss.addr)
	if got := generateBytes(t, ExploreOptions{Workers: 2, Store: first}); !bytes.Equal(got, ref) {
		t.Fatal("remote-only dataset differs from storeless dataset")
	}
	first.Close()

	second := openRemoteStore(t, "", ss.addr)
	if got := generateBytes(t, ExploreOptions{Workers: 2, Store: second}); !bytes.Equal(got, ref) {
		t.Fatal("warm remote-only dataset differs")
	}
	if s := second.Stats(); s.Misses != 0 || s.Hits == 0 {
		t.Fatalf("warm remote-only run recomputed cells: %+v", s)
	}
}
