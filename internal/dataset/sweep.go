// The batched cell runner: cells of one exploration grid share a sweep
// state that compiles a program's optimisation settings in windows
// through Evaluator.TraceBatch (prefix-memoised pipeline) and
// deduplicates trace generation and replay across settings whose
// pipelines produced byte-identical binaries. The scheduler contract is
// untouched: cells are still dispatched, executed and streamed one by
// one - the batch compile happens behind the first cell of each window,
// and every result is bit-identical to the naive per-cell path.
//
// Memory is bounded even when a runner serves only part of the grid (a
// worker daemon behind sched.Remote sees interleaved chunks and may
// never receive some cells): windows hold compiled binaries only and
// live in a small FIFO that rebuilds on demand, traces are generated
// lazily at the first replay that needs them from pooled buffers and
// returned to the pool as soon as their last architecture range has
// been simulated, and replay results are memoised per binary so twin
// settings never touch a trace at all.
package dataset

import (
	"sync"

	"portcc/internal/codegen"
	"portcc/internal/cpu"
	"portcc/internal/opt"
	"portcc/internal/pcerr"
	"portcc/internal/trace"
)

// sweepWindowSize picks how many settings one TraceBatch covers: the
// whole sweep when one worker slot runs it, shrinking with the slot count
// so parallel workers are not serialised behind one window build, bounded
// so a window's compiled binaries stay a few dozen at any scale.
func sweepWindowSize(opts, slots int) int {
	if slots < 1 {
		slots = 1
	}
	w := opts / slots
	if w < 8 {
		w = 8
	}
	if w > 64 {
		w = 64
	}
	if w > opts {
		w = opts
	}
	return w
}

// maxBuiltWindows bounds the compiled windows retained across the whole
// sweep state (FIFO): a runner that executes cells in dispatch order
// never revisits an evicted window, and one that does (a shard serving
// interleaved or requeued chunks) just rebuilds it - identical output,
// bounded memory.
const maxBuiltWindows = 8

// sweepState is shared by every worker slot of one Runner.
type sweepState struct {
	req    *ExploreRequest
	window int // settings per window
	// batches is the arch-batch count per (program, setting).
	batches int

	mu    sync.Mutex
	progs map[int]*progSweep
	// built is the FIFO of window keys currently retained.
	built []windowKey
}

type windowKey struct {
	prog, start int
}

// progSweep holds one program's in-flight windows, its cross-window
// replay memo and its live traces. It is dropped once every cell of the
// program has been consumed (local runs; a partial-grid runner keeps the
// small memos until the run ends).
type progSweep struct {
	prog      int
	cellsLeft int
	windows   map[int]*sweepWindow
	sims      map[simKey]*simCell
	traces    map[codegen.Fingerprint]*traceSlot
	// seenFPs and counted drive the TraceReuses accounting: fingerprints
	// already owned by an earlier setting of this program, and window
	// starts whose reuse count has been recorded (a rebuilt window must
	// not recount).
	seenFPs map[codegen.Fingerprint]bool
	counted map[int]bool
}

// sweepWindow is one contiguous run of settings, batch-compiled by the
// first cell that needs any of them. It holds binaries and fingerprints
// only; traces are the traceSlots' business.
type sweepWindow struct {
	once sync.Once
	err  error         // whole-window failure (module build, -O3 probe)
	bt   []BatchBinary // per setting, local index = opt - start
}

// simKey identifies one (binary, architecture range) replay.
type simKey struct {
	fp     codegen.Fingerprint
	lo, hi int
}

// simCell memoises one replay: twin settings reuse the results without
// touching a trace.
type simCell struct {
	once    sync.Once
	runs    int
	results []cpu.Result
	err     error
}

// traceSlot owns one distinct binary's generated trace while replays
// still need it. remaining counts the architecture ranges not yet
// simulated and using the replays currently reading the trace; the
// buffer returns to the pool when remaining reaches zero, so at the
// default ArchBatch (one range) a trace lives exactly for the duration
// of its single replay. Idle traces (using == 0) beyond maxLiveTraces
// are evicted early and regenerated on demand - a runner that never
// receives a binary's remaining ranges (a shard serving part of the
// grid) cannot pin its trace forever.
type traceSlot struct {
	mu        sync.Mutex
	tr        *trace.Trace
	remaining int
	using     int
}

// maxLiveTraces bounds the generated traces a program retains between
// replays; only non-default ArchBatch settings keep traces across cells
// at all, so the bound is comfortably above any real in-flight set.
const maxLiveTraces = 16

func newSweepState(req *ExploreRequest, slots int) *sweepState {
	ab := req.ArchBatch
	if ab <= 0 || ab > len(req.Archs) {
		ab = len(req.Archs)
	}
	return &sweepState{
		req:     req,
		window:  sweepWindowSize(len(req.Opts), slots),
		batches: (len(req.Archs) + ab - 1) / ab,
		progs:   make(map[int]*progSweep),
	}
}

// prog returns (creating on first use) the per-program state.
func (s *sweepState) prog(p int) *progSweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, ok := s.progs[p]
	if !ok {
		ps = &progSweep{
			prog:      p,
			cellsLeft: len(s.req.Opts) * s.batches,
			windows:   make(map[int]*sweepWindow),
			sims:      make(map[simKey]*simCell),
			traces:    make(map[codegen.Fingerprint]*traceSlot),
			seenFPs:   make(map[codegen.Fingerprint]bool),
			counted:   make(map[int]bool),
		}
		s.progs[p] = ps
	}
	return ps
}

// windowAt returns a program's window record, creating (and FIFO-
// registering) it on first use and evicting the oldest built window
// beyond the retention bound. Evicted windows are simply forgotten:
// cells still holding the pointer finish against it, and a later cell
// rebuilds an identical window from the deterministic compile.
func (s *sweepState) windowAt(ps *progSweep, start int) *sweepWindow {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := ps.windows[start]
	if !ok {
		w = &sweepWindow{}
		ps.windows[start] = w
		s.built = append(s.built, windowKey{ps.prog, start})
		for len(s.built) > maxBuiltWindows {
			old := s.built[0]
			s.built = s.built[1:]
			if ops, ok := s.progs[old.prog]; ok {
				delete(ops.windows, old.start)
			}
		}
	}
	return w
}

// sim returns (creating on first use) a program's replay memo slot.
func (s *sweepState) sim(ps *progSweep, key simKey) *simCell {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := ps.sims[key]
	if !ok {
		sc = &simCell{}
		ps.sims[key] = sc
	}
	return sc
}

// traceFor returns the binary's trace, generating it into a pooled
// buffer on first use (or after an earlier release). Callers must pair
// a successful acquisition with releaseTrace after their replay.
func (s *sweepState) traceFor(ev *Evaluator, ps *progSweep, name string, bt *BatchBinary) (*trace.Trace, error) {
	s.mu.Lock()
	slot, ok := ps.traces[bt.FP]
	if !ok {
		slot = &traceSlot{remaining: s.batches}
		ps.traces[bt.FP] = slot
	}
	live := len(ps.traces)
	s.mu.Unlock()
	if live > maxLiveTraces {
		s.evictIdleTraces(ps, slot)
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.tr == nil {
		tr, err := ev.GenerateTrace(name, bt.Prog)
		if err != nil {
			return nil, err
		}
		slot.tr = tr
	}
	slot.using++
	return slot.tr, nil
}

// evictIdleTraces returns idle generated traces (no replay mid-read) to
// the pool, keeping the slots' range bookkeeping; a later range
// regenerates deterministically from its binary. Busy slots are skipped
// (TryLock), never stalled.
func (s *sweepState) evictIdleTraces(ps *progSweep, keep *traceSlot) {
	s.mu.Lock()
	slots := make([]*traceSlot, 0, len(ps.traces))
	for _, sl := range ps.traces {
		if sl != keep {
			slots = append(slots, sl)
		}
	}
	s.mu.Unlock()
	for _, sl := range slots {
		if !sl.mu.TryLock() {
			continue
		}
		if sl.using == 0 && sl.tr != nil {
			trace.Put(sl.tr)
			sl.tr = nil
		}
		sl.mu.Unlock()
	}
}

// releaseTrace retires one architecture range of the binary's trace
// after a replay read it, returning the buffer to the pool (and
// forgetting the slot) once every range has been simulated.
func (s *sweepState) releaseTrace(ps *progSweep, fp codegen.Fingerprint) {
	s.retireRange(ps, fp, true)
}

// skipRange retires one architecture range whose replay was answered by
// the result store: no trace was read, but the range bookkeeping must
// advance all the same, or a binary with a mix of cached and fresh
// ranges would pin its trace buffer until the program retires.
func (s *sweepState) skipRange(ps *progSweep, fp codegen.Fingerprint) {
	s.retireRange(ps, fp, false)
}

// retireRange is the shared tail: drop the range (and, for a replay
// that read the trace, the read hold), free the buffer when no range
// and no reader remains. A skip may arrive before any slot exists -
// the store answered before the first trace generation - in which case
// it creates the slot so later ranges inherit correct counts.
func (s *sweepState) retireRange(ps *progSweep, fp codegen.Fingerprint, read bool) {
	s.mu.Lock()
	slot := ps.traces[fp]
	if slot == nil {
		if read {
			s.mu.Unlock()
			return
		}
		slot = &traceSlot{remaining: s.batches}
		ps.traces[fp] = slot
	}
	s.mu.Unlock()
	slot.mu.Lock()
	if read {
		slot.using--
	}
	slot.remaining--
	done := slot.remaining == 0 && slot.using == 0
	var tr *trace.Trace
	if done {
		tr, slot.tr = slot.tr, nil
	}
	slot.mu.Unlock()
	if done {
		s.mu.Lock()
		delete(ps.traces, fp)
		s.mu.Unlock()
		if tr != nil {
			trace.Put(tr)
		}
	}
}

// runCellBatched executes one grid cell through the sweep state:
// identical observable behaviour to runCell, with compilation hoisted
// into the cell's window and trace generation and replay deduplicated
// across byte-identical binaries.
func runCellBatched(ev *Evaluator, s *sweepState, c exploreCell) (ExploreResult, error) {
	req := s.req
	name := req.Programs[c.prog]
	ps := s.prog(c.prog)

	start := (c.opt / s.window) * s.window
	n := s.window
	if start+n > len(req.Opts) {
		n = len(req.Opts) - start
	}
	w := s.windowAt(ps, start)
	w.once.Do(func() {
		cfgs := make([]*opt.Config, n)
		for i := range cfgs {
			cfgs[i] = &req.Opts[start+i]
		}
		w.bt, w.err = ev.TraceBatch(name, cfgs)
		if w.err == nil {
			ev.addTraceReuses(s.countReuses(ps, start, w.bt))
		}
	})

	if w.err != nil {
		s.consume(ps)
		return ExploreResult{}, &pcerr.SimError{Program: name, Setting: c.opt, Arch: c.archStart, Err: w.err}
	}
	li := c.opt - start
	bt := &w.bt[li]
	if bt.Err != nil {
		s.consume(ps)
		return ExploreResult{}, &pcerr.SimError{Program: name, Setting: c.opt, Arch: c.archStart, Err: bt.Err}
	}

	// Twin settings (bt.First != li, or a fingerprint owned by an
	// earlier window) resolve their replay from the memo below - or
	// compute it once for all of them - without generating another
	// trace.
	sc := s.sim(ps, simKey{fp: bt.FP, lo: c.archStart, hi: c.archEnd})
	sc.once.Do(func() {
		archs := req.Archs[c.archStart:c.archEnd]
		// A persistent store answers before any trace exists: the
		// binary fingerprint plus workload parameters address the
		// previous run's replay of exactly this range.
		st := ev.resultStore()
		var runs int
		if st != nil {
			var err error
			if runs, err = ev.Runs(name); err == nil {
				if results, ok := st.Get(bt.FP, runs, ev.cfg, archs); ok {
					sc.runs, sc.results = runs, results
					s.skipRange(ps, bt.FP)
					return
				}
			}
		}
		tr, err := s.traceFor(ev, ps, name, bt)
		if err != nil {
			sc.err = err
			return
		}
		runs = tr.Runs
		if runs < 1 {
			runs = 1
		}
		sc.runs = runs
		sc.results = ev.SimulateBatch(tr, archs)
		s.releaseTrace(ps, bt.FP)
		if st != nil {
			st.Put(bt.FP, runs, ev.cfg, archs, sc.results)
		}
	})
	s.consume(ps)
	if sc.err != nil {
		return ExploreResult{}, &pcerr.SimError{Program: name, Setting: c.opt, Arch: c.archStart, Err: sc.err}
	}

	return ExploreResult{
		ProgIndex: c.prog,
		OptIndex:  c.opt,
		ArchStart: c.archStart,
		Program:   name,
		Config:    req.Opts[c.opt],
		Runs:      sc.runs,
		Results:   sc.results,
	}, nil
}

// countReuses records a freshly built window's fingerprints against the
// program's registry and returns how many of its settings reuse an
// earlier setting's byte-identical binary (within the window or across
// windows). A rebuilt window contributes nothing: its start is already
// marked counted.
func (s *sweepState) countReuses(ps *progSweep, start int, bt []BatchBinary) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps.counted[start] {
		return 0
	}
	ps.counted[start] = true
	var reuses int64
	for i := range bt {
		if bt[i].Err != nil {
			continue
		}
		if bt[i].First != i || ps.seenFPs[bt[i].FP] {
			reuses++
			continue
		}
		ps.seenFPs[bt[i].FP] = true
	}
	return reuses
}

// consume retires one cell; when a program's whole grid has been
// consumed (always, on local runs) its state - windows, memos, trace
// slots - is released.
func (s *sweepState) consume(ps *progSweep) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps.cellsLeft--
	if ps.cellsLeft == 0 {
		delete(s.progs, ps.prog)
		keep := s.built[:0]
		for _, k := range s.built {
			if k.prog != ps.prog {
				keep = append(keep, k)
			}
		}
		s.built = keep
	}
}
