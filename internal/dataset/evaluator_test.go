package dataset

import (
	"math/rand"
	"testing"

	"portcc/internal/opt"
)

// TestTraceCacheLRUKeepsHotEntry pins the eviction policy: the order is
// LRU, refreshed on every Trace hit, so a hot entry (the -O3 baseline
// here) survives an insert-heavy sweep under a cache budget tight enough
// that insertion-order (FIFO) eviction would throw it out every round
// and recompile it.
func TestTraceCacheLRUKeepsHotEntry(t *testing.T) {
	o3 := opt.O3()
	// Calibrate the budget to the program's real trace size: room for
	// about three entries, so every sweep insert forces an eviction
	// while a refreshed hot entry still fits.
	probe := NewEvaluator(EvalConfig{TargetInsns: 4_000, Seed: 1})
	tr, _, err := probe.Trace("crc", &o3)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(EvalConfig{TargetInsns: 4_000, Seed: 1, CacheBudget: 3 * traceBytes(tr)})
	if _, _, err := ev.Trace("crc", &o3); err != nil {
		t.Fatal(err)
	}
	base := ev.Stats().Compiles

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 8; i++ {
		cfg := opt.Random(rng)
		if _, _, err := ev.Trace("crc", &cfg); err != nil {
			t.Fatal(err)
		}
		// The hot entry: under LRU this hit refreshes it past the insert
		// above; under FIFO it would age out and recompile.
		before := ev.Stats().Compiles
		if _, _, err := ev.Trace("crc", &o3); err != nil {
			t.Fatal(err)
		}
		if got := ev.Stats().Compiles; got != before {
			t.Fatalf("round %d: -O3 trace was evicted and recompiled (compiles %d -> %d)", i, before, got)
		}
	}
	if got, want := ev.Stats().Compiles, base+8; got != want {
		t.Fatalf("compiles = %d, want %d (one per fresh setting only)", got, want)
	}
}
