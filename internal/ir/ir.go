// Package ir defines the intermediate representation of the portable
// compiler: modules of functions, functions of basic blocks, blocks of
// straight-line instructions with an explicit terminator.
//
// The IR is a conventional flat CFG. Virtual registers follow a
// "mostly single definition" convention: every register has one defining
// instruction except registers explicitly marked as merge registers
// (loop induction variables and accumulators), which may be redefined.
// The verifier (verify.go) enforces the convention; the global
// optimisation passes rely on it.
package ir

import (
	"fmt"
	"strings"

	"portcc/internal/isa"
)

// Reg names a virtual register. RegNone (0) means "no register".
// After register allocation, values 1..isa.NumRegs denote physical
// registers.
type Reg int32

// RegNone is the absent register.
const RegNone Reg = 0

// Flags carries per-instruction semantic hints set by the program builder
// and consumed by optimisation passes.
type Flags uint16

const (
	// FlagInduction marks the update of a loop induction variable.
	FlagInduction Flags = 1 << iota
	// FlagGuard marks a comparison that feeds a provably-redundant guard
	// branch; value-range propagation may delete it.
	FlagGuard
	// FlagMulByIndex marks a multiplication by a loop induction variable;
	// strength reduction can rewrite it as an incremental add.
	FlagMulByIndex
	// FlagAddrCalc marks an address computation feeding a memory access.
	FlagAddrCalc
	// FlagMerge marks an instruction that redefines a merge register
	// (induction variable or accumulator).
	FlagMerge
	// FlagSpill marks spill code inserted by the register allocator.
	FlagSpill
	// FlagSave marks caller-save/restore code around calls.
	FlagSave
	// FlagPrologue marks function prologue/epilogue code.
	FlagPrologue
	// FlagTailCall marks a call converted to a tail call by the
	// sibling-call optimisation: control does not return to the caller.
	FlagTailCall
)

// MemKind classifies the address stream of a memory instruction. The trace
// generator synthesises concrete addresses per stream according to the kind.
type MemKind uint8

const (
	// MemNone means the instruction is not a memory access.
	MemNone MemKind = iota
	// MemSeq walks an array sequentially with the given stride.
	MemSeq
	// MemStrided walks an array with a large, fixed stride (column walks).
	MemStrided
	// MemRandom touches uniformly random addresses within the working set.
	MemRandom
	// MemPointer models pointer chasing: random within the working set,
	// with the next address dependent on the loaded value.
	MemPointer
	// MemTable reads a read-only lookup table at data-dependent offsets.
	MemTable
	// MemStack touches the small, hot stack frame.
	MemStack
	// MemScalar always touches the same address (an in-memory scalar,
	// promotable to a register by store motion).
	MemScalar
)

var memKindNames = [...]string{
	"none", "seq", "strided", "random", "pointer", "table", "stack", "scalar",
}

// String returns the lower-case stream-kind name.
func (k MemKind) String() string {
	if int(k) < len(memKindNames) {
		return memKindNames[k]
	}
	return fmt.Sprintf("memkind(%d)", uint8(k))
}

// MemRef describes the address stream of a load or store.
type MemRef struct {
	// Stream identifies the address stream; accesses with the same stream
	// id within a program share a cursor and an address region.
	Stream int32
	// Kind selects the address pattern.
	Kind MemKind
	// WSet is the working-set size in bytes for the stream.
	WSet int32
	// Stride is the per-access stride in bytes for Seq/Strided streams.
	Stride int32
	// ReadOnly marks streams that are never stored to (lookup tables);
	// loads from them are pure and eligible for motion.
	ReadOnly bool
}

// Insn is a single IR instruction. Control transfer lives in the block
// terminator, not here; OpCall is the only inter-procedural instruction.
type Insn struct {
	Op     isa.Op
	Def    Reg    // defined register, RegNone if none
	Use    [2]Reg // used registers, RegNone-padded
	Imm    int32  // immediate operand (also spill slot for FlagSpill)
	Mem    MemRef // memory stream for loads/stores
	Callee int32  // callee function index for OpCall, else -1
	Flags  Flags
}

// HasFlag reports whether the instruction carries the given hint flag.
func (in *Insn) HasFlag(f Flags) bool { return in.Flags&f != 0 }

// IsPure reports whether the instruction computes a value from its operands
// only, so recomputation is always legal. Loads are pure only from read-only
// streams.
func (in *Insn) IsPure() bool {
	switch in.Op {
	case isa.OpALU, isa.OpMul, isa.OpMac, isa.OpShift, isa.OpMove:
		return true
	case isa.OpLoad:
		return in.Mem.ReadOnly
	}
	return false
}

// String formats the instruction for dumps and tests.
func (in *Insn) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", in.Op)
	if in.Def != RegNone {
		fmt.Fprintf(&b, " v%d =", in.Def)
	}
	for _, u := range in.Use {
		if u != RegNone {
			fmt.Fprintf(&b, " v%d", u)
		}
	}
	if in.Imm != 0 {
		fmt.Fprintf(&b, " #%d", in.Imm)
	}
	if in.Op.IsMem() {
		fmt.Fprintf(&b, " [%s s%d ws=%d]", in.Mem.Kind, in.Mem.Stream, in.Mem.WSet)
	}
	if in.Op == isa.OpCall {
		fmt.Fprintf(&b, " f%d", in.Callee)
	}
	return b.String()
}

// TermKind enumerates block terminators.
type TermKind uint8

const (
	// TermFall falls through to Fall.
	TermFall TermKind = iota
	// TermJump jumps unconditionally to Taken.
	TermJump
	// TermBranch branches to Taken with probability Prob, else to Fall.
	TermBranch
	// TermRet returns from the function.
	TermRet
)

var termNames = [...]string{"fall", "jump", "branch", "ret"}

// String returns the terminator-kind name.
func (k TermKind) String() string {
	if int(k) < len(termNames) {
		return termNames[k]
	}
	return fmt.Sprintf("term(%d)", uint8(k))
}

// Term is a block terminator. Conditional branches carry profile
// information used both by layout passes and by the trace generator.
type Term struct {
	Kind  TermKind
	Taken int // target block ID for Jump/Branch
	Fall  int // fall-through block ID for Fall/Branch

	// Prob is the probability the branch is taken (Branch only).
	Prob float64
	// Trip, when positive, makes the branch a counted-loop latch: the
	// deterministic outcome pattern is taken Trip-1 times, then not taken
	// (or the reverse when the back edge is the taken edge).
	Trip int32
	// CondReg is the register holding the branch condition, defined by a
	// comparison in this block; RegNone when the condition is synthetic.
	CondReg Reg
	// Guard marks a branch whose outcome is provably constant
	// (Prob is 0 or 1); value-range propagation may remove it.
	Guard bool
	// InvariantIn, when positive, is the loop header block ID of a loop
	// within which this branch's condition is invariant; loop unswitching
	// may hoist it. Zero or negative when not applicable (a loop header
	// can never be block 0, the function entry).
	InvariantIn int
	// Site is a stable identity for the branch assigned by the program
	// builder and preserved through cloning passes. The trace generator
	// derives probabilistic outcomes by hashing (seed, Site, execution
	// index), so branch outcome sequences are identical across different
	// compilations of the same program - the foundation of fair
	// cross-optimisation comparisons.
	Site int32
}

// Block is a basic block: straight-line instructions plus one terminator.
type Block struct {
	ID    int
	Insns []Insn
	Term  Term

	// Align is the byte alignment requested by alignment passes,
	// honoured by the code generator (0 or a power of two).
	Align int

	// Preds caches predecessor block IDs; valid after Func.Analyze.
	Preds []int
	// LoopDepth caches the loop nesting depth; valid after Func.Analyze.
	LoopDepth int
}

// Succs appends the successor block IDs of b to dst and returns it.
func (b *Block) Succs(dst []int) []int {
	switch b.Term.Kind {
	case TermFall:
		dst = append(dst, b.Term.Fall)
	case TermJump:
		dst = append(dst, b.Term.Taken)
	case TermBranch:
		dst = append(dst, b.Term.Taken, b.Term.Fall)
	}
	return dst
}

// NumSuccs returns the number of successors.
func (b *Block) NumSuccs() int {
	switch b.Term.Kind {
	case TermFall, TermJump:
		return 1
	case TermBranch:
		return 2
	}
	return 0
}

// Func is a single function: a CFG whose entry is Blocks[0].
type Func struct {
	Name string
	ID   int
	// Blocks holds the function body; Blocks[0] is the entry block.
	// Block IDs index this slice.
	Blocks []*Block
	// NextReg is the next unused virtual register id.
	NextReg Reg
	// Library marks opaque library code: optimisation passes must leave
	// it untouched (it models pre-compiled libc/libm the compiler cannot
	// see, as for the paper's "library-bound" benchmarks).
	Library bool
	// FrameSize is the stack frame size in bytes after register
	// allocation (spill slots + saved registers).
	FrameSize int32
	// Layout gives block IDs in emission order; nil means natural order.
	// The block-reordering pass rewrites it; the code generator follows it.
	Layout []int
	// Align is the byte alignment of the function entry requested by
	// falign_functions (0 = none).
	Align int

	// Analysis caches, valid after Analyze until the next mutation.
	analysis *analysis
}

// NewReg returns a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := f.NextReg
	f.NextReg++
	return r
}

// Invalidate drops cached analyses after a mutation.
func (f *Func) Invalidate() { f.analysis = nil }

// Size returns the static instruction count of the function including
// terminator control instructions as emitted by the code generator.
func (f *Func) Size() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insns)
		switch b.Term.Kind {
		case TermJump, TermBranch, TermRet:
			n++
		}
	}
	return n
}

// Module is a whole program: a set of functions with a designated entry.
type Module struct {
	Name  string
	Funcs []*Func
	// Entry is the index of the entry function in Funcs.
	Entry int
}

// Size returns the static instruction count of the module.
func (m *Module) Size() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.Size()
	}
	return n
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// String dumps the module in a stable textual form used by tests.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (entry f%d)\n", m.Name, m.Entry)
	for _, f := range m.Funcs {
		lib := ""
		if f.Library {
			lib = " [library]"
		}
		fmt.Fprintf(&b, "func f%d %s%s\n", f.ID, f.Name, lib)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "  b%d:\n", blk.ID)
			for i := range blk.Insns {
				fmt.Fprintf(&b, "    %s\n", blk.Insns[i].String())
			}
			t := blk.Term
			switch t.Kind {
			case TermFall:
				fmt.Fprintf(&b, "    fall b%d\n", t.Fall)
			case TermJump:
				fmt.Fprintf(&b, "    jump b%d\n", t.Taken)
			case TermBranch:
				fmt.Fprintf(&b, "    branch b%d else b%d p=%.2f trip=%d\n",
					t.Taken, t.Fall, t.Prob, t.Trip)
			case TermRet:
				fmt.Fprintf(&b, "    ret\n")
			}
		}
	}
	return b.String()
}
