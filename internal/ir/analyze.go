package ir

// analysis caches the CFG facts the optimisation passes consume: reverse
// postorder, immediate dominators and natural loops.
type analysis struct {
	rpo    []int // block IDs in reverse postorder
	rpoPos []int // rpoPos[blockID] = position in rpo, -1 if unreachable
	idom   []int // immediate dominator per block, -1 for entry/unreachable
	loops  []*Loop
	loopOf []int // innermost loop index per block, -1 if none
}

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	// Header is the loop header block ID.
	Header int
	// Latch is the source block of the back edge.
	Latch int
	// Blocks lists the member block IDs (header first).
	Blocks []int
	// Preheader is a block outside the loop whose single successor is the
	// header and which is the header's only out-of-loop predecessor;
	// -1 when no such block exists.
	Preheader int
	// Parent is the index of the enclosing loop in Func loops, -1 if top.
	Parent int
	// Depth is the nesting depth (outermost = 1).
	Depth int
}

// Contains reports whether the loop contains block id.
func (l *Loop) Contains(id int) bool {
	for _, b := range l.Blocks {
		if b == id {
			return true
		}
	}
	return false
}

// Analyze computes (or returns cached) CFG analyses. Passes must call
// Invalidate after structural mutation.
func (f *Func) Analyze() {
	if f.analysis != nil {
		return
	}
	a := &analysis{}
	a.computeOrder(f)
	a.computeDominators(f)
	a.computeLoops(f)
	f.analysis = a
	for _, b := range f.Blocks {
		b.LoopDepth = 0
		if li := a.loopOf[b.ID]; li >= 0 {
			b.LoopDepth = a.loops[li].Depth
		}
	}
}

// RPO returns block IDs in reverse postorder (entry first). Unreachable
// blocks are omitted.
func (f *Func) RPO() []int {
	f.Analyze()
	return f.analysis.rpo
}

// Reachable reports whether block id is reachable from the entry.
func (f *Func) Reachable(id int) bool {
	f.Analyze()
	return f.analysis.rpoPos[id] >= 0
}

// Idom returns the immediate dominator of block id, or -1.
func (f *Func) Idom(id int) int {
	f.Analyze()
	return f.analysis.idom[id]
}

// Dominates reports whether block a dominates block b.
func (f *Func) Dominates(a, b int) bool {
	f.Analyze()
	for b != -1 {
		if a == b {
			return true
		}
		b = f.analysis.idom[b]
	}
	return false
}

// Loops returns the natural loops of the function, outermost first.
func (f *Func) Loops() []*Loop {
	f.Analyze()
	return f.analysis.loops
}

// InnermostLoop returns the innermost loop containing block id, or nil.
func (f *Func) InnermostLoop(id int) *Loop {
	f.Analyze()
	if li := f.analysis.loopOf[id]; li >= 0 {
		return f.analysis.loops[li]
	}
	return nil
}

// computeOrder fills rpo/rpoPos and block Preds via iterative DFS.
func (a *analysis) computeOrder(f *Func) {
	n := len(f.Blocks)
	a.rpoPos = make([]int, n)
	for i := range a.rpoPos {
		a.rpoPos[i] = -1
		f.Blocks[i].Preds = f.Blocks[i].Preds[:0]
	}
	visited := make([]bool, n)
	post := make([]int, 0, n)
	type frame struct {
		id    int
		succs []int
		next  int
	}
	var succBuf []int
	stack := []frame{{id: 0, succs: f.Blocks[0].Succs(nil)}}
	visited[0] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(fr.succs) {
			s := fr.succs[fr.next]
			fr.next++
			if !visited[s] {
				visited[s] = true
				succBuf = f.Blocks[s].Succs(nil)
				stack = append(stack, frame{id: s, succs: succBuf})
			}
			continue
		}
		post = append(post, fr.id)
		stack = stack[:len(stack)-1]
	}
	a.rpo = make([]int, len(post))
	for i, id := range post {
		a.rpo[len(post)-1-i] = id
	}
	for i, id := range a.rpo {
		a.rpoPos[id] = i
	}
	// Predecessors, for reachable blocks only.
	for _, id := range a.rpo {
		b := f.Blocks[id]
		for _, s := range b.Succs(nil) {
			f.Blocks[s].Preds = append(f.Blocks[s].Preds, id)
		}
	}
}

// computeDominators is the Cooper-Harvey-Kennedy iterative algorithm.
func (a *analysis) computeDominators(f *Func) {
	n := len(f.Blocks)
	a.idom = make([]int, n)
	for i := range a.idom {
		a.idom[i] = -1
	}
	if len(a.rpo) == 0 {
		return
	}
	entry := a.rpo[0]
	a.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, id := range a.rpo[1:] {
			b := f.Blocks[id]
			newIdom := -1
			for _, p := range b.Preds {
				if a.idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = a.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && a.idom[id] != newIdom {
				a.idom[id] = newIdom
				changed = true
			}
		}
	}
	a.idom[entry] = -1
}

func (a *analysis) intersect(b1, b2 int) int {
	for b1 != b2 {
		for a.rpoPos[b1] > a.rpoPos[b2] {
			b1 = a.idom[b1]
		}
		for a.rpoPos[b2] > a.rpoPos[b1] {
			b2 = a.idom[b2]
		}
	}
	return b1
}

// computeLoops finds natural loops from back edges (edges whose target
// dominates the source), merges loops sharing a header and derives nesting.
func (a *analysis) computeLoops(f *Func) {
	n := len(f.Blocks)
	a.loopOf = make([]int, n)
	for i := range a.loopOf {
		a.loopOf[i] = -1
	}
	byHeader := map[int]*Loop{}
	var order []int
	for _, id := range a.rpo {
		b := f.Blocks[id]
		for _, s := range b.Succs(nil) {
			if !a.dominates(s, id) {
				continue
			}
			l, ok := byHeader[s]
			if !ok {
				l = &Loop{Header: s, Latch: id, Parent: -1, Preheader: -1}
				byHeader[s] = l
				order = append(order, s)
			}
			a.collectLoopBody(f, l, id)
		}
	}
	for _, h := range order {
		a.loops = append(a.loops, byHeader[h])
	}
	// Nesting: loop A is inside loop B if B contains A's header and A != B.
	for i, li := range a.loops {
		for j, lj := range a.loops {
			if i == j || !lj.Contains(li.Header) {
				continue
			}
			// Choose the smallest enclosing loop as parent.
			if li.Parent == -1 || len(lj.Blocks) < len(a.loops[li.Parent].Blocks) {
				li.Parent = j
			}
		}
	}
	for _, l := range a.loops {
		d := 1
		for p := l.Parent; p != -1; p = a.loops[p].Parent {
			d++
		}
		l.Depth = d
	}
	// Innermost loop per block: deepest loop containing it.
	for i, l := range a.loops {
		for _, id := range l.Blocks {
			cur := a.loopOf[id]
			if cur == -1 || a.loops[cur].Depth < l.Depth {
				a.loopOf[id] = i
			}
		}
	}
	// Preheaders.
	for _, l := range a.loops {
		h := f.Blocks[l.Header]
		cand := -1
		ok := true
		for _, p := range h.Preds {
			if l.Contains(p) {
				continue
			}
			if cand != -1 {
				ok = false
				break
			}
			cand = p
		}
		if ok && cand != -1 && f.Blocks[cand].NumSuccs() == 1 {
			l.Preheader = cand
		}
	}
}

func (a *analysis) dominates(x, y int) bool {
	for y != -1 {
		if x == y {
			return true
		}
		y = a.idom[y]
	}
	return false
}

// collectLoopBody grows loop l with all blocks that reach the latch without
// passing through the header (the standard natural-loop body computation).
func (a *analysis) collectLoopBody(f *Func, l *Loop, latch int) {
	in := map[int]bool{l.Header: true}
	for _, b := range l.Blocks {
		in[b] = true
	}
	if len(l.Blocks) == 0 {
		l.Blocks = append(l.Blocks, l.Header)
	}
	stack := []int{latch}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if in[id] {
			continue
		}
		in[id] = true
		l.Blocks = append(l.Blocks, id)
		for _, p := range f.Blocks[id].Preds {
			stack = append(stack, p)
		}
	}
}
