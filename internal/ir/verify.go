package ir

import (
	"fmt"

	"portcc/internal/isa"
)

// Verify checks the structural invariants of the module:
//
//   - terminator targets are valid block IDs;
//   - the entry function index is valid;
//   - call targets are valid function indices and the call graph is acyclic
//     (the trace generator requires bounded call stacks);
//   - registers obey the mostly-single-definition convention: a register is
//     defined at most once unless every definition carries FlagMerge;
//   - memory instructions carry a memory reference, non-memory ones do not;
//   - counted latches (Trip > 0) are conditional branches.
//
// Verify is used by tests and by the program builder; passes are expected
// to preserve these invariants.
func (m *Module) Verify() error {
	if m.Entry < 0 || m.Entry >= len(m.Funcs) {
		return fmt.Errorf("ir: module %q: entry index %d out of range", m.Name, m.Entry)
	}
	for _, f := range m.Funcs {
		if err := f.verify(m); err != nil {
			return fmt.Errorf("ir: module %q: %w", m.Name, err)
		}
	}
	if cyc := m.callCycle(); cyc != "" {
		return fmt.Errorf("ir: module %q: recursive call graph via %s", m.Name, cyc)
	}
	return nil
}

func (f *Func) verify(m *Module) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("func %s: no blocks", f.Name)
	}
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("func %s: block at index %d has ID %d", f.Name, i, b.ID)
		}
		if err := f.verifyTerm(b); err != nil {
			return err
		}
		for j := range b.Insns {
			if err := f.verifyInsn(m, b, &b.Insns[j]); err != nil {
				return fmt.Errorf("func %s b%d insn %d: %w", f.Name, b.ID, j, err)
			}
		}
	}
	// Single-definition convention.
	defs := map[Reg]int{}
	merge := map[Reg]bool{}
	for _, b := range f.Blocks {
		for j := range b.Insns {
			in := &b.Insns[j]
			if in.Def == RegNone {
				continue
			}
			defs[in.Def]++
			if !in.HasFlag(FlagMerge) && !in.HasFlag(FlagSpill) && !in.HasFlag(FlagSave) {
				merge[in.Def] = merge[in.Def] || false
			} else {
				merge[in.Def] = true
			}
			if in.Def >= f.NextReg {
				return fmt.Errorf("func %s: register v%d >= NextReg %d", f.Name, in.Def, f.NextReg)
			}
		}
	}
	for r, n := range defs {
		if n > 1 && !merge[r] {
			return fmt.Errorf("func %s: register v%d defined %d times without FlagMerge", f.Name, r, n)
		}
	}
	return nil
}

func (f *Func) verifyTerm(b *Block) error {
	t := b.Term
	check := func(id int, what string) error {
		if id < 0 || id >= len(f.Blocks) {
			return fmt.Errorf("func %s b%d: %s target b%d out of range", f.Name, b.ID, what, id)
		}
		return nil
	}
	switch t.Kind {
	case TermFall:
		return check(t.Fall, "fall")
	case TermJump:
		return check(t.Taken, "jump")
	case TermBranch:
		if err := check(t.Taken, "branch taken"); err != nil {
			return err
		}
		if err := check(t.Fall, "branch fall"); err != nil {
			return err
		}
		if t.Prob < 0 || t.Prob > 1 {
			return fmt.Errorf("func %s b%d: branch probability %g out of [0,1]", f.Name, b.ID, t.Prob)
		}
		if t.Trip < 0 {
			return fmt.Errorf("func %s b%d: negative trip %d", f.Name, b.ID, t.Trip)
		}
		return nil
	case TermRet:
		if t.Trip != 0 {
			return fmt.Errorf("func %s b%d: ret with trip", f.Name, b.ID)
		}
		return nil
	}
	return fmt.Errorf("func %s b%d: unknown terminator kind %d", f.Name, b.ID, t.Kind)
}

func (f *Func) verifyInsn(m *Module, b *Block, in *Insn) error {
	if in.Op.IsMem() {
		if in.Mem.Kind == MemNone {
			return fmt.Errorf("memory op %s without stream", in.Op)
		}
		if in.Mem.WSet <= 0 {
			return fmt.Errorf("memory op %s with working set %d", in.Op, in.Mem.WSet)
		}
	} else if in.Mem.Kind != MemNone {
		return fmt.Errorf("non-memory op %s with stream", in.Op)
	}
	switch in.Op {
	case isa.OpCall:
		if in.Callee < 0 || int(in.Callee) >= len(m.Funcs) {
			return fmt.Errorf("call target f%d out of range", in.Callee)
		}
	case isa.OpBranch, isa.OpJump, isa.OpRet:
		return fmt.Errorf("control op %s in block body", in.Op)
	}
	return nil
}

// callCycle returns a description of a call-graph cycle, or "" if acyclic.
func (m *Module) callCycle() string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(m.Funcs))
	var visit func(i int) string
	visit = func(i int) string {
		color[i] = grey
		for _, b := range m.Funcs[i].Blocks {
			for j := range b.Insns {
				in := &b.Insns[j]
				if in.Op != isa.OpCall {
					continue
				}
				c := int(in.Callee)
				switch color[c] {
				case grey:
					return fmt.Sprintf("%s -> %s", m.Funcs[i].Name, m.Funcs[c].Name)
				case white:
					if s := visit(c); s != "" {
						return s
					}
				}
			}
		}
		color[i] = black
		return ""
	}
	for i := range m.Funcs {
		if color[i] == white {
			if s := visit(i); s != "" {
				return s
			}
		}
	}
	return ""
}
