package ir

// Clone returns a deep copy of the module. The optimisation pipeline
// mutates modules in place, so the dataset generator clones the pristine
// program once per optimisation setting.
func (m *Module) Clone() *Module {
	out := &Module{Name: m.Name, Entry: m.Entry, Funcs: make([]*Func, len(m.Funcs))}
	for i, f := range m.Funcs {
		out.Funcs[i] = f.Clone()
	}
	return out
}

// Clone returns a deep copy of the function with analysis caches dropped.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:      f.Name,
		ID:        f.ID,
		NextReg:   f.NextReg,
		Library:   f.Library,
		FrameSize: f.FrameSize,
		Align:     f.Align,
		Blocks:    make([]*Block, len(f.Blocks)),
	}
	if f.Layout != nil {
		nf.Layout = append([]int(nil), f.Layout...)
	}
	for i, b := range f.Blocks {
		nb := &Block{
			ID:    b.ID,
			Term:  b.Term,
			Align: b.Align,
			Insns: make([]Insn, len(b.Insns)),
		}
		copy(nb.Insns, b.Insns)
		nf.Blocks[i] = nb
	}
	return nf
}
