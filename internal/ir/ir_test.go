package ir

import (
	"testing"

	"portcc/internal/isa"
)

// diamond builds the classic if/else diamond: b0 -> {b1, b2} -> b3.
func diamond() *Func {
	f := &Func{Name: "diamond", NextReg: 10}
	f.Blocks = []*Block{
		{ID: 0, Term: Term{Kind: TermBranch, Taken: 1, Fall: 2, Prob: 0.5}},
		{ID: 1, Term: Term{Kind: TermJump, Taken: 3}},
		{ID: 2, Term: Term{Kind: TermFall, Fall: 3}},
		{ID: 3, Term: Term{Kind: TermRet}},
	}
	return f
}

// loopFunc builds entry -> preheader -> header <-> latch -> exit with a
// counted back edge.
func loopFunc() *Func {
	f := &Func{Name: "loop", NextReg: 10}
	f.Blocks = []*Block{
		{ID: 0, Term: Term{Kind: TermFall, Fall: 1}},
		{ID: 1, Term: Term{Kind: TermFall, Fall: 2}},                       // preheader
		{ID: 2, Term: Term{Kind: TermFall, Fall: 3}},                       // header
		{ID: 3, Term: Term{Kind: TermBranch, Taken: 2, Fall: 4, Trip: 10}}, // latch
		{ID: 4, Term: Term{Kind: TermRet}},
	}
	return f
}

func TestDominators(t *testing.T) {
	f := diamond()
	if !f.Dominates(0, 3) {
		t.Error("entry must dominate the join")
	}
	if f.Dominates(1, 3) || f.Dominates(2, 3) {
		t.Error("neither arm dominates the join")
	}
	if f.Idom(3) != 0 {
		t.Errorf("idom(join) = %d, want 0", f.Idom(3))
	}
	if f.Idom(1) != 0 || f.Idom(2) != 0 {
		t.Error("arms are immediately dominated by the entry")
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	f := diamond()
	rpo := f.RPO()
	if len(rpo) != 4 || rpo[0] != 0 {
		t.Fatalf("rpo = %v", rpo)
	}
	// Join must come after both arms.
	pos := map[int]int{}
	for i, id := range rpo {
		pos[id] = i
	}
	if pos[3] < pos[1] || pos[3] < pos[2] {
		t.Errorf("join before its predecessors in RPO: %v", rpo)
	}
}

func TestLoopDetection(t *testing.T) {
	f := loopFunc()
	loops := f.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 2 || l.Latch != 3 {
		t.Errorf("loop header/latch = %d/%d, want 2/3", l.Header, l.Latch)
	}
	if l.Preheader != 1 {
		t.Errorf("preheader = %d, want 1", l.Preheader)
	}
	if !l.Contains(2) || !l.Contains(3) || l.Contains(4) {
		t.Error("loop body must be exactly {header, latch}")
	}
	if f.Blocks[2].LoopDepth != 1 || f.Blocks[4].LoopDepth != 0 {
		t.Error("loop depth annotation wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	// entry -> oh(1) -> ih(2) <-> il(3); il exits to ol(4) which backs to oh; exit 5.
	f := &Func{Name: "nested", NextReg: 4}
	f.Blocks = []*Block{
		{ID: 0, Term: Term{Kind: TermFall, Fall: 1}},
		{ID: 1, Term: Term{Kind: TermFall, Fall: 2}},                      // outer header
		{ID: 2, Term: Term{Kind: TermFall, Fall: 3}},                      // inner header
		{ID: 3, Term: Term{Kind: TermBranch, Taken: 2, Fall: 4, Trip: 4}}, // inner latch
		{ID: 4, Term: Term{Kind: TermBranch, Taken: 1, Fall: 5, Trip: 8}}, // outer latch
		{ID: 5, Term: Term{Kind: TermRet}},
	}
	loops := f.Loops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	var inner, outer *Loop
	for _, l := range loops {
		if l.Header == 2 {
			inner = l
		}
		if l.Header == 1 {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("missing inner or outer loop")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths inner=%d outer=%d, want 2/1", inner.Depth, outer.Depth)
	}
	if f.Blocks[3].LoopDepth != 2 {
		t.Errorf("inner latch depth = %d, want 2", f.Blocks[3].LoopDepth)
	}
}

func TestUnreachableExcludedFromRPO(t *testing.T) {
	f := diamond()
	f.Blocks = append(f.Blocks, &Block{ID: 4, Term: Term{Kind: TermRet}})
	f.Invalidate()
	if f.Reachable(4) {
		t.Error("block 4 should be unreachable")
	}
	if len(f.RPO()) != 4 {
		t.Errorf("rpo should exclude unreachable blocks: %v", f.RPO())
	}
}

func TestVerifyCatchesBadTargets(t *testing.T) {
	m := &Module{Name: "bad", Funcs: []*Func{diamond()}}
	m.Funcs[0].ID = 0
	m.Funcs[0].Blocks[1].Term.Taken = 99
	if err := m.Verify(); err == nil {
		t.Error("out-of-range branch target not caught")
	}
}

func TestVerifyCatchesDoubleDef(t *testing.T) {
	f := diamond()
	f.Blocks[0].Insns = []Insn{
		{Op: isa.OpALU, Def: 1},
		{Op: isa.OpALU, Def: 1},
	}
	m := &Module{Name: "dd", Funcs: []*Func{f}}
	if err := m.Verify(); err == nil {
		t.Error("double definition without FlagMerge not caught")
	}
	// With FlagMerge it is legal.
	f.Blocks[0].Insns[0].Flags |= FlagMerge
	f.Blocks[0].Insns[1].Flags |= FlagMerge
	if err := m.Verify(); err != nil {
		t.Errorf("merge-flagged redefinition rejected: %v", err)
	}
}

func TestVerifyCatchesRecursion(t *testing.T) {
	a := &Func{Name: "a", ID: 0, NextReg: 1, Blocks: []*Block{{ID: 0,
		Insns: []Insn{{Op: isa.OpCall, Callee: 1}}, Term: Term{Kind: TermRet}}}}
	b := &Func{Name: "b", ID: 1, NextReg: 1, Blocks: []*Block{{ID: 0,
		Insns: []Insn{{Op: isa.OpCall, Callee: 0}}, Term: Term{Kind: TermRet}}}}
	m := &Module{Name: "rec", Funcs: []*Func{a, b}}
	if err := m.Verify(); err == nil {
		t.Error("mutual recursion not caught")
	}
}

func TestVerifyCatchesMemViolations(t *testing.T) {
	f := diamond()
	f.Blocks[0].Insns = []Insn{{Op: isa.OpLoad, Def: 1}} // no stream
	m := &Module{Name: "mem", Funcs: []*Func{f}}
	if err := m.Verify(); err == nil {
		t.Error("load without stream not caught")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := loopFunc()
	f.Blocks[2].Insns = []Insn{{Op: isa.OpALU, Def: 1, Imm: 42}}
	m := &Module{Name: "c", Funcs: []*Func{f}}
	c := m.Clone()
	c.Funcs[0].Blocks[2].Insns[0].Imm = 99
	c.Funcs[0].Blocks[3].Term.Trip = 77
	if f.Blocks[2].Insns[0].Imm != 42 {
		t.Error("clone shares instruction storage with the original")
	}
	if f.Blocks[3].Term.Trip != 10 {
		t.Error("clone shares terminator state with the original")
	}
}

func TestSuccsAndSize(t *testing.T) {
	f := diamond()
	if n := f.Blocks[0].NumSuccs(); n != 2 {
		t.Errorf("branch has %d succs, want 2", n)
	}
	if n := f.Blocks[3].NumSuccs(); n != 0 {
		t.Errorf("ret has %d succs, want 0", n)
	}
	// Size counts terminator control instructions.
	want := 0 + 1 /*branch*/ + 1 /*jump*/ + 0 /*fall*/ + 1 /*ret*/
	if got := f.Size(); got != want {
		t.Errorf("Size() = %d, want %d", got, want)
	}
}

func TestInsnString(t *testing.T) {
	in := Insn{Op: isa.OpLoad, Def: 3, Mem: MemRef{Stream: 2, Kind: MemSeq, WSet: 64, Stride: 4}}
	if s := in.String(); s == "" {
		t.Error("empty instruction dump")
	}
	if (&Insn{Op: isa.OpALU}).IsPure() != true {
		t.Error("ALU must be pure")
	}
	if (&Insn{Op: isa.OpLoad, Mem: MemRef{Kind: MemSeq}}).IsPure() {
		t.Error("streaming load must not be pure")
	}
	if !(&Insn{Op: isa.OpLoad, Mem: MemRef{Kind: MemTable, ReadOnly: true}}).IsPure() {
		t.Error("read-only table load is pure")
	}
}
