package faultnet

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// pair returns a faulted server-side connection (accepted through a
// wrapped listener) and the raw client side talking to it.
func pair(t *testing.T, f Fault) (server net.Conn, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	fln := Wrap(ln, func(int) Fault { return f })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := fln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	server, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { server.Close() })
	return server, client
}

// TestCloseAfterReads: the scheduled number of reads succeed, the next
// one kills the connection, and the peer observes the death.
func TestCloseAfterReads(t *testing.T) {
	server, client := pair(t, Fault{CloseAfterReads: 2})
	go func() {
		for i := 0; i < 4; i++ {
			client.Write([]byte{byte(i)})
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < 2; i++ {
		if _, err := io.ReadFull(server, buf); err != nil {
			t.Fatalf("read %d within budget: %v", i, err)
		}
	}
	if _, err := server.Read(buf); err == nil {
		t.Fatal("third read succeeded past a CloseAfterReads: 2 budget")
	}
	// The underlying close reaches the peer: its next read fails too.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("peer read succeeded after the faulted side died")
	}
}

// TestCloseAfterWritesMidWrite: the fatal write delivers a truncated
// prefix when MidWrite is set, modelling a frame cut mid-stream.
func TestCloseAfterWritesMidWrite(t *testing.T) {
	server, client := pair(t, Fault{CloseAfterWrites: 1, MidWrite: true})
	if _, err := server.Write([]byte("abcd")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := server.Write([]byte("efgh")); err == nil {
		t.Fatal("second write succeeded past a CloseAfterWrites: 1 budget")
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(client)
	if !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("peer received %q, want the full first write plus half the fatal one (%q)", got, "abcdef")
	}
}

// TestAcceptReset: the connection is dead on arrival - the server's
// first read fails, as does the client's.
func TestAcceptReset(t *testing.T) {
	server, client := pair(t, Fault{AcceptReset: true})
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err == nil {
		t.Fatal("read on a reset-on-accept connection succeeded")
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("peer read on a reset-on-accept connection succeeded")
	}
}

// TestSeededDeterministic: the same seed yields the same schedule, and
// connections past the faulted prefix are clean - every plan heals.
func TestSeededDeterministic(t *testing.T) {
	a, b := Seeded(42, 8), Seeded(42, 8)
	for i := 0; i < 12; i++ {
		fa, fb := a(i), b(i)
		if !reflect.DeepEqual(fa, fb) {
			t.Fatalf("seed 42 conn %d differs across derivations: %+v vs %+v", i, fa, fb)
		}
		if i >= 8 && fa != (Fault{}) {
			t.Fatalf("conn %d past the faulted prefix is not clean: %+v", i, fa)
		}
	}
	if reflect.DeepEqual(Seeded(1, 4)(0), Seeded(2, 4)(0)) && reflect.DeepEqual(Seeded(1, 4)(1), Seeded(2, 4)(1)) &&
		reflect.DeepEqual(Seeded(1, 4)(2), Seeded(2, 4)(2)) && reflect.DeepEqual(Seeded(1, 4)(3), Seeded(2, 4)(3)) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}
