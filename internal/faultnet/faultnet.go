// Package faultnet wraps net.Listener/net.Conn with a deterministic
// fault schedule, for chaos-testing the coordinator/worker protocol of
// distributed exploration. A wrapped listener applies one Fault per
// accepted connection, chosen by an arbitrary plan function - typically
// Seeded, which derives the whole schedule from one integer so a failing
// chaos run replays exactly.
//
// Faults model the ways real shard connections die: reset on accept (a
// daemon that crashes during the handshake), death after a fixed number
// of reads or writes (a daemon kill -9'd mid-run), death halfway through
// a write (a truncated frame on the wire), and per-operation delays (a
// congested or flaky link). The wrapper never reorders or corrupts
// delivered bytes, so every surviving byte stream is a legal prefix of
// the real one - exactly the failure surface reconnect-with-requeue must
// absorb.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault is the failure schedule of one accepted connection. The zero
// value is a fault-free connection.
type Fault struct {
	// AcceptReset closes the connection immediately on accept, before
	// any byte moves: the coordinator sees a dial that succeeds and a
	// handshake that dies.
	AcceptReset bool
	// CloseAfterReads kills the connection after that many successful
	// Read calls (0 = never). One gob frame is one or more reads, so
	// small counts die inside the handshake and larger ones mid-run.
	CloseAfterReads int
	// CloseAfterWrites kills the connection after that many successful
	// Write calls (0 = never).
	CloseAfterWrites int
	// MidWrite, with CloseAfterWrites, writes half of the fatal write's
	// buffer before dying, leaving a truncated frame on the peer's
	// stream instead of a clean cut.
	MidWrite bool
	// ReadDelay/WriteDelay pause before every Read/Write, simulating a
	// slow link (long enough delays trip the coordinator's heartbeat
	// grace and count as a death without any close).
	ReadDelay, WriteDelay time.Duration
}

// Plan chooses the Fault for the n-th accepted connection (0-based).
type Plan func(conn int) Fault

// Seeded derives a deterministic chaos plan from one seed: each of the
// first conns connections gets a random fault mix, and every connection
// after them is fault-free, so a run under any seed eventually heals and
// must terminate. The same seed always yields the same schedule.
func Seeded(seed int64, conns int) Plan {
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, conns)
	for i := range faults {
		f := &faults[i]
		switch rng.Intn(4) {
		case 0:
			f.AcceptReset = true
		case 1:
			f.CloseAfterReads = 1 + rng.Intn(12)
		case 2:
			f.CloseAfterWrites = 1 + rng.Intn(12)
			f.MidWrite = rng.Intn(2) == 0
		case 3:
			f.CloseAfterReads = 4 + rng.Intn(12)
			f.WriteDelay = time.Duration(rng.Intn(3)) * time.Millisecond
		}
	}
	return func(conn int) Fault {
		if conn < len(faults) {
			return faults[conn]
		}
		return Fault{}
	}
}

// Listener wraps a net.Listener, applying plan to each accepted
// connection in accept order.
type Listener struct {
	net.Listener
	plan Plan

	mu    sync.Mutex
	conns int
}

// Wrap returns ln with the fault plan applied per accepted connection.
// A nil plan accepts fault-free connections.
func Wrap(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

// Accepted returns how many connections have been accepted so far - the
// index the next connection's fault will be drawn at.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conns
}

// Accept implements net.Listener. A connection whose fault is
// AcceptReset is closed before it is returned to the server loop; the
// server still sees it (and fails its handshake read), mirroring a peer
// that died between connect and hello.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	n := l.conns
	l.conns++
	l.mu.Unlock()
	var f Fault
	if l.plan != nil {
		f = l.plan(n)
	}
	fc := &Conn{Conn: nc, fault: f}
	if f.AcceptReset {
		fc.kill()
	}
	return fc, nil
}

// Conn is one faulted connection. It satisfies net.Conn; reads and
// writes pass through until the schedule's budget expires, then the
// underlying connection is closed (both directions - TCP surfaces the
// close to the peer as EOF or a reset, exactly like a killed daemon).
type Conn struct {
	net.Conn
	fault Fault

	mu     sync.Mutex
	reads  int
	writes int
	dead   bool
}

func (c *Conn) kill() {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	c.Conn.Close()
}

// Read implements net.Conn, dying after the scheduled read budget.
func (c *Conn) Read(b []byte) (int, error) {
	if c.fault.ReadDelay > 0 {
		time.Sleep(c.fault.ReadDelay)
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	exhausted := c.fault.CloseAfterReads > 0 && c.reads >= c.fault.CloseAfterReads
	c.mu.Unlock()
	if exhausted {
		c.kill()
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Read(b)
	if err == nil {
		c.mu.Lock()
		c.reads++
		c.mu.Unlock()
	}
	return n, err
}

// Write implements net.Conn, dying after the scheduled write budget -
// mid-buffer when MidWrite is set, so the peer sees a truncated frame.
func (c *Conn) Write(b []byte) (int, error) {
	if c.fault.WriteDelay > 0 {
		time.Sleep(c.fault.WriteDelay)
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	exhausted := c.fault.CloseAfterWrites > 0 && c.writes >= c.fault.CloseAfterWrites
	c.mu.Unlock()
	if exhausted {
		if c.fault.MidWrite && len(b) > 1 {
			c.Conn.Write(b[:len(b)/2])
		}
		c.kill()
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Write(b)
	if err == nil {
		c.mu.Lock()
		c.writes++
		c.mu.Unlock()
	}
	return n, err
}
