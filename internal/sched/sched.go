// Package sched decouples exploration-cell scheduling from cell
// execution. A Job describes a grid of independently executable cells; an
// Executor schedules them - in-process over a bounded worker pool
// (Local), or sharded over TCP to worker daemons (Remote), with Serve
// providing the daemon-side serve loop. The package is transport
// machinery only: it never inspects job specs or cell payloads, which
// cross shard boundaries as gob-registered interface values, so any
// embarrassingly parallel grid with serialisable work units can ride it.
//
// Every executor honours the same deterministic error contract,
// inherited from the in-process pool it generalises: dispatch is in cell
// index order, dispatch stops on the first cell failure, already
// dispatched cells finish (and are still emitted), and the reported
// error is the lowest-indexed failing cell - independent of worker
// scheduling, shard count, or shard deaths.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one schedulable grid of cells.
type Job struct {
	// Spec is the serialisable description of the whole grid, shipped
	// once per shard connection so a remote worker can execute any cell.
	// Local execution never touches it. The concrete type must be
	// registered with encoding/gob by the application layer.
	Spec any
	// Cells is the number of work cells in the grid; cell indices run
	// [0, Cells).
	Cells int
	// Format is the application schema version carried by the wire
	// handshake (for exploration jobs, dataset.FormatVersion): shards
	// built against a different schema are refused with a typed error.
	Format int
	// Run executes one cell in-process on a worker slot and returns its
	// payload. Local executors (and the daemon on the far side of a
	// Remote) call it with slot in [0, Workers(workers, n)); at most one
	// cell runs on a slot at a time, so per-slot state needs no locking.
	Run func(slot, index int) (any, error)
}

// Executor schedules a job's cells, delivering each completed cell
// through emit exactly once. Emit may be called concurrently from
// multiple goroutines; it must return (possibly abandoning delivery)
// once ctx is cancelled, or the executor cannot drain. Execute blocks
// until every internal goroutine has exited and returns the number of
// cells completed plus the deterministic lowest-indexed cell error (nil
// if none). Pure context cancellation is not an error here: the caller
// distinguishes it by checking ctx.Err(), keeping cell failures ranked
// above cancellation.
type Executor interface {
	Execute(ctx context.Context, job Job, emit func(index int, payload any)) (done int, err error)
}

// Workers resolves a requested worker count against n jobs: <=0 selects
// GOMAXPROCS, and the pool never exceeds n. Run applies this clamp
// itself; callers sizing per-slot state use the same function so the
// slot range [0, Workers(workers, n)) is a single shared contract.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Run fans jobs 0..n-1 over a pool of Workers(workers, n) goroutines.
// work(slot, index) is called with slot in [0, Workers(workers, n));
// at most one job runs on a slot at a time, so per-slot state
// (evaluators, caches) needs no locking. Run blocks until every worker
// has exited and returns the number of jobs that completed successfully
// plus the lowest-indexed job error, nil if none. Context cancellation
// stops dispatch and skips remaining jobs promptly; the caller
// distinguishes it by checking ctx.Err() after Run returns.
func Run(ctx context.Context, workers, n int, work func(slot, index int) error) (done int, err error) {
	workers = Workers(workers, n)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstIdx  int
		firstErr  error
		stopped   atomic.Bool
		completed atomic.Int64
	)
	fail := func(idx int, err error) {
		mu.Lock()
		if firstErr == nil || idx < firstIdx {
			firstIdx, firstErr = idx, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	// Dispatch is in index order, so every job below a failing index has
	// already been handed out; running those (and only those) after a
	// failure makes the reported error the lowest failing index among
	// the dispatched jobs, independent of worker scheduling.
	skip := func(idx int) bool {
		if !stopped.Load() {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil && idx > firstIdx
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil || skip(idx) {
					continue
				}
				if err := work(slot, idx); err != nil {
					fail(idx, err)
				} else {
					completed.Add(1)
				}
			}
		}(w)
	}
dispatch:
	for i := 0; i < n; i++ {
		if stopped.Load() {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return int(completed.Load()), firstErr
}

// Local executes a job's cells in-process: the grid fans over a bounded
// worker pool via Run, with the pool's deterministic first-error and
// prompt-cancellation semantics.
type Local struct {
	// Workers bounds the pool (0 = GOMAXPROCS).
	Workers int
}

// Execute implements Executor.
func (l Local) Execute(ctx context.Context, job Job, emit func(index int, payload any)) (int, error) {
	return Run(ctx, l.Workers, job.Cells, func(slot, index int) error {
		payload, err := job.Run(slot, index)
		if err != nil {
			return err
		}
		emit(index, payload)
		return nil
	})
}
