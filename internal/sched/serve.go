// The worker-daemon side of remote execution: Serve accepts coordinator
// connections and runs their assigned cells on the in-process pool,
// streaming results back interleaved with heartbeats. cmd/portccd is a
// thin flag wrapper around this loop; tests drive it in-process.
package sched

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"portcc/internal/pcerr"
	"portcc/internal/wire"
)

// Both executors satisfy the interface.
var (
	_ Executor = Local{}
	_ Executor = (*Remote)(nil)
)

// ServeConfig configures a worker serve loop.
type ServeConfig struct {
	// Format is the application schema version announced in the
	// handshake (for exploration workers, dataset.FormatVersion).
	Format int
	// Workers bounds the per-assignment cell pool (0 = GOMAXPROCS).
	Workers int
	// Heartbeat is the period at which quiet connections prove the
	// worker alive (default 1s); the coordinator treats a few missed
	// beats as a dead shard.
	Heartbeat time.Duration
	// NewRun turns a decoded job spec into the in-process cell runner
	// for one connection. An error refuses the job with a Fail frame.
	NewRun func(spec any) (func(slot, index int) (any, error), error)
	// Drain, when closed, drains the loop gracefully: stop accepting
	// connections, finish in-flight assignments (their results still
	// stream back), then close. Coordinators requeue the rest elsewhere.
	Drain <-chan struct{}
	// Logf, when set, receives one line per connection event.
	Logf func(format string, args ...any)
}

func (c *ServeConfig) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return time.Second
}

func (c *ServeConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Serve accepts coordinator connections on ln until ctx is cancelled
// (hard stop: in-flight work is abandoned) or cfg.Drain is closed
// (graceful: in-flight assignments finish first), then blocks until
// every connection handler has exited. The listener is closed on return.
func Serve(ctx context.Context, ln net.Listener, cfg ServeConfig) error {
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-ctx.Done():
		case <-drainChan(cfg.Drain):
		case <-stopped:
		}
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	var acceptDelay time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || drained(cfg.Drain) {
				return nil
			}
			// Transient accept failures (EMFILE under fd pressure, an
			// aborted connection, an interrupted syscall) must not kill a
			// daemon that is mid-way through serving other coordinators:
			// back off briefly and keep accepting. Only listener closure
			// or a permanent error ends the loop.
			if transientAcceptErr(err) {
				if acceptDelay < 5*time.Millisecond {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				cfg.logf("accept: %v (retrying in %v)", err, acceptDelay)
				select {
				case <-time.After(acceptDelay):
				case <-ctx.Done():
					return nil
				case <-drainChan(cfg.Drain):
					return nil
				}
				continue
			}
			return err
		}
		acceptDelay = 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer nc.Close()
			cfg.logf("serving %s", nc.RemoteAddr())
			serveConn(ctx, nc, cfg)
			cfg.logf("closed %s", nc.RemoteAddr())
		}()
	}
}

// transientAcceptErr classifies Accept failures worth retrying: timeouts
// and the temporary syscall family (EMFILE/ENFILE fd exhaustion,
// ECONNABORTED, EINTR) as reported by the net.Error the runtime wraps
// them in. Listener closure is never transient.
func transientAcceptErr(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		return false
	}
	//lint:ignore SA1019 Temporary is exactly the accept-retry predicate
	// (EMFILE, ENFILE, ECONNABORTED, EINTR, timeouts); the deprecation
	// targets its vaguer uses.
	return ne.Timeout() || ne.Temporary()
}

// drainChan never fires for a nil Drain (a nil channel blocks forever).
func drainChan(d <-chan struct{}) <-chan struct{} { return d }

func drained(d <-chan struct{}) bool {
	select {
	case <-d:
		return true
	default:
		return false
	}
}

// serveConn handles one coordinator connection: handshake, one job,
// then assignments until the coordinator hangs up, the context hard-
// stops, or a drain finishes the current assignment.
func serveConn(ctx context.Context, nc net.Conn, cfg ServeConfig) {
	// Cancellation kills the connection outright; a drain only pokes the
	// read side, so the idle wait for the next assignment ends while an
	// in-flight assignment keeps writing results. The watcher keeps
	// listening after a drain so a later cancellation still hard-stops.
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		drain := drainChan(cfg.Drain)
		for {
			select {
			case <-ctx.Done():
				nc.SetDeadline(time.Unix(1, 0))
				return
			case <-drain:
				nc.SetReadDeadline(time.Unix(1, 0))
				drain = nil
			case <-connDone:
				return
			}
		}
	}()

	conn := wire.NewConn(nc)
	if err := conn.ServerHello(cfg.Format, cfg.heartbeat()); err != nil {
		cfg.logf("%s: handshake: %v", nc.RemoteAddr(), err)
		return
	}
	f, err := conn.Recv()
	if err != nil {
		return
	}
	if f.Job == nil {
		cfg.logf("%s: expected job, got %s frame", nc.RemoteAddr(), f.Kind())
		return
	}
	run, err := cfg.NewRun(f.Job.Spec)
	if err != nil {
		cfg.logf("%s: refusing job: %v", nc.RemoteAddr(), err)
		conn.Send(&wire.Frame{Fail: &wire.Fail{Msg: err.Error()}})
		return
	}

	// Heartbeats share the connection's write lock with result frames.
	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		t := time.NewTicker(cfg.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if conn.Send(&wire.Frame{Heartbeat: true}) != nil {
					return
				}
			case <-hbDone:
				return
			}
		}
	}()

	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		if f.Assign == nil {
			cfg.logf("%s: expected assign, got %s frame", nc.RemoteAddr(), f.Kind())
			return
		}
		if !serveAssign(ctx, conn, cfg, run, f.Assign.Cells) {
			return
		}
	}
}

// serveAssign resolves every assigned cell with exactly one Result or
// CellError frame, fanning the cells over the worker pool. It reports
// whether the connection is still worth serving.
func serveAssign(ctx context.Context, conn *wire.Conn, cfg ServeConfig, run func(int, int) (any, error), cells []int) bool {
	// A failed send means the coordinator is gone: stop burning work on
	// the remaining cells (they will be requeued on a surviving shard).
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	Run(cctx, cfg.Workers, len(cells), func(slot, i int) error {
		payload, err := runCellRecovered(cfg, run, slot, cells[i])
		var sendErr error
		if err != nil {
			sendErr = conn.Send(&wire.Frame{CellError: cellError(cells[i], err)})
		} else {
			sendErr = conn.Send(&wire.Frame{Result: &wire.Result{Index: cells[i], Payload: payload}})
		}
		if sendErr != nil {
			cancel()
		}
		return nil
	})
	return ctx.Err() == nil && cctx.Err() == nil
}

// runCellRecovered runs one cell, converting a panic in the runner into
// a typed cell error instead of letting it kill the daemon: one bad cell
// degrades to a CellError frame at its own index while the connection -
// and every other coordinator's in-flight work - keeps being served. The
// panic value travels in the error; the stack goes to the daemon log.
func runCellRecovered(cfg ServeConfig, run func(int, int) (any, error), slot, index int) (payload any, err error) {
	defer func() {
		if r := recover(); r != nil {
			cfg.logf("cell %d panicked: %v\n%s", index, r, debug.Stack())
			err = fmt.Errorf("%w: cell %d: %v", pcerr.ErrCellPanic, index, r)
		}
	}()
	return run(slot, index)
}

// cellError flattens a cell failure for the wire, preserving the
// pcerr.SimError grid location and sentinel classification so the
// coordinator reconstructs an errors.Is/As-compatible error.
func cellError(index int, err error) *wire.CellError {
	ce := &wire.CellError{Index: index, Msg: err.Error()}
	var se *pcerr.SimError
	if errors.As(err, &se) {
		ce.Sim = true
		ce.Program, ce.Setting, ce.Arch = se.Program, se.Setting, se.Arch
		ce.Msg = se.Err.Error()
	}
	switch {
	case errors.Is(err, pcerr.ErrUnknownProgram):
		ce.Code = wire.CodeUnknownProgram
	case errors.Is(err, pcerr.ErrInvalidConfig):
		ce.Code = wire.CodeInvalidConfig
	case errors.Is(err, pcerr.ErrCellPanic):
		ce.Code = wire.CodePanic
	}
	return ce
}
