// The remote executor: cells ship to portccd worker shards as gob frames
// over TCP. Each shard connection is one goroutine that repeatedly takes
// a chunk of the lowest pending cell indices from a shared dispenser,
// assigns it, and streams the results back; a shard that dies (dial
// failure, version mismatch, connection error, missed heartbeats) has
// its unresolved cells requeued onto the survivors, so a shard failure
// is retried elsewhere before it can surface. Only when every shard is
// gone with cells still unfinished does Execute report a shard error.
package sched

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"portcc/internal/pcerr"
	"portcc/internal/wire"
)

// Remote executes a job's cells on worker daemons (cmd/portccd, or any
// Serve loop) reached over TCP.
type Remote struct {
	// Addrs are the shard addresses (host:port). At least one is
	// required; cells from a dead shard requeue onto the others.
	Addrs []string
	// ChunkSize caps the cells assigned to a shard per round trip
	// (default 8): larger chunks amortise the round trip and feed the
	// shard's pool, smaller ones lose less work when a shard dies. The
	// cap applies mid-run; near the tail of the grid the dispenser
	// adaptively shrinks assignments toward single cells (see
	// adaptChunk), so a shard dying at the tail loses less work and the
	// last cells spread across every live shard instead of queueing
	// behind one.
	ChunkSize int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

func (r *Remote) chunkSize() int {
	if r.ChunkSize > 0 {
		return r.ChunkSize
	}
	return 8
}

func (r *Remote) dialTimeout() time.Duration {
	if r.DialTimeout > 0 {
		return r.DialTimeout
	}
	return 5 * time.Second
}

// Execute implements Executor. Cell dispatch is in index order across
// the shard set; the error contract matches Local's exactly (lowest-
// indexed cell failure, cancellation left to the caller's ctx check),
// with one addition: if every shard dies with cells unfinished, the
// returned error wraps pcerr.ErrShardFailure and the last shard's cause.
func (r *Remote) Execute(ctx context.Context, job Job, emit func(index int, payload any)) (int, error) {
	if len(r.Addrs) == 0 {
		return 0, fmt.Errorf("sched: %w: no shard addresses", pcerr.ErrInvalidConfig)
	}
	st := newRemoteState(job.Cells, len(r.Addrs))
	// A cancelled coordinator must not sit out a heartbeat window: wake
	// dispenser waiters immediately (blocked reads are poked per
	// connection below).
	stop := context.AfterFunc(ctx, st.wake)
	defer stop()
	var wg sync.WaitGroup
	for _, addr := range r.Addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			lost, err := r.serveShard(ctx, st, addr, job, emit)
			st.shardExit(lost, err)
		}(addr)
	}
	wg.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failErr != nil {
		return st.done, st.failErr
	}
	if ctx.Err() != nil {
		// Shards torn down by our own cancellation are not failures.
		return st.done, nil
	}
	return st.done, st.exhausted
}

// serveShard drives one shard connection until the grid is finished, the
// context is cancelled, or the shard dies. It returns the cells it had
// taken but not resolved (for requeueing) and the shard's terminal
// error, nil for a clean finish.
func (r *Remote) serveShard(ctx context.Context, st *remoteState, addr string, job Job, emit func(int, any)) ([]int, error) {
	d := net.Dialer{Timeout: r.dialTimeout()}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sched: shard %s: %w", addr, err)
	}
	defer nc.Close()
	// Cancellation pokes any blocked read or write on this connection.
	// Every later re-arm goes through deadlineFor, which re-asserts the
	// poke if it raced the cancellation, so a blocked operation survives
	// a cancelled context by at most one deadline window.
	stop := context.AfterFunc(ctx, func() { nc.SetDeadline(time.Unix(1, 0)) })
	defer stop()

	conn := wire.NewConn(nc)
	// A wedged-but-connected peer (accepts TCP, never speaks) must not
	// hang the run: the handshake and job transfer are bounded like the
	// dial, and every blocking operation after them carries a deadline,
	// so a shard goroutine always terminates and requeues its cells.
	nc.SetDeadline(deadlineFor(ctx, r.dialTimeout()))
	hb, err := conn.ClientHello(job.Format)
	if err != nil {
		return nil, fmt.Errorf("sched: shard %s: %w", addr, err)
	}
	// A live shard proves itself every heartbeat period even when its
	// cells run long; a few missed beats mean it is gone.
	grace := 4 * hb
	if grace < time.Second {
		grace = time.Second
	}
	if err := conn.Send(&wire.Frame{Job: &wire.Job{Spec: job.Spec}}); err != nil {
		return nil, fmt.Errorf("sched: shard %s: sending job: %w", addr, err)
	}
	// The job is through; every read below re-arms per frame and every
	// assignment write re-arms per chunk, so the handshake deadline
	// cannot strand a later operation.

	for {
		cells := st.take(ctx, r.chunkSize())
		if cells == nil {
			return nil, nil
		}
		outstanding := make(map[int]bool, len(cells))
		for _, c := range cells {
			outstanding[c] = true
		}
		lost := func() []int {
			l := make([]int, 0, len(outstanding))
			for c := range outstanding {
				l = append(l, c)
			}
			return l
		}
		// A shard that stops reading must not block the assignment write
		// forever (its taken cells would never requeue): bound it too.
		nc.SetWriteDeadline(deadlineFor(ctx, grace))
		if err := conn.Send(&wire.Frame{Assign: &wire.Assign{Cells: cells}}); err != nil {
			return lost(), fmt.Errorf("sched: shard %s: assigning cells: %w", addr, err)
		}
		for len(outstanding) > 0 {
			nc.SetReadDeadline(deadlineFor(ctx, grace))
			f, err := conn.Recv()
			if err != nil {
				return lost(), fmt.Errorf("sched: shard %s: %w", addr, err)
			}
			switch {
			case f.Heartbeat:
			case f.Result != nil:
				if outstanding[f.Result.Index] {
					delete(outstanding, f.Result.Index)
					st.complete()
					emit(f.Result.Index, f.Result.Payload)
				}
			case f.CellError != nil:
				if outstanding[f.CellError.Index] {
					delete(outstanding, f.CellError.Index)
					st.fail(f.CellError.Index, remoteCellError(f.CellError))
				}
			case f.Fail != nil:
				return lost(), fmt.Errorf("sched: shard %s refused job: %s", addr, f.Fail.Msg)
			default:
				return lost(), fmt.Errorf("sched: shard %s: unexpected %s frame", addr, f.Kind())
			}
		}
	}
}

// deadlineFor is the only way shard connections re-arm deadlines: a
// cancelled context yields an already-expired deadline, so a re-arm
// racing the cancellation AfterFunc's poke re-asserts it instead of
// silently granting a blocked operation another full window.
func deadlineFor(ctx context.Context, d time.Duration) time.Time {
	if ctx.Err() != nil {
		return time.Unix(1, 0)
	}
	return time.Now().Add(d)
}

// remoteError reconstructs a transported cell failure: the message is
// the far side's rendering, the cause restores errors.Is compatibility
// with the pcerr sentinels.
type remoteError struct {
	msg   string
	cause error
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Unwrap() error { return e.cause }

// remoteCellError rebuilds a wire.CellError into the error a local run
// of the same cell would have produced: a pcerr.SimError locating the
// cell where the shard reported one, unwrapping to the matching
// sentinel where the shard classified one.
func remoteCellError(ce *wire.CellError) error {
	var inner error
	switch ce.Code {
	case wire.CodeUnknownProgram:
		inner = &remoteError{msg: ce.Msg, cause: pcerr.ErrUnknownProgram}
	case wire.CodeInvalidConfig:
		inner = &remoteError{msg: ce.Msg, cause: pcerr.ErrInvalidConfig}
	default:
		inner = errors.New(ce.Msg)
	}
	if !ce.Sim {
		return inner
	}
	return &pcerr.SimError{Program: ce.Program, Setting: ce.Setting, Arch: ce.Arch, Err: inner}
}

// remoteState is the shared cell dispenser and progress ledger of one
// Execute call. Cells move pending -> taken (by a shard) -> resolved
// (completed, failed, or dropped after a lower-index failure); cells
// taken by a shard that dies move back to pending.
type remoteState struct {
	mu   sync.Mutex
	cond sync.Cond

	pending    []int // unassigned cell indices, ascending
	unresolved int   // cells not yet completed, failed, or dropped
	done       int   // cells completed and emitted

	failIdx int
	failErr error // lowest-indexed cell failure

	shards    int
	live      int
	lastErr   error // most recent shard death, for the exhausted wrap
	exhausted error // set when every shard died with cells unfinished
}

func newRemoteState(cells, shards int) *remoteState {
	st := &remoteState{
		pending:    make([]int, cells),
		unresolved: cells,
		shards:     shards,
		live:       shards,
	}
	for i := range st.pending {
		st.pending[i] = i
	}
	st.cond.L = &st.mu
	return st
}

func (st *remoteState) wake() {
	st.mu.Lock()
	st.cond.Broadcast()
	st.mu.Unlock()
}

// adaptChunk sizes one assignment: the full chunk while plenty of work
// remains, shrinking toward 1 as the unresolved-cell count approaches
// what the live shards hold in flight (live x chunk). At the tail this
// cuts both the work a dying shard strands and the tail latency - the
// final cells fan out one by one across every live shard instead of
// riding a single last chunk.
func adaptChunk(chunk, remaining, live int) int {
	if live < 1 {
		live = 1
	}
	c := remaining / (2 * live)
	if c >= chunk {
		return chunk
	}
	if c < 1 {
		return 1
	}
	return c
}

// take blocks until cells are available (requeues from dead shards
// included) and returns up to n of the lowest pending indices - fewer
// near the tail, where adaptChunk shrinks assignments - or nil when the
// grid is finished, the run is aborted, or ctx is cancelled.
func (st *remoteState) take(ctx context.Context, n int) []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if ctx.Err() != nil || st.unresolved == 0 || st.exhausted != nil {
			return nil
		}
		if len(st.pending) > 0 {
			n = adaptChunk(n, st.unresolved, st.live)
			if n > len(st.pending) {
				n = len(st.pending)
			}
			cells := append([]int(nil), st.pending[:n]...)
			st.pending = st.pending[n:]
			return cells
		}
		// Every remaining cell is on some other shard; wait for either a
		// finish or a requeue.
		st.cond.Wait()
	}
}

func (st *remoteState) complete() {
	st.mu.Lock()
	st.done++
	st.resolve(1)
	st.mu.Unlock()
}

// fail records a cell failure, keeping the lowest index, and drops every
// pending cell above it: those are undispatched, exactly the cells the
// local pool would never have handed out after stopping dispatch.
func (st *remoteState) fail(idx int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failErr == nil || idx < st.failIdx {
		st.failIdx, st.failErr = idx, err
	}
	st.dropAboveFailure()
	st.resolve(1)
}

// dropAboveFailure resolves-by-dropping pending cells above the failing
// index. Called with st.mu held, after failIdx is set.
func (st *remoteState) dropAboveFailure() {
	keep := st.pending[:0]
	for _, c := range st.pending {
		if c < st.failIdx {
			keep = append(keep, c)
		} else {
			st.resolve(1)
		}
	}
	st.pending = keep
}

// resolve retires n cells and wakes dispenser waiters when the grid
// finishes. Called with st.mu held.
func (st *remoteState) resolve(n int) {
	st.unresolved -= n
	if st.unresolved == 0 {
		st.cond.Broadcast()
	}
}

// shardExit retires a shard: its unresolved cells go back to the
// dispenser (minus any above a recorded failure), and if it was the last
// live shard with work remaining, the run is marked exhausted.
func (st *remoteState) shardExit(lost []int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, c := range lost {
		if st.failErr != nil && c > st.failIdx {
			st.resolve(1)
			continue
		}
		i := sort.SearchInts(st.pending, c)
		st.pending = append(st.pending, 0)
		copy(st.pending[i+1:], st.pending[i:])
		st.pending[i] = c
	}
	st.live--
	if err != nil {
		st.lastErr = err
	}
	if st.live == 0 && st.unresolved > 0 && st.exhausted == nil {
		st.exhausted = fmt.Errorf("sched: %w: all %d shards failed with %d cells unfinished: %w",
			pcerr.ErrShardFailure, st.shards, st.unresolved, st.lastErr)
	}
	// Requeued cells or the exhausted verdict both concern waiters.
	st.cond.Broadcast()
}
