// The remote executor: cells ship to portccd worker shards as gob frames
// over TCP. Each shard connection is one goroutine that repeatedly takes
// a chunk of the lowest pending cell indices from a shared dispenser,
// assigns it, and streams the results back. A connection that dies (dial
// failure, version mismatch, connection error, missed heartbeats) has
// its unresolved cells requeued onto the survivors immediately, and the
// shard's goroutine redials with seeded exponential backoff instead of
// exiting - so daemon restarts and network blips are absorbed mid-run,
// and a restarted daemon rejoins the same run. Only when every shard has
// burned its full retry budget with cells still unfinished does Execute
// report a shard error. A cell that repeatedly rides dying connections
// is quarantined as poisoned (it is the prime suspect for crashing the
// daemons) and surfaces as a typed failure at its own index, preserving
// the lowest-index-error contract instead of looping under reconnect.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"portcc/internal/pcerr"
	"portcc/internal/wire"
)

// RetryPolicy governs how a Remote coordinator treats dying shard
// connections: how often each shard address is redialled, how redials
// back off, and when a repeatedly stranded cell is quarantined. The zero
// value selects the defaults noted on each field.
type RetryPolicy struct {
	// MaxAttempts is the number of consecutive failed connections a
	// shard address is allowed before the shard is abandoned for the
	// rest of the run (default 3). A connection that resolves at least
	// one cell refreshes the budget, so a daemon restarted in a loop is
	// absorbed for as long as it keeps making progress; permanent
	// failures (version mismatches, refused jobs) are never retried.
	MaxAttempts int
	// BaseBackoff is the delay before the first redial (default 100ms);
	// it doubles per consecutive failure up to MaxBackoff (default 5s),
	// with seeded jitter in [d/2, d] so shards desynchronise their
	// redials deterministically.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxStrands is the number of times one cell may be stranded by a
	// dying connection before the coordinator quarantines it as poisoned
	// (default 5): the cell then surfaces as a pcerr.ErrCellPoisoned
	// failure at its own grid index instead of crashing daemons forever.
	MaxStrands int
	// Seed seeds the backoff jitter (deterministic per shard index), so
	// fault-injection tests replay identically.
	Seed int64
}

// withDefaults resolves the zero value to the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.MaxStrands <= 0 {
		p.MaxStrands = 5
	}
	return p
}

// backoffDelay sizes the pause before redial attempt+1: exponential from
// BaseBackoff, capped at MaxBackoff, jittered into [d/2, d] by the
// shard's seeded generator.
func backoffDelay(pol RetryPolicy, rng *rand.Rand, attempt int) time.Duration {
	d := pol.BaseBackoff
	for i := 1; i < attempt && d < pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// Remote executes a job's cells on worker daemons (cmd/portccd, or any
// Serve loop) reached over TCP.
type Remote struct {
	// Addrs are the shard addresses (host:port). At least one is
	// required; cells from a dead shard requeue onto the others.
	Addrs []string
	// ChunkSize caps the cells assigned to a shard per round trip
	// (default 8): larger chunks amortise the round trip and feed the
	// shard's pool, smaller ones lose less work when a shard dies. The
	// cap applies mid-run; near the tail of the grid the dispenser
	// adaptively shrinks assignments toward single cells (see
	// adaptChunk), so a shard dying at the tail loses less work and the
	// last cells spread across every live shard instead of queueing
	// behind one.
	ChunkSize int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// Retry is the reconnect/backoff/quarantine policy (zero value =
	// defaults; see RetryPolicy).
	Retry RetryPolicy
}

func (r *Remote) chunkSize() int {
	if r.ChunkSize > 0 {
		return r.ChunkSize
	}
	return 8
}

func (r *Remote) dialTimeout() time.Duration {
	if r.DialTimeout > 0 {
		return r.DialTimeout
	}
	return 5 * time.Second
}

// Execute implements Executor. Cell dispatch is in index order across
// the shard set; the error contract matches Local's exactly (lowest-
// indexed cell failure, cancellation left to the caller's ctx check),
// with two additions: if every shard burns its retry budget with cells
// unfinished, the returned error wraps pcerr.ErrShardFailure and the
// last shard's cause; and a cell stranded by too many dying connections
// fails typed with pcerr.ErrCellPoisoned at its own index.
func (r *Remote) Execute(ctx context.Context, job Job, emit func(index int, payload any)) (int, error) {
	if len(r.Addrs) == 0 {
		return 0, fmt.Errorf("sched: %w: no shard addresses", pcerr.ErrInvalidConfig)
	}
	pol := r.Retry.withDefaults()
	st := newRemoteState(job.Cells, len(r.Addrs), pol.MaxStrands)
	// A cancelled coordinator must not sit out a heartbeat window: wake
	// dispenser waiters immediately (blocked reads are poked per
	// connection below).
	stop := context.AfterFunc(ctx, st.wake)
	defer stop()
	var wg sync.WaitGroup
	for i, addr := range r.Addrs {
		wg.Add(1)
		go func(shard int, addr string) {
			defer wg.Done()
			r.shardLoop(ctx, st, pol, shard, addr, job, emit)
		}(i, addr)
	}
	wg.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failErr != nil {
		return st.done, st.failErr
	}
	if ctx.Err() != nil {
		// Shards torn down by our own cancellation are not failures.
		return st.done, nil
	}
	return st.done, st.exhausted
}

// shardLoop drives one shard address for the lifetime of the run:
// serveShard until it dies, requeue the stranded cells so survivors can
// take them, back off, redial. The loop ends on a clean grid finish,
// cancellation, a permanent error (version mismatch, refused job), or
// an exhausted retry budget - only then does the shard count as gone.
func (r *Remote) shardLoop(ctx context.Context, st *remoteState, pol RetryPolicy, shard int, addr string, job Job, emit func(int, any)) {
	// Per-shard jitter stream: deterministic under a fixed Seed, distinct
	// across shards so their redials spread out.
	rng := rand.New(rand.NewSource(pol.Seed ^ (int64(shard)+1)*0x6A09E667F3BCC909))
	attempts := 0
	for {
		lost, progressed, err := r.serveShard(ctx, st, addr, job, emit)
		if err == nil {
			st.shardExit(nil, nil)
			return
		}
		if progressed {
			// The address demonstrably hosts a live daemon: refresh the
			// budget so a restart loop is absorbed for as long as the
			// shard keeps resolving cells.
			attempts = 0
		}
		attempts++
		if ctx.Err() != nil || attempts >= pol.MaxAttempts || permanentShardErr(err) {
			st.shardExit(lost, err)
			return
		}
		// Requeue before sleeping: survivors drain the stranded cells
		// while this shard backs off, and the stranding counts toward
		// poison-cell quarantine.
		st.strand(lost)
		if !st.sleep(ctx, backoffDelay(pol, rng, attempts)) {
			// Cancelled or the grid finished without us: nothing to
			// requeue, but the exit must still balance the live count.
			st.shardExit(nil, err)
			return
		}
	}
}

// permanentShardErr reports errors no redial can fix: a shard built
// against another protocol or dataset schema, a refused job, or a peer
// that violated the frame protocol after a successful handshake.
func permanentShardErr(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe) ||
		errors.Is(err, pcerr.ErrWireVersion) ||
		errors.Is(err, pcerr.ErrDatasetVersion)
}

// permanentError marks a shard failure as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

func (e *permanentError) Unwrap() error { return e.err }

// maxHeartbeatGrace caps the dead-shard detection window derived from
// the daemon's announced heartbeat period: a daemon misconfigured with
// -heartbeat 10m must not make the coordinator wait most of an hour
// before declaring it dead and requeueing its cells.
const maxHeartbeatGrace = 30 * time.Second

// heartbeatGrace turns the daemon's announced heartbeat period into the
// read/write deadline window: a few missed beats mean the shard is
// gone, clamped to [1s, maxHeartbeatGrace].
func heartbeatGrace(hb time.Duration) time.Duration {
	grace := 4 * hb
	if grace < time.Second {
		grace = time.Second
	}
	if grace > maxHeartbeatGrace {
		grace = maxHeartbeatGrace
	}
	return grace
}

// serveShard drives one shard connection until the grid is finished, the
// context is cancelled, or the connection dies. It returns the cells it
// had taken but not resolved (for requeueing), whether the connection
// resolved any cell at all (progress refreshes the retry budget), and
// the connection's terminal error, nil for a clean finish.
func (r *Remote) serveShard(ctx context.Context, st *remoteState, addr string, job Job, emit func(int, any)) (lostCells []int, progressed bool, err error) {
	d := net.Dialer{Timeout: r.dialTimeout()}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, false, fmt.Errorf("sched: shard %s: %w", addr, err)
	}
	defer nc.Close()
	// Cancellation pokes any blocked read or write on this connection.
	// Every later re-arm goes through deadlineFor, which re-asserts the
	// poke if it raced the cancellation, so a blocked operation survives
	// a cancelled context by at most one deadline window.
	stop := context.AfterFunc(ctx, func() { nc.SetDeadline(time.Unix(1, 0)) })
	defer stop()

	conn := wire.NewConn(nc)
	// A wedged-but-connected peer (accepts TCP, never speaks) must not
	// hang the run: the handshake and job transfer are bounded like the
	// dial, and every blocking operation after them carries a deadline,
	// so a shard goroutine always terminates and requeues its cells.
	nc.SetDeadline(deadlineFor(ctx, r.dialTimeout()))
	hb, err := conn.ClientHello(job.Format)
	if err != nil {
		return nil, false, fmt.Errorf("sched: shard %s: %w", addr, err)
	}
	// A live shard proves itself every heartbeat period even when its
	// cells run long; a few missed beats mean it is gone. The window is
	// clamped so a misconfigured daemon heartbeat cannot stretch dead-
	// shard detection into the tens of minutes.
	grace := heartbeatGrace(hb)
	if err := conn.Send(&wire.Frame{Job: &wire.Job{Spec: job.Spec}}); err != nil {
		return nil, false, fmt.Errorf("sched: shard %s: sending job: %w", addr, err)
	}
	// The job is through; every read below re-arms per frame and every
	// assignment write re-arms per chunk, so the handshake deadline
	// cannot strand a later operation.

	for {
		cells := st.take(ctx, r.chunkSize())
		if cells == nil {
			return nil, progressed, nil
		}
		outstanding := make(map[int]bool, len(cells))
		for _, c := range cells {
			outstanding[c] = true
		}
		lost := func() []int {
			l := make([]int, 0, len(outstanding))
			for c := range outstanding {
				l = append(l, c)
			}
			return l
		}
		// A shard that stops reading must not block the assignment write
		// forever (its taken cells would never requeue): bound it too.
		nc.SetWriteDeadline(deadlineFor(ctx, grace))
		if err := conn.Send(&wire.Frame{Assign: &wire.Assign{Cells: cells}}); err != nil {
			return lost(), progressed, fmt.Errorf("sched: shard %s: assigning cells: %w", addr, err)
		}
		for len(outstanding) > 0 {
			nc.SetReadDeadline(deadlineFor(ctx, grace))
			f, err := conn.Recv()
			if err != nil {
				return lost(), progressed, fmt.Errorf("sched: shard %s: %w", addr, err)
			}
			switch {
			case f.Heartbeat:
			case f.Result != nil:
				// A result for a cell this connection was never assigned
				// (or already resolved) is dropped: emitting it would
				// double-count the cell and corrupt the grid.
				if outstanding[f.Result.Index] {
					delete(outstanding, f.Result.Index)
					progressed = true
					st.complete()
					emit(f.Result.Index, f.Result.Payload)
				}
			case f.CellError != nil:
				if outstanding[f.CellError.Index] {
					delete(outstanding, f.CellError.Index)
					progressed = true
					st.fail(f.CellError.Index, remoteCellError(f.CellError))
				}
			case f.Fail != nil:
				return lost(), progressed, &permanentError{fmt.Errorf("sched: shard %s refused job: %s", addr, f.Fail.Msg)}
			default:
				return lost(), progressed, &permanentError{fmt.Errorf("sched: shard %s: unexpected %s frame", addr, f.Kind())}
			}
		}
	}
}

// deadlineFor is the only way shard connections re-arm deadlines: a
// cancelled context yields an already-expired deadline, so a re-arm
// racing the cancellation AfterFunc's poke re-asserts it instead of
// silently granting a blocked operation another full window.
func deadlineFor(ctx context.Context, d time.Duration) time.Time {
	if ctx.Err() != nil {
		return time.Unix(1, 0)
	}
	return time.Now().Add(d)
}

// remoteError reconstructs a transported cell failure: the message is
// the far side's rendering, the cause restores errors.Is compatibility
// with the pcerr sentinels.
type remoteError struct {
	msg   string
	cause error
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Unwrap() error { return e.cause }

// remoteCellError rebuilds a wire.CellError into the error a local run
// of the same cell would have produced: a pcerr.SimError locating the
// cell where the shard reported one, unwrapping to the matching
// sentinel where the shard classified one.
func remoteCellError(ce *wire.CellError) error {
	var inner error
	switch ce.Code {
	case wire.CodeUnknownProgram:
		inner = &remoteError{msg: ce.Msg, cause: pcerr.ErrUnknownProgram}
	case wire.CodeInvalidConfig:
		inner = &remoteError{msg: ce.Msg, cause: pcerr.ErrInvalidConfig}
	case wire.CodePanic:
		inner = &remoteError{msg: ce.Msg, cause: pcerr.ErrCellPanic}
	default:
		inner = errors.New(ce.Msg)
	}
	if !ce.Sim {
		return inner
	}
	return &pcerr.SimError{Program: ce.Program, Setting: ce.Setting, Arch: ce.Arch, Err: inner}
}

// remoteState is the shared cell dispenser and progress ledger of one
// Execute call. Cells move pending -> taken (by a shard) -> resolved
// (completed, failed, quarantined, or dropped after a lower-index
// failure); cells taken by a connection that dies move back to pending,
// with a per-cell strand count deciding quarantine.
type remoteState struct {
	mu   sync.Mutex
	cond sync.Cond

	pending    []int // unassigned cell indices, ascending
	unresolved int   // cells not yet completed, failed, or dropped
	done       int   // cells completed and emitted

	strands    map[int]int // per cell: dying connections it was assigned to
	maxStrands int         // strandings before quarantine

	failIdx int
	failErr error // lowest-indexed cell failure

	shards    int
	live      int
	lastErr   error // most recent shard death, for the exhausted wrap
	exhausted error // set when every shard died with cells unfinished

	finished chan struct{} // closed once the grid resolves or exhausts
}

func newRemoteState(cells, shards, maxStrands int) *remoteState {
	st := &remoteState{
		pending:    make([]int, cells),
		unresolved: cells,
		strands:    make(map[int]int),
		maxStrands: maxStrands,
		shards:     shards,
		live:       shards,
		finished:   make(chan struct{}),
	}
	for i := range st.pending {
		st.pending[i] = i
	}
	st.cond.L = &st.mu
	if cells == 0 {
		st.finish()
	}
	return st
}

func (st *remoteState) wake() {
	st.mu.Lock()
	st.cond.Broadcast()
	st.mu.Unlock()
}

// finish closes the finished channel exactly once, waking backing-off
// shard loops. Called with st.mu held.
func (st *remoteState) finish() {
	select {
	case <-st.finished:
	default:
		close(st.finished)
	}
}

// sleep pauses a shard loop between redial attempts, waking early when
// the context is cancelled or the grid finishes without it. It reports
// whether the redial is still worth making.
func (st *remoteState) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err() == nil
	case <-ctx.Done():
		return false
	case <-st.finished:
		return false
	}
}

// adaptChunk sizes one assignment: the full chunk while plenty of work
// remains, shrinking toward 1 as the unresolved-cell count approaches
// what the live shards hold in flight (live x chunk). At the tail this
// cuts both the work a dying shard strands and the tail latency - the
// final cells fan out one by one across every live shard instead of
// riding a single last chunk.
func adaptChunk(chunk, remaining, live int) int {
	if live < 1 {
		live = 1
	}
	c := remaining / (2 * live)
	if c >= chunk {
		return chunk
	}
	if c < 1 {
		return 1
	}
	return c
}

// take blocks until cells are available (requeues from dead connections
// included) and returns up to n of the lowest pending indices - fewer
// near the tail, where adaptChunk shrinks assignments - or nil when the
// grid is finished, the run is aborted, or ctx is cancelled.
func (st *remoteState) take(ctx context.Context, n int) []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if ctx.Err() != nil || st.unresolved == 0 || st.exhausted != nil {
			return nil
		}
		if len(st.pending) > 0 {
			n = adaptChunk(n, st.unresolved, st.live)
			if n > len(st.pending) {
				n = len(st.pending)
			}
			cells := append([]int(nil), st.pending[:n]...)
			st.pending = st.pending[n:]
			return cells
		}
		// Every remaining cell is on some other shard; wait for either a
		// finish or a requeue.
		st.cond.Wait()
	}
}

func (st *remoteState) complete() {
	st.mu.Lock()
	st.done++
	st.resolve(1)
	st.mu.Unlock()
}

// fail records a cell failure, keeping the lowest index, and drops every
// pending cell above it: those are undispatched, exactly the cells the
// local pool would never have handed out after stopping dispatch.
func (st *remoteState) fail(idx int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failErr == nil || idx < st.failIdx {
		st.failIdx, st.failErr = idx, err
	}
	st.dropAboveFailure()
	st.resolve(1)
}

// dropAboveFailure resolves-by-dropping pending cells above the failing
// index. Called with st.mu held, after failIdx is set.
func (st *remoteState) dropAboveFailure() {
	keep := st.pending[:0]
	for _, c := range st.pending {
		if c < st.failIdx {
			keep = append(keep, c)
		} else {
			st.resolve(1)
		}
	}
	st.pending = keep
}

// resolve retires n cells and wakes dispenser waiters (and backing-off
// shard loops) when the grid finishes. Called with st.mu held.
func (st *remoteState) resolve(n int) {
	st.unresolved -= n
	if st.unresolved == 0 {
		st.finish()
		st.cond.Broadcast()
	}
}

// strand requeues cells stranded by a dying connection whose shard will
// retry, counting each stranding toward quarantine.
func (st *remoteState) strand(lost []int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.strandCells(lost)
	st.cond.Broadcast()
}

// strandCells moves stranded cells back to pending - minus any above a
// recorded failure - after bumping each cell's strand count. A cell
// stranded maxStrands times is quarantined instead: it has ridden too
// many dying connections to be innocent, so it fails typed
// (pcerr.ErrCellPoisoned) at its own index, preserving the lowest-
// index-error contract. Called with st.mu held.
func (st *remoteState) strandCells(lost []int) {
	sort.Ints(lost)
	for _, c := range lost {
		if st.failErr != nil && c > st.failIdx {
			st.resolve(1)
			continue
		}
		st.strands[c]++
		if st.strands[c] >= st.maxStrands {
			if st.failErr == nil || c < st.failIdx {
				st.failIdx = c
				st.failErr = fmt.Errorf("sched: cell %d: %w: stranded by %d dying shard connections",
					c, pcerr.ErrCellPoisoned, st.strands[c])
			}
			st.dropAboveFailure()
			st.resolve(1)
			continue
		}
		i := sort.SearchInts(st.pending, c)
		st.pending = append(st.pending, 0)
		copy(st.pending[i+1:], st.pending[i:])
		st.pending[i] = c
	}
}

// shardExit retires a shard for good (clean finish, cancellation,
// permanent error, or exhausted retry budget): its unresolved cells go
// back to the dispenser with strand accounting, and if it was the last
// live shard with work remaining, the run is marked exhausted.
func (st *remoteState) shardExit(lost []int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.strandCells(lost)
	st.live--
	if err != nil {
		st.lastErr = err
	}
	if st.live == 0 && st.unresolved > 0 && st.exhausted == nil {
		st.exhausted = fmt.Errorf("sched: %w: all %d shards exhausted their retry budgets with %d cells unfinished: %w",
			pcerr.ErrShardFailure, st.shards, st.unresolved, st.lastErr)
		st.finish()
	}
	// Requeued cells or the exhausted verdict both concern waiters.
	st.cond.Broadcast()
}
