package sched

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"portcc/internal/pcerr"
)

// TestWedgedShardDoesNotHang: a peer that accepts the TCP connection but
// never speaks (hung daemon, wrong service behind the port) must not
// hang Execute - the bounded handshake deadline turns it into an
// ordinary shard failure, surfaced typed once no shards remain.
func TestWedgedShardDoesNotHang(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept, then silence
		}
	}()

	r := &Remote{Addrs: []string{ln.Addr().String()}, DialTimeout: 200 * time.Millisecond}
	job := Job{Cells: 3, Format: 1}
	start := time.Now()
	done, err := r.Execute(context.Background(), job, func(int, any) {
		t.Error("wedged shard emitted a result")
	})
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Execute took %v against a silent peer, want bounded by the handshake deadline", elapsed)
	}
	if done != 0 {
		t.Errorf("%d cells done against a silent peer, want 0", done)
	}
	if !errors.Is(err, pcerr.ErrShardFailure) {
		t.Errorf("got %v, want ErrShardFailure", err)
	}
}

// TestRemoteRequiresAddrs: a Remote without shard addresses is a
// configuration error, not a hang or a silent local fallback.
func TestRemoteRequiresAddrs(t *testing.T) {
	var r Remote
	if _, err := r.Execute(context.Background(), Job{Cells: 1, Format: 1}, func(int, any) {}); !errors.Is(err, pcerr.ErrInvalidConfig) {
		t.Errorf("got %v, want ErrInvalidConfig", err)
	}
}
