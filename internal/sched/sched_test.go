package sched

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"portcc/internal/pcerr"
)

// TestWedgedShardDoesNotHang: a peer that accepts the TCP connection but
// never speaks (hung daemon, wrong service behind the port) must not
// hang Execute - the bounded handshake deadline turns it into an
// ordinary shard failure, surfaced typed once no shards remain.
func TestWedgedShardDoesNotHang(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept, then silence
		}
	}()

	r := &Remote{Addrs: []string{ln.Addr().String()}, DialTimeout: 200 * time.Millisecond}
	job := Job{Cells: 3, Format: 1}
	start := time.Now()
	done, err := r.Execute(context.Background(), job, func(int, any) {
		t.Error("wedged shard emitted a result")
	})
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Execute took %v against a silent peer, want bounded by the handshake deadline", elapsed)
	}
	if done != 0 {
		t.Errorf("%d cells done against a silent peer, want 0", done)
	}
	if !errors.Is(err, pcerr.ErrShardFailure) {
		t.Errorf("got %v, want ErrShardFailure", err)
	}
}

// TestHeartbeatGraceClamped: the dead-shard window derived from the
// daemon's announced heartbeat is clamped to [1s, maxHeartbeatGrace],
// so a daemon misconfigured with -heartbeat 10m cannot stretch failure
// detection to ~40 minutes.
func TestHeartbeatGraceClamped(t *testing.T) {
	for _, tc := range []struct{ hb, want time.Duration }{
		{0, time.Second},                      // unset: sane floor
		{100 * time.Millisecond, time.Second}, // short beats keep the floor
		{time.Second, 4 * time.Second},        // normal: a few missed beats
		{5 * time.Second, 20 * time.Second},   // long but legal
		{10 * time.Minute, maxHeartbeatGrace}, // misconfigured: clamped
		{time.Hour, maxHeartbeatGrace},        // absurd: clamped
	} {
		if got := heartbeatGrace(tc.hb); got != tc.want {
			t.Errorf("heartbeatGrace(%v) = %v, want %v", tc.hb, got, tc.want)
		}
	}
}

// TestBackoffDelayBoundedAndSeeded: redial delays grow exponentially
// from BaseBackoff, never exceed MaxBackoff, keep at least half the
// nominal delay after jitter, and replay identically under one seed.
func TestBackoffDelayBoundedAndSeeded(t *testing.T) {
	pol := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}.withDefaults()
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	nominal := pol.BaseBackoff
	for attempt := 1; attempt <= 10; attempt++ {
		da, db := backoffDelay(pol, a, attempt), backoffDelay(pol, b, attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed, different delays %v vs %v", attempt, da, db)
		}
		if nominal > pol.MaxBackoff {
			nominal = pol.MaxBackoff
		}
		if da < nominal/2 || da > nominal {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, da, nominal/2, nominal)
		}
		nominal *= 2
	}
}

// flakyListener fails its first few Accepts with a temporary error
// (simulated fd exhaustion), then delegates to the real listener.
type flakyListener struct {
	net.Listener
	failures atomic.Int32
}

type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "accept: too many open files (simulated)" }
func (tempAcceptErr) Timeout() bool   { return false }
func (tempAcceptErr) Temporary() bool { return true }

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures.Add(-1) >= 0 {
		return nil, tempAcceptErr{}
	}
	return l.Listener.Accept()
}

// TestServeRetriesTransientAcceptErrors: EMFILE-style accept failures
// must not kill the daemon - Serve backs off and keeps accepting, so a
// run started during fd pressure still completes.
func TestServeRetriesTransientAcceptErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln}
	fl.failures.Store(3)
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, fl, chaosServeConfig(1, 50*time.Millisecond)) }()
	t.Cleanup(func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("Serve returned %v after transient accept errors, want nil", err)
		}
	})

	r := &Remote{Addrs: []string{ln.Addr().String()}, DialTimeout: 2 * time.Second,
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: 5 * time.Millisecond}}
	col := newCollector()
	done, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: 6, Format: 1}, col.emit)
	if err != nil || done != 6 {
		t.Fatalf("run against a daemon under accept pressure: done=%d err=%v", done, err)
	}
	col.verify(t, 6)
	if left := fl.failures.Load(); left > 0 {
		t.Fatalf("%d simulated accept failures never consumed", left)
	}
}

// TestRemoteRequiresAddrs: a Remote without shard addresses is a
// configuration error, not a hang or a silent local fallback.
func TestRemoteRequiresAddrs(t *testing.T) {
	var r Remote
	if _, err := r.Execute(context.Background(), Job{Cells: 1, Format: 1}, func(int, any) {}); !errors.Is(err, pcerr.ErrInvalidConfig) {
		t.Errorf("got %v, want ErrInvalidConfig", err)
	}
}

// TestAdaptChunkShrinksTowardTail pins the adaptive assignment size: full
// chunks mid-run, shrinking monotonically toward single cells as the
// remaining work approaches what the live shards hold in flight.
func TestAdaptChunkShrinksTowardTail(t *testing.T) {
	for _, tc := range []struct{ chunk, remaining, live, want int }{
		{8, 1000, 2, 8}, // mid-run: full chunk
		{8, 32, 2, 8},   // exactly 2*live*chunk: still full
		{8, 16, 2, 4},   // shards*chunk remaining: halved
		{8, 8, 2, 2},    // deep tail
		{8, 3, 2, 1},    // final cells go one by one
		{8, 1, 2, 1},
		{8, 16, 1, 8}, // one live shard: no reason to shrink early
		{8, 4, 1, 2},
		{8, 5, 0, 2}, // degenerate live count clamps to 1
	} {
		if got := adaptChunk(tc.chunk, tc.remaining, tc.live); got != tc.want {
			t.Errorf("adaptChunk(%d, %d, %d) = %d, want %d", tc.chunk, tc.remaining, tc.live, got, tc.want)
		}
	}
	// Monotone: a shrinking tail never grows an assignment.
	prev := 8
	for rem := 100; rem >= 1; rem-- {
		got := adaptChunk(8, rem, 3)
		if got > prev {
			t.Fatalf("adaptChunk grew from %d to %d at remaining=%d", prev, got, rem)
		}
		prev = got
	}
}

// TestTailRequeueRedistributes drives the dispenser directly through a
// shard death at the tail: assignments shrink from full chunks to single
// cells as the grid drains, the dead shard's cells requeue, and the
// survivor receives them lowest-index-first in tail-sized assignments -
// the deterministic dispatch contract, with less work stranded per death.
func TestTailRequeueRedistributes(t *testing.T) {
	ctx := context.Background()
	st := newRemoteState(80, 2, 5)

	a := st.take(ctx, 8)
	b := st.take(ctx, 8) // the doomed shard holds these until it dies
	if len(a) != 8 || a[0] != 0 || len(b) != 8 || b[0] != 8 {
		t.Fatalf("mid-run chunks wrong: %v / %v", a, b)
	}
	for range a {
		st.complete()
	}

	// The survivor drains the pending cells; assignments shrink toward
	// single cells as the tail approaches.
	var sizes []int
	next := 16
	for {
		cs := st.take(ctx, 8)
		if len(cs) == 0 || cs[0] != next {
			t.Fatalf("assignment %v, want start %d (lowest pending first)", cs, next)
		}
		sizes = append(sizes, len(cs))
		next = cs[len(cs)-1] + 1
		for range cs {
			st.complete()
		}
		if next == 80 {
			break
		}
	}
	want := []int{8, 8, 8, 8, 8, 8, 6, 4, 3, 2, 1}
	if len(sizes) != len(want) {
		t.Fatalf("drain sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("drain sizes %v, want %v", sizes, want)
		}
	}

	// Only the doomed shard's 8 cells remain. It dies; they requeue and
	// the survivor gets them back lowest-first in tail-sized pieces.
	st.shardExit(b, errors.New("shard died"))
	var tail [][]int
	for {
		cs := st.take(ctx, 8)
		if cs == nil {
			break
		}
		tail = append(tail, cs)
		for range cs {
			st.complete()
		}
	}
	flat := []int{}
	for _, cs := range tail {
		flat = append(flat, cs...)
	}
	for i, c := range flat {
		if c != 8+i {
			t.Fatalf("requeued cells dispensed as %v, want 8..15 in order", flat)
		}
	}
	if len(tail) == 0 || len(tail[0]) != 4 {
		t.Fatalf("first post-requeue assignment %v, want 4 cells (tail-sized)", tail)
	}
	if st.done != 80 || st.unresolved != 0 {
		t.Fatalf("ledger done=%d unresolved=%d, want 80/0", st.done, st.unresolved)
	}
}
