package sched

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"portcc/internal/pcerr"
	"portcc/internal/wire"
)

// misbehavingShard is a scripted daemon that speaks the protocol
// correctly except for the mischief injected per assignment: results
// for cells it was never assigned, duplicate results, or both. After
// the mischief it resolves the real assignment, so a robust coordinator
// completes the grid with the mischief ignored.
func misbehavingShard(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		conn := wire.NewConn(nc)
		if err := conn.ServerHello(1, 50*time.Millisecond); err != nil {
			return
		}
		if f, err := conn.Recv(); err != nil || f.Job == nil {
			return
		}
		for {
			f, err := conn.Recv()
			if err != nil || f.Assign == nil {
				return
			}
			// Mischief 1: a result for a cell nobody assigned.
			conn.Send(&wire.Frame{Result: &wire.Result{Index: 9999, Payload: chaosPayload(9999)}})
			// Mischief 2: a result for an assigned cell... with a wrong
			// payload, sent twice - only the FIRST (correct) resolution
			// below may count, and the duplicate must be dropped.
			for _, c := range f.Assign.Cells {
				conn.Send(&wire.Frame{Result: &wire.Result{Index: c, Payload: chaosPayload(c)}})
				conn.Send(&wire.Frame{Result: &wire.Result{Index: c, Payload: -1}})
			}
		}
	}()
	return ln.Addr().String()
}

// TestUnassignedAndDuplicateResultsIgnored: a shard streaming results
// for cells it was never assigned, plus duplicate result frames for
// cells it was, must not corrupt the grid - every cell is emitted
// exactly once with the first resolution's payload, and the run
// completes cleanly.
func TestUnassignedAndDuplicateResultsIgnored(t *testing.T) {
	const cells = 10
	addr := misbehavingShard(t)
	r := &Remote{Addrs: []string{addr}, DialTimeout: time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
	col := newCollector()
	done, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: cells, Format: 1}, col.emit)
	if err != nil {
		t.Fatalf("misbehaving shard failed the run: %v", err)
	}
	if done != cells {
		t.Fatalf("done = %d, want %d", done, cells)
	}
	col.verify(t, cells)
	col.mu.Lock()
	defer col.mu.Unlock()
	if _, ok := col.got[9999]; ok {
		t.Fatal("a result for a never-assigned cell was emitted")
	}
}

// TestAssignBeforeJobClosesConnection: a coordinator that skips the Job
// frame and assigns straight away is a protocol violation; the daemon
// must drop that connection without serving it - and keep accepting
// well-behaved coordinators afterwards.
func TestAssignBeforeJobClosesConnection(t *testing.T) {
	addr := startChaosShard(t, chaosServeConfig(1, 50*time.Millisecond), nil)

	nc, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)
	if _, err := conn.ClientHello(1); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if err := conn.Send(&wire.Frame{Assign: &wire.Assign{Cells: []int{0, 1}}}); err != nil {
		t.Fatalf("sending premature assign: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(3 * time.Second))
	if f, err := conn.Recv(); err == nil && !f.Heartbeat {
		t.Fatalf("daemon answered a premature assign with a %s frame, want connection close", f.Kind())
	} else if err == nil {
		// Heartbeats may race the close; the next read must fail.
		if f2, err2 := conn.Recv(); err2 == nil && !f2.Heartbeat {
			t.Fatalf("daemon kept serving after a premature assign (%s frame)", f2.Kind())
		}
	}

	// The daemon survives the violator: a proper run completes.
	r := &Remote{Addrs: []string{addr}, DialTimeout: time.Second, Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}}
	col := newCollector()
	done, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: 6, Format: 1}, col.emit)
	if err != nil || done != 6 {
		t.Fatalf("daemon did not survive the protocol violator: done=%d err=%v", done, err)
	}
	col.verify(t, 6)
}

// TestUnexpectedFrameIsPermanent: a handshake-passing peer that answers
// an assignment with a Job frame is speaking nonsense; the coordinator
// must classify it permanent (no redial) and surface the typed shard
// failure once no shards remain.
func TestUnexpectedFrameIsPermanent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var dials atomic.Int32
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			dials.Add(1)
			go func(nc net.Conn) {
				defer nc.Close()
				conn := wire.NewConn(nc)
				if err := conn.ServerHello(1, 50*time.Millisecond); err != nil {
					return
				}
				if f, err := conn.Recv(); err != nil || f.Job == nil {
					return
				}
				if f, err := conn.Recv(); err != nil || f.Assign == nil {
					return
				}
				conn.Send(&wire.Frame{Job: &wire.Job{Spec: chaosSpec{}}}) // nonsense
			}(nc)
		}
	}()
	r := &Remote{Addrs: []string{ln.Addr().String()}, DialTimeout: time.Second,
		Retry: RetryPolicy{MaxAttempts: 50, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}}
	_, err = r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: 4, Format: 1}, func(int, any) {})
	if !errors.Is(err, pcerr.ErrShardFailure) {
		t.Fatalf("got %v, want ErrShardFailure", err)
	}
	if n := dials.Load(); n > 1 {
		t.Fatalf("protocol violation was redialled %d times, want permanent failure on the first", n)
	}
}
