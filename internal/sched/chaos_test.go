package sched

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"portcc/internal/faultnet"
	"portcc/internal/pcerr"
	"portcc/internal/wire"
)

// chaosSpec is the synthetic job spec of the chaos tests: cell index ->
// deterministic payload, with an optional cell that panics.
type chaosSpec struct {
	PanicAt int // cell index whose runner panics; -1 for none
}

func init() {
	gob.Register(chaosSpec{})
	gob.Register(int(0)) // cell payloads are plain ints
}

func chaosPayload(index int) int { return index*31 + 7 }

// chaosServeConfig builds an in-process worker for chaosSpec jobs.
func chaosServeConfig(workers int, hb time.Duration) ServeConfig {
	return ServeConfig{
		Format:    1,
		Workers:   workers,
		Heartbeat: hb,
		NewRun: func(spec any) (func(slot, index int) (any, error), error) {
			s, ok := spec.(chaosSpec)
			if !ok {
				return nil, fmt.Errorf("spec is %T, want chaosSpec", spec)
			}
			return func(slot, index int) (any, error) {
				if index == s.PanicAt {
					panic(fmt.Sprintf("injected panic at cell %d", index))
				}
				return chaosPayload(index), nil
			}, nil
		},
	}
}

// startChaosShard serves chaosSpec jobs on a loopback listener wrapped
// with the given fault plan, returning the dial address.
func startChaosShard(t *testing.T, cfg ServeConfig, plan faultnet.Plan) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, faultnet.Wrap(ln, plan), cfg)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

// collector gathers emitted cells, guarding against double emission.
type collector struct {
	mu   sync.Mutex
	got  map[int]any
	dups int
}

func newCollector() *collector { return &collector{got: map[int]any{}} }

func (c *collector) emit(index int, payload any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.got[index]; ok {
		c.dups++
		return
	}
	c.got[index] = payload
}

// verify checks the collected cells against the local ground truth:
// every cell exactly once, every payload the deterministic function of
// its index - the synthetic equivalent of "dataset byte-identical to
// the local run".
func (c *collector) verify(t *testing.T, cells int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dups > 0 {
		t.Fatalf("%d cells emitted more than once", c.dups)
	}
	if len(c.got) != cells {
		t.Fatalf("%d cells emitted, want %d", len(c.got), cells)
	}
	for i := 0; i < cells; i++ {
		if c.got[i] != chaosPayload(i) {
			t.Fatalf("cell %d payload %v, want %v", i, c.got[i], chaosPayload(i))
		}
	}
}

// fastRetry is the chaos-test policy: quick redials, a budget deep
// enough to outlast any Seeded fault prefix, quarantine effectively off
// (individual tests tighten it on purpose).
func fastRetry(seed int64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		MaxStrands:  1000,
		Seed:        seed,
	}
}

// TestChaosMatrix runs one job per seed against a worker whose listener
// injects a seeded, deterministic fault schedule (reset on accept,
// death after N reads or writes, mid-frame cuts, slow links). Every
// schedule heals after its faulted prefix, so with a retry budget
// deeper than the prefix each run must end with the full grid emitted
// exactly once and byte-equivalent to the local ground truth - or, if
// it fails at all, with a correctly-typed error.
func TestChaosMatrix(t *testing.T) {
	const cells = 40
	for seed := int64(0); seed < 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			addr := startChaosShard(t, chaosServeConfig(2, 20*time.Millisecond), faultnet.Seeded(seed, 6))
			r := &Remote{Addrs: []string{addr}, DialTimeout: 2 * time.Second, Retry: fastRetry(seed)}
			col := newCollector()
			done, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: cells, Format: 1}, col.emit)
			if err != nil {
				if !errors.Is(err, pcerr.ErrShardFailure) && !errors.Is(err, pcerr.ErrCellPoisoned) {
					t.Fatalf("chaos run failed untyped: %v", err)
				}
				t.Logf("typed failure after %d cells: %v", done, err)
				return
			}
			if done != cells {
				t.Fatalf("done = %d, want %d", done, cells)
			}
			col.verify(t, cells)
		})
	}
}

// TestReconnectRejoinsMidRun is the acceptance core: the only shard's
// connection is killed mid-run (after a fixed read budget), the daemon
// stays up, and the coordinator's redial rejoins the same run - the
// grid completes with every cell exactly once and no shard error.
func TestReconnectRejoinsMidRun(t *testing.T) {
	const cells = 30
	// Connection 0 dies after enough reads to be mid-run (handshake +
	// job + a few assignments); connection 1 is clean.
	plan := func(conn int) faultnet.Fault {
		if conn == 0 {
			return faultnet.Fault{CloseAfterReads: 8}
		}
		return faultnet.Fault{}
	}
	addr := startChaosShard(t, chaosServeConfig(2, 20*time.Millisecond), plan)
	r := &Remote{Addrs: []string{addr}, DialTimeout: 2 * time.Second, Retry: fastRetry(1)}
	col := newCollector()
	done, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: cells, Format: 1}, col.emit)
	if err != nil {
		t.Fatalf("mid-run connection death was not absorbed: %v", err)
	}
	if done != cells {
		t.Fatalf("done = %d, want %d", done, cells)
	}
	col.verify(t, cells)
}

// TestRetryBudgetExhaustsTyped: an address whose every connection dies
// on accept burns the retry budget and surfaces the typed shard
// failure - it must not spin forever.
func TestRetryBudgetExhaustsTyped(t *testing.T) {
	addr := startChaosShard(t, chaosServeConfig(1, 20*time.Millisecond),
		func(int) faultnet.Fault { return faultnet.Fault{AcceptReset: true} })
	r := &Remote{Addrs: []string{addr}, DialTimeout: time.Second,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}}
	start := time.Now()
	done, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: 5, Format: 1}, func(int, any) {
		t.Error("reset-on-accept shard emitted a result")
	})
	if done != 0 || !errors.Is(err, pcerr.ErrShardFailure) {
		t.Fatalf("done=%d err=%v, want 0 cells and ErrShardFailure", done, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget exhaustion took %v, want prompt", elapsed)
	}
}

// TestVersionMismatchNotRetried: a shard built against another schema
// can never succeed, so the coordinator must fail it permanently on the
// first attempt instead of burning the backoff schedule on it.
func TestVersionMismatchNotRetried(t *testing.T) {
	cfg := chaosServeConfig(1, 20*time.Millisecond)
	cfg.Format = 2 // job carries format 1
	addr := startChaosShard(t, cfg, nil)
	r := &Remote{Addrs: []string{addr}, DialTimeout: time.Second,
		Retry: RetryPolicy{MaxAttempts: 100, BaseBackoff: time.Second, MaxBackoff: time.Second}}
	start := time.Now()
	_, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: 3, Format: 1}, func(int, any) {})
	if !errors.Is(err, pcerr.ErrDatasetVersion) || !errors.Is(err, pcerr.ErrShardFailure) {
		t.Fatalf("got %v, want ErrShardFailure wrapping ErrDatasetVersion", err)
	}
	// 100 attempts x 1s backoff would take minutes; permanent errors
	// skip the schedule entirely.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("version mismatch took %v, want no retries", elapsed)
	}
}

// TestPanicIsolation: a cell whose runner panics degrades to a typed
// CellError at its own index - and the daemon survives to serve a
// second, clean job on the same serve loop.
func TestPanicIsolation(t *testing.T) {
	const cells = 12
	addr := startChaosShard(t, chaosServeConfig(2, 20*time.Millisecond), nil)
	r := &Remote{Addrs: []string{addr}, DialTimeout: 2 * time.Second, Retry: fastRetry(2)}

	col := newCollector()
	_, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: 5}, Cells: cells, Format: 1}, col.emit)
	if !errors.Is(err, pcerr.ErrCellPanic) {
		t.Fatalf("got %v, want ErrCellPanic", err)
	}
	if errors.Is(err, pcerr.ErrShardFailure) {
		t.Fatal("a recovered cell panic was reported as a shard failure")
	}

	// The same daemon process must keep serving: a clean job completes.
	col2 := newCollector()
	done, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: cells, Format: 1}, col2.emit)
	if err != nil || done != cells {
		t.Fatalf("daemon did not survive the panic: done=%d err=%v", done, err)
	}
	col2.verify(t, cells)
}

// poisonShard is a scripted daemon that crashes (drops the connection)
// whenever an assignment contains the poison cell, after resolving the
// assignment's other cells - the canonical poison-cell shape: every
// connection that touches the cell dies, every other cell progresses.
func poisonShard(t *testing.T, poison int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				conn := wire.NewConn(nc)
				if err := conn.ServerHello(1, 50*time.Millisecond); err != nil {
					return
				}
				if f, err := conn.Recv(); err != nil || f.Job == nil {
					return
				}
				for {
					f, err := conn.Recv()
					if err != nil || f.Assign == nil {
						return
					}
					crash := false
					for _, c := range f.Assign.Cells {
						if c == poison {
							crash = true
							continue
						}
						conn.Send(&wire.Frame{Result: &wire.Result{Index: c, Payload: chaosPayload(c)}})
					}
					if crash {
						return // daemon "killed" by the poison cell
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestPoisonCellQuarantined: a cell that kills every connection it is
// assigned to must not loop forever under reconnect. After MaxStrands
// strandings the coordinator quarantines it and fails typed at the
// cell's own index; cells below it complete first (lowest-index-error
// contract preserved).
func TestPoisonCellQuarantined(t *testing.T) {
	const cells, poison = 20, 9
	addr := poisonShard(t, poison)
	r := &Remote{Addrs: []string{addr}, DialTimeout: time.Second,
		Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, MaxStrands: 3}}
	col := newCollector()
	start := time.Now()
	_, err := r.Execute(context.Background(), Job{Spec: chaosSpec{PanicAt: -1}, Cells: cells, Format: 1}, col.emit)
	if !errors.Is(err, pcerr.ErrCellPoisoned) {
		t.Fatalf("got %v, want ErrCellPoisoned", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("quarantine took %v, want prompt", elapsed)
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	for i := 0; i < poison; i++ {
		if _, ok := col.got[i]; !ok {
			t.Errorf("cell %d below the poison index never completed", i)
		}
	}
	if _, ok := col.got[poison]; ok {
		t.Error("the poison cell itself was emitted")
	}
}

// TestStrandQuarantineContract drives the dispenser directly through
// take/strand cycles: the same cell riding MaxStrands dying connections
// is quarantined with the typed error at its own index, pending cells
// above it are dropped, and the grid settles (finished closes).
func TestStrandQuarantineContract(t *testing.T) {
	ctx := context.Background()
	st := newRemoteState(6, 1, 3)
	// Cells 0..2 complete normally on their first ride.
	for want := 0; want < 3; want++ {
		got := st.take(ctx, 1)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("take = %v, want [%d]", got, want)
		}
		st.complete()
	}
	// Cell 3 rides three dying connections in a row.
	for ride := 1; ride <= 3; ride++ {
		got := st.take(ctx, 1)
		if len(got) != 1 || got[0] != 3 {
			t.Fatalf("ride %d: take = %v, want [3]", ride, got)
		}
		if st.failErr != nil {
			t.Fatalf("quarantined after only %d strandings: %v", ride-1, st.failErr)
		}
		st.strand(got)
	}
	if !errors.Is(st.failErr, pcerr.ErrCellPoisoned) || st.failIdx != 3 {
		t.Fatalf("failIdx=%d failErr=%v, want poisoned cell 3", st.failIdx, st.failErr)
	}
	// Quarantine resolved cell 3 and dropped pending 4 and 5: the grid
	// is settled, the dispenser is empty, backing-off loops wake.
	if st.unresolved != 0 {
		t.Fatalf("unresolved = %d after quarantine, want 0", st.unresolved)
	}
	if got := st.take(ctx, 1); got != nil {
		t.Fatalf("post-quarantine take = %v, want nil", got)
	}
	select {
	case <-st.finished:
	default:
		t.Fatal("finished channel not closed after the grid settled")
	}
}
