package serve

import "sync"

// featureCache is the LRU cache of profiled feature vectors, keyed by
// (program, microarchitecture). The feature vector is the expensive
// half of a prediction - one -O3 compile plus a full trace simulation -
// and the collective-optimisation workload repeats (program, uarch)
// pairs heavily across a fleet, so repeat queries must skip the
// profiling run entirely. Concurrent misses on the same key are
// single-flighted: one caller profiles, the rest wait for its result.
type featureCache struct {
	mu       sync.Mutex
	capacity int
	order    []string // LRU order, front = coldest
	vecs     map[string][]float64
	flights  map[string]*flight
}

type flight struct {
	done chan struct{}
	x    []float64
	err  error
}

func newFeatureCache(capacity int) *featureCache {
	return &featureCache{
		capacity: capacity,
		vecs:     map[string][]float64{},
		flights:  map[string]*flight{},
	}
}

// get returns the cached feature vector for key, computing it with
// compute on a miss. hit reports whether profiling was skipped - a
// cache hit proper, or a coalesced wait behind a concurrent miss.
// Failed computes are not cached; every later get retries.
func (c *featureCache) get(key string, compute func() ([]float64, error)) (x []float64, hit bool, err error) {
	c.mu.Lock()
	if x, ok := c.vecs[key]; ok {
		c.touch(key)
		c.mu.Unlock()
		return x, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.x, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.x, f.err = compute()
	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insert(key, f.x)
	}
	c.mu.Unlock()
	close(f.done)
	return f.x, false, f.err
}

// len returns the resident entry count.
func (c *featureCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vecs)
}

// insert adds a vector, evicting the coldest entries over capacity.
// Called with c.mu held.
func (c *featureCache) insert(key string, x []float64) {
	if _, ok := c.vecs[key]; ok {
		return
	}
	c.vecs[key] = x
	c.order = append(c.order, key)
	for len(c.vecs) > c.capacity {
		cold := c.order[0]
		c.order = c.order[1:]
		delete(c.vecs, cold)
	}
}

// touch moves a hit key to the warm end. Called with c.mu held.
func (c *featureCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
}
