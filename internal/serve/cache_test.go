package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"portcc/internal/pcerr"
)

func TestFeatureCacheLRUEviction(t *testing.T) {
	c := newFeatureCache(2)
	put := func(key string, v float64) {
		if _, _, err := c.get(key, func() ([]float64, error) { return []float64{v}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", 1)
	put("b", 2)
	// Touch a so b is the coldest, then insert c: b must evict.
	if _, hit, _ := c.get("a", nil); !hit {
		t.Fatal("a should be cached")
	}
	put("c", 3)
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	if _, hit, _ := c.get("a", func() ([]float64, error) { return []float64{0}, nil }); !hit {
		t.Error("a (recently touched) was evicted")
	}
	recomputed := false
	if _, hit, _ := c.get("b", func() ([]float64, error) { recomputed = true; return []float64{0}, nil }); hit || !recomputed {
		t.Error("b (coldest) should have been evicted and recomputed")
	}
}

func TestFeatureCacheErrorsNotCached(t *testing.T) {
	c := newFeatureCache(4)
	boom := errors.New("boom")
	if _, hit, err := c.get("k", func() ([]float64, error) { return nil, boom }); hit || !errors.Is(err, boom) {
		t.Fatalf("hit=%v err=%v, want miss with boom", hit, err)
	}
	// The failure must not poison the key.
	x, hit, err := c.get("k", func() ([]float64, error) { return []float64{9}, nil })
	if err != nil || hit || x[0] != 9 {
		t.Fatalf("retry after failure: x=%v hit=%v err=%v", x, hit, err)
	}
}

// TestFeatureCacheSingleFlight pins that concurrent misses on one key
// run compute exactly once; the waiters count as hits (they skipped
// profiling).
func TestFeatureCacheSingleFlight(t *testing.T) {
	c := newFeatureCache(4)
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	var hits atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, hit, err := c.get("k", func() ([]float64, error) {
				computes.Add(1)
				<-release
				return []float64{7}, nil
			})
			if err != nil || x[0] != 7 {
				t.Errorf("x=%v err=%v", x, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	// Let one goroutine enter compute, then release them all.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", computes.Load())
	}
	if hits.Load() != 7 {
		t.Fatalf("%d waiters counted as hits, want 7", hits.Load())
	}
}

func TestGateShedAndRelease(t *testing.T) {
	g := newGate(1, 1)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Second caller queues; simulate it by cancelling its wait.
	waitCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- g.acquire(waitCtx) }()
	for g.queueDepth() != 1 {
		runtime.Gosched()
	}
	// Third caller: queue full, immediate typed shed.
	if err := g.acquire(ctx); !errors.Is(err, pcerr.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v", err)
	}
	g.release()
	if err := g.acquire(ctx); err != nil {
		t.Fatalf("gate did not recover after release: %v", err)
	}
}
