package serve

import (
	"context"
	"sync/atomic"

	"portcc/internal/pcerr"
)

// gate is the bounded-admission front door: at most maxInFlight
// predictions execute concurrently, at most maxQueue more wait for a
// slot, and everything beyond that is shed immediately with
// pcerr.ErrOverloaded - the server refuses cheaply at the edge instead
// of building an unbounded backlog whose requests would all time out
// together. Shedding happens before any request work, so a shed request
// has no side effects and is always safe to retry.
type gate struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newGate(maxInFlight, maxQueue int) *gate {
	return &gate{slots: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire claims an execution slot, queueing within the bound. It
// returns pcerr.ErrOverloaded when the queue is full and ctx.Err when
// the caller gave up waiting.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return pcerr.ErrOverloaded
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (g *gate) release() { <-g.slots }

// inFlight returns how many slots are currently held.
func (g *gate) inFlight() int { return len(g.slots) }

// queueDepth returns how many requests are waiting for a slot.
func (g *gate) queueDepth() int64 { return g.queued.Load() }
