package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"portcc/internal/dataset"
	"portcc/internal/ml"
	"portcc/internal/uarch"
)

// fixture generates a small dataset and trains + saves its model once
// per test binary.
var fixture struct {
	once sync.Once
	ds   *dataset.Dataset
	m    *ml.Model
	info ml.ArtifactInfo
	err  error
}

func testDataset(t testing.TB) (*dataset.Dataset, *ml.Model, ml.ArtifactInfo) {
	t.Helper()
	fixture.once.Do(func() {
		cfg := dataset.GenConfig{
			Programs: []string{"crc", "bitcnts", "qsort"},
			NumArchs: 3,
			NumOpts:  8,
			Seed:     21,
			Eval:     dataset.EvalConfig{TargetInsns: 6000, Seed: 1},
		}
		ds, err := dataset.Generate(context.Background(), cfg)
		if err != nil {
			fixture.err = err
			return
		}
		pairs, err := ds.TrainingPairs()
		if err != nil {
			fixture.err = err
			return
		}
		m := ml.Train(pairs)
		fixture.ds, fixture.m = ds, m
		fixture.info = ml.ArtifactInfo{
			DatasetSHA256:   "test-fixture",
			TrainConfig:     cfg.Describe(),
			Programs:        len(ds.Programs),
			Archs:           len(ds.Archs),
			EvalTargetInsns: cfg.Eval.TargetInsns,
			EvalMaxInsns:    cfg.Eval.MaxInsns,
			EvalSeed:        cfg.Eval.Seed,
		}
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.ds, fixture.m, fixture.info
}

// writeArtifact saves the fixture model (or a variant) into dir.
func writeArtifact(t testing.TB, dir string, m *ml.Model, info ml.ArtifactInfo) string {
	t.Helper()
	path := filepath.Join(dir, "model.gob")
	if err := ml.Save(path, m, info); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	_, m, info := testDataset(t)
	cfg := Config{ModelPath: writeArtifact(t, t.TempDir(), m, info)}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// archSpecFor describes a dataset architecture as a request would.
func archSpecFor(a uarch.Config) ArchSpec {
	return ArchSpec{
		IL1Size: a.IL1Size, IL1Assoc: a.IL1Assoc, IL1Block: a.IL1Block,
		DL1Size: a.DL1Size, DL1Assoc: a.DL1Assoc, DL1Block: a.DL1Block,
		BTBSize: a.BTBSize, BTBAssoc: a.BTBAssoc,
		FreqMHz: a.FreqMHz, Width: a.Width,
	}
}

func postPredict(t testing.TB, h http.Handler, body any) (*httptest.ResponseRecorder, *PredictResponse) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(data))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return w, nil
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return w, &resp
}

// TestServedPredictionsMatchInProcess pins the core serving contract:
// for every (program, arch) cell of the grid, the served config_key is
// bit-identical to an in-process Model.Predict over the dataset's
// stored feature vectors - by the program path (live profiling with the
// artifact's eval parameters) and by the raw-features path alike.
func TestServedPredictionsMatchInProcess(t *testing.T) {
	ds, m, _ := testDataset(t)
	s := newTestServer(t, nil)
	h := s.Handler()
	for p := range ds.Programs {
		for a := range ds.Archs {
			wantCfg := m.Predict(ds.Features[p][a])
			want := wantCfg.Key()
			spec := archSpecFor(ds.Archs[a])
			w, resp := postPredict(t, h, PredictRequest{Program: ds.Programs[p], Arch: &spec})
			if resp == nil {
				t.Fatalf("%s/arch%d: HTTP %d: %s", ds.Programs[p], a, w.Code, w.Body)
			}
			if resp.ConfigKey != want {
				t.Fatalf("%s/arch%d: served %s, in-process %s", ds.Programs[p], a, resp.ConfigKey, want)
			}
			if resp.Cached {
				t.Fatalf("%s/arch%d: first query claims a cache hit", ds.Programs[p], a)
			}
			_, fresp := postPredict(t, h, PredictRequest{Features: ds.Features[p][a]})
			if fresp == nil || fresp.ConfigKey != want {
				t.Fatalf("%s/arch%d: raw-features path diverged", ds.Programs[p], a)
			}
		}
	}
	if len(ds.Programs)*len(ds.Archs) != int(s.cache.len()) {
		t.Errorf("cache holds %d entries, want one per grid cell (%d)",
			s.cache.len(), len(ds.Programs)*len(ds.Archs))
	}
}

// TestRepeatQuerySkipsProfiling pins the cache contract: a repeated
// (program, uarch) query reports cached=true and runs zero additional
// compiles or simulations.
func TestRepeatQuerySkipsProfiling(t *testing.T) {
	ds, _, _ := testDataset(t)
	s := newTestServer(t, nil)
	spec := archSpecFor(ds.Archs[0])
	req := PredictRequest{Program: ds.Programs[0], Arch: &spec}

	_, first := postPredict(t, s.Handler(), req)
	if first == nil || first.Cached {
		t.Fatalf("first query: resp=%+v, want uncached success", first)
	}
	before := s.Stats()
	_, second := postPredict(t, s.Handler(), req)
	if second == nil || !second.Cached {
		t.Fatalf("second query: resp=%+v, want cached success", second)
	}
	after := s.Stats()
	if after.Compiles != before.Compiles || after.Simulations != before.Simulations {
		t.Fatalf("repeat query profiled: compiles %d->%d simulations %d->%d",
			before.Compiles, after.Compiles, before.Simulations, after.Simulations)
	}
	if second.ConfigKey != first.ConfigKey {
		t.Fatal("cached prediction differs from the profiled one")
	}
	if s.mCacheHit.Value() != 1 || s.mCacheMiss.Value() != 1 {
		t.Errorf("cache counters hit=%d miss=%d, want 1/1", s.mCacheHit.Value(), s.mCacheMiss.Value())
	}
}

// TestConcurrentClientsBitIdentical hammers the handler from parallel
// clients (mixed programs and arches, cache hits and misses racing) and
// requires every response to be bit-identical to the in-process model.
func TestConcurrentClientsBitIdentical(t *testing.T) {
	ds, m, _ := testDataset(t)
	// Admission must not shed here (that contract has its own test), so
	// give the gate headroom beyond the client count on any machine.
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 8; c.MaxQueue = 64 })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	const clients = 8
	const perClient = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				p := (c + i) % len(ds.Programs)
				a := (c * i) % len(ds.Archs)
				spec := archSpecFor(ds.Archs[a])
				body, _ := json.Marshal(PredictRequest{Program: ds.Programs[p], Arch: &spec})
				resp, err := http.Post(hs.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var pr PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				wantCfg := m.Predict(ds.Features[p][a])
				if want := wantCfg.Key(); pr.ConfigKey != want {
					errs <- fmt.Errorf("%s/arch%d: served %s, want %s", ds.Programs[p], a, pr.ConfigKey, want)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadSheds pins the overload contract: with one execution slot and
// a one-deep queue, a third concurrent request is refused with a typed
// 429 + Retry-After while both admitted requests complete correctly,
// and /metrics reports the shed.
func TestLoadSheds(t *testing.T) {
	ds, m, _ := testDataset(t)
	hold := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
		c.RetryAfter = 2 * time.Second
	})
	s.testHookAdmitted = func() { <-hold }
	wantCfg := m.Predict(ds.Features[0][0])
	want := wantCfg.Key()
	x := ds.Features[0][0]

	type outcome struct {
		code int
		key  string
	}
	results := make(chan outcome, 2)
	do := func() {
		w, resp := postPredict(t, s.Handler(), PredictRequest{Features: x})
		o := outcome{code: w.Code}
		if resp != nil {
			o.key = resp.ConfigKey
		}
		results <- o
	}
	go do() // takes the slot, parks in the hook
	waitFor(t, func() bool { return s.gate.inFlight() == 1 })
	go do() // queues
	waitFor(t, func() bool { return s.gate.queueDepth() == 1 })

	// Queue full: this one must shed immediately, with no side effects.
	w, _ := postPredict(t, s.Handler(), PredictRequest{Features: x})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("third concurrent request: HTTP %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var eresp errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &eresp); err != nil || eresp.Code != "overloaded" {
		t.Errorf("shed body = %s, want code overloaded", w.Body)
	}

	close(hold) // release the parked requests
	for i := 0; i < 2; i++ {
		o := <-results
		if o.code != http.StatusOK || o.key != want {
			t.Fatalf("admitted request corrupted by the shed: HTTP %d key %q, want 200 %q", o.code, o.key, want)
		}
	}
	if got := s.mShed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if got := s.mRequests.Value("overloaded"); got != 1 {
		t.Errorf(`requests_total{outcome="overloaded"} = %d, want 1`, got)
	}
	body, _ := s.Metrics().Expose()
	if !strings.Contains(body, "portccs_load_shed_total 1") {
		t.Error("/metrics does not report the shed count")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHotReload swaps the artifact on disk and expects the server to
// pick it up; a subsequent artifact with different profiling parameters
// must be rejected while the last good model keeps serving.
func TestHotReload(t *testing.T) {
	ds, m, info := testDataset(t)
	dir := t.TempDir()
	path := writeArtifact(t, dir, m, info)
	s, err := New(Config{ModelPath: path, ReloadEvery: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	healthz := func() healthzResponse {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
		var h healthzResponse
		if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
			t.Fatalf("healthz: %v", err)
		}
		return h
	}
	sha1 := healthz().ModelSHA256

	// A model variant with different hyper-parameters: different bytes,
	// same profiling parameters -> accepted.
	m2 := *m
	m2.KNeighbours = 1
	info2 := info
	info2.DatasetSHA256 = "test-fixture-v2"
	time.Sleep(10 * time.Millisecond) // ensure a distinct mtime
	if err := ml.Save(path, &m2, info2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return healthz().ModelSHA256 != sha1 })
	if got := healthz().DatasetSHA256; got != "test-fixture-v2" {
		t.Fatalf("after reload, dataset fingerprint = %s, want test-fixture-v2", got)
	}
	// The initial load at New also reports "ok", so the swap makes two.
	if got := s.mReloads.Value("ok"); got != 2 {
		t.Errorf(`reloads{outcome="ok"} = %d, want 2 (initial load + swap)`, got)
	}

	// Changed profiling parameters: rejected, old model keeps serving.
	info3 := info
	info3.EvalTargetInsns = info.EvalTargetInsns + 1
	time.Sleep(10 * time.Millisecond)
	if err := ml.Save(path, m, info3); err != nil {
		t.Fatal(err)
	}
	// Staleness checks only run on requests, so keep querying.
	waitFor(t, func() bool { healthz(); return s.mReloads.Value("rejected") >= 1 })
	if got := healthz().DatasetSHA256; got != "test-fixture-v2" {
		t.Fatalf("rejected artifact was swapped in (dataset %s)", got)
	}

	// Predictions still work against the sane grid cell.
	_, resp := postPredict(t, s.Handler(), PredictRequest{Features: ds.Features[0][0]})
	if resp == nil {
		t.Fatal("prediction failed after rejected reload")
	}
}

// TestBadRequests walks the request validation space.
func TestBadRequests(t *testing.T) {
	ds, _, _ := testDataset(t)
	s := newTestServer(t, nil)
	h := s.Handler()
	for name, tc := range map[string]struct {
		body any
		code int
	}{
		"empty":             {PredictRequest{}, http.StatusBadRequest},
		"both":              {PredictRequest{Program: "crc", Features: ds.Features[0][0]}, http.StatusBadRequest},
		"short features":    {PredictRequest{Features: []float64{1, 2}}, http.StatusBadRequest},
		"program no arch":   {PredictRequest{Program: "crc"}, http.StatusBadRequest},
		"unknown program":   {PredictRequest{Program: "no-such-program", Arch: &ArchSpec{}}, http.StatusNotFound},
		"invalid arch":      {PredictRequest{Program: "crc", Arch: &ArchSpec{IL1Size: 12345}}, http.StatusBadRequest},
		"unknown json keys": {map[string]any{"programme": "crc"}, http.StatusBadRequest},
	} {
		w, _ := postPredict(t, h, tc.body)
		if w.Code != tc.code {
			t.Errorf("%s: HTTP %d, want %d (%s)", name, w.Code, tc.code, w.Body)
		}
	}
	// Wrong method.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/predict", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict: HTTP %d, want 405", w.Code)
	}
}

// TestDrainLeavesNoGoroutines pins that a full serve lifecycle -
// concurrent traffic, then server shutdown - leaves no goroutines
// behind: the serve package spawns none of its own.
func TestDrainLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		s := newTestServer(t, nil)
		hs := httptest.NewServer(s.Handler())
		defer hs.Close()
		ds, _, _ := testDataset(t)
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				spec := archSpecFor(ds.Archs[c%len(ds.Archs)])
				body, _ := json.Marshal(PredictRequest{Program: ds.Programs[c%len(ds.Programs)], Arch: &spec})
				resp, err := http.Post(hs.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}(c)
		}
		wg.Wait()
	}()
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}

// TestWarmPredictAllocs pins the allocation budget of the warm handler
// path (cached features, request decode, inference, response encode).
// Measured ~141 allocs/op; the pin leaves headroom for stdlib drift
// while catching an accidental per-request copy of the model or cache.
func TestWarmPredictAllocs(t *testing.T) {
	ds, _, _ := testDataset(t)
	s := newTestServer(t, nil)
	h := s.Handler()
	spec := archSpecFor(ds.Archs[0])
	body, _ := json.Marshal(PredictRequest{Program: ds.Programs[0], Arch: &spec})
	do := func() {
		req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", w.Code, w.Body)
		}
	}
	do() // warm the feature cache
	if allocs := testing.AllocsPerRun(50, do); allocs > 200 {
		t.Errorf("warm predict allocates %.0f objects per request, want <= 200", allocs)
	}
}

// BenchmarkServePredict measures the warm handler path: the feature
// vector is cached, so a prediction is pure model inference plus JSON.
// The companion assertions pin that warm queries run zero compiles or
// simulations, and the alloc pin keeps the handler path flat.
func BenchmarkServePredict(b *testing.B) {
	ds, _, _ := testDataset(b)
	s, err := New(Config{ModelPath: writeArtifact(b, b.TempDir(), fixture.m, fixture.info)})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	spec := archSpecFor(ds.Archs[0])
	body, _ := json.Marshal(PredictRequest{Program: ds.Programs[0], Arch: &spec})

	do := func() int {
		req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code
	}
	if code := do(); code != http.StatusOK { // warm the cache
		b.Fatalf("warm-up: HTTP %d", code)
	}
	before := s.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("HTTP %d", code)
		}
	}
	b.StopTimer()
	after := s.Stats()
	if after.Compiles != before.Compiles || after.Simulations != before.Simulations {
		b.Fatalf("warm predictions profiled: compiles %d->%d simulations %d->%d",
			before.Compiles, after.Compiles, before.Simulations, after.Simulations)
	}
}
