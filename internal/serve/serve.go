// Package serve is the prediction front door of the repo: an always-on
// HTTP JSON server (cmd/portccs) that answers "which optimisation
// settings should this program use on this microarchitecture?" from a
// pre-trained, versioned model artifact - the paper's Figure 2
// deployment path as a service.
//
// The serving stack has three concerns, each bounded:
//
//   - Models are loaded from ml artifacts through a warm in-memory
//     Registry that hot-reloads when the file changes on disk
//     (throttled mtime check, content-fingerprint compare), so a
//     retrain deploys by atomically replacing one file - no restart.
//
//   - Feature vectors - one -O3 profiling run each, the expensive half
//     of a prediction - are memoised in an LRU cache keyed by
//     (program, microarchitecture) with single-flighted misses, so the
//     recurring queries of a fleet cost microseconds, not simulations.
//
//   - Admission control bounds concurrent predictions and the waiting
//     queue; excess load is shed immediately with HTTP 429 and a
//     Retry-After header (typed pcerr.ErrOverloaded internally) before
//     any work starts, and /metrics exposes Prometheus-text counters,
//     latency histograms, cache ratios and queue depths for the whole
//     pipeline.
//
// Endpoints: POST /v1/predict (program name or raw feature vector,
// plus a microarchitecture description), GET /healthz, GET /metrics.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"portcc/internal/dataset"
	"portcc/internal/features"
	"portcc/internal/ml"
	"portcc/internal/opt"
	"portcc/internal/pcerr"
	"portcc/internal/serve/metrics"
	"portcc/internal/uarch"
)

// Config describes a prediction server.
type Config struct {
	// ModelPath is the model artifact to serve (required). The file is
	// re-checked on a ReloadEvery throttle and hot-reloaded on change.
	ModelPath string
	// Eval overrides the profiling workload parameters. The zero value
	// (recommended) adopts the parameters embedded in the artifact, which
	// keeps served feature vectors comparable to the training
	// distribution.
	Eval dataset.EvalConfig
	// CacheEntries bounds the (program, uarch) feature cache
	// (default 1024 entries).
	CacheEntries int
	// MaxInFlight bounds concurrently executing predictions
	// (default GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds predictions waiting for an execution slot; beyond
	// it requests are shed with 429 (default 4x MaxInFlight).
	MaxQueue int
	// RetryAfter is the advisory Retry-After delay on shed responses
	// (default 1s).
	RetryAfter time.Duration
	// ReloadEvery throttles artifact staleness checks (default 1s).
	ReloadEvery time.Duration
	// Store, when non-nil, is a persistent content-addressed result
	// store backing the profiling evaluator: feature-vector replays hit
	// it across restarts, so a redeployed server warms from disk instead
	// of re-simulating its fleet's programs. The server does not close
	// it.
	Store *dataset.ResultStore
	// Logf receives operational log lines (default: discard).
	Logf func(string, ...any)
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ReloadEvery <= 0 {
		c.ReloadEvery = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the HTTP prediction service. Create with New, expose with
// Handler, and drain by shutting down the enclosing http.Server - the
// Server itself owns no goroutines, so once in-flight handlers return
// nothing lingers.
type Server struct {
	cfg   Config
	reg   *Registry
	cache *featureCache
	gate  *gate
	ev    *dataset.Evaluator
	eval  dataset.EvalConfig
	mux   *http.ServeMux

	reg2        *metrics.Registry
	mRequests   *metrics.CounterVec
	mLatency    *metrics.Histogram
	mShed       *metrics.Counter
	mCacheHit   *metrics.Counter
	mCacheMiss  *metrics.Counter
	mReloads    *metrics.CounterVec
	mInFlight   *metrics.Gauge
	mQueueDepth *metrics.Gauge

	// testHookAdmitted, when non-nil, runs after admission and before
	// any prediction work - tests park it to hold slots occupied.
	testHookAdmitted func()
}

// New builds a server and eagerly loads the model artifact, failing
// fast on a missing or version-mismatched file.
func New(cfg Config) (*Server, error) {
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("serve: %w: ModelPath is required", pcerr.ErrInvalidConfig)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newFeatureCache(cfg.CacheEntries),
		gate:  newGate(cfg.MaxInFlight, cfg.MaxQueue),
	}
	s.initMetrics()
	s.reg = NewRegistry(cfg.ReloadEvery, s.acceptModel, func(outcome string) { s.mReloads.Inc(outcome) }, cfg.Logf)
	loaded, err := s.reg.Get(cfg.ModelPath)
	if err != nil {
		return nil, err
	}
	s.eval = cfg.Eval
	if s.eval == (dataset.EvalConfig{}) {
		s.eval = evalFromInfo(loaded.Info)
	} else if s.eval != evalFromInfo(loaded.Info) {
		cfg.Logf("profiling parameters %+v override the artifact's %+v: served features will differ from the training distribution", s.eval, evalFromInfo(loaded.Info))
	}
	s.ev = dataset.NewEvaluator(s.eval)
	if cfg.Store != nil {
		s.ev.SetStore(cfg.Store)
	}
	s.initEvalMetrics()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// evalFromInfo reconstructs the profiling parameters embedded in an
// artifact.
func evalFromInfo(info ml.ArtifactInfo) dataset.EvalConfig {
	return dataset.EvalConfig{
		TargetInsns: info.EvalTargetInsns,
		MaxInsns:    info.EvalMaxInsns,
		Seed:        info.EvalSeed,
	}
}

// acceptModel gates hot-reloaded artifacts: a replacement trained with
// different profiling parameters would make cached and future feature
// vectors incomparable to its training distribution, so it is rejected
// (the server keeps serving the old model; deploy such a change with a
// restart instead).
func (s *Server) acceptModel(next, cur *Loaded) error {
	if cur == nil {
		return nil // first load establishes the parameters
	}
	if evalFromInfo(next.Info) != evalFromInfo(cur.Info) {
		return fmt.Errorf("serve: %w: artifact profiling parameters changed %+v -> %+v; restart to adopt them",
			pcerr.ErrInvalidConfig, evalFromInfo(cur.Info), evalFromInfo(next.Info))
	}
	return nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics registry (for embedding).
func (s *Server) Metrics() *metrics.Registry { return s.reg2 }

// Stats returns the profiling evaluator's work ledger.
func (s *Server) Stats() dataset.Stats { return s.ev.Stats() }

func (s *Server) initMetrics() {
	r := metrics.NewRegistry()
	s.reg2 = r
	s.mRequests = r.CounterVec("portccs_requests_total",
		"Prediction requests by outcome.", "outcome")
	s.mLatency = r.Histogram("portccs_request_seconds",
		"Prediction request latency in seconds.", nil)
	s.mShed = r.Counter("portccs_load_shed_total",
		"Requests refused with 429 because the admission queue was full.")
	s.mCacheHit = r.Counter("portccs_feature_cache_hits_total",
		"Predictions served from the (program, uarch) feature cache.")
	s.mCacheMiss = r.Counter("portccs_feature_cache_misses_total",
		"Predictions that ran an -O3 profiling simulation.")
	s.mReloads = r.CounterVec("portccs_model_reloads_total",
		"Model artifact reload attempts by outcome.", "outcome")
	r.CounterFunc("portccs_feature_cache_entries",
		"Resident feature-cache entries.", func() float64 { return float64(s.cache.len()) })
	s.mInFlight = r.Gauge("portccs_inflight", "Predictions currently executing.")
	s.mQueueDepth = r.Gauge("portccs_queue_depth", "Predictions waiting for an execution slot.")
}

// initEvalMetrics bridges the evaluator's work ledger into /metrics;
// split from initMetrics because the evaluator exists only after the
// first model load fixes the profiling parameters.
func (s *Server) initEvalMetrics() {
	stat := func(pick func(dataset.Stats) float64) func() float64 {
		return func() float64 { return pick(s.ev.Stats()) }
	}
	s.reg2.CounterFunc("portccs_eval_compiles_total",
		"Profiling compilations performed.", stat(func(st dataset.Stats) float64 { return float64(st.Compiles) }))
	s.reg2.CounterFunc("portccs_eval_simulations_total",
		"Profiling simulations performed.", stat(func(st dataset.Stats) float64 { return float64(st.Simulations) }))
	s.reg2.CounterFunc("portccs_eval_trace_gens_total",
		"Traces generated by the profiling evaluator.", stat(func(st dataset.Stats) float64 { return float64(st.TraceGens) }))
	s.reg2.CounterFunc("portccs_eval_trace_events_total",
		"Dynamic instructions emitted into profiling traces.", stat(func(st dataset.Stats) float64 { return float64(st.TraceEvents) }))
	s.reg2.CounterFunc("portccs_store_hits_total",
		"Profiling replays answered from the persistent result store.", stat(func(st dataset.Stats) float64 { return float64(st.StoreHits) }))
	s.reg2.CounterFunc("portccs_store_misses_total",
		"Profiling replays not found in the persistent result store.", stat(func(st dataset.Stats) float64 { return float64(st.StoreMisses) }))
	s.reg2.CounterFunc("portccs_store_corrupt_total",
		"Corrupt result-store entries quarantined on read.", stat(func(st dataset.Stats) float64 { return float64(st.StoreCorrupt) }))
	s.reg2.CounterFunc("portccs_store_remote_hits_total",
		"Profiling replays answered by the shared store service.", stat(func(st dataset.Stats) float64 { return float64(st.StoreRemoteHits) }))
	s.reg2.CounterFunc("portccs_store_remote_misses_total",
		"Store-service lookups the service answered with a miss.", stat(func(st dataset.Stats) float64 { return float64(st.StoreRemoteMisses) }))
	s.reg2.CounterFunc("portccs_store_remote_errors_total",
		"Store-service lookups degraded by transport trouble (absorbed as misses).", stat(func(st dataset.Stats) float64 { return float64(st.StoreRemoteErrors) }))
}

// ArchSpec is the JSON microarchitecture description of a predict
// request. Zero fields default to the XScale reference values, so a
// request only names what it varies.
type ArchSpec struct {
	IL1Size  int `json:"il1_size,omitempty"`
	IL1Assoc int `json:"il1_assoc,omitempty"`
	IL1Block int `json:"il1_block,omitempty"`
	DL1Size  int `json:"dl1_size,omitempty"`
	DL1Assoc int `json:"dl1_assoc,omitempty"`
	DL1Block int `json:"dl1_block,omitempty"`
	BTBSize  int `json:"btb_size,omitempty"`
	BTBAssoc int `json:"btb_assoc,omitempty"`
	FreqMHz  int `json:"freq_mhz,omitempty"`
	Width    int `json:"width,omitempty"`
}

// Arch resolves the spec against the XScale defaults and validates it.
func (a ArchSpec) Arch() (uarch.Config, error) {
	c := uarch.XScale()
	set := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	set(&c.IL1Size, a.IL1Size)
	set(&c.IL1Assoc, a.IL1Assoc)
	set(&c.IL1Block, a.IL1Block)
	set(&c.DL1Size, a.DL1Size)
	set(&c.DL1Assoc, a.DL1Assoc)
	set(&c.DL1Block, a.DL1Block)
	set(&c.BTBSize, a.BTBSize)
	set(&c.BTBAssoc, a.BTBAssoc)
	set(&c.FreqMHz, a.FreqMHz)
	set(&c.Width, a.Width)
	return c, c.Validate()
}

// PredictRequest is the body of POST /v1/predict. Exactly one of
// Program or Features must be set: Program profiles the named benchmark
// at -O3 on Arch (cached), Features supplies a pre-measured vector
// x = (d, c) directly (Arch then only annotates the response).
type PredictRequest struct {
	Program  string    `json:"program,omitempty"`
	Features []float64 `json:"features,omitempty"`
	Arch     *ArchSpec `json:"arch,omitempty"`
}

// DimMixture is one optimisation dimension of the predictive mixture
// q(y|x): the distribution over the dimension's values.
type DimMixture struct {
	Dim   string    `json:"dim"`
	Probs []float64 `json:"probs"`
}

// PredictResponse is the body of a successful prediction.
type PredictResponse struct {
	Program string `json:"program,omitempty"`
	Arch    string `json:"arch,omitempty"`
	// ConfigKey is the canonical encoding of the predicted-best setting
	// (opt.Config.Key); ConfigGCC the human-readable gcc-style flags.
	ConfigKey string `json:"config_key"`
	ConfigGCC string `json:"config_gcc"`
	// Mixture is the per-dimension predictive distribution the mode was
	// taken from (equation 1 of the paper).
	Mixture []DimMixture `json:"mixture"`
	// Cached reports that the feature vector came from the cache - no
	// profiling simulation ran for this request.
	Cached bool `json:"cached"`
	// ModelDatasetSHA256 names the training dataset of the model that
	// answered, for end-to-end traceability.
	ModelDatasetSHA256 string `json:"model_dataset_sha256"`
}

// errorResponse is the JSON error body; Code is machine-readable.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// RetryAfterMS accompanies code "overloaded".
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := "ok"
	defer func() {
		s.mRequests.Inc(outcome)
		s.mLatency.Observe(time.Since(start).Seconds())
	}()

	if err := s.gate.acquire(r.Context()); err != nil {
		if errors.Is(err, pcerr.ErrOverloaded) {
			outcome = "overloaded"
			s.mShed.Inc()
			w.Header().Set("Retry-After", strconv.FormatInt(int64(s.cfg.RetryAfter/time.Second), 10))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{
				Error: err.Error(), Code: "overloaded",
				RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
			})
			return
		}
		outcome = "canceled"
		writeJSON(w, statusClientClosedRequest, errorResponse{Error: err.Error(), Code: "canceled"})
		return
	}
	defer s.gate.release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}

	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		outcome = "bad_request"
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error(), Code: "bad_request"})
		return
	}
	resp, status, errResp := s.predict(&req)
	if errResp != nil {
		outcome = errResp.Code
		writeJSON(w, status, *errResp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away while the request waited for an admission slot.
const statusClientClosedRequest = 499

// predict resolves features, queries the model, and shapes the
// response. It returns either a response or an error body plus status.
func (s *Server) predict(req *PredictRequest) (*PredictResponse, int, *errorResponse) {
	loaded, err := s.reg.Get(s.cfg.ModelPath)
	if err != nil {
		return nil, http.StatusServiceUnavailable, &errorResponse{Error: "model unavailable: " + err.Error(), Code: "no_model"}
	}
	resp := &PredictResponse{ModelDatasetSHA256: loaded.Info.DatasetSHA256}

	var x []float64
	switch {
	case req.Program != "" && req.Features != nil:
		return nil, http.StatusBadRequest, &errorResponse{Error: "set either program or features, not both", Code: "bad_request"}
	case req.Features != nil:
		if len(req.Features) != features.Dim {
			return nil, http.StatusBadRequest, &errorResponse{
				Error: fmt.Sprintf("feature vector has %d dimensions, want %d", len(req.Features), features.Dim),
				Code:  "bad_request",
			}
		}
		x = req.Features
		if req.Arch != nil {
			arch, err := req.Arch.Arch()
			if err != nil {
				return nil, http.StatusBadRequest, &errorResponse{Error: err.Error(), Code: "bad_request"}
			}
			resp.Arch = arch.String()
		}
	case req.Program != "":
		if req.Arch == nil {
			return nil, http.StatusBadRequest, &errorResponse{Error: "program prediction needs an arch to profile on", Code: "bad_request"}
		}
		arch, err := req.Arch.Arch()
		if err != nil {
			return nil, http.StatusBadRequest, &errorResponse{Error: err.Error(), Code: "bad_request"}
		}
		resp.Program, resp.Arch = req.Program, arch.String()
		key := req.Program + "|" + arch.String()
		var hit bool
		x, hit, err = s.cache.get(key, func() ([]float64, error) {
			o3 := opt.O3()
			res, err := s.ev.Run(req.Program, &o3, arch)
			if err != nil {
				return nil, err
			}
			return features.Vector(arch, &res), nil
		})
		if err != nil {
			if errors.Is(err, pcerr.ErrUnknownProgram) {
				return nil, http.StatusNotFound, &errorResponse{Error: err.Error(), Code: "unknown_program"}
			}
			return nil, http.StatusInternalServerError, &errorResponse{Error: err.Error(), Code: "error"}
		}
		resp.Cached = hit
		if hit {
			s.mCacheHit.Inc()
		} else {
			s.mCacheMiss.Inc()
		}
	default:
		return nil, http.StatusBadRequest, &errorResponse{Error: "set program or features", Code: "bad_request"}
	}

	mix := loaded.Model.Mixture(x)
	cfg := mix.Mode()
	resp.ConfigKey = cfg.Key()
	resp.ConfigGCC = cfg.String()
	resp.Mixture = mixtureDims(&mix)
	return resp, http.StatusOK, nil
}

// mixtureDims flattens the mixture into named per-dimension
// distributions, each trimmed to its dimension's true value count.
func mixtureDims(mix *ml.Dist) []DimMixture {
	out := make([]DimMixture, opt.NumDims)
	for l := 0; l < opt.NumDims; l++ {
		probs := make([]float64, opt.DimSize(l))
		copy(probs, mix.Theta[l][:opt.DimSize(l)])
		out[l] = DimMixture{Dim: opt.DimName(l), Probs: probs}
	}
	return out
}

// healthzResponse is the body of GET /healthz.
type healthzResponse struct {
	Status string `json:"status"`
	// ModelSHA256 fingerprints the artifact file in service;
	// DatasetSHA256 the dataset it was trained from.
	ModelSHA256   string `json:"model_sha256"`
	DatasetSHA256 string `json:"dataset_sha256"`
	Pairs         int    `json:"pairs"`
	TrainConfig   string `json:"train_config"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	loaded, err := s.reg.Get(s.cfg.ModelPath)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error(), Code: "no_model"})
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:        "ok",
		ModelSHA256:   loaded.SHA256,
		DatasetSHA256: loaded.Info.DatasetSHA256,
		Pairs:         loaded.Info.Pairs,
		TrainConfig:   loaded.Info.TrainConfig,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncGauges()
	body, ctype := s.reg2.Expose()
	w.Header().Set("Content-Type", ctype)
	w.Write([]byte(body))
}

// syncGauges refreshes the point-in-time gauges before a scrape.
func (s *Server) syncGauges() {
	s.mInFlight.Set(int64(s.gate.inFlight()))
	s.mQueueDepth.Set(s.gate.queueDepth())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
