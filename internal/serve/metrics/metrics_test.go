package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.")
	g := r.Gauge("depth", "Depth.")
	c.Inc()
	c.Add(2)
	g.Set(7)
	g.Add(-3)
	body, ctype := r.Expose()
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("content type %q lacks the exposition version", ctype)
	}
	for _, want := range []string{
		"# HELP requests_total Requests.",
		"# TYPE requests_total counter",
		"requests_total 3",
		"# TYPE depth gauge",
		"depth 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	if c.Value() != 3 || g.Value() != 4 {
		t.Errorf("values %d/%d, want 3/4", c.Value(), g.Value())
	}
}

func TestCounterVecSortedChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("outcomes_total", "By outcome.", "outcome")
	v.Inc("zebra")
	v.Inc("alpha")
	v.Inc("alpha")
	body, _ := r.Expose()
	ia := strings.Index(body, `outcomes_total{outcome="alpha"} 2`)
	iz := strings.Index(body, `outcomes_total{outcome="zebra"} 1`)
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("children missing or unsorted:\n%s", body)
	}
	if v.Value("alpha") != 2 || v.Value("never") != 0 {
		t.Error("Value accessor wrong")
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	body, _ := r.Expose()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

// TestHistogramBoundary pins the le contract: an observation equal to a
// bound lands in that bound's bucket (le is <=).
func TestHistogramBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "B.", []float64{1, 2})
	h.Observe(1)
	body, _ := r.Expose()
	if !strings.Contains(body, `b_bucket{le="1"} 1`) {
		t.Fatalf("observation at the bound missed its bucket:\n%s", body)
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.CounterFunc("work_total", "Work.", func() float64 { n++; return n })
	if body, _ := r.Expose(); !strings.Contains(body, "work_total 1") {
		t.Errorf("first render:\n%s", body)
	}
	if body, _ := r.Expose(); !strings.Contains(body, "work_total 2") {
		t.Error("callback not re-evaluated per render")
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family name did not panic")
		}
	}()
	r.Counter("dup", "y")
}

func TestBadBucketsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	r.Histogram("h", "x", []float64{1, 1})
}

func TestFormatFloatInf(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatFloat(+Inf) = %q", got)
	}
}

// TestConcurrentInstruments exercises every instrument from parallel
// goroutines while rendering; run under -race this pins thread safety.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "c")
	v := r.CounterVec("v", "v", "l")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.Inc("a")
				g.Add(1)
				h.Observe(float64(i) / 1000)
				if i%100 == 0 {
					r.Expose()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 4000 || v.Value("a") != 4000 || g.Value() != 4000 || h.Count() != 4000 {
		t.Fatalf("lost updates: c=%d v=%d g=%d h=%d", c.Value(), v.Value("a"), g.Value(), h.Count())
	}
}
