// Package metrics is a minimal, dependency-free Prometheus text-format
// exposition library: counters, labelled counters, gauges, histograms,
// and callback counters, registered on a Registry that renders the
// standard exposition format (text/plain; version=0.0.4) on demand.
//
// It exists because the repo's north star needs observability surfaces
// (request rates, latencies, cache hit ratios, queue depths) but the
// container bakes in no external modules; the subset implemented here
// is exactly what a Prometheus or OpenMetrics scraper consumes. All
// instruments are safe for concurrent use and update with atomics on
// the hot path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is anything that can render itself in exposition format.
type metric interface {
	// name returns the family name (for HELP/TYPE headers).
	name() string
	// typ returns the Prometheus type: counter, gauge or histogram.
	typ() string
	// help returns the one-line family description.
	help() string
	// write appends the sample lines (without HELP/TYPE headers).
	write(w io.Writer)
}

// Registry holds registered instruments and renders them in
// registration order, so /metrics output is deterministic.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// register adds a metric family, panicking on duplicate names (a
// programming error: families are registered once at startup).
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name()] {
		panic(fmt.Sprintf("metrics: duplicate family %q", m.name()))
	}
	r.names[m.name()] = true
	r.metrics = append(r.metrics, m)
}

// Render writes every family in exposition format.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n", m.name(), m.help())
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name(), m.typ())
		m.write(w)
	}
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	nameStr, helpStr string
	v                atomic.Uint64
}

// Counter registers and returns a new counter family with one sample.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{nameStr: name, helpStr: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) name() string { return c.nameStr }
func (c *Counter) typ() string  { return "counter" }
func (c *Counter) help() string { return c.helpStr }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.nameStr, c.v.Load())
}

// CounterVec is a counter family partitioned by one label. Children are
// created on first use and render sorted by label value.
type CounterVec struct {
	nameStr, helpStr, label string

	mu       sync.Mutex
	children map[string]*atomic.Uint64
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	c := &CounterVec{nameStr: name, helpStr: help, label: label, children: map[string]*atomic.Uint64{}}
	r.register(c)
	return c
}

// With returns the child counter for a label value, creating it at zero
// on first use (so a value appears in /metrics from its first touch).
func (c *CounterVec) With(value string) *atomic.Uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	child, ok := c.children[value]
	if !ok {
		child = &atomic.Uint64{}
		c.children[value] = child
	}
	return child
}

// Inc adds one to the child for a label value.
func (c *CounterVec) Inc(value string) { c.With(value).Add(1) }

// Value returns the child's current count (zero if never touched).
func (c *CounterVec) Value(value string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if child, ok := c.children[value]; ok {
		return child.Load()
	}
	return 0
}

func (c *CounterVec) name() string { return c.nameStr }
func (c *CounterVec) typ() string  { return "counter" }
func (c *CounterVec) help() string { return c.helpStr }
func (c *CounterVec) write(w io.Writer) {
	c.mu.Lock()
	vals := make([]string, 0, len(c.children))
	for v := range c.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	counts := make([]uint64, len(vals))
	for i, v := range vals {
		counts[i] = c.children[v].Load()
	}
	c.mu.Unlock()
	for i, v := range vals {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", c.nameStr, c.label, v, counts[i])
	}
}

// Gauge is a value that can go up and down.
type Gauge struct {
	nameStr, helpStr string
	v                atomic.Int64
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{nameStr: name, helpStr: help}
	r.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.nameStr }
func (g *Gauge) typ() string  { return "gauge" }
func (g *Gauge) help() string { return g.helpStr }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.nameStr, g.v.Load())
}

// CounterFunc is a counter whose value is read from a callback at
// render time - the bridge for counters owned elsewhere (for example
// dataset.Evaluator.Stats).
type CounterFunc struct {
	nameStr, helpStr string
	fn               func() float64
}

// CounterFunc registers a callback-backed counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) *CounterFunc {
	c := &CounterFunc{nameStr: name, helpStr: help, fn: fn}
	r.register(c)
	return c
}

func (c *CounterFunc) name() string { return c.nameStr }
func (c *CounterFunc) typ() string  { return "counter" }
func (c *CounterFunc) help() string { return c.helpStr }
func (c *CounterFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", c.nameStr, formatFloat(c.fn()))
}

// Histogram observes value distributions into cumulative buckets, the
// Prometheus way: le-labelled cumulative counts, plus _sum and _count.
type Histogram struct {
	nameStr, helpStr string
	bounds           []float64 // upper bounds, ascending, +Inf implicit

	counts  []atomic.Uint64 // one per bound, plus the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DefBuckets spans sub-millisecond cache hits to multi-second cold
// profiling runs (seconds).
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram registers a histogram with the given upper bounds
// (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s: buckets not ascending", name))
		}
	}
	h := &Histogram{
		nameStr: name, helpStr: help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) name() string { return h.nameStr }
func (h *Histogram) typ() string  { return "histogram" }
func (h *Histogram) help() string { return h.helpStr }
func (h *Histogram) write(w io.Writer) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nameStr, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nameStr, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.nameStr, formatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(w, "%s_count %d\n", h.nameStr, h.count.Load())
}

// Expose renders the whole registry into a string plus the content
// type scrapers expect, ready to write as an HTTP response body.
func (r *Registry) Expose() (body, contentType string) {
	var b strings.Builder
	r.Render(&b)
	return b.String(), "text/plain; version=0.0.4; charset=utf-8"
}
