package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"portcc/internal/ml"
)

// Loaded is one resolved model artifact held warm in memory.
type Loaded struct {
	Model *ml.Model
	Info  ml.ArtifactInfo
	// SHA256 is the hex digest of the artifact file bytes - the
	// fingerprint half of the mtime/fingerprint reload check, and the
	// identity /healthz reports.
	SHA256  string
	ModTime time.Time
	Size    int64
}

// Registry keeps model artifacts warm in memory and hot-reloads them
// when the file on disk changes. Staleness is checked at most once per
// reloadEvery per path (a stat on the throttle boundary); a changed
// mtime or size triggers a re-read, and only a changed content digest
// swaps the served model, so touch(1) alone never churns. A failed
// reload (unreadable, foreign, or version-mismatched file) keeps the
// last good model serving and is reported through onReload - an
// always-on server must not drop its model because a deploy wrote half
// an artifact.
type Registry struct {
	reloadEvery time.Duration
	// accept gates a freshly decoded artifact before it is swapped in
	// (nil accepts everything); cur is the model it would replace, nil on
	// first load. Rejections keep the current model.
	accept func(next, cur *Loaded) error
	// onReload observes reload outcomes: "ok" (new model swapped in),
	// "error" (read/decode failed), "rejected" (accept refused it).
	// Unchanged stat checks are not reported.
	onReload func(outcome string)
	logf     func(string, ...any)

	mu      sync.Mutex
	entries map[string]*regEntry
}

type regEntry struct {
	reload    sync.Mutex // serialises stat+read+swap
	cur       atomic.Pointer[Loaded]
	lastCheck atomic.Int64 // unix nanos of the last stat
}

// NewRegistry builds a registry. reloadEvery bounds how often a Get may
// stat the artifact (zero: every Get stats). The hooks may be nil.
func NewRegistry(reloadEvery time.Duration, accept func(next, cur *Loaded) error, onReload func(string), logf func(string, ...any)) *Registry {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if onReload == nil {
		onReload = func(string) {}
	}
	return &Registry{
		reloadEvery: reloadEvery,
		accept:      accept,
		onReload:    onReload,
		logf:        logf,
		entries:     map[string]*regEntry{},
	}
}

// Get returns the warm model for path, loading it on first use and
// refreshing it when the file changed on disk. Concurrent callers never
// block behind a reload once a model is warm: they keep the previous
// model until the swap lands.
func (r *Registry) Get(path string) (*Loaded, error) {
	r.mu.Lock()
	en, ok := r.entries[path]
	if !ok {
		en = &regEntry{}
		r.entries[path] = en
	}
	r.mu.Unlock()

	cur := en.cur.Load()
	if cur != nil && !r.due(en) {
		return cur, nil
	}
	// Cold load or stale check: one goroutine does the work; with a warm
	// model the others skip past on the TryLock and keep serving it.
	if cur != nil {
		if !en.reload.TryLock() {
			return cur, nil
		}
	} else {
		en.reload.Lock()
	}
	defer en.reload.Unlock()
	return r.refresh(path, en)
}

// due reports whether the throttled stat check is owed.
func (r *Registry) due(en *regEntry) bool {
	last := en.lastCheck.Load()
	return time.Since(time.Unix(0, last)) >= r.reloadEvery
}

// refresh stats the file and swaps in a new model if its content
// changed. Called with en.reload held.
func (r *Registry) refresh(path string, en *regEntry) (*Loaded, error) {
	cur := en.cur.Load()
	en.lastCheck.Store(time.Now().UnixNano())
	st, err := os.Stat(path)
	if err != nil {
		if cur != nil {
			r.logf("model %s: stat failed, keeping loaded model: %v", path, err)
			r.onReload("error")
			return cur, nil
		}
		return nil, err
	}
	if cur != nil && st.ModTime().Equal(cur.ModTime) && st.Size() == cur.Size {
		return cur, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if cur != nil {
			r.logf("model %s: read failed, keeping loaded model: %v", path, err)
			r.onReload("error")
			return cur, nil
		}
		return nil, err
	}
	sum := sha256.Sum256(data)
	sha := hex.EncodeToString(sum[:])
	if cur != nil && sha == cur.SHA256 {
		// Touched but identical content: remember the new stat identity
		// so the next check is cheap again.
		next := *cur
		next.ModTime, next.Size = st.ModTime(), st.Size()
		en.cur.Store(&next)
		return &next, nil
	}
	m, info, err := ml.Decode(bytes.NewReader(data))
	if err != nil {
		if cur != nil {
			r.logf("model %s: decode failed, keeping loaded model: %v", path, err)
			r.onReload("error")
			return cur, nil
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	next := &Loaded{Model: m, Info: info, SHA256: sha, ModTime: st.ModTime(), Size: st.Size()}
	if r.accept != nil {
		if err := r.accept(next, cur); err != nil {
			if cur != nil {
				r.logf("model %s: rejected, keeping loaded model: %v", path, err)
				r.onReload("rejected")
				return cur, nil
			}
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	en.cur.Store(next)
	if cur != nil {
		r.logf("model %s: reloaded (%d pairs, dataset %.12s...)", path, len(m.Pairs), info.DatasetSHA256)
	}
	r.onReload("ok")
	return next, nil
}
