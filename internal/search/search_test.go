package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"portcc/internal/opt"
)

// toyObjective scores configurations by how many of three target flags are
// set: a smooth landscape all three searches can climb.
func toyObjective(c *opt.Config) float64 {
	s := 1.0
	if c.Flag(opt.FGcse) {
		s += 0.2
	}
	if c.Flag(opt.FUnrollLoops) {
		s += 0.2
	}
	if !c.Flag(opt.FAlignLabels) {
		s += 0.1
	}
	return s
}

func TestCurvesMonotone(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var res Result
		switch which % 3 {
		case 0:
			res = Random(toyObjective, 60, rng)
		case 1:
			res = HillClimb(toyObjective, 60, rng)
		default:
			res = Genetic(toyObjective, 60, rng)
		}
		if len(res.Curve) == 0 {
			return false
		}
		for i := 1; i < len(res.Curve); i++ {
			if res.Curve[i] < res.Curve[i-1] {
				return false
			}
		}
		return res.BestScore == res.Curve[len(res.Curve)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSearchesFindTheOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range []struct {
		name string
		run  func(Objective, int, *rand.Rand) Result
	}{{"random", Random}, {"hill", HillClimb}, {"genetic", Genetic}} {
		res := s.run(toyObjective, 400, rng)
		if res.BestScore < 1.5-1e-9 {
			t.Errorf("%s: best %.3f after 400 evals, optimum is 1.5", s.name, res.BestScore)
		}
	}
}

func TestDeterministicSearch(t *testing.T) {
	a := Random(toyObjective, 50, rand.New(rand.NewSource(1)))
	b := Random(toyObjective, 50, rand.New(rand.NewSource(1)))
	if a.Best != b.Best || a.BestScore != b.BestScore {
		t.Error("random search not deterministic under a fixed seed")
	}
}

func TestEvalsToReach(t *testing.T) {
	curve := []float64{1.0, 1.0, 1.2, 1.2, 1.5}
	if got := EvalsToReach(curve, 1.2); got != 3 {
		t.Errorf("EvalsToReach = %d, want 3", got)
	}
	if got := EvalsToReach(curve, 2.0); got != -1 {
		t.Errorf("unreachable target returned %d", got)
	}
	if got := EvalsToReach(curve, 0.5); got != 1 {
		t.Errorf("trivial target returned %d", got)
	}
}

func TestEvalBudgetRespected(t *testing.T) {
	for _, s := range []func(Objective, int, *rand.Rand) Result{Random, HillClimb, Genetic} {
		evals := 0
		counter := func(c *opt.Config) float64 { evals++; return 1 }
		res := s(counter, 37, rand.New(rand.NewSource(1)))
		if evals > 37 || res.Evals > 37 {
			t.Errorf("search exceeded its evaluation budget: %d/%d", evals, res.Evals)
		}
	}
}
