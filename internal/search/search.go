// Package search implements the iterative-compilation baselines the paper
// compares against: uniform random search (the paper's "Best" upper bound,
// Section 4.3, 1000 evaluations), hill climbing [2] and a genetic
// algorithm [24]. Each explores the optimisation space by repeatedly
// evaluating candidate settings through a caller-supplied objective.
package search

import (
	"math/rand"

	"portcc/internal/opt"
)

// Objective evaluates a configuration and returns its speedup over the
// baseline (higher is better). Evaluations are expensive (a compile plus a
// run), which is exactly why the paper's model matters.
type Objective func(*opt.Config) float64

// Result traces a search: the best configuration found, its score, and the
// best-so-far curve (one entry per evaluation) used for the paper's
// "iterations to match the model" comparison in Section 5.3.
type Result struct {
	Best      opt.Config
	BestScore float64
	Curve     []float64
	Evals     int
}

// Random performs uniform random sampling of the space with n evaluations,
// the protocol behind the paper's upper bound.
func Random(obj Objective, n int, rng *rand.Rand) Result {
	res := Result{BestScore: -1}
	for i := 0; i < n; i++ {
		c := opt.Random(rng)
		s := obj(&c)
		if s > res.BestScore {
			res.BestScore = s
			res.Best = c
		}
		res.Curve = append(res.Curve, res.BestScore)
	}
	res.Evals = n
	return res
}

// HillClimb runs restarted first-improvement hill climbing: from a random
// point, single-dimension mutations are accepted when they improve the
// objective; on local optima it restarts. n bounds total evaluations.
func HillClimb(obj Objective, n int, rng *rand.Rand) Result {
	res := Result{BestScore: -1}
	evals := 0
	record := func(c *opt.Config, s float64) {
		if s > res.BestScore {
			res.BestScore = s
			res.Best = *c
		}
		res.Curve = append(res.Curve, res.BestScore)
		evals++
	}
	for evals < n {
		cur := opt.Random(rng)
		curScore := obj(&cur)
		record(&cur, curScore)
		stuck := 0
		for evals < n && stuck < 2*opt.NumDims {
			d := rng.Intn(opt.NumDims)
			v := rng.Intn(opt.DimSize(d))
			if v == cur.Value(d) {
				v = (v + 1) % opt.DimSize(d)
			}
			cand := cur
			cand.SetValue(d, v)
			s := obj(&cand)
			record(&cand, s)
			if s > curScore {
				cur, curScore = cand, s
				stuck = 0
			} else {
				stuck++
			}
		}
	}
	res.Evals = evals
	return res
}

// Genetic runs a steady-state genetic algorithm with tournament selection,
// uniform crossover and per-dimension mutation; n bounds evaluations.
func Genetic(obj Objective, n int, rng *rand.Rand) Result {
	const (
		popSize    = 20
		tournament = 3
		mutateProb = 0.05
	)
	res := Result{BestScore: -1}
	evals := 0
	type indiv struct {
		c opt.Config
		s float64
	}
	eval := func(c opt.Config) indiv {
		s := obj(&c)
		evals++
		if s > res.BestScore {
			res.BestScore = s
			res.Best = c
		}
		res.Curve = append(res.Curve, res.BestScore)
		return indiv{c: c, s: s}
	}
	pop := make([]indiv, 0, popSize)
	for i := 0; i < popSize && evals < n; i++ {
		pop = append(pop, eval(opt.Random(rng)))
	}
	pick := func() indiv {
		best := pop[rng.Intn(len(pop))]
		for i := 1; i < tournament; i++ {
			c := pop[rng.Intn(len(pop))]
			if c.s > best.s {
				best = c
			}
		}
		return best
	}
	for evals < n {
		a, b := pick(), pick()
		var child opt.Config
		for l := 0; l < opt.NumDims; l++ {
			v := a.c.Value(l)
			if rng.Intn(2) == 1 {
				v = b.c.Value(l)
			}
			if rng.Float64() < mutateProb {
				v = rng.Intn(opt.DimSize(l))
			}
			child.SetValue(l, v)
		}
		ch := eval(child)
		// Replace the worst individual.
		worst := 0
		for i := range pop {
			if pop[i].s < pop[worst].s {
				worst = i
			}
		}
		if ch.s > pop[worst].s {
			pop[worst] = ch
		}
	}
	res.Evals = evals
	return res
}

// EvalsToReach returns the first evaluation index (1-based) at which the
// curve reaches the target score, or -1 if it never does. This implements
// the Section 5.3 comparison: "standard iterative compilation would
// require approximately 50 iterations on average to achieve similar
// performance".
func EvalsToReach(curve []float64, target float64) int {
	for i, s := range curve {
		if s >= target {
			return i + 1
		}
	}
	return -1
}
