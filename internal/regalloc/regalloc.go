// Package regalloc implements linear-scan register allocation onto the
// XScale register file: 12 allocatable registers split into caller-saved
// (r1-r4), callee-saved (r5-r10) and two reserved spill scratch registers
// (r11, r12).
//
// The allocator is where several of the paper's optimisation interactions
// become physical: instruction scheduling lengthens live ranges and causes
// spills (extra loads/stores and code growth); inlining merges register
// pressure of caller and callee; caller-saves (gcc's -fcaller-saves)
// trades save/restore pairs around calls against spilling.
package regalloc

import (
	"sort"

	"portcc/internal/ir"
	"portcc/internal/isa"
	"portcc/internal/trace"
)

// Register pools.
var (
	callerRegs = []ir.Reg{1, 2, 3, 4}
	calleeRegs = []ir.Reg{5, 6, 7, 8, 9, 10}
)

// Scratch registers reserved for spill reloads.
const (
	scratchA ir.Reg = 11
	scratchB ir.Reg = 12
)

// Options controls allocation behaviour.
type Options struct {
	// CallerSaves enables gcc's -fcaller-saves: call-crossing values may
	// live in caller-saved registers with save/restore pairs around each
	// call, when cheaper than spilling.
	CallerSaves bool
}

// frameWSet is the addressable frame window per function (trace package
// allocates FrameSpacing bytes per frame stream).
const frameWSet = int32(trace.FrameSpacing)

type interval struct {
	vreg       ir.Reg
	start, end int
	refs       int // def+use occurrences (spill cost estimate)
}

type allocator struct {
	f        *ir.Func
	opts     Options
	frame    ir.MemRef
	layout   []int
	base     []int // linear position of each block's first instruction
	liveIn   []bitset
	liveOut  []bitset
	nregs    int
	calls    []int // linear positions of call instructions
	assigned map[ir.Reg]ir.Reg
	spilled  map[ir.Reg]int32 // vreg -> spill slot
	saves    map[ir.Reg]int32 // caller-saved assigned vregs -> save slot
	slots    int32
}

// Allocate rewrites the function onto physical registers, inserting spill,
// save/restore and prologue/epilogue code. funcID selects the frame
// address stream.
func Allocate(f *ir.Func, funcID int, opts Options) {
	if f.NextReg <= 1 {
		attachFrameOnly(f, funcID)
		return
	}
	a := &allocator{
		f:    f,
		opts: opts,
		frame: ir.MemRef{
			Stream: trace.FrameStream + int32(funcID),
			Kind:   ir.MemStack,
			WSet:   frameWSet,
		},
		assigned: map[ir.Reg]ir.Reg{},
		spilled:  map[ir.Reg]int32{},
		saves:    map[ir.Reg]int32{},
		nregs:    int(f.NextReg),
	}
	a.linearize()
	a.liveness()
	ivs := a.intervals()
	a.scan(ivs)
	a.rewrite()
	a.prologue()
	f.FrameSize = a.slots * 4
	f.Invalidate()
}

func attachFrameOnly(f *ir.Func, funcID int) {
	f.FrameSize = 0
}

// linearize orders blocks (layout order when present) and assigns linear
// positions; each instruction occupies one position, plus one terminator
// position per block.
func (a *allocator) linearize() {
	f := a.f
	a.layout = f.Layout
	if a.layout == nil {
		a.layout = make([]int, len(f.Blocks))
		for i := range a.layout {
			a.layout[i] = i
		}
	}
	a.base = make([]int, len(f.Blocks))
	pos := 0
	for _, id := range a.layout {
		a.base[id] = pos
		pos += len(f.Blocks[id].Insns) + 1
		for i, in := range f.Blocks[id].Insns {
			if in.Op == isa.OpCall {
				a.calls = append(a.calls, a.base[id]+i)
			}
		}
	}
	sort.Ints(a.calls)
}

type bitset []uint64

func newBitset(n int) bitset       { return make(bitset, (n+63)/64) }
func (s bitset) set(i int)         { s[i/64] |= 1 << (uint(i) % 64) }
func (s bitset) has(i ir.Reg) bool { return s[int(i)/64]&(1<<(uint(i)%64)) != 0 }
func (s bitset) hasi(i int) bool   { return s[i/64]&(1<<(uint(i)%64)) != 0 }
func (s bitset) or(o bitset) bool {
	ch := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			ch = true
		}
	}
	return ch
}
func (s bitset) andNot(o bitset) {
	for i := range s {
		s[i] &^= o[i]
	}
}
func (s bitset) copyFrom(o bitset) { copy(s, o) }

// liveness computes per-block live-in/out sets over virtual registers.
func (a *allocator) liveness() {
	f := a.f
	n := len(f.Blocks)
	use := make([]bitset, n)
	def := make([]bitset, n)
	a.liveIn = make([]bitset, n)
	a.liveOut = make([]bitset, n)
	for _, b := range f.Blocks {
		u, d := newBitset(a.nregs), newBitset(a.nregs)
		for i := range b.Insns {
			in := &b.Insns[i]
			for _, r := range in.Use {
				if r != ir.RegNone && !d.has(r) {
					u.set(int(r))
				}
			}
			if in.Def != ir.RegNone {
				d.set(int(in.Def))
			}
		}
		if c := b.Term.CondReg; c != ir.RegNone && !d.has(c) {
			u.set(int(c))
		}
		use[b.ID], def[b.ID] = u, d
		a.liveIn[b.ID] = newBitset(a.nregs)
		a.liveOut[b.ID] = newBitset(a.nregs)
	}
	var succBuf []int
	for changed := true; changed; {
		changed = false
		for bi := len(f.Blocks) - 1; bi >= 0; bi-- {
			b := f.Blocks[bi]
			out := a.liveOut[b.ID]
			succBuf = b.Succs(succBuf[:0])
			for _, s := range succBuf {
				if out.or(a.liveIn[s]) {
					changed = true
				}
			}
			in := newBitset(a.nregs)
			in.copyFrom(out)
			in.andNot(def[b.ID])
			in.or(use[b.ID])
			if a.liveIn[b.ID].or(in) {
				changed = true
			}
		}
	}
}

// intervals builds one [min,max] linear interval per virtual register.
func (a *allocator) intervals() []*interval {
	f := a.f
	ivs := make([]*interval, a.nregs)
	touch := func(r ir.Reg, pos int) {
		if r == ir.RegNone {
			return
		}
		iv := ivs[r]
		if iv == nil {
			iv = &interval{vreg: r, start: pos, end: pos}
			ivs[r] = iv
		}
		if pos < iv.start {
			iv.start = pos
		}
		if pos > iv.end {
			iv.end = pos
		}
		iv.refs++
	}
	for _, id := range a.layout {
		b := f.Blocks[id]
		start := a.base[id]
		end := start + len(b.Insns)
		for r := 1; r < a.nregs; r++ {
			if a.liveIn[id].hasi(r) {
				touch(ir.Reg(r), start)
			}
			if a.liveOut[id].hasi(r) {
				touch(ir.Reg(r), end)
			}
		}
		for i := range b.Insns {
			in := &b.Insns[i]
			pos := start + i
			touch(in.Def, pos)
			touch(in.Use[0], pos)
			touch(in.Use[1], pos)
		}
		if c := b.Term.CondReg; c != ir.RegNone {
			touch(c, end)
		}
	}
	out := make([]*interval, 0, len(ivs))
	for r := 1; r < a.nregs; r++ {
		if ivs[r] != nil {
			out = append(out, ivs[r])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].vreg < out[j].vreg
	})
	return out
}

// callsCrossed counts call positions strictly inside the interval.
func (a *allocator) callsCrossed(iv *interval) int {
	lo := sort.SearchInts(a.calls, iv.start+1)
	hi := sort.SearchInts(a.calls, iv.end)
	if hi < lo {
		return 0
	}
	return hi - lo
}

// scan is the linear-scan allocation over sorted intervals.
func (a *allocator) scan(ivs []*interval) {
	type active struct {
		iv  *interval
		reg ir.Reg
	}
	var act []active
	freeCaller := append([]ir.Reg(nil), callerRegs...)
	freeCallee := append([]ir.Reg(nil), calleeRegs...)

	release := func(r ir.Reg) {
		for _, c := range callerRegs {
			if c == r {
				freeCaller = append(freeCaller, r)
				return
			}
		}
		freeCallee = append(freeCallee, r)
	}
	take := func(pool *[]ir.Reg) ir.Reg {
		if len(*pool) == 0 {
			return ir.RegNone
		}
		r := (*pool)[0]
		*pool = (*pool)[1:]
		return r
	}
	newSlot := func() int32 {
		if (a.slots+2)*4 >= frameWSet {
			a.slots = 1 // wrap: overlapping slots are a harmless model artifact
		}
		s := a.slots
		a.slots++
		return s
	}

	for _, iv := range ivs {
		// Expire finished intervals.
		kept := act[:0]
		for _, ac := range act {
			if ac.iv.end < iv.start {
				release(ac.reg)
			} else {
				kept = append(kept, ac)
			}
		}
		act = kept

		crosses := a.callsCrossed(iv)
		var reg ir.Reg
		withSaves := false
		if crosses == 0 {
			if reg = take(&freeCaller); reg == ir.RegNone {
				reg = take(&freeCallee)
			}
		} else {
			if reg = take(&freeCallee); reg == ir.RegNone &&
				a.opts.CallerSaves && len(freeCaller) > 0 && 2*crosses < iv.refs {
				reg = take(&freeCaller)
				withSaves = true
			}
		}
		if reg == ir.RegNone {
			// Try stealing from the active interval with the furthest
			// end, if it holds a register usable by this interval.
			victimIdx := -1
			for i, ac := range act {
				if ac.iv.end <= iv.end {
					continue
				}
				if crosses > 0 && !isCallee(ac.reg) {
					continue
				}
				if victimIdx < 0 || ac.iv.end > act[victimIdx].iv.end {
					victimIdx = i
				}
			}
			if victimIdx >= 0 {
				victim := act[victimIdx]
				a.spilled[victim.iv.vreg] = newSlot()
				delete(a.assigned, victim.iv.vreg)
				delete(a.saves, victim.iv.vreg)
				reg = victim.reg
				act = append(act[:victimIdx], act[victimIdx+1:]...)
			} else {
				a.spilled[iv.vreg] = newSlot()
				continue
			}
		}
		a.assigned[iv.vreg] = reg
		if withSaves {
			a.saves[iv.vreg] = newSlot()
		}
		act = append(act, active{iv: iv, reg: reg})
	}
}

func isCallee(r ir.Reg) bool {
	for _, c := range calleeRegs {
		if c == r {
			return true
		}
	}
	return false
}

// rewrite maps operands to physical registers, inserting spill reloads and
// stores plus caller-save pairs around calls.
func (a *allocator) rewrite() {
	f := a.f
	// Caller-save registers needing protection, sorted for determinism.
	type savePair struct {
		reg  ir.Reg
		slot int32
	}
	var saveList []savePair
	{
		var vregs []int
		for v := range a.saves {
			vregs = append(vregs, int(v))
		}
		sort.Ints(vregs)
		for _, v := range vregs {
			saveList = append(saveList, savePair{reg: a.assigned[ir.Reg(v)], slot: a.saves[ir.Reg(v)]})
		}
	}

	phys := func(r ir.Reg) (ir.Reg, bool) {
		if r == ir.RegNone {
			return r, false
		}
		if p, ok := a.assigned[r]; ok {
			return p, false
		}
		if _, ok := a.spilled[r]; ok {
			return r, true
		}
		// Never-live register (e.g. dead def): park in scratch.
		return scratchA, false
	}

	for _, b := range f.Blocks {
		out := make([]ir.Insn, 0, len(b.Insns)+4)
		for i := range b.Insns {
			in := b.Insns[i]

			if in.Op == isa.OpCall && !in.HasFlag(ir.FlagTailCall) {
				for _, sp := range saveList {
					out = append(out, ir.Insn{Op: isa.OpStore,
						Use: [2]ir.Reg{sp.reg}, Imm: sp.slot,
						Mem: a.frame, Flags: ir.FlagSave})
				}
			}

			scratch := scratchA
			for k, u := range in.Use {
				if u == ir.RegNone {
					continue
				}
				p, sp := phys(u)
				if sp {
					slot := a.spilled[u]
					out = append(out, ir.Insn{Op: isa.OpLoad, Def: scratch,
						Imm: slot, Mem: a.frame, Flags: ir.FlagSpill})
					in.Use[k] = scratch
					if scratch == scratchA {
						scratch = scratchB
					}
				} else {
					in.Use[k] = p
				}
			}
			storeAfter := int32(-1)
			if in.Def != ir.RegNone {
				p, sp := phys(in.Def)
				if sp {
					storeAfter = a.spilled[in.Def]
					in.Def = scratchA
				} else {
					in.Def = p
				}
			}
			out = append(out, in)
			if storeAfter >= 0 {
				out = append(out, ir.Insn{Op: isa.OpStore,
					Use: [2]ir.Reg{scratchA}, Imm: storeAfter,
					Mem: a.frame, Flags: ir.FlagSpill})
			}

			if in.Op == isa.OpCall && !in.HasFlag(ir.FlagTailCall) {
				for _, sp := range saveList {
					out = append(out, ir.Insn{Op: isa.OpLoad, Def: sp.reg,
						Imm: sp.slot, Mem: a.frame, Flags: ir.FlagSave})
				}
			}
		}
		b.Insns = out

		if c := b.Term.CondReg; c != ir.RegNone {
			p, sp := phys(c)
			if sp {
				b.Insns = append(b.Insns, ir.Insn{Op: isa.OpLoad, Def: scratchA,
					Imm: a.spilled[c], Mem: a.frame, Flags: ir.FlagSpill})
				b.Term.CondReg = scratchA
			} else {
				b.Term.CondReg = p
			}
		}
	}
}

// prologue saves used callee-saved registers at entry and restores them at
// every return, modelling real frame construction costs (which inlining
// removes and which grow code size).
func (a *allocator) prologue() {
	f := a.f
	used := map[ir.Reg]bool{}
	for _, p := range a.assigned {
		if isCallee(p) {
			used[p] = true
		}
	}
	var regs []ir.Reg
	for _, r := range calleeRegs {
		if used[r] {
			regs = append(regs, r)
		}
	}
	if len(regs) == 0 && a.slots == 0 {
		return
	}
	// Save slots beyond the spill area.
	baseSlot := a.slots
	a.slots += int32(len(regs))

	entry := f.Blocks[0]
	var pro []ir.Insn
	for i, r := range regs {
		pro = append(pro, ir.Insn{Op: isa.OpStore, Use: [2]ir.Reg{r},
			Imm: baseSlot + int32(i), Mem: a.frame, Flags: ir.FlagPrologue})
	}
	entry.Insns = append(pro, entry.Insns...)

	for _, b := range f.Blocks {
		if b.Term.Kind != ir.TermRet {
			continue
		}
		// Restores go before a tail call when present, else at the end.
		insertAt := len(b.Insns)
		if n := len(b.Insns); n > 0 && b.Insns[n-1].Op == isa.OpCall &&
			b.Insns[n-1].HasFlag(ir.FlagTailCall) {
			insertAt = n - 1
		}
		var epi []ir.Insn
		for i, r := range regs {
			epi = append(epi, ir.Insn{Op: isa.OpLoad, Def: r,
				Imm: baseSlot + int32(i), Mem: a.frame, Flags: ir.FlagPrologue})
		}
		rest := append([]ir.Insn(nil), b.Insns[insertAt:]...)
		b.Insns = append(append(b.Insns[:insertAt:insertAt], epi...), rest...)
	}
}
