package regalloc

import (
	"testing"

	"portcc/internal/ir"
	"portcc/internal/isa"
	"portcc/internal/prog"
)

// allRegsPhysical checks every operand is a physical register (<= 12).
func allRegsPhysical(t *testing.T, f *ir.Func) {
	t.Helper()
	for _, b := range f.Blocks {
		for i := range b.Insns {
			in := &b.Insns[i]
			if int(in.Def) > int(isa.AllocatableRegs) {
				t.Fatalf("%s b%d i%d: def v%d not physical", f.Name, b.ID, i, in.Def)
			}
			for _, u := range in.Use {
				if int(u) > int(isa.AllocatableRegs) {
					t.Fatalf("%s b%d i%d: use v%d not physical", f.Name, b.ID, i, u)
				}
			}
		}
		if int(b.Term.CondReg) > int(isa.AllocatableRegs) {
			t.Fatalf("%s b%d: cond v%d not physical", f.Name, b.ID, b.Term.CondReg)
		}
	}
}

func TestAllocatesAllBenchmarks(t *testing.T) {
	for _, name := range prog.Names() {
		m := prog.MustBuild(name).Clone()
		for _, f := range m.Funcs {
			Allocate(f, f.ID, Options{})
			allRegsPhysical(t, f)
		}
	}
}

func TestSpillsUnderPressure(t *testing.T) {
	// 30 simultaneously-live values cannot fit in 10 registers.
	f := &ir.Func{Name: "hot", NextReg: 1}
	blk := &ir.Block{ID: 0}
	f.Blocks = []*ir.Block{blk}
	var regs []ir.Reg
	for i := 0; i < 30; i++ {
		r := f.NewReg()
		regs = append(regs, r)
		blk.Insns = append(blk.Insns, ir.Insn{Op: isa.OpALU, Def: r, Imm: int32(i)})
	}
	for _, r := range regs {
		blk.Insns = append(blk.Insns, ir.Insn{Op: isa.OpStore, Use: [2]ir.Reg{r},
			Mem: ir.MemRef{Stream: 1, Kind: ir.MemSeq, WSet: 256, Stride: 4}})
	}
	blk.Term = ir.Term{Kind: ir.TermRet}
	Allocate(f, 0, Options{})
	allRegsPhysical(t, f)
	spills := 0
	for _, in := range blk.Insns {
		if in.HasFlag(ir.FlagSpill) {
			spills++
		}
	}
	if spills == 0 {
		t.Error("30 overlapping live ranges allocated without spilling")
	}
	if f.FrameSize == 0 {
		t.Error("spills must consume frame space")
	}
}

func TestPrologueEpilogueBalance(t *testing.T) {
	m := prog.MustBuild("gs").Clone()
	for _, f := range m.Funcs {
		Allocate(f, f.ID, Options{})
		saves := map[ir.Reg]int{}
		for i := range f.Blocks[0].Insns {
			in := &f.Blocks[0].Insns[i]
			if in.HasFlag(ir.FlagPrologue) && in.Op == isa.OpStore {
				saves[in.Use[0]]++
			}
		}
		// Each ret block must restore exactly the saved set.
		for _, b := range f.Blocks {
			if b.Term.Kind != ir.TermRet {
				continue
			}
			restores := map[ir.Reg]int{}
			for i := range b.Insns {
				in := &b.Insns[i]
				if in.HasFlag(ir.FlagPrologue) && in.Op == isa.OpLoad {
					restores[in.Def]++
				}
			}
			if len(restores) != len(saves) {
				t.Errorf("%s b%d: %d restores for %d saves", f.Name, b.ID, len(restores), len(saves))
			}
		}
	}
}

func TestCallerSavesInsertsPairs(t *testing.T) {
	// A value live across many calls, with caller-saves enabled and the
	// callee-saved pool exhausted by longer-lived values.
	f := &ir.Func{Name: "cs", NextReg: 1}
	blk := &ir.Block{ID: 0}
	f.Blocks = []*ir.Block{blk}
	// Seven long-lived call-crossing values exhaust the callee pool (6).
	var long []ir.Reg
	for i := 0; i < 7; i++ {
		r := f.NewReg()
		long = append(long, r)
		blk.Insns = append(blk.Insns, ir.Insn{Op: isa.OpALU, Def: r, Imm: int32(i)})
	}
	blk.Insns = append(blk.Insns, ir.Insn{Op: isa.OpCall, Callee: 1})
	blk.Insns = append(blk.Insns, ir.Insn{Op: isa.OpCall, Callee: 1})
	for _, r := range long {
		blk.Insns = append(blk.Insns, ir.Insn{Op: isa.OpStore, Use: [2]ir.Reg{r},
			Mem: ir.MemRef{Stream: 1, Kind: ir.MemSeq, WSet: 256, Stride: 4}})
	}
	blk.Term = ir.Term{Kind: ir.TermRet}

	with := f.Clone()
	Allocate(with, 0, Options{CallerSaves: true})
	countFlag := func(f *ir.Func, flag ir.Flags) int {
		n := 0
		for _, b := range f.Blocks {
			for i := range b.Insns {
				if b.Insns[i].HasFlag(flag) {
					n++
				}
			}
		}
		return n
	}
	without := f.Clone()
	Allocate(without, 0, Options{CallerSaves: false})
	// With caller-saves either save/restore pairs appear or nothing
	// changes; without it, the overflow value must spill instead.
	saves := countFlag(with, ir.FlagSave)
	spillsWithout := countFlag(without, ir.FlagSpill)
	if saves == 0 && spillsWithout == 0 {
		t.Error("neither caller-saves pairs nor spills: pressure model broken")
	}
	if saves > 0 && saves%2 != 0 {
		t.Errorf("%d save/restore instructions: must come in pairs", saves)
	}
}

func TestDeterministicAllocation(t *testing.T) {
	a := prog.MustBuild("toast").Clone()
	b := prog.MustBuild("toast").Clone()
	for i := range a.Funcs {
		Allocate(a.Funcs[i], i, Options{CallerSaves: true})
		Allocate(b.Funcs[i], i, Options{CallerSaves: true})
	}
	if a.String() != b.String() {
		t.Error("register allocation is not deterministic")
	}
}
