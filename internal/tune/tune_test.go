package tune

import (
	"runtime"
	"testing"
)

func TestSplit(t *testing.T) {
	tests := []struct {
		name                 string
		budget, outer, inner int
		wantOuter, wantInner int
	}{
		{"fan-out heavy: many programs soak the budget", 8, 35, 200, 8, 1},
		{"sweep heavy: few programs, many archs", 8, 2, 200, 2, 4},
		{"exact split", 8, 4, 200, 4, 2},
		{"inner capped by arch count", 16, 2, 3, 2, 3},
		{"single task takes everything", 8, 1, 200, 1, 8},
		{"budget one stays sequential", 1, 35, 200, 1, 1},
		{"uneven division rounds down", 7, 3, 200, 3, 2},
		{"outer zero clamps to one", 4, 0, 10, 1, 4},
		{"inner zero clamps to one", 4, 2, 0, 2, 1},
		{"budget exceeds both levels", 64, 2, 4, 2, 4},
	}
	for _, tc := range tests {
		outerW, innerW := Split(tc.budget, tc.outer, tc.inner)
		if outerW != tc.wantOuter || innerW != tc.wantInner {
			t.Errorf("%s: Split(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.name, tc.budget, tc.outer, tc.inner, outerW, innerW, tc.wantOuter, tc.wantInner)
		}
	}
}

func TestSplitDefaultBudget(t *testing.T) {
	// 0 and negative budgets mean GOMAXPROCS, matching sched.Workers.
	p := runtime.GOMAXPROCS(0)
	for _, budget := range []int{0, -3} {
		outerW, innerW := Split(budget, 1000, 1000)
		if outerW != p || innerW != 1 {
			t.Errorf("Split(%d, 1000, 1000) = (%d, %d), want (%d, 1)", budget, outerW, innerW, p)
		}
	}
}

func TestSplitNeverOversubscribes(t *testing.T) {
	// The product of the two levels never exceeds the budget (beyond the
	// at-least-1 floor of each level).
	for budget := 1; budget <= 32; budget++ {
		for outer := 1; outer <= 40; outer += 3 {
			for inner := 1; inner <= 40; inner += 3 {
				outerW, innerW := Split(budget, outer, inner)
				if outerW < 1 || innerW < 1 {
					t.Fatalf("Split(%d, %d, %d) = (%d, %d): worker counts must be >= 1",
						budget, outer, inner, outerW, innerW)
				}
				if outerW*innerW > budget && innerW > 1 {
					t.Fatalf("Split(%d, %d, %d) = (%d, %d): oversubscribed (%d > %d)",
						budget, outer, inner, outerW, innerW, outerW*innerW, budget)
				}
				if outerW > outer || innerW > inner {
					t.Fatalf("Split(%d, %d, %d) = (%d, %d): exceeds level bounds",
						budget, outer, inner, outerW, innerW)
				}
			}
		}
	}
}
