// Package tune sizes the two nested levels of parallelism in the
// exploration engine: the program-level fan-out (one worker-pool slot
// per grid cell or program) and the per-geometry sweep parallelism
// inside each batched replay (cpu.SimulateBatchWith). Both multiply, so
// running each at GOMAXPROCS would oversubscribe the machine quadratically;
// Split divides one CPU budget between them based on the grid shape -
// many independent outer tasks soak the machine by themselves, while a
// grid with few programs and many architectures has idle cores only the
// inner sweeps can use.
//
// The split never changes results: sweep schedules are bit-identical at
// every worker count (see cpu.SimulateBatchWith), so tuning here is purely
// a wall-clock decision.
package tune

import "runtime"

// Split divides a CPU budget (0 or negative = GOMAXPROCS) between an
// outer fan-out of up to outer independent tasks and the inner sweep
// parallelism of each, bounded by inner (the per-replay sweep width,
// typically the architecture count). The outer level claims the budget
// first - fan-out parallelises compile work and trace generation too,
// which sweeps cannot - and whatever cores the fan-out cannot occupy
// (budget / outerW, at least 1) go to each task's sweeps:
//
//	many programs x few archs  -> outerW = budget, innerW = 1 (fan-out heavy)
//	few programs x many archs  -> outerW = programs, innerW = budget/programs
//
// Both results are at least 1, so they are always valid worker counts.
func Split(budget, outer, inner int) (outerW, innerW int) {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if outer < 1 {
		outer = 1
	}
	if inner < 1 {
		inner = 1
	}
	outerW = budget
	if outerW > outer {
		outerW = outer
	}
	innerW = budget / outerW
	if innerW > inner {
		innerW = inner
	}
	if innerW < 1 {
		innerW = 1
	}
	return outerW, innerW
}
