package uarch

import "math"

// The Cacti substitute: the paper used Cacti 4.0 to model cache access
// latencies so that large or highly-associative caches pay realistic access
// times. We reproduce the trends of Cacti's output — latency and energy grow
// with capacity and associativity, and slightly with block size — with a
// small analytic model calibrated so the XScale 32K/32-way caches land on
// their documented latencies (1-cycle fetch, multi-cycle load-use).

// Nominal frequency (MHz) at which CactiLatency is expressed; latencies at
// other frequencies are rescaled by Config methods below.
const nominalMHz = 400

// Memory (DRAM) access time in nanoseconds; on a cache miss the core stalls
// for this long plus the time to refill the block.
const memLatencyNs = 70.0

// memBandwidthNsPerByte is the refill cost per byte beyond the first word.
const memBandwidthNsPerByte = 0.35

// CactiLatency returns the access latency of a cache in cycles at the
// nominal 400 MHz, from capacity (bytes), associativity, and block size.
func CactiLatency(sizeBytes, assoc, blockBytes int) int {
	sizeLog := math.Log2(float64(sizeBytes) / 4096)
	assocLog := math.Log2(float64(assoc) / 4)
	blockLog := math.Log2(float64(blockBytes) / 8)
	lat := 1 + 0.33*sizeLog + 0.22*assocLog + 0.05*blockLog
	c := int(math.Floor(lat))
	if c < 1 {
		c = 1
	}
	return c
}

// CactiEnergy returns the per-access energy of a cache in nanojoules,
// growing with capacity and associativity like Cacti's dynamic read energy.
func CactiEnergy(sizeBytes, assoc, blockBytes int) float64 {
	s := float64(sizeBytes) / 4096
	a := float64(assoc) / 4
	b := float64(blockBytes) / 8
	return 0.12 * math.Pow(s, 0.45) * math.Pow(a, 0.35) * math.Pow(b, 0.15)
}

// scaleCycles converts a latency expressed in cycles at the nominal
// frequency to cycles at f MHz (the underlying circuit time is fixed in ns,
// so a faster clock needs more cycles).
func scaleCycles(cyc400 int, fMHz int) int {
	c := int(math.Round(float64(cyc400) * float64(fMHz) / nominalMHz))
	if c < 1 {
		c = 1
	}
	return c
}

// IL1Latency returns the instruction-cache hit latency in cycles at the
// configuration's frequency. A latency above 1 adds fetch bubbles after
// redirects rather than stalling every fetch (pipelined cache).
func (c Config) IL1Latency() int {
	return scaleCycles(CactiLatency(c.IL1Size, c.IL1Assoc, c.IL1Block), c.FreqMHz)
}

// DL1Latency returns the data-cache hit latency in cycles (the load-use
// latency seen by dependent instructions) at the configuration's frequency.
// The XScale's documented 3-cycle load-use latency corresponds to the
// 32K/32-way point: 1 cycle of address generation plus the array access.
func (c Config) DL1Latency() int {
	return 1 + scaleCycles(CactiLatency(c.DL1Size, c.DL1Assoc, c.DL1Block), c.FreqMHz)
}

// MissPenalty returns the cycles a miss in the given cache stalls the core:
// DRAM latency plus block refill time, at the configuration's frequency.
func (c Config) MissPenalty(blockBytes int) int {
	ns := memLatencyNs + memBandwidthNsPerByte*float64(blockBytes)
	cyc := int(math.Round(ns * float64(c.FreqMHz) / 1000))
	if cyc < 1 {
		cyc = 1
	}
	return cyc
}

// BTBEnergy, IL1Energy and DL1Energy expose per-access energies for the
// power model (nJ).
func (c Config) BTBEnergy() float64 {
	// A BTB entry stores a tag and target: treat as a tiny cache of
	// 8-byte blocks.
	return CactiEnergy(c.BTBSize*8, c.BTBAssoc, 8)
}

// IL1Energy returns the instruction-cache per-access energy in nJ.
func (c Config) IL1Energy() float64 { return CactiEnergy(c.IL1Size, c.IL1Assoc, c.IL1Block) }

// DL1Energy returns the data-cache per-access energy in nJ.
func (c Config) DL1Energy() float64 { return CactiEnergy(c.DL1Size, c.DL1Assoc, c.DL1Block) }
