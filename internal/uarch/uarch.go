// Package uarch describes the embedded microarchitecture design space of
// the paper (Table 2): an XScale-class core whose instruction cache, data
// cache and branch target buffer are varied as powers of two, giving
// 288,000 configurations, plus the extended space of Section 7 that
// additionally varies clock frequency and issue width.
package uarch

import (
	"fmt"
	"math"
	"math/rand"

	"portcc/internal/pcerr"
)

// Parameter value lists (Table 2). Every parameter varies as a power of 2.
var (
	// CacheSizes are the IL1/DL1 capacities in bytes (4K..128K).
	CacheSizes = []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	// CacheAssocs are the IL1/DL1 associativities (4..64).
	CacheAssocs = []int{4, 8, 16, 32, 64}
	// CacheBlocks are the IL1/DL1 block sizes in bytes (8..64).
	CacheBlocks = []int{8, 16, 32, 64}
	// BTBEntries are the branch-target-buffer entry counts (128..2048).
	BTBEntries = []int{128, 256, 512, 1024, 2048}
	// BTBAssocs are the BTB associativities (1..8).
	BTBAssocs = []int{1, 2, 4, 8}
	// Frequencies are the §7 extended-space clock rates in MHz (200..600).
	Frequencies = []int{200, 300, 400, 500, 600}
	// Widths are the §7 extended-space issue widths.
	Widths = []int{1, 2}
)

// Config is one microarchitecture configuration.
type Config struct {
	IL1Size  int // bytes
	IL1Assoc int
	IL1Block int // bytes
	DL1Size  int // bytes
	DL1Assoc int
	DL1Block int // bytes
	BTBSize  int // entries
	BTBAssoc int

	// FreqMHz and Width belong to the extended space of §7; the base
	// space fixes them at the XScale values (400 MHz, single issue).
	FreqMHz int
	Width   int
}

// XScale returns the reference Intel XScale configuration of Table 2.
func XScale() Config {
	return Config{
		IL1Size: 32 << 10, IL1Assoc: 32, IL1Block: 32,
		DL1Size: 32 << 10, DL1Assoc: 32, DL1Block: 32,
		BTBSize: 512, BTBAssoc: 1,
		FreqMHz: 400, Width: 1,
	}
}

// Validate checks every parameter against its Table 2 value list.
func (c Config) Validate() error {
	check := func(v int, list []int, name string) error {
		for _, x := range list {
			if v == x {
				return nil
			}
		}
		return fmt.Errorf("uarch: %w: %s = %d not in %v", pcerr.ErrInvalidConfig, name, v, list)
	}
	checks := []error{
		check(c.IL1Size, CacheSizes, "IL1Size"),
		check(c.IL1Assoc, CacheAssocs, "IL1Assoc"),
		check(c.IL1Block, CacheBlocks, "IL1Block"),
		check(c.DL1Size, CacheSizes, "DL1Size"),
		check(c.DL1Assoc, CacheAssocs, "DL1Assoc"),
		check(c.DL1Block, CacheBlocks, "DL1Block"),
		check(c.BTBSize, BTBEntries, "BTBSize"),
		check(c.BTBAssoc, BTBAssocs, "BTBAssoc"),
		check(c.FreqMHz, Frequencies, "FreqMHz"),
		check(c.Width, Widths, "Width"),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}

// String identifies the configuration compactly; stable across runs.
func (c Config) String() string {
	return fmt.Sprintf("il1=%dK/%d/%d dl1=%dK/%d/%d btb=%d/%d f=%dMHz w=%d",
		c.IL1Size>>10, c.IL1Assoc, c.IL1Block,
		c.DL1Size>>10, c.DL1Assoc, c.DL1Block,
		c.BTBSize, c.BTBAssoc, c.FreqMHz, c.Width)
}

// Descriptors returns the 8-element microarchitecture description d used as
// model features (Table 2 parameters, log2-encoded). The extended-space
// parameters are deliberately excluded, matching §7 of the paper: the model
// is evaluated on the extended space without new features.
func (c Config) Descriptors() []float64 {
	l2 := func(v int) float64 { return math.Log2(float64(v)) }
	return []float64{
		l2(c.BTBSize), l2(c.BTBAssoc),
		l2(c.IL1Size), l2(c.IL1Assoc), l2(c.IL1Block),
		l2(c.DL1Size), l2(c.DL1Assoc), l2(c.DL1Block),
	}
}

// DescriptorNames returns the Figure 9 feature labels for Descriptors.
func DescriptorNames() []string {
	return []string{
		"btb_size", "btb_assoc",
		"i_size", "i_assoc", "i_block",
		"d_size", "d_assoc", "d_block",
	}
}

// Space is a sampler over the design space. Extended enables the §7 space.
type Space struct {
	Extended bool
}

// Count returns the number of configurations in the space: 288,000 for the
// base space of Table 2, times |Frequencies|·|Widths| when extended.
func (s Space) Count() int {
	n := len(CacheSizes) * len(CacheAssocs) * len(CacheBlocks)
	n *= len(CacheSizes) * len(CacheAssocs) * len(CacheBlocks)
	n *= len(BTBEntries) * len(BTBAssocs)
	if s.Extended {
		n *= len(Frequencies) * len(Widths)
	}
	return n
}

// Sample draws one configuration with uniform random sampling, the paper's
// protocol for the 200-configuration experimental sample (§4.2).
func (s Space) Sample(rng *rand.Rand) Config {
	pick := func(list []int) int { return list[rng.Intn(len(list))] }
	c := Config{
		IL1Size: pick(CacheSizes), IL1Assoc: pick(CacheAssocs), IL1Block: pick(CacheBlocks),
		DL1Size: pick(CacheSizes), DL1Assoc: pick(CacheAssocs), DL1Block: pick(CacheBlocks),
		BTBSize: pick(BTBEntries), BTBAssoc: pick(BTBAssocs),
		FreqMHz: 400, Width: 1,
	}
	if s.Extended {
		c.FreqMHz = pick(Frequencies)
		c.Width = pick(Widths)
	}
	return c
}

// SampleN draws n distinct configurations.
func (s Space) SampleN(rng *rand.Rand, n int) []Config {
	seen := make(map[Config]bool, n)
	out := make([]Config, 0, n)
	for len(out) < n {
		c := s.Sample(rng)
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}
