package uarch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceCount(t *testing.T) {
	if got := (Space{}).Count(); got != 288000 {
		t.Errorf("base space has %d configurations, paper says 288,000", got)
	}
	ext := (Space{Extended: true}).Count()
	if ext != 288000*len(Frequencies)*len(Widths) {
		t.Errorf("extended space count %d wrong", ext)
	}
}

func TestXScaleIsValid(t *testing.T) {
	xs := XScale()
	if err := xs.Validate(); err != nil {
		t.Fatal(err)
	}
	if xs.IL1Size != 32<<10 || xs.IL1Assoc != 32 || xs.IL1Block != 32 {
		t.Error("XScale I-cache must be 32K/32/32 (Table 2)")
	}
	if xs.BTBSize != 512 || xs.BTBAssoc != 1 {
		t.Error("XScale BTB must be 512 entries direct-mapped (Table 2)")
	}
	if xs.FreqMHz != 400 || xs.Width != 1 {
		t.Error("XScale reference is 400 MHz single-issue (Section 7)")
	}
}

func TestSamplesAreValid(t *testing.T) {
	f := func(seed int64, ext bool) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Space{Extended: ext}.Sample(rng)
		return c.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleNDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := Space{}.SampleN(rng, 50)
	seen := map[Config]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatal("SampleN returned duplicates")
		}
		seen[c] = true
	}
}

func TestDescriptors(t *testing.T) {
	xs := XScale()
	d := xs.Descriptors()
	if len(d) != 8 || len(DescriptorNames()) != 8 {
		t.Fatal("Table 2 has 8 descriptors")
	}
	// log2(512) = 9 for the BTB, log2(32K) = 15 for the caches.
	if d[0] != 9 {
		t.Errorf("btb_size descriptor = %g, want 9", d[0])
	}
	if d[2] != 15 {
		t.Errorf("i_size descriptor = %g, want 15", d[2])
	}
}

func TestCactiMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Space{}.Sample(rng)
		bigger := c
		// Grow the data cache one size step if possible.
		for i, s := range CacheSizes {
			if s == c.DL1Size && i+1 < len(CacheSizes) {
				bigger.DL1Size = CacheSizes[i+1]
			}
		}
		if bigger.DL1Size == c.DL1Size {
			return true
		}
		return CactiLatency(bigger.DL1Size, bigger.DL1Assoc, bigger.DL1Block) >=
			CactiLatency(c.DL1Size, c.DL1Assoc, c.DL1Block) &&
			CactiEnergy(bigger.DL1Size, bigger.DL1Assoc, bigger.DL1Block) >
				CactiEnergy(c.DL1Size, c.DL1Assoc, c.DL1Block)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrequencyScaling(t *testing.T) {
	slow := XScale()
	slow.FreqMHz = 200
	fast := XScale()
	fast.FreqMHz = 600
	// A faster clock pays more cycles for the same DRAM nanoseconds.
	if fast.MissPenalty(32) <= slow.MissPenalty(32) {
		t.Error("miss penalty in cycles must grow with frequency")
	}
	if fast.DL1Latency() < slow.DL1Latency() {
		t.Error("cache latency in cycles must not shrink with frequency")
	}
}

func TestValidateRejectsBad(t *testing.T) {
	c := XScale()
	c.IL1Size = 12345
	if err := c.Validate(); err == nil {
		t.Error("invalid IL1 size accepted")
	}
}

func TestLatencyBounds(t *testing.T) {
	for _, s := range CacheSizes {
		for _, a := range CacheAssocs {
			for _, b := range CacheBlocks {
				lat := CactiLatency(s, a, b)
				if lat < 1 || lat > 6 {
					t.Errorf("CactiLatency(%d,%d,%d) = %d out of sane range", s, a, b, lat)
				}
			}
		}
	}
}
