// Package core assembles the portable optimising compiler of the paper's
// Figure 2: the pass pipeline driven by an optimisation configuration
// (compile.go), and the deployment path that takes a program source, one
// profile run's performance counters and a microarchitecture description
// and produces a binary optimised by the learned model (compiler.go).
package core

import (
	"portcc/internal/codegen"
	"portcc/internal/ir"
	"portcc/internal/opt"
	"portcc/internal/passes"
	"portcc/internal/regalloc"
)

// Compile clones the module and runs the full pipeline - pre-allocation
// optimisation passes selected by cfg, register allocation, post-allocation
// cleanups, placement - and returns the binary image.
//
// The pass order mirrors gcc 4.2: interprocedural (inlining) first, then
// scalar and loop optimisation, scheduling, allocation, and post-reload
// cleanup.
func Compile(src *ir.Module, cfg *opt.Config) (*codegen.Program, error) {
	m := src.Clone()

	// Interprocedural passes.
	if cfg.Flag(opt.FInlineFunctions) {
		passes.Inline(m, passes.InlineParams{
			MaxInsnsAuto:        cfg.Param(opt.PMaxInlineInsnsAuto),
			LargeFunctionInsns:  cfg.Param(opt.PLargeFunctionInsns),
			LargeFunctionGrowth: cfg.Param(opt.PLargeFunctionGrowth),
			LargeUnitInsns:      cfg.Param(opt.PLargeUnitInsns),
			UnitGrowth:          cfg.Param(opt.PInlineUnitGrowth),
			CallCost:            cfg.Param(opt.PInlineCallCost),
		})
	}
	if cfg.Flag(opt.FOptimizeSiblingCalls) {
		passes.SiblingCalls(m)
	}

	stored := passes.StoredStreams(m)
	loadMotion := cfg.Flag(opt.FGcse) && !cfg.Flag(opt.FNoGcseLm)

	for _, f := range m.Funcs {
		if f.Library {
			continue
		}
		if cfg.Flag(opt.FTreeVrp) {
			passes.VRP(f)
		}
		// Base local CSE is always on; the two flags extend its reach.
		passes.LocalCSE(f, cfg.Flag(opt.FCseFollowJumps), cfg.Flag(opt.FCseSkipBlocks))
		if cfg.Flag(opt.FTreePre) {
			passes.PRE(f)
		}
		if cfg.Flag(opt.FGcse) {
			for i := 0; i < cfg.Param(opt.PMaxGcsePasses); i++ {
				if passes.GCSE(f) == 0 {
					break
				}
			}
			if cfg.Flag(opt.FGcseLas) {
				passes.GCSELoadAfterStore(f)
			}
			if cfg.Flag(opt.FGcseSm) {
				passes.StoreMotion(f)
			}
		}
		// Loop-invariant motion is always on; load motion needs gcse-lm.
		passes.LICM(f, loadMotion, stored)
		if cfg.Flag(opt.FUnswitchLoops) {
			passes.Unswitch(f)
		}
		if cfg.Flag(opt.FStrengthReduce) {
			passes.StrengthReduce(f)
		}
		if cfg.Flag(opt.FUnrollLoops) {
			passes.Unroll(f,
				cfg.Param(opt.PMaxUnrollTimes),
				cfg.Param(opt.PMaxUnrolledInsns))
		}
		if cfg.Flag(opt.FRerunLoopOpt) {
			passes.LICM(f, loadMotion, stored)
		}
		if cfg.Flag(opt.FRerunCseAfterLoop) {
			passes.LocalCSE(f, cfg.Flag(opt.FCseFollowJumps), cfg.Flag(opt.FCseSkipBlocks))
		}
		if cfg.Flag(opt.FExpensiveOptimizations) {
			passes.LocalCSE(f, true, true)
			if cfg.Flag(opt.FGcse) {
				passes.GCSE(f)
			}
		}
		if cfg.Flag(opt.FRegmove) {
			passes.Regmove(f)
		}
		if cfg.Flag(opt.FThreadJumps) {
			passes.ThreadJumps(f)
		}
		passes.DeadCode(f)
		if cfg.Flag(opt.FScheduleInsns) {
			passes.Schedule(f,
				!cfg.Flag(opt.FNoSchedInterblock),
				!cfg.Flag(opt.FNoSchedSpec))
		}
		if cfg.Flag(opt.FReorderBlocks) {
			passes.ReorderBlocks(f)
		}
		passes.Align(f, passes.AlignFlags{
			Functions: cfg.Flag(opt.FAlignFunctions),
			Loops:     cfg.Flag(opt.FAlignLoops),
			Jumps:     cfg.Flag(opt.FAlignJumps),
			Labels:    cfg.Flag(opt.FAlignLabels),
		})
	}

	// Register allocation and post-reload passes.
	for _, f := range m.Funcs {
		regalloc.Allocate(f, f.ID, regalloc.Options{
			CallerSaves: !f.Library && cfg.Flag(opt.FCallerSaves),
		})
	}
	for _, f := range m.Funcs {
		if f.Library {
			continue
		}
		if cfg.Flag(opt.FGcseAfterReload) {
			passes.GCSEAfterReload(f)
		}
		if cfg.Flag(opt.FPeephole2) {
			passes.Peephole2(f)
		}
		if cfg.Flag(opt.FCrossjumping) {
			passes.CrossJump(f)
		}
	}

	return codegen.Lower(m)
}
