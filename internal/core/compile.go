// Package core assembles the portable optimising compiler of the paper's
// Figure 2: the pass pipeline driven by an optimisation configuration
// (compile.go), the prefix-memoised batch engine that compiles whole
// setting sweeps at once (batch.go), and the deployment path that takes a
// program source, one profile run's performance counters and a
// microarchitecture description and produces a binary optimised by the
// learned model (compiler.go).
package core

import (
	"fmt"

	"portcc/internal/codegen"
	"portcc/internal/ir"
	"portcc/internal/opt"
	"portcc/internal/passes"
	"portcc/internal/regalloc"
)

// Compile clones the module and runs the full pipeline - pre-allocation
// optimisation passes selected by cfg, register allocation, post-allocation
// cleanups, placement - and returns the binary image.
//
// The pass order mirrors gcc 4.2: interprocedural (inlining) first, then
// scalar and loop optimisation, scheduling, allocation, and post-reload
// cleanup. The pipeline is materialised as a canonical opt.Plan and
// interpreted step by step - the same interpreter the prefix-memoised
// CompileBatch walks, so the two paths cannot drift.
func Compile(src *ir.Module, cfg *opt.Config) (*codegen.Program, error) {
	plan := opt.PlanFor(cfg)
	return CompilePlan(src, &plan)
}

// CompilePlan compiles the module under an already-derived canonical plan,
// linearly: module steps, then per function the optimisation sequence,
// then allocation for every function, then post-reload cleanups.
func CompilePlan(src *ir.Module, plan *opt.Plan) (*codegen.Program, error) {
	m := src.Clone()
	for _, s := range plan.Mod {
		applyModStep(s, m)
	}
	stored := passes.StoredStreams(m)
	for _, f := range m.Funcs {
		if f.Library {
			continue
		}
		for _, s := range plan.Fn {
			applyFuncStep(s, f, stored)
		}
	}
	alloc := plan.Alloc
	for _, f := range m.Funcs {
		if f.Library {
			applyFuncStep(opt.Step{Pass: opt.PassAlloc}, f, stored)
		} else {
			applyFuncStep(alloc, f, stored)
		}
	}
	for _, f := range m.Funcs {
		if f.Library {
			continue
		}
		for _, s := range plan.Post {
			applyFuncStep(s, f, stored)
		}
	}
	return codegen.Lower(m)
}

// applyModStep executes one module-level plan step in place.
func applyModStep(s opt.Step, m *ir.Module) {
	switch s.Pass {
	case opt.PassInline:
		passes.Inline(m, passes.InlineParams{
			MaxInsnsAuto:        int(s.Args[0]),
			LargeFunctionInsns:  int(s.Args[1]),
			LargeFunctionGrowth: int(s.Args[2]),
			LargeUnitInsns:      int(s.Args[3]),
			UnitGrowth:          int(s.Args[4]),
			CallCost:            int(s.Args[5]),
		})
	case opt.PassSibling:
		passes.SiblingCalls(m)
	default:
		panic(fmt.Sprintf("core: %v is not a module step", s.Pass))
	}
}

// applyFuncStep executes one per-function plan step in place. stored is
// the module-wide stored-streams analysis computed after the module steps
// (read-only, shared by every function and every trie fork).
func applyFuncStep(s opt.Step, f *ir.Func, stored map[int32]bool) {
	switch s.Pass {
	case opt.PassVRP:
		passes.VRP(f)
	case opt.PassLocalCSE:
		passes.LocalCSE(f, s.Args[0] != 0, s.Args[1] != 0)
	case opt.PassPRE:
		passes.PRE(f)
	case opt.PassGCSE:
		for i := int32(0); i < s.Args[0]; i++ {
			if passes.GCSE(f) == 0 {
				break
			}
		}
	case opt.PassGCSELas:
		passes.GCSELoadAfterStore(f)
	case opt.PassStoreMotion:
		passes.StoreMotion(f)
	case opt.PassLICM:
		passes.LICM(f, s.Args[0] != 0, stored)
	case opt.PassUnswitch:
		passes.Unswitch(f)
	case opt.PassStrengthReduce:
		passes.StrengthReduce(f)
	case opt.PassUnroll:
		passes.Unroll(f, int(s.Args[0]), int(s.Args[1]))
	case opt.PassRegmove:
		passes.Regmove(f)
	case opt.PassThreadJumps:
		passes.ThreadJumps(f)
	case opt.PassDeadCode:
		passes.DeadCode(f)
	case opt.PassSchedule:
		passes.Schedule(f, s.Args[0] != 0, s.Args[1] != 0)
	case opt.PassReorderBlocks:
		passes.ReorderBlocks(f)
	case opt.PassAlign:
		passes.Align(f, passes.AlignFlags{
			Functions: s.Args[0] != 0,
			Loops:     s.Args[1] != 0,
			Jumps:     s.Args[2] != 0,
			Labels:    s.Args[3] != 0,
		})
	case opt.PassAlloc:
		regalloc.Allocate(f, f.ID, regalloc.Options{
			CallerSaves: !f.Library && s.Args[0] != 0,
		})
	case opt.PassGCSEReload:
		passes.GCSEAfterReload(f)
	case opt.PassPeephole2:
		passes.Peephole2(f)
	case opt.PassCrossJump:
		passes.CrossJump(f)
	default:
		panic(fmt.Sprintf("core: %v is not a function step", s.Pass))
	}
}
