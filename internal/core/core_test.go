package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"portcc/internal/core"
	"portcc/internal/cpu"
	"portcc/internal/isa"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
	"portcc/internal/uarch"
)

// TestPipelineRandomConfigs is the central compiler property test: for
// random points of the 39-dimensional optimisation space, compilation must
// succeed, produce a well-formed binary (physical registers only, valid
// control targets), and the binary must execute the same source-level work
// as the -O3 baseline.
func TestPipelineRandomConfigs(t *testing.T) {
	programs := []string{"rijndael_e", "search", "gs", "toast", "crc", "susan_c", "bitcnts", "fft"}
	o3 := opt.O3()
	baseRuns := map[string]int{}
	for _, name := range programs {
		m := prog.MustBuild(name)
		p, err := core.Compile(m, &o3)
		if err != nil {
			t.Fatalf("%s at -O3: %v", name, err)
		}
		tr := trace.Generate(p, trace.Config{Runs: 2, MaxInsns: 400000, Seed: 5})
		baseRuns[name] = tr.Insns()
		_ = tr
	}

	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := opt.Random(rng)
		name := programs[int(pick)%len(programs)]
		m := prog.MustBuild(name)
		p, err := core.Compile(m, &cfg)
		if err != nil {
			t.Logf("%s: compile error: %v", name, err)
			return false
		}
		// Structural checks on the compiled module.
		for _, fn := range p.Module.Funcs {
			for _, b := range fn.Blocks {
				for i := range b.Insns {
					in := &b.Insns[i]
					if int(in.Def) > isa.AllocatableRegs {
						t.Logf("%s: non-physical def v%d", name, in.Def)
						return false
					}
					for _, u := range in.Use {
						if int(u) > isa.AllocatableRegs {
							t.Logf("%s: non-physical use v%d", name, u)
							return false
						}
					}
					if in.Op == isa.OpCall &&
						(in.Callee < 0 || int(in.Callee) >= len(p.Module.Funcs)) {
						return false
					}
				}
			}
		}
		// Work equivalence and successful simulation.
		tr := trace.Generate(p, trace.Config{Runs: 2, MaxInsns: 400000, Seed: 5})
		if tr.Runs != 2 || tr.Truncated {
			t.Logf("%s: %d runs, truncated=%v", name, tr.Runs, tr.Truncated)
			return false
		}
		r := cpu.Simulate(tr, uarch.XScale())
		return r.Cycles > 0 && r.Insns == uint64(tr.Insns())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCompileDeterminism: the same module and config must produce the
// identical binary every time (the foundation of the dataset's validity).
func TestCompileDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5; i++ {
		cfg := opt.Random(rng)
		m := prog.MustBuild("madplay")
		p1, err1 := core.Compile(m, &cfg)
		p2, err2 := core.Compile(m, &cfg)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if p1.TotalBytes != p2.TotalBytes {
			t.Fatalf("config %d: sizes differ %d vs %d", i, p1.TotalBytes, p2.TotalBytes)
		}
		if p1.Module.String() != p2.Module.String() {
			t.Fatalf("config %d: modules differ", i)
		}
	}
}

// TestCompileDoesNotMutateSource: the pristine module must be reusable.
func TestCompileDoesNotMutateSource(t *testing.T) {
	m := prog.MustBuild("djpeg")
	before := m.String()
	o3 := opt.O3()
	if _, err := core.Compile(m, &o3); err != nil {
		t.Fatal(err)
	}
	if m.String() != before {
		t.Fatal("Compile mutated the source module")
	}
}

// TestFlagMonotonicityAnchors checks a few flags have their designed
// first-order effects on code size.
func TestFlagMonotonicityAnchors(t *testing.T) {
	m := prog.MustBuild("bitcnts")
	size := func(mod func(*opt.Config)) int {
		c := opt.O3()
		mod(&c)
		p, err := core.Compile(m, &c)
		if err != nil {
			t.Fatal(err)
		}
		return p.TotalBytes
	}
	base := size(func(c *opt.Config) {})
	unrolled := size(func(c *opt.Config) { c.Flags[opt.FUnrollLoops] = true })
	if unrolled <= base {
		t.Errorf("unrolling must grow code: %d -> %d", base, unrolled)
	}
	noinline := size(func(c *opt.Config) { c.Flags[opt.FInlineFunctions] = false })
	if noinline >= base {
		t.Errorf("disabling inlining must shrink bitcnts: %d -> %d", base, noinline)
	}
}

func TestLibraryCodeUntouched(t *testing.T) {
	m := prog.MustBuild("qsort")
	var aggressive opt.Config
	for f := range aggressive.Flags {
		aggressive.Flags[f] = true
	}
	p, err := core.Compile(m, &aggressive)
	if err != nil {
		t.Fatal(err)
	}
	// Library function instruction counts must match an -O0 compile
	// exactly (modulo nothing: passes skip Library functions; the
	// register allocator is flag-independent for them).
	var o0 opt.Config
	p0, err := core.Compile(m, &o0)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range p.Module.Funcs {
		if !f.Library {
			continue
		}
		if f.Size() != p0.Module.Funcs[i].Size() {
			t.Errorf("library function %s resized by flags: %d vs %d",
				f.Name, f.Size(), p0.Module.Funcs[i].Size())
		}
	}
}

func TestIRVerifiesAcrossPreRAPipeline(t *testing.T) {
	// Run the pre-RA portion by compiling with allocation-visible flags
	// disabled and verifying the result parses; full Verify applies only
	// pre-RA (physical registers legitimately violate single-def).
	for _, name := range []string{"rijndael_e", "gs", "lame"} {
		m := prog.MustBuild(name)
		if err := m.Verify(); err != nil {
			t.Fatalf("%s: pristine module invalid: %v", name, err)
		}
	}
}
