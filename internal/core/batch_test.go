package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"portcc/internal/codegen"
	"portcc/internal/core"
	"portcc/internal/opt"
	"portcc/internal/prog"
)

// imageBytes is the canonical serialisation the equivalence tests
// byte-compare: if it matches, the trace generator cannot distinguish the
// programs.
func imageBytes(p *codegen.Program) []byte {
	return codegen.AppendImage(nil, p)
}

// sweepConfigs samples a sweep the way dataset generation does: -O3 first,
// then random settings, plus a deliberate duplicate (of the returned
// index, appended last) to exercise plan-level sharing.
func sweepConfigs(seed int64, n int) ([]*opt.Config, int) {
	rng := rand.New(rand.NewSource(seed))
	cfgs := make([]*opt.Config, 0, n+2)
	o3 := opt.O3()
	cfgs = append(cfgs, &o3)
	for i := 0; i < n; i++ {
		c := opt.Random(rng)
		cfgs = append(cfgs, &c)
	}
	twin := len(cfgs) / 2
	dup := *cfgs[twin]
	cfgs = append(cfgs, &dup)
	return cfgs, twin
}

// TestCompileBatchMatchesCompile is the central equivalence property:
// for random setting sweeps over real programs, the prefix-trie walk must
// produce binaries byte-identical to fresh per-setting compiles, and the
// honest work counters must balance against the naive cost.
func TestCompileBatchMatchesCompile(t *testing.T) {
	programs := []string{"rijndael_e", "search", "qsort", "toast", "crc", "susan_c", "fft"}
	for pi, name := range programs {
		m := prog.MustBuild(name)
		cfgs, twin := sweepConfigs(int64(100+pi), 24)
		progs, errs, stats := core.CompileBatch(m, cfgs)
		if len(progs) != len(cfgs) || len(errs) != len(cfgs) {
			t.Fatalf("%s: %d progs / %d errs for %d cfgs", name, len(progs), len(errs), len(cfgs))
		}
		var naive int64
		nonLib, lib := 0, 0
		for _, f := range m.Funcs {
			if f.Library {
				lib++
			} else {
				nonLib++
			}
		}
		for i, c := range cfgs {
			if errs[i] != nil {
				t.Fatalf("%s cfg %d: batch error: %v", name, i, errs[i])
			}
			want, err := core.Compile(m, c)
			if err != nil {
				t.Fatalf("%s cfg %d: fresh compile: %v", name, i, err)
			}
			if !bytes.Equal(imageBytes(progs[i]), imageBytes(want)) {
				t.Errorf("%s cfg %d: batched binary differs from fresh compile", name, i)
			}
			plan := opt.PlanFor(c)
			naive += int64(plan.Steps(nonLib, lib))
		}
		if got := stats.PassRuns + stats.PassRunsSaved; got != naive {
			t.Errorf("%s: PassRuns(%d)+PassRunsSaved(%d) = %d, want naive total %d",
				name, stats.PassRuns, stats.PassRunsSaved, got, naive)
		}
		if stats.PassRunsSaved <= 0 {
			t.Errorf("%s: no pass runs saved over %d settings (PassRuns=%d)", name, len(cfgs), stats.PassRuns)
		}
		// The duplicated config must share its twin's binary outright.
		if progs[len(cfgs)-1] != progs[twin] {
			t.Errorf("%s: duplicate config did not share the compiled binary", name)
		}
	}
}

// TestCompileBatchLeavesSourcePristine pins the clone discipline of the
// trie walk: neither the source module nor any cached snapshot may be
// mutated by a later branch. Compiling the same sweep twice from the same
// module - and a disjoint sweep in between - must keep outputs stable.
func TestCompileBatchLeavesSourcePristine(t *testing.T) {
	m := prog.MustBuild("crc")
	before := m.String()
	cfgs, _ := sweepConfigs(7, 16)
	first, errs, _ := core.CompileBatch(m, cfgs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
	}
	firstBytes := make([][]byte, len(first))
	for i, p := range first {
		firstBytes[i] = imageBytes(p)
	}
	// An unrelated sweep over the same module.
	func() { c2, _ := sweepConfigs(8, 16); core.CompileBatch(m, c2) }()
	if m.String() != before {
		t.Fatal("CompileBatch mutated the source module")
	}
	// Earlier outputs must not have been touched by the later walk
	// (forked snapshots aliasing live output IR would show here).
	again, _, _ := core.CompileBatch(m, cfgs)
	for i := range first {
		if !bytes.Equal(imageBytes(first[i]), firstBytes[i]) {
			t.Errorf("cfg %d: output mutated by a later batch", i)
		}
		if !bytes.Equal(imageBytes(again[i]), firstBytes[i]) {
			t.Errorf("cfg %d: batch output not reproducible", i)
		}
	}
}

// TestCompileBatchSharesLibraryAllocation pins the library fast path: a
// module's library functions go through register allocation once per
// module state, however many settings the sweep holds, and the shared
// final IR is aliased across the assembled binaries.
func TestCompileBatchSharesLibraryAllocation(t *testing.T) {
	m := prog.MustBuild("qsort")
	libIdx := -1
	for i, f := range m.Funcs {
		if f.Library {
			libIdx = i
			break
		}
	}
	if libIdx < 0 {
		t.Fatal("qsort lost its library functions")
	}
	// Two settings that differ only pre-allocation and share no module
	// steps with each other would still share the library function if it
	// is allocated per module state.
	a, b := opt.O3(), opt.O3()
	b.Flags[opt.FPeephole2] = !b.Flags[opt.FPeephole2]
	progs, errs, _ := core.CompileBatch(m, []*opt.Config{&a, &b})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
	}
	if progs[0].Module.Funcs[libIdx] != progs[1].Module.Funcs[libIdx] {
		t.Error("library function not shared between settings of one module state")
	}
}
