// The prefix-memoised batch compiler: a whole sweep of optimisation
// settings over one program is compiled by walking a trie of pipeline
// plans depth-first, so a pass shared by many settings runs once per
// distinct pipeline prefix instead of once per setting.
//
// Correctness rests on two properties the linear pipeline already has:
// every per-function pass mutates only its function (the module steps run
// before any fork), and every pass recomputes its analyses from the IR it
// receives (passes Invalidate+Analyze at entry), so a state cloned at a
// fork point continues exactly as the unforked state would have. The
// equivalence property test in batch_test.go pins both.
package core

import (
	"portcc/internal/codegen"
	"portcc/internal/ir"
	"portcc/internal/opt"
	"portcc/internal/passes"
)

// BatchStats reports the work one batched compile performed against what
// a per-setting pipeline would have: PassRuns is the number of pass
// applications actually executed, PassRunsSaved the number the prefix
// trie avoided. PassRuns+PassRunsSaved equals the linear-path total for
// the call's settings, so the saving is observable without a profiler.
type BatchStats struct {
	PassRuns      int64
	PassRunsSaved int64
}

// planGroup is one distinct canonical plan and the config indices that
// share it; configs with equal plans compile once and share the binary.
type planGroup struct {
	plan opt.Plan
	// fnSeq/libSeq cache FuncSteps per group.
	fnSeq, libSeq []opt.Step
	cfgs          []int
}

// batch carries the walk state of one CompileBatch call.
type batch struct {
	groups []*planGroup
	progs  []*codegen.Program
	errs   []error
	stats  BatchStats
	// finals[g][fi] is the compiled state of function fi for group g,
	// filled per module node as the function tries bottom out.
	finals [][]*ir.Func
}

// CompileBatch compiles one module under every configuration of a sweep,
// sharing work across settings: configurations with identical canonical
// plans compile once, and distinct plans share every pass application
// along common pipeline prefixes via a depth-first trie walk that clones
// the intermediate IR only where suffixes diverge. Results are positional:
// progs[i] (or errs[i]) belongs to cfgs[i], and every progs[i] is
// bit-identical to a fresh Compile(src, cfgs[i]).
//
// The source module is never mutated. Returned programs may share
// function IR and whole binaries between settings whose pipelines agree;
// they are read-only, as compiled programs always are.
func CompileBatch(src *ir.Module, cfgs []*opt.Config) ([]*codegen.Program, []error, BatchStats) {
	b := &batch{
		progs: make([]*codegen.Program, len(cfgs)),
		errs:  make([]error, len(cfgs)),
	}
	if len(cfgs) == 0 {
		return b.progs, b.errs, b.stats
	}

	// Group configs by canonical plan, first-occurrence order.
	index := make(map[string]int, len(cfgs))
	var naive int64
	nonLib, lib := 0, 0
	for _, f := range src.Funcs {
		if f.Library {
			lib++
		} else {
			nonLib++
		}
	}
	for i, c := range cfgs {
		plan := opt.PlanFor(c)
		naive += int64(plan.Steps(nonLib, lib))
		key := plan.Key()
		gi, ok := index[key]
		if !ok {
			gi = len(b.groups)
			index[key] = gi
			b.groups = append(b.groups, &planGroup{
				plan:   plan,
				fnSeq:  plan.FuncSteps(false),
				libSeq: plan.FuncSteps(true),
			})
		}
		b.groups[gi].cfgs = append(b.groups[gi].cfgs, i)
	}
	b.finals = make([][]*ir.Func, len(b.groups))

	all := make([]int, len(b.groups))
	for i := range all {
		all[i] = i
	}
	b.modWalk(src, false, all, 0)
	b.stats.PassRunsSaved = naive - b.stats.PassRuns
	return b.progs, b.errs, b.stats
}

// modWalk walks the module-step trie. state is the IR after the first
// depth module steps; owned reports whether this walk may mutate it (the
// root is the caller's pristine module and is never owned).
func (b *batch) modWalk(state *ir.Module, owned bool, groups []int, depth int) {
	var terminal []int
	type child struct {
		step   opt.Step
		groups []int
	}
	var children []child
	for _, gi := range groups {
		mod := b.groups[gi].plan.Mod
		if len(mod) == depth {
			terminal = append(terminal, gi)
			continue
		}
		s := mod[depth]
		found := false
		for ci := range children {
			if children[ci].step == s {
				children[ci].groups = append(children[ci].groups, gi)
				found = true
				break
			}
		}
		if !found {
			children = append(children, child{step: s, groups: []int{gi}})
		}
	}
	if len(terminal) > 0 {
		// The function stage only clones out of state, so it leaves the
		// node intact for the deeper children walked next.
		b.funcStage(state, terminal)
	}
	for i, ch := range children {
		st := state
		if owned && i == len(children)-1 {
			// Last consumer of an owned node: mutate it in place.
		} else {
			st = state.Clone()
		}
		applyModStep(ch.step, st)
		b.stats.PassRuns++
		b.modWalk(st, true, ch.groups, depth+1)
	}
}

// funcStage compiles every function of a settled module state through the
// per-function step tries of the given plan groups, then assembles and
// lowers one binary per group. mod is read-only from here on: function
// tries fork clones before the first mutation.
func (b *batch) funcStage(mod *ir.Module, groups []int) {
	stored := passes.StoredStreams(mod)
	for _, gi := range groups {
		b.finals[gi] = make([]*ir.Func, len(mod.Funcs))
	}
	seqs := make([][]opt.Step, len(groups))
	for fi, f := range mod.Funcs {
		for k, gi := range groups {
			if f.Library {
				seqs[k] = b.groups[gi].libSeq
			} else {
				seqs[k] = b.groups[gi].fnSeq
			}
		}
		b.funcWalk(f, false, fi, groups, seqs, stored, 0)
	}
	for _, gi := range groups {
		m := &ir.Module{Name: mod.Name, Entry: mod.Entry, Funcs: b.finals[gi]}
		p, err := codegen.Lower(m)
		for _, ci := range b.groups[gi].cfgs {
			b.progs[ci], b.errs[ci] = p, err
		}
		b.finals[gi] = nil
	}
}

// funcWalk walks one function's step trie. items indexes groups/seqs;
// each item's remaining steps are seqs[k][depth:]. Groups whose sequence
// ends at this node take state as their final function (shared, read-only
// afterwards); longer sequences fork clones, with the last child of an
// owned node stealing it when no terminal needs it preserved.
func (b *batch) funcWalk(state *ir.Func, owned bool, fi int, groups []int, seqs [][]opt.Step, stored map[int32]bool, depth int) {
	terminals := 0
	type child struct {
		step  opt.Step
		items []int
	}
	var children []child
	for k, gi := range groups {
		seq := seqs[k]
		if len(seq) == depth {
			b.finals[gi][fi] = state
			terminals++
			continue
		}
		s := seq[depth]
		found := false
		for ci := range children {
			if children[ci].step == s {
				children[ci].items = append(children[ci].items, k)
				found = true
				break
			}
		}
		if !found {
			children = append(children, child{step: s, items: []int{k}})
		}
	}
	for i, ch := range children {
		st := state
		if owned && terminals == 0 && i == len(children)-1 {
			// Steal: the node state has no other consumers left.
		} else {
			st = state.Clone()
		}
		applyFuncStep(ch.step, st, stored)
		b.stats.PassRuns++
		subGroups := make([]int, len(ch.items))
		subSeqs := make([][]opt.Step, len(ch.items))
		for j, k := range ch.items {
			subGroups[j] = groups[k]
			subSeqs[j] = seqs[k]
		}
		b.funcWalk(st, true, fi, subGroups, subSeqs, stored, depth+1)
	}
}
