package trace_test

import (
	"testing"

	"portcc/internal/codegen"
	"portcc/internal/core"
	"portcc/internal/ir"
	"portcc/internal/isa"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
)

func compileO3(t *testing.T, name string) *codegen.Program {
	t.Helper()
	m := prog.MustBuild(name)
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeterminism(t *testing.T) {
	p := compileO3(t, "djpeg")
	a := trace.Generate(p, trace.Config{Runs: 2, MaxInsns: 100000, Seed: 7})
	b := trace.Generate(p, trace.Config{Runs: 2, MaxInsns: 100000, Seed: 7})
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestRunCounting(t *testing.T) {
	p := compileO3(t, "crc")
	tr := trace.Generate(p, trace.Config{Runs: 3, MaxInsns: 500000, Seed: 1})
	if tr.Runs != 3 {
		t.Errorf("completed %d runs, want 3", tr.Runs)
	}
	if tr.Truncated {
		t.Error("trace should not be truncated at this cap")
	}
	// The safety cap must truncate and mark.
	short := trace.Generate(p, trace.Config{Runs: 100, MaxInsns: 5000, Seed: 1})
	if !short.Truncated {
		t.Error("capped trace not marked truncated")
	}
}

// TestWorkEquivalenceAcrossConfigs is the fairness foundation: every
// compilation of the same program must execute the same source-level work
// (identical run counts and, for probabilistic branches, identical
// per-site outcome sequences).
func TestWorkEquivalenceAcrossConfigs(t *testing.T) {
	m := prog.MustBuild("gs")
	o3 := opt.O3()
	var o0 opt.Config
	p3, err := core.Compile(m, &o3)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := core.Compile(m, &o0)
	if err != nil {
		t.Fatal(err)
	}
	tr3 := trace.Generate(p3, trace.Config{Runs: 2, MaxInsns: 500000, Seed: 9})
	tr0 := trace.Generate(p0, trace.Config{Runs: 2, MaxInsns: 500000, Seed: 9})
	if tr3.Runs != tr0.Runs {
		t.Fatalf("run counts differ: %d vs %d", tr3.Runs, tr0.Runs)
	}
	// Same dynamic call counts: the call structure is source-level work.
	if tr3.OpCount[isa.OpCall] != tr0.OpCount[isa.OpCall] {
		t.Errorf("call counts differ: %d vs %d (branch outcomes shifted)",
			tr3.OpCount[isa.OpCall], tr0.OpCount[isa.OpCall])
	}
}

func TestCountersConsistent(t *testing.T) {
	p := compileO3(t, "susan_s")
	tr := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: 200000, Seed: 1})
	var memOps, branches uint64
	for _, ev := range tr.Events {
		if isa.Op(ev.Op).IsMem() {
			memOps++
		}
		if ev.Flags&trace.FlagCond != 0 {
			branches++
		}
	}
	if memOps != tr.MemOps {
		t.Errorf("MemOps %d, events say %d", tr.MemOps, memOps)
	}
	if branches != tr.Branches {
		t.Errorf("Branches %d, events say %d", tr.Branches, branches)
	}
	total := uint64(0)
	for _, c := range tr.OpCount {
		total += c
	}
	if total != uint64(len(tr.Events)) {
		t.Errorf("OpCount sums to %d, want %d", total, len(tr.Events))
	}
}

func TestAddressesWithinRegions(t *testing.T) {
	p := compileO3(t, "fft")
	tr := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: 100000, Seed: 1})
	for _, ev := range tr.Events {
		op := isa.Op(ev.Op)
		if op.IsMem() {
			if ev.Addr < trace.DataBase {
				t.Fatalf("data address %#x below trace.DataBase", ev.Addr)
			}
		} else if op != isa.OpNop && ev.PC < codegen.CodeBase {
			t.Fatalf("instruction address %#x below CodeBase", ev.PC)
		}
	}
}

func TestCountedLoopPattern(t *testing.T) {
	// A counted latch must be taken trip-1 times then exit, repeatedly.
	f := &ir.Func{Name: "main", ID: 0, NextReg: 2}
	f.Blocks = []*ir.Block{
		{ID: 0, Insns: []ir.Insn{{Op: isa.OpALU, Def: 1, Imm: 1}},
			Term: ir.Term{Kind: ir.TermFall, Fall: 1}},
		{ID: 1, Insns: []ir.Insn{{Op: isa.OpALU, Def: 1, Imm: 2, Flags: ir.FlagMerge}},
			Term: ir.Term{Kind: ir.TermBranch, Taken: 1, Fall: 2, Trip: 5, Site: 1}},
		{ID: 2, Term: ir.Term{Kind: ir.TermRet}},
	}
	m := &ir.Module{Name: "t", Funcs: []*ir.Func{f}}
	p, err := codegen.Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: 1000, Seed: 1})
	taken, total := 0, 0
	for _, ev := range tr.Events {
		if ev.Flags&trace.FlagCond != 0 {
			total++
			if ev.Flags&trace.FlagTaken != 0 {
				taken++
			}
		}
	}
	if total != 5 || taken != 4 {
		t.Errorf("latch executed %d times with %d taken, want 5/4", total, taken)
	}
}

func TestStreamBases(t *testing.T) {
	if trace.StreamBase(0) != trace.DataBase {
		t.Error("stream 0 must start at trace.DataBase")
	}
	if trace.StreamBase(1)-trace.StreamBase(0) != trace.DataSpacing {
		t.Error("data streams must be trace.DataSpacing apart")
	}
	if trace.StreamBase(trace.FrameStream) != trace.FrameBase {
		t.Error("first frame stream must start at trace.FrameBase")
	}
}

func TestDependencyDistances(t *testing.T) {
	p := compileO3(t, "sha")
	tr := trace.Generate(p, trace.Config{Runs: 1, MaxInsns: 50000, Seed: 1})
	sawLoadDep := false
	for _, ev := range tr.Events {
		if ev.DistLoad != trace.NoDist {
			sawLoadDep = true
			if ev.DistLoad == 0 {
				t.Fatal("zero dependency distance is impossible")
			}
		}
	}
	if !sawLoadDep {
		t.Error("no load-use dependencies recorded in a load-heavy program")
	}
}
