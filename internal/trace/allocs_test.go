// The race detector makes sync.Pool drop items on purpose, so the
// zero-alloc pins only hold in normal builds.
//go:build !race

package trace_test

import (
	"testing"

	"portcc/internal/core"
	"portcc/internal/opt"
	"portcc/internal/prog"
	"portcc/internal/trace"
)

// TestGenerateIntoSteadyStateAllocs pins the cursor-free generator: with
// the event buffer pooled (Get/Put) and every stream/latch/site cursor a
// dense image-assigned slot into pooled flat slices, steady-state
// generation must not allocate at all - the map-cursor generator it
// replaced allocated per-stream state on every run.
func TestGenerateIntoSteadyStateAllocs(t *testing.T) {
	p := compileO3(t, "gs")
	cfg := trace.Config{Runs: 2, MaxInsns: 100_000, Seed: 7}
	warm := trace.Generate(p, cfg) // sizes the pooled buffers
	capHint := len(warm.Events) + 64
	allocs := testing.AllocsPerRun(20, func() {
		tr := trace.Get(capHint)
		trace.GenerateInto(tr, p, cfg)
		trace.Put(tr)
	})
	if allocs != 0 {
		t.Errorf("steady-state GenerateInto allocates %.1f times per run, want 0", allocs)
	}
}

// BenchmarkGenerateInto measures pooled trace generation end to end (the
// ~25%-of-runtime stage the dense cursor slots attack); events/s is the
// comparable throughput metric.
func BenchmarkGenerateInto(b *testing.B) {
	m := prog.MustBuild("gs")
	o3 := opt.O3()
	p, err := core.Compile(m, &o3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := trace.Config{Runs: 2, MaxInsns: 100_000, Seed: 7}
	tr := trace.Get(100_064)
	defer trace.Put(tr)
	trace.GenerateInto(tr, p, cfg)
	events := len(tr.Events)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.GenerateInto(tr, p, cfg)
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
