// Package trace turns a placed binary image into a dynamic instruction
// trace: the exact sequence of executed instructions with concrete fetch
// addresses, data addresses, branch outcomes and dependency distances.
//
// A trace is a pure function of the compiled program and a seed - it does
// not depend on the microarchitecture - so one trace is generated per
// (program, optimisation setting) and replayed against every
// microarchitecture configuration, exactly like trace-driven simulation.
//
// Generation is cursor-free: the image (internal/codegen) assigns every
// address stream, loop-latch counter and probabilistic branch site a
// dense slot at build time, so the generator's per-event state lives in
// flat pooled slices and steady-state generation performs no allocations
// and no map probes.
package trace

import (
	"sync"

	"portcc/internal/codegen"
	"portcc/internal/ir"
	"portcc/internal/isa"
)

// Event flag bits.
const (
	// FlagTaken marks a control event that redirects fetch.
	FlagTaken uint8 = 1 << iota
	// FlagDepPrev marks an instruction depending on the immediately
	// preceding dynamic instruction (dual-issue pairing constraint).
	FlagDepPrev
	// FlagCond marks a conditional branch (BTB-predicted).
	FlagCond
)

// NoDist is the "no producer" marker for dependency distances.
const NoDist uint8 = 255

// Event is one dynamic instruction.
type Event struct {
	PC   uint32 // instruction address
	Addr uint32 // data address (memory ops) or control target
	Op   uint8  // isa.Op
	// DistLoad is the dynamic-instruction distance to the most recent
	// load producing one of this instruction's operands (NoDist: none).
	DistLoad uint8
	// DistFU / FULat describe the nearest multi-cycle functional-unit
	// producer (multiply/MAC) feeding this instruction.
	DistFU uint8
	FULat  uint8
	Flags  uint8
}

// Trace is the replayable dynamic instruction stream plus the
// microarchitecture-independent counts the performance counters need.
type Trace struct {
	Events []Event
	// OpCount counts dynamic instructions per operation class.
	OpCount [isa.NumOps]uint64
	// RegReads and RegWrites count register-file ports exercised.
	RegReads, RegWrites uint64
	// Branches counts conditional branches (BTB lookups).
	Branches uint64
	// MemOps counts loads+stores (data-cache accesses).
	MemOps uint64
	// Restarts counts how many times the whole program re-ran to fill
	// the trace to its cap.
	Restarts int
	// Runs counts complete program executions contained in the trace.
	Runs int
	// Truncated reports that the instruction cap ended the trace before
	// the requested run count completed.
	Truncated bool
}

// Insns returns the dynamic instruction count.
func (t *Trace) Insns() int { return len(t.Events) }

// Reshape resets the trace for a fresh generation run, keeping the event
// buffer's capacity so steady-state Get/Generate/Put cycles run without
// reallocating or zeroing the multi-megabyte event stream.
func (t *Trace) Reshape() {
	*t = Trace{Events: t.Events[:0]}
}

// pool recycles traces between generations; like the cache and bpred
// pools, entries keep their largest-seen event buffer.
var pool = sync.Pool{New: func() any { return new(Trace) }}

// Get returns a reset trace from the pool, ready for GenerateInto, with
// room for at least capHint events: generation then runs without append
// doublings, and a pooled buffer large enough is reused as-is (never
// zeroed - the generator only appends).
func Get(capHint int) *Trace {
	t := pool.Get().(*Trace)
	t.Reshape()
	if cap(t.Events) < capHint {
		t.Events = make([]Event, 0, capHint)
	}
	return t
}

// Put returns a trace to the pool. The caller must not use it afterwards;
// traces handed to other owners (e.g. cached in an evaluator) must not be
// put back.
func Put(t *Trace) { pool.Put(t) }

// Config controls trace generation.
type Config struct {
	// Runs, when positive, ends the trace after that many complete
	// executions of the program: every compilation of the same program
	// then performs the identical source-level work, making cycle counts
	// directly comparable. Zero means "fill to MaxInsns".
	Runs int
	// MaxInsns caps the trace length as a safety bound (the statistical
	// workload scaling described in DESIGN.md). Zero selects the 100k
	// default (or 6x the expected run length when Runs is set).
	MaxInsns int
	// Seed drives branch outcomes and address generation. Outcomes are
	// derived per branch site (see ir.Term.Site), so they are identical
	// across different compilations of the same program.
	Seed int64
}

// Stream address-space carving: ordinary data streams get 1 MiB regions
// from DataBase; per-function frame streams (spill slots, register saves)
// get 4 KiB regions from FrameBase.
const (
	// DataBase is the base address of ordinary data streams.
	DataBase uint32 = 0x1000_0000
	// DataSpacing is the region size per ordinary stream.
	DataSpacing uint32 = 0x10_0000
	// FrameStream is the stream-ID base for per-function frame streams.
	FrameStream int32 = 1 << 20
	// FrameBase is the base address of frame streams.
	FrameBase uint32 = 0xF000_0000
	// FrameSpacing is the region size per frame stream.
	FrameSpacing uint32 = 0x1000
)

// StreamBase returns the base address of a stream's region.
func StreamBase(id int32) uint32 {
	if id >= FrameStream {
		return FrameBase + uint32(id-FrameStream)*FrameSpacing
	}
	return DataBase + uint32(id)*DataSpacing
}

type retSite struct {
	fi   *codegen.FuncImage
	bpos int // layout position within fi.Blocks
	ipos int // next instruction index within the block body
}

// generator walks the binary image. All its per-program cursor state is
// cursor-free in the map sense: codegen assigns every address stream,
// latch trip counter and probabilistic branch site a dense slot at
// image-build time (Program.NumStreams/NumLatchSlots/NumSiteSlots with
// the per-block/per-insn slot indices), so the per-event lookups below
// are flat slice indexing into pooled scratch arrays.
type generator struct {
	prog     *codegen.Program
	seed     uint64
	tr       *Trace
	max      int
	wantRuns int

	streamCursor []uint32 // per stream slot: next sequential offset
	streamCount  []uint64 // per stream slot: accesses (random-address hash)
	trips        []int32  // per latch slot: trip counter
	sites        []uint64 // per site slot: execution counter

	// Register scoreboard indexed by physical register number.
	lastIdx  [isa.NumRegs + 1]int64
	lastLoad [isa.NumRegs + 1]bool
	lastLat  [isa.NumRegs + 1]uint8

	dyn       int64 // dynamic instruction index
	callStack []retSite
}

// Generate executes the program image and returns its trace.
func Generate(p *codegen.Program, cfg Config) *Trace {
	return GenerateInto(&Trace{}, p, cfg)
}

// genPool recycles generator scratch (stream cursors, trip counters, site
// counters) between runs, so batched generation stays allocation-flat.
var genPool = sync.Pool{New: func() any { return new(generator) }}

// sized returns buf resized to n zeroed elements, reusing its capacity.
func sized[T comparable](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// GenerateInto executes the program image into dst (typically from Get,
// reusing its event buffer) and returns it. The produced trace is
// bit-identical to Generate's for the same program and config.
func GenerateInto(dst *Trace, p *codegen.Program, cfg Config) *Trace {
	if cfg.MaxInsns <= 0 {
		cfg.MaxInsns = 100_000
	}
	dst.Reshape()
	g := genPool.Get().(*generator)
	g.prog = p
	g.seed = splitmix(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15)
	g.tr = dst
	g.max = cfg.MaxInsns
	g.wantRuns = cfg.Runs
	g.dyn = 0
	g.callStack = g.callStack[:0]
	g.streamCursor = sized(g.streamCursor, p.NumStreams)
	g.streamCount = sized(g.streamCount, p.NumStreams)
	g.trips = sized(g.trips, p.NumLatchSlots)
	g.sites = sized(g.sites, p.NumSiteSlots)
	for i := range g.lastIdx {
		g.lastIdx[i] = -1 << 60
		g.lastLoad[i] = false
		g.lastLat[i] = 0
	}
	g.run()
	if g.wantRuns > 0 && g.tr.Runs < g.wantRuns {
		g.tr.Truncated = true
		g.tr.Runs++ // count the partial run so rates stay finite
	}
	g.prog, g.tr = nil, nil
	genPool.Put(g)
	return dst
}

// splitmix is the splitmix64 mixing function used to derive per-site,
// per-execution branch outcomes and per-access random addresses.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFloat maps a hash to [0,1).
func hashFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

func (g *generator) full() bool {
	if len(g.tr.Events) >= g.max {
		return true
	}
	return g.wantRuns > 0 && g.tr.Runs >= g.wantRuns
}

func (g *generator) run() {
	fi := g.prog.Entry()
	bpos, ipos := 0, 0
	fellThrough := false

	for !g.full() {
		bi := fi.Blocks[bpos]

		// Alignment padding is executed as no-ops when entered by
		// fall-through (a real cost of the alignment passes).
		if ipos == 0 && fellThrough && bi.Pad > 0 {
			padBase := bi.Addr - uint32(bi.Pad)
			for k := 0; k < bi.Pad/isa.InsnBytes && !g.full(); k++ {
				g.emit(Event{PC: padBase + uint32(k*isa.InsnBytes),
					Op: uint8(isa.OpNop), DistLoad: NoDist, DistFU: NoDist})
			}
		}
		fellThrough = false

		// Body instructions (possibly resuming mid-block after a call).
		calledInto := false
		for ipos < len(bi.Insns) && !g.full() {
			in := &bi.Insns[ipos]
			slot := bi.StreamSlot[ipos]
			pc := bi.Addr + uint32(ipos*isa.InsnBytes)
			ipos++
			if in.Op == isa.OpCall {
				callee := g.prog.FuncOf(int(in.Callee))
				ev := Event{PC: pc, Addr: callee.Addr, Op: uint8(isa.OpCall),
					Flags: FlagTaken, DistLoad: NoDist, DistFU: NoDist}
				g.depends(&ev, in)
				g.emit(ev)
				if !in.HasFlag(ir.FlagTailCall) {
					g.callStack = append(g.callStack, retSite{fi, bpos, ipos})
				}
				fi, bpos, ipos = callee, 0, 0
				calledInto = true
				break
			}
			g.step(pc, in, slot)
		}
		if calledInto || g.full() {
			continue
		}

		// Terminator.
		switch bi.Term.Kind {
		case ir.TermRet:
			g.emit(Event{PC: bi.JumpAddr, Op: uint8(isa.OpRet),
				Flags: FlagTaken, DistLoad: NoDist, DistFU: NoDist})
			if len(g.callStack) == 0 {
				// Entry function returned: one complete program run.
				g.tr.Restarts++
				g.tr.Runs++
				fi, bpos, ipos = g.prog.Entry(), 0, 0
				continue
			}
			rs := g.callStack[len(g.callStack)-1]
			g.callStack = g.callStack[:len(g.callStack)-1]
			fi, bpos, ipos = rs.fi, rs.bpos, rs.ipos
			continue

		case ir.TermFall, ir.TermJump:
			target := bi.Term.Fall
			if bi.Term.Kind == ir.TermJump {
				target = bi.Term.Taken
			}
			npos := posOf(fi, target)
			if bi.HasJump {
				g.emit(Event{PC: bi.JumpAddr, Addr: fi.Blocks[npos].Addr,
					Op: uint8(isa.OpJump), Flags: FlagTaken,
					DistLoad: NoDist, DistFU: NoDist})
			} else {
				fellThrough = true
			}
			bpos, ipos = npos, 0

		case ir.TermBranch:
			taken := g.decide(bi)
			target := bi.Term.Fall
			if taken {
				target = bi.Term.Taken
			}
			npos := posOf(fi, target)
			// Does fetch redirect at the branch instruction itself?
			var redirects bool
			if bi.HasJump {
				redirects = taken // branch targets Taken; Fall is via the jump
			} else {
				redirects = taken != bi.Inverted
			}
			flags := FlagCond
			if redirects {
				flags |= FlagTaken
			}
			ev := Event{PC: bi.BranchAddr, Addr: fi.Blocks[npos].Addr,
				Op: uint8(isa.OpBranch), Flags: flags,
				DistLoad: NoDist, DistFU: NoDist}
			if bi.Term.CondReg != ir.RegNone {
				g.useDep(&ev, bi.Term.CondReg)
				g.tr.RegReads++
			}
			g.emit(ev)
			if bi.HasJump && !taken {
				g.emit(Event{PC: bi.JumpAddr, Addr: fi.Blocks[npos].Addr,
					Op: uint8(isa.OpJump), Flags: FlagTaken,
					DistLoad: NoDist, DistFU: NoDist})
			} else if !redirects {
				fellThrough = true
			}
			bpos, ipos = npos, 0
		}
	}
}

// posOf finds the layout position of block id within the function image.
func posOf(fi *codegen.FuncImage, id int) int {
	if id >= 0 && id < len(fi.ByID) {
		if bi := fi.ByID[id]; bi != nil {
			return bi.Pos
		}
	}
	// Verified IR guarantees valid targets; reaching here is a bug.
	panic("trace: branch target not in function layout")
}

// decide evaluates the branch outcome at IR level (true = Taken edge).
// For counted latches (Trip > 0) the Taken edge is, by convention, the
// repeat edge: the pattern is Trip-1 repeats then one exit.
//
// Probabilistic outcomes are derived by hashing (seed, branch site,
// execution index), and loop-invariant branches hash the *run* index, so
// they are constant for a whole program execution: every compilation of
// the program sees the same outcome sequence per source branch, and
// unswitching a truly invariant branch preserves semantics exactly.
func (g *generator) decide(bi *codegen.BlockImage) bool {
	t := bi.Term
	if t.Trip > 0 {
		c := g.trips[bi.LatchSlot] + 1
		if c >= t.Trip {
			g.trips[bi.LatchSlot] = 0
			return false
		}
		g.trips[bi.LatchSlot] = c
		return true
	}
	if t.Prob <= 0 {
		return false
	}
	if t.Prob >= 1 {
		return true
	}
	if t.InvariantIn > 0 {
		h := splitmix(g.seed ^ uint64(uint32(t.Site))<<20 ^ uint64(g.tr.Runs))
		return hashFloat(h) < t.Prob
	}
	n := g.sites[bi.SiteSlot]
	g.sites[bi.SiteSlot] = n + 1
	h := splitmix(g.seed ^ uint64(uint32(t.Site))<<20 ^ n)
	return hashFloat(h) < t.Prob
}

// step emits the event for a non-control instruction; slot is the
// instruction's dense stream index from the image (-1 when it keeps no
// stream cursor).
func (g *generator) step(pc uint32, in *ir.Insn, slot int32) {
	ev := Event{PC: pc, Op: uint8(in.Op), DistLoad: NoDist, DistFU: NoDist}
	g.depends(&ev, in)
	if in.Op.IsMem() {
		ev.Addr = g.address(in, slot)
		if in.Mem.Kind == ir.MemPointer && in.Op == isa.OpLoad {
			// Pointer chasing: the address depends on the previous load.
			ev.DistLoad = 1
		}
	}
	g.emit(ev)
	if in.Def != ir.RegNone {
		g.writeDep(in)
		g.tr.RegWrites++
	}
}

// depends fills dependency distances from the register scoreboard.
func (g *generator) depends(ev *Event, in *ir.Insn) {
	for _, u := range in.Use {
		if u == ir.RegNone {
			continue
		}
		g.useDep(ev, u)
		g.tr.RegReads++
	}
}

func foldReg(r ir.Reg) int {
	i := int(r)
	if i > isa.NumRegs {
		// Traces of pre-allocation IR (used by unit tests) fold virtual
		// registers onto the physical scoreboard.
		i = 1 + (i % isa.NumRegs)
	}
	return i
}

func (g *generator) useDep(ev *Event, u ir.Reg) {
	r := foldReg(u)
	d := g.dyn - g.lastIdx[r]
	if d <= 0 || d > 254 {
		return
	}
	if d == 1 {
		ev.Flags |= FlagDepPrev
	}
	if g.lastLoad[r] {
		if uint8(d) < ev.DistLoad {
			ev.DistLoad = uint8(d)
		}
	} else if g.lastLat[r] > 1 {
		if uint8(d) < ev.DistFU {
			ev.DistFU = uint8(d)
			ev.FULat = g.lastLat[r]
		}
	}
}

func (g *generator) writeDep(in *ir.Insn) {
	r := foldReg(in.Def)
	g.lastIdx[r] = g.dyn - 1 // emit already advanced dyn
	g.lastLoad[r] = in.Op == isa.OpLoad
	g.lastLat[r] = uint8(in.Op.Latency())
}

// address synthesises the data address for a memory instruction; slot is
// the image-assigned dense stream index (-1 exactly for the deterministic
// frame-slot accesses, which keep no cursor).
func (g *generator) address(in *ir.Insn, slot int32) uint32 {
	m := in.Mem
	base := StreamBase(m.Stream)
	if slot < 0 {
		// Frame slots are deterministic: slot index in Imm.
		return base + uint32(in.Imm)*4
	}
	w := uint32(m.WSet)
	switch m.Kind {
	case ir.MemSeq, ir.MemStrided:
		cur := g.streamCursor[slot]
		a := base + cur
		cur += uint32(m.Stride)
		if cur >= w {
			cur = 0
		}
		g.streamCursor[slot] = cur
		return a
	case ir.MemScalar:
		return base
	default: // MemRandom, MemPointer, MemTable, MemStack
		n := g.streamCount[slot] + 1
		g.streamCount[slot] = n
		h := splitmix(g.seed ^ uint64(uint32(m.Stream))<<32 ^ n)
		return base + (uint32(h)%w)&^3
	}
}

// emit appends the event and updates the trace-level counters.
func (g *generator) emit(ev Event) {
	g.tr.Events = append(g.tr.Events, ev)
	g.dyn++
	op := isa.Op(ev.Op)
	g.tr.OpCount[op]++
	if op.IsMem() {
		g.tr.MemOps++
	}
	if ev.Flags&FlagCond != 0 {
		g.tr.Branches++
	}
}
