// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"portcc/internal/dataset"
	"portcc/internal/sched"
)

// Flags is the option set shared by the portcc command-line tools:
// sampling scale, worker-pool size, model-artifact path, listen/serve
// address, and the shard list plus reconnect policy for distributed
// exploration. Each tool registers the subset it uses and calls Init
// for the common prologue.
type Flags struct {
	Scale        string
	Workers      int
	SweepWorkers int
	Model        string
	Addr         string
	Store        string
	StoreBudget  int64
	StoreRemote  string
	shards       string
	shardRetries int
	shardBackoff time.Duration
	cpuProfile   string
	memProfile   string
}

// RegisterScale installs the shared -scale flag.
func (f *Flags) RegisterScale(def string) {
	flag.StringVar(&f.Scale, "scale", def, "sampling scale: tiny, small, medium or paper")
}

// RegisterWorkers installs the shared -workers flag.
func (f *Flags) RegisterWorkers() {
	flag.IntVar(&f.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
}

// RegisterSweepWorkers installs the shared -sweep-workers flag: the
// per-slot worker budget of the batched replay engine's per-geometry
// sweeps. The default auto-tunes (cores the program-level fan-out cannot
// occupy go to each slot's sweeps); an explicit count pins the share.
// Results are bit-identical at every setting.
func (f *Flags) RegisterSweepWorkers() {
	flag.IntVar(&f.SweepWorkers, "sweep-workers", 0,
		"per-worker sweep parallelism of batched replays (0 = auto-tune against GOMAXPROCS)")
}

// RegisterProfile installs the shared -cpuprofile and -memprofile flags;
// StartProfiles acts on them.
func (f *Flags) RegisterProfile() {
	flag.StringVar(&f.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.memProfile, "memprofile", "", "write an allocation profile to this file on exit")
}

// StartProfiles starts the profiles the -cpuprofile/-memprofile flags
// request and returns the function that stops the CPU profile and
// snapshots the heap, to run once at tool exit (it is safe to call with
// neither flag set, and the returned stop is never nil):
//
//	stop, err := cf.StartProfiles()
//	if err != nil { log.Fatal(err) }
//	defer stop()
//
// Note defer runs stop after a normal return but not after log.Fatal;
// tools whose failure paths matter for profiling should stop explicitly
// before exiting.
func (f *Flags) StartProfiles() (stop func(), err error) {
	if f.cpuProfile != "" {
		cf, err := os.Create(f.cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("cliutil: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return nil, fmt.Errorf("cliutil: -cpuprofile: %w", err)
		}
	}
	memPath := f.memProfile
	return func() {
		if f.cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if memPath == "" {
			return
		}
		mf, err := os.Create(memPath)
		if err != nil {
			log.Printf("-memprofile: %v", err)
			return
		}
		defer mf.Close()
		runtime.GC() // materialise the final live set
		if err := pprof.Lookup("allocs").WriteTo(mf, 0); err != nil {
			log.Printf("-memprofile: %v", err)
		}
	}, nil
}

// RegisterStore installs the shared -store and -store-budget flags: the
// directory of the persistent content-addressed result store replays
// are answered from and committed to, and its LRU byte budget. A run
// killed mid-flight resumes from the store byte-identically; corrupt
// entries are quarantined and recomputed; a full or broken disk only
// costs cache hits, never correctness.
func (f *Flags) RegisterStore() {
	flag.StringVar(&f.Store, "store", "",
		"persistent result-store directory for resumable generation (empty = none)")
	flag.Int64Var(&f.StoreBudget, "store-budget", 0,
		"result-store size bound in bytes, LRU-evicted (0 = unbounded)")
	flag.StringVar(&f.StoreRemote, "store-remote", "",
		"shared store-service address (host:port of portccsd); combined with -store as a local-then-remote tier, alone as a fleet-only cache")
}

// OpenStore opens the result store the store flags describe - the
// local directory, the shared service, or both tiered - returning
// (nil, nil) when neither flag is set. The caller owns Close.
func (f *Flags) OpenStore() (*dataset.ResultStore, error) {
	switch {
	case f.StoreRemote != "":
		rs, err := dataset.OpenResultStoreRemote(f.Store, f.StoreBudget, f.StoreRemote)
		if err != nil {
			return nil, fmt.Errorf("cliutil: -store: %w", err)
		}
		return rs, nil
	case f.Store != "":
		rs, err := dataset.OpenResultStore(f.Store, f.StoreBudget)
		if err != nil {
			return nil, fmt.Errorf("cliutil: -store: %w", err)
		}
		return rs, nil
	}
	return nil, nil
}

// StoreStats formats a one-line summary of a store's ledger for tool
// output; empty when no store is attached. A tiered store's remote
// traffic gets its own clause so a fleet run shows at a glance how
// much work the service saved (and how often it was unreachable).
func StoreStats(rs *dataset.ResultStore) string {
	if rs == nil {
		return ""
	}
	s := rs.Stats()
	line := fmt.Sprintf("store: %d hits, %d misses, %d corrupt quarantined, %d put errors (%d entries, %d bytes, %d evicted)",
		s.Hits, s.Misses, s.Corrupt, s.PutErrors, s.Entries, s.Bytes, s.Evictions)
	if s.RemoteHits != 0 || s.RemoteMisses != 0 || s.RemoteErrors != 0 || s.RemotePuts != 0 || s.RemotePutErrors != 0 {
		line += fmt.Sprintf("; remote: %d hits, %d misses, %d degraded, %d puts, %d lost",
			s.RemoteHits, s.RemoteMisses, s.RemoteErrors, s.RemotePuts, s.RemotePutErrors)
	}
	return line
}

// RegisterModel installs the shared -model flag: the path of a trained
// model artifact written by cmd/trainer -model-out.
func (f *Flags) RegisterModel(usage string) {
	if usage == "" {
		usage = "trained model artifact (from trainer -model-out)"
	}
	flag.StringVar(&f.Model, "model", "", usage)
}

// RegisterAddr installs the shared -addr flag for serving tools.
func (f *Flags) RegisterAddr(def string) {
	flag.StringVar(&f.Addr, "addr", def, "listen address (host:port)")
}

// RegisterShards installs the shared -shards flag.
func (f *Flags) RegisterShards() {
	flag.StringVar(&f.shards, "shards", "",
		"comma-separated portccd worker addresses (host:port,...) for distributed exploration")
}

// RegisterShardRetry installs the shared -shard-retries and
// -shard-backoff flags alongside -shards.
func (f *Flags) RegisterShardRetry() {
	flag.IntVar(&f.shardRetries, "shard-retries", 0,
		"consecutive fruitless redials before a dead shard is abandoned (0 = default)")
	flag.DurationVar(&f.shardBackoff, "shard-backoff", 0,
		"initial shard redial backoff, doubling per attempt (0 = default)")
}

// ShardRetry returns the reconnect policy the retry flags describe;
// unset flags leave the scheduler defaults in force.
func (f *Flags) ShardRetry() sched.RetryPolicy {
	return sched.RetryPolicy{MaxAttempts: f.shardRetries, BaseBackoff: f.shardBackoff}
}

// Shards returns the parsed -shards address list, empty entries dropped
// (so trailing commas and unset flags both mean "run locally").
func (f *Flags) Shards() []string {
	var addrs []string
	for _, a := range strings.Split(f.shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// Init applies the standard tool prologue shared by every command: plain
// log formatting under the tool's name, flag parsing, and the
// SIGINT-cancelled context. Call it after registering flags.
func Init(name string) (context.Context, context.CancelFunc) {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
	flag.Parse()
	return SignalContext()
}

// SignalContext returns a context cancelled by the first SIGINT or
// SIGTERM, for graceful shutdown: long-running pools drain, servers
// stop accepting and finish in-flight requests, and single-shot Session
// calls stop at their next entry boundary. After the first signal the
// default handler is restored, so a second Ctrl-C (or the supervisor's
// escalation to SIGKILL) force-kills instead of being swallowed while
// work winds down. The returned stop releases the signal registration.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// ProgressPrinter returns a report callback that rewrites one terminal
// status line per completed exploration cell - annotated with the shard
// count when the run is distributed (shards > 0) - plus a finish func
// that terminates the line if it is still open. Call finish before
// printing anything else (errors included) after a run that may have
// stopped early, so the message does not land on the half-drawn line;
// it is a no-op when the line already completed.
func ProgressPrinter(w io.Writer, shards int) (report func(done, total int), finish func()) {
	where := ""
	if shards > 0 {
		where = fmt.Sprintf(" (%d shards)", shards)
	}
	open := false
	report = func(done, total int) {
		fmt.Fprintf(w, "\rexploring: %d/%d cells (%.0f%%)%s", done, total, 100*float64(done)/float64(total), where)
		open = done != total
		if !open {
			fmt.Fprintln(w)
		}
	}
	finish = func() {
		if open {
			fmt.Fprintln(w)
			open = false
		}
	}
	return report, finish
}
