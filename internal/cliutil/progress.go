// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
)

// SignalContext returns a context cancelled by the first SIGINT, for
// graceful shutdown: long-running pools drain, and single-shot Session
// calls stop at their next entry boundary. After the first interrupt the
// default handler is restored, so a second Ctrl-C force-kills instead of
// being swallowed while work winds down. The returned stop releases the
// signal registration.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// ProgressPrinter returns a report callback that rewrites one terminal
// status line per completed exploration cell, plus a finish func that
// terminates the line if it is still open. Call finish before printing
// anything else (errors included) after a run that may have stopped
// early, so the message does not land on the half-drawn line; it is a
// no-op when the line already completed.
func ProgressPrinter(w io.Writer) (report func(done, total int), finish func()) {
	open := false
	report = func(done, total int) {
		fmt.Fprintf(w, "\rexploring: %d/%d cells (%.0f%%)", done, total, 100*float64(done)/float64(total))
		open = done != total
		if !open {
			fmt.Fprintln(w)
		}
	}
	finish = func() {
		if open {
			fmt.Fprintln(w)
			open = false
		}
	}
	return report, finish
}
