package cliutil

import (
	"strings"
	"testing"
)

func TestFlagsShardsParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0},
		{"host:1", 1},
		{"a:1,b:2", 2},
		{" a:1 , b:2 ,", 2}, // whitespace and trailing commas are noise
	} {
		f := Flags{shards: tc.in}
		if got := f.Shards(); len(got) != tc.want {
			t.Errorf("Shards(%q) = %v, want %d entries", tc.in, got, tc.want)
		}
	}
}

func TestProgressPrinterShardAnnotation(t *testing.T) {
	var local, sharded strings.Builder
	report, _ := ProgressPrinter(&local, 0)
	report(3, 10)
	if strings.Contains(local.String(), "shards") {
		t.Errorf("local progress line %q mentions shards", local.String())
	}
	report, finish := ProgressPrinter(&sharded, 2)
	report(3, 10)
	if !strings.Contains(sharded.String(), "3/10 cells") || !strings.Contains(sharded.String(), "(2 shards)") {
		t.Errorf("sharded progress line %q lacks cells done/total or shard count", sharded.String())
	}
	// finish terminates a half-drawn line exactly once.
	finish()
	finish()
	if got := strings.Count(sharded.String(), "\n"); got != 1 {
		t.Errorf("%d newlines after finish, want 1", got)
	}
}
