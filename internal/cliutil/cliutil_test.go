package cliutil

import (
	"os"
	"strings"
	"testing"
	"time"

	"portcc/internal/sched"
)

func TestFlagsShardsParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0},
		{"host:1", 1},
		{"a:1,b:2", 2},
		{" a:1 , b:2 ,", 2}, // whitespace and trailing commas are noise
	} {
		f := Flags{shards: tc.in}
		if got := f.Shards(); len(got) != tc.want {
			t.Errorf("Shards(%q) = %v, want %d entries", tc.in, got, tc.want)
		}
	}
}

func TestShardRetryPolicy(t *testing.T) {
	// Unset flags yield the zero policy: scheduler defaults stay in force.
	var f Flags
	if got := f.ShardRetry(); got != (sched.RetryPolicy{}) {
		t.Errorf("unset retry flags produced %+v, want zero policy", got)
	}
	f = Flags{shardRetries: 7, shardBackoff: 250 * time.Millisecond}
	want := sched.RetryPolicy{MaxAttempts: 7, BaseBackoff: 250 * time.Millisecond}
	if got := f.ShardRetry(); got != want {
		t.Errorf("ShardRetry() = %+v, want %+v", got, want)
	}
}

func TestStartProfiles(t *testing.T) {
	// Unset flags: a no-op stop, no files, no error.
	var f Flags
	stop, err := f.StartProfiles()
	if err != nil {
		t.Fatalf("StartProfiles with no flags: %v", err)
	}
	if stop == nil {
		t.Fatal("StartProfiles returned a nil stop")
	}
	stop()

	dir := t.TempDir()
	f = Flags{cpuProfile: dir + "/cpu.pprof", memProfile: dir + "/mem.pprof"}
	stop, err = f.StartProfiles()
	if err != nil {
		t.Fatalf("StartProfiles: %v", err)
	}
	stop()
	for _, p := range []string{f.cpuProfile, f.memProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}

	// An unwritable CPU profile path fails up front, not at stop.
	f = Flags{cpuProfile: dir + "/missing/cpu.pprof"}
	if _, err := f.StartProfiles(); err == nil {
		t.Error("StartProfiles with unwritable -cpuprofile path: want error")
	}
}

func TestProgressPrinterShardAnnotation(t *testing.T) {
	var local, sharded strings.Builder
	report, _ := ProgressPrinter(&local, 0)
	report(3, 10)
	if strings.Contains(local.String(), "shards") {
		t.Errorf("local progress line %q mentions shards", local.String())
	}
	report, finish := ProgressPrinter(&sharded, 2)
	report(3, 10)
	if !strings.Contains(sharded.String(), "3/10 cells") || !strings.Contains(sharded.String(), "(2 shards)") {
		t.Errorf("sharded progress line %q lacks cells done/total or shard count", sharded.String())
	}
	// finish terminates a half-drawn line exactly once.
	finish()
	finish()
	if got := strings.Count(sharded.String(), "\n"); got != 1 {
		t.Errorf("%d newlines after finish, want 1", got)
	}
}
