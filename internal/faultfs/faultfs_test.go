package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

// TestPassthrough proves a fault-free injector behaves like the OS.
func TestPassthrough(t *testing.T) {
	dir := t.TempDir()
	j := New(OS(), nil)
	name := filepath.Join(dir, "a")
	f, err := j.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Rename(name, name+"2"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(name + "2")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

// TestWriteFaultFires proves the scheduled write fails with the
// scheduled error, exactly on its operation count.
func TestWriteFaultFires(t *testing.T) {
	dir := t.TempDir()
	j := New(OS(), []Fault{{Op: OpWrite, After: 2, Err: syscall.ENOSPC}})
	f, err := j.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2: got %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3 (after fault consumed): %v", err)
	}
}

// TestTornWriteLandsPrefix proves a torn write leaves exactly the prefix
// on disk, the state a crash mid-write produces.
func TestTornWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	j := New(OS(), []Fault{{Op: OpWrite, After: 1, Err: syscall.EIO, Torn: true}})
	name := filepath.Join(dir, "a")
	f, err := j.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("got %v, want EIO", err)
	}
	if n != 4 {
		t.Fatalf("torn write reported %d bytes, want 4", n)
	}
	f.Close()
	got, _ := os.ReadFile(name)
	if string(got) != "abcd" {
		t.Fatalf("on-disk %q, want the torn prefix \"abcd\"", got)
	}
}

// TestCrashKillsEverything proves a crash fault makes every subsequent
// operation fail with ErrCrashed, whatever its kind.
func TestCrashKillsEverything(t *testing.T) {
	dir := t.TempDir()
	j := New(OS(), []Fault{{Op: OpSync, After: 1, Err: syscall.EIO, Crash: true}})
	name := filepath.Join(dir, "a")
	f, err := j.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync: got %v, want EIO", err)
	}
	if !j.Crashed() {
		t.Fatal("injector not crashed after Crash fault")
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if err := j.Rename(name, name+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash: %v", err)
	}
	if _, err := j.OpenFile(name, os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: %v", err)
	}
	if _, err := j.Stat(name); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stat after crash: %v", err)
	}
	// The crash closed nothing for us; Close releases the fd but reports.
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("close after crash: %v", err)
	}
	// The bytes written before the crash are still on disk.
	got, err := os.ReadFile(name)
	if err != nil || string(got) != "x" {
		t.Fatalf("post-crash on-disk state %q, %v", got, err)
	}
}

// TestRenameFault proves rename failures surface without touching the
// destination.
func TestRenameFault(t *testing.T) {
	dir := t.TempDir()
	j := New(OS(), []Fault{{Op: OpRename, After: 1, Err: syscall.EIO}})
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst")
	if err := j.Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("got %v, want EIO", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("destination exists after failed rename: %v", err)
	}
	if err := j.Rename(src, dst); err != nil {
		t.Fatalf("second rename (fault consumed): %v", err)
	}
}

// TestSeededDeterministic proves the same seed yields the same schedule
// and different seeds differ somewhere in a small range.
func TestSeededDeterministic(t *testing.T) {
	a, b := Seeded(42, 8), Seeded(42, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	diff := false
	for s := int64(0); s < 8 && !diff; s++ {
		diff = !reflect.DeepEqual(Seeded(s, 8), a)
	}
	if !diff {
		t.Fatal("eight different seeds all matched seed 42's schedule")
	}
	for _, f := range a {
		if f.After <= 0 {
			t.Fatalf("seeded fault with non-positive After: %+v", f)
		}
		if f.Err == nil {
			t.Fatalf("seeded fault with nil error: %+v", f)
		}
	}
}
