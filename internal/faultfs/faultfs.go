// Package faultfs is the filesystem twin of internal/faultnet: a
// minimal writable-filesystem abstraction plus an injector that applies
// deterministic, seeded fault schedules to it, for chaos-testing
// crash-safe on-disk state (the content-addressed result store in
// internal/store is the principal consumer).
//
// Faults model the ways real filesystems betray a writer: a write that
// lands only a prefix of its buffer (torn write), ENOSPC and EIO on any
// operation, a rename that fails after its temp file was written, and a
// crash point after which every operation fails - the file mid-write is
// truncated at the fault, exactly the state a kill -9 or power cut
// leaves behind. The injector never corrupts bytes it reported as
// written and never reorders operations, so every surviving on-disk
// state is one a real crash could have produced - exactly the surface a
// temp-file/fsync/rename discipline plus end-to-end checksums must
// absorb.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"syscall"
)

// FS is the slice of filesystem behaviour the store needs, narrow
// enough to wrap with fault injection. OS is the real implementation;
// New wraps any FS with a fault schedule.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and its parents.
	MkdirAll(name string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir flushes a directory's metadata (the durability fence for
	// renames). Implementations on filesystems without directory sync
	// return nil.
	SyncDir(name string) error
}

// File is the open-file surface of FS.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes file contents to stable storage.
	Sync() error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem, the FS every production caller uses.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

// SyncDir fsyncs the directory so a completed rename survives a crash.
// Filesystems that refuse to sync directories (some network and overlay
// mounts) are tolerated: the rename is still atomic, only its
// durability point moves, which the store's scan-rebuild absorbs.
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// Op names one class of filesystem operation a fault can target.
type Op int

const (
	// OpOpen targets OpenFile calls (creates included).
	OpOpen Op = iota
	// OpWrite targets File.Write calls, on any file of the FS.
	OpWrite
	// OpRead targets File.Read calls.
	OpRead
	// OpSync targets File.Sync calls.
	OpSync
	// OpRename targets Rename calls.
	OpRename
	// OpRemove targets Remove calls.
	OpRemove
)

var opNames = map[Op]string{
	OpOpen: "open", OpWrite: "write", OpRead: "read",
	OpSync: "sync", OpRename: "rename", OpRemove: "remove",
}

func (o Op) String() string { return opNames[o] }

// ErrCrashed is returned by every operation after a Crash fault fired:
// the process holding this FS is, as far as the disk is concerned, dead.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Fault is one scheduled failure. It fires on the After-th operation of
// kind Op (1-based, counted across the whole FS), returns Err, and -
// for writes - optionally lands a prefix of the buffer first (Torn).
// With Crash set the whole FS dies at the fault: every later operation
// of any kind fails with ErrCrashed, modelling a kill -9 or power cut
// at exactly this point.
type Fault struct {
	Op    Op
	After int
	Err   error
	Torn  bool
	Crash bool
}

// Injector wraps an FS, applying a fault schedule. Safe for concurrent
// use; operation counts are global across files, so a schedule is a
// deterministic function of the caller's operation order.
type Injector struct {
	base   FS
	mu     sync.Mutex
	faults []Fault
	counts map[Op]int
	// crashed marks the post-crash state; fired counts faults consumed.
	crashed bool
	fired   int
}

// New wraps base with the given fault schedule. A nil or empty schedule
// passes every operation through.
func New(base FS, faults []Fault) *Injector {
	return &Injector{base: base, faults: append([]Fault(nil), faults...), counts: map[Op]int{}}
}

// Seeded derives a deterministic fault schedule from one seed: n faults
// spread over the store's operation mix - torn and clean write failures
// (ENOSPC, EIO), sync failures, rename failures, read errors - with
// roughly one in four schedules ending in a crash point. Operations
// beyond the schedule succeed, so every run under any seed eventually
// heals. The same seed always yields the same schedule.
func Seeded(seed int64, n int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	errs := []error{syscall.ENOSPC, syscall.EIO}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{Err: errs[rng.Intn(len(errs))]}
		switch rng.Intn(6) {
		case 0:
			f.Op, f.After = OpOpen, 1+rng.Intn(8)
		case 1, 2:
			f.Op, f.After = OpWrite, 1+rng.Intn(24)
			f.Torn = rng.Intn(2) == 0
		case 3:
			f.Op, f.After = OpSync, 1+rng.Intn(6)
		case 4:
			f.Op, f.After = OpRename, 1+rng.Intn(6)
		case 5:
			f.Op, f.After = OpRead, 1+rng.Intn(12)
		}
		faults = append(faults, f)
	}
	if rng.Intn(4) == 0 && len(faults) > 0 {
		i := rng.Intn(len(faults))
		faults[i].Crash = true
	}
	return faults
}

// Crashed reports whether a Crash fault has fired.
func (j *Injector) Crashed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.crashed
}

// Fired returns how many scheduled faults have fired so far.
func (j *Injector) Fired() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fired
}

// step counts one operation of kind op and returns the fault to apply,
// if any. ErrCrashed dominates once a crash point has fired.
func (j *Injector) step(op Op) (Fault, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed {
		return Fault{}, ErrCrashed
	}
	j.counts[op]++
	for i := range j.faults {
		f := &j.faults[i]
		if f.After > 0 && f.Op == op && j.counts[op] == f.After {
			fault := *f
			f.After = -1 // consumed
			j.fired++
			if fault.Crash {
				j.crashed = true
			}
			return fault, fault.Err
		}
	}
	return Fault{}, nil
}

func (j *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := j.step(OpOpen); err != nil {
		return nil, err
	}
	f, err := j.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: f, inj: j}, nil
}

func (j *Injector) Rename(oldname, newname string) error {
	if _, err := j.step(OpRename); err != nil {
		return err
	}
	return j.base.Rename(oldname, newname)
}

func (j *Injector) Remove(name string) error {
	if _, err := j.step(OpRemove); err != nil {
		return err
	}
	return j.base.Remove(name)
}

// MkdirAll, ReadDir, Stat and SyncDir pass through except after a
// crash: they are not fault targets themselves (the store's correctness
// argument does not depend on them failing in interesting ways), but a
// dead FS refuses them like everything else.
func (j *Injector) MkdirAll(name string, perm os.FileMode) error {
	if j.Crashed() {
		return ErrCrashed
	}
	return j.base.MkdirAll(name, perm)
}

func (j *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if j.Crashed() {
		return nil, ErrCrashed
	}
	return j.base.ReadDir(name)
}

func (j *Injector) Stat(name string) (fs.FileInfo, error) {
	if j.Crashed() {
		return nil, ErrCrashed
	}
	return j.base.Stat(name)
}

func (j *Injector) SyncDir(name string) error {
	if j.Crashed() {
		return ErrCrashed
	}
	return j.base.SyncDir(name)
}

// file wraps one open file with the injector's schedule.
type file struct {
	File
	inj *Injector
}

// Write applies write faults: a torn fault lands a prefix (half the
// buffer, at least one byte for non-empty buffers) before reporting the
// error - the on-disk state a crash mid-write leaves behind.
func (f *file) Write(b []byte) (int, error) {
	fault, err := f.inj.step(OpWrite)
	if err != nil {
		n := 0
		if fault.Torn && len(b) > 0 {
			cut := len(b) / 2
			if cut == 0 {
				cut = 1
			}
			n, _ = f.File.Write(b[:cut])
		}
		return n, err
	}
	return f.File.Write(b)
}

func (f *file) Read(b []byte) (int, error) {
	if _, err := f.inj.step(OpRead); err != nil {
		return 0, err
	}
	return f.File.Read(b)
}

func (f *file) Sync() error {
	if _, err := f.inj.step(OpSync); err != nil {
		return err
	}
	return f.File.Sync()
}

// Close always releases the underlying descriptor - a crashed FS must
// not leak fds into the test process - but reports the crash if one has
// fired, so callers treating Close as a commit point see the failure.
func (f *file) Close() error {
	err := f.File.Close()
	if f.inj.Crashed() {
		return ErrCrashed
	}
	return err
}
