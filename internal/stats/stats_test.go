package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanAndGeoMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if math.Abs(GeoMean([]float64{1, 4})-2) > 1e-12 {
		t.Error("geometric mean wrong")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("non-positive input must yield 0")
	}
}

func TestCorrelationExtremes(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if math.Abs(Correlation(a, b)-1) > 1e-12 {
		t.Error("perfect positive correlation not 1")
	}
	c := []float64{8, 6, 4, 2}
	if math.Abs(Correlation(a, c)+1) > 1e-12 {
		t.Error("perfect negative correlation not -1")
	}
	if Correlation(a, []float64{5, 5, 5, 5}) != 0 {
		t.Error("constant series must give 0")
	}
}

func TestCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r := Correlation(a, b)
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxStats(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 {
		t.Errorf("box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("quartiles = %g/%g, want 2/4", b.Q1, b.Q3)
	}
}

func TestQuantizeBalanced(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	bins := Quantize(xs, 4)
	counts := map[int]int{}
	for _, b := range bins {
		counts[b]++
	}
	for b := 0; b < 4; b++ {
		if counts[b] != 25 {
			t.Errorf("bin %d has %d elements, want 25", b, counts[b])
		}
	}
	// Order-preserving: larger values in later bins.
	if bins[0] != 0 || bins[99] != 3 {
		t.Error("quantile bins not ordered")
	}
}

func TestMutualInformationIdentity(t *testing.T) {
	x := []int{0, 1, 0, 1, 0, 1, 0, 1}
	// I(X;X) = H(X) = log 2 for a balanced binary variable.
	if math.Abs(MutualInformation(x, x)-math.Log(2)) > 1e-12 {
		t.Error("I(X;X) must equal H(X)")
	}
	if math.Abs(Entropy(x)-math.Log(2)) > 1e-12 {
		t.Error("entropy of fair coin must be log 2")
	}
}

func TestMutualInformationIndependence(t *testing.T) {
	// Fully balanced independent pair: MI must be ~0.
	var x, y []int
	for i := 0; i < 4; i++ {
		x = append(x, i%2)
		y = append(y, i/2)
	}
	if mi := MutualInformation(x, y); mi > 1e-12 {
		t.Errorf("independent variables have MI %g", mi)
	}
}

func TestNormalizedMIBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		x := make([]int, n)
		y := make([]int, n)
		for i := range x {
			x[i] = rng.Intn(4)
			y[i] = rng.Intn(3)
		}
		v := NormalizedMI(x, y)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Identical variables: NMI = 1.
	x := []int{0, 1, 2, 0, 1, 2}
	if math.Abs(NormalizedMI(x, x)-1) > 1e-12 {
		t.Error("NMI(X,X) must be 1")
	}
}

func TestHintonRender(t *testing.T) {
	h := &Hinton{
		RowLabels: []string{"a", "bb"},
		ColLabels: []string{"x", "y"},
		Cells:     [][]float64{{0, 1}, {0.5, 0.2}},
	}
	out := h.Render()
	if out == "" {
		t.Fatal("empty render")
	}
	if len(out) < 10 {
		t.Error("render suspiciously short")
	}
}
