// Package stats provides the statistical machinery behind the paper's
// analysis figures: normalised mutual information for the Hinton diagrams
// (Figures 8 and 9), correlation coefficients (Section 5.2's 0.93), and
// box-plot summaries (Figure 4).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean (0 for empty or non-positive input).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Correlation returns the Pearson correlation coefficient of two equally
// long samples (0 when degenerate).
func Correlation(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// BoxStats is the five-number summary drawn in Figure 4.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Box computes the five-number summary of a sample.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		if lo == hi {
			return s[lo]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return BoxStats{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

// Quantize maps a continuous sample onto nbins equal-population bins
// (quantile binning), returning the bin index per element. Used to
// discretise speedups and counter values for mutual information.
func Quantize(xs []float64, nbins int) []int {
	n := len(xs)
	out := make([]int, n)
	if n == 0 || nbins < 2 {
		return out
	}
	type kv struct {
		v float64
		i int
	}
	s := make([]kv, n)
	for i, x := range xs {
		s[i] = kv{x, i}
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].v != s[b].v {
			return s[a].v < s[b].v
		}
		return s[a].i < s[b].i
	})
	for rank, e := range s {
		bin := rank * nbins / n
		if bin >= nbins {
			bin = nbins - 1
		}
		out[e.i] = bin
	}
	return out
}

// MutualInformation computes I(X;Y) in nats between two discrete samples.
func MutualInformation(x, y []int) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	joint := map[[2]int]float64{}
	px := map[int]float64{}
	py := map[int]float64{}
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		joint[[2]int{x[i], y[i]}] += inv
		px[x[i]] += inv
		py[y[i]] += inv
	}
	mi := 0.0
	for k, pxy := range joint {
		mi += pxy * math.Log(pxy/(px[k[0]]*py[k[1]]))
	}
	if mi < 0 {
		mi = 0 // numerical noise
	}
	return mi
}

// Entropy computes H(X) in nats of a discrete sample.
func Entropy(x []int) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	p := map[int]float64{}
	inv := 1.0 / float64(n)
	for _, v := range x {
		p[v] += inv
	}
	h := 0.0
	for _, pv := range p {
		h -= pv * math.Log(pv)
	}
	return h
}

// NormalizedMI returns I(X;Y)/sqrt(H(X)H(Y)) in [0,1], the normalised
// mutual information plotted as box areas in the Hinton diagrams.
func NormalizedMI(x, y []int) float64 {
	hx, hy := Entropy(x), Entropy(y)
	if hx == 0 || hy == 0 {
		return 0
	}
	v := MutualInformation(x, y) / math.Sqrt(hx*hy)
	if v > 1 {
		v = 1
	}
	return v
}

// Hinton is a labelled matrix of box magnitudes in [0,1], the data behind
// Figures 8 and 9.
type Hinton struct {
	RowLabels []string
	ColLabels []string
	Cells     [][]float64 // [row][col]
}

// Render draws the Hinton diagram as fixed-width text, largest boxes as
// the biggest glyphs, for terminal inspection of Figures 8 and 9.
func (h *Hinton) Render() string {
	glyphs := []rune{' ', '.', ':', 'o', 'O', '#', '@'}
	out := ""
	width := 0
	for _, r := range h.RowLabels {
		if len(r) > width {
			width = len(r)
		}
	}
	for i, row := range h.Cells {
		out += pad(h.RowLabels[i], width) + " |"
		for _, v := range row {
			g := int(v * float64(len(glyphs)-1))
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			if g < 0 {
				g = 0
			}
			out += string(glyphs[g]) + " "
		}
		out += "\n"
	}
	return out
}

func pad(s string, w int) string {
	for len(s) < w {
		s = s + " "
	}
	return s
}
