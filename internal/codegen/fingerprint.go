package codegen

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// Fingerprint is a collision-resistant identity of a placed binary image.
// Two programs with equal fingerprints are byte-identical to the trace
// generator: every trace (and therefore every simulation result) derived
// from them is the same, so sweep evaluators deduplicate trace generation
// and replay across optimisation settings whose pipelines happened to
// produce the same code.
type Fingerprint [sha256.Size]byte

// AppendImage appends a canonical serialisation of everything the trace
// generator observes about the program - placement, padding, instruction
// streams, materialised control, branch profile metadata - to dst and
// returns it. Derived conveniences that cannot differ when the serialised
// fields agree (Pos, ByID, TotalBytes) are omitted.
func AppendImage(dst []byte, p *Program) []byte {
	u32 := func(v uint32) {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	u32(uint32(p.Module.Entry))
	u32(uint32(len(p.Funcs)))
	for _, fi := range p.Funcs {
		u32(uint32(fi.ID))
		u32(fi.Addr)
		u32(uint32(fi.Bytes))
		u32(uint32(len(fi.Blocks)))
		for _, bi := range fi.Blocks {
			u32(uint32(bi.ID))
			u32(bi.Addr)
			u32(uint32(bi.Pad))
			u32(uint32(bi.Bytes))
			flags := uint32(bi.Term.Kind)
			if bi.Inverted {
				flags |= 1 << 8
			}
			if bi.HasJump {
				flags |= 1 << 9
			}
			if bi.IsRet {
				flags |= 1 << 10
			}
			if bi.Term.Guard {
				flags |= 1 << 11
			}
			u32(flags)
			u32(bi.BranchAddr)
			u32(bi.JumpAddr)
			u32(uint32(bi.Term.Taken))
			u32(uint32(bi.Term.Fall))
			u32(uint32(bi.Term.Trip))
			u32(uint32(bi.Term.CondReg))
			u32(uint32(bi.Term.InvariantIn))
			u32(uint32(bi.Term.Site))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(bi.Term.Prob))
			u32(uint32(len(bi.Insns)))
			for i := range bi.Insns {
				in := &bi.Insns[i]
				u32(uint32(in.Op)<<16 | uint32(in.Flags))
				u32(uint32(in.Def))
				u32(uint32(in.Use[0]))
				u32(uint32(in.Use[1]))
				u32(uint32(in.Imm))
				u32(uint32(in.Callee))
				u32(uint32(in.Mem.Stream))
				ro := uint32(0)
				if in.Mem.ReadOnly {
					ro = 1
				}
				u32(uint32(in.Mem.Kind) | ro<<8)
				u32(uint32(in.Mem.WSet))
				u32(uint32(in.Mem.Stride))
			}
		}
	}
	return dst
}

// FingerprintInto hashes the program's canonical image, reusing scratch
// as the serialisation buffer; it returns the fingerprint and the (grown)
// scratch for the caller to keep for the next call.
func FingerprintInto(p *Program, scratch []byte) (Fingerprint, []byte) {
	scratch = AppendImage(scratch[:0], p)
	return sha256.Sum256(scratch), scratch
}
